(* Dynamic software update: hot-swap a new program version into a live
   process - another Dapper transformation policy (paper Section I).

   Run with: dune exec examples/software_update.exe *)

open Dapper_machine
open Dapper_clite
open Dapper
open Cl
module Link = Dapper_codegen.Link

(* A server computing scores with a pricing function; v2 fixes the
   pricing formula. Same code shape, so the layout stays compatible. *)
(* DSU-friendly build: generous function padding leaves room for bodies
   to grow in later versions without moving any symbol *)
let opts = { Dapper_codegen.Opts.default with pad_quantum = 256 }

let version price_body =
  let m = create "pricing-server" in
  Cstd.add m;
  func m "price" [ ("x", Dapper_ir.Ir.I64) ] price_body;
  func m "main" [] (fun b ->
      decl b "total" (i 0);
      for_ b "req" (i 0) (i 6000) (fun b ->
          set b "total" (add (v "total") (call "price" [ band (v "req") (i 15) ])));
      Cstd.print b m "total=";
      do_ b (call "print_int" [ v "total" ]);
      do_ b (call "print_nl" []);
      ret b (i 0));
  finish m

let () =
  (* v1 has an off-by-one bug: it underprices by 1 per request *)
  let v1 = Link.compile ~opts ~app:"pricing-server"
      (version (fun b -> ret b (mul (v "x") (i 3)))) in
  let v2 = Link.compile ~opts ~app:"pricing-server"
      (version (fun b -> ret b (add (mul (v "x") (i 3)) (i 1)))) in
  let changed =
    Dsu.changed_functions ~old_bin:v1.Link.cp_x86 ~new_bin:v2.Link.cp_x86
  in
  Printf.printf "new version changes: %s\n" (String.concat ", " changed);

  let p = Process.load v1.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:60_000);
  Printf.printf "server running v1 (%Ld instructions in); applying the fix live...\n"
    p.Process.total_instrs;
  match Dsu.update p ~old_bin:v1.Link.cp_x86 ~new_bin:v2.Link.cp_x86 with
  | Error e -> failwith (Dsu.error_to_string e)
  | Ok q ->
    (match Process.run_to_completion q ~fuel:10_000_000 with
     | Process.Exited_run _ ->
       print_string (Process.stdout_contents p ^ Process.stdout_contents q);
       (* pure v1 would print 135000; pure v2 141000; the live-updated
          server lands in between: early requests used the buggy price *)
       print_endline
         "requests before the update used v1 pricing, later ones v2 - no restart, no lost state"
     | _ -> failwith "updated server failed")
