(* The textual front-end: write the program as clite source, compile it
   for both ISAs, and live-migrate it - the full paper pipeline from
   source code to cross-architecture relocation.

   Run with: dune exec examples/source_program.exe *)

open Dapper_machine
open Dapper_net
open Dapper_clite
open Dapper
module Link = Dapper_codegen.Link

let source = {|
  // monte-carlo estimate of pi, checkpointable at every function call
  global inside;

  fn trial() {
    var f x = frand() * 2.0 - 1.0;
    var f y = frand() * 2.0 - 1.0;
    if (x * x + y * y <= 1.0) { return 1; }
    return 0;
  }

  fn main() {
    rand_seed(31415);
    var n = 40000;
    var k = 0;
    for (k = 0; k < n; k = k + 1) {
      inside = inside + trial();
    }
    print("pi ~ ");
    print_flt(4.0 * i2f(inside) / i2f(n));
    print_nl();
    return 0;
  }
|}

let () =
  let m = Parse.compile ~name:"pi" source in
  let compiled = Link.compile ~app:"pi" m in
  Printf.printf "compiled %d-line clite source into dual-ISA binaries\n"
    (List.length (String.split_on_char '\n' source));
  let p = Process.load compiled.cp_x86 in
  ignore (Process.run p ~max_instrs:1_500_000);
  Printf.printf "running on x86-64 (%Ld instructions); migrating to aarch64...\n"
    p.Process.total_instrs;
  match
    Migrate.migrate ~src_node:Node.xeon ~dst_node:Node.rpi ~src_bin:compiled.cp_x86
      ~dst_bin:compiled.cp_arm p
  with
  | Error e -> failwith (Migrate.error_to_string e)
  | Ok r ->
    (match Process.run_to_completion r.r_process ~fuel:50_000_000 with
     | Process.Exited_run _ ->
       print_string (Process.stdout_contents p ^ Process.stdout_contents r.r_process)
     | _ -> failwith "migrated run failed")
