(* Cross-ISA live migration of a real benchmark (the paper's demo):
   start NPB-CG on the x86-64 server, migrate it mid-run to a Raspberry
   Pi, verify the computation is bit-identical to a native run, and
   print the paper's cost breakdown.

   Run with: dune exec examples/cross_isa_migration.exe *)

open Dapper_machine
open Dapper_net
open Dapper_workloads
open Dapper
module Link = Dapper_codegen.Link

let () =
  let c = Registry.compiled (Registry.find "npb-cg.A") in

  (* reference: uninterrupted run on the destination architecture *)
  let reference = Process.load c.Link.cp_arm in
  (match Process.run_to_completion reference ~fuel:100_000_000 with
   | Process.Exited_run _ -> ()
   | _ -> failwith "reference run failed");
  let expected = Process.stdout_contents reference in

  (* live run: halfway through on the Xeon, then evict to the Pi *)
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:4_000_000);
  Printf.printf "npb-cg.A on xeon/x86-64: %Ld instructions in, migrating...\n"
    p.Process.total_instrs;
  match
    Migrate.migrate ~bytes_scale:1500.0 ~src_node:Node.xeon ~dst_node:Node.rpi
      ~src_bin:c.Link.cp_x86 ~dst_bin:c.Link.cp_arm p
  with
  | Error e -> failwith (Migrate.error_to_string e)
  | Ok r ->
    let t = r.Migrate.r_times in
    Printf.printf
      "  checkpoint %.1f ms | recode %.1f ms | scp %.1f ms | restore %.1f ms | total %.1f ms\n"
      t.t_checkpoint_ms t.t_recode_ms t.t_scp_ms t.t_restore_ms (Migrate.total_ms t);
    Printf.printf "  image: %d KiB; %d frames rewritten, %d live values, %d pointers fixed\n"
      (r.r_image_bytes / 1024) r.r_rewrite.Rewrite.st_frames r.r_rewrite.Rewrite.st_values
      r.r_rewrite.Rewrite.st_ptrs_translated;
    (match Process.run_to_completion r.r_process ~fuel:100_000_000 with
     | Process.Exited_run code ->
       let out = Process.stdout_contents p ^ Process.stdout_contents r.r_process in
       Printf.printf "finished on rpi/aarch64 with code %Ld\n" code;
       Printf.printf "output matches native aarch64 run: %b\n" (String.equal out expected);
       print_string out
     | _ -> failwith "migrated run failed")
