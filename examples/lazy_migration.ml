(* Post-copy (lazy) migration of a Redis-like server with a large
   in-memory database: only the task state and stacks move up front;
   data pages stream from the source's page server on first touch.

   Run with: dune exec examples/lazy_migration.exe *)

open Dapper_machine
open Dapper_net
open Dapper_workloads
open Dapper
module Link = Dapper_codegen.Link

let () =
  let m = Servers.redis ~keys:16384 ~ops:8000 () in
  let c = Link.compile ~app:"redis-16k" m in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:6_000_000);
  Printf.printf "redis with 16k keys warm on x86-64; migrating lazily to aarch64...\n";
  List.iter
    (fun lazy_pages ->
      let q = Process.load c.Link.cp_x86 in
      ignore (Process.run q ~max_instrs:6_000_000);
      match
        Migrate.migrate ~lazy_pages ~bytes_scale:1500.0 ~src_node:Node.xeon
          ~dst_node:Node.rpi ~src_bin:c.Link.cp_x86 ~dst_bin:c.Link.cp_arm q
      with
      | Error e -> failwith (Migrate.error_to_string e)
      | Ok r ->
        (match Process.run_to_completion r.Migrate.r_process ~fuel:100_000_000 with
         | Process.Exited_run _ -> ()
         | _ -> failwith "migrated run failed");
        let t = r.Migrate.r_times in
        let mode = if lazy_pages then "lazy   " else "vanilla" in
        (match r.Migrate.r_page_server with
         | Some s ->
           Printf.printf
             "%s: stop-and-copy %.1f ms (image %d KiB); %d pages pulled on demand afterwards (%.1f ms hidden in execution)\n"
             mode (Migrate.total_ms t) (r.r_image_bytes / 1024) s.Migrate.srv_pages
             (s.Migrate.srv_ns /. 1e6)
         | None ->
           Printf.printf "%s: stop-and-copy %.1f ms (image %d KiB)\n" mode
             (Migrate.total_ms t) (r.r_image_bytes / 1024)))
    [ false; true ]
