(* Periodic live stack re-randomization (the paper's security use case):
   a server keeps running while Dapper repeatedly checkpoints it,
   shuffles its stack layout, and resumes it under the new binary; an
   attacker armed with the original layout is then defeated.

   Run with: dune exec examples/rerandomization.exe *)

open Dapper_util
open Dapper_machine
open Dapper
open Dapper_security
module Link = Dapper_codegen.Link

let () =
  let m = Exploits.min_dop_module ~rounds:500 () in
  let c = Link.compile ~app:"server" m in
  let original = c.Link.cp_x86 in

  (* attack the original server: the payload lands *)
  (match Exploits.run ~attack:Exploits.Min_dop ~target:original ~knowledge:original with
   | Exploits.Pwned -> print_endline "unprotected server: attack PWNED it"
   | o -> failwith ("unexpected: " ^ Exploits.outcome_to_string o));

  (* re-randomize a live instance three times while it runs *)
  let rng = Rng.create 20260706L in
  let rec rerandomize bin p epoch =
    if epoch = 0 then (bin, p)
    else begin
      ignore (Process.run p ~max_instrs:50_000);
      (match Monitor.request_pause p ~budget:10_000_000 with
       | Ok _ -> ()
       | Error e -> failwith (Monitor.error_to_string e));
      let ok = Dapper_util.Dapper_error.ok_exn in
      let image = ok (Dapper_criu.Dump.dump p) in
      let shuffled, stats = Shuffle.shuffle_binary rng bin in
      let image', _ = ok (Rewrite.rewrite image ~src:bin ~dst:shuffled) in
      let p' = ok (Dapper_criu.Restore.restore image' shuffled) in
      Printf.printf "epoch %d: reshuffled live process (%.2f avg bits, %d instrs patched)\n"
        epoch (Shuffle.average_bits stats) stats.Shuffle.sh_instrs_rewritten;
      rerandomize shuffled p' (epoch - 1)
    end
  in
  let final_bin, p = rerandomize original (Process.load original) 3 in
  (match Process.run_to_completion p ~fuel:10_000_000 with
   | Process.Exited_run _ -> print_endline "server completed correctly across 3 reshuffles"
   | _ -> failwith "server failed after reshuffling");

  (* the attacker still only knows the original layout *)
  match Exploits.run ~attack:Exploits.Min_dop ~target:final_bin ~knowledge:original with
  | Exploits.Pwned -> print_endline "attack still landed (unlucky permutation) - rerun!"
  | o -> Printf.printf "re-randomized server: attack %s\n" (Exploits.outcome_to_string o)
