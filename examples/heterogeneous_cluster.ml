(* Energy-efficient batch processing on a heterogeneous cluster: when the
   Xeon is oversubscribed, Dapper evicts jobs to Raspberry Pi boards
   (paper Section IV-A-b / Fig. 8).

   Run with: dune exec examples/heterogeneous_cluster.exe *)

open Dapper_cluster

let () =
  (* job costs as measured by bench/main.exe fig8 on the simulator *)
  let kinds =
    [ { Scheduler.jk_name = "npb-ep.B"; jk_xeon_ms = 58_557.0; jk_rpi_ms = 163_000.0;
        jk_migration_ms = 269.0 };
      { Scheduler.jk_name = "npb-cg.B"; jk_xeon_ms = 74_866.0; jk_rpi_ms = 210_000.0;
        jk_migration_ms = 745.0 };
      { Scheduler.jk_name = "npb-mg.B"; jk_xeon_ms = 93_820.0; jk_rpi_ms = 267_000.0;
        jk_migration_ms = 1652.0 };
      { Scheduler.jk_name = "npb-ft.B"; jk_xeon_ms = 37_470.0; jk_rpi_ms = 105_000.0;
        jk_migration_ms = 617.0 } ]
  in
  let cfg rpis =
    { Scheduler.c_window_ms = Scheduler.default_window_ms; c_xeon_slots = 7;
      c_rpis = rpis; c_rpi_slots_each = 3 }
  in
  let base = Scheduler.run (cfg 0) kinds in
  Printf.printf "30-minute batch window, infinite NPB class-B job queue\n\n";
  List.iter
    (fun rpis ->
      let r = Scheduler.run (cfg rpis) kinds in
      Printf.printf
        "%-14s %3d jobs (%3d evicted to Pis)  %6.1f kJ  %.3f jobs/kJ"
        (if rpis = 0 then "xeon only" else Printf.sprintf "xeon + %d Pi(s)" rpis)
        r.Scheduler.r_jobs_done r.r_jobs_rpi r.r_energy_kj r.r_jobs_per_kj;
      if rpis > 0 then
        Printf.printf "  (efficiency %+.1f%%, throughput %+.1f%%)"
          (Scheduler.efficiency_gain_pct ~baseline:base ~subject:r)
          (Scheduler.throughput_gain_pct ~baseline:base ~subject:r);
      print_newline ())
    [ 0; 1; 3 ]
