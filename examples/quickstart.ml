(* Quickstart: write a program, compile it for both ISAs, pause it live,
   inspect the CRIU images, rewrite the state for the other architecture,
   and resume it there.

   Run with: dune exec examples/quickstart.exe *)

open Dapper_clite
open Dapper_machine
open Dapper
open Cl
module Link = Dapper_codegen.Link

let program () =
  let m = create "hello-dapper" in
  Cstd.add m;
  func m "step" [ ("n", Dapper_ir.Ir.I64) ] (fun b ->
      ret b (add (mul (v "n") (v "n")) (i 1)));
  func m "main" [] (fun b ->
      decl b "acc" (i 0);
      for_ b "k" (i 0) (i 2000) (fun b ->
          set b "acc" (add (v "acc") (call "step" [ v "k" ])));
      Cstd.print b m "acc=";
      do_ b (call "print_int" [ v "acc" ]);
      do_ b (call "print_nl" []);
      ret b (i 0));
  finish m

let () =
  (* 1. One IR module, two aligned binaries - Dapper's compiler setup. *)
  let compiled = Link.compile ~app:"hello-dapper" (program ()) in
  Printf.printf "compiled %s: text is %d bytes on x86-64, %d on aarch64; symbols aligned\n"
    compiled.Link.cp_app
    (Dapper_binary.Binary.text_size compiled.cp_x86)
    (Dapper_binary.Binary.text_size compiled.cp_arm);

  (* 2. Launch on x86-64 and run a while. *)
  let p = Process.load compiled.cp_x86 in
  ignore (Process.run p ~max_instrs:20_000);
  Printf.printf "running on x86-64; %Ld instructions retired, output so far: %S\n"
    p.Process.total_instrs (Process.stdout_contents p);

  (* 3. The Dapper runtime raises the flag; every thread parks at an
     equivalence point. *)
  (match Monitor.request_pause p ~budget:10_000_000 with
   | Ok stats ->
     Printf.printf "paused: %d thread(s) trapped at checkers, %d rolled back\n"
       stats.Monitor.ps_trapped stats.Monitor.ps_rolled_back
   | Error e -> failwith (Monitor.error_to_string e));

  (* 4. CRIU dump; peek at the images with CRIT. *)
  let image = Dapper_util.Dapper_error.ok_exn (Dapper_criu.Dump.dump p) in
  let files = Dapper_criu.Images.to_files image in
  Printf.printf "dumped %d image files (%d bytes):\n"
    (List.length files) (Dapper_criu.Images.total_bytes image);
  List.iter (fun (name, bytes) -> Printf.printf "  %-14s %6d bytes\n" name (String.length bytes)) files;
  print_endline "core-0.img decoded by crit:";
  print_endline
    (Dapper_util.Json.to_string
       (Dapper_criu.Crit.decode_file "core-0.img" (List.assoc "core-0.img" files)));

  (* 5. Rewrite the process state for aarch64 and restore it there. *)
  let image', stats =
    Dapper_util.Dapper_error.ok_exn
      (Rewrite.rewrite image ~src:compiled.cp_x86 ~dst:compiled.cp_arm)
  in
  Printf.printf
    "rewritten for aarch64: %d frames, %d live values copied, %d stack pointers translated\n"
    stats.Rewrite.st_frames stats.Rewrite.st_values stats.Rewrite.st_ptrs_translated;
  let q = Dapper_util.Dapper_error.ok_exn (Dapper_criu.Restore.restore image' compiled.cp_arm) in
  (match Process.run_to_completion q ~fuel:10_000_000 with
   | Process.Exited_run code ->
     Printf.printf "finished on aarch64 with exit code %Ld, output: %S\n" code
       (Process.stdout_contents p ^ Process.stdout_contents q)
   | _ -> failwith "restored process did not finish")
