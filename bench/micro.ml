(* Bechamel micro-benchmarks: one Test.make per table/figure, measuring
   the core operation that experiment exercises (wall-clock of the real
   OCaml implementation, not the simulated cost model). *)

open Bechamel
open Toolkit
open Dapper_machine
open Dapper_workloads
open Dapper
open Dapper_security
open Dapper_cluster
module Link = Dapper_codegen.Link

let fixture () =
  let c = Registry.compiled (Registry.find "npb-cg.A") in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:400_000);
  (match Monitor.request_pause p ~budget:40_000_000 with
   | Ok _ -> ()
   | Error e -> failwith (Monitor.error_to_string e));
  let image = Dapper_criu.Dump.dump p in
  (c, p, image)

let tests () =
  let c, p, image = fixture () in
  let image_arm, _ = Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm in
  let kinds =
    [ { Scheduler.jk_name = "cg"; jk_xeon_ms = 9000.0; jk_rpi_ms = 25000.0;
        jk_migration_ms = 1500.0 } ]
  in
  let cfg =
    { Scheduler.c_window_ms = Scheduler.default_window_ms; c_xeon_slots = 7; c_rpis = 3;
      c_rpi_slots_each = 3 }
  in
  Test.make_grouped ~name:"dapper" ~fmt:"%s/%s"
    [ Test.make ~name:"fig5-criu-dump" (Staged.stage (fun () ->
          ignore (Dapper_criu.Dump.dump p)));
      Test.make ~name:"fig5-unwind" (Staged.stage (fun () ->
          ignore
            (Unwind.unwind_all image c.Link.cp_x86.bin_stackmaps
               ~anchors:c.Link.cp_x86.bin_anchors)));
      Test.make ~name:"fig5-rewrite-x86-to-arm" (Staged.stage (fun () ->
          ignore (Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm)));
      Test.make ~name:"fig5-criu-restore" (Staged.stage (fun () ->
          ignore (Dapper_criu.Restore.restore image_arm c.Link.cp_arm)));
      Test.make ~name:"fig6-interp-100k-instrs" (Staged.stage (fun () ->
          let q = Process.load c.Link.cp_arm in
          ignore (Process.run q ~max_instrs:100_000)));
      Test.make ~name:"fig7-crit-decode-encode" (Staged.stage (fun () ->
          List.iter
            (fun (name, bytes) ->
              if name <> "pages-1.img" then
                ignore
                  (Dapper_criu.Crit.encode_file name
                     (Dapper_criu.Crit.decode_file name bytes)))
            (Dapper_criu.Images.to_files image)));
      Test.make ~name:"fig8-scheduler-30min" (Staged.stage (fun () ->
          ignore (Scheduler.run cfg kinds)));
      Test.make ~name:"fig9-shuffle-sbi" (Staged.stage (fun () ->
          ignore (Shuffle.shuffle_binary (Dapper_util.Rng.create 1L) c.Link.cp_x86)));
      Test.make ~name:"fig10-entropy" (Staged.stage (fun () ->
          let _, stats = Shuffle.shuffle_binary (Dapper_util.Rng.create 2L) c.Link.cp_arm in
          ignore (Shuffle.average_bits stats)));
      Test.make ~name:"fig11-gadget-scan" (Staged.stage (fun () ->
          ignore (Gadgets.scan c.Link.cp_x86))) ]

let run () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "== Bechamel micro-benchmarks (monotonic clock per run) ==";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> Printf.sprintf "%.0f ns" est
        | _ -> "n/a"
      in
      rows := [ name; ns ] :: !rows)
    results;
  Dapper_util.Tbl.print ~title:"micro" ~header:[ "operation"; "time/run" ]
    (List.sort compare !rows)
