(* Bechamel micro-benchmarks: one Test.make per table/figure, measuring
   the core operation that experiment exercises (wall-clock of the real
   OCaml implementation, not the simulated cost model). *)

open Bechamel
open Toolkit
open Dapper_machine
open Dapper_workloads
open Dapper
open Dapper_security
open Dapper_cluster
module Link = Dapper_codegen.Link

let fixture () =
  let c = Registry.compiled (Registry.find "npb-cg.A") in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:400_000);
  (match Monitor.request_pause p ~budget:40_000_000 with
   | Ok _ -> ()
   | Error e -> failwith (Monitor.error_to_string e));
  let image = Dapper_util.Dapper_error.ok_exn (Dapper_criu.Dump.dump p) in
  (c, p, image)

(* Redis-like server paused mid-request-loop: the workload whose dense
   stack maps the index/plan-cache layer targets. *)
let redis_fixture () =
  let c = Registry.compiled (Registry.find "redis") in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:200_000);
  (match Monitor.request_pause p ~budget:40_000_000 with
   | Ok _ -> ()
   | Error e -> failwith (Monitor.error_to_string e));
  let image = Dapper_util.Dapper_error.ok_exn (Dapper_criu.Dump.dump p) in
  (c, image)

(* Every (function, eqpoint id) in a stack-map list — the query set for
   the linear-vs-indexed lookup comparison. *)
let lookup_queries maps =
  List.concat_map
    (fun (fm : Dapper_binary.Stackmap.func_map) ->
      List.map
        (fun (ep : Dapper_binary.Stackmap.eqpoint) -> (fm.fm_name, ep.ep_id))
        fm.fm_eqpoints)
    maps

(* Synthetic but realistically sized pointer-translation interval set
   (disjoint, like rewriter stack intervals). *)
let translate_intervals =
  List.init 512 (fun i ->
      let lo = Int64.of_int (0x8000_0000 + (0x1000 * i)) in
      (lo, Int64.add lo 0x800L, Int64.of_int i))

let translate_queries =
  List.init 1024 (fun i -> Int64.of_int (0x8000_0000 + (0x600 * i)))

let tests () =
  let c, p, image = fixture () in
  let image_arm, _ =
    Dapper_util.Dapper_error.ok_exn
      (Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm)
  in
  let rc, rimage = redis_fixture () in
  let rmaps = rc.Link.cp_x86.bin_stackmaps in
  let rix = Dapper_binary.Stackmap_index.build rmaps in
  let queries = lookup_queries rmaps in
  let imap = Dapper_util.Interval_map.of_list translate_intervals in
  let kinds =
    [ { Scheduler.jk_name = "cg"; jk_xeon_ms = 9000.0; jk_rpi_ms = 25000.0;
        jk_migration_ms = 1500.0 } ]
  in
  let cfg =
    { Scheduler.c_window_ms = Scheduler.default_window_ms; c_xeon_slots = 7; c_rpis = 3;
      c_rpi_slots_each = 3 }
  in
  let qs_bin =
    (Option.get (Dapper_verify.Corpus.find "mini-quickstart")).Link.cp_x86
  in
  let qs_log =
    match Dapper_replay.Replayer.record qs_bin with
    | Ok log -> log
    | Error e -> failwith e
  in
  Test.make_grouped ~name:"dapper" ~fmt:"%s/%s"
    [ Test.make ~name:"fig5-criu-dump" (Staged.stage (fun () ->
          ignore (Dapper_criu.Dump.dump p)));
      Test.make ~name:"fig5-unwind" (Staged.stage (fun () ->
          ignore
            (Unwind.unwind_all image c.Link.cp_x86.bin_stackmaps
               ~anchors:c.Link.cp_x86.bin_anchors)));
      Test.make ~name:"fig5-rewrite-x86-to-arm" (Staged.stage (fun () ->
          ignore (Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm)));
      Test.make ~name:"fig5-criu-restore" (Staged.stage (fun () ->
          ignore (Dapper_criu.Restore.restore image_arm c.Link.cp_arm)));
      (* Incremental recode: every rewrite after the first hits the
         output memo (unchanged fixture), so this measures the digest +
         patch-replay fast path against fig5-rewrite-x86-to-arm above. *)
      Test.make ~name:"fig5-rewrite-warm-memo"
        (let memo = Plan_cache.create_memo () in
         ignore
           (Dapper_util.Dapper_error.ok_exn
              (Rewrite.rewrite ~memo image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm));
         Staged.stage (fun () ->
             ignore
               (Rewrite.rewrite ~memo image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm)));
      (* The chunked-overlap scheduler itself (pure arithmetic over the
         chunk list): cost of planning a 1 MiB image in 64 KiB chunks. *)
      Test.make ~name:"fig5-pipeline-schedule" (Staged.stage (fun () ->
          ignore
            (Dapper_net.Transport.pipeline_schedule
               (Dapper_net.Transport.scp Dapper_net.Link.infiniband)
               ~bytes:(1 lsl 20) ~chunk_bytes:65536 ~recode_ns:2.0e6)));
      Test.make ~name:"fig6-interp-100k-instrs" (Staged.stage (fun () ->
          let q = Process.load c.Link.cp_arm in
          ignore (Process.run q ~max_instrs:100_000)));
      (* Record/replay overhead: a full recorded execution (eqpoint walk
         with per-anchor snapshots) and a validating replay of that
         recording, against the plain fig6 interpretation baseline. *)
      Test.make ~name:"replay-record" (Staged.stage (fun () ->
          ignore (Dapper_replay.Replayer.record qs_bin)));
      Test.make ~name:"replay-run" (Staged.stage (fun () ->
          ignore (Dapper_replay.Replayer.replay ~log:qs_log qs_bin)));
      Test.make ~name:"fig7-crit-decode-encode" (Staged.stage (fun () ->
          List.iter
            (fun (name, bytes) ->
              if name <> "pages-1.img" then
                ignore
                  (Dapper_criu.Crit.encode_file name
                     (Dapper_criu.Crit.decode_file name bytes)))
            (Dapper_criu.Images.to_files image)));
      Test.make ~name:"fig8-scheduler-30min" (Staged.stage (fun () ->
          ignore (Scheduler.run cfg kinds)));
      (* The event queue itself: push 4096 entries with scattered times
         and drain them — the per-event log-time cost every simulator
         loop above pays. *)
      Test.make ~name:"event-heap-churn" (Staged.stage (fun () ->
          let h = Dapper_util.Event_heap.create ~capacity:4096 () in
          let state = ref 0x2545F4914F6C in
          for i = 0 to 4095 do
            state := ((!state * 25214903917) + 11) land 0xFFFF_FFFF_FFFF;
            Dapper_util.Event_heap.push h ~key:(i land 7)
              ~time:(float (!state land 0xFFFF)) i
          done;
          ignore (Dapper_util.Event_heap.drain h)));
      (* Engine overhead of the scaled fleet simulator: a full 10-node /
         1k-job fig8-xl run, so ns/run here divided by x_events is the
         per-event dispatch cost at small scale. *)
      Test.make ~name:"fig8-xl-sched-overhead" (Staged.stage (fun () ->
          ignore
            (Fleet_xl.run
               (Experiments.fig8_xl_config ~nodes:10 ~jobs:1_000
                  ~policy:Placement.First_fit)
               kinds)));
      Test.make ~name:"fig9-shuffle-sbi" (Staged.stage (fun () ->
          ignore (Shuffle.shuffle_binary (Dapper_util.Rng.create 1L) c.Link.cp_x86)));
      Test.make ~name:"fig10-entropy" (Staged.stage (fun () ->
          let _, stats = Shuffle.shuffle_binary (Dapper_util.Rng.create 2L) c.Link.cp_arm in
          ignore (Shuffle.average_bits stats)));
      Test.make ~name:"fig11-gadget-scan" (Staged.stage (fun () ->
          ignore (Gadgets.scan c.Link.cp_x86)));
      (* Indexed recode pipeline: the operations the stack-map index,
         interval map and plan cache accelerate, each with its linear
         baseline so the speedup is visible in one run. *)
      Test.make ~name:"redis-recode-x86-to-arm" (Staged.stage (fun () ->
          ignore (Rewrite.rewrite rimage ~src:rc.Link.cp_x86 ~dst:rc.Link.cp_arm)));
      Test.make ~name:"redis-stackmap-lookup-linear" (Staged.stage (fun () ->
          List.iter
            (fun (fn, ep_id) ->
              match Dapper_binary.Stackmap.find_func rmaps fn with
              | Some fm -> ignore (Dapper_binary.Stackmap.eqpoint_by_id fm ep_id)
              | None -> ())
            queries));
      Test.make ~name:"redis-stackmap-lookup-indexed" (Staged.stage (fun () ->
          List.iter
            (fun (fn, ep_id) ->
              ignore (Dapper_binary.Stackmap_index.eqpoint_by_id rix fn ep_id))
            queries));
      Test.make ~name:"redis-ptr-translate-linear" (Staged.stage (fun () ->
          List.iter
            (fun v ->
              ignore
                (List.find_opt
                   (fun (lo, hi, _) ->
                     Int64.compare v lo >= 0 && Int64.compare v hi < 0)
                   translate_intervals))
            translate_queries));
      Test.make ~name:"redis-ptr-translate-indexed" (Staged.stage (fun () ->
          List.iter
            (fun v -> ignore (Dapper_util.Interval_map.find imap v))
            translate_queries)) ]

let results_file = "BENCH_RESULTS.json"

(* --trace FILE: one traced end-to-end scp migration of the npb fixture
   on the simulated clock, exported as Chrome trace_event JSON plus a
   plain-text flame summary. Under eager scp nothing charges the clock
   outside the six stage spans, so the per-stage span totals printed by
   the flame summary agree with the cost report's phase times. *)
let run_trace file =
  let module Trace = Dapper_obs.Trace in
  let c = Registry.compiled (Registry.find "npb-cg.A") in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:400_000);
  Trace.start ();
  match
    Migrate.migrate ~src_node:Dapper_net.Node.xeon ~dst_node:Dapper_net.Node.rpi
      ~src_bin:c.Link.cp_x86 ~dst_bin:c.Link.cp_arm p
  with
  | Error e -> failwith ("traced migration failed: " ^ Migrate.error_to_string e)
  | Ok r ->
    Trace.stop ();
    Trace.export ~file;
    print_endline (Migrate.cost_report ~stage_histograms:true r);
    print_string (Trace.flame_summary ());
    Printf.printf "wrote %s (%d trace events)\n" file
      (List.length (Trace.events ()))

let run_micro ?(json = false) ?(smoke = false) ?trace () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let quota = Time.second (if smoke then 0.05 else 0.5) in
  let cfg =
    Benchmark.cfg ~limit:(if smoke then 50 else 1000) ~quota ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "== Bechamel micro-benchmarks (monotonic clock per run) ==";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> Some est
        | _ -> None
      in
      rows := (name, est) :: !rows)
    results;
  let rows = List.sort compare !rows in
  Dapper_util.Tbl.print ~title:"micro" ~header:[ "operation"; "time/run" ]
    (List.map
       (fun (name, est) ->
         [ name;
           (match est with Some e -> Printf.sprintf "%.0f ns" e | None -> "n/a") ])
       rows);
  if json then begin
    let module J = Dapper_util.Json in
    let entries =
      List.map
        (fun (name, est) ->
          J.Obj
            [ ("name", J.String name);
              ("ns_per_run", match est with Some e -> J.Float e | None -> J.Null) ])
        rows
    in
    (* fig8-xl sweep rows ride along in the same results file so the
       schema gate can hold the scaled-fleet numbers to account. Smoke
       (CI) trims the sweep to <= 1k nodes; a full run covers the 10k /
       1M point too. *)
    let xl_rows =
      Experiments.fig8_xl_sweep ~max_nodes:(if smoke then 1_000 else 10_000) ()
    in
    let xl_entries =
      List.map
        (fun (r : Experiments.xl_row) ->
          let s = r.Experiments.xr_stats in
          J.Obj
            [ ("policy", J.String r.Experiments.xr_policy);
              ("nodes", J.Float (float r.Experiments.xr_nodes));
              ("jobs", J.Float (float r.Experiments.xr_jobs));
              ("jobs_done", J.Float (float s.Fleet_xl.x_jobs_done));
              ("slo_met", J.Float (float s.Fleet_xl.x_slo_met));
              ("slo_missed", J.Float (float s.Fleet_xl.x_slo_missed));
              ("nodes_powered", J.Float (float s.Fleet_xl.x_nodes_powered));
              ("jobs_per_kj", J.Float s.Fleet_xl.x_jobs_per_kj);
              ("throughput_per_min", J.Float s.Fleet_xl.x_throughput_per_min);
              ("events", J.Float (float s.Fleet_xl.x_events));
              ("events_per_sim_s", J.Float s.Fleet_xl.x_events_per_sim_s);
              ("makespan_ms", J.Float s.Fleet_xl.x_makespan_ms) ])
        xl_rows
    in
    (* fig7-live rows: tail latency across a live migration. Smoke trims
       the open-loop request count so CI stays fast; a full run plays the
       1M-request plane. *)
    let live_rows =
      Experiments.fig7_live_sweep
        ~requests:(if smoke then 120_000 else 1_000_000) ()
    in
    let live_entries =
      List.map
        (fun (r : Experiments.live_row) ->
          J.Obj
            [ ("workload", J.String r.Experiments.lv_label);
              ("mechanism", J.String r.Experiments.lv_mechanism);
              ("requests", J.Float (float r.Experiments.lv_requests));
              ("stalled", J.Float (float r.Experiments.lv_stalled));
              ("faulted", J.Float (float r.Experiments.lv_faulted));
              ("precopy_ms", J.Float r.Experiments.lv_precopy_ms);
              ("blackout_ms", J.Float r.Experiments.lv_blackout_ms);
              ("p50_ms", J.Float r.Experiments.lv_p50);
              ("p99_ms", J.Float r.Experiments.lv_p99);
              ("p999_ms", J.Float r.Experiments.lv_p999);
              ("mig_p50_ms", J.Float r.Experiments.lv_mig_p50);
              ("mig_p99_ms", J.Float r.Experiments.lv_mig_p99);
              ("mig_p999_ms", J.Float r.Experiments.lv_mig_p999);
              ("fingerprint", J.String r.Experiments.lv_fingerprint) ])
        live_rows
    in
    (* fig9-chaos rows: the self-healing control plane under sustained
       correlated faults, one row per arm (control on / off) over the
       same seeds. Smoke trims the seed count and request plane. *)
    let chaos_arms =
      Experiments.fig9_chaos_sweep
        ~seeds:(if smoke then 12 else 200)
        ~requests:(if smoke then 6_000 else 20_000)
        ()
    in
    let chaos_entries =
      List.map
        (fun ((_, y) : _ * Experiments.Health.Sustained.summary) ->
          let module S = Experiments.Health.Sustained in
          J.Obj
            [ ("control", J.String (if y.S.y_control then "on" else "off"));
              ("seeds", J.Float (float y.S.y_seeds));
              ("committed", J.Float (float y.S.y_committed));
              ("degraded", J.Float (float y.S.y_degraded));
              ("rolled_back", J.Float (float y.S.y_rolled_back));
              ("postponed", J.Float (float y.S.y_postponed));
              ("attempts", J.Float (float y.S.y_attempts));
              ("sheds", J.Float (float y.S.y_sheds));
              ("breaker_trips", J.Float (float y.S.y_trips));
              ("deadline_cancels", J.Float (float y.S.y_cancels));
              ("availability", J.Float y.S.y_availability);
              ("mig_p99_ms", J.Float (S.mig_p99 y)) ])
        chaos_arms
    in
    let doc =
      J.Obj
        [ ("suite", J.String "dapper-micro"); ("smoke", J.Bool smoke);
          ("benchmarks", J.List entries); ("fig8_xl", J.List xl_entries);
          ("fig7_live", J.List live_entries);
          ("fig9_chaos", J.List chaos_entries) ]
    in
    let oc = open_out results_file in
    output_string oc (J.to_string doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf
      "wrote %s (%d benchmarks, %d fig8-xl rows, %d fig7-live rows, %d \
       fig9-chaos rows)\n"
      results_file (List.length entries) (List.length xl_entries)
      (List.length live_entries) (List.length chaos_entries)
  end;
  Option.iter run_trace trace

let run () = run_micro ()
