(* The paper's evaluation, experiment by experiment. Each function prints
   the corresponding figure's rows; see EXPERIMENTS.md for the mapping
   and calibration notes. *)

open Dapper_isa
open Dapper_util
open Dapper_machine
open Dapper_net
open Dapper_workloads
open Dapper
open Dapper_security
open Dapper_cluster
module Link = Dapper_codegen.Link

let fuel = 400_000_000

(* Simulated working sets are downscaled relative to the paper's class
   A/B footprints; this factor restores paper-magnitude byte counts for
   the network/memory cost models (see EXPERIMENTS.md, Calibration). *)
let bytes_scale = 1500.0

(* Likewise, the PARSEC/NPB inputs are downscaled so native runs finish in
   simulator-friendly instruction counts; Fig. 6 and Fig. 8 scale
   execution times back to full-size inputs. *)
let exec_scale = 100_000.0

let node_of = function Arch.X86_64 -> Node.xeon | Arch.Aarch64 -> Node.rpi

let native_instrs c arch =
  let p = Process.load (Link.binary_for c arch) in
  match Process.run_to_completion p ~fuel with
  | Process.Exited_run _ -> p.Process.total_instrs
  | _ -> failwith (c.Link.cp_app ^ ": native run failed")

let exec_ms arch instrs = Node.exec_ns (node_of arch) instrs /. 1e6

let exec_ms_scaled arch instrs = exec_ms arch instrs *. exec_scale

(* Run [frac] of the program on x86, migrate, return migration result. *)
let migrate_at ?lazy_pages ?recode_on ?pipeline ?chunk_bytes ?recode_workers ?memo c
    ~total_instrs ~frac =
  let p = Process.load c.Link.cp_x86 in
  let warm = max 10_000 (int_of_float (Int64.to_float total_instrs *. frac)) in
  (match Process.run p ~max_instrs:warm with
   | Process.Progress -> ()
   | _ -> failwith (c.Link.cp_app ^ ": finished before migration point"));
  match
    Migrate.migrate ?lazy_pages ?recode_on ?pipeline ?chunk_bytes ?recode_workers
      ?memo ~bytes_scale ~src_node:Node.xeon ~dst_node:Node.rpi
      ~src_bin:c.Link.cp_x86 ~dst_bin:c.Link.cp_arm p
  with
  | Ok r -> (p, r)
  | Error e -> failwith (c.Link.cp_app ^ ": " ^ Migrate.error_to_string e)

(* ----- Fig. 5: cross-ISA transformation cost breakdown ----- *)

let fig5_benchmarks =
  [ "npb-ep.A"; "npb-cg.A"; "npb-mg.A"; "npb-ft.A"; "npb-is.A"; "linpack";
    "dhrystone"; "kmeans"; "redis" ]

let fig5 () =
  let measured =
    List.map
      (fun name ->
        let c = Registry.compiled (Registry.find name) in
        let total = native_instrs c Arch.X86_64 in
        let _, r = migrate_at c ~total_instrs:total ~frac:0.5 in
        let recode_arm =
          Migrate.recode_ns Node.rpi
            ~bytes:(int_of_float (float_of_int r.Migrate.r_image_bytes *. bytes_scale))
            r.Migrate.r_rewrite
          /. 1e6
        in
        (name, r, recode_arm))
      fig5_benchmarks
  in
  let rows =
    List.map
      (fun (name, r, recode_arm) ->
        let t = r.Migrate.r_times in
        [ name; Tbl.ms t.t_checkpoint_ms; Tbl.ms t.t_recode_ms; Tbl.ms recode_arm;
          Tbl.ms t.t_scp_ms; Tbl.ms t.t_restore_ms; Tbl.ms (Migrate.total_ms t);
          Printf.sprintf "%d KiB" (r.Migrate.r_image_bytes / 1024) ])
      measured
  in
  Tbl.print
    ~title:"Fig 5: cross-ISA transformation cost (x86-64 -> aarch64, InfiniBand)"
    ~header:[ "benchmark"; "checkpoint"; "recode@x86"; "recode@arm"; "scp"; "restore";
              "total(x86 recode)"; "image" ]
    rows;
  let n = float_of_int (List.length measured) in
  let rx =
    List.fold_left (fun a (_, r, _) -> a +. r.Migrate.r_times.t_recode_ms) 0.0 measured /. n
  in
  let ra = List.fold_left (fun a (_, _, x) -> a +. x) 0.0 measured /. n in
  Printf.printf
    "avg recode: %.1f ms on x86-64 vs %.1f ms on aarch64 (paper: 253.69 vs 1004.91; ratio %.2fx vs paper 3.96x)\n\n"
    rx ra (ra /. rx)

(* ----- Fig. 5 delta: pipelined / parallel / incremental recode -----

   Same migration point as Fig. 5 (frac 0.5), four fast paths against the
   sequential baseline:
     - pipelined: recode streams into the transfer in 256 KiB chunks, so
       only the exposed tail of recode+scp is charged ("hidden" column);
     - +4 workers: pipelined with the recode cost model spread across
       four source cores;
     - warm memo: a second migration of the unchanged binary at the same
       point against a memo populated by a cold first run — only changed
       pages/threads are re-rewritten and shipped.
   Byte-equivalence of every fast path against the sequential pipeline is
   enforced separately by `verify fastpath` (lib/verify/oracle.ml). *)

let fig5_pipelined () =
  let measured =
    List.map
      (fun name ->
        let c = Registry.compiled (Registry.find name) in
        let total = native_instrs c Arch.X86_64 in
        let seq_proc, seq = migrate_at c ~total_instrs:total ~frac:0.5 in
        ignore seq_proc;
        let _, pipe = migrate_at ~pipeline:true c ~total_instrs:total ~frac:0.5 in
        let _, par =
          migrate_at ~pipeline:true ~recode_workers:4 c ~total_instrs:total
            ~frac:0.5
        in
        let memo = Plan_cache.create_memo () in
        let _, _cold = migrate_at ~memo c ~total_instrs:total ~frac:0.5 in
        let _, warm = migrate_at ~memo c ~total_instrs:total ~frac:0.5 in
        (name, seq, pipe, par, warm))
      fig5_benchmarks
  in
  let rows =
    List.map
      (fun (name, seq, pipe, par, warm) ->
        let st = seq.Migrate.r_times and pt = pipe.Migrate.r_times in
        let hidden =
          (st.t_recode_ms +. st.t_scp_ms) -. (pt.t_recode_ms +. pt.t_scp_ms)
        in
        let wrw = warm.Migrate.r_rewrite in
        [ name; Tbl.ms (Migrate.total_ms st); Tbl.ms (Migrate.total_ms pt);
          Tbl.ms hidden; Tbl.ms (Migrate.total_ms par.Migrate.r_times);
          Tbl.ms (Migrate.total_ms warm.Migrate.r_times);
          Printf.sprintf "%d/%d"
            (Rewrite.(wrw.st_memo_thread_hits))
            (Rewrite.(wrw.st_memo_page_hits)) ])
      measured
  in
  Tbl.print
    ~title:
      "Fig 5 delta: sequential vs pipelined vs +4 workers vs warm memo \
       (x86-64 -> aarch64, InfiniBand)"
    ~header:
      [ "benchmark"; "sequential"; "pipelined"; "hidden"; "+4 workers";
        "warm memo"; "memo hits t/p" ]
    rows;
  let n = float_of_int (List.length measured) in
  let avg f = List.fold_left (fun a x -> a +. f x) 0.0 measured /. n in
  let seq_avg = avg (fun (_, s, _, _, _) -> Migrate.total_ms s.Migrate.r_times) in
  let pipe_avg = avg (fun (_, _, p, _, _) -> Migrate.total_ms p.Migrate.r_times) in
  let par_avg = avg (fun (_, _, _, p, _) -> Migrate.total_ms p.Migrate.r_times) in
  let warm_avg = avg (fun (_, _, _, _, w) -> Migrate.total_ms w.Migrate.r_times) in
  Printf.printf
    "avg end-to-end: %.1f ms sequential -> %.1f ms pipelined (%.1f%%), %.1f ms \
     with 4 recode workers (%.1f%%), %.1f ms warm-incremental (%.1f%%)\n\n"
    seq_avg pipe_avg
    ((seq_avg -. pipe_avg) /. seq_avg *. 100.0)
    par_avg
    ((seq_avg -. par_avg) /. seq_avg *. 100.0)
    warm_avg
    ((seq_avg -. warm_avg) /. seq_avg *. 100.0)

(* ----- Fig. 6: PARSEC total execution time, native vs migrated ----- *)

let fig6 () =
  let rows =
    List.map
      (fun name ->
        let sp = Registry.find name in
        let c = Registry.compiled sp in
        let ix = native_instrs c Arch.X86_64 in
        let ia = native_instrs c Arch.Aarch64 in
        let tx = exec_ms_scaled Arch.X86_64 ix and ta = exec_ms_scaled Arch.Aarch64 ia in
        (* run half on x86, migrate, finish on arm *)
        let src, r = migrate_at c ~total_instrs:ix ~frac:0.5 in
        let after =
          match Process.run_to_completion r.Migrate.r_process ~fuel with
          | Process.Exited_run _ -> r.Migrate.r_process.Process.total_instrs
          | _ -> failwith (name ^ ": migrated run failed")
        in
        let t_dapper =
          exec_ms_scaled Arch.X86_64 src.Process.total_instrs
          +. Migrate.total_ms r.Migrate.r_times
          +. exec_ms_scaled Arch.Aarch64 after
        in
        let sec v = Printf.sprintf "%.1f s" (v /. 1000.0) in
        [ name; sec tx; sec t_dapper; sec ta ])
      [ "blackscholes"; "swaptions"; "streamcluster" ]
  in
  Tbl.print
    ~title:"Fig 6: PARSEC end-to-end execution time (4 threads)"
    ~header:[ "application"; "native x86-64"; "dapper (migrated mid-run)"; "native aarch64" ]
    rows;
  print_newline ()

(* ----- Fig. 7: vanilla vs lazy migration ----- *)

let fig7 () =
  let phase_rows name c frac =
    let total = native_instrs c Arch.X86_64 in
    List.map
      (fun lazy_pages ->
        let _, r = migrate_at ~lazy_pages c ~total_instrs:total ~frac in
        (* drive the restored process to completion so lazy page fetches
           actually happen; their cost is the indirect restore *)
        (match Process.run_to_completion r.Migrate.r_process ~fuel with
         | Process.Exited_run _ | Process.Idle -> ()
         | Process.Crashed cr -> failwith (name ^ ": " ^ cr.cr_reason)
         | Process.Progress -> failwith (name ^ ": fuel"));
        let t = r.Migrate.r_times in
        let indirect =
          match r.Migrate.r_page_server with
          | Some s -> s.Migrate.srv_ns /. 1e6
          | None -> 0.0
        in
        [ name; (if lazy_pages then "lazy" else "vanilla");
          Tbl.ms t.t_checkpoint_ms; Tbl.ms t.t_recode_ms; Tbl.ms t.t_scp_ms;
          Tbl.ms (t.t_restore_ms +. indirect);
          Tbl.ms (Migrate.total_ms t +. indirect);
          Printf.sprintf "%d KiB" (r.Migrate.r_image_bytes / 1024) ])
      [ false; true ]
  in
  let rows =
    List.concat_map
      (fun (name, frac, label) ->
        let c = Registry.compiled (Registry.find name) in
        List.map (fun row -> match row with
            | b :: rest -> (b ^ "@" ^ label) :: rest
            | [] -> [])
          (phase_rows name c frac))
      [ ("npb-cg.A", 0.05, "init"); ("npb-cg.A", 0.5, "mid"); ("npb-cg.A", 0.85, "end");
        ("npb-mg.A", 0.05, "init"); ("npb-mg.A", 0.5, "mid"); ("npb-mg.A", 0.85, "end") ]
  in
  Tbl.print
    ~title:"Fig 7a: vanilla vs lazy migration (x86-64 -> aarch64)"
    ~header:[ "benchmark"; "mode"; "checkpoint"; "recode"; "scp"; "restore(+indirect)";
              "total"; "image" ]
    rows;
  (* redis with growing databases *)
  let redis_rows =
    List.concat_map
      (fun keys ->
        let m = Servers.redis ~keys ~ops:6000 () in
        let c = Link.compile ~app:(Printf.sprintf "redis-%dk" (keys / 1000)) m in
        let total = native_instrs c Arch.X86_64 in
        List.map
          (fun lazy_pages ->
            let _, r = migrate_at ~lazy_pages c ~total_instrs:total ~frac:0.7 in
            (match Process.run_to_completion r.Migrate.r_process ~fuel with
             | Process.Exited_run _ -> ()
             | _ -> failwith "redis migrated run failed");
            let t = r.Migrate.r_times in
            let indirect =
              match r.Migrate.r_page_server with
              | Some s -> s.Migrate.srv_ns /. 1e6
              | None -> 0.0
            in
            [ Printf.sprintf "redis %d keys" keys;
              (if lazy_pages then "lazy" else "vanilla");
              Tbl.ms t.t_checkpoint_ms; Tbl.ms t.t_recode_ms; Tbl.ms t.t_scp_ms;
              Tbl.ms (t.t_restore_ms +. indirect);
              Tbl.ms (Migrate.total_ms t +. indirect);
              Printf.sprintf "%d KiB" (r.Migrate.r_image_bytes / 1024) ])
          [ false; true ])
      [ 2048; 8192; 32768 ]
  in
  Tbl.print
    ~title:"Fig 7b: redis with growing in-memory databases"
    ~header:[ "server"; "mode"; "checkpoint"; "recode"; "scp"; "restore(+indirect)";
              "total"; "image" ]
    redis_rows;
  print_newline ()

(* ----- Fig. 7-live: migration under open-loop live traffic ----- *)

module Tr = Dapper_traffic

(* One row of the live-traffic experiment, shared between the printed
   tables and the BENCH_RESULTS.json fig7_live entries. *)
type live_row = {
  lv_label : string;
  lv_mechanism : string;
  lv_requests : int;
  lv_stalled : int;
  lv_faulted : int;
  lv_precopy_ms : float;
  lv_blackout_ms : float;
  lv_p50 : float;
  lv_p99 : float;
  lv_p999 : float;
  lv_mig_p50 : float;
  lv_mig_p99 : float;
  lv_mig_p999 : float;
  lv_fingerprint : string;
}

let live_lanes = 4
let live_util = 0.15    (* offered load as a fraction of lane capacity *)
let live_rps = 0.25     (* per-client request rate: populations in the millions *)
let live_seed = 0x11AFFE17L

(* Per-request cost floor for the service-time calibration: the replayed
   IR services spend a few hundred interpreted instructions per op, but a
   real server request also pays parsing, syscalls and the network stack.
   20k instructions is ~5 us on the xeon — a realistic in-memory-store
   service time — and keeps the load window wide enough to straddle the
   migration instead of drowning inside the blackout. *)
let live_floor_instrs = 20_000.0

(* Run workload [c] under open-loop load while migrating with [mech].
   The service-time model is calibrated from the workload's own native
   run ([total] instructions over [ops] requests); the client population
   is whatever it takes to offer [live_util] of lane capacity at
   [live_rps] per client. *)
let live_stats ?(seed = live_seed) ?(requests = 1_000_000) ?(reverse = false)
    c ~ops ~total mech =
  let src_arch, dst_arch =
    if reverse then (Arch.Aarch64, Arch.X86_64) else (Arch.X86_64, Arch.Aarch64)
  in
  let src_node = node_of src_arch and dst_node = node_of dst_arch in
  let src_bin = Link.binary_for c src_arch
  and dst_bin = Link.binary_for c dst_arch in
  let p = Process.load src_bin in
  let warm = max 10_000 (int_of_float (Int64.to_float total *. 0.5)) in
  (match Process.run p ~max_instrs:warm with
   | Process.Progress -> ()
   | _ -> failwith (c.Link.cp_app ^ ": finished before migration point"));
  let instrs_per_req =
    Float.max (Int64.to_float total /. float_of_int ops) live_floor_instrs
  in
  let s_src = Tr.Loadgen.service_ms ~node:src_node ~instrs_per_req in
  let s_dst = Tr.Loadgen.service_ms ~node:dst_node ~instrs_per_req in
  let rate = live_util *. float_of_int live_lanes /. s_src in
  let clients = int_of_float (Float.ceil (rate *. 1000.0 /. live_rps)) in
  let window = float_of_int requests /. rate in
  let scfg =
    { (Session.default_config ~src_bin ~dst_bin) with
      Session.cfg_src_node = src_node;
      cfg_dst_node = dst_node;
      cfg_recode_node = src_node;
      cfg_bytes_scale = bytes_scale }
  in
  let lg =
    { Tr.Loadgen.lg_seed = seed;
      lg_requests = requests;
      lg_clients = clients;
      lg_client_rps = live_rps;
      (* quiet/burst modulation averaging exactly the base rate:
         (0.8*120 + 1.6*40) / 160 = 1 *)
      lg_mmpp = Some [| (0.8, 120.0); (1.6, 40.0) |];
      lg_lanes = live_lanes;
      lg_service_src_ms = s_src;
      lg_service_dst_ms = s_dst;
      lg_migrate_at_ms = 0.25 *. window;
      lg_max_rounds = 5;
      lg_downtime_budget_ms = 25.0;
      lg_round_instrs = 200_000;
      lg_racks = Some (Rack.create ~racks:4 ~servers_each:2);
      lg_rack = 0 }
  in
  match Tr.Loadgen.run lg scfg p mech with
  | Ok st -> st
  | Error e -> failwith (c.Link.cp_app ^ ": " ^ Migrate.error_to_string e)

let live_row_of label (st : Tr.Loadgen.stats) =
  let q s p =
    if Tr.Sketch.count s = 0 then 0.0 else Tr.Sketch.quantile s p
  in
  { lv_label = label;
    lv_mechanism = Tr.Budget.mechanism_name st.Tr.Loadgen.ls_mechanism;
    lv_requests = st.Tr.Loadgen.ls_requests;
    lv_stalled = st.Tr.Loadgen.ls_stalled;
    lv_faulted = st.Tr.Loadgen.ls_faulted;
    lv_precopy_ms = st.Tr.Loadgen.ls_precopy_ms;
    lv_blackout_ms = st.Tr.Loadgen.ls_blackout_ms;
    lv_p50 = q st.Tr.Loadgen.ls_all 0.5;
    lv_p99 = q st.Tr.Loadgen.ls_all 0.99;
    lv_p999 = q st.Tr.Loadgen.ls_all 0.999;
    lv_mig_p50 = q st.Tr.Loadgen.ls_during 0.5;
    lv_mig_p99 = q st.Tr.Loadgen.ls_during 0.99;
    lv_mig_p999 = q st.Tr.Loadgen.ls_during 0.999;
    lv_fingerprint = Printf.sprintf "%016Lx" st.Tr.Loadgen.ls_fingerprint }

let live_mechanisms = Tr.Budget.[ Vanilla; Postcopy; Hybrid ]

(* The BENCH_RESULTS.json sweep: redis under load, forward direction,
   all three mechanisms. *)
let fig7_live_sweep ?(requests = 1_000_000) () =
  let m = Servers.redis ~keys:4096 ~ops:6000 () in
  let c = Link.compile ~app:"redis-live" m in
  let total = native_instrs c Arch.X86_64 in
  List.map
    (fun mech ->
      live_row_of "redis x86->arm" (live_stats ~requests c ~ops:6000 ~total mech))
    live_mechanisms

let fig7_live () =
  let workloads =
    [ ("redis", Servers.redis ~keys:4096 ~ops:6000 (), 6000, false);
      ("redis", Servers.redis ~keys:4096 ~ops:6000 (), 6000, true);
      ("nginx", Servers.nginx ~requests:600 (), 600, false) ]
  in
  let all_rows =
    List.concat_map
      (fun (name, m, ops, reverse) ->
        let c = Link.compile ~app:(name ^ "-live") m in
        let src_arch = if reverse then Arch.Aarch64 else Arch.X86_64 in
        let total = native_instrs c src_arch in
        let label =
          Printf.sprintf "%s %s" name
            (if reverse then "arm->x86" else "x86->arm")
        in
        List.map
          (fun mech ->
            let st = live_stats ~reverse c ~ops ~total mech in
            (live_row_of label st, st))
          live_mechanisms)
      workloads
  in
  Tbl.print
    ~title:
      "Fig 7-live: tail latency across a migration (1M open-loop requests)"
    ~header:
      [ "workload"; "mechanism"; "stalled"; "faults"; "precopy"; "blackout";
        "p50"; "p99"; "p999"; "mig p50"; "mig p99"; "mig p999" ]
    (List.map
       (fun (r, _) ->
         [ r.lv_label; r.lv_mechanism; string_of_int r.lv_stalled;
           string_of_int r.lv_faulted; Tbl.ms r.lv_precopy_ms;
           Tbl.ms r.lv_blackout_ms; Tbl.ms r.lv_p50; Tbl.ms r.lv_p99;
           Tbl.ms r.lv_p999; Tbl.ms r.lv_mig_p50; Tbl.ms r.lv_mig_p99;
           Tbl.ms r.lv_mig_p999 ])
       all_rows);
  (* Downtime-budget policy: projections calibrated from the measured
     redis forward rows, then the mechanism the policy would pick at
     each budget. *)
  (match
     List.filter (fun (r, _) -> r.lv_label = "redis x86->arm") all_rows
   with
   | (v, vst) :: rest ->
     let find name =
       List.find_opt (fun (r, _) -> r.lv_mechanism = name) rest
     in
     let vt = vst.Tr.Loadgen.ls_outcome.Session.r_times in
     let image_wire =
       int_of_float (float_of_int vst.Tr.Loadgen.ls_outcome.Session.r_image_bytes
                     *. bytes_scale)
     in
     let wire_ns_per_byte =
       if image_wire = 0 then 0.0
       else vt.Session.t_scp_ms *. 1e6 /. float_of_int image_wire
     in
     let residual_bytes =
       match find "hybrid" with
       | Some (_, hst) ->
         (match hst.Tr.Loadgen.ls_precopy with
          | Some pcs ->
            int_of_float
              (float_of_int
                 (List.length pcs.Session.pcs_residual
                  * Dapper_binary.Layout.page_size)
               *. bytes_scale)
          | None -> 0)
       | None -> 0
     in
     let lazy_fixed =
       match find "lazy" with
       | Some (lr, _) -> lr.lv_blackout_ms
       | None -> v.lv_blackout_ms
     in
     let est =
       { Tr.Budget.e_image_bytes = image_wire;
         e_residual_bytes = residual_bytes;
         e_fixed_ms = Session.total_ms vt -. vt.Session.t_scp_ms;
         e_lazy_fixed_ms = lazy_fixed;
         e_wire_ns_per_byte = wire_ns_per_byte }
     in
     Tbl.print
       ~title:"Fig 7-live: downtime-budget mechanism selection (redis)"
       ~header:[ "budget"; "chosen"; "projected downtime"; "fits budget" ]
       (List.map
          (fun budget ->
            let mech, fits = Tr.Budget.choose_detail ~budget_ms:budget est in
            [ Tbl.ms budget; Tr.Budget.mechanism_name mech;
              Tbl.ms (Tr.Budget.downtime_ms est mech);
              (if fits then "yes" else "no (least-bad fallback)") ])
          [ 2000.0; 500.0; 100.0; 10.0 ])
   | [] -> ());
  print_newline ()

(* ----- Fig. 8: energy efficiency and throughput on the hybrid cluster ----- *)

(* Per-job costs for the Fig. 8 family: measured native runs and a real
   migration per NPB class-B kind, reduced to analytic job costs. *)
let fig8_kinds () =
  List.map
    (fun name ->
      let c = Registry.compiled (Registry.find name) in
      let ix = native_instrs c Arch.X86_64 in
      let ia = native_instrs c Arch.Aarch64 in
      let total = ix in
      let _, r = migrate_at c ~total_instrs:total ~frac:0.3 in
      Scheduler.job_kind_of_session ~name
        ~xeon_ms:(exec_ms_scaled Arch.X86_64 ix /. 10.0)
        ~rpi_ms:(exec_ms_scaled Arch.Aarch64 ia /. 10.0)
        ~times:r.Migrate.r_times)
    [ "npb-ep.B"; "npb-cg.B"; "npb-mg.B"; "npb-ft.B" ]

let fig8 () =
  let kinds = fig8_kinds () in
  Tbl.print ~title:"Fig 8 inputs: per-job costs (NPB class B)"
    ~header:[ "job"; "xeon"; "rpi"; "migration" ]
    (List.map
       (fun k ->
         [ k.Scheduler.jk_name; Tbl.ms k.jk_xeon_ms; Tbl.ms k.jk_rpi_ms;
           Tbl.ms k.jk_migration_ms ])
       kinds);
  let base_cfg =
    { Scheduler.c_window_ms = Scheduler.default_window_ms; c_xeon_slots = 7; c_rpis = 0;
      c_rpi_slots_each = 3 }
  in
  let base = Scheduler.run base_cfg kinds in
  let rows =
    List.map
      (fun rpis ->
        let r = Scheduler.run { base_cfg with c_rpis = rpis } kinds in
        [ (match rpis with 0 -> "xeon only" | n -> Printf.sprintf "xeon + %d rpi" n);
          string_of_int r.r_jobs_done;
          string_of_int r.r_jobs_rpi;
          Printf.sprintf "%.1f" r.r_energy_kj;
          Printf.sprintf "%.3f" r.r_jobs_per_kj;
          (if rpis = 0 then "-"
           else Tbl.pct (Scheduler.efficiency_gain_pct ~baseline:base ~subject:r /. 100.0));
          (if rpis = 0 then "-"
           else Tbl.pct (Scheduler.throughput_gain_pct ~baseline:base ~subject:r /. 100.0)) ])
      [ 0; 1; 3 ]
  in
  Tbl.print
    ~title:"Fig 8: 30-minute batch window, dynamic eviction to Raspberry Pis"
    ~header:[ "configuration"; "jobs"; "on rpi"; "energy kJ"; "jobs/kJ"; "eff gain";
              "throughput gain" ]
    rows;
  Printf.printf "paper: energy efficiency +15%%..39%%, throughput +37%%..52%%\n\n"

(* Fig. 8 cross-validation: the same eviction experiment with real
   processes and real live migrations (downscaled window/jobs; see
   Fleet's speed_scale). *)
let fig8_fleet () =
  let job = Registry.compiled (Registry.find "nginx") in
  let cfg =
    { Fleet.default_config with
      f_window_ms = 20_000.0; f_xeon_slots = 4; f_rpis = 2; f_rpi_slots_each = 2;
      f_bytes_scale = bytes_scale }
  in
  let base = Fleet.run { cfg with f_rpis = 0; f_evict = false } [ job ] in
  let evicting = Fleet.run cfg [ job ] in
  Tbl.print
    ~title:"Fig 8 (cross-validation): real processes, real live migrations"
    ~header:[ "configuration"; "jobs"; "on rpi"; "evictions"; "energy kJ"; "jobs/kJ" ]
    [ [ "xeon only"; string_of_int base.f_jobs_done; "0"; "0";
        Printf.sprintf "%.3f" base.f_energy_kj;
        Printf.sprintf "%.2f" base.f_jobs_per_kj ];
      [ "xeon + 2 rpi (dapper eviction)"; string_of_int evicting.f_jobs_done;
        string_of_int evicting.f_jobs_done_rpi; string_of_int evicting.f_evictions;
        Printf.sprintf "%.3f" evicting.f_energy_kj;
        Printf.sprintf "%.2f" evicting.f_jobs_per_kj ] ];
  Printf.printf
    "every evicted job was paused at equivalence points, dumped, rewritten for aarch64 and restored live (%d migrations, %.0f ms total overhead)\n\n"
    evicting.f_evictions evicting.f_migration_ms_total

(* ----- Fig. 8 XL: the eviction scheduler at datacenter scale ----- *)

type xl_row = {
  xr_policy : string;
  xr_nodes : int;
  xr_jobs : int;
  xr_stats : Fleet_xl.stats;
}

let fig8_xl_policies = Placement.[ First_fit; Energy_aware; Slo_aware ]

(* Slow tier split 20% Jetson-class / 30% Pi 5 / 50% Pi 4. The fastest
   boards get the lowest slot ids (racked first), so first-fit packs
   onto Jetsons, energy-aware walks the order backwards to the Pi 4s,
   and slo-aware lands on the Pi 5s — the three policies genuinely
   diverge instead of shadowing each other. *)
let fig8_xl_config ~nodes ~jobs ~policy =
  let jetson = max 1 (nodes / 5) in
  let rpi5 = max 1 (nodes * 3 / 10) in
  let rpi = max 1 (nodes - jetson - rpi5) in
  { Fleet_xl.x_window_ms = 86_400_000.0 (* 24 h *);
    x_xeon_slots = max 7 (7 * nodes / 10);
    x_classes =
      [ { Fleet_xl.xc_node = Node.jetson; xc_nodes = jetson; xc_slots_per_node = 4 };
        { xc_node = Node.rpi5; xc_nodes = rpi5; xc_slots_per_node = 3 };
        { xc_node = Node.rpi; xc_nodes = rpi; xc_slots_per_node = 3 } ];
    x_jobs = jobs;
    x_placement = policy;
    x_shards = max 1 (min 64 (nodes / 8));
    x_racks = max 1 (nodes / 40);
    x_page_servers_each = 4;
    x_slo_factor = 2.5;
    x_fault = None;
    x_loss_every_ms = 0.0;
    x_rack_gate = None;
    x_rack_report = None }

let fig8_xl_scales =
  [ (10, 1_000); (100, 10_000); (1_000, 100_000); (10_000, 1_000_000) ]

(* [max_nodes] trims the sweep (CI smoke stops at 1k nodes; the full
   figure goes to 10k nodes / 1M jobs). *)
let fig8_xl_sweep ?(max_nodes = 10_000) () =
  let kinds = fig8_kinds () in
  List.concat_map
    (fun (nodes, jobs) ->
      if nodes > max_nodes then []
      else
        List.map
          (fun policy ->
            let stats = Fleet_xl.run (fig8_xl_config ~nodes ~jobs ~policy) kinds in
            { xr_policy = Placement.name policy; xr_nodes = nodes; xr_jobs = jobs;
              xr_stats = stats })
          fig8_xl_policies)
    fig8_xl_scales

let fig8_xl () =
  let rows = fig8_xl_sweep () in
  Tbl.print
    ~title:
      "Fig 8 XL: eviction fleet at scale (heterogeneous slow tier, per-rack page servers)"
    ~header:
      [ "policy"; "nodes"; "jobs"; "done"; "slow"; "boards on"; "slo met"; "jobs/kJ";
        "thr/min"; "events/sim-s"; "makespan s" ]
    (List.map
       (fun r ->
         let s = r.xr_stats in
         [ r.xr_policy; string_of_int r.xr_nodes; string_of_int r.xr_jobs;
           string_of_int s.Fleet_xl.x_jobs_done; string_of_int s.x_jobs_slow;
           string_of_int s.x_nodes_powered;
           Printf.sprintf "%d/%d" s.x_slo_met (s.x_slo_met + s.x_slo_missed);
           Printf.sprintf "%.3f" s.x_jobs_per_kj;
           Printf.sprintf "%.0f" s.x_throughput_per_min;
           Printf.sprintf "%.0f" s.x_events_per_sim_s;
           Printf.sprintf "%.0f" (s.x_makespan_ms /. 1000.0) ])
       rows);
  Printf.printf
    "event-driven engine: cost scales with events, not nodes x quanta; first-fit packs the fast boards, energy-aware holds the efficient ones, slo-aware pays exactly for deadlines\n\n"

(* ----- Fig. 9 & 10: stack shuffling cost and entropy ----- *)

let shuffle_benchmarks =
  [ "nginx"; "redis"; "npb-ep.A"; "npb-cg.A"; "npb-mg.A"; "npb-ft.A"; "npb-is.A";
    "linpack"; "dhrystone"; "kmeans" ]

(* Shuffle cost model: the SBI pass is dominated by disassembling and
   re-encoding the code section of both the checkpointed process and the
   transformed source binary (paper: time proportional to code size). *)
let shuffle_ns node text_bytes =
  let per_byte_ns = 2000.0 in
  float_of_int text_bytes *. per_byte_ns
  *. (Node.xeon.Node.n_ops_per_ns /. node.Node.n_ops_per_ns)

let fig9 () =
  let rows =
    List.concat_map
      (fun name ->
        let c = Registry.compiled (Registry.find name) in
        List.map
          (fun arch ->
            let bin = Link.binary_for c arch in
            let node = node_of arch in
            (* run, pause, dump, shuffle, rewrite, restore - for real *)
            let p = Process.load bin in
            ignore (Process.run p ~max_instrs:400_000);
            (match Monitor.request_pause p ~budget:40_000_000 with
             | Ok _ -> ()
             | Error e -> failwith (Monitor.error_to_string e));
            let image = Dapper_error.ok_exn (Dapper_criu.Dump.dump p) in
            let shuffled, _ = Shuffle.shuffle_binary (Rng.create 11L) bin in
            let image', rw =
              Dapper_error.ok_exn (Rewrite.rewrite image ~src:bin ~dst:shuffled)
            in
            let _ = Dapper_error.ok_exn (Dapper_criu.Restore.restore image' shuffled) in
            let dump_stats = Dapper_criu.Dump.stats_of image in
            (* checkpoint/restore costs at their calibration anchors (the
               nodes the paper measured each phase on) *)
            let checkpoint_ms =
              Migrate.checkpoint_ms ~node:Node.xeon
                ~bytes:(int_of_float
                          (float_of_int
                             (dump_stats.Dapper_criu.Dump.pages_dumped
                              * Dapper_binary.Layout.page_size)
                           *. bytes_scale))
            in
            let shuffle_ms = shuffle_ns node (Dapper_binary.Binary.text_size bin) /. 1e6 in
            let recode_ms =
              Migrate.recode_ns node
                ~bytes:(int_of_float (float_of_int (Dapper_criu.Images.total_bytes image')
                                      *. bytes_scale))
                rw
              /. 1e6
            in
            let restore_ms =
              Migrate.restore_ms ~node:Node.rpi
                ~bytes:(int_of_float (float_of_int (Dapper_criu.Images.total_bytes image')
                                      *. bytes_scale))
            in
            [ name; Arch.name arch; Tbl.ms checkpoint_ms; Tbl.ms shuffle_ms;
              Tbl.ms recode_ms; Tbl.ms restore_ms;
              Tbl.ms (checkpoint_ms +. shuffle_ms +. recode_ms +. restore_ms) ])
          Arch.all)
      shuffle_benchmarks
  in
  Tbl.print
    ~title:"Fig 9: stack shuffling transformation cost breakdown"
    ~header:[ "benchmark"; "arch"; "checkpoint"; "shuffle(SBI)"; "recode"; "restore"; "total" ]
    rows;
  Printf.printf "paper: average 573 ms on x86-64, 3.2 s on aarch64 (proportional to code size)\n\n"

(* ----- Fig 9-chaos: the self-healing control plane under sustained faults ----- *)

module Health = Dapper_health

let fig9_chaos_seed0 = 0x9CA05EEDL

let fig9_chaos_setup () =
  let m = Servers.redis ~keys:2048 ~ops:3000 () in
  let c = Link.compile ~app:"redis-chaos" m in
  let total = native_instrs c Arch.X86_64 in
  let src_bin = Link.binary_for c Arch.X86_64 in
  let dst_bin = Link.binary_for c Arch.Aarch64 in
  let warm = max 10_000 (int_of_float (Int64.to_float total *. 0.5)) in
  let fresh () =
    let p = Process.load src_bin in
    (match Process.run p ~max_instrs:warm with
     | Process.Progress -> ()
     | _ -> failwith "redis-chaos: finished before migration point");
    p
  in
  let scfg =
    { (Session.default_config ~src_bin ~dst_bin) with
      Session.cfg_src_node = node_of Arch.X86_64;
      cfg_dst_node = node_of Arch.Aarch64;
      cfg_recode_node = node_of Arch.X86_64;
      cfg_bytes_scale = bytes_scale }
  in
  (scfg, fresh)

(* Both arms replay the same seeds — the same scenarios, the same fault
   schedules — so the control-on vs control-off contrast is paired. *)
let fig9_chaos_sweep ?(seeds = 200) ?(requests = 20_000) () =
  let scfg, fresh = fig9_chaos_setup () in
  List.map
    (fun control ->
      let cfg =
        { Health.Sustained.default_cfg with
          Health.Sustained.su_requests = requests;
          su_control = control }
      in
      Health.Sustained.sweep cfg scfg ~fresh ~seeds ~seed0:fig9_chaos_seed0)
    [ true; false ]

let fig9_chaos_sustained () =
  let arms = fig9_chaos_sweep () in
  let q s p =
    if Tr.Sketch.count s = 0 then 0.0 else Tr.Sketch.quantile s p
  in
  Tbl.print
    ~title:
      "Fig 9-chaos: 200 seeds of sustained correlated faults, control plane \
       on vs off"
    ~header:
      [ "control"; "committed"; "degraded"; "rolled back"; "postponed";
        "attempts"; "sheds"; "trips"; "cancels"; "availability"; "mig p99";
        "p99" ]
    (List.map
       (fun (_, (y : Health.Sustained.summary)) ->
         [ (if y.Health.Sustained.y_control then "on" else "off");
           string_of_int y.Health.Sustained.y_committed;
           string_of_int y.Health.Sustained.y_degraded;
           string_of_int y.Health.Sustained.y_rolled_back;
           string_of_int y.Health.Sustained.y_postponed;
           string_of_int y.Health.Sustained.y_attempts;
           string_of_int y.Health.Sustained.y_sheds;
           string_of_int y.Health.Sustained.y_trips;
           string_of_int y.Health.Sustained.y_cancels;
           Printf.sprintf "%.4f" y.Health.Sustained.y_availability;
           Tbl.ms (Health.Sustained.mig_p99 y);
           Tbl.ms (q y.Health.Sustained.y_all 0.99) ])
       arms);
  (* one sample degradation trace, so the event plumbing is visible *)
  (match arms with
   | (runs, _) :: _ ->
     (match
        List.find_opt
          (fun r -> r.Health.Sustained.r_events <> [])
          runs
      with
      | Some r ->
        Printf.printf "sample degradation trace (seed %016Lx, %s):\n"
          r.Health.Sustained.r_seed
          (Health.Sustained.verdict_name r.Health.Sustained.r_verdict);
        List.iter print_endline (Health.Sustained.event_lines r)
      | None -> ())
   | [] -> ());
  print_newline ()

let fig10 () =
  let per_arch arch =
    List.map
      (fun name ->
        let c = Registry.compiled (Registry.find name) in
        let _, stats = Shuffle.shuffle_binary (Rng.create 23L) (Link.binary_for c arch) in
        (name, Shuffle.average_bits stats))
      shuffle_benchmarks
  in
  let x = per_arch Arch.X86_64 and a = per_arch Arch.Aarch64 in
  let rows =
    List.map2
      (fun (name, bx) (_, ba) ->
        [ name; Printf.sprintf "%.2f" bx; Printf.sprintf "%.2f" ba ])
      x a
  in
  let avg l = List.fold_left (fun s (_, b) -> s +. b) 0.0 l /. float_of_int (List.length l) in
  Tbl.print ~title:"Fig 10: average bits of entropy from stack shuffling"
    ~header:[ "benchmark"; "x86-64 bits"; "aarch64 bits" ]
    (rows @ [ [ "AVERAGE"; Printf.sprintf "%.2f" (avg x); Printf.sprintf "%.2f" (avg a) ] ]);
  Printf.printf
    "paper: x86-64 avg 4.74 (nginx 5.76, redis 5.38, NPB 3.09); aarch64 avg 3.33 (lower: load/store-pair exclusion)\n\n"

(* ----- Fig. 11: attack-surface reduction vs the Popcorn baseline ----- *)

let fig11 () =
  let rows, reds =
    List.fold_left
      (fun (rows, reds) name ->
        let sp = Registry.find name in
        let m = Lazy.force sp.Registry.sp_modul in
        let dapper_bin = Registry.compiled sp in
        let popcorn =
          Link.compile_with_inline_runtime ~app:sp.Registry.sp_name
            ~runtime_ir:(Popcorn.runtime_ir ()) m
        in
        let per_arch arch =
          let g_d = Gadgets.scan (Link.binary_for dapper_bin arch) in
          let g_p = Gadgets.scan (Link.binary_for popcorn arch) in
          (g_d, g_p, Gadgets.reduction_pct ~baseline:g_p ~subject:g_d)
        in
        let dx, px, rx = per_arch Arch.X86_64 in
        let da, pa, ra = per_arch Arch.Aarch64 in
        ( rows
          @ [ [ name;
                string_of_int px.Gadgets.g_total; string_of_int dx.Gadgets.g_total;
                Printf.sprintf "%.1f%%" rx;
                string_of_int pa.Gadgets.g_total; string_of_int da.Gadgets.g_total;
                Printf.sprintf "%.1f%%" ra ] ],
          (rx, ra) :: reds ))
      ([], [])
      shuffle_benchmarks
  in
  let avg sel = List.fold_left (fun s r -> s +. sel r) 0.0 reds /. float_of_int (List.length reds) in
  Tbl.print
    ~title:"Fig 11: ROP gadget reduction vs Popcorn-style inline runtime"
    ~header:[ "benchmark"; "popcorn x86"; "dapper x86"; "reduction x86"; "popcorn arm";
              "dapper arm"; "reduction arm" ]
    (rows
     @ [ [ "AVERAGE"; ""; ""; Printf.sprintf "%.1f%%" (avg fst); ""; "";
           Printf.sprintf "%.1f%%" (avg snd) ] ]);
  Printf.printf "paper: average reduction 59.28%% (x86-64), 71.91%% (aarch64)\n\n"

(* ----- Section IV-B: exploit mitigation ----- *)

let exploits () =
  let trials = 10 in
  let rows =
    List.concat_map
      (fun attack ->
        let c = Link.compile ~app:"vuln" (Exploits.vulnerable_module attack) in
        List.map
          (fun arch ->
            let bin = Link.binary_for c arch in
            let plain = Exploits.run ~attack ~target:bin ~knowledge:bin in
            let pwned = ref 0 and crashed = ref 0 in
            for seed = 1 to trials do
              let shuffled, _ =
                Shuffle.shuffle_binary (Rng.create (Int64.of_int (seed * 7919))) bin
              in
              match Exploits.run ~attack ~target:shuffled ~knowledge:bin with
              | Exploits.Pwned -> incr pwned
              | Exploits.Crashed _ -> incr crashed
              | Exploits.Defeated -> ()
            done;
            [ Exploits.attack_name attack; Arch.name arch;
              Exploits.outcome_to_string plain;
              Printf.sprintf "%d/%d pwned, %d crashed, %d clean-defeated" !pwned trials
                !crashed (trials - !pwned - !crashed) ])
          Arch.all)
      Exploits.all_attacks
  in
  Tbl.print ~title:"Section IV-B: exploit outcomes (plain vs across 10 reshuffles)"
    ~header:[ "attack"; "arch"; "unprotected"; "dapper-shuffled" ]
    rows;
  (* BOPC empirical success rate across shuffles vs the analytic bound *)
  let c = Link.compile ~app:"vuln" (Exploits.vulnerable_module Exploits.Bopc) in
  let bin = c.Link.cp_x86 in
  let trials = 60 in
  let wins = ref 0 in
  for seed = 1 to trials do
    let shuffled, _ = Shuffle.shuffle_binary (Rng.create (Int64.of_int seed)) bin in
    match Exploits.run ~attack:Exploits.Bopc ~target:shuffled ~knowledge:bin with
    | Exploits.Pwned -> incr wins
    | _ -> ()
  done;
  Printf.printf
    "BOPC 3-write payload vs %d reshuffles: %d successes (%.2f%%); paper's analytic bound for 4 bits: 0.195%%\n\n"
    trials !wins
    (100.0 *. float_of_int !wins /. float_of_int trials)

(* ----- ablations of DESIGN.md's call-outs ----- *)

let ablation () =
  let opts_off = { Dapper_codegen.Opts.default with promote = false } in
  let sp = Registry.find "npb-cg.A" in
  let m = Lazy.force sp.Registry.sp_modul in
  let with_p = Link.compile ~app:"cg-promote" m in
  let without_p = Link.compile ~opts:opts_off ~app:"cg-nopromote" m in
  let reg_resident (c : Link.compiled) arch =
    let bin = Link.binary_for c arch in
    List.fold_left
      (fun acc (fm : Dapper_binary.Stackmap.func_map) ->
        acc + List.length fm.fm_promoted)
      0 bin.Dapper_binary.Binary.bin_stackmaps
  in
  Tbl.print ~title:"Ablation: callee-saved register promotion (npb-cg.A)"
    ~header:[ "config"; "x86 reg-resident"; "arm reg-resident" ]
    [ [ "promotion on"; string_of_int (reg_resident with_p Arch.X86_64);
        string_of_int (reg_resident with_p Arch.Aarch64) ];
      [ "promotion off"; string_of_int (reg_resident without_p Arch.X86_64);
        string_of_int (reg_resident without_p Arch.Aarch64) ] ];
  (* pair fusion vs aarch64 entropy: isolate pinning by disabling
     promotion, which otherwise keeps the fusable argument stores out of
     memory entirely *)
  let fuse_on =
    Link.compile
      ~opts:{ Dapper_codegen.Opts.default with promote = false }
      ~app:"nginx-fuse"
      (Lazy.force (Registry.find "nginx").sp_modul)
  in
  let fuse_off =
    Link.compile
      ~opts:{ Dapper_codegen.Opts.default with arm_pair_fusion = false; promote = false }
      ~app:"nginx-nofuse"
      (Lazy.force (Registry.find "nginx").sp_modul)
  in
  let stats c =
    let _, st = Shuffle.shuffle_binary (Rng.create 3L) c.Link.cp_arm in
    let pinned = List.fold_left (fun a fe -> a + fe.Shuffle.fe_pinned) 0 st.sh_funcs in
    (Shuffle.average_bits st, pinned)
  in
  let bits_on, pin_on = stats fuse_on in
  let bits_off, pin_off = stats fuse_off in
  Tbl.print ~title:"Ablation: aarch64 load/store-pair fusion vs entropy (nginx)"
    ~header:[ "config"; "aarch64 bits"; "pair-pinned allocations" ]
    [ [ "fusion on (paper)"; Printf.sprintf "%.2f" bits_on; string_of_int pin_on ];
      [ "fusion off"; Printf.sprintf "%.2f" bits_off; string_of_int pin_off ] ];
  (* promotion is the other source of the aarch64 entropy deficit *)
  let arm_bits opts name =
    let c = Link.compile ~opts ~app:name (Lazy.force (Registry.find "nginx").sp_modul) in
    let _, st = Shuffle.shuffle_binary (Rng.create 3L) c.Link.cp_arm in
    Shuffle.average_bits st
  in
  Tbl.print ~title:"Ablation: promotion vs aarch64 entropy (nginx)"
    ~header:[ "config"; "aarch64 bits" ]
    [ [ "promotion on (paper)"; Printf.sprintf "%.2f" (arm_bits Dapper_codegen.Opts.default "ng-p1") ];
      [ "promotion off";
        Printf.sprintf "%.2f"
          (arm_bits { Dapper_codegen.Opts.default with promote = false } "ng-p0") ] ];
  (* backedge checkers vs pause latency *)
  let drain opts =
    let c = Link.compile ~opts ~app:"cg-drain" m in
    let p = Process.load c.Link.cp_x86 in
    ignore (Process.run p ~max_instrs:500_000);
    match Monitor.request_pause p ~budget:40_000_000 with
    | Ok stats -> Int64.to_int stats.Monitor.ps_instrs_drained
    | Error e -> failwith (Monitor.error_to_string e)
  in
  (* DSU padding slack: how much body growth a hot update absorbs *)
  let grown extra =
    (* the same function with [extra] additional statements *)
    let mm = Dapper_clite.Cl.create "padded" in
    Dapper_clite.Cstd.add mm;
    Dapper_clite.Cl.func mm "hot" [ ("x", Dapper_ir.Ir.I64) ] (fun b ->
        let open Dapper_clite.Cl in
        decl b "t" (v "x");
        for _ = 1 to extra do
          set b "t" (add (mul (v "t") (i 3)) (i 1))
        done;
        ret b (v "t"));
    Dapper_clite.Cl.func mm "main" [] (fun b ->
        let open Dapper_clite.Cl in
        ret b (call "hot" [ i 5 ]));
    Dapper_clite.Cl.finish mm
  in
  let compatible pad base extra =
    let opts = { Dapper_codegen.Opts.default with pad_quantum = pad } in
    let v1 = Link.compile ~opts ~app:"padded" (grown base) in
    let v2 = Link.compile ~opts ~app:"padded" (grown (base + extra)) in
    List.for_all2
      (fun (a : Dapper_binary.Binary.symbol) (b : Dapper_binary.Binary.symbol) ->
        Int64.equal a.sym_addr b.sym_addr)
      v1.Link.cp_x86.bin_symbols v2.Link.cp_x86.bin_symbols
  in
  let max_growth pad base =
    let rec go n =
      if n > 60 then 60 else if compatible pad base n then go (n + 1) else n - 1
    in
    go 1
  in
  (* average over several base sizes to smooth quantum-boundary effects *)
  let avg_growth pad =
    let bases = [ 0; 1; 2; 3 ] in
    List.fold_left (fun a b -> a + max_growth pad b) 0 bases / List.length bases
  in
  Tbl.print
    ~title:"Ablation: DSU padding slack (statements a hot function can grow by, avg)"
    ~header:[ "pad_quantum"; "extra statements before symbols move" ]
    (List.map
       (fun pad -> [ string_of_int pad; string_of_int (avg_growth pad) ])
       [ 16; 128; 512; 1024 ]);
  Tbl.print ~title:"Ablation: backedge checkers vs pause drain (npb-cg.A)"
    ~header:[ "config"; "instructions drained before quiescence" ]
    [ [ "function entries only (paper)";
        string_of_int (drain Dapper_codegen.Opts.default) ];
      [ "entries + loop headers";
        string_of_int
          (drain { Dapper_codegen.Opts.default with backedge_checkers = true }) ] ];
  print_newline ()

(* ----- periodic re-randomization: rewrite-plan cache across epochs ----- *)

let rerand () =
  Plan_cache.clear ();
  Dapper_binary.Stackmap_index.reset_counters ();
  let c = Registry.compiled (Registry.find "redis") in
  let bin = c.Link.cp_x86 in
  let p = Process.load bin in
  ignore (Process.run p ~max_instrs:100_000);
  let rows = ref [] in
  let report epoch (rw : Rewrite.stats) =
    rows :=
      [ string_of_int epoch; string_of_int rw.Rewrite.st_frames;
        string_of_int rw.Rewrite.st_values; string_of_int rw.Rewrite.st_plan_hits;
        string_of_int rw.Rewrite.st_plan_misses;
        string_of_int rw.Rewrite.st_index_lookups;
        string_of_int rw.Rewrite.st_interval_lookups ]
      :: !rows
  in
  (match
     Policy.rerandomize_periodically ~report p ~current:bin ~rng:(Rng.create 7L)
       ~interval:50_000 ~epochs:5
   with
   | Error e -> failwith (Policy.error_to_string e)
   | Ok (_, epochs) ->
     Tbl.print
       ~title:"Periodic re-randomization: rewrite-plan cache across epochs (redis, x86-64)"
       ~header:
         [ "epoch"; "frames"; "values"; "plan hits"; "plan misses"; "index lookups";
           "interval probes" ]
       (List.rev !rows);
     Printf.printf
       "completed %d reshuffle epochs; shuffling permutes only frame offsets, so every epoch after the first reuses cached (offset-free) rewrite plans\n\n"
       epochs);
  (* The same counters in a cross-ISA migration's cost report. *)
  let q = Process.load bin in
  ignore (Process.run q ~max_instrs:100_000);
  match
    Migrate.migrate ~src_node:Node.xeon ~dst_node:Node.rpi ~src_bin:bin
      ~dst_bin:c.Link.cp_arm q
  with
  | Ok r -> Printf.printf "cross-ISA migration: %s\n\n" (Migrate.cost_report r)
  | Error e -> failwith (Migrate.error_to_string e)

let all () =
  fig5 ();
  fig5_pipelined ();
  fig6 ();
  fig7 ();
  fig7_live ();
  fig8 ();
  fig8_fleet ();
  fig8_xl ();
  fig9 ();
  fig9_chaos_sustained ();
  fig10 ();
  fig11 ();
  exploits ();
  ablation ()
