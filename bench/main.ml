(* Benchmark harness entry point: `main.exe` regenerates every table and
   figure of the paper's evaluation; `main.exe <experiment>` runs one. *)

let experiments =
  [ ("fig5", Experiments.fig5); ("fig6", Experiments.fig6); ("fig7", Experiments.fig7);
    ("fig8", Experiments.fig8); ("fig8-fleet", Experiments.fig8_fleet); ("fig9", Experiments.fig9); ("fig10", Experiments.fig10);
    ("fig11", Experiments.fig11); ("exploits", Experiments.exploits);
    ("ablation", Experiments.ablation); ("rerand", Experiments.rerand);
    ("bechamel", Micro.run) ]

let () =
  match Array.to_list Sys.argv with
  | _ :: [] ->
    print_endline "Dapper reproduction: running the full evaluation\n";
    Experiments.all ();
    Micro.run ()
  | _ :: "micro" :: flags ->
    (* `micro [--json] [--smoke]`: the bechamel suite, optionally writing
       machine-readable results to BENCH_RESULTS.json; --smoke shrinks
       the measurement quota for CI. *)
    (match List.filter (fun f -> f <> "--json" && f <> "--smoke") flags with
     | [] -> ()
     | unknown :: _ ->
       Printf.eprintf "unknown micro flag %S (expected --json and/or --smoke)\n" unknown;
       exit 1);
    Micro.run_micro ~json:(List.mem "--json" flags) ~smoke:(List.mem "--smoke" flags) ()
  | _ :: names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst experiments @ [ "micro" ]));
          exit 1)
      names
  | [] -> assert false
