(* Benchmark harness entry point: `main.exe` regenerates every table and
   figure of the paper's evaluation; `main.exe <experiment>` runs one. *)

let experiments =
  [ ("fig5", Experiments.fig5); ("fig5-pipelined", Experiments.fig5_pipelined);
    ("fig6", Experiments.fig6); ("fig7", Experiments.fig7);
    ("fig7-live", Experiments.fig7_live);
    ("fig8", Experiments.fig8); ("fig8-fleet", Experiments.fig8_fleet);
    ("fig8-xl", Experiments.fig8_xl); ("fig9", Experiments.fig9);
    ("fig9-chaos-sustained", Experiments.fig9_chaos_sustained);
    ("fig10", Experiments.fig10);
    ("fig11", Experiments.fig11); ("exploits", Experiments.exploits);
    ("ablation", Experiments.ablation); ("rerand", Experiments.rerand);
    ("bechamel", Micro.run) ]

let () =
  match Array.to_list Sys.argv with
  | _ :: [] ->
    print_endline "Dapper reproduction: running the full evaluation\n";
    Experiments.all ();
    Micro.run ()
  | _ :: "micro" :: flags ->
    (* `micro [--json] [--smoke] [--trace FILE]`: the bechamel suite,
       optionally writing machine-readable results to BENCH_RESULTS.json;
       --smoke shrinks the measurement quota for CI; --trace additionally
       runs one traced migration and exports Chrome trace_event JSON. *)
    let trace = ref None in
    let rec parse = function
      | [] -> ()
      | "--trace" :: file :: rest ->
        trace := Some file;
        parse rest
      | "--trace" :: [] ->
        prerr_endline "micro: --trace needs a FILE argument";
        exit 1
      | f :: rest when f = "--json" || f = "--smoke" -> parse rest
      | unknown :: _ ->
        Printf.eprintf
          "unknown micro flag %S (expected --json, --smoke and/or --trace FILE)\n"
          unknown;
        exit 1
    in
    parse flags;
    Micro.run_micro ~json:(List.mem "--json" flags) ~smoke:(List.mem "--smoke" flags)
      ?trace:!trace ()
  | _ :: names ->
    List.iter
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst experiments @ [ "micro" ]));
          exit 1)
      names
  | [] -> assert false
