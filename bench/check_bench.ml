(* check_bench: CI gate over BENCH_RESULTS.json. Fails (exit 1) when the
   file is missing, unparseable, missing a required top-level key, has a
   malformed benchmark entry, or lacks one of the must-have benchmark
   names — so a silently shrinking micro suite can't pass the bench job. *)

module J = Dapper_util.Json

let required_names =
  [ "dapper/fig5-criu-dump"; "dapper/fig5-rewrite-x86-to-arm";
    "dapper/fig5-rewrite-warm-memo"; "dapper/fig5-pipeline-schedule";
    "dapper/fig5-criu-restore"; "dapper/redis-recode-x86-to-arm";
    "dapper/event-heap-churn"; "dapper/fig8-xl-sched-overhead";
    "dapper/replay-record"; "dapper/replay-run" ]

(* Placement policies every fig8-xl sweep must cover, and the numeric
   fields every row must carry. *)
let required_xl_policies = [ "first-fit"; "energy-aware"; "slo-aware" ]

let required_xl_fields =
  [ "nodes"; "jobs"; "jobs_done"; "slo_met"; "slo_missed"; "nodes_powered";
    "jobs_per_kj"; "throughput_per_min"; "events"; "events_per_sim_s";
    "makespan_ms" ]

(* Migration mechanisms every fig7-live sweep must cover, and the numeric
   fields every row must carry. *)
let required_live_mechanisms = [ "vanilla"; "lazy"; "hybrid" ]

let required_live_fields =
  [ "requests"; "stalled"; "faulted"; "precopy_ms"; "blackout_ms"; "p50_ms";
    "p99_ms"; "p999_ms"; "mig_p50_ms"; "mig_p99_ms"; "mig_p999_ms" ]

(* Both arms of the sustained-chaos sweep must be present, every row
   must carry these numeric fields, the per-arm verdicts must account
   for every seed (no lost states), and the control plane must not
   worsen the during-migration tail. *)
let required_chaos_arms = [ "on"; "off" ]

let required_chaos_fields =
  [ "seeds"; "committed"; "degraded"; "rolled_back"; "postponed"; "attempts";
    "sheds"; "breaker_trips"; "deadline_cancels"; "availability"; "mig_p99_ms" ]

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("check_bench: " ^ s); exit 1) fmt

let () =
  let file = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_RESULTS.json" in
  let contents =
    try
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error e -> die "cannot read %s: %s" file e
  in
  let doc = try J.of_string contents with J.Parse_error e -> die "%s: %s" file e in
  let suite =
    match J.member_opt "suite" doc with
    | Some s -> (try J.to_str s with _ -> die "%s: \"suite\" is not a string" file)
    | None -> die "%s: missing key \"suite\"" file
  in
  if suite <> "dapper-micro" then die "%s: unexpected suite %S" file suite;
  (match J.member_opt "smoke" doc with
   | Some b -> (try ignore (J.to_bool b) with _ -> die "%s: \"smoke\" is not a bool" file)
   | None -> die "%s: missing key \"smoke\"" file);
  let entries =
    match J.member_opt "benchmarks" doc with
    | Some l -> (try J.to_list l with _ -> die "%s: \"benchmarks\" is not a list" file)
    | None -> die "%s: missing key \"benchmarks\"" file
  in
  let names =
    List.map
      (fun e ->
        let name =
          match J.member_opt "name" e with
          | Some n ->
            (try J.to_str n with _ -> die "%s: benchmark \"name\" is not a string" file)
          | None -> die "%s: benchmark entry missing \"name\"" file
        in
        (match J.member_opt "ns_per_run" e with
         | Some J.Null -> ()
         | Some v ->
           (try ignore (J.to_float v)
            with _ -> die "%s: %s: \"ns_per_run\" is not a number" file name)
         | None -> die "%s: %s: missing \"ns_per_run\"" file name);
        name)
      entries
  in
  List.iter
    (fun want ->
      if not (List.mem want names) then die "%s: missing benchmark %S" file want)
    required_names;
  let xl_rows =
    match J.member_opt "fig8_xl" doc with
    | Some l -> (try J.to_list l with _ -> die "%s: \"fig8_xl\" is not a list" file)
    | None -> die "%s: missing key \"fig8_xl\"" file
  in
  if xl_rows = [] then die "%s: \"fig8_xl\" is empty" file;
  let xl_policies =
    List.map
      (fun row ->
        let policy =
          match J.member_opt "policy" row with
          | Some p ->
            (try J.to_str p
             with _ -> die "%s: fig8_xl row \"policy\" is not a string" file)
          | None -> die "%s: fig8_xl row missing \"policy\"" file
        in
        List.iter
          (fun field ->
            match J.member_opt field row with
            | Some v ->
              (try ignore (J.to_float v)
               with _ ->
                 die "%s: fig8_xl %s: %S is not a number" file policy field)
            | None -> die "%s: fig8_xl %s: missing %S" file policy field)
          required_xl_fields;
        (match J.member_opt "jobs_done" row with
         | Some v when (try J.to_float v <= 0.0 with _ -> false) ->
           die "%s: fig8_xl %s: jobs_done is zero" file policy
         | _ -> ());
        policy)
      xl_rows
  in
  List.iter
    (fun want ->
      if not (List.mem want xl_policies) then
        die "%s: fig8_xl missing policy %S" file want)
    required_xl_policies;
  let live_rows =
    match J.member_opt "fig7_live" doc with
    | Some l -> (try J.to_list l with _ -> die "%s: \"fig7_live\" is not a list" file)
    | None -> die "%s: missing key \"fig7_live\"" file
  in
  if live_rows = [] then die "%s: \"fig7_live\" is empty" file;
  let live_mechanisms =
    List.map
      (fun row ->
        let mech =
          match J.member_opt "mechanism" row with
          | Some m ->
            (try J.to_str m
             with _ -> die "%s: fig7_live row \"mechanism\" is not a string" file)
          | None -> die "%s: fig7_live row missing \"mechanism\"" file
        in
        List.iter
          (fun field ->
            match J.member_opt field row with
            | Some v ->
              (try ignore (J.to_float v)
               with _ ->
                 die "%s: fig7_live %s: %S is not a number" file mech field)
            | None -> die "%s: fig7_live %s: missing %S" file mech field)
          required_live_fields;
        (match J.member_opt "requests" row with
         | Some v when (try J.to_float v <= 0.0 with _ -> false) ->
           die "%s: fig7_live %s: requests is zero" file mech
         | _ -> ());
        (match J.member_opt "fingerprint" row with
         | Some f ->
           (try
              if String.length (J.to_str f) <> 16 then
                die "%s: fig7_live %s: fingerprint is not 16 hex chars" file mech
            with _ -> die "%s: fig7_live %s: \"fingerprint\" is not a string" file mech)
         | None -> die "%s: fig7_live %s: missing \"fingerprint\"" file mech);
        mech)
      live_rows
  in
  List.iter
    (fun want ->
      if not (List.mem want live_mechanisms) then
        die "%s: fig7_live missing mechanism %S" file want)
    required_live_mechanisms;
  let chaos_rows =
    match J.member_opt "fig9_chaos" doc with
    | Some l ->
      (try J.to_list l with _ -> die "%s: \"fig9_chaos\" is not a list" file)
    | None -> die "%s: missing key \"fig9_chaos\"" file
  in
  if chaos_rows = [] then die "%s: \"fig9_chaos\" is empty" file;
  let chaos_field arm row field =
    match J.member_opt field row with
    | Some v ->
      (try J.to_float v
       with _ -> die "%s: fig9_chaos %s: %S is not a number" file arm field)
    | None -> die "%s: fig9_chaos %s: missing %S" file arm field
  in
  let chaos_arms =
    List.map
      (fun row ->
        let arm =
          match J.member_opt "control" row with
          | Some c ->
            (try J.to_str c
             with _ -> die "%s: fig9_chaos row \"control\" is not a string" file)
          | None -> die "%s: fig9_chaos row missing \"control\"" file
        in
        List.iter (fun f -> ignore (chaos_field arm row f)) required_chaos_fields;
        let seeds = chaos_field arm row "seeds" in
        if seeds <= 0.0 then die "%s: fig9_chaos %s: seeds is zero" file arm;
        let verdicts =
          chaos_field arm row "committed"
          +. chaos_field arm row "degraded"
          +. chaos_field arm row "rolled_back"
        in
        if verdicts <> seeds then
          die
            "%s: fig9_chaos %s: committed+degraded+rolled_back = %g <> %g \
             seeds (a run ended without an explicit verdict)"
            file arm verdicts seeds;
        (arm, chaos_field arm row "mig_p99_ms"))
      chaos_rows
  in
  List.iter
    (fun want ->
      if not (List.mem_assoc want chaos_arms) then
        die "%s: fig9_chaos missing control arm %S" file want)
    required_chaos_arms;
  (match (List.assoc_opt "on" chaos_arms, List.assoc_opt "off" chaos_arms) with
   | Some p_on, Some p_off when p_on > p_off ->
     die
       "%s: fig9_chaos: control-on during-migration p99 (%.2f ms) worse than \
        control-off (%.2f ms)"
       file p_on p_off
   | _ -> ());
  Printf.printf
    "check_bench: %s ok (%d benchmarks, %d required present, %d fig8-xl rows, \
     %d fig7-live rows, %d fig9-chaos rows)\n"
    file (List.length names) (List.length required_names) (List.length xl_rows)
    (List.length live_rows) (List.length chaos_rows)
