(* check_bench: CI gate over BENCH_RESULTS.json. Fails (exit 1) when the
   file is missing, unparseable, missing a required top-level key, has a
   malformed benchmark entry, or lacks one of the must-have benchmark
   names — so a silently shrinking micro suite can't pass the bench job. *)

module J = Dapper_util.Json

let required_names =
  [ "dapper/fig5-criu-dump"; "dapper/fig5-rewrite-x86-to-arm";
    "dapper/fig5-rewrite-warm-memo"; "dapper/fig5-pipeline-schedule";
    "dapper/fig5-criu-restore"; "dapper/redis-recode-x86-to-arm" ]

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("check_bench: " ^ s); exit 1) fmt

let () =
  let file = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_RESULTS.json" in
  let contents =
    try
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    with Sys_error e -> die "cannot read %s: %s" file e
  in
  let doc = try J.of_string contents with J.Parse_error e -> die "%s: %s" file e in
  let suite =
    match J.member_opt "suite" doc with
    | Some s -> (try J.to_str s with _ -> die "%s: \"suite\" is not a string" file)
    | None -> die "%s: missing key \"suite\"" file
  in
  if suite <> "dapper-micro" then die "%s: unexpected suite %S" file suite;
  (match J.member_opt "smoke" doc with
   | Some b -> (try ignore (J.to_bool b) with _ -> die "%s: \"smoke\" is not a bool" file)
   | None -> die "%s: missing key \"smoke\"" file);
  let entries =
    match J.member_opt "benchmarks" doc with
    | Some l -> (try J.to_list l with _ -> die "%s: \"benchmarks\" is not a list" file)
    | None -> die "%s: missing key \"benchmarks\"" file
  in
  let names =
    List.map
      (fun e ->
        let name =
          match J.member_opt "name" e with
          | Some n ->
            (try J.to_str n with _ -> die "%s: benchmark \"name\" is not a string" file)
          | None -> die "%s: benchmark entry missing \"name\"" file
        in
        (match J.member_opt "ns_per_run" e with
         | Some J.Null -> ()
         | Some v ->
           (try ignore (J.to_float v)
            with _ -> die "%s: %s: \"ns_per_run\" is not a number" file name)
         | None -> die "%s: %s: missing \"ns_per_run\"" file name);
        name)
      entries
  in
  List.iter
    (fun want ->
      if not (List.mem want names) then die "%s: missing benchmark %S" file want)
    required_names;
  Printf.printf "check_bench: %s ok (%d benchmarks, %d required present)\n" file
    (List.length names) (List.length required_names)
