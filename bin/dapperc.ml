(* dapperc: the Dapper "compiler driver" - compiles a registry benchmark
   for both ISAs and inspects the result (symbols, stack maps,
   disassembly), playing the role of the modified clang + readelf. *)

open Cmdliner
open Dapper_isa
open Dapper_binary
open Dapper_workloads
module Link = Dapper_codegen.Link

let arch_conv =
  Arg.conv
    ( (fun s ->
        match Arch.of_name s with
        | Some a -> Ok a
        | None -> Error (`Msg (Printf.sprintf "unknown architecture %S" s))),
      fun ppf a -> Format.pp_print_string ppf (Arch.name a) )

let bench_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK"
         ~doc:"Registry benchmark name (e.g. npb-cg.A, redis, nginx).")

let arch_arg =
  Arg.(value & opt arch_conv Arch.X86_64 & info [ "a"; "arch" ] ~docv:"ARCH"
         ~doc:"Architecture to inspect (x86-64 or aarch64).")

let symbols_flag = Arg.(value & flag & info [ "symbols" ] ~doc:"Print the symbol table.")
let maps_flag = Arg.(value & flag & info [ "stackmaps" ] ~doc:"Print the stack-map section.")
let disasm_arg =
  Arg.(value & opt (some string) None & info [ "disasm" ] ~docv:"FUNC"
         ~doc:"Disassemble one function.")

let run bench arch symbols maps disasm =
  let sp = Registry.find bench in
  let c = Registry.compiled sp in
  let bin = Link.binary_for c arch in
  Printf.printf "%s for %s: %d bytes of text, %d symbols, %d functions with stack maps\n"
    bin.Binary.bin_app (Arch.name arch) (Binary.text_size bin)
    (List.length bin.bin_symbols) (List.length bin.bin_stackmaps);
  if symbols then begin
    print_endline "symbols:";
    List.iter
      (fun (s : Binary.symbol) ->
        Printf.printf "  0x%08Lx %6d %-8s %s\n" s.sym_addr s.sym_size
          (match s.sym_kind with
           | Binary.Sym_func -> "FUNC"
           | Binary.Sym_object -> "OBJECT"
           | Binary.Sym_tls -> "TLS")
          s.sym_name)
      bin.bin_symbols
  end;
  if maps then begin
    print_endline "stack maps:";
    List.iter
      (fun (fm : Stackmap.func_map) ->
        Printf.printf "  %s @ 0x%Lx frame=%d leaf=%b promoted=%d eqpoints=%d\n"
          fm.fm_name fm.fm_addr fm.fm_frame_size fm.fm_leaf
          (List.length fm.fm_promoted) (List.length fm.fm_eqpoints);
        List.iter
          (fun (ep : Stackmap.eqpoint) ->
            Printf.printf "    ep %d %-10s at 0x%Lx resume 0x%Lx, %d live values\n"
              ep.ep_id
              (match ep.ep_kind with
               | Stackmap.Entry -> "entry"
               | Stackmap.Call_site { cs_nargs } -> Printf.sprintf "call(%d)" cs_nargs
               | Stackmap.Backedge -> "backedge")
              ep.ep_addr ep.ep_resume (List.length ep.ep_live))
          fm.fm_eqpoints)
      bin.bin_stackmaps
  end;
  (match disasm with
   | None -> ()
   | Some fn ->
     (match Stackmap.find_func bin.bin_stackmaps fn with
      | None -> Printf.eprintf "no function %s\n" fn
      | Some fm ->
        Printf.printf "disassembly of %s:\n" fn;
        let code = Binary.code_bytes bin fm.fm_addr fm.fm_code_size in
        List.iter
          (fun (off, ins) ->
            Printf.printf "  0x%Lx: %s\n"
              (Int64.add fm.fm_addr (Int64.of_int off))
              (Minstr.to_string arch ins))
          (Encoding.decode_all arch code)));
  ()

let cmd =
  Cmd.v
    (Cmd.info "dapperc" ~doc:"Compile and inspect Dapper dual-ISA binaries")
    Term.(const run $ bench_arg $ arch_arg $ symbols_flag $ maps_flag $ disasm_arg)

let () = exit (Cmd.eval cmd)
