(* verify_tool: the conformance harness CLI - static stack-map
   verification, differential migration oracle runs over the example and
   generated corpora, and the mutation (corrupted stack map) checks.

     verify static            check every registry + example binary
     verify mutations         corrupted stack maps must be rejected
     verify oracle NAME       oracle sweep for one program
     verify corpus            full every-point sweep, both directions
     verify fuzz              seeded generated corpus, both directions
     verify conformance       everything above; non-zero exit on failure *)

open Cmdliner
open Dapper_isa
open Dapper_workloads
module Link = Dapper_codegen.Link
module Static = Dapper_verify.Static
module Oracle = Dapper_verify.Oracle
module Gen = Dapper_verify.Gen
module Corpus = Dapper_verify.Corpus

let directions = [ (Arch.X86_64, Arch.Aarch64); (Arch.Aarch64, Arch.X86_64) ]

let seed_programs () =
  List.map (fun sp -> (sp.Registry.sp_name, Registry.compiled sp)) (Registry.all ())

(* ----- static verification ----- *)

let static_one (name, c) =
  match Static.check_compiled c with
  | [] ->
    Printf.printf "static %-16s ok\n%!" name;
    true
  | viols ->
    List.iter
      (fun v -> Printf.printf "static %-16s VIOLATION %s\n%!" name (Static.violation_to_string v))
      viols;
    false

let run_static () =
  let ok =
    List.for_all static_one (seed_programs () @ Corpus.all ())
  in
  if not ok then prerr_endline "static verification FAILED";
  ok

(* ----- mutation checks ----- *)

let run_mutations () =
  let base = Corpus.all () @ [ ("nginx", Registry.compiled (Registry.find "nginx")) ] in
  (* corrupt the richest example + one registry binary *)
  let targets = [ List.assoc "mini-sieve" base; List.assoc "nginx" base ] in
  let ok = ref true in
  let total = ref 0 in
  List.iter
    (fun c ->
      List.iter
        (fun (name, corrupted) ->
          incr total;
          match Static.run corrupted with
          | Error (Dapper_util.Dapper_error.Verify_failed msg) ->
            Printf.printf "mutation %-20s rejected: %s\n%!" name msg
          | Ok () ->
            ok := false;
            Printf.printf "mutation %-20s NOT REJECTED\n%!" name
          | Error e ->
            ok := false;
            Printf.printf "mutation %-20s wrong error: %s\n%!" name
              (Dapper_util.Dapper_error.to_string e))
        (Static.corruptions c))
    targets;
  Printf.printf "mutations: %d corrupted variants checked\n%!" !total;
  if !total < 5 then begin
    ok := false;
    prerr_endline "mutation corpus too small (< 5 corruptions)"
  end;
  !ok

(* ----- oracle runs ----- *)

let oracle_one ?max_points (name, c) =
  List.for_all
    (fun (src, dst) ->
      match Oracle.run ?max_points ~src ~dst c with
      | Ok r ->
        Printf.printf "oracle %-16s %s\n%!" name (Oracle.report_to_string r);
        true
      | Error f ->
        Printf.printf "oracle %-16s FAILED %s\n%!" name (Oracle.failure_to_string f);
        false)
    directions

let resolve name =
  match Corpus.find name with
  | Some c -> Some (name, c)
  | None ->
    (match int_of_string_opt (String.sub name 3 (String.length name - 3)) with
     | Some seed when String.length name > 3 && String.sub name 0 3 = "gen" ->
       Some (name, Gen.compile seed)
     | _ | (exception Invalid_argument _) ->
       (match Registry.find name with
        | sp -> Some (name, Registry.compiled sp)
        | exception (Not_found | Invalid_argument _) -> None))

let run_oracle name max_points =
  match resolve name with
  | None ->
    Printf.eprintf
      "verify: unknown program %S (expected an example-corpus name, gen<SEED>, \
       or a registry benchmark)\n%!"
      name;
    1
  | Some p -> if oracle_one ?max_points p then 0 else 1

let run_corpus () = List.for_all (fun p -> oracle_one p) (Corpus.all ())

let run_fuzz count max_points =
  let failed = ref 0 in
  for seed = 1 to count do
    let c = Gen.compile seed in
    List.iter
      (fun (src, dst) ->
        match Oracle.run ~max_points ~src ~dst c with
        | Ok _ -> ()
        | Error f ->
          incr failed;
          Printf.printf "fuzz seed %d FAILED %s\n%!" seed (Oracle.failure_to_string f))
      directions
  done;
  Printf.printf "fuzz: %d seeds x %d directions, %d failures\n%!" count
    (List.length directions) !failed;
  !failed = 0

(* ----- fast-path byte equivalence ----- *)

let run_fastpath points =
  let ok = ref true in
  List.iter
    (fun (name, c) ->
      List.iter
        (fun (src, dst) ->
          match Oracle.check_fastpaths ~points ~src ~dst c with
          | Ok r ->
            Printf.printf "fastpath %-16s %s->%s %s\n%!" name (Arch.name src)
              (Arch.name dst)
              (Oracle.fastpath_report_to_string r)
          | Error f ->
            ok := false;
            Printf.printf "fastpath %-16s FAILED %s\n%!" name
              (Oracle.failure_to_string f))
        directions)
    (Corpus.all ());
  !ok

(* ----- chaos runs ----- *)

let run_chaos seeds prob verbose pipeline mechanism =
  let spec = Dapper_util.Fault.uniform prob in
  let progress r =
    if verbose then print_endline (Dapper_verify.Chaos.run_report_to_string r)
  in
  let tag =
    (if pipeline then " (pipelined)" else "")
    ^ match mechanism with
      | None -> ""
      | Some m -> " [" ^ Dapper_traffic.Budget.mechanism_name m ^ "]"
  in
  match Dapper_verify.Chaos.sweep ~pipeline ?mechanism ~progress ~spec ~seeds () with
  | Ok s ->
    Printf.printf "chaos p=%g%s: %s\n%!" prob tag
      (Dapper_verify.Chaos.summary_to_string s);
    true
  | Error f ->
    Printf.printf "chaos p=%g%s FAILED %s\n%!" prob tag
      (Dapper_verify.Chaos.failure_to_string f);
    false

(* Recovery-rate and added-latency table over a range of fault
   probabilities (the EXPERIMENTS.md "Fault injection & recovery"
   numbers). *)
let run_chaos_table seeds =
  Printf.printf "%-8s %6s %10s %12s %8s %13s %10s\n%!" "p(fault)" "runs"
    "committed" "rolled-back" "faults" "retransmits" "added-ms";
  List.for_all
    (fun prob ->
      match Dapper_verify.Chaos.sweep ~spec:(Dapper_util.Fault.uniform prob) ~seeds () with
      | Ok s ->
        Printf.printf "%-8g %6d %10d %12d %8d %13d %10.2f\n%!" prob s.cs_runs
          s.cs_committed s.cs_rolled_back s.cs_faults s.cs_retransmits
          s.cs_added_ms;
        true
      | Error f ->
        Printf.printf "%-8g FAILED %s\n%!" prob
          (Dapper_verify.Chaos.failure_to_string f);
        false)
    [ 0.0; 0.02; 0.05; 0.1; 0.2; 0.4 ]

(* ----- sustained chaos: the self-healing control plane ----- *)

module Sustained = Dapper_health.Sustained
module Session = Dapper.Session
module Process = Dapper_machine.Process

(* Mirror of the bench fig9-chaos setup, trimmed for gate time: a warm
   redis parked halfway through its run, migrating xeon -> rpi with the
   paper-scale byte factor. *)
let sustained_setup () =
  let m = Servers.redis ~keys:1024 ~ops:2000 () in
  let c = Link.compile ~app:"redis-sustained" m in
  let src_bin = Link.binary_for c Arch.X86_64 in
  let dst_bin = Link.binary_for c Arch.Aarch64 in
  let total =
    let p = Process.load src_bin in
    match Process.run_to_completion p ~fuel:400_000_000 with
    | Process.Exited_run _ -> p.Process.total_instrs
    | _ -> failwith "redis-sustained: native run failed"
  in
  let warm = max 10_000 (int_of_float (Int64.to_float total *. 0.5)) in
  let fresh () =
    let p = Process.load src_bin in
    (match Process.run p ~max_instrs:warm with
     | Process.Progress -> ()
     | _ -> failwith "redis-sustained: finished before migration point");
    p
  in
  let scfg =
    { (Session.default_config ~src_bin ~dst_bin) with
      Session.cfg_src_node = Dapper_net.Node.xeon;
      cfg_dst_node = Dapper_net.Node.rpi;
      cfg_recode_node = Dapper_net.Node.xeon;
      cfg_bytes_scale = 1500.0 }
  in
  (scfg, fresh)

(* Two-arm sustained sweep over the same seeds, with the gate's
   invariants enforced: every run ends in an explicit commit, degraded
   commit, or rollback (no lost states), attempts stay bounded, and the
   control plane must not worsen the during-migration tail. *)
let run_sustained seeds events_file =
  let scfg, fresh = sustained_setup () in
  let arms =
    List.map
      (fun control ->
        let cfg = { Sustained.default_cfg with Sustained.su_control = control } in
        Sustained.sweep cfg scfg ~fresh ~seeds ~seed0:0x5EED5EEDL)
      [ true; false ]
  in
  let ok = ref true in
  List.iter
    (fun ((runs, y) : Sustained.run list * Sustained.summary) ->
      print_endline (Sustained.summary_line y);
      let arm = if y.Sustained.y_control then "control-on" else "control-off" in
      let verdicts =
        y.Sustained.y_committed + y.Sustained.y_degraded + y.Sustained.y_rolled_back
      in
      if verdicts <> seeds then begin
        ok := false;
        Printf.printf
          "sustained FAILED (%s): %d explicit verdicts <> %d seeds — a run \
           ended without committing or rolling back\n%!"
          arm verdicts seeds
      end;
      List.iter
        (fun (r : Sustained.run) ->
          if r.Sustained.r_attempts > Sustained.default_cfg.Sustained.su_max_attempts
          then begin
            ok := false;
            Printf.printf
              "sustained FAILED (%s): seed %016Lx took %d attempts (bound %d)\n%!"
              arm r.Sustained.r_seed r.Sustained.r_attempts
              Sustained.default_cfg.Sustained.su_max_attempts
          end)
        runs)
    arms;
  (match arms with
   | [ (_, on); (_, off) ] ->
     let p_on = Sustained.mig_p99 on and p_off = Sustained.mig_p99 off in
     Printf.printf "during-migration p99: %.2f ms on vs %.2f ms off\n%!" p_on p_off;
     if p_on > p_off then begin
       ok := false;
       Printf.printf
         "sustained FAILED: control plane worsened the during-migration p99\n%!"
     end
   | _ -> ());
  (match events_file with
   | None -> ()
   | Some file ->
     let oc = open_out file in
     (match arms with
      | (runs, _) :: _ ->
        List.iter
          (fun (r : Sustained.run) ->
            List.iter
              (fun l -> output_string oc (l ^ "\n"))
              (Sustained.event_lines r))
          runs
      | [] -> ());
     close_out oc;
     Printf.printf "degradation-event trace written to %s\n%!" file);
  !ok

(* ----- record / replay / shadow ----- *)

module Replayer = Dapper_replay.Replayer
module Shadow = Dapper_replay.Shadow
module Rlog = Dapper_replay.Log

let unknown_program name =
  Printf.eprintf
    "verify: unknown program %S (expected an example-corpus name, gen<SEED>, \
     or a registry benchmark)\n%!"
    name;
  1

let unknown_arch s =
  Printf.eprintf "verify: unknown architecture %S (expected x86-64 or aarch64)\n%!" s;
  1

let with_program name arch f =
  match resolve name with
  | None -> unknown_program name
  | Some (name, c) ->
    (match Arch.of_name arch with
     | None -> unknown_arch arch
     | Some a -> f name c a)

let run_replay_record name arch out =
  with_program name arch (fun name c a ->
      match Replayer.record (Link.binary_for c a) with
      | Error e ->
        Printf.printf "record %-16s FAILED %s\n%!" name e;
        1
      | Ok log ->
        Printf.printf "record %-16s %s\n%!" name (Rlog.summary log);
        (match out with
         | None -> ()
         | Some file ->
           let oc = open_out_bin file in
           output_string oc (Rlog.encode log);
           close_out oc;
           Printf.printf "log written to %s (%s)\n%!" file Rlog.file_name);
        0)

let run_replay_run name arch replay_arch log_file =
  with_program name arch (fun name c a ->
      match Arch.of_name replay_arch with
      | None -> unknown_arch replay_arch
      | Some b ->
        let log =
          match log_file with
          | Some file ->
            (try
               let ic = open_in_bin file in
               let s = really_input_string ic (in_channel_length ic) in
               close_in ic;
               Ok (Rlog.decode s)
             with
             | Rlog.Log_error e -> Error e
             | Sys_error e -> Error e)
          | None ->
            (match Replayer.record (Link.binary_for c a) with
             | Ok log -> Ok log
             | Error e -> Error e)
        in
        (match log with
         | Error e ->
           Printf.printf "replay %-16s FAILED to obtain a log: %s\n%!" name e;
           1
         | Ok log ->
           (match Replayer.replay ~log (Link.binary_for c b) with
            | Ok o ->
              let same = Arch.equal b log.Rlog.lg_arch in
              let faithful =
                (not same)
                || Int64.equal (Rlog.fingerprint o.Replayer.ro_log)
                     (Rlog.fingerprint log)
              in
              Printf.printf "replay %-16s %s%s\n%!" name
                (Replayer.outcome_to_string o)
                (if same then
                   if faithful then " (log reproduced byte-identically)"
                   else " (LOG FINGERPRINT MISMATCH)"
                 else "");
              if faithful then 0 else 1
            | Error d ->
              Printf.printf "replay %-16s DIVERGED %s\n%!" name
                (Replayer.divergence_report d);
              1)))

let run_replay_shadow name max_points clean report_file =
  match resolve name with
  | None -> unknown_program name
  | Some (name, c) ->
    let buf = Buffer.create 256 in
    let ok =
      List.for_all
        (fun (src, dst) ->
          match
            Oracle.check_shadow ~max_points ~corrupt:(not clean) ~src ~dst c
          with
          | Ok r ->
            Printf.printf "shadow %-16s %s\n%!" name
              (Oracle.shadow_report_to_string r);
            List.iter
              (fun rep ->
                print_endline rep;
                Buffer.add_string buf (rep ^ "\n"))
              r.Oracle.sr_divergences;
            true
          | Error f ->
            Printf.printf "shadow %-16s FAILED %s\n%!" name
              (Oracle.failure_to_string f);
            false)
        directions
    in
    (match report_file with
     | None -> ()
     | Some file ->
       let oc = open_out file in
       output_string oc
         (if Buffer.length buf = 0 then
            "no divergences (clean shadows only)\n"
          else Buffer.contents buf);
       close_out oc;
       Printf.printf "divergence reports written to %s\n%!" file);
    if ok then 0 else 1

(* ----- the full gate ----- *)

let run_conformance count max_points =
  let static_ok = run_static () in
  let mutations_ok = run_mutations () in
  let corpus_ok = run_corpus () in
  let fuzz_ok = run_fuzz count max_points in
  let fastpath_ok = run_fastpath 2 in
  let ok = static_ok && mutations_ok && corpus_ok && fuzz_ok && fastpath_ok in
  Printf.printf
    "conformance: static %s, mutations %s, corpus %s, fuzz %s, fastpath %s\n%!"
    (if static_ok then "ok" else "FAILED")
    (if mutations_ok then "ok" else "FAILED")
    (if corpus_ok then "ok" else "FAILED")
    (if fuzz_ok then "ok" else "FAILED")
    (if fastpath_ok then "ok" else "FAILED");
  if ok then 0 else 1

(* ----- command line ----- *)

let count_arg =
  Arg.(value & opt int 200 & info [ "count" ] ~docv:"N"
         ~doc:"Number of generated seeds to sweep.")

let max_points_arg default =
  Arg.(value & opt int default & info [ "max-points" ] ~docv:"K"
         ~doc:"Cap on dynamic equivalence points walked per program.")

let opt_max_points_arg =
  Arg.(value & opt (some int) None & info [ "max-points" ] ~docv:"K"
         ~doc:"Cap on dynamic equivalence points walked per program.")

let name_arg =
  Arg.(value & pos 0 string "mini-quickstart" & info [] ~docv:"NAME"
         ~doc:"Program: an example-corpus name, gen<SEED>, or a registry benchmark.")

let bool_cmd name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const (fun () -> if f () then 0 else 1) $ const ())

let cmd =
  Cmd.group
    (Cmd.info "verify" ~doc:"Dapper cross-ISA conformance harness")
    [ bool_cmd "static" "Statically verify the stack maps of every seed binary" run_static;
      bool_cmd "mutations" "Check that corrupted stack maps are rejected" run_mutations;
      Cmd.v
        (Cmd.info "oracle" ~doc:"Run the migration oracle for one program, both directions")
        Term.(const run_oracle $ name_arg $ opt_max_points_arg);
      bool_cmd "corpus"
        "Oracle sweep at every equivalence point of the example corpus, both directions"
        run_corpus;
      Cmd.v
        (Cmd.info "fuzz" ~doc:"Oracle over the seeded generated corpus, both directions")
        Term.(const (fun n k -> if run_fuzz n k then 0 else 1)
              $ count_arg $ max_points_arg 3);
      Cmd.v
        (Cmd.info "chaos"
           ~doc:"Seeded fault-injection sweep: every run must commit or roll back \
                 cleanly. With $(b,--table), sweep a range of fault probabilities. \
                 With $(b,--sustained), run the self-healing control plane under \
                 sustained correlated faults, control on vs off.")
        Term.(const (fun seeds prob verbose table trace pipeline mechanism
                       sustained events ->
                  match
                    match mechanism with
                    | None -> Ok None
                    | Some s ->
                      (match Dapper_traffic.Budget.mechanism_of_string s with
                       | Some m -> Ok (Some m)
                       | None -> Error s)
                  with
                  | Error s ->
                    Printf.eprintf
                      "verify: unknown mechanism %S (expected vanilla, precopy, \
                       lazy, or hybrid)\n%!" s;
                    1
                  | Ok mechanism ->
                    if trace <> None then Dapper_obs.Trace.start ();
                    let ok =
                      if sustained then run_sustained seeds events
                      else if table then run_chaos_table seeds
                      else run_chaos seeds prob verbose pipeline mechanism
                    in
                    (match trace with
                     | None -> ()
                     | Some file ->
                       Dapper_obs.Trace.stop ();
                       Dapper_obs.Trace.export ~file;
                       Printf.printf "trace written to %s\n%!" file);
                    if ok then 0 else 1)
              $ Arg.(value & opt int 200 & info [ "seeds" ] ~docv:"N"
                       ~doc:"Number of seeded fault schedules to sweep.")
              $ Arg.(value & opt float 0.2 & info [ "prob" ] ~docv:"P"
                       ~doc:"Per-site fault probability (node crashes at P/3).")
              $ Arg.(value & flag & info [ "verbose" ] ~doc:"Print every run.")
              $ Arg.(value & flag & info [ "table" ]
                       ~doc:"Print the recovery-rate table over fault probabilities.")
              $ Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
                       ~doc:"Export a Chrome trace_event JSON trace of the sweep \
                             (simulated clock) to $(docv).")
              $ Arg.(value & flag & info [ "pipeline" ]
                       ~doc:"Stream transfers in page-sized chunks (the pipelined \
                             fast path); faults mid-stream must still commit or \
                             roll back.")
              $ Arg.(value & opt (some string) None
                     & info [ "mechanism" ] ~docv:"MECH"
                         ~doc:"Pin the copy mechanism (vanilla, precopy, lazy, or \
                               hybrid) instead of drawing it per seed.")
              $ Arg.(value & flag & info [ "sustained" ]
                       ~doc:"Sustained-chaos gate: correlated fault windows, the \
                             full health plane on vs off over the same seeds; \
                             every run must end in an explicit commit, degraded \
                             commit, or rollback.")
              $ Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE"
                       ~doc:"With $(b,--sustained), write the control-on \
                             degradation-event trace to $(docv)."));
      Cmd.v
        (Cmd.info "fastpath"
           ~doc:"Byte-equivalence of the recode fast paths (pipelined, memoized, \
                 multi-worker) against the sequential pipeline, over the example \
                 corpus in both directions")
        Term.(const (fun points -> if run_fastpath points then 0 else 1)
              $ Arg.(value & opt int 3 & info [ "points" ] ~docv:"K"
                       ~doc:"Equivalence points exercised per program/direction."));
      Cmd.group
        (Cmd.info "replay"
           ~doc:"Record/replay plane: record nondeterministic inputs, replay \
                 them on either ISA, and shadow-replay migrations with \
                 divergence localization")
        [ Cmd.v
            (Cmd.info "record"
               ~doc:"Record one complete execution's nondeterministic inputs \
                     (syscall results, scheduler slices) interleaved with \
                     equivalence-point snapshot anchors")
            Term.(const run_replay_record $ name_arg
                  $ Arg.(value & opt string "x86-64"
                         & info [ "arch" ] ~docv:"ARCH"
                             ~doc:"ISA to record on (x86-64 or aarch64).")
                  $ Arg.(value & opt (some string) None
                         & info [ "out" ] ~docv:"FILE"
                             ~doc:"Write the encoded replay.img log to $(docv)."));
          Cmd.v
            (Cmd.info "run"
               ~doc:"Re-execute a recording, validating every syscall result \
                     and anchor snapshot (and, same-ISA, every scheduler \
                     slice); a same-ISA replay must reproduce the log \
                     byte-identically")
            Term.(const run_replay_run $ name_arg
                  $ Arg.(value & opt string "x86-64"
                         & info [ "arch" ] ~docv:"ARCH"
                             ~doc:"ISA to record on (ignored with --log).")
                  $ Arg.(value & opt string "x86-64"
                         & info [ "replay-arch" ] ~docv:"ARCH"
                             ~doc:"ISA to replay on (x86-64 or aarch64).")
                  $ Arg.(value & opt (some string) None
                         & info [ "log" ] ~docv:"FILE"
                             ~doc:"Replay a previously recorded log instead \
                                   of recording afresh."));
          Cmd.v
            (Cmd.info "shadow"
               ~doc:"Shadow-replay migrations against a recording, both \
                     directions: clean migrations must match pointwise, and \
                     (unless --clean) a deliberately corrupted rewritten \
                     image must be localized to the first diverging \
                     equivalence point and page")
            Term.(const run_replay_shadow $ name_arg
                  $ Arg.(value & opt int 2 & info [ "max-points" ] ~docv:"K"
                           ~doc:"Migration points exercised per direction.")
                  $ Arg.(value & flag & info [ "clean" ]
                           ~doc:"Skip the corruption-injection runs.")
                  $ Arg.(value & opt (some string) None
                         & info [ "report" ] ~docv:"FILE"
                             ~doc:"Write the divergence reports to $(docv).")) ];
      Cmd.v
        (Cmd.info "conformance"
           ~doc:"The full gate: static + mutations + example sweep + generated corpus")
        Term.(const run_conformance $ count_arg $ max_points_arg 3) ]

let () = exit (Cmd.eval' cmd)
