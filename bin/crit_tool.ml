(* crit_tool: the CRIT image tool - runs a benchmark to a live state,
   checkpoints it, and decodes/show/rewrites the image set, mirroring
   `crit decode|encode|x` workflows. *)

open Cmdliner
open Dapper_isa
open Dapper_machine
open Dapper_workloads
open Dapper
module Link = Dapper_codegen.Link

let bench_arg =
  Arg.(value & pos 0 string "npb-cg.A" & info [] ~docv:"BENCHMARK"
         ~doc:"Registry benchmark to checkpoint.")

let warm_arg =
  Arg.(value & opt int 500_000 & info [ "warmup" ] ~docv:"N"
         ~doc:"Instructions to run before checkpointing.")

let recode_flag =
  Arg.(value & flag & info [ "recode" ]
         ~doc:"Also rewrite the image for the other architecture and show the new cores.")

let run bench warm recode =
  let sp = Registry.find bench in
  let c = Registry.compiled sp in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:warm);
  (match Monitor.request_pause p ~budget:50_000_000 with
   | Ok _ -> ()
   | Error e -> failwith (Monitor.error_to_string e));
  let image = Dapper_util.Dapper_error.ok_exn (Dapper_criu.Dump.dump p) in
  print_endline (Dapper_criu.Crit.show image);
  if recode then begin
    let image', stats =
      Dapper_util.Dapper_error.ok_exn
        (Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm)
    in
    Printf.printf
      "\n--- rewritten for %s: %d frames, %d values, %d pointers translated ---\n"
      (Arch.name Arch.Aarch64) stats.Rewrite.st_frames stats.Rewrite.st_values
      stats.Rewrite.st_ptrs_translated;
    List.iter
      (fun (name, bytes) ->
        if name <> "pages-1.img" then begin
          Printf.printf "=== %s ===\n" name;
          print_endline (Dapper_util.Json.to_string (Dapper_criu.Crit.decode_file name bytes))
        end)
      (Dapper_criu.Images.to_files image')
  end

let cmd =
  Cmd.v
    (Cmd.info "crit" ~doc:"Checkpoint a benchmark and decode its CRIU images")
    Term.(const run $ bench_arg $ warm_arg $ recode_flag)

let () = exit (Cmd.eval cmd)
