(* dapper_run: run any registry benchmark natively on either simulated
   architecture and report instruction counts and output. *)

open Cmdliner
open Dapper_isa
open Dapper_machine
open Dapper_workloads
module Link = Dapper_codegen.Link

let bench_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"BENCHMARK"
         ~doc:"Benchmark to run (all registry benchmarks if omitted).")

let arch_arg =
  Arg.(value & opt (some string) None & info [ "a"; "arch" ] ~docv:"ARCH"
         ~doc:"Architecture (both if omitted).")

let run_one sp arch =
  let c = Registry.compiled sp in
  let p = Process.load (Link.binary_for c arch) in
  match Process.run_to_completion p ~fuel:500_000_000 with
  | Process.Exited_run code ->
    Printf.printf "%-16s %-8s exit=%-4Ld instrs=%-10Ld threads=%d\n%s"
      sp.Registry.sp_name (Arch.name arch) code p.Process.total_instrs
      (List.length p.Process.threads)
      (Process.stdout_contents p)
  | Process.Crashed cr ->
    Printf.printf "%-16s %-8s CRASH pc=0x%Lx %s\n" sp.Registry.sp_name (Arch.name arch)
      cr.cr_pc cr.cr_reason
  | Process.Idle -> Printf.printf "%s: deadlock\n" sp.Registry.sp_name
  | Process.Progress -> Printf.printf "%s: out of fuel\n" sp.Registry.sp_name

let run bench arch =
  let specs =
    match bench with Some name -> [ Registry.find name ] | None -> Registry.all ()
  in
  let arches =
    match arch with
    | Some s ->
      (match Arch.of_name s with
       | Some a -> [ a ]
       | None -> failwith ("unknown architecture " ^ s))
    | None -> Arch.all
  in
  List.iter (fun sp -> List.iter (run_one sp) arches) specs

let cmd =
  Cmd.v
    (Cmd.info "dapper_run" ~doc:"Run benchmarks on the dual-ISA simulator")
    Term.(const run $ bench_arg $ arch_arg)

let () = exit (Cmd.eval cmd)
