let page_size = 4096

let code_base = 0x0040_0000L
let data_base = 0x0060_0000L
let tls_base = 0x0070_0000L
let heap_base = 0x0080_0000L

let stack_top = 0x7F00_0000L
let stack_region = 256 * 1024
let max_threads = 64
let tls_block_region = 4096

let stack_base_of_thread i =
  Int64.sub stack_top (Int64.of_int (i * stack_region))

let stack_limit_of_thread i =
  Int64.sub stack_top (Int64.of_int ((i + 1) * stack_region))

let tls_block_of_thread i =
  Int64.add tls_base (Int64.of_int (i * tls_block_region))

let page_of_addr a = Int64.to_int (Int64.div a (Int64.of_int page_size))
let addr_of_page p = Int64.mul (Int64.of_int p) (Int64.of_int page_size)
let page_offset a = Int64.to_int (Int64.rem a (Int64.of_int page_size))
