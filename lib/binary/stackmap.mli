(** Stack-map metadata: the compiler→rewriter contract.

    Mirrors LLVM's [llvm.experimental.stackmap] records (paper
    Sections III-A, III-C and Fig. 4). For every equivalence point the
    backend records where each live value resides on {e this}
    architecture; because both binaries are generated from the same IR,
    records with equal [(function, ep_id)] describe the same program
    point, and the rewriter copies each live value from its source
    location to its target location. *)

(** Where a live value lives at an equivalence point. [Frame off] is an
    offset relative to the frame pointer (negative: below fp). *)
type loc = Reg of int | Frame of int

(** Identity of a live value, stable across architectures: a named stack
    slot (IR slot id) or a compiler temporary (IR vreg id). *)
type lv_key = Slot of int | Temp of int

type lv_ty = Lv_i64 | Lv_f64 | Lv_ptr

type live_value = {
  lv_key : lv_key;
  lv_name : string;   (** diagnostic only *)
  lv_ty : lv_ty;      (** [Lv_ptr] values get stack-pointer translation *)
  lv_size : int;      (** bytes; > 8 only for [Frame] aggregates *)
  lv_loc : loc;
}

type ep_kind =
  | Entry                             (** function-entry checker trap *)
  | Call_site of { cs_nargs : int }   (** equivalence point at a call *)
  | Backedge                          (** optional loop-header checker *)

type eqpoint = {
  ep_id : int;        (** index within the function, equal across ISAs *)
  ep_kind : ep_kind;
  ep_addr : int64;    (** trap instruction (entry/backedge) or call instruction *)
  ep_resume : int64;  (** where execution resumes: after the trap, or the
                          call's return address *)
  ep_live : live_value list;
}

type func_map = {
  fm_name : string;
  fm_addr : int64;
  fm_code_size : int;
  fm_frame_size : int;           (** bytes between fp and sp *)
  fm_saved : (int * int) list;   (** callee-saved reg -> fp-relative save offset *)
  fm_promoted : (int * int) list;(** slot id -> callee-saved reg holding it *)
  fm_leaf : bool;                (** aarch64: the return address is still in
                                     the link register in this function *)
  fm_eqpoints : eqpoint list;
}

(** Binary serialization for the [.stackmaps] ELF section. *)
val serialize : func_map list -> string
val deserialize : string -> func_map list

(** Lookups used by the runtime monitor and rewriter. *)

val find_func : func_map list -> string -> func_map option

(** Function map covering address [a] (by [fm_addr .. fm_addr+fm_code_size)). *)
val func_of_addr : func_map list -> int64 -> func_map option

(** Equivalence point whose [ep_resume] equals the given address. *)
val eqpoint_by_resume : func_map -> int64 -> eqpoint option

(** Equivalence point with the given id. *)
val eqpoint_by_id : func_map -> int -> eqpoint option

val pp_loc : Format.formatter -> loc -> unit
val pp_live_value : Format.formatter -> live_value -> unit
