type func_entry = {
  fe_fm : Stackmap.func_map;
  fe_end : int64;
  fe_ep_by_id : (int, Stackmap.eqpoint) Hashtbl.t;
  fe_ep_by_resume : (int64, Stackmap.eqpoint) Hashtbl.t;
  fe_ep_at_addr : (int64, Stackmap.eqpoint) Hashtbl.t;
  fe_entry_ep : Stackmap.eqpoint option;
  fe_live : (int * Stackmap.lv_key, Stackmap.live_value) Hashtbl.t;
  fe_live_named : (int * string, Stackmap.live_value) Hashtbl.t;
}

type t = {
  ix_by_name : (string, func_entry) Hashtbl.t;
  ix_by_addr : func_entry array; (* sorted by fm_addr *)
}

(* ----- observability counters (reported in the migration cost report) ----- *)

let lookups = ref 0
let builds = ref 0

let lookup_count () = !lookups
let build_count () = !builds

let reset_counters () =
  lookups := 0;
  builds := 0

(* All lookups match the first-hit semantics of the linear scans they
   replace, so duplicate names/addresses (which well-formed stack maps
   never contain) resolve identically: only the first binding wins. *)
let add_first tbl k v = if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k v

let entry_of_fm (fm : Stackmap.func_map) =
  let neps = List.length fm.fm_eqpoints in
  let fe_ep_by_id = Hashtbl.create (neps * 2) in
  let fe_ep_by_resume = Hashtbl.create (neps * 2) in
  let fe_ep_at_addr = Hashtbl.create (neps * 2) in
  let fe_live = Hashtbl.create 16 in
  let fe_live_named = Hashtbl.create 16 in
  let entry = ref None in
  List.iter
    (fun (ep : Stackmap.eqpoint) ->
      add_first fe_ep_by_id ep.ep_id ep;
      add_first fe_ep_by_resume ep.ep_resume ep;
      add_first fe_ep_at_addr ep.ep_addr ep;
      if ep.ep_kind = Stackmap.Entry && !entry = None then entry := Some ep;
      List.iter
        (fun (lv : Stackmap.live_value) ->
          add_first fe_live (ep.ep_id, lv.lv_key) lv;
          add_first fe_live_named (ep.ep_id, lv.lv_name) lv)
        ep.ep_live)
    fm.fm_eqpoints;
  { fe_fm = fm;
    fe_end = Int64.add fm.fm_addr (Int64.of_int fm.fm_code_size);
    fe_ep_by_id; fe_ep_by_resume; fe_ep_at_addr; fe_entry_ep = !entry;
    fe_live; fe_live_named }

let build maps =
  incr builds;
  let entries = List.map entry_of_fm maps in
  let ix_by_name = Hashtbl.create (List.length entries * 2) in
  List.iter (fun fe -> add_first ix_by_name fe.fe_fm.Stackmap.fm_name fe) entries;
  let ix_by_addr = Array.of_list entries in
  Array.sort
    (fun a b -> Int64.compare a.fe_fm.Stackmap.fm_addr b.fe_fm.Stackmap.fm_addr)
    ix_by_addr;
  { ix_by_name; ix_by_addr }

(* ----- per-maps memoization -----
   Keyed by physical identity of the (immutable) map list with a
   content-digest fallback, so every consumer of the same binary shares
   one index and an index is built at most once per distinct stack-map
   content. Physical identity alone is not a sound cache key across
   regenerated binaries: tests (and reshuffling) rebuild structurally
   different map lists at addresses the allocator may reuse, and two
   different lists that are byte-for-byte equal (a recompiled app)
   should share one index rather than build two. Hashing the serialized
   maps makes the key follow the content, so a regenerated or mutated
   binary can never hit a stale index. Bounded MRU list: reshuffling
   creates a new map list per epoch, and stale entries must not pin
   binaries forever. *)

type cache_entry = {
  ce_maps : Stackmap.func_map list;  (* fast path: physical identity *)
  ce_key : Digest.t;                 (* slow path: content digest *)
  ce_ix : t;
}

let cache : cache_entry list ref = ref []
let cache_capacity = 32

let content_key maps = Digest.string (Stackmap.serialize maps)

(* A binary's stack-map content digest, for content-keyed memo keys
   (the rewrite-output cache). Reuses the index cache's digest when the
   maps were indexed before, so the common path is a pointer walk. *)
let content_digest maps =
  match List.find_opt (fun e -> e.ce_maps == maps) !cache with
  | Some e -> e.ce_key
  | None -> content_key maps

let get maps =
  match List.find_opt (fun e -> e.ce_maps == maps) !cache with
  | Some e -> e.ce_ix
  | None ->
    let key = content_key maps in
    let ix =
      match List.find_opt (fun e -> Digest.equal e.ce_key key) !cache with
      | Some e -> e.ce_ix
      | None -> build maps
    in
    let kept = List.filteri (fun k _ -> k < cache_capacity - 1) !cache in
    cache := { ce_maps = maps; ce_key = key; ce_ix = ix } :: kept;
    ix

let entry t name =
  incr lookups;
  Hashtbl.find_opt t.ix_by_name name

let find_func t name =
  match entry t name with
  | Some fe -> Some fe.fe_fm
  | None -> None

let entry_of_addr t a =
  incr lookups;
  let arr = t.ix_by_addr in
  let l = ref 0 and r = ref (Array.length arr - 1) and best = ref (-1) in
  while !l <= !r do
    let m = (!l + !r) / 2 in
    if Int64.compare arr.(m).fe_fm.Stackmap.fm_addr a <= 0 then begin
      best := m;
      l := m + 1
    end
    else r := m - 1
  done;
  if !best >= 0 && Int64.compare a arr.(!best).fe_end < 0 then Some arr.(!best)
  else None

let func_of_addr t a =
  match entry_of_addr t a with
  | Some fe -> Some fe.fe_fm
  | None -> None

let in_func f t name =
  match entry t name with
  | Some fe -> f fe
  | None -> None

let eqpoint_by_id t name id =
  in_func (fun fe -> Hashtbl.find_opt fe.fe_ep_by_id id) t name

let eqpoint_by_resume t name a =
  in_func (fun fe -> Hashtbl.find_opt fe.fe_ep_by_resume a) t name

let eqpoint_at_addr t name a =
  in_func (fun fe -> Hashtbl.find_opt fe.fe_ep_at_addr a) t name

let entry_eqpoint t name = in_func (fun fe -> fe.fe_entry_ep) t name

let live_value t name ep_id key =
  in_func (fun fe -> incr lookups; Hashtbl.find_opt fe.fe_live (ep_id, key)) t name

let live_value_named t name ep_id lv_name =
  in_func
    (fun fe -> incr lookups; Hashtbl.find_opt fe.fe_live_named (ep_id, lv_name))
    t name
