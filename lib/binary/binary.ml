open Dapper_util
open Dapper_isa

type section = {
  sec_name : string;
  sec_addr : int64;
  sec_data : string;
  sec_exec : bool;
  sec_write : bool;
}

type sym_kind = Sym_func | Sym_object | Sym_tls

type symbol = {
  sym_name : string;
  sym_addr : int64;
  sym_size : int;
  sym_kind : sym_kind;
}

type anchors = {
  a_entry : int64;
  a_exit_stub : int64;
  a_thread_exit_stub : int64;
  a_flag : int64;
}

type t = {
  bin_app : string;
  bin_arch : Arch.t;
  bin_sections : section list;
  bin_symbols : symbol list;
  bin_stackmaps : Stackmap.func_map list;
  bin_tls_size : int;
  bin_tls_init : string;
  bin_anchors : anchors;
}

let find_section b name = List.find_opt (fun s -> s.sec_name = name) b.bin_sections
let find_symbol b name = List.find_opt (fun s -> s.sym_name = name) b.bin_symbols

let section_of_addr b a =
  List.find_opt
    (fun s ->
      Int64.compare a s.sec_addr >= 0
      && Int64.compare a (Int64.add s.sec_addr (Int64.of_int (String.length s.sec_data))) < 0)
    b.bin_sections

let text_size b =
  match find_section b ".text" with
  | Some s -> String.length s.sec_data
  | None -> 0

let code_bytes b addr len =
  match find_section b ".text" with
  | None -> invalid_arg "Binary.code_bytes: no text section"
  | Some s ->
    let off = Int64.to_int (Int64.sub addr s.sec_addr) in
    if off < 0 || off + len > String.length s.sec_data then
      invalid_arg
        (Printf.sprintf "Binary.code_bytes: [0x%Lx, +%d) out of text range" addr len);
    String.sub s.sec_data off len

let with_text b data =
  let sections =
    List.map
      (fun s -> if s.sec_name = ".text" then { s with sec_data = data } else s)
      b.bin_sections
  in
  { b with bin_sections = sections }

(* ----- serialization ----- *)

let add_str buf s =
  Bytebuf.add_u32 buf (String.length s);
  Bytebuf.add_bytes buf s

let serialize b =
  let buf = Bytebuf.create 65536 in
  add_str buf "DAPPERELF";
  add_str buf b.bin_app;
  add_str buf (Arch.name b.bin_arch);
  Bytebuf.add_u32 buf (List.length b.bin_sections);
  List.iter
    (fun s ->
      add_str buf s.sec_name;
      Bytebuf.add_i64 buf s.sec_addr;
      Bytebuf.add_u8 buf (if s.sec_exec then 1 else 0);
      Bytebuf.add_u8 buf (if s.sec_write then 1 else 0);
      add_str buf s.sec_data)
    b.bin_sections;
  Bytebuf.add_u32 buf (List.length b.bin_symbols);
  List.iter
    (fun s ->
      add_str buf s.sym_name;
      Bytebuf.add_i64 buf s.sym_addr;
      Bytebuf.add_u32 buf s.sym_size;
      Bytebuf.add_u8 buf
        (match s.sym_kind with Sym_func -> 0 | Sym_object -> 1 | Sym_tls -> 2))
    b.bin_symbols;
  add_str buf (Stackmap.serialize b.bin_stackmaps);
  Bytebuf.add_u32 buf b.bin_tls_size;
  add_str buf b.bin_tls_init;
  Bytebuf.add_i64 buf b.bin_anchors.a_entry;
  Bytebuf.add_i64 buf b.bin_anchors.a_exit_stub;
  Bytebuf.add_i64 buf b.bin_anchors.a_thread_exit_stub;
  Bytebuf.add_i64 buf b.bin_anchors.a_flag;
  Bytebuf.contents buf

let size_bytes b = String.length (serialize b)

type reader = { src : string; mutable pos : int }

let ru8 r = let v = Bytebuf.get_u8 r.src r.pos in r.pos <- r.pos + 1; v
let ru32 r = let v = Bytebuf.get_u32 r.src r.pos in r.pos <- r.pos + 4; v
let ri64 r = let v = Bytebuf.get_i64 r.src r.pos in r.pos <- r.pos + 8; v

let rstr r =
  let n = ru32 r in
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let deserialize s =
  let r = { src = s; pos = 0 } in
  let magic = rstr r in
  if magic <> "DAPPERELF" then invalid_arg "Binary.deserialize: bad magic";
  let bin_app = rstr r in
  let arch_name = rstr r in
  let bin_arch =
    match Arch.of_name arch_name with
    | Some a -> a
    | None -> invalid_arg ("Binary.deserialize: bad arch " ^ arch_name)
  in
  let bin_sections =
    List.init (ru32 r) (fun _ ->
        let sec_name = rstr r in
        let sec_addr = ri64 r in
        let sec_exec = ru8 r = 1 in
        let sec_write = ru8 r = 1 in
        let sec_data = rstr r in
        { sec_name; sec_addr; sec_data; sec_exec; sec_write })
  in
  let bin_symbols =
    List.init (ru32 r) (fun _ ->
        let sym_name = rstr r in
        let sym_addr = ri64 r in
        let sym_size = ru32 r in
        let sym_kind =
          match ru8 r with
          | 0 -> Sym_func
          | 1 -> Sym_object
          | 2 -> Sym_tls
          | n -> invalid_arg (Printf.sprintf "Binary.deserialize: bad sym kind %d" n)
        in
        { sym_name; sym_addr; sym_size; sym_kind })
  in
  let bin_stackmaps = Stackmap.deserialize (rstr r) in
  let bin_tls_size = ru32 r in
  let bin_tls_init = rstr r in
  let a_entry = ri64 r in
  let a_exit_stub = ri64 r in
  let a_thread_exit_stub = ri64 r in
  let a_flag = ri64 r in
  { bin_app; bin_arch; bin_sections; bin_symbols; bin_stackmaps; bin_tls_size;
    bin_tls_init;
    bin_anchors = { a_entry; a_exit_stub; a_thread_exit_stub; a_flag } }
