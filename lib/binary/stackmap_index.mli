(** Hash- and binary-search indexes over a binary's stack maps.

    The unwinder, monitor, rewriter, DSU checker and exploit harness all
    resolve functions, equivalence points and live values; with plain
    {!Stackmap} every resolution is a linear list scan, which dominates
    the recode hot path (O(frames x functions x live values) per
    migration). This module builds, {e once per binary}, a set of O(1)/
    O(log n) indexes:

    - functions by name (hashtable) and by address range (sorted array,
      binary search);
    - equivalence points by id, by resume address and by trap/call
      address (hashtables per function);
    - live values by [lv_key] and by diagnostic name per equivalence
      point.

    All lookups preserve the first-match semantics of the linear scans
    they replace. [get] memoizes indexes by physical identity of the
    (immutable) map list, so repeated migrations and reshuffles of the
    same binary never rebuild. Lookup/build counters feed the migration
    cost report. *)

type t

(** Build an index (unconditionally). Prefer {!get}. *)
val build : Stackmap.func_map list -> t

(** Memoized [build]: returns the cached index when [maps] was indexed
    before. Keyed by physical identity with a content-digest (hash of
    the serialized maps) fallback in a bounded MRU cache, so regenerated
    binaries with identical stack maps share one index while changed
    content can never alias a stale one. *)
val get : Stackmap.func_map list -> t

(** Digest of the serialized stack maps — the content half of {!get}'s
    cache key, exposed so output-level memoization (the rewrite-result
    cache) can key entries by binary content. Cheap when the maps were
    indexed before (shares the index cache's stored digest). *)
val content_digest : Stackmap.func_map list -> Digest.t

(** Indexed equivalents of the {!Stackmap} linear lookups. *)

val find_func : t -> string -> Stackmap.func_map option
val func_of_addr : t -> int64 -> Stackmap.func_map option
val eqpoint_by_id : t -> string -> int -> Stackmap.eqpoint option
val eqpoint_by_resume : t -> string -> int64 -> Stackmap.eqpoint option

(** Equivalence point whose [ep_addr] (trap or call instruction) equals
    the address. *)
val eqpoint_at_addr : t -> string -> int64 -> Stackmap.eqpoint option

(** First [Entry]-kind equivalence point of the function. *)
val entry_eqpoint : t -> string -> Stackmap.eqpoint option

(** Live value with the given key at [(function, ep_id)]. *)
val live_value : t -> string -> int -> Stackmap.lv_key -> Stackmap.live_value option

(** Live value with the given diagnostic name at [(function, ep_id)]. *)
val live_value_named : t -> string -> int -> string -> Stackmap.live_value option

(** {1 Observability}

    Process-global counters surfaced in the migration cost report. *)

val lookup_count : unit -> int
val build_count : unit -> int
val reset_counters : unit -> unit
