open Dapper_util

type loc = Reg of int | Frame of int
type lv_key = Slot of int | Temp of int
type lv_ty = Lv_i64 | Lv_f64 | Lv_ptr

type live_value = {
  lv_key : lv_key;
  lv_name : string;
  lv_ty : lv_ty;
  lv_size : int;
  lv_loc : loc;
}

type ep_kind =
  | Entry
  | Call_site of { cs_nargs : int }
  | Backedge

type eqpoint = {
  ep_id : int;
  ep_kind : ep_kind;
  ep_addr : int64;
  ep_resume : int64;
  ep_live : live_value list;
}

type func_map = {
  fm_name : string;
  fm_addr : int64;
  fm_code_size : int;
  fm_frame_size : int;
  fm_saved : (int * int) list;
  fm_promoted : (int * int) list;
  fm_leaf : bool;
  fm_eqpoints : eqpoint list;
}

(* ----- serialization -----
   Simple length-prefixed little-endian format; signed small ints are
   stored as u32 two's complement. *)

let add_str b s =
  Bytebuf.add_u32 b (String.length s);
  Bytebuf.add_bytes b s

let add_s32 b v = Bytebuf.add_u32 b (v land 0xFFFFFFFF)

let add_pairs b pairs =
  Bytebuf.add_u32 b (List.length pairs);
  List.iter
    (fun (a, o) ->
      add_s32 b a;
      add_s32 b o)
    pairs

let ty_code = function Lv_i64 -> 0 | Lv_f64 -> 1 | Lv_ptr -> 2

let ty_of_code = function
  | 0 -> Lv_i64
  | 1 -> Lv_f64
  | 2 -> Lv_ptr
  | n -> invalid_arg (Printf.sprintf "Stackmap: bad type code %d" n)

let serialize maps =
  let b = Bytebuf.create 4096 in
  Bytebuf.add_u32 b (List.length maps);
  List.iter
    (fun fm ->
      add_str b fm.fm_name;
      Bytebuf.add_i64 b fm.fm_addr;
      add_s32 b fm.fm_code_size;
      add_s32 b fm.fm_frame_size;
      add_pairs b fm.fm_saved;
      add_pairs b fm.fm_promoted;
      Bytebuf.add_u8 b (if fm.fm_leaf then 1 else 0);
      Bytebuf.add_u32 b (List.length fm.fm_eqpoints);
      List.iter
        (fun ep ->
          add_s32 b ep.ep_id;
          (match ep.ep_kind with
           | Entry -> Bytebuf.add_u8 b 0; add_s32 b 0
           | Call_site { cs_nargs } -> Bytebuf.add_u8 b 1; add_s32 b cs_nargs
           | Backedge -> Bytebuf.add_u8 b 2; add_s32 b 0);
          Bytebuf.add_i64 b ep.ep_addr;
          Bytebuf.add_i64 b ep.ep_resume;
          Bytebuf.add_u32 b (List.length ep.ep_live);
          List.iter
            (fun lv ->
              (match lv.lv_key with
               | Slot s -> Bytebuf.add_u8 b 0; add_s32 b s
               | Temp t -> Bytebuf.add_u8 b 1; add_s32 b t);
              add_str b lv.lv_name;
              Bytebuf.add_u8 b (ty_code lv.lv_ty);
              add_s32 b lv.lv_size;
              match lv.lv_loc with
              | Reg r -> Bytebuf.add_u8 b 0; add_s32 b r
              | Frame o -> Bytebuf.add_u8 b 1; add_s32 b o)
            ep.ep_live)
        fm.fm_eqpoints)
    maps;
  Bytebuf.contents b

type reader = { src : string; mutable pos : int }

let ru8 r = let v = Bytebuf.get_u8 r.src r.pos in r.pos <- r.pos + 1; v
let ru32 r = let v = Bytebuf.get_u32 r.src r.pos in r.pos <- r.pos + 4; v
let rs32 r = let v = ru32 r in if v land 0x8000_0000 <> 0 then v - (1 lsl 32) else v
let ri64 r = let v = Bytebuf.get_i64 r.src r.pos in r.pos <- r.pos + 8; v

let rstr r =
  let n = ru32 r in
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let rlist r f = List.init (ru32 r) (fun _ -> f r)

let rpairs r = rlist r (fun r -> let a = rs32 r in let o = rs32 r in (a, o))

let deserialize s =
  let r = { src = s; pos = 0 } in
  rlist r (fun r ->
      let fm_name = rstr r in
      let fm_addr = ri64 r in
      let fm_code_size = rs32 r in
      let fm_frame_size = rs32 r in
      let fm_saved = rpairs r in
      let fm_promoted = rpairs r in
      let fm_leaf = ru8 r = 1 in
      let fm_eqpoints =
        rlist r (fun r ->
            let ep_id = rs32 r in
            let kind_code = ru8 r in
            let kind_arg = rs32 r in
            let ep_kind =
              match kind_code with
              | 0 -> Entry
              | 1 -> Call_site { cs_nargs = kind_arg }
              | 2 -> Backedge
              | n -> invalid_arg (Printf.sprintf "Stackmap: bad ep kind %d" n)
            in
            let ep_addr = ri64 r in
            let ep_resume = ri64 r in
            let ep_live =
              rlist r (fun r ->
                  let key_code = ru8 r in
                  let key_arg = rs32 r in
                  let lv_key =
                    match key_code with
                    | 0 -> Slot key_arg
                    | 1 -> Temp key_arg
                    | n -> invalid_arg (Printf.sprintf "Stackmap: bad lv key %d" n)
                  in
                  let lv_name = rstr r in
                  let lv_ty = ty_of_code (ru8 r) in
                  let lv_size = rs32 r in
                  let loc_code = ru8 r in
                  let loc_arg = rs32 r in
                  let lv_loc =
                    match loc_code with
                    | 0 -> Reg loc_arg
                    | 1 -> Frame loc_arg
                    | n -> invalid_arg (Printf.sprintf "Stackmap: bad loc %d" n)
                  in
                  { lv_key; lv_name; lv_ty; lv_size; lv_loc })
            in
            { ep_id; ep_kind; ep_addr; ep_resume; ep_live })
      in
      { fm_name; fm_addr; fm_code_size; fm_frame_size; fm_saved; fm_promoted;
        fm_leaf; fm_eqpoints })

let find_func maps name = List.find_opt (fun fm -> fm.fm_name = name) maps

let func_of_addr maps a =
  List.find_opt
    (fun fm ->
      Int64.compare a fm.fm_addr >= 0
      && Int64.compare a (Int64.add fm.fm_addr (Int64.of_int fm.fm_code_size)) < 0)
    maps

let eqpoint_by_resume fm a =
  List.find_opt (fun ep -> Int64.equal ep.ep_resume a) fm.fm_eqpoints

let eqpoint_by_id fm id = List.find_opt (fun ep -> ep.ep_id = id) fm.fm_eqpoints

let pp_loc ppf = function
  | Reg r -> Format.fprintf ppf "reg %d" r
  | Frame o -> Format.fprintf ppf "frame %d" o

let pp_live_value ppf lv =
  let key =
    match lv.lv_key with
    | Slot s -> Printf.sprintf "slot#%d" s
    | Temp t -> Printf.sprintf "temp#%d" t
  in
  Format.fprintf ppf "%s(%s) @ %a" lv.lv_name key pp_loc lv.lv_loc
