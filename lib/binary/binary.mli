(** The ELF-like executable container produced by the backend.

    Carries machine code, initialized data, the symbol table, the
    [.stackmaps] metadata section and the runtime anchor addresses the
    Dapper runtime needs (transformation flag, exit stubs). A program is
    compiled into one binary {e per architecture}; the symbol-alignment
    pass guarantees equal symbol addresses across them. *)

open Dapper_isa

type section = {
  sec_name : string;
  sec_addr : int64;
  sec_data : string;
  sec_exec : bool;
  sec_write : bool;
}

type sym_kind = Sym_func | Sym_object | Sym_tls

type symbol = {
  sym_name : string;
  sym_addr : int64;
  sym_size : int;
  sym_kind : sym_kind;
}

(** Fixed runtime anchors compiled into every binary. *)
type anchors = {
  a_entry : int64;           (** address of [main] *)
  a_exit_stub : int64;       (** bottom-of-stack return target for main *)
  a_thread_exit_stub : int64;(** bottom-of-stack return target for threads *)
  a_flag : int64;            (** the dapper transformation-request flag *)
}

type t = {
  bin_app : string;          (** application name, e.g. ["npb-cg.A"] *)
  bin_arch : Arch.t;
  bin_sections : section list;
  bin_symbols : symbol list;
  bin_stackmaps : Stackmap.func_map list;
  bin_tls_size : int;        (** bytes of each thread's TLS image *)
  bin_tls_init : string;     (** initial TLS image *)
  bin_anchors : anchors;
}

(** Total serialized size in bytes — the unit the scp cost model charges. *)
val size_bytes : t -> int

(** Size of the executable [.text] section (drives Fig. 9's shuffle cost). *)
val text_size : t -> int

val find_section : t -> string -> section option
val find_symbol : t -> string -> symbol option

(** Section containing address [a], if any. *)
val section_of_addr : t -> int64 -> section option

(** Code bytes for [\[addr, addr+len)], taken from the text section.
    Raises [Invalid_argument] if out of range. *)
val code_bytes : t -> int64 -> int -> string

(** Serialize / parse (used for on-disk storage and network transfer
    accounting). *)
val serialize : t -> string
val deserialize : string -> t

(** [with_text b data] replaces the text section contents (used by the
    stack shuffler, which patches code). Length may change; the symbol
    table and stackmaps must be updated separately by the caller. *)
val with_text : t -> string -> t
