(** The unified virtual address space layout.

    Dapper's modified gold linker aligns every symbol across the per-ISA
    binaries so that pointers stay valid after migration (paper
    Section III-D1). These constants define the common layout both
    backends target. *)

val page_size : int

val code_base : int64
val data_base : int64
val tls_base : int64
val heap_base : int64

(** Stacks grow downward from [stack_top]; thread [i] owns
    [stack_top - (i+1) * stack_region .. stack_top - i * stack_region). *)
val stack_top : int64
val stack_region : int
val max_threads : int

(** TLS blocks are carved out of the TLS region, one per thread. *)
val tls_block_region : int

val stack_base_of_thread : int -> int64
val stack_limit_of_thread : int -> int64
val tls_block_of_thread : int -> int64

(** Page number containing an address / first address of a page. *)
val page_of_addr : int64 -> int
val addr_of_page : int -> int64
val page_offset : int64 -> int
