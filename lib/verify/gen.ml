open Dapper_clite
open Cl
module Rng = Dapper_util.Rng
module Link = Dapper_codegen.Link

let name seed = Printf.sprintf "gen%d" seed

(* Separate variable pools per type: clite is explicitly typed and the
   generator must never mix an f64 into an integer expression. *)
type ctx = {
  rng : Rng.t;
  mutable ivars : string list;
  mutable fvars : string list;
  mutable pvars : (string * int) list;
      (* pointers into the global/local arrays, with the index mask that
         keeps accesses inside each array (sizes are powers of two) *)
  mutable fresh : int;
  mutable depth_budget : int;   (* bounds statement nesting across the program *)
}

let pick ctx l = List.nth l (Rng.int ctx.rng (List.length l))

let fresh ctx prefix =
  let n = Printf.sprintf "%s%d" prefix ctx.fresh in
  ctx.fresh <- ctx.fresh + 1;
  n

(* ----- integer expressions ----- *)

let rec iexpr ctx depth =
  if depth <= 0 then ileaf ctx
  else
    match Rng.int ctx.rng 12 with
    | 0 -> add (iexpr ctx (depth - 1)) (iexpr ctx (depth - 1))
    | 1 -> sub (iexpr ctx (depth - 1)) (iexpr ctx (depth - 1))
    | 2 -> mul (iexpr ctx (depth - 1)) (band (iexpr ctx (depth - 1)) (i 255))
    | 3 -> div_ (iexpr ctx (depth - 1)) (bor (band (iexpr ctx (depth - 1)) (i 1023)) (i 1))
    | 4 -> rem_ (iexpr ctx (depth - 1)) (bor (band (iexpr ctx (depth - 1)) (i 1023)) (i 1))
    | 5 -> bxor (iexpr ctx (depth - 1)) (iexpr ctx (depth - 1))
    | 6 -> shl (iexpr ctx (depth - 1)) (band (iexpr ctx (depth - 1)) (i 15))
    | 7 -> shr (iexpr ctx (depth - 1)) (band (iexpr ctx (depth - 1)) (i 15))
    | 8 -> bnot (iexpr ctx (depth - 1))
    | 9 -> lt (iexpr ctx (depth - 1)) (iexpr ctx (depth - 1))
    | 10 when ctx.pvars <> [] ->
      (* read back through a pointer; indices are masked in-bounds *)
      let p, mask = pick ctx ctx.pvars in
      idx (v p) (band (iexpr ctx (depth - 1)) (i mask))
    | _ -> ileaf ctx

and ileaf ctx =
  match Rng.int ctx.rng 5 with
  | 0 | 1 when ctx.ivars <> [] -> v (pick ctx ctx.ivars)
  | 2 -> v "gsum"
  | _ -> i (Rng.int ctx.rng 2048 - 1024)

(* ----- float expressions -----

   Magnitudes are kept bounded (divisors offset away from zero, square
   roots of non-negative arguments) so results stay finite: both ISAs
   evaluate identically either way, but finite values also keep the
   f2i folds at the end of main well-behaved. *)

let rec fexpr ctx depth =
  if depth <= 0 then fleaf ctx
  else
    match Rng.int ctx.rng 7 with
    | 0 -> fadd (fexpr ctx (depth - 1)) (fexpr ctx (depth - 1))
    | 1 -> fsub (fexpr ctx (depth - 1)) (fexpr ctx (depth - 1))
    | 2 -> fmul (fexpr ctx (depth - 1)) (fleaf ctx)
    | 3 ->
      let d = fexpr ctx (depth - 1) in
      fdiv (fexpr ctx (depth - 1)) (fadd (fmul d d) (f 1.0))
    | 4 -> fneg (fexpr ctx (depth - 1))
    | 5 ->
      let e = fexpr ctx (depth - 1) in
      sqrt_ (fadd (fmul e e) (f 0.25))
    | _ -> fleaf ctx

and fleaf ctx =
  match Rng.int ctx.rng 4 with
  | 0 | 1 when ctx.fvars <> [] -> v (pick ctx ctx.fvars)
  | 2 -> i2f (band (ileaf ctx) (i 63))
  | _ -> f (float_of_int (Rng.int ctx.rng 64) /. 8.0)

(* ----- statements ----- *)

let call_mix3 ctx d = call "mix3" [ iexpr ctx d; iexpr ctx d; iexpr ctx d ]

let rec stmt ctx b =
  match Rng.int ctx.rng 14 with
  | 0 ->
    let n = fresh ctx "x" in
    decl b n (iexpr ctx 3);
    ctx.ivars <- n :: ctx.ivars
  | 1 ->
    let n = fresh ctx "fx" in
    declf b n (fexpr ctx 2);
    ctx.fvars <- n :: ctx.fvars
  | 2 when ctx.ivars <> [] -> set b (pick ctx ctx.ivars) (iexpr ctx 3)
  | 3 when ctx.fvars <> [] -> set b (pick ctx ctx.fvars) (fexpr ctx 2)
  | 4 when ctx.pvars <> [] ->
    let p, mask = pick ctx ctx.pvars in
    store_idx b (v p) (band (iexpr ctx 2) (i mask)) (iexpr ctx 2)
  | 5 ->
    (* direct call through the 3-register convention *)
    let n = fresh ctx "x" in
    decl b n (call_mix3 ctx 2);
    ctx.ivars <- n :: ctx.ivars
  | 6 ->
    (* all six argument registers *)
    let a () = iexpr ctx 1 in
    let n = fresh ctx "x" in
    decl b n (call "mix6" [ a (); a (); a (); a (); a (); a () ]);
    ctx.ivars <- n :: ctx.ivars
  | 7 ->
    (* indirect call through a function pointer *)
    let n = fresh ctx "x" in
    decl b n (call_ptr (fnptr "mix3") [ iexpr ctx 1; iexpr ctx 1; iexpr ctx 1 ]);
    ctx.ivars <- n :: ctx.ivars
  | 8 ->
    (* bounded recursion *)
    let n = fresh ctx "x" in
    decl b n (call "walk" [ i (1 + Rng.int ctx.rng 8) ]);
    ctx.ivars <- n :: ctx.ivars
  | 9 ->
    let n = fresh ctx "fx" in
    declf b n (callf "fmix" [ fexpr ctx 1; fexpr ctx 1 ]);
    ctx.fvars <- n :: ctx.fvars
  | 10 when ctx.depth_budget > 0 && ctx.ivars <> [] ->
    ctx.depth_budget <- ctx.depth_budget - 1;
    let target = pick ctx ctx.ivars in
    let k = fresh ctx "k" in
    for_ b k (i 0) (i (1 + Rng.int ctx.rng 5)) (fun b ->
        set b target (add (v target) (iexpr ctx 2));
        if Rng.bool ctx.rng then
          set b "gsum" (bxor (v "gsum") (v target)))
  | 11 when ctx.depth_budget > 0 ->
    ctx.depth_budget <- ctx.depth_budget - 1;
    if_else b (iexpr ctx 2)
      (fun b -> block ctx b)
      (fun b -> block ctx b)
  | 12 -> set b "gsum" (add (v "gsum") (iexpr ctx 2))
  | _ -> set b "tcnt" (add (v "tcnt") (i (1 + Rng.int ctx.rng 7)))

and block ctx b =
  let n = 1 + Rng.int ctx.rng 3 in
  for _ = 1 to n do
    stmt ctx b
  done

let program seed =
  let rng = Rng.create (Int64.of_int (0x5eed_0000 + seed)) in
  let m = create (name seed) in
  Cstd.add m;
  global m "gbuf" (32 * 8);
  global_i64 m "gsum" 0L;
  tls_var m "tcnt" 8;
  let ir = Dapper_ir.Ir.I64 and fr = Dapper_ir.Ir.F64 in
  func m "mix3" [ ("a", ir); ("b2", ir); ("c", ir) ] (fun b ->
      ret b
        (bxor
           (add (v "a") (mul (v "b2") (i 31)))
           (sub (shr (v "c") (i 3)) (v "b2"))));
  func m "mix6" [ ("a", ir); ("b2", ir); ("c", ir); ("d", ir); ("e", ir); ("g", ir) ]
    (fun b ->
      ret b
        (bxor
           (add (v "a") (sub (v "b2") (v "c")))
           (add (mul (v "d") (i 7)) (sub (v "e") (v "g")))));
  func m "fmix" [ ("x", fr); ("y", fr) ] (fun b ->
      ret b (fadd (fmul (v "x") (v "y")) (fsub (v "x") (v "y"))));
  func m "walk" [ ("n", ir) ] (fun b ->
      (* recursion: every activation is a distinct frame the rewriter
         must carry across, with a call-site equivalence point live *)
      if_else b
        (le (v "n") (i 0))
        (fun b -> ret b (i 1))
        (fun b ->
          ret b
            (add
               (call "mix3" [ v "n"; mul (v "n") (i 3); i 11 ])
               (call "walk" [ sub (v "n") (i 1) ]))));
  func m "main" [] (fun b ->
      let ctx = { rng; ivars = []; fvars = []; pvars = []; fresh = 0; depth_budget = 3 } in
      decl b "out" (i 1);
      ctx.ivars <- [ "out" ];
      declp b "gp" (addr "gbuf");
      ctx.pvars <- [ ("gp", 31) ];
      (* a local array, fully zeroed before any use so its bytes are
         well-defined on both ISAs, reachable through a pointer local *)
      let arr_slots = 8 lsl Rng.int ctx.rng 3 in
      decl_arr b "lbuf" arr_slots;
      do_ b (call "memset8" [ addr "lbuf"; i 0; i (arr_slots * 8) ]);
      declp b "lp" (addr "lbuf");
      ctx.pvars <- ("lp", arr_slots - 1) :: ctx.pvars;
      let nstmts = 5 + Rng.int ctx.rng 8 in
      for _ = 1 to nstmts do
        stmt ctx b
      done;
      (* fold every live variable into the observable result *)
      List.iter (fun n -> set b "out" (bxor (v "out") (v n))) ctx.ivars;
      List.iter
        (fun n -> set b "out" (bxor (v "out") (f2i (fmul (v n) (f 64.0)))))
        ctx.fvars;
      List.iter
        (fun (p, _) -> set b "out" (add (v "out") (idx (v p) (band (v "out") (i 7)))))
        ctx.pvars;
      set b "out" (bxor (v "out") (add (v "gsum") (v "tcnt")));
      do_ b (call "print_int" [ v "out" ]);
      do_ b (call "print_nl" []);
      ret b (band (v "out") (i 127)));
  finish m

(* Compilation is memoized per seed: the qcheck properties visit each
   seed once per ISA direction, and the corpus sweep revisits them. *)
let compiled : (int, Link.compiled) Hashtbl.t = Hashtbl.create 64

let compile seed =
  match Hashtbl.find_opt compiled seed with
  | Some c -> c
  | None ->
    let m = program seed in
    let c = Link.compile ~app:(name seed) m in
    Hashtbl.replace compiled seed c;
    c
