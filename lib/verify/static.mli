(** Stack-map static verifier: the compiler→rewriter contract, checked
    without running anything.

    The rewriter trusts the stack maps completely — a record that lies
    about where a live value sits silently corrupts the migrated
    process. This pass re-derives, from first principles (deliberately
    {e not} via {!Dapper_binary.Stackmap_index}, whose caches it would
    otherwise have to trust), every structural invariant the recode
    pipeline relies on:

    - function ranges lie inside [.text] (within the {!Layout} code
      region), are disjoint, and agree with the symbol table;
    - frame sizes are 16-aligned and smaller than a {!Layout} stack
      region; callee-saved save slots and frame-resident live values
      sit strictly below the return-address/saved-fp pair at
      [fp+8]/[fp+0], inside the frame, and never overlap;
    - callee-saved sets and register-resident live values are
      consistent with the ISA description ({!Arch.callee_saved});
    - equivalence-point ids are unique and dense from zero, their
      addresses decode to the expected instruction (trap for
      entry/backedge checkers, call for call sites) with [ep_resume]
      exactly one encoded instruction later;
    - across the x86-64-sim/aarch64-sim pair: identical function
      addresses and padded sizes, bijective equivalence-point ids with
      matching kinds, matching live-value key sets with equal types and
      sizes, equal symbol tables, byte-identical data sections and
      anchors (the unified-address-space invariant). *)

open Dapper_binary
module Link = Dapper_codegen.Link

type violation = { vi_where : string; vi_what : string }

val violation_to_string : violation -> string

(** Per-binary invariants. *)
val check_binary : Binary.t -> violation list

(** Cross-ISA pair invariants (per-binary checks not included). *)
val check_pair : Binary.t -> Binary.t -> violation list

(** [check_binary] on both binaries plus [check_pair]. *)
val check_compiled : Link.compiled -> violation list

(** [run c] is [Ok ()] when [check_compiled c] finds nothing, otherwise
    [Error (Verify_failed msg)] where [msg] names the first violation
    site and the total count. *)
val run : Link.compiled -> (unit, Dapper_util.Dapper_error.t) result

(** {1 Mutation corpus}

    [corruptions c] returns named copies of [c], each with exactly one
    targeted stack-map corruption on the x86-64 side — a live value
    pushed out of its frame, overlapping slots, a caller-saved register
    claimed live, skewed equivalence-point ids, a resume address outside
    the function, a save slot above the frame pointer, a misaligned
    frame, and a cross-ISA type flip. The verifier must reject every one
    of them; the mutation tests assert it does, with a precise error. *)
val corruptions : Link.compiled -> (string * Link.compiled) list
