open Dapper_isa
open Dapper_binary
module Link = Dapper_codegen.Link

type violation = { vi_where : string; vi_what : string }

let violation_to_string v = v.vi_where ^ ": " ^ v.vi_what

(* Collector: checks append violations instead of failing fast, so one
   run reports every broken record (and tests can assert precision). *)
type ctx = { mutable viols : violation list }

let err ctx where fmt =
  Printf.ksprintf (fun s -> ctx.viols <- { vi_where = where; vi_what = s } :: ctx.viols) fmt

(* ----- per-binary checks ----- *)

let in_range a lo hi = Int64.compare a lo >= 0 && Int64.compare a hi <= 0

let fm_end (fm : Stackmap.func_map) =
  Int64.add fm.Stackmap.fm_addr (Int64.of_int fm.Stackmap.fm_code_size)

(* Decode the single instruction at [addr] inside the text section. *)
let decode_at (bin : Binary.t) text_end addr =
  let avail = Int64.to_int (Int64.sub text_end addr) in
  if avail <= 0 then None
  else
    let window = Binary.code_bytes bin addr (min 16 avail) in
    Encoding.decode bin.Binary.bin_arch window 0

let check_eqpoint ctx bin text_end (fm : Stackmap.func_map) (ep : Stackmap.eqpoint) =
  let arch = bin.Binary.bin_arch in
  let where = Printf.sprintf "%s/%s ep%d" (Arch.name arch) fm.fm_name ep.ep_id in
  if not (in_range ep.ep_addr fm.fm_addr (fm_end fm)) then
    err ctx where "ep_addr 0x%Lx outside function [0x%Lx,0x%Lx)" ep.ep_addr fm.fm_addr
      (fm_end fm);
  if not (in_range ep.ep_resume fm.fm_addr (fm_end fm)) then
    err ctx where "ep_resume 0x%Lx outside function" ep.ep_resume;
  if Int64.compare ep.ep_resume ep.ep_addr <= 0 then
    err ctx where "ep_resume 0x%Lx not after ep_addr 0x%Lx" ep.ep_resume ep.ep_addr;
  (* the recorded address must hold the instruction the kind promises,
     with the resume point exactly one encoding later *)
  (match decode_at bin text_end ep.ep_addr with
   | None -> err ctx where "undecodable instruction at ep_addr 0x%Lx" ep.ep_addr
   | Some (instr, size) ->
     let expect_resume = Int64.add ep.ep_addr (Int64.of_int size) in
     (match (ep.ep_kind, instr) with
      | (Stackmap.Entry | Stackmap.Backedge), Minstr.Trap -> ()
      | (Stackmap.Entry | Stackmap.Backedge), _ ->
        err ctx where "checker point does not decode to a trap (%s)"
          (Minstr.to_string arch instr)
      | Stackmap.Call_site _, (Minstr.Call _ | Minstr.Call_reg _) -> ()
      | Stackmap.Call_site _, _ ->
        err ctx where "call-site point does not decode to a call (%s)"
          (Minstr.to_string arch instr));
     if not (Int64.equal ep.ep_resume expect_resume) then
       err ctx where "ep_resume 0x%Lx is not ep_addr + insn size (expected 0x%Lx)"
         ep.ep_resume expect_resume);
  (match ep.ep_kind with
   | Stackmap.Call_site { cs_nargs } ->
     let max_args = List.length (Arch.arg_regs arch) in
     if cs_nargs < 0 || cs_nargs > max_args then
       err ctx where "cs_nargs %d outside the %d-register calling convention" cs_nargs
         max_args
   | Stackmap.Entry | Stackmap.Backedge -> ());
  (* live records: typed, sized, in-frame / in a callee-saved register,
     pairwise disjoint, below the saved-fp/return-address pair *)
  let saved_intervals = List.map (fun (_, off) -> (off, off + 8)) fm.fm_saved in
  let seen_keys = Hashtbl.create 8 in
  let intervals = ref [] in
  List.iter
    (fun (lv : Stackmap.live_value) ->
      let lwhere = Printf.sprintf "%s %s" where lv.lv_name in
      if Hashtbl.mem seen_keys lv.lv_key then err ctx lwhere "duplicate live-value key";
      Hashtbl.replace seen_keys lv.lv_key ();
      if lv.lv_size <= 0 || lv.lv_size mod 8 <> 0 then
        err ctx lwhere "bad size %d" lv.lv_size;
      match lv.lv_loc with
      | Stackmap.Reg r ->
        if r < 0 || r >= Arch.gpr_count arch then err ctx lwhere "invalid register %d" r
        else if not (List.mem r (Arch.callee_saved arch)) then
          err ctx lwhere "register %s is not callee-saved" (Arch.reg_name arch r);
        if lv.lv_size <> 8 then
          err ctx lwhere "register-resident value of %d bytes" lv.lv_size
      | Stackmap.Frame off ->
        (* strictly below fp: [fp+0] holds the caller fp and [fp+8] the
           return address (Layout/Frame geometry), so no live value may
           reach offset 0 or above *)
        if off >= 0 || off + lv.lv_size > 0 || off < -fm.fm_frame_size then
          err ctx lwhere "slot [%d,%d) escapes frame of %d bytes" off (off + lv.lv_size)
            fm.fm_frame_size;
        List.iter
          (fun (lo, hi) ->
            if not (off + lv.lv_size <= lo || off >= hi) then
              err ctx lwhere "slot [%d,%d) overlaps callee-save slot [%d,%d)" off
                (off + lv.lv_size) lo hi)
          saved_intervals;
        List.iter
          (fun (lo, hi) ->
            if not (off + lv.lv_size <= lo || off >= hi) then
              err ctx lwhere "slot [%d,%d) overlaps another live slot [%d,%d)" off
                (off + lv.lv_size) lo hi)
          !intervals;
        intervals := (off, off + lv.lv_size) :: !intervals)
    ep.ep_live

let check_func ctx bin text_end (fm : Stackmap.func_map) =
  let arch = bin.Binary.bin_arch in
  let where = Printf.sprintf "%s/%s" (Arch.name arch) fm.fm_name in
  if fm.fm_code_size <= 0 then err ctx where "empty code range";
  if not (in_range fm.fm_addr Layout.code_base Layout.data_base)
     || not (in_range (fm_end fm) Layout.code_base Layout.data_base)
  then err ctx where "function range outside the Layout code region";
  if Int64.compare (fm_end fm) text_end > 0 then
    err ctx where "function range extends past .text";
  (* the symbol table must agree with the map (same aligned address and
     padded size) — the unwinder resolves one, the rewriter the other *)
  (match Binary.find_symbol bin fm.fm_name with
   | None -> err ctx where "no symbol for mapped function"
   | Some sym ->
     if sym.sym_kind <> Binary.Sym_func then err ctx where "symbol is not Sym_func";
     if not (Int64.equal sym.sym_addr fm.fm_addr) then
       err ctx where "symbol addr 0x%Lx <> fm_addr 0x%Lx" sym.sym_addr fm.fm_addr;
     if sym.sym_size <> fm.fm_code_size then
       err ctx where "symbol size %d <> fm_code_size %d" sym.sym_size fm.fm_code_size);
  if fm.fm_frame_size < 0 || fm.fm_frame_size mod 16 <> 0 then
    err ctx where "frame size %d not 16-aligned" fm.fm_frame_size;
  if fm.fm_frame_size >= Layout.stack_region then
    err ctx where "frame size %d exceeds a Layout stack region" fm.fm_frame_size;
  let offs = ref [] in
  List.iter
    (fun (r, off) ->
      if not (List.mem r (Arch.callee_saved arch)) then
        err ctx where "saved register %s is not callee-saved" (Arch.reg_name arch r);
      if off >= 0 || off < -fm.fm_frame_size then
        err ctx where "save slot %d for %s outside the frame" off (Arch.reg_name arch r);
      if off mod 8 <> 0 then err ctx where "save slot %d misaligned" off;
      if List.mem off !offs then err ctx where "duplicate save slot %d" off;
      offs := off :: !offs)
    fm.fm_saved;
  List.iter
    (fun (slot, r) ->
      if not (List.mem_assoc r fm.fm_saved) then
        err ctx where "promoted slot %d register %s has no save slot" slot
          (Arch.reg_name arch r))
    fm.fm_promoted;
  (* equivalence-point ids unique and dense from 0 *)
  let ids = List.map (fun (ep : Stackmap.eqpoint) -> ep.ep_id) fm.fm_eqpoints in
  let sorted = List.sort_uniq compare ids in
  if List.length sorted <> List.length ids then err ctx where "duplicate eqpoint ids";
  List.iteri
    (fun k id -> if k <> id then err ctx where "eqpoint ids not dense from 0 (%d at rank %d)" id k)
    sorted;
  List.iter (check_eqpoint ctx bin text_end fm) fm.fm_eqpoints

let check_binary (bin : Binary.t) =
  let ctx = { viols = [] } in
  let arch_name = Arch.name bin.Binary.bin_arch in
  (match Binary.find_section bin ".text" with
   | None -> err ctx arch_name "missing .text section"
   | Some text ->
     let text_end = Int64.add text.sec_addr (Int64.of_int (String.length text.sec_data)) in
     (* disjoint function ranges *)
     let ranges =
       List.sort compare
         (List.map (fun (fm : Stackmap.func_map) -> (fm.fm_addr, fm_end fm, fm.fm_name))
            bin.Binary.bin_stackmaps)
     in
     let rec overlap = function
       | (_, hi, a) :: ((lo, _, b) :: _ as rest) ->
         if Int64.compare lo hi < 0 then
           err ctx arch_name "functions %s and %s overlap" a b;
         overlap rest
       | _ -> []
     in
     ignore (overlap ranges);
     (* anchors point where the runtime expects *)
     let anchors = bin.Binary.bin_anchors in
     (match Stackmap.find_func bin.Binary.bin_stackmaps "main" with
      | None -> err ctx arch_name "no stack map for main"
      | Some fm ->
        if not (Int64.equal anchors.a_entry fm.Stackmap.fm_addr) then
          err ctx arch_name "a_entry 0x%Lx is not main's address 0x%Lx" anchors.a_entry
            fm.Stackmap.fm_addr);
     List.iter
       (fun (name, a) ->
         if not (in_range a text.sec_addr text_end) then
           err ctx arch_name "%s 0x%Lx outside .text" name a)
       [ ("a_exit_stub", anchors.a_exit_stub);
         ("a_thread_exit_stub", anchors.a_thread_exit_stub) ];
     (match Binary.find_section bin ".data" with
      | None -> err ctx arch_name "missing .data section"
      | Some data ->
        let data_end = Int64.add data.sec_addr (Int64.of_int (String.length data.sec_data)) in
        if not (in_range anchors.a_flag data.sec_addr data_end) then
          err ctx arch_name "a_flag 0x%Lx outside .data" anchors.a_flag);
     List.iter (check_func ctx bin text_end) bin.Binary.bin_stackmaps);
  List.rev ctx.viols

(* ----- cross-pair checks ----- *)

let check_pair (bx : Binary.t) (ba : Binary.t) =
  let ctx = { viols = [] } in
  let where = Printf.sprintf "%s pair" bx.Binary.bin_app in
  if Arch.equal bx.Binary.bin_arch ba.Binary.bin_arch then
    err ctx where "both binaries target %s" (Arch.name bx.Binary.bin_arch);
  if bx.Binary.bin_app <> ba.Binary.bin_app then
    err ctx where "application names differ (%s vs %s)" bx.Binary.bin_app ba.Binary.bin_app;
  (* the unified address space: equal symbols, byte-identical data *)
  let sym_key (s : Binary.symbol) = (s.sym_name, s.sym_addr, s.sym_size, s.sym_kind) in
  let sx = List.sort compare (List.map sym_key bx.Binary.bin_symbols) in
  let sa = List.sort compare (List.map sym_key ba.Binary.bin_symbols) in
  if sx <> sa then err ctx where "symbol tables differ";
  (match (Binary.find_section bx ".data", Binary.find_section ba ".data") with
   | Some dx, Some da when dx.sec_data <> da.sec_data ->
     err ctx where ".data sections are not byte-identical"
   | _ -> ());
  if bx.Binary.bin_tls_size <> ba.Binary.bin_tls_size
     || bx.Binary.bin_tls_init <> ba.Binary.bin_tls_init
  then err ctx where "TLS images differ";
  if bx.Binary.bin_anchors <> ba.Binary.bin_anchors then err ctx where "anchors differ";
  (* function-by-function correspondence *)
  let mx = bx.Binary.bin_stackmaps and ma = ba.Binary.bin_stackmaps in
  if List.length mx <> List.length ma then
    err ctx where "function counts differ (%d vs %d)" (List.length mx) (List.length ma)
  else
    List.iter2
      (fun (fx : Stackmap.func_map) (fa : Stackmap.func_map) ->
        let fwhere = Printf.sprintf "%s pair/%s" bx.Binary.bin_app fx.fm_name in
        if fx.fm_name <> fa.fm_name then
          err ctx where "function order differs (%s vs %s)" fx.fm_name fa.fm_name
        else begin
          if not (Int64.equal fx.fm_addr fa.fm_addr) then
            err ctx fwhere "aligned addresses differ (0x%Lx vs 0x%Lx)" fx.fm_addr fa.fm_addr;
          if fx.fm_code_size <> fa.fm_code_size then
            err ctx fwhere "padded sizes differ (%d vs %d)" fx.fm_code_size fa.fm_code_size;
          if fx.fm_leaf <> fa.fm_leaf then err ctx fwhere "leaf-ness differs";
          (* equivalence points must be bijective by id with equal kinds
             and live-value key sets of equal type and size: this is
             exactly what lets the rewriter pair source and target
             records *)
          let by_id (eps : Stackmap.eqpoint list) =
            List.sort compare (List.map (fun (ep : Stackmap.eqpoint) -> ep.ep_id) eps)
          in
          if by_id fx.fm_eqpoints <> by_id fa.fm_eqpoints then
            err ctx fwhere "eqpoint ids are not bijective"
          else
            List.iter
              (fun (ex : Stackmap.eqpoint) ->
                match Stackmap.eqpoint_by_id fa ex.ep_id with
                | None -> ()
                | Some ea ->
                  let ewhere = Printf.sprintf "%s ep%d" fwhere ex.ep_id in
                  if ex.ep_kind <> ea.ep_kind then err ctx ewhere "kinds differ";
                  let live (ep : Stackmap.eqpoint) =
                    List.sort compare
                      (List.map
                         (fun (lv : Stackmap.live_value) -> (lv.lv_key, lv.lv_ty, lv.lv_size))
                         ep.ep_live)
                  in
                  if live ex <> live ea then
                    err ctx ewhere "live-value keys/types/sizes differ")
              fx.fm_eqpoints
        end)
      mx ma;
  List.rev ctx.viols

let check_compiled (c : Link.compiled) =
  check_binary c.Link.cp_x86 @ check_binary c.Link.cp_arm
  @ check_pair c.Link.cp_x86 c.Link.cp_arm

let run c =
  match check_compiled c with
  | [] -> Ok ()
  | first :: rest ->
    Error
      (Dapper_util.Dapper_error.Verify_failed
         (Printf.sprintf "%s%s" (violation_to_string first)
            (match rest with
             | [] -> ""
             | _ -> Printf.sprintf " (and %d more)" (List.length rest))))

(* ----- mutation corpus ----- *)

(* Rebuild [c] with the x86-64 stack maps passed through [f]; [f]
   returns [None] when the mutation found no applicable site. *)
let mutate_x86 (c : Link.compiled)
    (f : Stackmap.func_map list -> Stackmap.func_map list option) =
  match f c.Link.cp_x86.Binary.bin_stackmaps with
  | None -> None
  | Some maps ->
    Some { c with Link.cp_x86 = { c.Link.cp_x86 with Binary.bin_stackmaps = maps } }

(* Apply [f] to the first function map satisfying [pred]. *)
let on_first_fm pred f maps =
  let rec go acc = function
    | [] -> None
    | fm :: rest ->
      if pred fm then Some (List.rev_append acc (f fm :: rest)) else go (fm :: acc) rest
  in
  go [] maps

let has_frame_lv (fm : Stackmap.func_map) =
  List.exists
    (fun (ep : Stackmap.eqpoint) ->
      List.exists
        (fun (lv : Stackmap.live_value) ->
          match lv.lv_loc with Stackmap.Frame _ -> true | Stackmap.Reg _ -> false)
        ep.ep_live)
    fm.fm_eqpoints

let has_scalar_lv (fm : Stackmap.func_map) =
  List.exists
    (fun (ep : Stackmap.eqpoint) ->
      List.exists (fun (lv : Stackmap.live_value) -> lv.lv_size = 8) ep.ep_live)
    fm.fm_eqpoints

(* Rewrite the first live value satisfying [pred] inside a function. *)
let map_first_lv pred f (fm : Stackmap.func_map) =
  let hit = ref false in
  let eqpoints =
    List.map
      (fun (ep : Stackmap.eqpoint) ->
        { ep with
          Stackmap.ep_live =
            List.map
              (fun (lv : Stackmap.live_value) ->
                if (not !hit) && pred lv then begin hit := true; f lv end else lv)
              ep.ep_live })
      fm.fm_eqpoints
  in
  { fm with Stackmap.fm_eqpoints = eqpoints }

let is_frame (lv : Stackmap.live_value) =
  match lv.lv_loc with Stackmap.Frame _ -> true | Stackmap.Reg _ -> false

let corruptions (c : Link.compiled) =
  let candidates =
    [ ( "live-out-of-frame",
        mutate_x86 c
          (on_first_fm has_frame_lv
             (map_first_lv is_frame (fun lv -> { lv with Stackmap.lv_loc = Stackmap.Frame 16 }))) );
      ( "slot-overlap",
        mutate_x86 c
          (on_first_fm has_frame_lv (fun fm ->
               (* duplicate the first frame-resident value under a fresh
                  key at the same offset: two records now claim the slot *)
               let dup = ref None in
               let eqpoints =
                 List.map
                   (fun (ep : Stackmap.eqpoint) ->
                     match
                       ( !dup,
                         List.find_opt (fun lv -> is_frame lv) ep.Stackmap.ep_live )
                     with
                     | None, Some lv ->
                       let ghost =
                         { lv with
                           Stackmap.lv_key = Stackmap.Temp 99991;
                           lv_name = "__ghost" }
                       in
                       dup := Some ();
                       { ep with Stackmap.ep_live = ghost :: ep.Stackmap.ep_live }
                     | _ -> ep)
                   fm.Stackmap.fm_eqpoints
               in
               { fm with Stackmap.fm_eqpoints = eqpoints })) );
      ( "reg-not-callee-saved",
        mutate_x86 c
          (on_first_fm has_scalar_lv
             (map_first_lv
                (fun lv -> lv.lv_size = 8)
                (fun lv ->
                  { lv with
                    Stackmap.lv_loc = Stackmap.Reg (Arch.sp c.Link.cp_x86.Binary.bin_arch)
                  }))) );
      ( "eqpoint-id-skew",
        mutate_x86 c
          (on_first_fm
             (fun fm -> fm.Stackmap.fm_eqpoints <> [])
             (fun fm ->
               let eqpoints =
                 match List.rev fm.Stackmap.fm_eqpoints with
                 | last :: rest ->
                   List.rev ({ last with Stackmap.ep_id = last.Stackmap.ep_id + 1000 } :: rest)
                 | [] -> []
               in
               { fm with Stackmap.fm_eqpoints = eqpoints })) );
      ( "resume-out-of-range",
        mutate_x86 c
          (on_first_fm
             (fun fm -> fm.Stackmap.fm_eqpoints <> [])
             (fun fm ->
               let target =
                 Int64.add fm.Stackmap.fm_addr
                   (Int64.of_int (fm.Stackmap.fm_code_size + 64))
               in
               let eqpoints =
                 match fm.Stackmap.fm_eqpoints with
                 | ep :: rest -> { ep with Stackmap.ep_resume = target } :: rest
                 | [] -> []
               in
               { fm with Stackmap.fm_eqpoints = eqpoints })) );
      ( "save-slot-escape",
        mutate_x86 c
          (on_first_fm
             (fun fm -> fm.Stackmap.fm_saved <> [])
             (fun fm ->
               let saved =
                 match fm.Stackmap.fm_saved with
                 | (r, _) :: rest -> (r, 8) :: rest
                 | [] -> []
               in
               { fm with Stackmap.fm_saved = saved })) );
      ( "frame-misaligned",
        mutate_x86 c
          (on_first_fm
             (fun fm -> fm.Stackmap.fm_frame_size > 0)
             (fun fm -> { fm with Stackmap.fm_frame_size = fm.Stackmap.fm_frame_size + 8 })) );
      ( "type-skew",
        mutate_x86 c
          (on_first_fm has_scalar_lv
             (map_first_lv
                (fun lv -> lv.lv_size = 8)
                (fun lv ->
                  let flipped =
                    match lv.Stackmap.lv_ty with
                    | Stackmap.Lv_i64 -> Stackmap.Lv_ptr
                    | Stackmap.Lv_ptr | Stackmap.Lv_f64 -> Stackmap.Lv_i64
                  in
                  { lv with Stackmap.lv_ty = flipped }))) ) ]
  in
  List.filter_map (fun (name, c) -> Option.map (fun c -> (name, c)) c) candidates
