(** The example corpus: miniature twins of the [examples/] programs.

    Each entry reproduces the program shape of one bundled example —
    the quickstart call-in-a-loop, the textual-frontend Monte-Carlo pi
    estimator, plus a deep-recursion and an array/pointer workload — at
    a size where the oracle's every-equivalence-point migration sweep
    (quadratic in dynamic equivalence points: each point is reached by
    replaying from a fresh load) stays cheap enough for the tier-1
    suite. Compilation is memoized. *)

val all : unit -> (string * Dapper_codegen.Link.compiled) list

val find : string -> Dapper_codegen.Link.compiled option
