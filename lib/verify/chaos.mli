(** The chaos harness: the migration oracle's invariant under injected
    faults.

    Each run parks a fresh source process at a seeded equivalence point
    of an example program, picks a seeded transport (eager or post-copy,
    possibly congested, always armed with {!Dapper_net.Transport.retrying}
    retransmission), and drives the full two-phase-commit
    {!Dapper.Session} pipeline under a seeded {!Dapper_util.Fault.t}
    schedule. The invariant enforced on every run:

    {e no injected fault ever loses or corrupts a process} — either the
    migration {b commits}, and the destination is observably identical
    to the paused source and runs to the native result; or it
    {b rolls back}, and the source is running again and runs to the
    native result. Anything else is a {!failure}.

    Both the fault schedule and the per-run choices derive from the run
    seed alone, so any chaos failure is replayable bit for bit from its
    seed. *)

open Dapper_isa
module Link = Dapper_codegen.Link

type verdict =
  | Committed
  | Rolled_back of Dapper_util.Dapper_error.t  (** the stage error that triggered it *)

type run_report = {
  cr_app : string;
  cr_src : Arch.t;
  cr_dst : Arch.t;
  cr_seed : int;
  cr_point : int;          (** equivalence point migrated at *)
  cr_transport : string;
  cr_mechanism : Dapper_traffic.Budget.mechanism option;
      (** the forced copy mechanism, if one was pinned *)
  cr_verdict : verdict;
  cr_faults : int;         (** faults the schedule injected *)
  cr_retransmits : int;    (** transfer + page retransmissions recovered *)
  cr_drained : int;        (** post-copy pages drained at commit *)
  cr_added_ms : float;     (** injected latency + retry backoff paid *)
}

type failure = {
  cf_app : string;
  cf_src : Arch.t;
  cf_dst : Arch.t;
  cf_seed : int;
  cf_what : string;
  cf_shadow : string option;
      (** divergence-localizing autopsy: when a committed destination's
          state differs from the paused source, the harness records a
          reference source run and shadow-replays the destination
          against it ({!Dapper_replay.Shadow.check}); the report names
          the first diverging anchor, thread and pages *)
}

type summary = {
  cs_runs : int;
  cs_committed : int;
  cs_rolled_back : int;
  cs_faults : int;
  cs_retransmits : int;
  cs_drained : int;
  cs_added_ms : float;
}

val verdict_name : verdict -> string
val run_report_to_string : run_report -> string
val failure_to_string : failure -> string
val summary_to_string : summary -> string

(** Dynamic equivalence points reachable by [bin], capped (default 6). *)
val probe_points : ?cap:int -> budget:int -> Dapper_binary.Binary.t -> int

(** One seeded chaos run of [c], migrating [src]→[dst] under [spec].
    Defaults: [fuel] 50M, [budget] 50M. With [pipeline], the transfer
    stage streams the image in page-sized chunks
    ({!Dapper.Session.config.cfg_pipeline}) — faults landing mid-stream
    must still commit-or-rollback exactly like the sequential path.
    [mechanism] pins the copy style instead of drawing it from the run
    stream (eager for vanilla/pre-copy, post-copy for lazy/hybrid;
    pre-copy and hybrid warm the destination with fault-free rounds
    first) — the congestion draw and fault schedule stay seed-aligned
    with the unpinned run. *)
val run_one :
  ?fuel:int ->
  ?budget:int ->
  ?pipeline:bool ->
  ?mechanism:Dapper_traffic.Budget.mechanism ->
  spec:Dapper_util.Fault.spec ->
  seed:int ->
  src:Arch.t ->
  dst:Arch.t ->
  Link.compiled ->
  (run_report, failure) result

(** [sweep ~spec ~seeds ()] runs seeds [0..seeds-1] across the whole
    example corpus, alternating migration direction, stopping at the
    first invariant violation. [progress] is called per completed run. *)
val sweep :
  ?fuel:int ->
  ?budget:int ->
  ?pipeline:bool ->
  ?mechanism:Dapper_traffic.Budget.mechanism ->
  ?progress:(run_report -> unit) ->
  spec:Dapper_util.Fault.spec ->
  seeds:int ->
  unit ->
  (summary, failure) result
