open Dapper_isa
open Dapper_machine
module Link = Dapper_codegen.Link
module Session = Dapper.Session
module Monitor = Dapper.Monitor
module Transport = Dapper_net.Transport
module Netlink = Dapper_net.Link
module Fault = Dapper_util.Fault
module Rng = Dapper_util.Rng
module Derr = Dapper_util.Dapper_error
module Trace = Dapper_obs.Trace
module Budget = Dapper_traffic.Budget
module Replayer = Dapper_replay.Replayer
module Shadow = Dapper_replay.Shadow

type verdict = Committed | Rolled_back of Derr.t

type run_report = {
  cr_app : string;
  cr_src : Arch.t;
  cr_dst : Arch.t;
  cr_seed : int;
  cr_point : int;
  cr_transport : string;
  cr_mechanism : Budget.mechanism option;
  cr_verdict : verdict;
  cr_faults : int;
  cr_retransmits : int;
  cr_drained : int;
  cr_added_ms : float;
}

type failure = {
  cf_app : string;
  cf_src : Arch.t;
  cf_dst : Arch.t;
  cf_seed : int;
  cf_what : string;
  cf_shadow : string option;
}

type summary = {
  cs_runs : int;
  cs_committed : int;
  cs_rolled_back : int;
  cs_faults : int;
  cs_retransmits : int;
  cs_drained : int;
  cs_added_ms : float;
}

let verdict_name = function
  | Committed -> "committed"
  | Rolled_back e -> "rolled-back (" ^ Derr.to_string e ^ ")"

let run_report_to_string r =
  Printf.sprintf "seed %d %s %s->%s @%d over %s%s: %s, %d faults, %d retransmits, +%.2f ms"
    r.cr_seed r.cr_app (Arch.name r.cr_src) (Arch.name r.cr_dst) r.cr_point
    r.cr_transport
    (match r.cr_mechanism with
     | None -> ""
     | Some m -> " [" ^ Budget.mechanism_name m ^ "]")
    (verdict_name r.cr_verdict) r.cr_faults r.cr_retransmits
    r.cr_added_ms

let failure_to_string f =
  Printf.sprintf "seed %d %s %s->%s: %s%s" f.cf_seed f.cf_app (Arch.name f.cf_src)
    (Arch.name f.cf_dst) f.cf_what
    (match f.cf_shadow with None -> "" | Some r -> "\n" ^ r)

let summary_to_string s =
  Printf.sprintf
    "%d runs: %d committed, %d rolled back, 0 lost; %d faults injected, %d \
     retransmissions, %d pages drained at commit, +%.2f ms added latency"
    s.cs_runs s.cs_committed s.cs_rolled_back s.cs_faults s.cs_retransmits
    s.cs_drained s.cs_added_ms

exception Fail of string

let fail fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

(* How many dynamic equivalence points the program reaches, up to [cap]
   (migration targets beyond a small prefix add coverage but not new
   failure modes, and replaying to deep points is linear per run). *)
let probe_points ?(cap = 6) ~budget bin =
  let p = Process.load bin in
  let rec go k =
    if k >= cap then k
    else
      match Monitor.request_pause p ~budget with
      | Error Derr.Process_exited -> k
      | Error e -> fail "point probe: pause failed: %s" (Derr.to_string e)
      | Ok _ ->
        Monitor.resume p;
        go (k + 1)
  in
  go 0

(* The seeded transport menu: eager scp or lazy post-copy, sometimes
   over a congested link, always armed with bounded retransmission.
   Drawn from the run's own stream so the choice is replayable. With a
   forced [mechanism], the copy style is pinned instead (the eager/lazy
   coin is still consumed, so the congestion draw and the fault schedule
   stay aligned with the unpinned run of the same seed). *)
let pick_transport ?mechanism rng =
  let coin_eager = Rng.float rng < 0.5 in
  let eager =
    match mechanism with
    | None -> coin_eager
    | Some (Budget.Vanilla | Budget.Precopy) -> true
    | Some (Budget.Hybrid | Budget.Postcopy) -> false
  in
  let base =
    if eager then Transport.scp Netlink.infiniband
    else Transport.page_server Netlink.infiniband
  in
  let base =
    if Rng.float rng < 0.25 then Transport.degraded ~factor:2.0 base else base
  in
  Transport.retrying ~attempts:4 base

(* One chaos run: migrate a fresh source parked at a seeded equivalence
   point under a seeded fault schedule, then enforce the invariant — the
   migration either commits with a destination observably identical to
   the paused source (and which completes like the native run), or rolls
   back to a source that is running and completes like the native run.
   Either way, no process is ever lost or corrupted. *)
let run_one ?(fuel = 50_000_000) ?(budget = 50_000_000) ?(pipeline = false)
    ?mechanism ~spec ~seed ~src ~dst (c : Link.compiled) =
  let src_bin = Link.binary_for c src and dst_bin = Link.binary_for c dst in
  (* divergence-localizing autopsy attached to a state-mismatch failure *)
  let shadow = ref None in
  let go () =
    (* ground truth *)
    let expected_code, expected_out =
      let p = Process.load src_bin in
      match Process.run_to_completion p ~fuel with
      | Process.Exited_run code -> (code, Process.stdout_contents p)
      | _ -> fail "native run did not complete"
    in
    let rng = Rng.create (Int64.of_int ((seed * 2) + 1)) in
    let points = probe_points ~budget src_bin in
    if points = 0 then fail "program reaches no equivalence point";
    let point = Rng.int rng points in
    let transport = pick_transport ?mechanism rng in
    let p = Process.load src_bin in
    if not (Oracle.advance_to_point p ~budget point) then
      fail "source exited before point %d on replay" point;
    let snap_src = Process.observe p in
    let fault = Fault.make ~seed spec in
    let base_cfg =
      { (Session.default_config ~src_bin ~dst_bin) with
        Session.cfg_transport = transport;
        cfg_pause_budget = budget;
        cfg_commit_drain = true;
        (* pipelined chaos: stream in page-sized chunks (corpus images
           are unscaled, so the default 256 KiB would be one chunk) —
           faults mid-stream must still commit-or-rollback *)
        cfg_pipeline = pipeline;
        cfg_chunk_bytes = (if pipeline then 4096 else 262_144) }
    in
    (* Mechanisms with a pre-copy prologue warm the destination first,
       fault-free, with a no-op advance: the parked source makes no
       progress, so [snap_src] stays authoritative and the invariant
       checks below are unchanged. *)
    let resident =
      match mechanism with
      | Some (Budget.Precopy | Budget.Hybrid) ->
        let st =
          Session.precopy base_cfg p ~advance:(fun _ -> ()) ~max_rounds:3
            ~downtime_budget_ms:0.0
        in
        st.Session.pcs_resident
      | _ -> []
    in
    let cfg =
      { base_cfg with
        Session.cfg_fault = Some fault;
        cfg_resident_pages = resident }
    in
    (* driven stepwise so the session's transfer accounting survives a
       failed stage (Session.run would discard it with the session) *)
    let s0 = Session.start cfg p in
    let tx = Session.transfer_stats s0 in
    let ( let* ) = Result.bind in
    let outcome =
      let* s = Session.pause s0 in
      let* s = Session.dump s in
      let* s = Session.recode s in
      let* s = Session.transfer s in
      let* s = Session.restore s in
      let* s = Session.commit s in
      Ok (Session.finish s)
    in
    let prefix = snap_src.Process.sn_stdout in
    let verdict, retransmits, drained =
      match outcome with
      | Ok r ->
        let q = r.Session.r_process in
        (* commit acknowledged: the destination owns the process *)
        if not (Process.state_equal snap_src (Process.observe q)) then begin
          (* autopsy before failing: record a reference source run and
             shadow the still-unrun destination against it, so the
             failure names the first diverging anchor and pages instead
             of just "differs" *)
          (match Replayer.record ~budget src_bin with
          | Ok log when point < Dapper_replay.Log.points log ->
            let rep = Shadow.check ~budget ~log ~from_point:point q in
            shadow := Some (Shadow.report_to_string rep)
          | Ok _ | Error _ -> ());
          fail "committed destination differs from the paused source"
        end;
        if not (Process.all_quiescent p) then
          fail "committed migration left the source running";
        (match Process.run_to_completion q ~fuel with
         | Process.Exited_run code ->
           if not (Int64.equal code expected_code) then
             fail "destination exit code %Ld <> native %Ld" code expected_code;
           let out = prefix ^ Process.stdout_contents q in
           if not (String.equal out expected_out) then
             fail "destination output %S <> native %S" out expected_out
         | Process.Crashed cr -> fail "destination crashed: %s" cr.Process.cr_reason
         | _ -> fail "destination did not complete");
        let page_rt =
          match r.Session.r_page_server with
          | Some ps -> ps.Transport.srv_retransmits
          | None -> 0
        in
        (Committed, tx.Transport.tx_retransmits + page_rt, r.Session.r_drained)
      | Error e ->
        (* rolled back: the source must be running again and unharmed *)
        (match p.Process.exit_code with
         | Some _ -> ()
         | None ->
           if Process.all_quiescent p then
             fail "rollback left the source parked (error: %s)" (Derr.to_string e));
        (match Process.run_to_completion p ~fuel with
         | Process.Exited_run code ->
           if not (Int64.equal code expected_code) then
             fail "rolled-back source exit code %Ld <> native %Ld" code expected_code;
           let out = Process.stdout_contents p in
           if not (String.equal out expected_out) then
             fail "rolled-back source output %S <> native %S" out expected_out
         | Process.Crashed cr ->
           fail "rolled-back source crashed: %s" cr.Process.cr_reason
         | _ -> fail "rolled-back source did not complete");
        (Rolled_back e, tx.Transport.tx_retransmits, 0)
    in
    { cr_app = c.Link.cp_app;
      cr_src = src;
      cr_dst = dst;
      cr_seed = seed;
      cr_point = point;
      cr_transport = Transport.name transport;
      cr_mechanism = mechanism;
      cr_verdict = verdict;
      cr_faults = Fault.injected fault;
      cr_retransmits = retransmits;
      cr_drained = drained;
      (* cost of chaos = injected delays + retry backoff (the backoff
         share is tallied separately since the accounting split) *)
      cr_added_ms = (tx.Transport.tx_fault_ns +. tx.Transport.tx_backoff_ns) /. 1e6 }
  in
  let traced () =
    Trace.span ~cat:"chaos" "chaos-run"
      ~args:
        [ ("seed", string_of_int seed); ("app", c.Link.cp_app);
          ("src", Arch.name src); ("dst", Arch.name dst) ]
      go
  in
  match traced () with
  | report -> Ok report
  | exception Fail what ->
    Error { cf_app = c.Link.cp_app; cf_src = src; cf_dst = dst; cf_seed = seed;
            cf_what = what; cf_shadow = !shadow }

(* N seeded schedules swept over the whole example corpus, alternating
   migration direction: the chaos suite proper. Stops at the first
   invariant violation. *)
let sweep ?fuel ?budget ?pipeline ?mechanism ?(progress = fun _ -> ()) ~spec
    ~seeds () =
  let corpus = Corpus.all () in
  let n_programs = List.length corpus in
  let zero =
    { cs_runs = 0; cs_committed = 0; cs_rolled_back = 0; cs_faults = 0;
      cs_retransmits = 0; cs_drained = 0; cs_added_ms = 0.0 }
  in
  let rec go seed acc =
    if seed >= seeds then Ok acc
    else begin
      let _, c = List.nth corpus (seed mod n_programs) in
      let src, dst =
        if seed / n_programs mod 2 = 0 then (Arch.X86_64, Arch.Aarch64)
        else (Arch.Aarch64, Arch.X86_64)
      in
      match run_one ?fuel ?budget ?pipeline ?mechanism ~spec ~seed ~src ~dst c with
      | Error _ as e -> e
      | Ok r ->
        progress r;
        let acc =
          { cs_runs = acc.cs_runs + 1;
            cs_committed =
              (acc.cs_committed + match r.cr_verdict with Committed -> 1 | _ -> 0);
            cs_rolled_back =
              (acc.cs_rolled_back
               + match r.cr_verdict with Rolled_back _ -> 1 | _ -> 0);
            cs_faults = acc.cs_faults + r.cr_faults;
            cs_retransmits = acc.cs_retransmits + r.cr_retransmits;
            cs_drained = acc.cs_drained + r.cr_drained;
            cs_added_ms = acc.cs_added_ms +. r.cr_added_ms }
        in
        go (seed + 1) acc
    end
  in
  go 0 zero
