open Dapper_isa
open Dapper_binary
open Dapper_machine
module Link = Dapper_codegen.Link
module Session = Dapper.Session
module Monitor = Dapper.Monitor
module Unwind = Dapper.Unwind
module Dump = Dapper_criu.Dump
module Images = Dapper_criu.Images
module Rewrite = Dapper.Rewrite
module Plan_cache = Dapper.Plan_cache
module Derr = Dapper_util.Dapper_error

type report = {
  rp_app : string;
  rp_src : Arch.t;
  rp_dst : Arch.t;
  rp_points : int;
  rp_complete : bool;
  rp_migrations : int;
  rp_snapshots : int;
  rp_values : int;
}

type failure = {
  fl_app : string;
  fl_src : Arch.t;
  fl_dst : Arch.t;
  fl_point : int;
  fl_what : string;
}

let report_to_string r =
  Printf.sprintf "%s %s->%s: %d points%s, %d migrations, %d snapshots, %d values"
    r.rp_app (Arch.name r.rp_src) (Arch.name r.rp_dst) r.rp_points
    (if r.rp_complete then "" else " (capped)")
    r.rp_migrations r.rp_snapshots r.rp_values

let failure_to_string f =
  Printf.sprintf "%s %s->%s at point %d: %s" f.fl_app (Arch.name f.fl_src)
    (Arch.name f.fl_dst) f.fl_point f.fl_what

(* Internal failure carrier: every check raises [Fail (point, what)] and
   [run] converts it to a [failure] at its boundary. *)
exception Fail of int * string

let fail point fmt = Printf.ksprintf (fun s -> raise (Fail (point, s))) fmt

(* ----- native runs ----- *)

let run_native ~fuel arch (c : Link.compiled) =
  let p = Process.load (Link.binary_for c arch) in
  match Process.run_to_completion p ~fuel with
  | Process.Exited_run code -> (code, Process.stdout_contents p)
  | Process.Crashed cr ->
    fail (-1) "native %s crashed at 0x%Lx: %s" (Arch.name arch) cr.cr_pc cr.cr_reason
  | Process.Idle -> fail (-1) "native %s deadlocked" (Arch.name arch)
  | Process.Progress -> fail (-1) "native %s exceeded %d instruction fuel" (Arch.name arch) fuel

(* ----- pause-point stepping ----- *)

(* Advance a process to its next dynamic equivalence point. [`Point]
   leaves every thread parked at the point; [`Exited] means the program
   ran to completion instead. *)
let next_point ~point ~budget p =
  match Monitor.request_pause p ~budget with
  | Ok _ -> `Point
  | Error Derr.Process_exited -> `Exited
  | Error e -> fail point "pause failed: %s" (Derr.to_string e)

let advance_to_point p ~budget k =
  let rec go j =
    match Monitor.request_pause p ~budget with
    | Error Derr.Process_exited -> false
    | Error e -> raise (Fail (j, "pause failed: " ^ Derr.to_string e))
    | Ok _ -> if j = k then true else (Monitor.resume p; go (j + 1))
  in
  go 0

(* ----- pointwise comparisons ----- *)

(* Compare the unwound stacks of the two paused twins: same threads,
   same frames (function, equivalence point, at-call flag), and
   byte-identical live values per cross-ISA key. Pointer-typed values
   are compared for presence only: stack addresses legally differ
   across ISAs (frame geometry) until the rewriter translates them. *)
let compare_stacks ~point ~values sa sb =
  let by_tid = List.sort (fun a b -> compare a.Unwind.ts_tid b.Unwind.ts_tid) in
  let sa = by_tid sa and sb = by_tid sb in
  if List.length sa <> List.length sb then
    fail point "thread counts differ (%d vs %d)" (List.length sa) (List.length sb);
  List.iter2
    (fun (ta : Unwind.thread_stack) (tb : Unwind.thread_stack) ->
      if ta.ts_tid <> tb.ts_tid then fail point "thread ids differ";
      if List.length ta.ts_frames <> List.length tb.ts_frames then
        fail point "thread %d frame counts differ (%d vs %d)" ta.ts_tid
          (List.length ta.ts_frames) (List.length tb.ts_frames);
      List.iteri
        (fun depth ((fa : Unwind.frame), (fb : Unwind.frame)) ->
          let where = Printf.sprintf "thread %d frame %d" ta.ts_tid depth in
          if fa.fr_func.Stackmap.fm_name <> fb.fr_func.Stackmap.fm_name then
            fail point "%s: functions differ (%s vs %s)" where fa.fr_func.Stackmap.fm_name
              fb.fr_func.Stackmap.fm_name;
          if fa.fr_ep.Stackmap.ep_id <> fb.fr_ep.Stackmap.ep_id then
            fail point "%s (%s): eqpoint ids differ (%d vs %d)" where
              fa.fr_func.Stackmap.fm_name fa.fr_ep.Stackmap.ep_id fb.fr_ep.Stackmap.ep_id;
          if fa.fr_at_call <> fb.fr_at_call then
            fail point "%s (%s): at-call flags differ" where fa.fr_func.Stackmap.fm_name;
          let sort = List.sort (fun (k1, _) (k2, _) -> compare k1 k2) in
          let va = sort fa.fr_values and vb = sort fb.fr_values in
          if List.map fst va <> List.map fst vb then
            fail point "%s (%s ep%d): live keys differ" where fa.fr_func.Stackmap.fm_name
              fa.fr_ep.Stackmap.ep_id;
          let record_of key =
            List.find_opt
              (fun (lv : Stackmap.live_value) -> lv.lv_key = key)
              fa.fr_ep.Stackmap.ep_live
          in
          let comparable key =
            (* scalar integer/float temporaries only. Pointer values
               legally differ across ISAs (frame geometry), and named
               slots are recorded at every equivalence point whether or
               not they have been written yet, so a slot may hold stack
               residue — which is ISA-specific. Temporaries come from
               the liveness analysis and are always defined values. *)
            match (key, record_of key) with
            | ( Stackmap.Temp _,
                Some { Stackmap.lv_ty = Stackmap.Lv_i64 | Stackmap.Lv_f64; lv_size = 8; _ } )
              ->
              true
            | _ -> false
          in
          List.iter2
            (fun (key, bytes_a) (_, bytes_b) ->
              if comparable key then begin
                incr values;
                if not (String.equal bytes_a bytes_b) then
                  fail point "%s (%s ep%d): live value %s differs across ISAs" where
                    fa.fr_func.Stackmap.fm_name fa.fr_ep.Stackmap.ep_id
                    (match key with
                     | Stackmap.Slot s -> Printf.sprintf "slot %d" s
                     | Stackmap.Temp t -> Printf.sprintf "temp %d" t)
              end)
            va vb)
        (List.combine ta.ts_frames tb.ts_frames))
    sa sb

let unwound ~point (bin : Binary.t) p =
  match Dump.dump p with
  | Error e -> fail point "dump for deep compare failed: %s" (Derr.to_string e)
  | Ok image ->
    (match
       Unwind.unwind_all image bin.Binary.bin_stackmaps ~anchors:bin.Binary.bin_anchors
     with
     | Error e -> fail point "unwind for deep compare failed: %s" (Derr.to_string e)
     | Ok stacks -> stacks)

(* State equivalence between two paused twins (or a twin and a restored
   process): ISA-independent digests plus output-so-far. [prefix] is
   output the reference process printed before the other one started
   (migrated twins restart with an empty stdout buffer). *)
let compare_snapshots ~point ~snapshots ~what ?(prefix = "") sa sb =
  incr snapshots;
  if not (Process.state_equal sa sb) then
    fail point "%s: state snapshots differ (%s vs %s)" what
      (Process.snapshot_to_string sa) (Process.snapshot_to_string sb);
  if not (String.equal sa.Process.sn_stdout (prefix ^ sb.Process.sn_stdout)) then
    fail point "%s: stdout differs (%S vs %S)" what sa.Process.sn_stdout
      (prefix ^ sb.Process.sn_stdout)

(* ----- the oracle ----- *)

let run ?(fuel = 50_000_000) ?(budget = 50_000_000) ?(max_points = max_int) ~src ~dst
    (c : Link.compiled) =
  let src_bin = Link.binary_for c src and dst_bin = Link.binary_for c dst in
  let snapshots = ref 0 and values = ref 0 and migrations = ref 0 in
  let go () =
    (* phase 1: native differential *)
    let code_s, out_s = run_native ~fuel src c in
    let code_d, out_d = run_native ~fuel dst c in
    if not (Int64.equal code_s code_d) then
      fail (-1) "native exit codes differ (%Ld vs %Ld)" code_s code_d;
    if not (String.equal out_s out_d) then
      fail (-1) "native outputs differ (%S vs %S)" out_s out_d;
    (* phase 2: lockstep walk with pointwise deep comparison, recording
       the source twin's snapshot at every point for phase 3 *)
    let pa = Process.load src_bin and pb = Process.load dst_bin in
    let snaps = ref [] in
    let rec walk k =
      if k >= max_points then (k, false)
      else
        match (next_point ~point:k ~budget pa, next_point ~point:k ~budget pb) with
        | `Exited, `Exited -> (k, true)
        | `Point, `Exited -> fail k "twin divergence: %s exited early" (Arch.name dst)
        | `Exited, `Point -> fail k "twin divergence: %s exited early" (Arch.name src)
        | `Point, `Point ->
          let sa = Process.observe pa and sb = Process.observe pb in
          compare_snapshots ~point:k ~snapshots ~what:"lockstep twins" sa sb;
          compare_stacks ~point:k ~values (unwound ~point:k src_bin pa)
            (unwound ~point:k dst_bin pb);
          snaps := sa :: !snaps;
          Monitor.resume pa;
          Monitor.resume pb;
          walk (k + 1)
    in
    let points, complete = walk 0 in
    let snaps = Array.of_list (List.rev !snaps) in
    (* phase 3: force-migrate a fresh source twin at every point, then
       require pointwise equivalence at every later point and an
       end-of-execution result equal to the native run *)
    for k = 0 to points - 1 do
      let p = Process.load src_bin in
      if not (advance_to_point p ~budget k) then
        fail k "source exited before reaching point %d on replay" k;
      let cfg =
        { (Session.default_config ~src_bin ~dst_bin) with Session.cfg_pause_budget = budget }
      in
      let step what = function
        | Ok s -> s
        | Error e -> fail k "%s failed: %s" what (Derr.to_string e)
      in
      (* the source is already parked at point k, so the session's own
         pause finds every thread stopped there *)
      let s = Session.start cfg p in
      let s = step "pause" (Session.pause s) in
      let snap_src = Process.observe p in
      let s = step "dump" (Session.dump s) in
      let s = step "recode" (Session.recode s) in
      let s = step "transfer" (Session.transfer s) in
      let s = step "restore" (Session.restore s) in
      let s = step "commit" (Session.commit s) in
      let q = (Session.finish s).Session.r_process in
      incr migrations;
      let prefix = snap_src.Process.sn_stdout in
      compare_snapshots ~point:k ~snapshots ~what:"restored vs paused source" ~prefix
        snap_src (Process.observe q);
      (* walk the restored twin through the remaining recorded points *)
      let rec chase j =
        if j >= points then ()
        else
          match next_point ~point:j ~budget q with
          | `Exited -> fail j "restored twin exited before point %d" j
          | `Point ->
            compare_snapshots ~point:j ~snapshots
              ~what:(Printf.sprintf "restored twin (migrated at %d)" k)
              ~prefix snaps.(j) (Process.observe q);
            Monitor.resume q;
            chase (j + 1)
      in
      chase (k + 1);
      (match Process.run_to_completion q ~fuel with
       | Process.Exited_run code ->
         if not (Int64.equal code code_s) then
           fail k "restored twin exit code %Ld <> native %Ld" code code_s;
         let out = prefix ^ Process.stdout_contents q in
         if not (String.equal out out_s) then
           fail k "restored twin output %S <> native %S" out out_s
       | Process.Crashed cr ->
         fail k "restored twin crashed at 0x%Lx: %s" cr.cr_pc cr.cr_reason
       | Process.Idle -> fail k "restored twin deadlocked"
       | Process.Progress -> fail k "restored twin exceeded fuel")
    done;
    { rp_app = c.Link.cp_app;
      rp_src = src;
      rp_dst = dst;
      rp_points = points;
      rp_complete = complete;
      rp_migrations = !migrations;
      rp_snapshots = !snapshots;
      rp_values = !values }
  in
  match go () with
  | report -> Ok report
  | exception Fail (point, what) ->
    Error { fl_app = c.Link.cp_app; fl_src = src; fl_dst = dst; fl_point = point; fl_what = what }

(* ----- fast-path byte equivalence ----- *)

type fastpath_report = {
  fp_app : string;
  fp_points : int;
  fp_memo_thread_hits : int;
  fp_memo_page_hits : int;
  fp_saved_transfer_ms : float;
}

let fastpath_report_to_string r =
  Printf.sprintf
    "%s fastpaths: %d points, memo hits %d thread / %d page, transfer saved %.3f ms"
    r.fp_app r.fp_points r.fp_memo_thread_hits r.fp_memo_page_hits
    r.fp_saved_transfer_ms

(* Drive one full session, capturing the exact bytes that crossed the
   wire: the transferred image re-serialized to its named files. Every
   fast path must reproduce these bytes exactly. *)
let run_capturing ~point cfg p =
  let step what = function
    | Ok s -> s
    | Error e -> fail point "%s failed: %s" what (Derr.to_string e)
  in
  let s = Session.start cfg p in
  let s = step "pause" (Session.pause s) in
  let s = step "dump" (Session.dump s) in
  let s = step "recode" (Session.recode s) in
  let s = step "transfer" (Session.transfer s) in
  let files = List.sort compare (Images.to_files s.Session.s_state.Session.sx_image) in
  let s = step "restore" (Session.restore s) in
  let s = step "commit" (Session.commit s) in
  (files, Session.finish s)

let check_fastpaths ?(budget = 50_000_000) ?(points = 3) ~src ~dst
    (c : Link.compiled) =
  let src_bin = Link.binary_for c src and dst_bin = Link.binary_for c dst in
  let base_cfg =
    { (Session.default_config ~src_bin ~dst_bin) with Session.cfg_pause_budget = budget }
  in
  let memo = Plan_cache.create_memo () in
  let checked = ref 0 and thr_hits = ref 0 and page_hits = ref 0 in
  let saved = ref 0.0 in
  let go () =
    let k = ref 0 in
    let continue_ = ref true in
    while !continue_ && !checked < points do
      let parked () =
        let p = Process.load src_bin in
        if advance_to_point p ~budget !k then Some p else None
      in
      (match parked () with
       | None -> continue_ := false
       | Some p ->
         let base_files, base = run_capturing ~point:!k base_cfg p in
         let variant name cfg =
           match parked () with
           | None -> fail !k "source no longer reaches point %d" !k
           | Some p ->
             let files, r = run_capturing ~point:!k cfg p in
             if files <> base_files then
               fail !k "%s image differs from the sequential pipeline" name;
             r
         in
         (* overlap: pipelined transfer may only shave the transfer cost *)
         let pipe =
           variant "pipelined"
             { base_cfg with Session.cfg_pipeline = true; cfg_chunk_bytes = 4096 }
         in
         let base_scp = base.Session.r_times.Session.t_scp_ms in
         let pipe_scp = pipe.Session.r_times.Session.t_scp_ms in
         if pipe_scp > base_scp +. 1e-9 then
           fail !k "pipelined transfer (%.6f ms) costs more than sequential (%.6f ms)"
             pipe_scp base_scp;
         saved := !saved +. (base_scp -. pipe_scp);
         (* parallelism: the multi-worker cost model must not change bytes *)
         let _workers =
           variant "multi-worker" { base_cfg with Session.cfg_recode_workers = 4 }
         in
         (* incrementality: cold fill then warm replay over the same point *)
         let cold =
           variant "memo-cold" { base_cfg with Session.cfg_recode_memo = Some memo }
         in
         let warm =
           variant "memo-warm" { base_cfg with Session.cfg_recode_memo = Some memo }
         in
         let wrw = warm.Session.r_rewrite in
         if wrw.Rewrite.st_memo_thread_hits = 0 && wrw.Rewrite.st_memo_page_hits = 0 then
           fail !k "warm memo run hit nothing";
         if
           warm.Session.r_times.Session.t_recode_ms
           > cold.Session.r_times.Session.t_recode_ms +. 1e-9
         then fail !k "warm memo recode costs more than cold";
         thr_hits := !thr_hits + wrw.Rewrite.st_memo_thread_hits;
         page_hits := !page_hits + wrw.Rewrite.st_memo_page_hits;
         (* all three fast paths composed *)
         let _all =
           variant "combined"
             { base_cfg with Session.cfg_pipeline = true; cfg_chunk_bytes = 4096;
               cfg_recode_workers = 4; cfg_recode_memo = Some memo }
         in
         incr checked;
         k := !k + 2)
    done;
    { fp_app = c.Link.cp_app;
      fp_points = !checked;
      fp_memo_thread_hits = !thr_hits;
      fp_memo_page_hits = !page_hits;
      fp_saved_transfer_ms = !saved }
  in
  match go () with
  | r -> Ok r
  | exception Fail (point, what) ->
    Error { fl_app = c.Link.cp_app; fl_src = src; fl_dst = dst; fl_point = point; fl_what = what }

(* ----- shadow replay: divergence-localizing verification ----- *)

module Replayer = Dapper_replay.Replayer
module Shadow = Dapper_replay.Shadow
module Rlog = Dapper_replay.Log
module Restore = Dapper_criu.Restore
module Layout = Dapper_binary.Layout

type shadow_report = {
  sr_app : string;
  sr_src : Arch.t;
  sr_dst : Arch.t;
  sr_points : int;
  sr_clean : int;
  sr_corrupted : int;
  sr_divergences : string list;
}

let shadow_report_to_string r =
  Printf.sprintf
    "%s %s->%s shadows: %d migration points, %d clean matches, %d corruptions \
     localized"
    r.sr_app (Arch.name r.sr_src) (Arch.name r.sr_dst) r.sr_points r.sr_clean
    r.sr_corrupted

(* Pick an in-dump data/heap/tls page of [image] to corrupt, steering
   clear of the page holding the transformation flag (its word is masked
   out of observation, so a flip there could legally go unseen). *)
let corruption_target (image : Images.image_set) (dst_bin : Binary.t) =
  let flag_page =
    Layout.page_of_addr dst_bin.Binary.bin_anchors.Binary.a_flag
  in
  let kind_of pn =
    List.find_map
      (fun (v : Images.vma) ->
        let s = Layout.page_of_addr v.Images.v_start in
        if pn >= s && pn < s + v.Images.v_npages then Some v.Images.v_kind
        else None)
      image.Images.is_mm.Images.mm_vmas
  in
  let dumped =
    List.concat_map
      (fun (pm : Images.pagemap_entry) ->
        if not pm.Images.pm_in_dump then []
        else
          List.init pm.Images.pm_npages (fun i ->
              Layout.page_of_addr pm.Images.pm_vaddr + i))
      image.Images.is_pagemap
  in
  let observable pn =
    pn <> flag_page
    &&
    match kind_of pn with
    | Some (Images.Vk_data | Images.Vk_heap | Images.Vk_tls) -> true
    | _ -> false
  in
  List.find_opt observable dumped

let check_shadow ?(budget = 50_000_000) ?(max_points = 3) ?(corrupt = true) ~src
    ~dst (c : Link.compiled) =
  let src_bin = Link.binary_for c src and dst_bin = Link.binary_for c dst in
  let go () =
    (* the reference recording: one complete source-ISA run *)
    let log =
      match Replayer.record ~budget src_bin with
      | Ok log -> log
      | Error e -> fail (-1) "recording failed: %s" e
    in
    if Rlog.points log = 0 then fail (-1) "program reaches no equivalence point";
    let points = min max_points (Rlog.points log) in
    let clean = ref 0 and corrupted = ref 0 and reports = ref [] in
    let parked k =
      let p = Process.load src_bin in
      if not (advance_to_point p ~budget k) then
        fail k "source exited before reaching point %d on replay" k;
      p
    in
    let step k what = function
      | Ok s -> s
      | Error e -> fail k "%s failed: %s" what (Derr.to_string e)
    in
    for k = 0 to points - 1 do
      (* a clean migration's destination must shadow-replay to MATCH *)
      let p = parked k in
      let cfg =
        { (Session.default_config ~src_bin ~dst_bin) with
          Session.cfg_pause_budget = budget }
      in
      let s = Session.start cfg p in
      let s = step k "pause" (Session.pause s) in
      let s = step k "dump" (Session.dump s) in
      let s = step k "recode" (Session.recode s) in
      let s = step k "transfer" (Session.transfer s) in
      let s = step k "restore" (Session.restore s) in
      let s = step k "commit" (Session.commit s) in
      let q = (Session.finish s).Session.r_process in
      (match (Shadow.check ~budget ~log ~from_point:k q).Shadow.sh_verdict with
      | Shadow.Match -> incr clean
      | Shadow.Diverged d ->
        fail k "clean migration's shadow diverged: %s"
          (Replayer.divergence_to_string d));
      if corrupt then begin
        (* corrupt one observable page of the rewritten image, restore it
           outside the session (whose commit check would refuse it), and
           require the shadow to localize the damage to this anchor and
           page *)
        let p = parked k in
        let image = step k "dump" (Dump.dump p) in
        let rewritten, _ =
          step k "rewrite" (Rewrite.rewrite image ~src:src_bin ~dst:dst_bin)
        in
        let pn =
          match corruption_target rewritten dst_bin with
          | Some pn -> pn
          | None -> fail k "rewritten image has no observable page to corrupt"
        in
        let contents =
          match Images.read_page rewritten pn with
          | Some s -> Bytes.of_string s
          | None -> fail k "page 0x%x vanished from the rewritten image" pn
        in
        let off = 64 in
        Bytes.set contents off
          (Char.chr (Char.code (Bytes.get contents off) lxor 0x5a));
        let evil = Images.write_page rewritten pn (Bytes.to_string contents) in
        let q = step k "restore" (Restore.restore evil dst_bin) in
        (match (Shadow.check ~budget ~log ~from_point:k q) with
        | { Shadow.sh_verdict = Shadow.Match; _ } ->
          fail k "corrupted restore went undetected by the shadow"
        | { Shadow.sh_verdict = Shadow.Diverged d; _ } as rep ->
          if d.Replayer.dv_point <> k then
            fail k "corruption injected at point %d but localized at %d" k
              d.Replayer.dv_point;
          if not (List.exists (fun (_, p') -> p' = pn) d.Replayer.dv_pages) then
            fail k "divergence report does not name the corrupted page 0x%x" pn;
          incr corrupted;
          reports := Shadow.report_to_string rep :: !reports)
      end
    done;
    { sr_app = c.Link.cp_app;
      sr_src = src;
      sr_dst = dst;
      sr_points = points;
      sr_clean = !clean;
      sr_corrupted = !corrupted;
      sr_divergences = List.rev !reports }
  in
  match go () with
  | r -> Ok r
  | exception Fail (point, what) ->
    Error
      { fl_app = c.Link.cp_app; fl_src = src; fl_dst = dst; fl_point = point;
        fl_what = what }
