open Dapper_clite
open Cl
module Link = Dapper_codegen.Link

(* examples/quickstart.ml in miniature: a square-and-accumulate loop
   calling a helper, one equivalence point per iteration. *)
let quickstart () =
  let m = create "mini-quickstart" in
  Cstd.add m;
  func m "step" [ ("n", Dapper_ir.Ir.I64) ] (fun b ->
      ret b (add (mul (v "n") (v "n")) (i 1)));
  func m "main" [] (fun b ->
      decl b "acc" (i 0);
      for_ b "k" (i 0) (i 40) (fun b ->
          set b "acc" (add (v "acc") (call "step" [ v "k" ])));
      Cstd.print b m "acc=";
      do_ b (call "print_int" [ v "acc" ]);
      do_ b (call "print_nl" []);
      ret b (i 0));
  finish m

(* examples/source_program.ml in miniature: the same Monte-Carlo pi
   estimator through the textual frontend, with fewer trials. *)
let pi_source = {|
  // monte-carlo estimate of pi, checkpointable at every function call
  global inside;

  fn trial() {
    var f x = frand() * 2.0 - 1.0;
    var f y = frand() * 2.0 - 1.0;
    if (x * x + y * y <= 1.0) { return 1; }
    return 0;
  }

  fn main() {
    rand_seed(31415);
    var n = 25;
    var k = 0;
    for (k = 0; k < n; k = k + 1) {
      inside = inside + trial();
    }
    print("pi ~ ");
    print_flt(4.0 * i2f(inside) / i2f(n));
    print_nl();
    return 0;
  }
|}

let pi () = Parse.compile ~name:"mini-pi" pi_source

(* Deep recursion: every migration point carries a tower of live frames
   (naive Fibonacci, the worst case for the frame rewriter). *)
let fib () =
  let m = create "mini-fib" in
  Cstd.add m;
  func m "fib" [ ("n", Dapper_ir.Ir.I64) ] (fun b ->
      if_else b
        (lt (v "n") (i 2))
        (fun b -> ret b (v "n"))
        (fun b ->
          ret b (add (call "fib" [ sub (v "n") (i 1) ]) (call "fib" [ sub (v "n") (i 2) ]))));
  func m "main" [] (fun b ->
      decl b "r" (call "fib" [ i 9 ]);
      do_ b (call "print_int" [ v "r" ]);
      do_ b (call "print_nl" []);
      ret b (band (v "r") (i 127)));
  finish m

(* Arrays and pointers: a sieve over a global buffer plus a local
   scratch array addressed through pointer locals — heap-free but heavy
   on the pointer-translation path. *)
let sieve () =
  let n = 48 in
  let m = create "mini-sieve" in
  Cstd.add m;
  global m "flags" (8 * n);
  func m "mark" [ ("p", Dapper_ir.Ir.Ptr); ("step", Dapper_ir.Ir.I64); ("n", Dapper_ir.Ir.I64) ]
    (fun b ->
      decl b "j" (mul (v "step") (i 2));
      while_ b
        (lt (v "j") (v "n"))
        (fun b ->
          store_idx b (v "p") (v "j") (i 1);
          set b "j" (add (v "j") (v "step"))));
  func m "main" [] (fun b ->
      declp b "p" (addr "flags");
      do_ b (call "memset8" [ v "p"; i 0; i (8 * n) ]);
      decl_arr b "hits" 8;
      do_ b (call "memset8" [ addr "hits"; i 0; i 64 ]);
      declp b "hp" (addr "hits");
      decl b "count" (i 0);
      for_ b "k" (i 2) (i n) (fun b ->
          if_ b
            (eq (idx (v "p") (v "k")) (i 0))
            (fun b ->
              set b "count" (add (v "count") (i 1));
              store_idx b (v "hp") (band (v "count") (i 7)) (v "k");
              do_ b (call "mark" [ v "p"; v "k"; i n ])));
      do_ b (call "print_int" [ v "count" ]);
      Cstd.print b m " primes; last=";
      do_ b (call "print_int" [ idx (v "hp") (band (v "count") (i 7)) ]);
      do_ b (call "print_nl" []);
      ret b (v "count"));
  finish m

let specs =
  [ ("mini-quickstart", quickstart);
    ("mini-pi", pi);
    ("mini-fib", fib);
    ("mini-sieve", sieve) ]

let cache : (string, Link.compiled) Hashtbl.t = Hashtbl.create 8

let compile (name, build) =
  match Hashtbl.find_opt cache name with
  | Some c -> c
  | None ->
    let c = Link.compile ~app:name (build ()) in
    Hashtbl.replace cache name c;
    c

let all () = List.map (fun spec -> (fst spec, compile spec)) specs

let find name =
  List.find_opt (fun (n, _) -> n = name) specs |> Option.map compile
