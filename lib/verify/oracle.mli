(** The differential migration oracle.

    Runs one compiled program as two execution twins, one per ISA, and
    checks Dapper's central claim — that a process migrated at {e any}
    equivalence point is observably identical afterwards — in three
    phases:

    + {b native differential}: both twins run to completion and must
      produce the same exit code and stdout;
    + {b lockstep walk}: both twins are repeatedly paused; at every
      dynamic equivalence point their read-only
      {!Dapper_machine.Process.observe} snapshots must be state-equal
      with identical output so far, and their dumped images must unwind
      to pointwise-equal stacks (same functions, equivalence points and
      live-value bytes per cross-ISA key; pointer-typed values are
      exempt from the byte comparison because frame geometry legally
      differs across ISAs until the rewriter translates them);
    + {b migration sweep}: for every dynamic point [k], a fresh source
      process is advanced to point [k] and force-migrated through the
      full {!Dapper.Session} pipeline. The restored twin's snapshot
      must be state-equal to the paused source, every later equivalence
      point it passes must be state-equal to the source twin's recorded
      snapshot at that point, and its final exit code and combined
      stdout must equal the native run's.

    Programs under the oracle must be deterministic and single-threaded,
    must not read the instruction-count clock (a pause perturbs it) and
    must not store stack addresses into globals or the heap (frame
    geometry differs across ISAs before translation). The generated
    ({!Gen}) and example ({!Corpus}) corpora respect this by
    construction.

    The sweep replays from a fresh load for each point, so its cost is
    quadratic in the number of dynamic points; [max_points] caps the
    walked prefix for large corpora (the qcheck properties use a small
    cap, the example sweep runs uncapped). *)

open Dapper_isa
module Link = Dapper_codegen.Link

type report = {
  rp_app : string;
  rp_src : Arch.t;
  rp_dst : Arch.t;
  rp_points : int;       (** dynamic equivalence points walked *)
  rp_complete : bool;    (** false when [max_points] capped the walk *)
  rp_migrations : int;   (** forced migrations performed (one per point) *)
  rp_snapshots : int;    (** pointwise snapshot equivalence checks *)
  rp_values : int;       (** live-value byte comparisons across ISAs *)
}

type failure = {
  fl_app : string;
  fl_src : Arch.t;
  fl_dst : Arch.t;
  fl_point : int;  (** dynamic point index; -1 for native-run failures *)
  fl_what : string;
}

val report_to_string : report -> string
val failure_to_string : failure -> string

(** [run ~src ~dst c] drives all three phases, migrating [src]→[dst].
    Defaults: [fuel] 50M instructions, [budget] 50M drain instructions,
    [max_points] unlimited. *)
val run :
  ?fuel:int ->
  ?budget:int ->
  ?max_points:int ->
  src:Arch.t ->
  dst:Arch.t ->
  Link.compiled ->
  (report, failure) result

(** [advance_to_point p ~budget k] drives a freshly loaded process to
    its [k]-th dynamic equivalence point (0-based) and leaves it paused
    there; [false] if the process exits first. Exposed for tests that
    drive the pipeline by hand at a chosen point. *)
val advance_to_point : Dapper_machine.Process.t -> budget:int -> int -> bool

(** {1 Fast-path byte equivalence}

    The recode fast paths — pipelined transfer, output-level
    memoization (cold fill and warm replay), the multi-worker cost
    model, and all three combined — must produce byte-identical wire
    images and equivalent restored processes. [check_fastpaths] parks a
    fresh source at up to [points] equivalence points and, at each,
    runs the sequential pipeline followed by every fast-path variant,
    comparing the transferred image files byte-for-byte and requiring
    the pipelined transfer cost never to exceed the sequential one, a
    warm memo run to actually hit and not to cost more recode time
    than its cold fill. *)

type fastpath_report = {
  fp_app : string;
  fp_points : int;            (** equivalence points exercised *)
  fp_memo_thread_hits : int;  (** warm-replay thread hits observed *)
  fp_memo_page_hits : int;    (** warm-replay pass-through page hits *)
  fp_saved_transfer_ms : float; (** sequential minus pipelined transfer *)
}

val fastpath_report_to_string : fastpath_report -> string

val check_fastpaths :
  ?budget:int ->
  ?points:int ->
  src:Arch.t ->
  dst:Arch.t ->
  Link.compiled ->
  (fastpath_report, failure) result

(** {1 Shadow replay}

    Divergence-localizing verification built on the record/replay plane
    ({!Dapper_replay}): record one complete source-ISA run, then at each
    of the first [max_points] equivalence points run a clean migration
    and require the committed destination to {e shadow-replay} the
    recording to a match ({!Dapper_replay.Shadow.check}). With [corrupt]
    (the default), each point additionally gets a deliberately damaged
    migration — one observable page of the rewritten image is flipped
    before an out-of-session restore — and the shadow must report its
    first divergence at exactly that anchor, naming the corrupted page,
    rather than a terminal pass/fail. *)

type shadow_report = {
  sr_app : string;
  sr_src : Arch.t;
  sr_dst : Arch.t;
  sr_points : int;     (** migration points exercised *)
  sr_clean : int;      (** clean migrations whose shadow matched *)
  sr_corrupted : int;  (** corrupted restores localized correctly *)
  sr_divergences : string list;
      (** one {!Dapper_replay.Shadow.report_to_string} per corrupted run *)
}

val shadow_report_to_string : shadow_report -> string

val check_shadow :
  ?budget:int ->
  ?max_points:int ->
  ?corrupt:bool ->
  src:Arch.t ->
  dst:Arch.t ->
  Link.compiled ->
  (shadow_report, failure) result
