(** Deterministic seeded clite program generator.

    Every program is fully determined by its integer seed (an explicit
    {!Dapper_util.Rng} splitmix64 stream — no ambient randomness), so a
    failing seed reproduces forever and the qcheck corpus is stable
    across runs and machines. Generated programs exercise the features
    migration must preserve: recursion, bounded loops, mixed
    int/float/pointer locals, memset-initialized local arrays indexed
    through pointer locals, globals and a TLS counter, and calls through
    both calling conventions (direct, indirect via a function pointer,
    and float-returning). Division, shifts and array indices are masked
    so every program terminates with defined behaviour; the [Clock]
    syscall is never emitted because its result depends on retired
    instructions, which a pause perturbs. *)

val name : int -> string

(** [program seed] builds the IR module [gen<seed>]. *)
val program : int -> Dapper_ir.Ir.modul

(** [compile seed] compiles (and memoizes) the seed's program for both
    ISAs. *)
val compile : int -> Dapper_codegen.Link.compiled
