open Dapper_isa
open Dapper_machine
module Trace = Dapper_obs.Trace
module Metrics = Dapper_obs.Metrics
module Derr = Dapper_util.Dapper_error
open Replayer.Internal

type verdict = Match | Diverged of Replayer.divergence

type report = {
  sh_app : string;
  sh_arch : Arch.t;
  sh_from_point : int;
  sh_points : int;
  sh_syscalls : int;
  sh_substituted : int;
  sh_verdict : verdict;
}

let m_shadows = Metrics.counter "replay.shadows"

(* Position the cursor just past anchor [from_point]: everything before
   it belongs to the recorded prefix the migrated process inherited as
   restored state. *)
let seek_past c from_point =
  let rec drop = function
    | Log.Eqpoint eq :: rest when eq.Log.eq_index = from_point -> rest
    | _ :: rest -> drop rest
    | [] ->
      diverge ~point:from_point ~kind:"log"
        "log has no equivalence point %d to shadow from" from_point
  in
  c.cur <- drop c.cur;
  c.next_point <- from_point + 1

let check ?(budget = default_budget) ~(log : Log.t) ~from_point (q : Process.t) =
  let strict = q.Process.arch = log.Log.lg_arch in
  Trace.with_span ~cat:"replay" "shadow"
    ~args:
      [ ("app", log.Log.lg_app); ("arch", Arch.name q.Process.arch);
        ("from", string_of_int from_point);
        ("mode", if strict then "same-isa" else "cross-isa") ]
    (fun cl ->
      Metrics.inc m_shadows;
      let c = make_cursor ~strict log in
      let compared = ref 0 in
      let run () =
        let eq0 =
          try Log.point log from_point
          with Log.Log_error e -> diverge ~point:from_point ~kind:"log" "%s" e
        in
        let prefix_len = eq0.Log.eq_stdout_len in
        seek_past c from_point;
        (* anchor 0: the restored state itself must be the recorded one *)
        compare_point ~log ~prefix_len eq0 q;
        incr compared;
        q.Process.nondet <- Some (hooks_of_cursor c);
        let fin =
          Fun.protect
            ~finally:(fun () -> q.Process.nondet <- None)
            (fun () ->
              walk ~budget q ~on_point:(fun i ->
                  let j = from_point + 1 + i in
                  let eq = cursor_eqpoint c j in
                  compare_point ~log ~prefix_len eq q;
                  incr compared))
        in
        (match fin with
        | Error e ->
          diverge ~point:c.next_point ~kind:"pause"
            ~frames:(frames_at log c.next_point) "shadow walk failed: %s"
            (Derr.to_string e)
        | Ok _ -> ());
        crash_check ~point:c.next_point q;
        (match cursor_at_end c with
        | Some e ->
          diverge ~point:c.next_point ~kind:"log"
            ~frames:(frames_at log c.next_point)
            "shadow exited with unconsumed log entries, next: %s"
            (Log.entry_to_string e)
        | None -> ());
        let exit =
          match q.Process.exit_code with
          | Some e -> e
          | None ->
            diverge ~point:c.next_point ~kind:"exit"
              "shadow finished without an exit code"
        in
        if not (Int64.equal exit log.Log.lg_exit) then
          diverge ~point:c.next_point ~kind:"exit"
            "exit code %Ld, log recorded %Ld" exit log.Log.lg_exit;
        compare_point ~log ~prefix_len log.Log.lg_final q
      in
      let verdict =
        match run () with
        | () -> Match
        | exception Diverge d ->
          Trace.add_arg cl "divergence" d.Replayer.dv_what;
          Diverged d
      in
      Trace.add_arg cl "points" (string_of_int !compared);
      { sh_app = log.Log.lg_app;
        sh_arch = q.Process.arch;
        sh_from_point = from_point;
        sh_points = !compared;
        sh_syscalls = c.validated;
        sh_substituted = c.substituted;
        sh_verdict = verdict })

let verdict_to_string = function
  | Match -> "MATCH"
  | Diverged d -> "DIVERGED: " ^ Replayer.divergence_to_string d

let report_to_string r =
  let head =
    Printf.sprintf
      "shadow replay of %s from eqpoint %d on %s: %s\n  %d anchors compared, \
       %d syscalls validated, %d clock results substituted"
      r.sh_app r.sh_from_point (Arch.name r.sh_arch)
      (match r.sh_verdict with Match -> "MATCH" | Diverged _ -> "DIVERGED")
      r.sh_points r.sh_syscalls r.sh_substituted
  in
  match r.sh_verdict with
  | Match -> head
  | Diverged d -> head ^ "\n" ^ Replayer.divergence_report d
