open Dapper_isa
open Dapper_proto
module Bytebuf = Dapper_util.Bytebuf

type frame_info = { fi_func : string; fi_ep : int; fi_depth : int }
type thread_frames = { tf_tid : int; tf_frames : frame_info list }
type page_digest = { pd_kind : string; pd_page : int; pd_digest : int64 }

type eqpoint = {
  eq_index : int;
  eq_data : int64;
  eq_heap : int64;
  eq_tls : int64;
  eq_brk : int64;
  eq_threads : int;
  eq_stdout_len : int;
  eq_stdout_fnv : int64;
  eq_stacks : thread_frames list;
  eq_pages : page_digest list;
}

type entry =
  | Syscall of { sc_tid : int; sc_sys : string; sc_ret : int64 }
  | Sched of { sd_tid : int; sd_steps : int }
  | Arrival of { ar_ms : float }
  | Eqpoint of eqpoint

type t = {
  lg_version : int;
  lg_app : string;
  lg_arch : Arch.t;
  lg_entries : entry list;
  lg_exit : int64;
  lg_stdout : string;
  lg_final : eqpoint;
}

exception Log_error of string

let log_error fmt = Printf.ksprintf (fun s -> raise (Log_error s)) fmt

let version = 1
let file_name = "replay.img"

let points t =
  List.fold_left
    (fun n e -> match e with Eqpoint _ -> n + 1 | _ -> n)
    0 t.lg_entries

let point t k =
  let rec go = function
    | [] -> log_error "log has no equivalence point %d" k
    | Eqpoint eq :: _ when eq.eq_index = k -> eq
    | _ :: rest -> go rest
  in
  if k < 0 then log_error "negative equivalence point %d" k;
  go t.lg_entries

(* ----- protobuf codecs -----

   Outer message:
     1 varint  version
     2 delim   app
     3 varint  arch (0 = x86_64, 1 = aarch64)
     4 varint  entry count
     5 fixed64 FNV-1a checksum of the serialized entry stream (field 6)
     6 delim   entry stream (a field list of its own)
     7 delim   final eqpoint message
     8 fixed64 exit code
     9 delim   full stdout

   Entry stream fields, one per entry in program order:
     1 msg syscall { 1 tid, 2 sys, 3 ret (fixed64) }
     2 msg sched   { 1 tid, 2 steps }
     3 msg arrival { 1 ms bits (fixed64) }
     4 msg eqpoint { 1 index, 2..5 data/heap/tls/brk (fixed64),
                     6 threads, 7 stdout_len, 8 stdout_fnv (fixed64),
                     9 rep. thread { 1 tid, 2 rep. frame
                       { 1 func, 2 ep, 3 depth } },
                     10 rep. page { 1 kind, 2 page, 3 digest (fixed64) } } *)

let arch_code = function Arch.X86_64 -> 0L | Arch.Aarch64 -> 1L

let arch_of_code = function
  | 0L -> Arch.X86_64
  | 1L -> Arch.Aarch64
  | n -> log_error "unknown arch code %Ld" n

let encode_frame f =
  [ Proto.v_str 1 f.fi_func; Proto.v_int 2 (Int64.of_int f.fi_ep);
    Proto.v_int 3 (Int64.of_int f.fi_depth) ]

let decode_frame fs =
  { fi_func = Proto.get_str fs 1;
    fi_ep = Int64.to_int (Proto.get_int fs 2);
    fi_depth = Int64.to_int (Proto.get_int fs 3) }

let encode_eqpoint eq =
  [ Proto.v_int 1 (Int64.of_int eq.eq_index);
    Proto.v_fix 2 eq.eq_data;
    Proto.v_fix 3 eq.eq_heap;
    Proto.v_fix 4 eq.eq_tls;
    Proto.v_fix 5 eq.eq_brk;
    Proto.v_int 6 (Int64.of_int eq.eq_threads);
    Proto.v_int 7 (Int64.of_int eq.eq_stdout_len);
    Proto.v_fix 8 eq.eq_stdout_fnv ]
  @ List.map
      (fun tf ->
        Proto.v_msg 9
          (Proto.v_int 1 (Int64.of_int tf.tf_tid)
           :: List.map (fun f -> Proto.v_msg 2 (encode_frame f)) tf.tf_frames))
      eq.eq_stacks
  @ List.map
      (fun pd ->
        Proto.v_msg 10
          [ Proto.v_str 1 pd.pd_kind; Proto.v_int 2 (Int64.of_int pd.pd_page);
            Proto.v_fix 3 pd.pd_digest ])
      eq.eq_pages

let decode_eqpoint fs =
  { eq_index = Int64.to_int (Proto.get_int fs 1);
    eq_data = Proto.get_fix fs 2;
    eq_heap = Proto.get_fix fs 3;
    eq_tls = Proto.get_fix fs 4;
    eq_brk = Proto.get_fix fs 5;
    eq_threads = Int64.to_int (Proto.get_int fs 6);
    eq_stdout_len = Int64.to_int (Proto.get_int fs 7);
    eq_stdout_fnv = Proto.get_fix fs 8;
    eq_stacks =
      List.map
        (fun tfs ->
          { tf_tid = Int64.to_int (Proto.get_int tfs 1);
            tf_frames = List.map decode_frame (Proto.get_all_msgs tfs 2) })
        (Proto.get_all_msgs fs 9);
    eq_pages =
      List.map
        (fun ps ->
          { pd_kind = Proto.get_str ps 1;
            pd_page = Int64.to_int (Proto.get_int ps 2);
            pd_digest = Proto.get_fix ps 3 })
        (Proto.get_all_msgs fs 10) }

let encode_entry = function
  | Syscall { sc_tid; sc_sys; sc_ret } ->
    Proto.v_msg 1
      [ Proto.v_int 1 (Int64.of_int sc_tid); Proto.v_str 2 sc_sys;
        Proto.v_fix 3 sc_ret ]
  | Sched { sd_tid; sd_steps } ->
    Proto.v_msg 2
      [ Proto.v_int 1 (Int64.of_int sd_tid);
        Proto.v_int 2 (Int64.of_int sd_steps) ]
  | Arrival { ar_ms } -> Proto.v_msg 3 [ Proto.v_fix 1 (Int64.bits_of_float ar_ms) ]
  | Eqpoint eq -> Proto.v_msg 4 (encode_eqpoint eq)

let decode_entry { Proto.tag; payload } =
  let msg () =
    match payload with
    | Proto.Delim s -> Proto.decode s
    | _ -> log_error "entry %d is not a message" tag
  in
  match tag with
  | 1 ->
    let fs = msg () in
    Syscall
      { sc_tid = Int64.to_int (Proto.get_int fs 1);
        sc_sys = Proto.get_str fs 2;
        sc_ret = Proto.get_fix fs 3 }
  | 2 ->
    let fs = msg () in
    Sched
      { sd_tid = Int64.to_int (Proto.get_int fs 1);
        sd_steps = Int64.to_int (Proto.get_int fs 2) }
  | 3 -> Arrival { ar_ms = Int64.float_of_bits (Proto.get_fix (msg ()) 1) }
  | 4 -> Eqpoint (decode_eqpoint (msg ()))
  | n -> log_error "unknown entry kind %d" n

let encode t =
  let body = Proto.encode (List.map encode_entry t.lg_entries) in
  Proto.encode
    [ Proto.v_int 1 (Int64.of_int t.lg_version);
      Proto.v_str 2 t.lg_app;
      Proto.v_int 3 (arch_code t.lg_arch);
      Proto.v_int 4 (Int64.of_int (List.length t.lg_entries));
      Proto.v_fix 5 (Bytebuf.fnv64 body);
      Proto.v_str 6 body;
      Proto.v_msg 7 (encode_eqpoint t.lg_final);
      Proto.v_fix 8 t.lg_exit;
      Proto.v_str 9 t.lg_stdout ]

let decode s =
  let fs = try Proto.decode s with Proto.Decode_error e -> log_error "%s" e in
  try
    let v = Int64.to_int (Proto.get_int fs 1) in
    if v <> version then log_error "unsupported log version %d (want %d)" v version;
    let body = Proto.get_str fs 6 in
    let want = Proto.get_fix fs 5 in
    let got = Bytebuf.fnv64 body in
    if not (Int64.equal want got) then
      log_error "entry-stream checksum mismatch (%016Lx recorded, %016Lx computed)"
        want got;
    let entries = List.map decode_entry (Proto.decode body) in
    let count = Int64.to_int (Proto.get_int fs 4) in
    if List.length entries <> count then
      log_error "entry count mismatch (%d recorded, %d decoded)" count
        (List.length entries);
    { lg_version = v;
      lg_app = Proto.get_str fs 2;
      lg_arch = arch_of_code (Proto.get_int fs 3);
      lg_entries = entries;
      lg_exit = Proto.get_fix fs 8;
      lg_stdout = Proto.get_str fs 9;
      lg_final = decode_eqpoint (Proto.get_msg fs 7) }
  with Proto.Decode_error e -> log_error "%s" e

let fingerprint t = Bytebuf.fnv64 (encode t)

let entry_to_string = function
  | Syscall { sc_tid; sc_sys; sc_ret } ->
    Printf.sprintf "syscall tid=%d %s -> %Ld" sc_tid sc_sys sc_ret
  | Sched { sd_tid; sd_steps } ->
    Printf.sprintf "sched tid=%d steps=%d" sd_tid sd_steps
  | Arrival { ar_ms } -> Printf.sprintf "arrival %.6f ms" ar_ms
  | Eqpoint eq ->
    Printf.sprintf "eqpoint %d data=%016Lx heap=%016Lx tls=%016Lx brk=0x%Lx \
                    threads=%d stdout=%dB"
      eq.eq_index eq.eq_data eq.eq_heap eq.eq_tls eq.eq_brk eq.eq_threads
      eq.eq_stdout_len

let summary t =
  let sys, sched, arr = (ref 0, ref 0, ref 0) in
  List.iter
    (fun e ->
      match e with
      | Syscall _ -> incr sys
      | Sched _ -> incr sched
      | Arrival _ -> incr arr
      | Eqpoint _ -> ())
    t.lg_entries;
  Printf.sprintf
    "%s on %s: %d entries (%d syscalls, %d sched, %d arrivals, %d eqpoints), \
     exit %Ld, %dB stdout, fingerprint %016Lx"
    t.lg_app (Arch.name t.lg_arch)
    (List.length t.lg_entries)
    !sys !sched !arr (points t) t.lg_exit
    (String.length t.lg_stdout) (fingerprint t)
