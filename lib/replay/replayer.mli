(** Record a process execution's nondeterministic inputs; re-execute a
    recording on either ISA.

    {b Recording} runs a process from [load] to exit with the
    {!Dapper_machine.Process.nondet} tap installed, walking every
    dynamic equivalence point with the monitor (exactly the oracle's
    walk) so [Eqpoint] snapshot anchors interleave with the syscall and
    scheduler entries in program order.

    {b Replay} re-executes the same walk with a cursor over the log:
    every completed syscall is validated against the recorded result
    (the clock result is {e substituted} — it is the one input that
    legally differs), every equivalence point's snapshot is compared
    against the recorded anchor, and — same-ISA only — every scheduler
    slice is checked. The first mismatch aborts the replay with a
    {!divergence} naming the equivalence point, thread and frame/page
    delta rather than a terminal pass/fail.

    Because the simulator is deterministic, a mismatch is never noise:
    it means the replayed binary (or a rewritten image restored into
    it) computes a different state function than the recorded run —
    which is exactly what {!Shadow} exploits to localize rewriter bugs.

    Cross-ISA replay relies on the oracle's program contract
    (deterministic, single-threaded, no stored stack addresses): for
    such programs the completed-syscall sequence is a function of the
    program, so the log transfers across ISAs; scheduler slices are
    ISA-specific and are skipped. *)

open Dapper_isa
open Dapper_binary
open Dapper_machine

(** The first point where a replayed execution stopped matching its
    recording. *)
type divergence = {
  dv_point : int;   (** equivalence-point index: for snapshot/stdout
                        kinds, the diverging anchor; for syscall/sched
                        kinds, the next anchor the run was heading to *)
  dv_tid : int option;      (** diverging thread, when attributable *)
  dv_kind : string;  (** "syscall" | "sched" | "snapshot" | "stdout" |
                         "exit" | "crash" | "pause" | "log" *)
  dv_what : string;         (** human description of the mismatch *)
  dv_frames : string list;  (** recorded frames at the anchor *)
  dv_pages : (string * int) list;
      (** diverging pages at a snapshot mismatch: (kind, page number) *)
}

val divergence_to_string : divergence -> string

(** Multi-line report (the artifact chaos failures and the CLI emit). *)
val divergence_report : divergence -> string

(** [record bin] records one complete execution of [bin]. [budget] is
    the monitor drain budget per equivalence point (default 50M).
    [Error] on a crash, deadlock or monitor failure — recording imposes
    the oracle's walk, so anything the oracle admits records. *)
val record : ?budget:int -> Binary.t -> (Log.t, string) result

type outcome = {
  ro_arch : Arch.t;        (** ISA the replay ran on *)
  ro_points : int;         (** equivalence points compared *)
  ro_validated : int;      (** syscall results validated *)
  ro_substituted : int;    (** clock results substituted *)
  ro_sched_checked : int;  (** scheduler slices checked (same-ISA) *)
  ro_snapshot : Process.snapshot;  (** final state *)
  ro_stdout : string;
  ro_exit : int64;
  ro_log : Log.t;  (** the replay re-recorded: byte-identical to the
                       input log on a faithful same-ISA replay *)
}

val outcome_to_string : outcome -> string

(** [replay ~log bin] re-executes [log] on [bin] (either ISA; same-ISA
    when [bin]'s architecture matches the recording, else cross-ISA). *)
val replay : ?budget:int -> log:Log.t -> Binary.t -> (outcome, divergence) result

(**/**)

(** Shared replay machinery for {!Shadow}. Not a stable interface. *)
module Internal : sig
  exception Diverge of divergence

  (** A validating cursor over a log's entry stream. [strict] = same-ISA
      (scheduler slices are validated too); cross-ISA skips them. *)
  type cursor = {
    mutable cur : Log.entry list;
    strict : bool;
    log : Log.t;
    mutable next_point : int;
    mutable validated : int;
    mutable substituted : int;
    mutable sched_checked : int;
  }

  val make_cursor : strict:bool -> Log.t -> cursor

  (** The {!Dapper_machine.Process.nondet} tap that validates syscalls
      (substituting the clock) and scheduler slices against the cursor,
      raising {!Diverge} on the first mismatch. *)
  val hooks_of_cursor : cursor -> Process.nondet

  (** Consume the anchor for point [k]; raises {!Diverge} if the cursor
      is not positioned at it. *)
  val cursor_eqpoint : cursor -> int -> Log.eqpoint

  (** The first remaining entry the current mode would not skip, if any. *)
  val cursor_at_end : cursor -> Log.entry option

  (** Compare a live process against a recorded anchor; raises
      {!Diverge} carrying the anchor's recorded frames and the page
      delta. [prefix_len] is the recorded stdout length at the instant
      the process started with an empty buffer. *)
  val compare_point :
    log:Log.t -> prefix_len:int -> Log.eqpoint -> Process.t -> unit

  (** Recorded frame strings at anchor [k] (the final snapshot's — empty
      — when [k] is past the last anchor). *)
  val frames_at : Log.t -> int -> string list

  val diverge :
    ?tid:int -> ?frames:string list -> ?pages:(string * int) list ->
    point:int -> kind:string -> ('a, unit, string, 'b) format4 -> 'a

  (** Raise {!Diverge} (kind ["crash"]) if the process crashed. *)
  val crash_check : point:int -> Process.t -> unit

  val default_budget : int

  (** Pause-point walk shared by recording and replay: drives the
      process with [Monitor.request_pause] only (fixed drain chunking,
      so scheduler slices are reproducible), calling [on_point] at each
      quiescent anchor, resuming after. Returns the number of anchors
      on clean exit. *)
  val walk :
    budget:int -> on_point:(int -> unit) -> Process.t ->
    (int, Dapper_util.Dapper_error.t) result
end
