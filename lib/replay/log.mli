(** The recording of one process execution's nondeterministic inputs.

    An rr-style log (PAPERS.md: "Engineering Record And Replay For
    Deployability", "Lightweight User-Space Record And Replay"): instead
    of checkpointing state, record only the inputs that are not a pure
    function of the program — completed syscall results, the scheduler's
    interleaving decisions, and traffic arrival draws — and interleave
    them with an equivalence-point snapshot stream so a replay can be
    checked pointwise, not just at the end.

    A log is serialized like any other CRIU-style image section: one
    protobuf message ({!Dapper_proto.Proto} wire format) under the
    {!file_name} entry, versioned and content-checksummed with the
    tree's canonical FNV-1a digest — a flipped byte anywhere in the
    entry stream fails {!decode}.

    Entry kinds:
    - [Syscall]: one completed syscall's result value, in completion
      order. ISA-independent for the single-threaded programs the
      oracle admits (the syscall sequence is a function of the program),
      which is what makes cross-ISA replay possible. The clock result is
      the one genuinely nondeterministic value: a replayer substitutes
      it instead of validating it.
    - [Sched]: one round-robin slice — thread id and instructions
      retired. Instruction counts are ISA-specific, so these entries
      are validated by same-ISA replay only.
    - [Arrival]: one open-loop traffic arrival draw (milliseconds) —
      the load plane's nondeterministic input, so a recorded serving
      process and its request stream replay from one log.
    - [Eqpoint]: the {!Dapper_machine.Process.observe} snapshot at a
      dynamic equivalence point, plus per-page digests and per-thread
      frame summaries — the divergence-localization anchors shadow
      replay compares against. *)

open Dapper_isa

type frame_info = {
  fi_func : string;  (** function name (cross-ISA identity) *)
  fi_ep : int;       (** equivalence-point id within the function *)
  fi_depth : int;    (** 0 = innermost *)
}

type thread_frames = {
  tf_tid : int;
  tf_frames : frame_info list;  (** innermost first *)
}

type page_digest = {
  pd_kind : string;   (** "data", "heap" or "tls" *)
  pd_page : int;      (** virtual page number *)
  pd_digest : int64;  (** FNV-1a of the page (flag word masked) *)
}

type eqpoint = {
  eq_index : int;        (** dynamic equivalence-point index, 0-based *)
  eq_data : int64;       (** {!Dapper_machine.Process.snapshot} digests *)
  eq_heap : int64;
  eq_tls : int64;
  eq_brk : int64;
  eq_threads : int;
  eq_stdout_len : int;   (** bytes of stdout produced so far *)
  eq_stdout_fnv : int64; (** FNV-1a of that prefix *)
  eq_stacks : thread_frames list;  (** sorted by tid *)
  eq_pages : page_digest list;     (** page-number order *)
}

type entry =
  | Syscall of { sc_tid : int; sc_sys : string; sc_ret : int64 }
  | Sched of { sd_tid : int; sd_steps : int }
  | Arrival of { ar_ms : float }
  | Eqpoint of eqpoint

type t = {
  lg_version : int;
  lg_app : string;
  lg_arch : Arch.t;        (** ISA the recording ran on *)
  lg_entries : entry list; (** program order *)
  lg_exit : int64;         (** final exit code *)
  lg_stdout : string;      (** full final stdout (every [eq_stdout_len]
                               is a prefix length into this) *)
  lg_final : eqpoint;      (** snapshot after exit; [eq_index] is the
                               number of equivalence points recorded *)
}

exception Log_error of string

val version : int

(** File name of the log's image-section entry (rides alongside
    [core-<tid>.img], [mm.img], ... in a dump's file set). *)
val file_name : string

(** Number of [Eqpoint] entries. *)
val points : t -> int

(** The [k]-th (0-based) recorded equivalence point. Raises [Log_error]
    if the log has fewer points. *)
val point : t -> int -> eqpoint

(** Serialize to the versioned, checksummed wire form. *)
val encode : t -> string

(** Parse and verify. Raises {!Log_error} on malformed bytes, an
    unsupported version, or an entry-stream checksum mismatch. *)
val decode : string -> t

(** FNV-1a digest of {!encode} — the whole-log content fingerprint
    (equal logs serialize byte-identically). *)
val fingerprint : t -> int64

val entry_to_string : entry -> string
val summary : t -> string
