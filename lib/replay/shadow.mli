(** Divergence-localizing shadow replay.

    [check ~log ~from_point q] runs a {e freshly restored} process [q]
    (the destination of a migration taken at the recording's equivalence
    point [from_point]) in lockstep against the source's recording: the
    restored state is compared against the recorded anchor it claims to
    be, then the shadow is driven through every remaining anchor with
    the log's syscall results validated (clock substituted) and each
    anchor's snapshot, per-page digests and stdout prefix compared.

    Instead of a terminal pass/fail, a mismatch yields the {e first}
    diverging equivalence point with the thread, the recorded frames at
    that anchor and the page-level delta — localizing a rewriter bug to
    the anchor (and pages) where the migrated twin's state function
    first departs from the recorded one.

    [q] must be freshly restored (threads [Runnable], parked at the
    resume address of anchor [from_point]): the first monitor pause then
    advances it to anchor [from_point + 1], keeping the shadow walk
    aligned with the recorder's. Cross-ISA shadows (the normal case — a
    migration changes ISA) skip the recording's scheduler slices;
    same-ISA shadows validate them too. *)

open Dapper_isa
open Dapper_machine

type verdict =
  | Match  (** every remaining anchor, the exit code, stdout and the
               final snapshot matched the recording *)
  | Diverged of Replayer.divergence  (** first mismatch, localized *)

type report = {
  sh_app : string;
  sh_arch : Arch.t;        (** ISA the shadow ran on *)
  sh_from_point : int;     (** anchor the shadow started from *)
  sh_points : int;         (** anchors compared (including the start) *)
  sh_syscalls : int;       (** syscall results validated *)
  sh_substituted : int;    (** clock results substituted *)
  sh_verdict : verdict;
}

(** Never raises: log shape errors, crashes and monitor failures all
    become [Diverged] verdicts. *)
val check : ?budget:int -> log:Log.t -> from_point:int -> Process.t -> report

val verdict_to_string : verdict -> string

(** Multi-line report (the chaos plane attaches this to failures). *)
val report_to_string : report -> string
