open Dapper_isa
open Dapper_binary
open Dapper_machine
module Monitor = Dapper.Monitor
module Unwind = Dapper.Unwind
module Dump = Dapper_criu.Dump
module Trace = Dapper_obs.Trace
module Metrics = Dapper_obs.Metrics
module Bytebuf = Dapper_util.Bytebuf
module Derr = Dapper_util.Dapper_error

type divergence = {
  dv_point : int;
  dv_tid : int option;
  dv_kind : string;
  dv_what : string;
  dv_frames : string list;
  dv_pages : (string * int) list;
}

let m_records = Metrics.counter "replay.records"
let m_replays = Metrics.counter "replay.replays"
let m_entries = Metrics.counter "replay.entries"
let m_substituted = Metrics.counter "replay.substituted"
let m_divergences = Metrics.counter "replay.divergences"

let divergence_to_string d =
  Printf.sprintf "first divergence at eqpoint %d%s [%s]: %s" d.dv_point
    (match d.dv_tid with None -> "" | Some tid -> Printf.sprintf " tid %d" tid)
    d.dv_kind d.dv_what

let divergence_report d =
  let b = Buffer.create 256 in
  Buffer.add_string b (divergence_to_string d);
  if d.dv_pages <> [] then begin
    Buffer.add_string b "\n  diverging pages:";
    List.iter
      (fun (kind, pn) -> Buffer.add_string b (Printf.sprintf " %s:0x%x" kind pn))
      d.dv_pages
  end;
  if d.dv_frames <> [] then begin
    Buffer.add_string b "\n  recorded frames at that anchor:";
    List.iter (fun f -> Buffer.add_string b (Printf.sprintf "\n    %s" f)) d.dv_frames
  end;
  Buffer.contents b

(* ----- shared replay machinery (also used by Shadow) ----- *)

module Internal = struct
  exception Diverge of divergence

  let vma_kind_name = function
  | Process.Vma_data -> "data"
  | Process.Vma_heap -> "heap"
  | Process.Vma_tls -> "tls"
  | Process.Vma_code -> "code"
  | Process.Vma_stack _ -> "stack"

let frames_to_strings stacks =
  List.concat_map
    (fun tf ->
      List.map
        (fun f ->
          Printf.sprintf "tid %d #%d %s ep%d" tf.Log.tf_tid f.Log.fi_depth
            f.Log.fi_func f.Log.fi_ep)
        tf.Log.tf_frames)
    stacks

(* Recorded frames at the anchor a divergence names: point [k] of the
   log if recorded, else the final snapshot (whose stacks are empty). *)
let frames_at (log : Log.t) k =
  let eq =
    if k >= 0 && k < Log.points log then Log.point log k else log.Log.lg_final
  in
  frames_to_strings eq.Log.eq_stacks

let diverge ?tid ?(frames = []) ?(pages = []) ~point ~kind fmt =
  Printf.ksprintf
    (fun what ->
      Metrics.inc m_divergences;
      raise
        (Diverge
           { dv_point = point; dv_tid = tid; dv_kind = kind; dv_what = what;
             dv_frames = frames; dv_pages = pages }))
    fmt

(* Per-page digests a process would record right now, in [Log] form. *)
let pages_of (p : Process.t) =
  List.map
    (fun (kind, pn, digest) ->
      { Log.pd_kind = vma_kind_name kind; pd_page = pn; pd_digest = digest })
    (Process.observe_pages p)

(* Diff the recorded per-page digests against the live process:
   (kind, page) pairs present on one side only or with unequal digests. *)
let page_delta (eq : Log.eqpoint) (p : Process.t) =
  let live = pages_of p in
  let key pd = (pd.Log.pd_kind, pd.Log.pd_page) in
  let find side pd =
    List.find_opt (fun o -> key o = key pd) side
  in
  let changed side other =
    List.filter_map
      (fun pd ->
        match find other pd with
        | Some o when Int64.equal o.Log.pd_digest pd.Log.pd_digest -> None
        | _ -> Some (key pd))
      side
  in
  List.sort_uniq compare (changed eq.Log.eq_pages live @ changed live eq.Log.eq_pages)

(* Build the [Log.eqpoint] snapshot of a quiescent process: observe
   digests, stdout prefix, per-page digests and per-thread frames.
   [stacks] is false after exit (nothing left to unwind). *)
let snapshot_point ?(stacks = true) ~index (bin : Binary.t) (p : Process.t) =
  let sn = Process.observe p in
  let frames =
    if not stacks then []
    else
      match Dump.dump p with
      | Error e ->
        diverge ~point:index ~kind:"crash" "dump at recording anchor failed: %s"
          (Derr.to_string e)
      | Ok image ->
        (match
           Unwind.unwind_all image bin.Binary.bin_stackmaps
             ~anchors:bin.Binary.bin_anchors
         with
        | Error e ->
          diverge ~point:index ~kind:"crash" "unwind at recording anchor failed: %s"
            (Derr.to_string e)
        | Ok ts ->
          List.map
            (fun t ->
              { Log.tf_tid = t.Unwind.ts_tid;
                tf_frames =
                  List.mapi
                    (fun i f ->
                      { Log.fi_func = f.Unwind.fr_func.Stackmap.fm_name;
                        fi_ep = f.Unwind.fr_ep.Stackmap.ep_id;
                        fi_depth = i })
                    t.Unwind.ts_frames })
            (List.sort (fun a b -> compare a.Unwind.ts_tid b.Unwind.ts_tid) ts))
  in
  { Log.eq_index = index;
    eq_data = sn.Process.sn_data;
    eq_heap = sn.Process.sn_heap;
    eq_tls = sn.Process.sn_tls;
    eq_brk = sn.Process.sn_brk;
    eq_threads = sn.Process.sn_threads;
    eq_stdout_len = String.length sn.Process.sn_stdout;
    eq_stdout_fnv = Bytebuf.fnv64 sn.Process.sn_stdout;
    eq_stacks = frames;
    eq_pages = pages_of p }

(* Compare a live process against a recorded anchor. [prefix_len] is the
   stdout the recorded run had already produced when this process
   started with an empty buffer (0 for a from-scratch replay, the
   migration point's [eq_stdout_len] for a shadow). Divergences carry
   the anchor's own recorded frames. *)
let compare_point ~(log : Log.t) ~prefix_len (eq : Log.eqpoint) (p : Process.t) =
  let k = eq.Log.eq_index in
  let frames = frames_to_strings eq.Log.eq_stacks in
  let sn = Process.observe p in
  let check name want got =
    if not (Int64.equal want got) then
      diverge ~point:k ~kind:"snapshot" ~frames ~pages:(page_delta eq p)
        "%s digest %016Lx, log recorded %016Lx" name got want
  in
  check "data" eq.Log.eq_data sn.Process.sn_data;
  check "heap" eq.Log.eq_heap sn.Process.sn_heap;
  check "tls" eq.Log.eq_tls sn.Process.sn_tls;
  if not (Int64.equal eq.Log.eq_brk sn.Process.sn_brk) then
    diverge ~point:k ~kind:"snapshot" ~frames "brk 0x%Lx, log recorded 0x%Lx"
      sn.Process.sn_brk eq.Log.eq_brk;
  if eq.Log.eq_threads <> sn.Process.sn_threads then
    diverge ~point:k ~kind:"snapshot" ~frames "%d live threads, log recorded %d"
      sn.Process.sn_threads eq.Log.eq_threads;
  let live = prefix_len + String.length sn.Process.sn_stdout in
  if live <> eq.Log.eq_stdout_len then
    diverge ~point:k ~kind:"stdout" ~frames
      "stdout is %d bytes (%d new), log recorded %d" live
      (String.length sn.Process.sn_stdout) eq.Log.eq_stdout_len;
  let want = String.sub log.Log.lg_stdout prefix_len (live - prefix_len) in
  if not (String.equal want sn.Process.sn_stdout) then
    diverge ~point:k ~kind:"stdout" ~frames
      "stdout bytes differ from the recorded prefix (first %d bytes)" live

(* ----- the log cursor: validate / substitute / skip ----- *)

type cursor = {
  mutable cur : Log.entry list;  (** remaining entries, program order *)
  strict : bool;   (** same-ISA: scheduler slices must match too *)
  log : Log.t;
  mutable next_point : int;      (** index of the next expected anchor *)
  mutable validated : int;
  mutable substituted : int;
  mutable sched_checked : int;
}

let make_cursor ~strict (log : Log.t) =
  { cur = log.Log.lg_entries; strict; log; next_point = 0; validated = 0;
    substituted = 0; sched_checked = 0 }

(* Drop entries the current replay mode does not reproduce: scheduler
   slices on a cross-ISA replay, arrival draws always (they belong to
   the load plane, not the process). *)
let rec settle c =
  match c.cur with
  | (Log.Sched _ :: rest) when not c.strict -> c.cur <- rest; settle c
  | Log.Arrival _ :: rest -> c.cur <- rest; settle c
  | _ -> ()

let frames_here c = frames_at c.log c.next_point

let cursor_syscall c ~tid ~sys v =
  settle c;
  match c.cur with
  | Log.Syscall { sc_tid; sc_sys; sc_ret } :: rest
    when sc_tid = tid && String.equal sc_sys sys ->
    c.cur <- rest;
    if String.equal sys "clock" then begin
      c.substituted <- c.substituted + 1;
      Metrics.inc m_substituted;
      sc_ret
    end
    else if Int64.equal sc_ret v then begin
      c.validated <- c.validated + 1;
      v
    end
    else
      diverge ~tid ~point:c.next_point ~kind:"syscall" ~frames:(frames_here c)
        "syscall %s returned %Ld, log recorded %Ld" sys v sc_ret
  | e :: _ ->
    diverge ~tid ~point:c.next_point ~kind:"syscall" ~frames:(frames_here c)
      "executed syscall %s (tid %d) -> %Ld where the log has: %s" sys tid v
      (Log.entry_to_string e)
  | [] ->
    diverge ~tid ~point:c.next_point ~kind:"syscall" ~frames:(frames_here c)
      "executed syscall %s (tid %d) past the end of the log" sys tid

let cursor_sched c ~tid ~steps =
  if c.strict then begin
    settle c;
    match c.cur with
    | Log.Sched { sd_tid; sd_steps } :: rest when sd_tid = tid && sd_steps = steps
      ->
      c.cur <- rest;
      c.sched_checked <- c.sched_checked + 1
    | e :: _ ->
      diverge ~tid ~point:c.next_point ~kind:"sched" ~frames:(frames_here c)
        "scheduler ran tid %d for %d instructions where the log has: %s" tid
        steps (Log.entry_to_string e)
    | [] ->
      diverge ~tid ~point:c.next_point ~kind:"sched" ~frames:(frames_here c)
        "scheduler slice (tid %d, %d instructions) past the end of the log" tid
        steps
  end

(* Consume the anchor for point [k] (the cursor must be positioned at
   it once mode-skipped entries are dropped). *)
let cursor_eqpoint c k =
  settle c;
  match c.cur with
  | Log.Eqpoint eq :: rest when eq.Log.eq_index = k ->
    c.cur <- rest;
    c.next_point <- k + 1;
    eq
  | e :: _ ->
    diverge ~point:k ~kind:"log" ~frames:(frames_at c.log k)
      "paused at equivalence point %d where the log has: %s" k
      (Log.entry_to_string e)
  | [] ->
    diverge ~point:k ~kind:"log" ~frames:(frames_at c.log k)
      "paused at equivalence point %d past the end of the log" k

let cursor_at_end c =
  settle c;
  match c.cur with
  | [] -> None
  | e :: _ -> Some e

let hooks_of_cursor c =
  { Process.nd_syscall = (fun ~tid ~sys v -> cursor_syscall c ~tid ~sys v);
    nd_sched = (fun ~tid ~steps -> cursor_sched c ~tid ~steps) }

(* ----- the walk both recording and replay share -----

   Drive the process with [Monitor.request_pause] only — never
   [run_to_completion], whose larger budget chunks would slice the
   scheduler differently — so the [Sched] entry stream is a pure
   function of the walk. [on_point] fires at each pause (process
   quiescent, anchor index given); the walk resumes afterwards. *)

let default_budget = 50_000_000

let walk ~budget ~on_point p =
  let rec go k =
    match Monitor.request_pause p ~budget with
    | Ok _ ->
      on_point k;
      Monitor.resume p;
      go (k + 1)
    | Error Derr.Process_exited -> Ok k
    | Error e -> Error e
  in
  go 0

let crash_check ~point (p : Process.t) =
  match p.Process.crash with
  | Some c ->
    diverge ~tid:c.Process.cr_tid ~point ~kind:"crash"
      "process crashed at pc 0x%Lx: %s" c.Process.cr_pc c.Process.cr_reason
  | None -> ()
end

open Internal

(* ----- recording ----- *)

let record ?(budget = default_budget) (bin : Binary.t) =
  Trace.with_span ~cat:"replay" "record"
    ~args:[ ("app", bin.Binary.bin_app); ("arch", Arch.name bin.Binary.bin_arch) ]
    (fun cl ->
      Metrics.inc m_records;
      let p = Process.load bin in
      let entries = ref [] in
      let push e = entries := e :: !entries in
      p.Process.nondet <-
        Some
          { Process.nd_syscall =
              (fun ~tid ~sys v ->
                push (Log.Syscall { sc_tid = tid; sc_sys = sys; sc_ret = v });
                v);
            nd_sched =
              (fun ~tid ~steps ->
                push (Log.Sched { sd_tid = tid; sd_steps = steps })) };
      match
        walk ~budget p ~on_point:(fun k ->
            push (Log.Eqpoint (snapshot_point ~index:k bin p)))
      with
      | exception Diverge d -> Error (divergence_to_string d)
      | Error e -> Error (Printf.sprintf "recording walk failed: %s" (Derr.to_string e))
      | Ok k -> (
        p.Process.nondet <- None;
        match (p.Process.crash, p.Process.exit_code) with
        | Some c, _ ->
          Error
            (Printf.sprintf "recorded process crashed at pc 0x%Lx: %s"
               c.Process.cr_pc c.Process.cr_reason)
        | None, None -> Error "recorded process neither exited nor crashed"
        | None, Some exit ->
          let log =
            { Log.lg_version = Log.version;
              lg_app = bin.Binary.bin_app;
              lg_arch = bin.Binary.bin_arch;
              lg_entries = List.rev !entries;
              lg_exit = exit;
              lg_stdout = Process.stdout_contents p;
              lg_final = snapshot_point ~stacks:false ~index:k bin p }
          in
          Metrics.inc ~by:(List.length log.Log.lg_entries) m_entries;
          Trace.add_arg cl "points" (string_of_int k);
          Trace.add_arg cl "entries"
            (string_of_int (List.length log.Log.lg_entries));
          Ok log))

(* ----- replay ----- *)

type outcome = {
  ro_arch : Arch.t;
  ro_points : int;
  ro_validated : int;
  ro_substituted : int;
  ro_sched_checked : int;
  ro_snapshot : Process.snapshot;
  ro_stdout : string;
  ro_exit : int64;
  ro_log : Log.t;
}

let outcome_to_string o =
  Printf.sprintf
    "replayed on %s: %d eqpoints, %d syscalls validated, %d clock substituted, \
     %d sched slices checked, exit %Ld, %dB stdout"
    (Arch.name o.ro_arch) o.ro_points o.ro_validated o.ro_substituted
    o.ro_sched_checked o.ro_exit
    (String.length o.ro_stdout)

let replay ?(budget = default_budget) ~(log : Log.t) (bin : Binary.t) =
  let strict = bin.Binary.bin_arch = log.Log.lg_arch in
  Trace.with_span ~cat:"replay" "replay"
    ~args:
      [ ("app", bin.Binary.bin_app); ("arch", Arch.name bin.Binary.bin_arch);
        ("mode", if strict then "same-isa" else "cross-isa") ]
    (fun cl ->
      Metrics.inc m_replays;
      let p = Process.load bin in
      let c = make_cursor ~strict log in
      (* Re-record while replaying: a faithful same-ISA replay must
         reproduce the log byte-for-byte, and the re-recording is the
         proof. The substituted clock value is recorded (it is what the
         register received), so the entry streams coincide. *)
      let entries = ref [] in
      let push e = entries := e :: !entries in
      p.Process.nondet <-
        Some
          { Process.nd_syscall =
              (fun ~tid ~sys v ->
                let out = cursor_syscall c ~tid ~sys v in
                push (Log.Syscall { sc_tid = tid; sc_sys = sys; sc_ret = out });
                out);
            nd_sched =
              (fun ~tid ~steps ->
                cursor_sched c ~tid ~steps;
                push (Log.Sched { sd_tid = tid; sd_steps = steps })) };
      match
        walk ~budget p ~on_point:(fun k ->
            let eq = cursor_eqpoint c k in
            let re = snapshot_point ~index:k bin p in
            push (Log.Eqpoint re);
            compare_point ~log ~prefix_len:0 eq p)
      with
      | exception Diverge d ->
        Trace.add_arg cl "divergence" d.dv_what;
        Error d
      | Error e ->
        Metrics.inc m_divergences;
        Error
          { dv_point = c.next_point; dv_tid = None; dv_kind = "pause";
            dv_what = Printf.sprintf "replay walk failed: %s" (Derr.to_string e);
            dv_frames = frames_at log c.next_point; dv_pages = [] }
      | Ok points -> (
        p.Process.nondet <- None;
        match
          crash_check ~point:points p;
          (match cursor_at_end c with
          | Some e ->
            diverge ~point:points ~kind:"log" ~frames:(frames_at log points)
              "replay finished with unconsumed log entries, next: %s"
              (Log.entry_to_string e)
          | None -> ());
          let exit =
            match p.Process.exit_code with
            | Some e -> e
            | None ->
              diverge ~point:points ~kind:"exit"
                "replay finished without an exit code"
          in
          if not (Int64.equal exit log.Log.lg_exit) then
            diverge ~point:points ~kind:"exit" "exit code %Ld, log recorded %Ld"
              exit log.Log.lg_exit;
          let final = snapshot_point ~stacks:false ~index:points bin p in
          compare_point ~log ~prefix_len:0 log.Log.lg_final p;
          if points <> Log.points log then
            diverge ~point:points ~kind:"log"
              "replay saw %d equivalence points, log recorded %d" points
              (Log.points log);
          (exit, final)
        with
        | exception Diverge d ->
          Trace.add_arg cl "divergence" d.dv_what;
          Error d
        | exit, final ->
          Trace.add_arg cl "points" (string_of_int points);
          Ok
            { ro_arch = bin.Binary.bin_arch;
              ro_points = points;
              ro_validated = c.validated;
              ro_substituted = c.substituted;
              ro_sched_checked = c.sched_checked;
              ro_snapshot = Process.observe p;
              ro_stdout = Process.stdout_contents p;
              ro_exit = exit;
              ro_log =
                { Log.lg_version = Log.version;
                  lg_app = bin.Binary.bin_app;
                  lg_arch = bin.Binary.bin_arch;
                  lg_entries = List.rev !entries;
                  lg_exit = exit;
                  lg_stdout = Process.stdout_contents p;
                  lg_final = final } }))
