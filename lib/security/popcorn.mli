(** A synthetic Popcorn-Linux-style inline migration runtime.

    Popcorn injects its cross-ISA state-transformation logic into every
    application's address space (stack transformation library, register
    translation, metadata lookup), which is exactly the attack surface
    Dapper eliminates by rewriting processes externally (paper
    Section IV-C). This module produces an IR library of equivalent
    shape — unwinders, register translators, pointer fixups, metadata
    hash lookups, frame copiers — that {!Dapper_codegen.Link.compile_with_inline_runtime}
    links into a binary to form the Fig. 11 baseline. *)

(** The inline-runtime IR (no [main]). *)
val runtime_ir : unit -> Dapper_ir.Ir.modul
