open Dapper_clite
open Cl
open Dapper_ir

(* Bodies are real loops and branches over runtime tables so the linked
   code has the density and shape of an actual in-process transformation
   library, not nop padding. *)

let runtime_ir () =
  let m = create "popcorn-rt" in
  global m "st_regmap" (8 * 64);
  global m "st_framecache" (8 * 256);
  global m "st_symtab" (8 * 512);
  global m "st_state" 8;
  func m "st_hash" [ ("key", Ir.I64) ] (fun b ->
      decl b "h" (mul (v "key") (i64 0x9E3779B97F4A7C15L));
      set b "h" (bxor (v "h") (shr (v "h") (i 29)));
      set b "h" (mul (v "h") (i64 0xBF58476D1CE4E5B9L));
      ret b (bxor (v "h") (shr (v "h") (i 32))));
  func m "st_lookup_symbol" [ ("addr", Ir.I64) ] (fun b ->
      decl b "s" (band (call "st_hash" [ v "addr" ]) (i 511));
      decl b "probes" (i 0);
      while_ b (lt (v "probes") (i 512)) (fun b ->
          decl b "cur" (idx (addr "st_symtab") (v "s"));
          if_ b (eq (v "cur") (v "addr")) (fun b -> ret b (v "s"));
          if_ b (eq (v "cur") (i 0)) (fun b -> ret b (neg (i 1)));
          set b "s" (band (add (v "s") (i 1)) (i 511));
          set b "probes" (add (v "probes") (i 1)));
      ret b (neg (i 1)));
  func m "st_insert_symbol" [ ("addr", Ir.I64) ] (fun b ->
      decl b "s" (band (call "st_hash" [ v "addr" ]) (i 511));
      while_ b (ne (idx (addr "st_symtab") (v "s")) (i 0)) (fun b ->
          set b "s" (band (add (v "s") (i 1)) (i 511)));
      store_idx b (addr "st_symtab") (v "s") (v "addr");
      ret b (v "s"));
  func m "st_translate_reg" [ ("src", Ir.I64); ("dir", Ir.I64) ] (fun b ->
      decl b "base" (mul (v "dir") (i 32));
      if_ b (bor (lt (v "src") (i 0)) (ge (v "src") (i 32))) (fun b ->
          ret b (neg (i 1)));
      ret b (idx (addr "st_regmap") (add (v "base") (v "src"))));
  func m "st_init_regmap" [] (fun b ->
      for_ b "r" (i 0) (i 32) (fun b ->
          store_idx b (addr "st_regmap") (v "r") (rem_ (add (mul (v "r") (i 7)) (i 3)) (i 32));
          store_idx b (addr "st_regmap") (add (i 32) (v "r"))
            (rem_ (add (mul (v "r") (i 11)) (i 5)) (i 32)));
      ret b (i 0));
  func m "st_copy_words" [ ("dst", Ir.Ptr); ("src", Ir.Ptr); ("n", Ir.I64) ] (fun b ->
      for_ b "k" (i 0) (v "n") (fun b ->
          store_idx b (v "dst") (v "k") (idx (v "src") (v "k")));
      ret b (v "n"));
  func m "st_unwind_step" [ ("fp", Ir.Ptr) ] (fun b ->
      (* read saved fp and return address from a frame record *)
      decl b "caller" (deref (v "fp"));
      decl b "ra" (deref (add (v "fp") (i 8)));
      do_ b (call "st_insert_symbol" [ v "ra" ]);
      ret b (v "caller"));
  func m "st_translate_pointer" [ ("p", Ir.I64); ("lo", Ir.I64); ("hi", Ir.I64); ("dstbase", Ir.I64) ]
    (fun b ->
      if_ b (band (ge (v "p") (v "lo")) (lt (v "p") (v "hi"))) (fun b ->
          ret b (add (v "dstbase") (sub (v "p") (v "lo"))));
      ret b (v "p"));
  func m "st_frame_size_of" [ ("fid", Ir.I64) ] (fun b ->
      decl b "c" (idx (addr "st_framecache") (band (v "fid") (i 255)));
      if_ b (ne (v "c") (i 0)) (fun b -> ret b (v "c"));
      decl b "sz" (add (i 64) (mul (band (call "st_hash" [ v "fid" ]) (i 15)) (i 16)));
      store_idx b (addr "st_framecache") (band (v "fid") (i 255)) (v "sz");
      ret b (v "sz"));
  func m "st_rewrite_frame"
    [ ("src", Ir.Ptr); ("dst", Ir.Ptr); ("fid", Ir.I64); ("nvals", Ir.I64) ] (fun b ->
      decl b "sz" (call "st_frame_size_of" [ v "fid" ]);
      do_ b (call "st_copy_words" [ v "dst"; v "src"; div_ (v "sz") (i 8) ]);
      for_ b "k" (i 0) (v "nvals") (fun b ->
          decl b "loc" (call "st_translate_reg" [ band (v "k") (i 31); i 1 ]);
          if_ b (ge (v "loc") (i 0)) (fun b ->
              store_idx b (v "dst") (band (v "loc") (i 7))
                (idx (v "src") (band (v "k") (i 7)))));
      ret b (v "sz"));
  func m "st_checksum_region" [ ("p", Ir.Ptr); ("n", Ir.I64) ] (fun b ->
      decl b "acc" (i 0);
      for_ b "k" (i 0) (v "n") (fun b ->
          set b "acc" (bxor (mul (v "acc") (i 31)) (idx (v "p") (v "k"))));
      ret b (v "acc"));
  func m "st_page_align" [ ("a", Ir.I64) ] (fun b ->
      ret b (band (add (v "a") (i 4095)) (bnot (i 4095))));
  func m "st_encode_varint" [ ("p", Ir.Ptr); ("value", Ir.I64) ] (fun b ->
      decl b "pos" (i 0);
      decl b "x" (v "value");
      while_ b (ge (v "x") (i 128)) (fun b ->
          store_idx8 b (v "p") (v "pos") (bor (band (v "x") (i 127)) (i 128));
          set b "x" (shr (v "x") (i 7));
          set b "pos" (add (v "pos") (i 1)));
      store_idx8 b (v "p") (v "pos") (v "x");
      ret b (add (v "pos") (i 1)));
  func m "st_decode_varint" [ ("p", Ir.Ptr) ] (fun b ->
      decl b "x" (i 0);
      decl b "shift" (i 0);
      decl b "pos" (i 0);
      while_ b (i 1) (fun b ->
          decl b "byte" (idx8 (v "p") (v "pos"));
          set b "x" (bor (v "x") (shl (band (v "byte") (i 127)) (v "shift")));
          if_ b (eq (band (v "byte") (i 128)) (i 0)) (fun b -> ret b (v "x"));
          set b "shift" (add (v "shift") (i 7));
          set b "pos" (add (v "pos") (i 1)));
      ret b (v "x"));
  func m "st_migrate_begin" [ ("nframes", Ir.I64) ] (fun b ->
      do_ b (call "st_init_regmap" []);
      decl b "total" (i 0);
      for_ b "k" (i 0) (v "nframes") (fun b ->
          set b "total" (add (v "total") (call "st_frame_size_of" [ v "k" ])));
      set b "st_state" (v "total");
      ret b (v "total"));
  func m "st_migrate_commit" [] (fun b ->
      decl b "s" (v "st_state");
      set b "st_state" (i 0);
      ret b (v "s"));
  (* metadata table maintenance, the bulk of a real migration runtime *)
  for t = 0 to 5 do
    let name = Printf.sprintf "st_table_pass_%d" t in
    func m name [ ("lo", Ir.I64); ("hi", Ir.I64) ] (fun b ->
        decl b "acc" (i (t + 1));
        for_ b "k" (v "lo") (v "hi") (fun b ->
            decl b "slot" (band (call "st_hash" [ add (v "k") (i (t * 97)) ]) (i 511));
            decl b "cur" (idx (addr "st_symtab") (v "slot"));
            if_ b (eq (band (v "cur") (i ((2 * t) + 1))) (i 0)) (fun b ->
                store_idx b (addr "st_symtab") (v "slot")
                  (bxor (v "cur") (add (v "k") (i t))));
            set b "acc" (add (mul (v "acc") (i 33)) (v "cur")));
        ret b (v "acc"))
  done;
  (* a spread of small helpers, the utility tail every runtime carries *)
  for k = 0 to 23 do
    let name = Printf.sprintf "st_util_%d" k in
    func m name [ ("x", Ir.I64) ] (fun b ->
        decl b "acc" (v "x");
        for_ b "j" (i 0) (i (3 + k)) (fun b ->
            set b "acc"
              (bxor
                 (add (mul (v "acc") (i ((2 * k) + 3))) (i ((k * 17) + 1)))
                 (shr (v "acc") (i ((k mod 7) + 1)))));
        ret b (v "acc"))
  done;
  finish m
