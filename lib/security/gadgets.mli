(** ROP gadget scanner (paper Section IV-C, Fig. 11).

    Counts gadgets in a binary's text section the way ROPgadget-style
    tools do: a gadget is a decodable instruction sequence of bounded
    length ending in a control transfer usable by an attacker ([ret],
    indirect call). On the variable-length x86-64 encoding every byte
    offset is a potential gadget start (misaligned decodes included);
    on fixed-length aarch64 only aligned offsets decode. *)

open Dapper_binary

type counts = {
  g_ret : int;        (** sequences ending in ret *)
  g_indirect : int;   (** sequences ending in an indirect call *)
  g_total : int;
}

(** [scan ?max_len binary] counts unique gadget start offsets
    (default [max_len] = 5 instructions). *)
val scan : ?max_len:int -> Binary.t -> counts

(** Percentage reduction of [subject] relative to [baseline]
    (paper Fig. 11's metric). *)
val reduction_pct : baseline:counts -> subject:counts -> float
