open Dapper_isa
open Dapper_binary

type counts = {
  g_ret : int;
  g_indirect : int;
  g_total : int;
}

(* Does a gadget of <= max_len instructions start at [off]?
   Returns the terminator class if so. *)
let gadget_at arch code off max_len =
  let rec go off remaining =
    if remaining = 0 then None
    else
      match Encoding.decode arch code off with
      | None -> None
      | Some (Minstr.Ret, _) -> Some `Ret
      | Some (Minstr.Call_reg _, _) -> Some `Indirect
      | Some ((Minstr.Jmp _ | Minstr.Jz _ | Minstr.Jnz _ | Minstr.Call _ | Minstr.Trap
              | Minstr.Syscall _), _) ->
        None (* direct control flow ends the chain unusable *)
      | Some (_, sz) -> go (off + sz) (remaining - 1)
  in
  go off max_len

let scan ?(max_len = 5) (binary : Binary.t) =
  let text =
    match Binary.find_section binary ".text" with
    | Some s -> s.sec_data
    | None -> ""
  in
  let arch = binary.bin_arch in
  let step = Encoding.alignment arch in
  let ret = ref 0 and ind = ref 0 in
  let off = ref 0 in
  while !off < String.length text do
    (match gadget_at arch text !off max_len with
     | Some `Ret -> incr ret
     | Some `Indirect -> incr ind
     | None -> ());
    off := !off + step
  done;
  { g_ret = !ret; g_indirect = !ind; g_total = !ret + !ind }

let reduction_pct ~baseline ~subject =
  if baseline.g_total = 0 then 0.0
  else
    100.0
    *. (float_of_int (baseline.g_total - subject.g_total)
        /. float_of_int baseline.g_total)
