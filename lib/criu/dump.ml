open Dapper_util
open Dapper_binary
open Dapper_machine

let fail fmt = Dapper_error.failf (fun s -> Dapper_error.Dump_failed s) fmt

let kind_of = function
  | Process.Vma_code -> Images.Vk_code
  | Process.Vma_data -> Images.Vk_data
  | Process.Vma_tls -> Images.Vk_tls
  | Process.Vma_heap -> Images.Vk_heap
  | Process.Vma_stack t -> Images.Vk_stack t

let dump_exn ?(lazy_pages = false) (p : Process.t) =
  if not (Process.all_quiescent p) then
    fail "process has runnable threads; quiesce it first";
  let live = Process.live_threads p in
  (* Execution-context pages: where each live thread's pc points. *)
  let pc_pages =
    List.map (fun (th : Process.thread) -> Layout.page_of_addr th.pc) live
  in
  let pages = Memory.page_numbers p.Process.mem in
  let classified =
    Array.fold_right
      (fun pn acc ->
        match Process.vma_kind_of_page p pn with
        | Some k -> (pn, kind_of k) :: acc
        | None -> acc)
      pages []
  in
  (* Dump policy per page. *)
  let in_dump (pn, kind) =
    match kind with
    | Images.Vk_code -> List.mem pn pc_pages
    | Images.Vk_stack _ -> true
    | Images.Vk_data | Images.Vk_tls | Images.Vk_heap -> not lazy_pages
  in
  (* Pages that are code but not execution context are omitted entirely:
     they reload from the binary. Everything else appears in the pagemap,
     dumped or lazy. *)
  let listed =
    List.filter
      (fun (pn, kind) -> kind <> Images.Vk_code || List.mem pn pc_pages)
      classified
  in
  (* Merge consecutive pages with the same dump disposition. *)
  let entries, dumped_pages =
    let rec go acc dump_acc = function
      | [] -> (List.rev acc, List.rev dump_acc)
      | ((pn, _) as page) :: rest ->
        let d = in_dump page in
        let dump_acc = if d then pn :: dump_acc else dump_acc in
        (match acc with
         | { Images.pm_vaddr; pm_npages; pm_in_dump } :: acc_rest
           when pm_in_dump = d
                && Int64.equal
                     (Int64.add pm_vaddr (Int64.of_int (pm_npages * Layout.page_size)))
                     (Layout.addr_of_page pn) ->
           go ({ Images.pm_vaddr; pm_npages = pm_npages + 1; pm_in_dump = d } :: acc_rest)
             dump_acc rest
         | _ ->
           go
             ({ Images.pm_vaddr = Layout.addr_of_page pn; pm_npages = 1; pm_in_dump = d }
              :: acc)
             dump_acc rest)
    in
    go [] [] listed
  in
  let pages_blob = Buffer.create (List.length dumped_pages * Layout.page_size) in
  List.iter
    (fun pn ->
      match Memory.page_contents p.Process.mem pn with
      | Some data -> Buffer.add_bytes pages_blob data
      | None -> fail "page %d vanished" pn)
    dumped_pages;
  (* VMAs: contiguous same-kind runs over all mapped pages. *)
  let vmas =
    let rec go acc = function
      | [] -> List.rev acc
      | (pn, kind) :: rest ->
        (match acc with
         | { Images.v_start; v_npages; v_kind } :: acc_rest
           when v_kind = kind
                && Int64.equal
                     (Int64.add v_start (Int64.of_int (v_npages * Layout.page_size)))
                     (Layout.addr_of_page pn) ->
           go ({ Images.v_start; v_npages = v_npages + 1; v_kind = kind } :: acc_rest) rest
         | _ ->
           go ({ Images.v_start = Layout.addr_of_page pn; v_npages = 1; v_kind = kind } :: acc)
             rest)
    in
    go [] classified
  in
  let cores =
    List.map
      (fun (th : Process.thread) ->
        { Images.tc_tid = th.tid; tc_arch = p.Process.arch;
          tc_regs = Array.copy th.regs; tc_pc = th.pc; tc_tls = th.tls })
      live
  in
  { Images.is_cores = cores;
    is_mm = { Images.mm_brk = p.Process.brk; mm_vmas = vmas };
    is_pagemap = entries;
    is_pages = Buffer.contents pages_blob;
    is_files = { Images.fi_app = p.Process.binary.Dapper_binary.Binary.bin_app;
                 fi_arch = p.Process.arch } }

let dump ?lazy_pages p = Dapper_error.protect (fun () -> dump_exn ?lazy_pages p)

type stats = { pages_dumped : int; pages_lazy : int; bytes : int }

let stats_of (is : Images.image_set) =
  let dumped, lazy_ =
    List.fold_left
      (fun (d, l) (e : Images.pagemap_entry) ->
        if e.pm_in_dump then (d + e.pm_npages, l) else (d, l + e.pm_npages))
      (0, 0) is.is_pagemap
  in
  { pages_dumped = dumped; pages_lazy = lazy_; bytes = Images.total_bytes is }
