(** CRIU process-image set.

    A checkpoint is a set of named image files, most in protobuf format
    (paper Section II / III-D2):

    - [core-<tid>.img]  — per-thread registers, pc, TLS base
    - [mm.img]          — brk and VMA list
    - [pagemap.img]     — which virtual pages are populated, and whether
                          their contents are in the dump or left lazy
    - [pages-1.img]     — raw page contents (not protobuf)
    - [files.img]       — the executable identity (app name, architecture)

    The Dapper rewriter transforms a serialized image set into another
    serialized image set; these codecs are the only way in and out. *)

open Dapper_isa

type thread_core = {
  tc_tid : int;
  tc_arch : Arch.t;
  tc_regs : int64 array;  (** indexed by DWARF register number; 33 entries *)
  tc_pc : int64;
  tc_tls : int64;
}

type vma_kind = Vk_code | Vk_data | Vk_tls | Vk_heap | Vk_stack of int

type vma = { v_start : int64; v_npages : int; v_kind : vma_kind }

type mm = { mm_brk : int64; mm_vmas : vma list }

type pagemap_entry = {
  pm_vaddr : int64;
  pm_npages : int;
  pm_in_dump : bool;  (** false: page stays on the source node (lazy) *)
}

type files_img = { fi_app : string; fi_arch : Arch.t }

type image_set = {
  is_cores : thread_core list;
  is_mm : mm;
  is_pagemap : pagemap_entry list;
  is_pages : string;   (** raw contents of dumped pages, in pagemap order *)
  is_files : files_img;
}

exception Image_error of string

(** Per-file protobuf codecs (used by CRIT). *)

val encode_core : thread_core -> string
val decode_core : string -> thread_core
val encode_mm : mm -> string
val decode_mm : string -> mm
val encode_pagemap : pagemap_entry list -> string
val decode_pagemap : string -> pagemap_entry list
val encode_files : files_img -> string
val decode_files : string -> files_img

(** Serialize to the named-file representation (protobuf per file). *)
val to_files : image_set -> (string * string) list

(** Parse back from files. Raises [Image_error] on malformed input. *)
val of_files : (string * string) list -> image_set

(** Total byte size — the quantity the scp cost model charges. *)
val total_bytes : image_set -> int

(** Offset of a page's contents within [is_pages], if dumped. *)
val page_offset_in_dump : image_set -> int -> int option

(** {1 Content checksums}

    FNV-1a digests the transfer layer verifies on arrival (and
    retransmits on mismatch): per dumped page, per named image file,
    and over the whole serialized image set. *)

(** Digest of one dumped page's contents ([None] if lazy/unmapped). *)
val page_checksum : image_set -> int -> int64 option

(** The sender-side manifest: one digest per named image file. *)
val file_checksums : image_set -> (string * int64) list

(** A single digest over every file name and its contents, in
    [to_files] order — the whole-image integrity check. *)
val checksum : image_set -> int64

(** Convenience: read/overwrite one dumped page. *)
val read_page : image_set -> int -> string option
val write_page : image_set -> int -> string -> image_set

(** Read/write a 64-bit value inside a dumped page (fails on lazy or
    unmapped addresses). *)
val read_u64 : image_set -> int64 -> int64
val write_u64 : image_set -> int64 -> int64 -> image_set
