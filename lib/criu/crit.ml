open Dapper_isa
open Dapper_util

exception Crit_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Crit_error s)) fmt

let json_of_core (tc : Images.thread_core) =
  Json.Obj
    [ ("tid", Json.Int (Int64.of_int tc.tc_tid));
      ("arch", Json.String (Arch.name tc.tc_arch));
      ("pc", Json.String (Printf.sprintf "0x%Lx" tc.tc_pc));
      ("tls", Json.String (Printf.sprintf "0x%Lx" tc.tc_tls));
      ("regs",
       Json.List
         (Array.to_list
            (Array.mapi
               (fun idx r ->
                 Json.Obj
                   [ ("dwarf", Json.Int (Int64.of_int idx));
                     ("name", Json.String (Arch.reg_name tc.tc_arch idx));
                     ("value", Json.String (Printf.sprintf "0x%Lx" r)) ])
               tc.tc_regs))) ]

let hex_to_i64 j =
  match j with
  | Json.String s -> Int64.of_string s
  | Json.Int v -> v
  | _ -> fail "expected hex string"

let core_of_json j =
  let regs =
    Json.to_list (Json.member "regs" j)
    |> List.map (fun r -> hex_to_i64 (Json.member "value" r))
    |> Array.of_list
  in
  let arch_name = Json.to_str (Json.member "arch" j) in
  match Arch.of_name arch_name with
  | None -> fail "bad arch %s" arch_name
  | Some arch ->
    { Images.tc_tid = Int64.to_int (Json.to_int (Json.member "tid" j));
      tc_arch = arch;
      tc_pc = hex_to_i64 (Json.member "pc" j);
      tc_tls = hex_to_i64 (Json.member "tls" j);
      tc_regs = regs }

let kind_name = function
  | Images.Vk_code -> "code"
  | Images.Vk_data -> "data"
  | Images.Vk_tls -> "tls"
  | Images.Vk_heap -> "heap"
  | Images.Vk_stack t -> Printf.sprintf "stack:%d" t

let kind_of_name s =
  match s with
  | "code" -> Images.Vk_code
  | "data" -> Images.Vk_data
  | "tls" -> Images.Vk_tls
  | "heap" -> Images.Vk_heap
  | s when String.length s > 6 && String.sub s 0 6 = "stack:" ->
    Images.Vk_stack (int_of_string (String.sub s 6 (String.length s - 6)))
  | s -> fail "bad vma kind %s" s

let json_of_mm (mm : Images.mm) =
  Json.Obj
    [ ("brk", Json.String (Printf.sprintf "0x%Lx" mm.mm_brk));
      ("vmas",
       Json.List
         (List.map
            (fun (v : Images.vma) ->
              Json.Obj
                [ ("start", Json.String (Printf.sprintf "0x%Lx" v.v_start));
                  ("npages", Json.Int (Int64.of_int v.v_npages));
                  ("kind", Json.String (kind_name v.v_kind)) ])
            mm.mm_vmas)) ]

let mm_of_json j =
  { Images.mm_brk = hex_to_i64 (Json.member "brk" j);
    mm_vmas =
      List.map
        (fun v ->
          { Images.v_start = hex_to_i64 (Json.member "start" v);
            v_npages = Int64.to_int (Json.to_int (Json.member "npages" v));
            v_kind = kind_of_name (Json.to_str (Json.member "kind" v)) })
        (Json.to_list (Json.member "vmas" j)) }

let json_of_pagemap entries =
  Json.List
    (List.map
       (fun (e : Images.pagemap_entry) ->
         Json.Obj
           [ ("vaddr", Json.String (Printf.sprintf "0x%Lx" e.pm_vaddr));
             ("npages", Json.Int (Int64.of_int e.pm_npages));
             ("in_dump", Json.Bool e.pm_in_dump) ])
       entries)

let pagemap_of_json j =
  List.map
    (fun e ->
      { Images.pm_vaddr = hex_to_i64 (Json.member "vaddr" e);
        pm_npages = Int64.to_int (Json.to_int (Json.member "npages" e));
        pm_in_dump = Json.to_bool (Json.member "in_dump" e) })
    (Json.to_list j)

let json_of_files (fi : Images.files_img) =
  Json.Obj
    [ ("app", Json.String fi.fi_app); ("arch", Json.String (Arch.name fi.fi_arch)) ]

let files_of_json j =
  let arch_name = Json.to_str (Json.member "arch" j) in
  match Arch.of_name arch_name with
  | None -> fail "bad arch %s" arch_name
  | Some arch -> { Images.fi_app = Json.to_str (Json.member "app" j); fi_arch = arch }

let is_core_file name =
  String.length name > 5 && String.sub name 0 5 = "core-"

let is_pages_file name =
  String.length name > 6 && String.sub name 0 6 = "pages-"

let decode_file name bytes =
  if is_core_file name then json_of_core (Images.decode_core bytes)
  else if is_pages_file name then
    Json.Obj [ ("raw_len", Json.Int (Int64.of_int (String.length bytes))) ]
  else
    match name with
    | "mm.img" -> json_of_mm (Images.decode_mm bytes)
    | "pagemap.img" -> json_of_pagemap (Images.decode_pagemap bytes)
    | "files.img" -> json_of_files (Images.decode_files bytes)
    | _ -> fail "unknown image file %s" name

let encode_file name json =
  if is_core_file name then Images.encode_core (core_of_json json)
  else if is_pages_file name then fail "pages are raw; cannot encode from JSON"
  else
    match name with
    | "mm.img" -> Images.encode_mm (mm_of_json json)
    | "pagemap.img" -> Images.encode_pagemap (pagemap_of_json json)
    | "files.img" -> Images.encode_files (files_of_json json)
    | _ -> fail "unknown image file %s" name

let decode_set is =
  List.map (fun (name, bytes) -> (name, decode_file name bytes)) (Images.to_files is)

let show is =
  decode_set is
  |> List.map (fun (name, j) -> Printf.sprintf "=== %s ===\n%s" name (Json.to_string j))
  |> String.concat "\n"
