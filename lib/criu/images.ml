open Dapper_isa
open Dapper_binary
open Dapper_proto

type thread_core = {
  tc_tid : int;
  tc_arch : Arch.t;
  tc_regs : int64 array;
  tc_pc : int64;
  tc_tls : int64;
}

type vma_kind = Vk_code | Vk_data | Vk_tls | Vk_heap | Vk_stack of int

type vma = { v_start : int64; v_npages : int; v_kind : vma_kind }

type mm = { mm_brk : int64; mm_vmas : vma list }

type pagemap_entry = {
  pm_vaddr : int64;
  pm_npages : int;
  pm_in_dump : bool;
}

type files_img = { fi_app : string; fi_arch : Arch.t }

type image_set = {
  is_cores : thread_core list;
  is_mm : mm;
  is_pagemap : pagemap_entry list;
  is_pages : string;
  is_files : files_img;
}

exception Image_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Image_error s)) fmt

(* ----- protobuf schemas -----
   core.img:    1 tid, 2 arch, 3 pc, 4 tls, 5 repeated fixed64 regs
   mm.img:      1 brk, 2 repeated vma { 1 start, 2 npages, 3 kind, 4 stack tid }
   pagemap.img: 1 repeated entry { 1 vaddr, 2 npages, 3 in_dump }
   files.img:   1 app, 2 arch *)

let encode_core tc =
  Proto.encode
    ([ Proto.v_int 1 (Int64.of_int tc.tc_tid);
       Proto.v_str 2 (Arch.name tc.tc_arch);
       Proto.v_fix 3 tc.tc_pc;
       Proto.v_fix 4 tc.tc_tls ]
     @ List.map (fun r -> Proto.v_fix 5 r) (Array.to_list tc.tc_regs))

let decode_core bytes =
  let fs = Proto.decode bytes in
  let arch_name = Proto.get_str fs 2 in
  let tc_arch =
    match Arch.of_name arch_name with
    | Some a -> a
    | None -> fail "core: bad arch %s" arch_name
  in
  let regs =
    List.filter_map
      (fun (f : Proto.field) ->
        if f.tag = 5 then
          match f.payload with Proto.Fixed64 v -> Some v | _ -> None
        else None)
      fs
  in
  { tc_tid = Int64.to_int (Proto.get_int fs 1); tc_arch;
    tc_pc = Proto.get_fix fs 3; tc_tls = Proto.get_fix fs 4;
    tc_regs = Array.of_list regs }

let kind_code = function
  | Vk_code -> 0 | Vk_data -> 1 | Vk_tls -> 2 | Vk_heap -> 3 | Vk_stack _ -> 4

let encode_mm mm =
  Proto.encode
    (Proto.v_fix 1 mm.mm_brk
     :: List.map
          (fun v ->
            Proto.v_msg 2
              [ Proto.v_fix 1 v.v_start;
                Proto.v_int 2 (Int64.of_int v.v_npages);
                Proto.v_int 3 (Int64.of_int (kind_code v.v_kind));
                Proto.v_int 4
                  (Int64.of_int (match v.v_kind with Vk_stack t -> t | _ -> 0)) ])
          mm.mm_vmas)

let decode_mm bytes =
  let fs = Proto.decode bytes in
  let vmas =
    List.map
      (fun m ->
        let kind =
          match Int64.to_int (Proto.get_int m 3) with
          | 0 -> Vk_code
          | 1 -> Vk_data
          | 2 -> Vk_tls
          | 3 -> Vk_heap
          | 4 -> Vk_stack (Int64.to_int (Proto.get_int m 4))
          | k -> fail "mm: bad vma kind %d" k
        in
        { v_start = Proto.get_fix m 1; v_npages = Int64.to_int (Proto.get_int m 2);
          v_kind = kind })
      (Proto.get_all_msgs fs 2)
  in
  { mm_brk = Proto.get_fix fs 1; mm_vmas = vmas }

let encode_pagemap entries =
  Proto.encode
    (List.map
       (fun e ->
         Proto.v_msg 1
           [ Proto.v_fix 1 e.pm_vaddr;
             Proto.v_int 2 (Int64.of_int e.pm_npages);
             Proto.v_int 3 (if e.pm_in_dump then 1L else 0L) ])
       entries)

let decode_pagemap bytes =
  List.map
    (fun m ->
      { pm_vaddr = Proto.get_fix m 1; pm_npages = Int64.to_int (Proto.get_int m 2);
        pm_in_dump = Proto.get_int m 3 <> 0L })
    (Proto.get_all_msgs (Proto.decode bytes) 1)

let encode_files fi =
  Proto.encode [ Proto.v_str 1 fi.fi_app; Proto.v_str 2 (Arch.name fi.fi_arch) ]

let decode_files bytes =
  let fs = Proto.decode bytes in
  let arch_name = Proto.get_str fs 2 in
  match Arch.of_name arch_name with
  | Some a -> { fi_app = Proto.get_str fs 1; fi_arch = a }
  | None -> fail "files: bad arch %s" arch_name

let to_files is =
  List.map
    (fun tc -> (Printf.sprintf "core-%d.img" tc.tc_tid, encode_core tc))
    is.is_cores
  @ [ ("mm.img", encode_mm is.is_mm);
      ("pagemap.img", encode_pagemap is.is_pagemap);
      ("pages-1.img", is.is_pages);
      ("files.img", encode_files is.is_files) ]

let of_files files =
  (* One pass over the file list: hash every image by name (first
     occurrence wins, like [List.assoc_opt]) and collect the per-thread
     cores, instead of a linear scan per named image plus a filter_map
     re-scan. *)
  let by_name = Hashtbl.create 16 in
  let cores = ref [] in
  List.iter
    (fun (name, bytes) ->
      if not (Hashtbl.mem by_name name) then Hashtbl.add by_name name bytes;
      if String.length name > 5 && String.sub name 0 5 = "core-" then
        cores := decode_core bytes :: !cores)
    files;
  let find name =
    match Hashtbl.find_opt by_name name with
    | Some v -> v
    | None -> fail "missing image file %s" name
  in
  let cores =
    List.sort (fun a b -> Int.compare a.tc_tid b.tc_tid) (List.rev !cores)
  in
  { is_cores = cores;
    is_mm = decode_mm (find "mm.img");
    is_pagemap = decode_pagemap (find "pagemap.img");
    is_pages = find "pages-1.img";
    is_files = decode_files (find "files.img") }

let total_bytes is =
  List.fold_left (fun acc (_, bytes) -> acc + String.length bytes) 0 (to_files is)

let page_offset_linear pagemap target =
  let rec go entries off =
    match entries with
    | [] -> None
    | e :: rest ->
      let size = e.pm_npages * Layout.page_size in
      if e.pm_in_dump then begin
        let rel = Int64.sub target e.pm_vaddr in
        if Int64.compare rel 0L >= 0 && Int64.compare rel (Int64.of_int size) < 0 then
          Some (off + Int64.to_int rel)
        else go rest (off + size)
      end
      else go rest off
  in
  go pagemap 0

(* Page-offset index: the pagemap walk above runs once per [read_u64]
   during unwinding, making address resolution O(pagemap entries). Build
   an interval map (dumped vaddr range -> cumulative blob offset) once
   per pagemap and memoize it by physical identity — pagemap lists are
   immutable and shared by the functional [write_*] updates, so identity
   survives everything except an actual remap. *)
let offset_index_capacity = 8

let offset_index_cache :
    (pagemap_entry list * int Dapper_util.Interval_map.t) list ref =
  ref []

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let build_offset_index pagemap =
  let off = ref 0 in
  let triples =
    List.filter_map
      (fun e ->
        if e.pm_in_dump then begin
          let size = e.pm_npages * Layout.page_size in
          let t = (e.pm_vaddr, Int64.add e.pm_vaddr (Int64.of_int size), !off) in
          off := !off + size;
          Some t
        end
        else None)
      pagemap
  in
  Dapper_util.Interval_map.of_list triples

let offset_index pagemap =
  match List.find_opt (fun (pm, _) -> pm == pagemap) !offset_index_cache with
  | Some ((_, m) as hit) ->
    offset_index_cache :=
      hit :: List.filter (fun (pm, _) -> pm != pagemap) !offset_index_cache;
    m
  | None ->
    let m = build_offset_index pagemap in
    offset_index_cache := take offset_index_capacity ((pagemap, m) :: !offset_index_cache);
    m

let page_offset_in_dump is pn =
  let target = Layout.addr_of_page pn in
  let m = offset_index is.is_pagemap in
  if Dapper_util.Interval_map.disjoint m then
    match Dapper_util.Interval_map.find_interval m target with
    | Some (lo, _, base) -> Some (base + Int64.to_int (Int64.sub target lo))
    | None -> None
  else page_offset_linear is.is_pagemap target

(* ----- content checksums -----
   FNV-1a digests at two granularities: per dumped page (what a lazy
   page fetch must deliver intact) and per image file / whole image set
   (what an eager transfer must deliver intact). The transfer layer
   verifies these on arrival and retransmits on mismatch. *)

let page_checksum is pn =
  match page_offset_in_dump is pn with
  | None -> None
  | Some off ->
    Some (Dapper_util.Bytebuf.fnv64 (String.sub is.is_pages off Layout.page_size))

let file_checksums is =
  List.map (fun (name, data) -> (name, Dapper_util.Bytebuf.fnv64 data)) (to_files is)

let checksum is =
  List.fold_left
    (fun h (name, data) ->
      Dapper_util.Bytebuf.fnv64_fold (Dapper_util.Bytebuf.fnv64_fold h name) data)
    0xcbf29ce484222325L (to_files is)

let read_page is pn =
  match page_offset_in_dump is pn with
  | Some off -> Some (String.sub is.is_pages off Layout.page_size)
  | None -> None

let write_page is pn data =
  if String.length data <> Layout.page_size then fail "write_page: bad size";
  match page_offset_in_dump is pn with
  | None -> fail "write_page: page %d not in dump" pn
  | Some off ->
    let b = Bytes.of_string is.is_pages in
    Bytes.blit_string data 0 b off Layout.page_size;
    { is with is_pages = Bytes.to_string b }

let read_u64 is addr =
  let pn = Layout.page_of_addr addr in
  match page_offset_in_dump is pn with
  | None -> fail "read_u64: address 0x%Lx not in dump" addr
  | Some off ->
    let within = Layout.page_offset addr in
    if within + 8 > Layout.page_size then begin
      (* crosses a page boundary: read bytewise *)
      let byte i =
        let a = Int64.add addr (Int64.of_int i) in
        let pn = Layout.page_of_addr a in
        match page_offset_in_dump is pn with
        | None -> fail "read_u64: address 0x%Lx not in dump" a
        | Some o -> Char.code is.is_pages.[o + Layout.page_offset a]
      in
      let v = ref 0L in
      for i = 7 downto 0 do
        v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (byte i))
      done;
      !v
    end
    else Dapper_util.Bytebuf.get_i64 is.is_pages (off + within)

let write_u64 is addr value =
  let pn = Layout.page_of_addr addr in
  match page_offset_in_dump is pn with
  | None -> fail "write_u64: address 0x%Lx not in dump" addr
  | Some off ->
    let within = Layout.page_offset addr in
    let b = Bytes.of_string is.is_pages in
    if within + 8 > Layout.page_size then
      for i = 0 to 7 do
        let a = Int64.add addr (Int64.of_int i) in
        let pn = Layout.page_of_addr a in
        match page_offset_in_dump is pn with
        | None -> fail "write_u64: address 0x%Lx not in dump" a
        | Some o ->
          Bytes.set b (o + Layout.page_offset a)
            (Char.chr (Int64.to_int (Int64.shift_right_logical value (8 * i)) land 0xFF))
      done
    else Bytes.set_int64_le b (off + within) value;
    { is with is_pages = Bytes.to_string b }
