(** Checkpoint: freeze a quiescent process into an image set.

    Following CRIU's behaviour, clean code pages are not dumped — only
    the execution context (the page(s) containing each thread's program
    counter) is included, since other code pages reload from the binary
    on demand (paper Section III-C).

    In lazy (post-copy) mode only the task state, stack pages and the
    execution context are dumped; all other pages stay on the source
    node and are listed in [pagemap.img] as lazy, to be served by a page
    server after restore (paper Section III-D3). *)

open Dapper_util
open Dapper_machine

(** Returns [Error (Dapper_error.Dump_failed _)] if some thread is still
    runnable (the runtime monitor must quiesce the process first). *)
val dump :
  ?lazy_pages:bool -> Process.t -> (Images.image_set, Dapper_error.t) result

(** Statistics used by the cost model. *)
type stats = { pages_dumped : int; pages_lazy : int; bytes : int }

val stats_of : Images.image_set -> stats
