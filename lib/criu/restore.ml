open Dapper_util
open Dapper_isa
open Dapper_binary
open Dapper_machine

let fail fmt = Dapper_error.failf (fun s -> Dapper_error.Restore_failed s) fmt

let restore_exn ?page_source (is : Images.image_set) (binary : Binary.t) =
  if not (Arch.equal is.is_files.fi_arch binary.Binary.bin_arch) then
    fail "architecture mismatch: image is %s, binary is %s"
      (Arch.name is.is_files.fi_arch)
      (Arch.name binary.Binary.bin_arch);
  if is.is_files.fi_app <> binary.Binary.bin_app then
    fail "binary mismatch: image is %s, binary is %s" is.is_files.fi_app
      binary.Binary.bin_app;
  List.iter
    (fun (tc : Images.thread_core) ->
      if not (Arch.equal tc.tc_arch binary.Binary.bin_arch) then
        fail "thread %d register set is %s, binary is %s" tc.tc_tid
          (Arch.name tc.tc_arch)
          (Arch.name binary.Binary.bin_arch))
    is.is_cores;
  let mem = Memory.create () in
  (* Map dumped pages; remember which pages are lazy. *)
  let lazy_pages = Hashtbl.create 64 in
  let cursor = ref 0 in
  List.iter
    (fun (e : Images.pagemap_entry) ->
      for k = 0 to e.pm_npages - 1 do
        let pn = Layout.page_of_addr e.pm_vaddr + k in
        if e.pm_in_dump then begin
          let data = Bytes.create Layout.page_size in
          Bytes.blit_string is.is_pages !cursor data 0 Layout.page_size;
          cursor := !cursor + Layout.page_size;
          Memory.map_page mem pn data
        end
        else Hashtbl.replace lazy_pages pn ()
      done)
    is.is_pagemap;
  let threads =
    List.map
      (fun (tc : Images.thread_core) ->
        { Process.tid = tc.tc_tid; regs = Array.copy tc.tc_regs; pc = tc.tc_pc;
          tls = tc.tc_tls; status = Process.Runnable; instrs = 0L })
      is.is_cores
  in
  let p = Process.reconstruct binary mem ~threads ~brk:is.is_mm.mm_brk in
  (* Chain the lazy page source in front of binary code paging. *)
  let text = Binary.find_section binary ".text" in
  let handler pn =
    if Hashtbl.mem lazy_pages pn then
      match page_source with
      | Some src ->
        (match src pn with
         | Some data ->
           Hashtbl.remove lazy_pages pn;
           Some data
         | None -> None)
      | None -> None
    else begin
      let addr = Layout.addr_of_page pn in
      if Int64.compare addr (Layout.stack_limit_of_thread (Layout.max_threads - 1)) >= 0
         && Int64.compare addr Layout.stack_top < 0
      then Some (Bytes.make Layout.page_size '\000')
      else if Int64.compare addr Layout.code_base >= 0
         && Int64.compare addr Layout.data_base < 0
      then begin
        let page = Bytes.make Layout.page_size '\000' in
        (match text with
         | Some s ->
           let off = Int64.to_int (Int64.sub addr s.sec_addr) in
           let len = String.length s.sec_data in
           if off >= 0 && off < len then
             Bytes.blit_string s.sec_data off page 0 (min Layout.page_size (len - off))
         | None -> ());
        Some page
      end
      else None
    end
  in
  Memory.set_fault_handler mem (Some handler);
  (* Drop the transformation-request flag so checkers do not re-trap. *)
  Memory.write_u64 mem binary.Binary.bin_anchors.a_flag 0L;
  p

let restore ?page_source is binary =
  Dapper_error.protect (fun () -> restore_exn ?page_source is binary)
