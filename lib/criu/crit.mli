(** CRIT — the CRIU image tool.

    Decodes protobuf image files into human-readable JSON and encodes
    them back (paper Section II). Dapper extends this interface with its
    rewriting sub-commands; here the codec itself is exposed so tests
    and tools can inspect and edit images as JSON. [pages-1.img] is raw
    memory and is passed through untouched, as in real CRIT. *)

open Dapper_util

exception Crit_error of string

(** [decode_file name bytes] pretty-decodes one image file. *)
val decode_file : string -> string -> Json.t

(** [encode_file name json] re-encodes; inverse of [decode_file]. *)
val encode_file : string -> Json.t -> string

(** Whole-set conversions. JSON side: object mapping file name to
    document; pages files are represented as [{"raw_len": n}] and carried
    out-of-band. *)
val decode_set : Images.image_set -> (string * Json.t) list
val show : Images.image_set -> string
