(** Restore: rebuild a runnable process from an image set.

    The target binary must match the image's architecture and
    application — restoring an unrewritten x86-64 image on an aarch64
    node is rejected with [Error (Dapper_error.Restore_failed _)], which
    is exactly why Dapper's rewriter exists.

    [page_source] serves lazily-migrated pages on first access (the page
    server client); omit it for a vanilla (fully-copied) restore. *)

open Dapper_util
open Dapper_binary
open Dapper_machine

val restore :
  ?page_source:(int -> bytes option) ->
  Images.image_set ->
  Binary.t ->
  (Process.t, Dapper_error.t) result
