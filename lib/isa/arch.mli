(** Architecture descriptors for the two simulated ISAs.

    The simulator models an "x86-64-sim" (CISC-flavoured: variable-length
    encoding, 16 GPRs, call pushes the return address on the stack) and an
    "aarch64-sim" (RISC-flavoured: fixed-length encoding, 31 GPRs, link
    register, load/store-pair fusion). Register numbering follows the
    respective DWARF conventions so that stack-map records look like the
    paper's Fig. 4. *)

type t = X86_64 | Aarch64

val equal : t -> t -> bool
val name : t -> string
val of_name : string -> t option
val pp : Format.formatter -> t -> unit

(** All architectures, in a stable order. *)
val all : t list

(** Number of addressable general-purpose registers (DWARF numbers
    [0 .. gpr_count-1]). The stack pointer is included in this range. *)
val gpr_count : t -> int

(** DWARF number of the stack pointer / frame pointer / link register.
    [link_reg] is [None] on x86-64, where calls push the return address. *)
val sp : t -> int
val fp : t -> int
val link_reg : t -> int option

(** Return-value register and the argument-register sequence. *)
val ret_reg : t -> int
val arg_regs : t -> int list

(** Callee-saved registers available for promoting hot locals (excludes the
    frame pointer). The count asymmetry (5 vs 10) is what makes some live
    values register-resident on one ISA and stack-resident on the other. *)
val callee_saved : t -> int list

(** Caller-saved scratch registers used by instruction selection. *)
val scratch : t -> int list

(** Human-readable register name for diagnostics ([rax], [x19], ...). *)
val reg_name : t -> int -> string

(** Byte offset that libc adds between the start of a thread's TLS block
    and the value kept in the TLS base register. Differs per architecture,
    which is exactly the fixup Dapper's rewriter must apply (paper
    Section III-C, "Thread Local Storage"). *)
val tls_offset : t -> int

(** Cost model inputs used by the cluster/network simulation. *)

val clock_ghz : t -> float

(** Relative per-work-item slowdown of image-rewriting on this
    architecture's node (paper: recode on aarch64 is ~4x slower). *)
val recode_slowdown : t -> float

(** Syscall numbers differ per architecture, as on real Linux. *)
val syscall_number : t -> [ `Exit | `Write | `Sbrk | `Spawn | `Join | `Mutex_lock
                          | `Mutex_unlock | `Clock | `Yield ] -> int
val syscall_of_number : t -> int -> [ `Exit | `Write | `Sbrk | `Spawn | `Join
                                    | `Mutex_lock | `Mutex_unlock | `Clock | `Yield ] option
