type reg = int

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr | Sar
  | Fadd | Fsub | Fmul | Fdiv
  | Cmpeq | Cmpne | Cmplt | Cmple | Cmpgt | Cmpge | Cmpult
  | Fcmpeq | Fcmplt | Fcmple

type unop = Neg | Not | Fneg | Sitofp | Fptosi | Fsqrt

type t =
  | Mov of reg * reg
  | Movi of reg * int64
  | Movk of reg * int64
  | Binop of binop * reg * reg * reg
  | Binopi of binop * reg * reg * int64
  | Unop of unop * reg * reg
  | Load of reg * reg * int
  | Store of reg * reg * int
  | Load8 of reg * reg * int
  | Store8 of reg * reg * int
  | Load_pair of reg * reg * reg * int
  | Store_pair of reg * reg * reg * int
  | Tls_get of reg
  | Call of int64
  | Call_reg of reg
  | Ret
  | Jmp of int64
  | Jz of reg * int64
  | Jnz of reg * int64
  | Adjust_sp of int
  | Trap
  | Syscall of int
  | Nop

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"
  | Sar -> "sar" | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul"
  | Fdiv -> "fdiv" | Cmpeq -> "cmpeq" | Cmpne -> "cmpne" | Cmplt -> "cmplt"
  | Cmple -> "cmple" | Cmpgt -> "cmpgt" | Cmpge -> "cmpge" | Cmpult -> "cmpult"
  | Fcmpeq -> "fcmpeq" | Fcmplt -> "fcmplt" | Fcmple -> "fcmple"

let unop_name = function
  | Neg -> "neg" | Not -> "not" | Fneg -> "fneg"
  | Sitofp -> "sitofp" | Fptosi -> "fptosi" | Fsqrt -> "fsqrt"

let pp arch ppf t =
  let r n = Arch.reg_name arch n in
  match t with
  | Mov (d, s) -> Format.fprintf ppf "mov %s, %s" (r d) (r s)
  | Movi (d, v) -> Format.fprintf ppf "mov %s, #%Ld" (r d) v
  | Movk (d, v) -> Format.fprintf ppf "movk %s, #%Ld, lsl #32" (r d) v
  | Binop (op, d, a, b) ->
    Format.fprintf ppf "%s %s, %s, %s" (binop_name op) (r d) (r a) (r b)
  | Binopi (op, d, a, v) ->
    Format.fprintf ppf "%s %s, %s, #%Ld" (binop_name op) (r d) (r a) v
  | Unop (op, d, s) -> Format.fprintf ppf "%s %s, %s" (unop_name op) (r d) (r s)
  | Load (d, b, off) -> Format.fprintf ppf "ldr %s, [%s, #%d]" (r d) (r b) off
  | Store (s, b, off) -> Format.fprintf ppf "str %s, [%s, #%d]" (r s) (r b) off
  | Load8 (d, b, off) -> Format.fprintf ppf "ldrb %s, [%s, #%d]" (r d) (r b) off
  | Store8 (s, b, off) -> Format.fprintf ppf "strb %s, [%s, #%d]" (r s) (r b) off
  | Load_pair (d1, d2, b, off) ->
    Format.fprintf ppf "ldp %s, %s, [%s, #%d]" (r d1) (r d2) (r b) off
  | Store_pair (s1, s2, b, off) ->
    Format.fprintf ppf "stp %s, %s, [%s, #%d]" (r s1) (r s2) (r b) off
  | Tls_get d -> Format.fprintf ppf "mrs %s, tls" (r d)
  | Call a -> Format.fprintf ppf "call 0x%Lx" a
  | Call_reg s -> Format.fprintf ppf "call *%s" (r s)
  | Ret -> Format.fprintf ppf "ret"
  | Jmp a -> Format.fprintf ppf "jmp 0x%Lx" a
  | Jz (c, a) -> Format.fprintf ppf "jz %s, 0x%Lx" (r c) a
  | Jnz (c, a) -> Format.fprintf ppf "jnz %s, 0x%Lx" (r c) a
  | Adjust_sp d -> Format.fprintf ppf "add sp, sp, #%d" d
  | Trap -> Format.fprintf ppf "trap"
  | Syscall n -> Format.fprintf ppf "syscall #%d" n
  | Nop -> Format.fprintf ppf "nop"

let to_string arch t = Format.asprintf "%a" (pp arch) t

let uses _arch = function
  | Mov (_, s) -> [ s ]
  | Movi _ -> []
  | Movk (d, _) -> [ d ]
  | Binop (_, _, a, b) -> [ a; b ]
  | Binopi (_, _, a, _) -> [ a ]
  | Unop (_, _, s) -> [ s ]
  | Load (_, b, _) | Load8 (_, b, _) -> [ b ]
  | Store (s, b, _) | Store8 (s, b, _) -> [ s; b ]
  | Load_pair (_, _, b, _) -> [ b ]
  | Store_pair (s1, s2, b, _) -> [ s1; s2; b ]
  | Tls_get _ -> []
  | Call _ -> []
  | Call_reg s -> [ s ]
  | Ret -> []
  | Jmp _ -> []
  | Jz (c, _) | Jnz (c, _) -> [ c ]
  | Adjust_sp _ | Trap | Syscall _ | Nop -> []

let defs _arch = function
  | Mov (d, _) | Movi (d, _) | Movk (d, _) | Binop (_, d, _, _) | Binopi (_, d, _, _)
  | Unop (_, d, _) | Load (d, _, _) | Load8 (d, _, _) | Tls_get d -> [ d ]
  | Load_pair (d1, d2, _, _) -> [ d1; d2 ]
  | Store _ | Store8 _ | Store_pair _ | Call _ | Call_reg _ | Ret | Jmp _ | Jz _ | Jnz _
  | Adjust_sp _ | Trap | Syscall _ | Nop -> []

let is_terminator = function
  | Ret | Jmp _ -> true
  | Mov _ | Movi _ | Movk _ | Binop _ | Binopi _ | Unop _ | Load _ | Store _
  | Load8 _ | Store8 _ | Load_pair _ | Store_pair _ | Tls_get _ | Call _ | Call_reg _ | Jz _
  | Jnz _ | Adjust_sp _ | Trap | Syscall _ | Nop -> false
