open Dapper_util

exception Encode_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Encode_error s)) fmt

let binop_code : Minstr.binop -> int = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Rem -> 4
  | And -> 5 | Or -> 6 | Xor -> 7 | Shl -> 8 | Shr -> 9 | Sar -> 10
  | Fadd -> 11 | Fsub -> 12 | Fmul -> 13 | Fdiv -> 14
  | Cmpeq -> 15 | Cmpne -> 16 | Cmplt -> 17 | Cmple -> 18 | Cmpgt -> 19
  | Cmpge -> 20 | Cmpult -> 21 | Fcmpeq -> 22 | Fcmplt -> 23 | Fcmple -> 24

let binop_of_code : int -> Minstr.binop option = function
  | 0 -> Some Add | 1 -> Some Sub | 2 -> Some Mul | 3 -> Some Div
  | 4 -> Some Rem | 5 -> Some And | 6 -> Some Or | 7 -> Some Xor
  | 8 -> Some Shl | 9 -> Some Shr | 10 -> Some Sar | 11 -> Some Fadd
  | 12 -> Some Fsub | 13 -> Some Fmul | 14 -> Some Fdiv | 15 -> Some Cmpeq
  | 16 -> Some Cmpne | 17 -> Some Cmplt | 18 -> Some Cmple | 19 -> Some Cmpgt
  | 20 -> Some Cmpge | 21 -> Some Cmpult | 22 -> Some Fcmpeq
  | 23 -> Some Fcmplt | 24 -> Some Fcmple
  | _ -> None

let num_binops = 25

let unop_code : Minstr.unop -> int = function
  | Neg -> 0 | Not -> 1 | Fneg -> 2 | Sitofp -> 3 | Fptosi -> 4 | Fsqrt -> 5

let unop_of_code : int -> Minstr.unop option = function
  | 0 -> Some Neg | 1 -> Some Not | 2 -> Some Fneg
  | 3 -> Some Sitofp | 4 -> Some Fptosi | 5 -> Some Fsqrt
  | _ -> None

let num_unops = 6

let alignment = function
  | Arch.X86_64 -> 1
  | Arch.Aarch64 -> 8

(* ----- immediate-field helpers ----- *)

let hi32 v = Int64.shift_right_logical v 32
let lo32 v = Int64.logand v 0xFFFFFFFFL

let fits_s32 v = v >= -0x8000_0000L && v <= 0x7FFF_FFFFL

let u32_of_int v = v land 0xFFFFFFFF

let s32_of_u32 u = if u land 0x8000_0000 <> 0 then u - (1 lsl 32) else u

(* ----- x86-64-sim: variable-length encoding ----- *)

let x86_size : Minstr.t -> int = function
  | Nop | Ret | Trap -> 1
  | Tls_get _ | Call_reg _ -> 2
  | Mov _ -> 3
  | Binop _ | Unop _ | Syscall _ -> 4
  | Call _ | Jmp _ | Adjust_sp _ -> 5
  | Jz _ | Jnz _ -> 6
  | Load _ | Store _ | Load8 _ | Store8 _ -> 7
  | Movi _ -> 10
  | Binopi _ -> 12
  | Movk _ -> fail "movk is aarch64-only"
  | Load_pair _ | Store_pair _ -> fail "load/store pair is aarch64-only"

let x86_encode b (i : Minstr.t) =
  let reg r =
    if r < 0 || r > 15 then fail "x86 register out of range: %d" r;
    Bytebuf.add_u8 b r
  in
  match i with
  | Nop -> Bytebuf.add_u8 b 0x90
  | Ret -> Bytebuf.add_u8 b 0xC3
  | Trap -> Bytebuf.add_u8 b 0xCC
  | Mov (d, s) -> Bytebuf.add_u8 b 0x48; reg d; reg s
  | Movi (d, v) -> Bytebuf.add_u8 b 0x49; reg d; Bytebuf.add_i64 b v
  | Binop (op, d, a, s2) ->
    Bytebuf.add_u8 b (0x50 + binop_code op); reg d; reg a; reg s2
  | Binopi (op, d, a, v) ->
    Bytebuf.add_u8 b 0x81; Bytebuf.add_u8 b (binop_code op); reg d; reg a;
    Bytebuf.add_i64 b v
  | Unop (op, d, s) -> Bytebuf.add_u8 b 0xF7; Bytebuf.add_u8 b (unop_code op); reg d; reg s
  | Load (d, base, off) ->
    Bytebuf.add_u8 b 0x8B; reg d; reg base; Bytebuf.add_u32 b (u32_of_int off)
  | Store (s, base, off) ->
    Bytebuf.add_u8 b 0x89; reg s; reg base; Bytebuf.add_u32 b (u32_of_int off)
  | Load8 (d, base, off) ->
    Bytebuf.add_u8 b 0x8A; reg d; reg base; Bytebuf.add_u32 b (u32_of_int off)
  | Store8 (s, base, off) ->
    Bytebuf.add_u8 b 0x88; reg s; reg base; Bytebuf.add_u32 b (u32_of_int off)
  | Tls_get d -> Bytebuf.add_u8 b 0x6A; reg d
  | Call addr -> Bytebuf.add_u8 b 0xE8; Bytebuf.add_u32 b (Int64.to_int addr)
  | Call_reg s -> Bytebuf.add_u8 b 0xFF; reg s
  | Jmp addr -> Bytebuf.add_u8 b 0xE9; Bytebuf.add_u32 b (Int64.to_int addr)
  | Jz (c, addr) -> Bytebuf.add_u8 b 0x74; reg c; Bytebuf.add_u32 b (Int64.to_int addr)
  | Jnz (c, addr) -> Bytebuf.add_u8 b 0x75; reg c; Bytebuf.add_u32 b (Int64.to_int addr)
  | Adjust_sp d -> Bytebuf.add_u8 b 0x83; Bytebuf.add_u32 b (u32_of_int d)
  | Syscall n -> Bytebuf.add_u8 b 0x0F; Bytebuf.add_u8 b 0x05; Bytebuf.add_u16 b n
  | Movk _ -> fail "movk is aarch64-only"
  | Load_pair _ | Store_pair _ -> fail "load/store pair is aarch64-only"

let x86_decode code off : (Minstr.t * int) option =
  let len = String.length code in
  let avail = len - off in
  if avail <= 0 then None
  else
    let u8 i = Bytebuf.get_u8 code (off + i) in
    let reg i = let r = u8 i in if r > 15 then None else Some r in
    let u32 i = Bytebuf.get_u32 code (off + i) in
    let i64 i = Bytebuf.get_i64 code (off + i) in
    let ( let* ) = Option.bind in
    let need n k = if avail >= n then k () else None in
    match u8 0 with
    | 0x90 -> Some (Minstr.Nop, 1)
    | 0xC3 -> Some (Ret, 1)
    | 0xCC -> Some (Trap, 1)
    | 0x48 -> need 3 (fun () ->
        let* d = reg 1 in let* s = reg 2 in Some (Minstr.Mov (d, s), 3))
    | 0x49 -> need 10 (fun () ->
        let* d = reg 1 in Some (Minstr.Movi (d, i64 2), 10))
    | op when op >= 0x50 && op < 0x50 + num_binops -> need 4 (fun () ->
        let* bop = binop_of_code (op - 0x50) in
        let* d = reg 1 in let* a = reg 2 in let* s2 = reg 3 in
        Some (Minstr.Binop (bop, d, a, s2), 4))
    | 0x81 -> need 12 (fun () ->
        let* bop = binop_of_code (u8 1) in
        let* d = reg 2 in let* a = reg 3 in
        Some (Minstr.Binopi (bop, d, a, i64 4), 12))
    | 0xF7 -> need 4 (fun () ->
        let* uop = unop_of_code (u8 1) in
        let* d = reg 2 in let* s = reg 3 in
        Some (Minstr.Unop (uop, d, s), 4))
    | 0x8B -> need 7 (fun () ->
        let* d = reg 1 in let* base = reg 2 in
        Some (Minstr.Load (d, base, s32_of_u32 (u32 3)), 7))
    | 0x89 -> need 7 (fun () ->
        let* s = reg 1 in let* base = reg 2 in
        Some (Minstr.Store (s, base, s32_of_u32 (u32 3)), 7))
    | 0x8A -> need 7 (fun () ->
        let* d = reg 1 in let* base = reg 2 in
        Some (Minstr.Load8 (d, base, s32_of_u32 (u32 3)), 7))
    | 0x88 -> need 7 (fun () ->
        let* s = reg 1 in let* base = reg 2 in
        Some (Minstr.Store8 (s, base, s32_of_u32 (u32 3)), 7))
    | 0x6A -> need 2 (fun () -> let* d = reg 1 in Some (Minstr.Tls_get d, 2))
    | 0xE8 -> need 5 (fun () -> Some (Minstr.Call (Int64.of_int (u32 1)), 5))
    | 0xFF -> need 2 (fun () -> let* s = reg 1 in Some (Minstr.Call_reg s, 2))
    | 0xE9 -> need 5 (fun () -> Some (Minstr.Jmp (Int64.of_int (u32 1)), 5))
    | 0x74 -> need 6 (fun () ->
        let* c = reg 1 in Some (Minstr.Jz (c, Int64.of_int (u32 2)), 6))
    | 0x75 -> need 6 (fun () ->
        let* c = reg 1 in Some (Minstr.Jnz (c, Int64.of_int (u32 2)), 6))
    | 0x83 -> need 5 (fun () -> Some (Minstr.Adjust_sp (s32_of_u32 (u32 1)), 5))
    | 0x0F -> need 4 (fun () ->
        if u8 1 = 0x05 then Some (Minstr.Syscall (Bytebuf.get_u16 code (off + 2)), 4)
        else None)
    | _ -> None

(* ----- aarch64-sim: fixed 8-byte words ----- *)

let arm_movi_single v = Int64.equal (hi32 v) 0L

let arm_size : Minstr.t -> int = function
  | Movi (_, v) -> if arm_movi_single v then 8 else 16
  | _ -> 8

let arm_word b ~op ~a ~bb ~c ~imm =
  Bytebuf.add_u8 b op;
  Bytebuf.add_u8 b a;
  Bytebuf.add_u8 b bb;
  Bytebuf.add_u8 b c;
  Bytebuf.add_u32 b imm

let arm_encode b (i : Minstr.t) =
  let reg r = if r < 0 || r > 31 then fail "aarch64 register out of range: %d" r else r in
  let s32 v =
    if not (fits_s32 (Int64.of_int v)) then fail "aarch64 immediate out of range: %d" v;
    u32_of_int v
  in
  let addr a = Int64.to_int a in
  match i with
  | Nop -> arm_word b ~op:0x00 ~a:0 ~bb:0 ~c:0 ~imm:0
  | Mov (d, s) -> arm_word b ~op:0x01 ~a:(reg d) ~bb:(reg s) ~c:0 ~imm:0
  | Movi (d, v) ->
    arm_word b ~op:0x02 ~a:(reg d) ~bb:0 ~c:0 ~imm:(Int64.to_int (lo32 v));
    if not (arm_movi_single v) then
      arm_word b ~op:0x03 ~a:(reg d) ~bb:0 ~c:0 ~imm:(Int64.to_int (hi32 v))
  | Movk (d, v) -> arm_word b ~op:0x03 ~a:(reg d) ~bb:0 ~c:0 ~imm:(Int64.to_int (lo32 v))
  | Load (d, base, off) -> arm_word b ~op:0x04 ~a:(reg d) ~bb:(reg base) ~c:0 ~imm:(s32 off)
  | Store (s, base, off) -> arm_word b ~op:0x05 ~a:(reg s) ~bb:(reg base) ~c:0 ~imm:(s32 off)
  | Load8 (d, base, off) -> arm_word b ~op:0x20 ~a:(reg d) ~bb:(reg base) ~c:0 ~imm:(s32 off)
  | Store8 (s, base, off) -> arm_word b ~op:0x21 ~a:(reg s) ~bb:(reg base) ~c:0 ~imm:(s32 off)
  | Load_pair (d1, d2, base, off) ->
    arm_word b ~op:0x06 ~a:(reg d1) ~bb:(reg d2) ~c:(reg base) ~imm:(s32 off)
  | Store_pair (s1, s2, base, off) ->
    arm_word b ~op:0x07 ~a:(reg s1) ~bb:(reg s2) ~c:(reg base) ~imm:(s32 off)
  | Tls_get d -> arm_word b ~op:0x08 ~a:(reg d) ~bb:0 ~c:0 ~imm:0
  | Call a -> arm_word b ~op:0x09 ~a:0 ~bb:0 ~c:0 ~imm:(addr a)
  | Call_reg s -> arm_word b ~op:0x0A ~a:(reg s) ~bb:0 ~c:0 ~imm:0
  | Ret -> arm_word b ~op:0x0B ~a:0 ~bb:0 ~c:0 ~imm:0
  | Jmp a -> arm_word b ~op:0x0C ~a:0 ~bb:0 ~c:0 ~imm:(addr a)
  | Jz (cr, a) -> arm_word b ~op:0x0D ~a:(reg cr) ~bb:0 ~c:0 ~imm:(addr a)
  | Jnz (cr, a) -> arm_word b ~op:0x0E ~a:(reg cr) ~bb:0 ~c:0 ~imm:(addr a)
  | Adjust_sp d -> arm_word b ~op:0x0F ~a:0 ~bb:0 ~c:0 ~imm:(s32 d)
  | Syscall n -> arm_word b ~op:0x2A ~a:0 ~bb:0 ~c:0 ~imm:n
  | Binop (op, d, a, s2) ->
    arm_word b ~op:(0x40 + binop_code op) ~a:(reg d) ~bb:(reg a) ~c:(reg s2) ~imm:0
  | Unop (op, d, s) -> arm_word b ~op:(0x60 + unop_code op) ~a:(reg d) ~bb:(reg s) ~c:0 ~imm:0
  | Binopi (op, d, a, v) ->
    if not (fits_s32 v) then fail "aarch64 binopi immediate out of range: %Ld" v;
    arm_word b ~op:(0x70 + binop_code op) ~a:(reg d) ~bb:(reg a) ~c:0
      ~imm:(Int64.to_int (lo32 v))
  | Trap -> arm_word b ~op:0xD4 ~a:0x20 ~bb:0 ~c:0 ~imm:0

let arm_decode code off : (Minstr.t * int) option =
  if off mod 8 <> 0 || off + 8 > String.length code then None
  else
    let u8 i = Bytebuf.get_u8 code (off + i) in
    let op = u8 0 and a = u8 1 and bb = u8 2 and c = u8 3 in
    let imm_u = Bytebuf.get_u32 code (off + 4) in
    let imm_s = s32_of_u32 imm_u in
    let ( let* ) = Option.bind in
    let reg r = if r > 31 then None else Some r in
    let result =
      match op with
      | 0x00 when a = 0 && bb = 0 && c = 0 && imm_u = 0 -> Some Minstr.Nop
      | 0x01 -> let* d = reg a in let* s = reg bb in Some (Minstr.Mov (d, s))
      | 0x02 -> let* d = reg a in Some (Minstr.Movi (d, Int64.of_int imm_u))
      | 0x03 -> let* d = reg a in Some (Minstr.Movk (d, Int64.of_int imm_u))
      | 0x04 -> let* d = reg a in let* base = reg bb in Some (Minstr.Load (d, base, imm_s))
      | 0x05 -> let* s = reg a in let* base = reg bb in Some (Minstr.Store (s, base, imm_s))
      | 0x20 -> let* d = reg a in let* base = reg bb in Some (Minstr.Load8 (d, base, imm_s))
      | 0x21 -> let* s = reg a in let* base = reg bb in Some (Minstr.Store8 (s, base, imm_s))
      | 0x06 ->
        let* d1 = reg a in let* d2 = reg bb in let* base = reg c in
        Some (Minstr.Load_pair (d1, d2, base, imm_s))
      | 0x07 ->
        let* s1 = reg a in let* s2 = reg bb in let* base = reg c in
        Some (Minstr.Store_pair (s1, s2, base, imm_s))
      | 0x08 -> let* d = reg a in Some (Minstr.Tls_get d)
      | 0x09 -> Some (Minstr.Call (Int64.of_int imm_u))
      | 0x0A -> let* s = reg a in Some (Minstr.Call_reg s)
      | 0x0B -> Some Minstr.Ret
      | 0x0C -> Some (Minstr.Jmp (Int64.of_int imm_u))
      | 0x0D -> let* cr = reg a in Some (Minstr.Jz (cr, Int64.of_int imm_u))
      | 0x0E -> let* cr = reg a in Some (Minstr.Jnz (cr, Int64.of_int imm_u))
      | 0x0F -> Some (Minstr.Adjust_sp imm_s)
      | 0x2A -> Some (Minstr.Syscall imm_u)
      | 0xD4 when a = 0x20 -> Some Minstr.Trap
      | op when op >= 0x40 && op < 0x40 + num_binops ->
        let* bop = binop_of_code (op - 0x40) in
        let* d = reg a in let* s1 = reg bb in let* s2 = reg c in
        Some (Minstr.Binop (bop, d, s1, s2))
      | op when op >= 0x60 && op < 0x60 + num_unops ->
        let* uop = unop_of_code (op - 0x60) in
        let* d = reg a in let* s = reg bb in
        Some (Minstr.Unop (uop, d, s))
      | op when op >= 0x70 && op < 0x70 + num_binops ->
        let* bop = binop_of_code (op - 0x70) in
        let* d = reg a in let* s1 = reg bb in
        Some (Minstr.Binopi (bop, d, s1, Int64.of_int imm_s))
      | _ -> None
    in
    Option.map (fun i -> (i, 8)) result

(* ----- dispatch ----- *)

let size arch i =
  match arch with
  | Arch.X86_64 -> x86_size i
  | Arch.Aarch64 -> arm_size i

let encode arch b i =
  match arch with
  | Arch.X86_64 -> x86_encode b i
  | Arch.Aarch64 -> arm_encode b i

let decode arch code off =
  match arch with
  | Arch.X86_64 -> x86_decode code off
  | Arch.Aarch64 -> arm_decode code off

let trap_bytes arch =
  let b = Bytebuf.create 8 in
  encode arch b Minstr.Trap;
  Bytebuf.contents b

let nop_bytes arch =
  let b = Bytebuf.create 8 in
  encode arch b Minstr.Nop;
  Bytebuf.contents b

let encode_all arch instrs =
  let b = Bytebuf.create 256 in
  List.iter (encode arch b) instrs;
  Bytebuf.contents b

let decode_all arch code =
  let len = String.length code in
  let rec go off acc =
    if off >= len then List.rev acc
    else
      match decode arch code off with
      | Some (i, sz) -> go (off + sz) ((off, i) :: acc)
      | None -> fail "undecodable %s bytes at offset %d" (Arch.name arch) off
  in
  go 0 []
