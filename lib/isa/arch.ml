type t = X86_64 | Aarch64

let equal a b = a = b
let all = [ X86_64; Aarch64 ]

let name = function
  | X86_64 -> "x86-64"
  | Aarch64 -> "aarch64"

let of_name = function
  | "x86-64" | "x86_64" -> Some X86_64
  | "aarch64" | "arm64" -> Some Aarch64
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (name t)

let gpr_count = function
  | X86_64 -> 16
  | Aarch64 -> 32

(* DWARF numbering: x86-64 rsp=7, rbp=6; aarch64 sp=31, fp=x29, lr=x30. *)
let sp = function
  | X86_64 -> 7
  | Aarch64 -> 31

let fp = function
  | X86_64 -> 6
  | Aarch64 -> 29

let link_reg = function
  | X86_64 -> None
  | Aarch64 -> Some 30

let ret_reg = function
  | X86_64 -> 0 (* rax *)
  | Aarch64 -> 0 (* x0 *)

let arg_regs = function
  | X86_64 -> [ 5; 4; 1; 2; 8; 9 ] (* rdi rsi rdx rcx r8 r9 *)
  | Aarch64 -> [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let callee_saved = function
  | X86_64 -> [ 3; 12; 13; 14; 15 ] (* rbx r12-r15 *)
  | Aarch64 -> [ 19; 20; 21; 22; 23; 24; 25; 26; 27; 28 ]

let scratch = function
  | X86_64 -> [ 0; 10; 11 ] (* rax r10 r11 *)
  | Aarch64 -> [ 9; 10; 11 ]

let x86_names =
  [| "rax"; "rdx"; "rcx"; "rbx"; "rsi"; "rdi"; "rbp"; "rsp";
     "r8"; "r9"; "r10"; "r11"; "r12"; "r13"; "r14"; "r15" |]

let reg_name arch r =
  match arch with
  | X86_64 -> if r >= 0 && r < 16 then x86_names.(r) else Printf.sprintf "?x86r%d" r
  | Aarch64 ->
    if r = 31 then "sp"
    else if r >= 0 && r < 31 then Printf.sprintf "x%d" r
    else Printf.sprintf "?armr%d" r

let tls_offset = function
  | X86_64 -> 16 (* FS base points past a 16-byte TCB header *)
  | Aarch64 -> 0 (* TPIDR_EL0 points at the block start *)

let clock_ghz = function
  | X86_64 -> 2.1 (* Xeon E5-2620 v4 *)
  | Aarch64 -> 1.5 (* Cortex-A72 *)

let recode_slowdown = function
  | X86_64 -> 1.0
  | Aarch64 -> 3.96 (* 1004.91 / 253.69 from the paper's Fig. 5 discussion *)

let syscall_table = function
  | X86_64 ->
    [ (`Exit, 60); (`Write, 1); (`Sbrk, 12); (`Spawn, 56); (`Join, 61);
      (`Mutex_lock, 202); (`Mutex_unlock, 203); (`Clock, 228); (`Yield, 24) ]
  | Aarch64 ->
    [ (`Exit, 93); (`Write, 64); (`Sbrk, 214); (`Spawn, 220); (`Join, 260);
      (`Mutex_lock, 98); (`Mutex_unlock, 99); (`Clock, 113); (`Yield, 124) ]

let syscall_number arch k = List.assoc k (syscall_table arch)

let syscall_of_number arch n =
  List.find_map (fun (k, v) -> if v = n then Some k else None) (syscall_table arch)
