(** The semantic machine instruction set shared by both simulated ISAs.

    Both backends select code from this set; the per-architecture byte
    encodings (and some execution semantics, notably call/return) differ —
    see {!Encoding} and {!Dapper_machine.Cpu}. Register operands are DWARF
    numbers for the architecture the code is encoded for. *)

type reg = int

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr | Sar
  | Fadd | Fsub | Fmul | Fdiv
  | Cmpeq | Cmpne | Cmplt | Cmple | Cmpgt | Cmpge | Cmpult
  | Fcmpeq | Fcmplt | Fcmple

type unop = Neg | Not | Fneg | Sitofp | Fptosi | Fsqrt

type t =
  | Mov of reg * reg                 (** dst <- src *)
  | Movi of reg * int64              (** dst <- imm *)
  | Movk of reg * int64
      (** aarch64-sim only: dst <- (dst land 0xFFFFFFFF) lor (imm lsl 32).
          Emitted by the encoder when a 64-bit immediate does not fit the
          fixed-width immediate field; never produced by instruction
          selection directly. *)
  | Binop of binop * reg * reg * reg (** dst <- a op b *)
  | Binopi of binop * reg * reg * int64
  | Unop of unop * reg * reg
  | Load of reg * reg * int          (** dst <- mem64[base + off] *)
  | Store of reg * reg * int         (** mem64[base + off] <- src *)
  | Load8 of reg * reg * int         (** dst <- zero-extended mem8[base + off] *)
  | Store8 of reg * reg * int        (** mem8[base + off] <- low byte of src *)
  | Load_pair of reg * reg * reg * int
      (** aarch64 only: dst1 <- mem[base+off], dst2 <- mem[base+off+8] *)
  | Store_pair of reg * reg * reg * int
  | Tls_get of reg                   (** dst <- TLS base register *)
  | Call of int64                    (** direct call to absolute address *)
  | Call_reg of reg
  | Ret
  | Jmp of int64
  | Jz of reg * int64
  | Jnz of reg * int64
  | Adjust_sp of int                 (** sp <- sp + delta *)
  | Trap                             (** breakpoint: int3 / brk #0 *)
  | Syscall of int                   (** architecture-specific number *)
  | Nop

val binop_name : binop -> string
val unop_name : unop -> string

val pp : Arch.t -> Format.formatter -> t -> unit
val to_string : Arch.t -> t -> string

(** Registers read / written by an instruction (excluding implicit sp
    effects of call/ret/adjust_sp). *)
val uses : Arch.t -> t -> reg list
val defs : Arch.t -> t -> reg list

(** True for instructions that end a basic block. *)
val is_terminator : t -> bool
