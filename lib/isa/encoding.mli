(** Per-architecture machine-code encodings.

    x86-64-sim uses a variable-length encoding (1-12 bytes per
    instruction, distinctive single-byte [ret] 0xC3 and [int3] 0xCC),
    aarch64-sim a fixed 8-byte word per instruction (large immediates are
    split by the encoder into a movz/movk pair). The two encodings are
    deliberately incompatible: code pages of one architecture do not
    decode as the other, which is what forces Dapper to replace the
    execution-context code pages during cross-ISA rewriting, and the
    variable- vs fixed-length asymmetry reproduces the classic ROP gadget
    density difference exploited in Fig. 11. *)

exception Encode_error of string

(** Number of code bytes [encode] will produce. Depends only on the
    instruction (so layout can be computed before branch targets are
    resolved). *)
val size : Arch.t -> Minstr.t -> int

(** Append the encoding of one instruction. Raises [Encode_error] if the
    instruction cannot be encoded on this architecture (e.g. load/store
    pair on x86-64, or an out-of-range field). *)
val encode : Arch.t -> Dapper_util.Bytebuf.t -> Minstr.t -> unit

(** [decode arch code off] decodes the instruction starting at byte
    [off]; returns the instruction and its encoded size, or [None] if the
    bytes do not form a valid instruction. Safe to call at arbitrary
    offsets (used by the ROP gadget scanner). *)
val decode : Arch.t -> string -> int -> (Minstr.t * int) option

(** Instruction alignment: 1 on x86-64, 8 on aarch64. *)
val alignment : Arch.t -> int

(** Encoding of the breakpoint instruction, used by the runtime monitor. *)
val trap_bytes : Arch.t -> string

(** Encoding of [nop], used by the symbol-alignment linker pass. *)
val nop_bytes : Arch.t -> string

(** Convenience: encode a whole instruction sequence. *)
val encode_all : Arch.t -> Minstr.t list -> string

(** Decode an entire well-formed code region into (offset, instr) pairs.
    Raises [Encode_error] on undecodable bytes. *)
val decode_all : Arch.t -> string -> (int * Minstr.t) list
