(** Streaming quantile sketch for request latencies.

    A DDSketch-style log-bucketed histogram: values land in buckets of
    exponentially growing width (ratio [gamma = (1 + e) / (1 - e)] for
    relative accuracy [e]), so any quantile is answered to within
    relative error [e] using O(log(max/min) / e) memory — millions of
    latencies, a few hundred buckets. Everything is deterministic:
    additions commute, {!merge} is exact bucket-wise addition (and hence
    associative and commutative to the bit), and {!quantile} is
    nearest-rank over cumulative bucket counts, so same-seed runs
    produce byte-identical CDFs.

    The accuracy contract (property-tested against an exact
    [List.sort] oracle, including sorted, constant and heavy-tailed
    adversaries): for any [q], [quantile t q] is within relative error
    [e] of the exact nearest-rank q-quantile of the values added. *)

type t

(** [create ~rel_err ()] accepts non-negative values. [rel_err]
    (default 0.01, i.e. 1%) must be in (0, 1). Values below [1e-9] are
    folded into an exact zero bucket. *)
val create : ?rel_err:float -> unit -> t

val rel_err : t -> float

(** Raises [Invalid_argument] on negative or non-finite values. *)
val add : t -> float -> unit

val count : t -> int

(** Exact extremes of the values added; [nan] while empty. *)
val min_value : t -> float

val max_value : t -> float

(** [quantile t q] for [q] in [0, 1]: the bucket midpoint estimate of
    the nearest-rank q-quantile (rank [max 1 (ceil (q * count))]),
    clamped into [[min_value, max_value]]. Raises [Invalid_argument] if
    [q] is outside [0, 1] {e or if the sketch is empty} — an empty
    window has no quantiles, and the old silent [nan] leaked into
    fingerprint lines as [p50=nan]. Callers that can legitimately see
    an empty window use {!quantile_opt}. *)
val quantile : t -> float -> float

(** [None] while empty, otherwise [Some (quantile t q)]. Still raises
    [Invalid_argument] if [q] is outside [0, 1]. *)
val quantile_opt : t -> float -> float option

(** Fresh sketch holding both inputs' values. Exact bucket-wise
    addition — associative, commutative, and equal (as {!buckets}) to
    adding the values one by one. Raises [Invalid_argument] when the
    operands' [rel_err] differ. *)
val merge : t -> t -> t

(** [(bucket_index, count)] pairs in increasing index order, zero bucket
    excluded (see {!zero_count}) — the canonical representation used by
    the merge-associativity tests. *)
val buckets : t -> (int * int) list

val zero_count : t -> int
