(** Seeded open-loop arrival processes on the simulated clock.

    Open-loop means arrivals never wait for completions — the stream of
    request times is fixed by the seed alone, which is what exposes
    queueing collapse during a migration blackout (a closed-loop
    generator would politely stop sending). Two processes:

    - {!poisson}: exponential inter-arrivals at a constant rate — the
      classic M/·/· arrival side, memoryless per draw;
    - {!mmpp}: a Markov-modulated Poisson process — the generator
      holds in a state for an exponentially distributed time, emitting
      at that state's rate, then moves to the next state cyclically.
      Two states (quiet/burst) model diurnal or flash-crowd traffic;
      the per-state exponential holding times make the modulation
      itself memoryless, so crossing a state boundary simply redraws
      the inter-arrival at the new rate.

    All draws come from one splitmix64 stream per generator: same seed,
    same arrival times, bit for bit. *)

type t

(** [poisson ~seed ~rate_per_ms] emits at constant [rate_per_ms] > 0
    (requests per simulated millisecond). *)
val poisson : seed:int64 -> rate_per_ms:float -> t

(** [mmpp ~seed states] cycles through [states] = [(rate_per_ms,
    mean_hold_ms)] pairs, all positive, at least one state. A single
    state degenerates to {!poisson} with extra draws. *)
val mmpp : seed:int64 -> (float * float) array -> t

(** Next absolute arrival time in ms — non-decreasing across calls. *)
val next : t -> float

(** Long-run mean rate: hold-time-weighted average of the state rates. *)
val mean_rate_per_ms : t -> float
