module Metrics = Dapper_obs.Metrics

type mechanism = Vanilla | Precopy | Hybrid | Postcopy

let mechanism_name = function
  | Vanilla -> "vanilla"
  | Precopy -> "precopy"
  | Hybrid -> "hybrid"
  | Postcopy -> "lazy"

let all_mechanisms = [ Vanilla; Precopy; Hybrid; Postcopy ]

let mechanism_of_string s =
  List.find_opt (fun m -> mechanism_name m = s) all_mechanisms

type estimate = {
  e_image_bytes : int;
  e_residual_bytes : int;
  e_fixed_ms : float;
  e_lazy_fixed_ms : float;
  e_wire_ns_per_byte : float;
}

let wire_ms e bytes = float_of_int bytes *. e.e_wire_ns_per_byte /. 1e6

let downtime_ms e = function
  | Vanilla -> e.e_fixed_ms +. wire_ms e e.e_image_bytes
  | Precopy -> e.e_fixed_ms +. wire_ms e e.e_residual_bytes
  | Hybrid | Postcopy -> e.e_lazy_fixed_ms

let m_budget_infeasible = Metrics.counter "traffic.budget.infeasible"

let choose_detail ~budget_ms e =
  if budget_ms < 0.0 then invalid_arg "Budget.choose: negative budget";
  match
    List.find_opt (fun m -> downtime_ms e m <= budget_ms) all_mechanisms
  with
  | Some m -> (m, true)
  | None ->
    (* nothing fits: least-bad blackout, earliest in preference order
       on ties (strict <, first kept) *)
    Metrics.inc m_budget_infeasible;
    ( List.fold_left
        (fun best m -> if downtime_ms e m < downtime_ms e best then m else best)
        Vanilla all_mechanisms,
      false )

let choose ~budget_ms e = fst (choose_detail ~budget_ms e)
