(** Open-loop load plane: millions of simulated requests across a live
    migration, each charged the real stall.

    The generator plays a seeded arrival process ({!Arrival}) against a
    [lg_lanes]-lane FCFS server on the simulated clock while one real
    migration — driven through the actual {!Session} pipeline on the
    actual process image — runs at [lg_migrate_at_ms]. Requests are
    charged what the mechanism actually costs them:

    - requests whose service would start inside the blackout (the
      session's pause→resume window, from its stage log) wait for the
      resume — open-loop arrivals keep landing meanwhile, so the
      backlog drains through the lanes and the tail stretches exactly
      as queueing theory says it must;
    - under pre-copy ([Precopy]/[Hybrid]) the source serves through
      the rounds (at a small dirty-tracking overhead), and the blackout
      shrinks to what {!Session.precopy} left residual;
    - under post-copy ([Postcopy]/[Hybrid]) requests landing after the
      resume fault against the not-yet-fetched page set (the session's
      real [sf_lazy_pages]), each fault charged a
      {!Transport.fetch_stall_ns} sample — round trips, injected
      delays, retry backoff — plus the page-server queue wait from the
      rack pool ({!Rack.acquire_wait}).

    Per-request latencies stream into two {!Sketch}es (all requests,
    and requests charged a migration stall) and into an order-sensitive
    FNV-1a fingerprint, so same-seed runs are byte-identical — the
    golden-fingerprint tests pin exactly this. *)

open Dapper_util
open Dapper_machine
open Dapper_net
module Session = Dapper.Session

type cfg = {
  lg_seed : int64;
  lg_requests : int;        (** total arrivals to simulate *)
  lg_clients : int;         (** client population behind the rate *)
  lg_client_rps : float;    (** per-client requests per second *)
  lg_mmpp : (float * float) array option;
  (** MMPP states as [(rate multiplier, mean hold ms)] over the base
      rate; [None] = plain Poisson *)
  lg_lanes : int;           (** parallel FCFS service lanes *)
  lg_service_src_ms : float;  (** mean request service on the source *)
  lg_service_dst_ms : float;  (** mean request service on the destination *)
  lg_migrate_at_ms : float; (** when the migration begins *)
  lg_max_rounds : int;      (** pre-copy round cap ([Precopy]/[Hybrid]) *)
  lg_downtime_budget_ms : float;  (** pre-copy stop condition *)
  lg_round_instrs : int;
  (** source instructions interpreted per pre-copy round — the dirty-set
      generator (a fixed budget, so wall clock stays bounded while the
      modeled round time rides the wire model) *)
  lg_racks : Rack.t option; (** page-server pool charged on faults *)
  lg_rack : int;            (** the migrating job's rack *)
}

(** Aggregate arrival rate: [clients * rps / 1000] per ms. *)
val rate_per_ms : cfg -> float

(** Mean request service time for a per-request instruction cost on a
    node: [instrs / (ops_per_ns * 1e6)] ms — how the bench calibrates
    [lg_service_*_ms] from real workload runs. *)
val service_ms : node:Node.t -> instrs_per_req:float -> float

type stats = {
  ls_mechanism : Budget.mechanism;
  ls_requests : int;
  ls_stalled : int;
  (** requests that arrived inside the migration window (pre-copy start
      through resume) or were charged a post-copy fault *)
  ls_faulted : int;       (** of those, post-copy page faults *)
  ls_precopy_ms : float;  (** pre-copy round time (source kept serving) *)
  ls_blackout_ms : float; (** pause → resume service gap *)
  ls_lazy_left : int;     (** post-copy pages owed at resume *)
  ls_precopy : Session.precopy_stats option;
  ls_all : Sketch.t;      (** every request latency *)
  ls_during : Sketch.t;   (** latencies of the stalled requests *)
  ls_fingerprint : int64; (** FNV-1a over latency bits, arrival order *)
  ls_outcome : Session.outcome;
}

(** [run cfg scfg p mech] migrates [p] with [mech] under load. The
    session config's transport kind is adapted to the mechanism
    (scp for [Vanilla]/[Precopy], page-server for [Postcopy]/[Hybrid]);
    pass a transport of the right kind to keep a [retrying] wrapper.
    Session-stage failures surface unchanged (the source is rolled
    back by the session machinery). *)
val run :
  cfg ->
  Session.config ->
  Process.t ->
  Budget.mechanism ->
  (stats, Dapper_error.t) result

(** [fingerprint_line stats] renders the golden-test line: mechanism,
    request/stall/fault counts, blackout, the six quantiles at
    [%.6f], and the latency-stream fingerprint in hex. *)
val fingerprint_line : stats -> string
