(** Downtime-budget mechanism selection.

    Four ways to move a process, ordered by what they cost beyond the
    blackout itself:

    - [Vanilla] — stop-and-copy: pause, move everything, resume. No
      extra wire traffic, no fault tail; the whole image is downtime.
    - [Precopy] — iterative pre-copy: stream memory while serving, stop
      and move only the final dirty residual. Extra wire traffic
      (re-sent dirty pages), no fault tail.
    - [Hybrid] — pre-copy rounds, then a lazy (post-copy) switch: the
      blackout carries only the minimal image, and only the pre-copy
      residual faults in afterwards. Extra wire traffic and a short
      fault tail.
    - [Postcopy] — pure lazy migration: minimal blackout, every data
      page faults in on demand. No extra wire traffic, longest tail.

    {!choose} picks, per job, the first mechanism in that order whose
    projected downtime fits the budget — preferring mechanisms with the
    least collateral (wire overhead, then tail length) among those that
    fit, and falling back to the minimum-downtime mechanism when even
    [Postcopy] misses the budget. *)

type mechanism = Vanilla | Precopy | Hybrid | Postcopy

val mechanism_name : mechanism -> string

(** Inverse of {!mechanism_name}; [None] for unknown names. *)
val mechanism_of_string : string -> mechanism option

val all_mechanisms : mechanism list

(** Per-job cost projection, in the session cost model's terms. *)
type estimate = {
  e_image_bytes : int;       (** eager (stop-and-copy) wire bytes *)
  e_residual_bytes : int;    (** projected pre-copy residual wire bytes *)
  e_fixed_ms : float;        (** pause + dump + recode + eager restore *)
  e_lazy_fixed_ms : float;   (** pause + dump + recode + minimal transfer
                                 + lazy restore *)
  e_wire_ns_per_byte : float;
}

(** Projected blackout (service gap) for running [mechanism] under
    [estimate]. Post-copy fault tails are degradation, not downtime, so
    [Hybrid] and [Postcopy] project the same blackout — they differ in
    tail length, which the preference order accounts for. *)
val downtime_ms : estimate -> mechanism -> float

(** The first mechanism in [Vanilla; Precopy; Hybrid; Postcopy] order
    whose {!downtime_ms} is within [budget_ms]; when none fits, the one
    with the smallest projected downtime (earliest in order on ties) —
    and the ["traffic.budget.infeasible"] metrics counter is bumped, so
    the silent least-bad fallback is observable fleet-wide. Raises
    [Invalid_argument] on a negative budget. *)
val choose : budget_ms:float -> estimate -> mechanism

(** Like {!choose}, also reporting whether the pick actually fits the
    budget ([false] means the least-bad fallback was taken — the
    degradation ladder's cue to postpone instead of blowing the SLO). *)
val choose_detail : budget_ms:float -> estimate -> mechanism * bool
