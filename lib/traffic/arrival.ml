open Dapper_util

type t = {
  a_rng : Rng.t;
  a_states : (float * float) array;  (* (rate_per_ms, mean_hold_ms) *)
  mutable a_state : int;
  mutable a_now : float;
  mutable a_switch_at : float;
}

(* Unit-mean exponential via inverse CDF. [Rng.float] is in [0, 1), so
   [1 - u] is in (0, 1] and the log is finite. *)
let expo rng = -.Float.log (1.0 -. Rng.float rng)

let mmpp ~seed states =
  if Array.length states = 0 then invalid_arg "Arrival.mmpp: no states";
  Array.iter
    (fun (rate, hold) ->
      if rate <= 0.0 || hold <= 0.0 then
        invalid_arg "Arrival.mmpp: rates and holds must be positive")
    states;
  let rng = Rng.create seed in
  let _, hold0 = states.(0) in
  let switch_at =
    if Array.length states = 1 then infinity else expo rng *. hold0
  in
  { a_rng = rng; a_states = states; a_state = 0; a_now = 0.0;
    a_switch_at = switch_at }

let poisson ~seed ~rate_per_ms =
  if rate_per_ms <= 0.0 then invalid_arg "Arrival.poisson: rate must be positive";
  (* the hold time is irrelevant for a single state; 1.0 keeps it valid *)
  mmpp ~seed [| (rate_per_ms, 1.0) |]

let rec next t =
  let rate, _ = t.a_states.(t.a_state) in
  let dt = expo t.a_rng /. rate in
  if t.a_now +. dt <= t.a_switch_at then begin
    t.a_now <- t.a_now +. dt;
    t.a_now
  end
  else begin
    (* jump to the state boundary and redraw there: both the modulating
       chain and the arrival process are memoryless, so discarding the
       partial inter-arrival is exact, not an approximation *)
    t.a_now <- t.a_switch_at;
    t.a_state <- (t.a_state + 1) mod Array.length t.a_states;
    let _, hold = t.a_states.(t.a_state) in
    t.a_switch_at <- t.a_now +. (expo t.a_rng *. hold);
    next t
  end

let mean_rate_per_ms t =
  let num = ref 0.0 and den = ref 0.0 in
  Array.iter
    (fun (rate, hold) ->
      num := !num +. (rate *. hold);
      den := !den +. hold)
    t.a_states;
  !num /. !den
