open Dapper_util
open Dapper_binary
open Dapper_machine
open Dapper_criu
open Dapper_net
module Session = Dapper.Session
module Trace = Dapper_obs.Trace
module Metrics = Dapper_obs.Metrics

type cfg = {
  lg_seed : int64;
  lg_requests : int;
  lg_clients : int;
  lg_client_rps : float;
  lg_mmpp : (float * float) array option;
  lg_lanes : int;
  lg_service_src_ms : float;
  lg_service_dst_ms : float;
  lg_migrate_at_ms : float;
  lg_max_rounds : int;
  lg_downtime_budget_ms : float;
  lg_round_instrs : int;
  lg_racks : Rack.t option;
  lg_rack : int;
}

let rate_per_ms c = float_of_int c.lg_clients *. c.lg_client_rps /. 1000.0

let service_ms ~(node : Node.t) ~instrs_per_req =
  instrs_per_req /. (node.Node.n_ops_per_ns *. 1e6)

type stats = {
  ls_mechanism : Budget.mechanism;
  ls_requests : int;
  ls_stalled : int;
  ls_faulted : int;
  ls_precopy_ms : float;
  ls_blackout_ms : float;
  ls_lazy_left : int;
  ls_precopy : Session.precopy_stats option;
  ls_all : Sketch.t;
  ls_during : Sketch.t;
  ls_fingerprint : int64;
  ls_outcome : Session.outcome;
}

let m_requests = Metrics.counter "traffic.requests"
let m_stalled = Metrics.counter "traffic.stalled"
let m_faults = Metrics.counter "traffic.page_faults"
let m_request_ms = Metrics.histogram "traffic.request_ms"

(* Request mix over the Redis-style op classes (GET/SET/INCR at
   60/30/10%), with per-class cost multipliers chosen to preserve the
   calibrated mean exactly: 0.6*0.8 + 0.3*1.2 + 0.1*1.6 = 1. *)
let class_mult u = if u < 0.6 then 0.8 else if u < 0.9 then 1.2 else 1.6

(* Write-barrier overhead while dirty tracking runs: pre-copy rounds
   slow the source a hair; the model charges 3% on the service mean. *)
let track_overhead = 1.03

let expo rng = -.Float.log (1.0 -. Rng.float rng)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L
let fnv_mix h v = Int64.mul (Int64.logxor h v) fnv_prime

let needs_lazy = function
  | Budget.Vanilla | Budget.Precopy -> false
  | Budget.Hybrid | Budget.Postcopy -> true

let transport_for mech t =
  if needs_lazy mech = Transport.is_lazy t then t
  else if needs_lazy mech then Transport.page_server (Transport.link t)
  else Transport.scp (Transport.link t)

let precopies = function
  | Budget.Precopy | Budget.Hybrid -> true
  | Budget.Vanilla | Budget.Postcopy -> false

let validate c =
  if c.lg_requests <= 0 then invalid_arg "Loadgen.run: lg_requests <= 0";
  if c.lg_clients <= 0 then invalid_arg "Loadgen.run: lg_clients <= 0";
  if c.lg_client_rps <= 0.0 then invalid_arg "Loadgen.run: lg_client_rps <= 0";
  if c.lg_lanes <= 0 then invalid_arg "Loadgen.run: lg_lanes <= 0";
  if c.lg_service_src_ms <= 0.0 || c.lg_service_dst_ms <= 0.0 then
    invalid_arg "Loadgen.run: service means must be positive";
  if c.lg_migrate_at_ms < 0.0 then invalid_arg "Loadgen.run: lg_migrate_at_ms < 0";
  if c.lg_round_instrs <= 0 then invalid_arg "Loadgen.run: lg_round_instrs <= 0"

let ( let* ) = Result.bind

let run c scfg p mech =
  validate c;
  let transport = transport_for mech scfg.Session.cfg_transport in
  let scfg = { scfg with Session.cfg_transport = transport } in
  (* --- the real migration, driven through the session pipeline --- *)
  let pre =
    if precopies mech then
      Some
        (Session.precopy scfg p
           ~advance:(fun _ms ->
             ignore (Process.run p ~max_instrs:c.lg_round_instrs))
           ~max_rounds:c.lg_max_rounds
           ~downtime_budget_ms:c.lg_downtime_budget_ms)
    else None
  in
  let resident =
    match pre with Some s -> s.Session.pcs_resident | None -> []
  in
  let scfg = { scfg with Session.cfg_resident_pages = resident } in
  (* stepwise (not Session.run) so the restored state's lazy-page debt
     is visible before commit consumes the session *)
  let* s = Session.pause (Session.start scfg p) in
  let* s = Session.dump s in
  let hot_pages =
    let d = s.Session.s_state.Session.sd_dump in
    d.Dump.pages_dumped + d.Dump.pages_lazy
  in
  let* s = Session.recode s in
  let* s = Session.transfer s in
  let* s = Session.restore s in
  let lazy_left = List.length s.Session.s_state.Session.sf_lazy_pages in
  let* s = Session.commit s in
  let outcome = Session.finish s in
  let precopy_ms = match pre with Some st -> st.Session.pcs_ms | None -> 0.0 in
  let blackout_ms = Session.total_ms outcome.Session.r_times in
  let mig_start = c.lg_migrate_at_ms in
  let black_start = mig_start +. precopy_ms in
  let resume = black_start +. blackout_ms in
  if Trace.enabled () then begin
    if precopy_ms > 0.0 then
      Trace.leaf ~cat:"traffic" "precopy-window" ~dur_ns:(precopy_ms *. 1e6)
        ~args:[ ("mechanism", Budget.mechanism_name mech) ];
    Trace.leaf ~cat:"traffic" "blackout" ~dur_ns:(blackout_ms *. 1e6)
      ~args:
        [ ("mechanism", Budget.mechanism_name mech);
          ("lazy_left", string_of_int lazy_left) ]
  end;
  (* --- the open-loop request plane --- *)
  let root = Rng.create c.lg_seed in
  let arrival_seed = Rng.next root in
  let service_rng = Rng.split root in
  let fault_rng = Rng.split root in
  let base_rate = rate_per_ms c in
  let arrivals =
    match c.lg_mmpp with
    | None -> Arrival.poisson ~seed:arrival_seed ~rate_per_ms:base_rate
    | Some states ->
      Arrival.mmpp ~seed:arrival_seed
        (Array.map (fun (mult, hold) -> (base_rate *. mult, hold)) states)
  in
  let lanes = Array.make c.lg_lanes 0.0 in
  let page_bytes =
    int_of_float (float_of_int Layout.page_size *. scfg.Session.cfg_bytes_scale)
  in
  let all = Sketch.create () in
  let during = Sketch.create () in
  let fp = ref fnv_offset in
  let stalled_n = ref 0 in
  let faulted_n = ref 0 in
  let remaining = ref lazy_left in
  let lazy_mech = needs_lazy mech in
  for _ = 1 to c.lg_requests do
    let arrive = Arrival.next arrivals in
    (* earliest-free lane, lowest index on ties *)
    let lane = ref 0 in
    for i = 1 to c.lg_lanes - 1 do
      if lanes.(i) < lanes.(!lane) then lane := i
    done;
    let t0 = Float.max arrive lanes.(!lane) in
    let blacked = t0 >= black_start && t0 < resume in
    let t0 = if blacked then resume else t0 in
    let mean =
      if t0 >= resume then c.lg_service_dst_ms
      else if t0 >= mig_start && t0 < black_start then
        c.lg_service_src_ms *. track_overhead
      else c.lg_service_src_ms
    in
    let svc = mean *. class_mult (Rng.float service_rng) *. expo service_rng in
    let fault_ms =
      if lazy_mech && t0 >= resume && !remaining > 0 then begin
        let hot = max 1 hot_pages in
        if Rng.float fault_rng < float_of_int !remaining /. float_of_int hot
        then begin
          let stall =
            Transport.fetch_stall_ns transport ?fault:scfg.Session.cfg_fault
              ~page_bytes ()
            /. 1e6
          in
          let wait =
            match c.lg_racks with
            | None -> 0.0
            | Some racks ->
              snd
                (Rack.acquire_wait racks ~rack:c.lg_rack ~now_ms:t0
                   ~service_ms:stall)
          in
          decr remaining;
          incr faulted_n;
          Metrics.inc m_faults;
          stall +. wait
        end
        else 0.0
      end
      else 0.0
    in
    let finish = t0 +. svc +. fault_ms in
    lanes.(!lane) <- finish;
    let lat = finish -. arrive in
    Sketch.add all lat;
    Metrics.observe m_request_ms lat;
    (* "during migration" = arrived inside the migration window (so the
       blackout, or the backlog it left, is in this request's path) or
       charged a post-copy fault. Keyed on the arrival, not the start:
       once the lanes are pushed past the resume the queued-behind
       requests never start inside the window, yet the blackout is
       exactly what they are waiting on. *)
    if (arrive >= mig_start && arrive < resume) || fault_ms > 0.0 then begin
      incr stalled_n;
      Metrics.inc m_stalled;
      Sketch.add during lat
    end;
    fp := fnv_mix !fp (Int64.bits_of_float lat)
  done;
  Metrics.inc m_requests ~by:c.lg_requests;
  Ok
    { ls_mechanism = mech;
      ls_requests = c.lg_requests;
      ls_stalled = !stalled_n;
      ls_faulted = !faulted_n;
      ls_precopy_ms = precopy_ms;
      ls_blackout_ms = blackout_ms;
      ls_lazy_left = lazy_left;
      ls_precopy = pre;
      ls_all = all;
      ls_during = during;
      ls_fingerprint = !fp;
      ls_outcome = outcome }

let fingerprint_line st =
  (* A zero-request window (rate or duration rounded to no arrivals)
     leaves both sketches empty; print 0.0 rather than die on it. *)
  let q s p = Option.value (Sketch.quantile_opt s p) ~default:0.0 in
  Printf.sprintf
    "%s n=%d stalled=%d faulted=%d blackout=%.6f p50=%.6f p99=%.6f p999=%.6f \
     mig-p50=%.6f mig-p99=%.6f mig-p999=%.6f fp=%016Lx"
    (Budget.mechanism_name st.ls_mechanism)
    st.ls_requests st.ls_stalled st.ls_faulted st.ls_blackout_ms
    (q st.ls_all 0.5) (q st.ls_all 0.99) (q st.ls_all 0.999)
    (q st.ls_during 0.5) (q st.ls_during 0.99) (q st.ls_during 0.999)
    st.ls_fingerprint
