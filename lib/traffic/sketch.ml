type t = {
  k_rel_err : float;
  k_log_gamma : float;
  k_gamma : float;
  k_buckets : (int, int ref) Hashtbl.t;
  mutable k_zero : int;
  mutable k_count : int;
  mutable k_min : float;
  mutable k_max : float;
}

(* Values below this fold into the exact zero bucket: latencies are
   milliseconds, so a nanosecond-scale floor loses nothing and keeps
   bucket indexes bounded. *)
let zero_floor = 1e-9

let create ?(rel_err = 0.01) () =
  if not (rel_err > 0.0 && rel_err < 1.0) then
    invalid_arg "Sketch.create: rel_err outside (0, 1)";
  let gamma = (1.0 +. rel_err) /. (1.0 -. rel_err) in
  { k_rel_err = rel_err;
    k_gamma = gamma;
    k_log_gamma = Float.log gamma;
    k_buckets = Hashtbl.create 128;
    k_zero = 0;
    k_count = 0;
    k_min = nan;
    k_max = nan }

let rel_err t = t.k_rel_err
let count t = t.k_count
let min_value t = t.k_min
let max_value t = t.k_max
let zero_count t = t.k_zero

(* Bucket k holds (gamma^(k-1), gamma^k]: ceil of the log-gamma index. *)
let key t v = int_of_float (Float.ceil (Float.log v /. t.k_log_gamma))

let add t v =
  if not (Float.is_finite v) || v < 0.0 then
    invalid_arg "Sketch.add: negative or non-finite value";
  if t.k_count = 0 then begin
    t.k_min <- v;
    t.k_max <- v
  end
  else begin
    if v < t.k_min then t.k_min <- v;
    if v > t.k_max then t.k_max <- v
  end;
  t.k_count <- t.k_count + 1;
  if v < zero_floor then t.k_zero <- t.k_zero + 1
  else
    let k = key t v in
    match Hashtbl.find_opt t.k_buckets k with
    | Some r -> incr r
    | None -> Hashtbl.add t.k_buckets k (ref 1)

let buckets t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.k_buckets []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* Midpoint of bucket k in the relative-error metric: 2*gamma^k /
   (gamma + 1), within rel_err of every value the bucket holds. *)
let bucket_value t k =
  2.0 *. (t.k_gamma ** float_of_int k) /. (t.k_gamma +. 1.0)

let quantile_opt t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Sketch.quantile: q outside [0, 1]";
  if t.k_count = 0 then None
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.k_count))) in
    if rank <= t.k_zero then Some 0.0
    else begin
      let remaining = ref (rank - t.k_zero) in
      let result = ref t.k_max in
      (try
         List.iter
           (fun (k, c) ->
             remaining := !remaining - c;
             if !remaining <= 0 then begin
               result := bucket_value t k;
               raise Exit
             end)
           (buckets t)
       with Exit -> ());
      Some (Float.min t.k_max (Float.max t.k_min !result))
    end
  end

let quantile t q =
  match quantile_opt t q with
  | Some v -> v
  | None -> invalid_arg "Sketch.quantile: empty sketch (use quantile_opt)"

let merge a b =
  if a.k_rel_err <> b.k_rel_err then
    invalid_arg "Sketch.merge: mismatched rel_err";
  let t = create ~rel_err:a.k_rel_err () in
  let blend src =
    Hashtbl.iter
      (fun k r ->
        match Hashtbl.find_opt t.k_buckets k with
        | Some dst -> dst := !dst + !r
        | None -> Hashtbl.add t.k_buckets k (ref !r))
      src.k_buckets;
    t.k_zero <- t.k_zero + src.k_zero;
    if src.k_count > 0 then begin
      if t.k_count = 0 then begin
        t.k_min <- src.k_min;
        t.k_max <- src.k_max
      end
      else begin
        if src.k_min < t.k_min then t.k_min <- src.k_min;
        if src.k_max > t.k_max then t.k_max <- src.k_max
      end;
      t.k_count <- t.k_count + src.k_count
    end
  in
  blend a;
  blend b;
  t
