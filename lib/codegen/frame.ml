open Dapper_isa
open Dapper_ir

type t = {
  arch : Arch.t;
  slot_offsets : int array;
  promoted : (int * int) list;
  saved : (int * int) list;
  named_lo : int;
  named_hi : int;
  temp_offsets : int array;
  frame_size : int;
  leaf : bool;
}

let align16 n = (n + 15) land lnot 15

let is_leaf (f : Ir.func) =
  Array.for_all
    (fun (b : Ir.block) ->
      List.for_all (function Ir.Call _ -> false | _ -> true) b.instrs)
    f.fblocks

let layout (opts : Opts.t) arch (f : Ir.func) =
  let nslots = List.length f.fslots in
  let nvregs = Ir.vreg_count f in
  (* Promotion: eligible scalar slots, in slot order, up to the number of
     callee-saved registers this architecture offers. *)
  let eligible =
    if opts.promote then
      List.filter
        (fun (s : Ir.slot) -> s.sl_size = 8 && not s.sl_addr_taken)
        f.fslots
    else []
  in
  let avail = Arch.callee_saved arch in
  let rec pair slots regs acc =
    match (slots, regs) with
    | (s : Ir.slot) :: ss, r :: rs -> pair ss rs ((s.sl_id, r) :: acc)
    | _, [] | [], _ -> List.rev acc
  in
  let promoted = pair eligible avail [] in
  let saved = List.mapi (fun i (_, r) -> (r, -8 * (i + 1))) promoted in
  let save_bytes = 8 * List.length saved in
  (* Named (non-promoted) slots below the save area. *)
  let slot_offsets = Array.make (max nslots 1) 0 in
  let cursor = ref save_bytes in
  List.iter
    (fun (s : Ir.slot) ->
      if not (List.mem_assoc s.sl_id promoted) then begin
        cursor := !cursor + s.sl_size;
        slot_offsets.(s.sl_id) <- - !cursor
      end)
    f.fslots;
  let named_lo = - !cursor in
  let named_hi = -save_bytes in
  (* Temp spill slots. *)
  let temp_offsets = Array.make (max nvregs 1) 0 in
  for v = 0 to nvregs - 1 do
    cursor := !cursor + 8;
    temp_offsets.(v) <- - !cursor
  done;
  let frame_size = align16 !cursor in
  { arch; slot_offsets; promoted; saved; named_lo; named_hi; temp_offsets;
    frame_size; leaf = is_leaf f }

let promoted_reg t s = List.assoc_opt s t.promoted
