(** Instruction selection: IR function -> machine instruction items.

    Selection is -O0-flavoured: every virtual register spills to a frame
    slot, promoted named scalars live in callee-saved registers, address
    fields are left symbolic ([fixup]) and resolved by the linker in a
    second pass. Equivalence-point markers carry the live-value records
    later serialized into the [.stackmaps] section. *)

open Dapper_isa
open Dapper_ir
open Dapper_binary

type fixup =
  | Fix_none
  | Fix_block of Ir.label   (** branch to an IR block *)
  | Fix_item of int         (** branch to an item index in this function *)
  | Fix_sym of string       (** absolute address of a symbol *)

type item = { ins : Minstr.t; fix : fixup }

type ep_marker = {
  m_index : int;                        (** item index of the trap / call *)
  m_id : int;
  m_kind : Stackmap.ep_kind;
  m_live : Stackmap.live_value list;
}

type sel_func = {
  sf_name : string;
  sf_items : item array;
  sf_block_starts : int array;
  sf_eps : ep_marker list;
  sf_frame : Frame.t;
}

exception Select_error of string

(** [select opts arch ~tls f] — [tls] maps each thread-local variable to
    its byte offset within a thread's TLS block. *)
val select : Opts.t -> Arch.t -> tls:(string * int) list -> Ir.func -> sel_func

(** Sum of encoded sizes of all items (layout pass). *)
val code_size : Arch.t -> sel_func -> int

(** Per-item byte offsets within the function. *)
val item_offsets : Arch.t -> sel_func -> int array

(** Rewrite an instruction's address field (used when resolving fixups). *)
val with_target : Minstr.t -> int64 -> Minstr.t
