open Dapper_isa

(* Item indices that control flow can enter other than by fallthrough:
   fusing the instruction at such an index into its predecessor would
   corrupt a branch target. *)
let jump_targets (sf : Select.sel_func) =
  let t = Hashtbl.create 64 in
  Array.iter (fun ix -> Hashtbl.replace t ix ()) sf.sf_block_starts;
  Array.iter
    (fun (it : Select.item) ->
      match it.fix with
      | Select.Fix_item ix -> Hashtbl.replace t ix ()
      | Select.Fix_none | Select.Fix_block _ | Select.Fix_sym _ -> ())
    sf.sf_items;
  List.iter
    (fun (m : Select.ep_marker) -> Hashtbl.replace t (m.m_index + 1) ())
    sf.sf_eps;
  t

let run (sf : Select.sel_func) =
  let n = Array.length sf.sf_items in
  let targets = jump_targets sf in
  let fused = Array.make n false in  (* item i absorbed its successor *)
  let removed = Array.make n false in
  for i = 0 to n - 2 do
    if (not removed.(i)) && (not fused.(i))
       && not (Hashtbl.mem targets (i + 1))
    then begin
      let a = sf.sf_items.(i) and b = sf.sf_items.(i + 1) in
      if a.fix = Select.Fix_none && b.fix = Select.Fix_none then
        match (a.ins, b.ins) with
        | Minstr.Store (r1, b1, o1), Minstr.Store (r2, b2, o2)
          when b1 = b2 && o2 = o1 + 8 ->
          fused.(i) <- true;
          removed.(i + 1) <- true;
          sf.sf_items.(i) <- { a with ins = Minstr.Store_pair (r1, r2, b1, o1) }
        | Minstr.Store (r1, b1, o1), Minstr.Store (r2, b2, o2)
          when b1 = b2 && o2 = o1 - 8 ->
          fused.(i) <- true;
          removed.(i + 1) <- true;
          sf.sf_items.(i) <- { a with ins = Minstr.Store_pair (r2, r1, b1, o2) }
        | Minstr.Load (r1, b1, o1), Minstr.Load (r2, b2, o2)
          when b1 = b2 && o2 = o1 + 8 && r1 <> b1 && r1 <> r2 ->
          fused.(i) <- true;
          removed.(i + 1) <- true;
          sf.sf_items.(i) <- { a with ins = Minstr.Load_pair (r1, r2, b1, o1) }
        | Minstr.Load (r1, b1, o1), Minstr.Load (r2, b2, o2)
          when b1 = b2 && o2 = o1 - 8 && r2 <> b1 && r1 <> r2 ->
          fused.(i) <- true;
          removed.(i + 1) <- true;
          sf.sf_items.(i) <- { a with ins = Minstr.Load_pair (r2, r1, b1, o2) }
        | _ -> ()
    end
  done;
  (* Compact, building the old->new index map. *)
  let remap = Array.make (n + 1) 0 in
  let out = ref [] in
  let next = ref 0 in
  for i = 0 to n - 1 do
    remap.(i) <- !next;
    if not removed.(i) then begin
      out := sf.sf_items.(i) :: !out;
      incr next
    end
  done;
  remap.(n) <- !next;
  let items =
    Array.of_list (List.rev_map
      (fun (it : Select.item) ->
        match it.fix with
        | Select.Fix_item ix -> { it with fix = Select.Fix_item remap.(ix) }
        | Select.Fix_none | Select.Fix_block _ | Select.Fix_sym _ -> it)
      !out)
  in
  { sf with
    sf_items = items;
    sf_block_starts = Array.map (fun ix -> remap.(ix)) sf.sf_block_starts;
    sf_eps = List.map (fun (m : Select.ep_marker) -> { m with m_index = remap.(m.m_index) }) sf.sf_eps }
