open Dapper_isa

let externs =
  [ ("exit", 1); ("write", 3); ("sbrk", 1); ("spawn", 2); ("join", 1);
    ("lock", 1); ("unlock", 1); ("clock", 0); ("yield", 0) ]

let process_exit_stub = "__process_exit_stub"
let thread_exit_stub = "__thread_exit_stub"

(* crit_depth lives at offset 0 of the TLS block; the TLS register is
   offset by the architecture-specific libc bias. *)
let crit_rmw arch delta =
  let s0 = List.nth (Arch.scratch arch) 0 in
  let s1 = List.nth (Arch.scratch arch) 1 in
  let off = -Arch.tls_offset arch in
  [ Minstr.Tls_get s0;
    Minstr.Load (s1, s0, off);
    Minstr.Binopi (Add, s1, s1, Int64.of_int delta);
    Minstr.Store (s1, s0, off) ]

let functions arch =
  let sc k = Minstr.Syscall (Arch.syscall_number arch k) in
  let exit_stub =
    (* Pass the function's return value (still in the return register) to
       the exit syscall as its first argument. *)
    let ret = Arch.ret_reg arch in
    let arg0 = List.hd (Arch.arg_regs arch) in
    (if ret = arg0 then [] else [ Minstr.Mov (arg0, ret) ]) @ [ sc `Exit; Minstr.Trap ]
  in
  [ (process_exit_stub, exit_stub);
    (thread_exit_stub, exit_stub);
    ("exit", [ sc `Exit; Minstr.Trap ]);
    ("write", [ sc `Write; Minstr.Ret ]);
    ("sbrk", [ sc `Sbrk; Minstr.Ret ]);
    ("spawn", [ sc `Spawn; Minstr.Ret ]);
    ("join", [ sc `Join; Minstr.Ret ]);
    ("lock", (sc `Mutex_lock :: crit_rmw arch 1) @ [ Minstr.Ret ]);
    ("unlock", crit_rmw arch (-1) @ [ sc `Mutex_unlock; Minstr.Ret ]);
    ("clock", [ sc `Clock; Minstr.Ret ]);
    ("yield", [ sc `Yield; Minstr.Ret ]) ]
