(** Per-architecture stack frame layout for one IR function.

    Geometry (identical on both ISAs, by construction of the prologues):

    {v
      [fp + 8]  return address (aarch64 leaf: still in the link register)
      [fp + 0]  caller's frame pointer
      [fp - 8 ...]                callee-saved register save area
      [fp - save ...]             named slots (locals, arrays) - shuffled
      [fp - save - named ...]     temporary spill slots (one per vreg)
      sp = fp - frame_size
    v}

    Offsets are fp-relative; named-slot offsets are what the stack
    shuffler permutes. *)

open Dapper_isa
open Dapper_ir

type t = {
  arch : Arch.t;
  slot_offsets : int array;       (** per named slot; meaningless if promoted *)
  promoted : (int * int) list;    (** slot id -> callee-saved register *)
  saved : (int * int) list;       (** callee-saved register -> save offset *)
  named_lo : int;                 (** lowest fp-relative offset of the named area *)
  named_hi : int;                 (** one past the highest (= -save_bytes) *)
  temp_offsets : int array;       (** per vreg *)
  frame_size : int;
  leaf : bool;
}

val layout : Opts.t -> Arch.t -> Ir.func -> t

(** Register holding slot [s], if promoted. *)
val promoted_reg : t -> int -> int option
