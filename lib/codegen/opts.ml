(** Backend options, exposed so benches can ablate design choices. *)

type t = {
  promote : bool;
      (** promote eligible scalars to callee-saved registers (the source
          of cross-ISA register/stack location asymmetry) *)
  backedge_checkers : bool;
      (** also instrument loop headers as equivalence points *)
  arm_pair_fusion : bool;
      (** fuse adjacent aarch64 stack accesses into ldp/stp (excluded
          from shuffling; lowers aarch64 entropy as in Fig. 10) *)
  pad_quantum : int;
      (** round every function's padded size up to this multiple
          (>= 16). Larger quanta leave slack so revised function bodies
          keep the same layout — what makes hot updates ({!Dsu})
          applicable to grown functions. *)
}

let default =
  { promote = true; backedge_checkers = false; arm_pair_fusion = true; pad_quantum = 16 }
