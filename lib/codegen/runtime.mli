(** The runtime library compiled into every binary: syscall wrappers
    (frameless leaves, like libc stubs) and the bottom-of-stack exit
    stubs. Blocking wrappers ([join], [lock]) place the [Syscall] first so
    that a blocked thread can be rolled back to the caller's call-site
    equivalence point and simply re-execute the call after restore. *)

open Dapper_isa

(** Extern functions IR code may call directly: (name, arity). *)
val externs : (string * int) list

(** Wrapper and stub bodies for one architecture, in a fixed order
    starting with the two exit stubs. *)
val functions : Arch.t -> (string * Minstr.t list) list

val process_exit_stub : string
val thread_exit_stub : string
