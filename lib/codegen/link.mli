(** Whole-module compilation: IR -> one binary per architecture with a
    unified (aligned) address space.

    As in the paper (Section III-D1), both binaries are generated from
    the same IR; a gold-linker-style alignment pass pads every function
    with nops to the larger of its two encodings so that every symbol
    has the same address on both architectures, keeping code and data
    pointers valid across migration. *)

open Dapper_isa
open Dapper_ir
open Dapper_binary

type compiled = {
  cp_app : string;
  cp_x86 : Binary.t;
  cp_arm : Binary.t;
  cp_ir : Ir.modul;
}

exception Link_error of string

(** Compile and link. Raises [Link_error] on IR validation failures,
    missing [main], or symbol collisions with the runtime library. *)
val compile : ?opts:Opts.t -> app:string -> Ir.modul -> compiled

val binary_for : compiled -> Arch.t -> Binary.t

(** Build a "Popcorn-like" binary variant: the same program with the
    state-transformation runtime linked {e into} the binary's text (an
    inline migration runtime), used as the attack-surface baseline for
    Fig. 11. The extra code is the given IR module (typically the
    rewriter logic compiled as IR). *)
val compile_with_inline_runtime :
  ?opts:Opts.t -> app:string -> runtime_ir:Ir.modul -> Ir.modul -> compiled
