open Dapper_isa
open Dapper_ir
open Dapper_binary

type fixup =
  | Fix_none
  | Fix_block of Ir.label
  | Fix_item of int
  | Fix_sym of string

type item = { ins : Minstr.t; fix : fixup }

type ep_marker = {
  m_index : int;
  m_id : int;
  m_kind : Stackmap.ep_kind;
  m_live : Stackmap.live_value list;
}

type sel_func = {
  sf_name : string;
  sf_items : item array;
  sf_block_starts : int array;
  sf_eps : ep_marker list;
  sf_frame : Frame.t;
}

exception Select_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Select_error s)) fmt

(* Symbolic addresses are encoded with this placeholder so that pass-1
   sizes match pass-2 (all symbol addresses fit in 32 bits). *)
let addr_placeholder = 0x0040_0000L

let lv_ty_of_ir = function
  | Ir.I64 -> Stackmap.Lv_i64
  | Ir.F64 -> Stackmap.Lv_f64
  | Ir.Ptr -> Stackmap.Lv_ptr

type st = {
  opts : Opts.t;
  arch : Arch.t;
  tls : (string * int) list;
  func : Ir.func;
  frame : Frame.t;
  origin : Ir.slot_id option array;    (* vreg -> rematerializable slot address *)
  mutable items : item list;           (* reversed *)
  mutable count : int;
  mutable eps : ep_marker list;
  mutable ep_next : int;
  block_starts : int array;
  live : Ir.vreg list array array;
  block_live_in : Ir.vreg list array;
}

let emit st ?(fix = Fix_none) ins =
  st.items <- { ins; fix } :: st.items;
  st.count <- st.count + 1

let fp st = Arch.fp st.arch
let s0 st = List.nth (Arch.scratch st.arch) 0
let s1 st = List.nth (Arch.scratch st.arch) 1
let s2 st = List.nth (Arch.scratch st.arch) 2

(* Materialize an IR value into [dst]. *)
let load_value st (v : Ir.value) dst =
  match v with
  | Ir.Imm i -> emit st (Minstr.Movi (dst, i))
  | Ir.Fimm f -> emit st (Minstr.Movi (dst, Int64.bits_of_float f))
  | Ir.Global_addr g -> emit st ~fix:(Fix_sym g) (Minstr.Movi (dst, addr_placeholder))
  | Ir.Func_addr g -> emit st ~fix:(Fix_sym g) (Minstr.Movi (dst, addr_placeholder))
  | Ir.Vreg r ->
    (match st.origin.(r) with
     | Some s -> emit st (Minstr.Binopi (Add, dst, fp st, Int64.of_int st.frame.slot_offsets.(s)))
     | None -> emit st (Minstr.Load (dst, fp st, st.frame.temp_offsets.(r))))

let store_temp st d src = emit st (Minstr.Store (src, fp st, st.frame.temp_offsets.(d)))

let fits_s32 v = v >= -0x8000_0000L && v <= 0x7FFF_FFFFL

let is_float_op : Minstr.binop -> bool = function
  | Fadd | Fsub | Fmul | Fdiv | Fcmpeq | Fcmplt | Fcmple -> true
  | Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar
  | Cmpeq | Cmpne | Cmplt | Cmple | Cmpgt | Cmpge | Cmpult -> false

(* Live-value records for an equivalence point: all named slots plus the
   given live temporaries (rematerializable slot addresses excluded). *)
let live_records st (temps : Ir.vreg list) =
  let slots =
    List.map
      (fun (s : Ir.slot) ->
        let loc =
          match Frame.promoted_reg st.frame s.sl_id with
          | Some r -> Stackmap.Reg r
          | None -> Stackmap.Frame st.frame.slot_offsets.(s.sl_id)
        in
        { Stackmap.lv_key = Stackmap.Slot s.sl_id; lv_name = s.sl_name;
          lv_ty = lv_ty_of_ir s.sl_ty; lv_size = s.sl_size; lv_loc = loc })
      st.func.fslots
  in
  let temps =
    List.filter_map
      (fun v ->
        match st.origin.(v) with
        | Some _ -> None
        | None ->
          Some
            { Stackmap.lv_key = Stackmap.Temp v; lv_name = Printf.sprintf "t%d" v;
              lv_ty = lv_ty_of_ir st.func.fvreg_tys.(v); lv_size = 8;
              lv_loc = Stackmap.Frame st.frame.temp_offsets.(v) })
      temps
  in
  slots @ temps

let add_ep st ~index ~kind ~temps =
  let id = st.ep_next in
  st.ep_next <- id + 1;
  st.eps <- { m_index = index; m_id = id; m_kind = kind; m_live = live_records st temps } :: st.eps

(* The inline dapper_checker: read the global flag; if raised and the
   thread is not inside a critical section, hit the breakpoint. The trap
   is the equivalence point. *)
let emit_checker st ~kind ~temps =
  let tls_off = Arch.tls_offset st.arch in
  let base = st.count in
  emit st ~fix:(Fix_sym "__dapper_flag") (Minstr.Movi (s0 st, addr_placeholder));
  emit st (Minstr.Load (s0 st, s0 st, 0));
  emit st ~fix:(Fix_item (base + 7)) (Minstr.Jz (s0 st, addr_placeholder));
  emit st (Minstr.Tls_get (s1 st));
  emit st (Minstr.Load (s1 st, s1 st, -tls_off));
  emit st ~fix:(Fix_item (base + 7)) (Minstr.Jnz (s1 st, addr_placeholder));
  add_ep st ~index:(base + 6) ~kind ~temps;
  emit st Minstr.Trap

let emit_prologue st =
  let sp = Arch.sp st.arch and fpr = fp st in
  let fs = st.frame.frame_size in
  (match st.arch with
   | Arch.X86_64 ->
     emit st (Minstr.Adjust_sp (-8));
     emit st (Minstr.Store (fpr, sp, 0));
     emit st (Minstr.Mov (fpr, sp));
     emit st (Minstr.Adjust_sp (-fs))
   | Arch.Aarch64 ->
     emit st (Minstr.Adjust_sp (-(fs + 16)));
     emit st (Minstr.Store (fpr, sp, fs));
     if not st.frame.leaf then emit st (Minstr.Store (30, sp, fs + 8));
     emit st (Minstr.Binopi (Add, fpr, sp, Int64.of_int fs)));
  (* Save callee-saved registers used for promotion. *)
  List.iter (fun (r, off) -> emit st (Minstr.Store (r, fpr, off))) st.frame.saved;
  (* Place incoming arguments. *)
  let args = Arch.arg_regs st.arch in
  List.iteri
    (fun j (_ : string * Ir.ty) ->
      let src = List.nth args j in
      match Frame.promoted_reg st.frame j with
      | Some preg -> emit st (Minstr.Mov (preg, src))
      | None -> emit st (Minstr.Store (src, fp st, st.frame.slot_offsets.(j))))
    st.func.fparams

let emit_epilogue st =
  let sp = Arch.sp st.arch and fpr = fp st in
  List.iter (fun (r, off) -> emit st (Minstr.Load (r, fpr, off))) st.frame.saved;
  match st.arch with
  | Arch.X86_64 ->
    emit st (Minstr.Mov (sp, fpr));
    emit st (Minstr.Load (fpr, sp, 0));
    emit st (Minstr.Adjust_sp 8);
    emit st Minstr.Ret
  | Arch.Aarch64 ->
    if not st.frame.leaf then emit st (Minstr.Load (30, fpr, 8));
    emit st (Minstr.Binopi (Add, sp, fpr, 16L));
    emit st (Minstr.Load (fpr, fpr, 0));
    emit st Minstr.Ret

let select_instr st bi idx (i : Ir.instr) =
  match i with
  | Ir.Slot_addr (d, s) ->
    (* Rematerialized at each use when single-def; otherwise computed into
       the temp slot like any other value. *)
    if st.origin.(d) = None then begin
      emit st (Minstr.Binopi (Add, s0 st, fp st, Int64.of_int st.frame.slot_offsets.(s)));
      store_temp st d (s0 st)
    end
  | Ir.Binop (op, d, a, b) ->
    load_value st a (s0 st);
    (match b with
     | Ir.Imm v when fits_s32 v && not (is_float_op op) ->
       emit st (Minstr.Binopi (op, s0 st, s0 st, v))
     | _ ->
       load_value st b (s1 st);
       emit st (Minstr.Binop (op, s0 st, s0 st, s1 st)));
    store_temp st d (s0 st)
  | Ir.Unop (op, d, a) ->
    load_value st a (s0 st);
    emit st (Minstr.Unop (op, s0 st, s0 st));
    store_temp st d (s0 st)
  | Ir.Load (d, addr) ->
    (match addr with
     | Ir.Vreg r when st.origin.(r) <> None ->
       let s = Option.get st.origin.(r) in
       emit st (Minstr.Load (s0 st, fp st, st.frame.slot_offsets.(s)))
     | _ ->
       load_value st addr (s0 st);
       emit st (Minstr.Load (s0 st, s0 st, 0)));
    store_temp st d (s0 st)
  | Ir.Store (v, addr) ->
    load_value st v (s0 st);
    (match addr with
     | Ir.Vreg r when st.origin.(r) <> None ->
       let s = Option.get st.origin.(r) in
       emit st (Minstr.Store (s0 st, fp st, st.frame.slot_offsets.(s)))
     | _ ->
       load_value st addr (s1 st);
       emit st (Minstr.Store (s0 st, s1 st, 0)))
  | Ir.Load8 (d, addr) ->
    load_value st addr (s0 st);
    emit st (Minstr.Load8 (s1 st, s0 st, 0));
    store_temp st d (s1 st)
  | Ir.Store8 (v, addr) ->
    load_value st v (s0 st);
    load_value st addr (s1 st);
    emit st (Minstr.Store8 (s0 st, s1 st, 0))
  | Ir.Slot_load (d, s) ->
    (match Frame.promoted_reg st.frame s with
     | Some preg -> emit st (Minstr.Mov (s0 st, preg))
     | None -> emit st (Minstr.Load (s0 st, fp st, st.frame.slot_offsets.(s))));
    store_temp st d (s0 st)
  | Ir.Slot_store (v, s) ->
    load_value st v (s0 st);
    (match Frame.promoted_reg st.frame s with
     | Some preg -> emit st (Minstr.Mov (preg, s0 st))
     | None -> emit st (Minstr.Store (s0 st, fp st, st.frame.slot_offsets.(s))))
  | Ir.Tls_addr (d, name) ->
    (* The TLS base register includes the architecture-specific libc
       offset; subtract it back out so the computed address is the true
       block-relative variable address (paper Section III-C, TLS). *)
    let var_off =
      match List.assoc_opt name st.tls with
      | Some o -> o
      | None -> fail "%s: unknown tls variable %s" st.func.fname name
    in
    let delta = var_off - Arch.tls_offset st.arch in
    emit st (Minstr.Tls_get (s0 st));
    emit st (Minstr.Binopi (Add, s0 st, s0 st, Int64.of_int delta));
    store_temp st d (s0 st)
  | Ir.Call (dst, callee, args) ->
    if List.length args > List.length (Arch.arg_regs st.arch) then
      fail "%s: too many call arguments" st.func.fname;
    List.iteri
      (fun j a ->
        load_value st a (s0 st);
        emit st (Minstr.Mov (List.nth (Arch.arg_regs st.arch) j, s0 st)))
      args;
    let call_index =
      match callee with
      | Ir.Direct name ->
        let ix = st.count in
        emit st ~fix:(Fix_sym name) (Minstr.Call addr_placeholder);
        ix
      | Ir.Indirect v ->
        load_value st v (s2 st);
        let ix = st.count in
        emit st (Minstr.Call_reg (s2 st));
        ix
    in
    (* Live temporaries across this call: live-after minus the call's dst. *)
    let live_after = st.live.(bi).(idx) in
    let temps = match dst with
      | Some d -> List.filter (fun v -> v <> d) live_after
      | None -> live_after
    in
    add_ep st ~index:call_index ~kind:(Stackmap.Call_site { cs_nargs = List.length args })
      ~temps;
    (match dst with
     | Some d ->
       emit st (Minstr.Mov (s0 st, Arch.ret_reg st.arch));
       store_temp st d (s0 st)
     | None -> ())

(* Block [bi] is a loop header if some block with label >= bi branches to
   it (a backward edge under the textual block order). *)
let is_loop_header (f : Ir.func) bi =
  Array.exists
    (fun (b : Ir.block) ->
      b.blabel >= bi
      && List.mem bi
           (match b.term with Ir.Ret _ -> [] | Ir.Br l -> [ l ] | Ir.Cbr (_, a, c) -> [ a; c ]))
    f.fblocks

let live_in_of_block st bi = st.block_live_in.(bi)

let select opts arch ~tls (f : Ir.func) =
  let frame = Frame.layout opts arch f in
  (* A vreg is rematerializable as a slot address only when its single
     definition is that Slot_addr (the IR is not necessarily SSA). *)
  let nv = max (Ir.vreg_count f) 1 in
  let origin = Array.make nv None in
  let defs = Array.make nv 0 in
  Array.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun i ->
          (match i with
           | Ir.Binop (_, d, _, _) | Ir.Unop (_, d, _) | Ir.Load (d, _)
           | Ir.Load8 (d, _) | Ir.Slot_addr (d, _) | Ir.Slot_load (d, _)
           | Ir.Tls_addr (d, _) ->
             defs.(d) <- defs.(d) + 1
           | Ir.Call (Some d, _, _) -> defs.(d) <- defs.(d) + 1
           | Ir.Call (None, _, _) | Ir.Store _ | Ir.Store8 _ | Ir.Slot_store _ -> ());
          match i with
          | Ir.Slot_addr (d, s) -> origin.(d) <- Some s
          | _ -> ())
        b.instrs)
    f.fblocks;
  for v = 0 to nv - 1 do
    if defs.(v) > 1 then origin.(v) <- None
  done;
  let st =
    { opts; arch; tls; func = f; frame; origin; items = []; count = 0; eps = [];
      ep_next = 0; block_starts = Array.make (Array.length f.fblocks) 0;
      live = Ir.liveness f; block_live_in = Ir.block_live_in f }
  in
  emit_prologue st;
  emit_checker st ~kind:Stackmap.Entry ~temps:[];
  Array.iteri
    (fun bi (b : Ir.block) ->
      st.block_starts.(bi) <- st.count;
      if opts.backedge_checkers && bi > 0 && is_loop_header f bi then
        emit_checker st ~kind:Stackmap.Backedge ~temps:(live_in_of_block st bi);
      List.iteri (fun idx i -> select_instr st bi idx i) b.instrs;
      match b.term with
      | Ir.Ret v ->
        (match v with
         | Some v -> load_value st v (Arch.ret_reg arch)
         | None -> ());
        emit_epilogue st
      | Ir.Br l -> emit st ~fix:(Fix_block l) (Minstr.Jmp addr_placeholder)
      | Ir.Cbr (v, a, b') ->
        load_value st v (s0 st);
        emit st ~fix:(Fix_block a) (Minstr.Jnz (s0 st, addr_placeholder));
        emit st ~fix:(Fix_block b') (Minstr.Jmp addr_placeholder))
    f.fblocks;
  { sf_name = f.fname; sf_items = Array.of_list (List.rev st.items);
    sf_block_starts = st.block_starts; sf_eps = List.rev st.eps; sf_frame = frame }

let code_size arch sf =
  Array.fold_left (fun acc it -> acc + Encoding.size arch it.ins) 0 sf.sf_items

let item_offsets arch sf =
  let n = Array.length sf.sf_items in
  let offs = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    offs.(i + 1) <- offs.(i) + Encoding.size arch sf.sf_items.(i).ins
  done;
  offs

let with_target (i : Minstr.t) addr : Minstr.t =
  match i with
  | Jmp _ -> Jmp addr
  | Jz (c, _) -> Jz (c, addr)
  | Jnz (c, _) -> Jnz (c, addr)
  | Call _ -> Call addr
  | Movi (d, _) -> Movi (d, addr)
  | Binopi (op, d, a, _) -> Binopi (op, d, a, addr)
  | _ -> invalid_arg "Select.with_target: instruction has no target field"
