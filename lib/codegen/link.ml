open Dapper_util
open Dapper_isa
open Dapper_ir
open Dapper_binary

type compiled = {
  cp_app : string;
  cp_x86 : Binary.t;
  cp_arm : Binary.t;
  cp_ir : Ir.modul;
}

exception Link_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Link_error s)) fmt

let align n a = (n + a - 1) / a * a

(* ----- TLS layout: crit_depth header at offset 0, variables after ----- *)

let tls_layout (m : Ir.modul) =
  let cursor = ref 8 in
  let offsets =
    List.map
      (fun (t : Ir.tls_var) ->
        let off = !cursor in
        cursor := !cursor + align (max t.t_size 8) 8;
        (t.t_name, off))
      m.m_tls
  in
  (offsets, !cursor)

(* ----- data layout: the dapper flag first, then globals ----- *)

let data_layout (m : Ir.modul) =
  let cursor = ref 0 in
  let entries = ref [] in
  let add name size init =
    let off = align !cursor 16 in
    cursor := off + size;
    entries := (name, off, size, init) :: !entries
  in
  add "__dapper_flag" 8 None;
  List.iter (fun (g : Ir.global) -> add g.g_name g.g_size g.g_init) m.m_globals;
  let entries = List.rev !entries in
  let total = align !cursor 16 in
  let data = Bytes.make total '\000' in
  List.iter
    (fun (_, off, size, init) ->
      match init with
      | Some s ->
        if String.length s > size then fail "global initializer larger than global";
        Bytes.blit_string s 0 data off (String.length s)
      | None -> ())
    entries;
  (entries, Bytes.to_string data)

(* ----- per-architecture compiled function ----- *)

type cfunc =
  | C_ir of Select.sel_func
  | C_rt of Minstr.t list

let cfunc_size arch = function
  | C_ir sf -> Select.code_size arch sf
  | C_rt items -> List.fold_left (fun acc i -> acc + Encoding.size arch i) 0 items

let encode_cfunc arch ~addr ~padded ~sym_addr cf =
  let buf = Bytebuf.create 256 in
  (match cf with
   | C_rt items -> List.iter (Encoding.encode arch buf) items
   | C_ir sf ->
     let offs = Select.item_offsets arch sf in
     Array.iteri
       (fun i (it : Select.item) ->
         let resolve target = Int64.add addr (Int64.of_int offs.(target)) in
         let ins =
           match it.fix with
           | Select.Fix_none -> it.ins
           | Select.Fix_item t -> Select.with_target it.ins (resolve t)
           | Select.Fix_block l -> Select.with_target it.ins (resolve sf.sf_block_starts.(l))
           | Select.Fix_sym s -> Select.with_target it.ins (sym_addr s)
         in
         ignore i;
         Encoding.encode arch buf ins)
       sf.sf_items);
  let body = Bytebuf.contents buf in
  if String.length body > padded then fail "function body exceeds padded size";
  let pad = Bytebuf.create 16 in
  let nop = Encoding.nop_bytes arch in
  let remaining = padded - String.length body in
  if remaining mod String.length nop <> 0 then
    fail "padding not a multiple of nop size";
  for _ = 1 to remaining / String.length nop do
    Bytebuf.add_bytes pad nop
  done;
  body ^ Bytebuf.contents pad

let func_map_of arch ~addr ~padded = function
  | C_rt _ ->
    fun name ->
      { Stackmap.fm_name = name; fm_addr = addr; fm_code_size = padded;
        fm_frame_size = 0; fm_saved = []; fm_promoted = []; fm_leaf = true;
        fm_eqpoints = [] }
  | C_ir sf ->
    fun name ->
      let offs = Select.item_offsets arch sf in
      let eqpoints =
        List.map
          (fun (m : Select.ep_marker) ->
            { Stackmap.ep_id = m.m_id; ep_kind = m.m_kind;
              ep_addr = Int64.add addr (Int64.of_int offs.(m.m_index));
              ep_resume = Int64.add addr (Int64.of_int offs.(m.m_index + 1));
              ep_live = m.m_live })
          sf.sf_eps
      in
      { Stackmap.fm_name = name; fm_addr = addr; fm_code_size = padded;
        fm_frame_size = sf.sf_frame.Frame.frame_size;
        fm_saved = sf.sf_frame.Frame.saved;
        fm_promoted = sf.sf_frame.Frame.promoted;
        fm_leaf = sf.sf_frame.Frame.leaf;
        fm_eqpoints = eqpoints }

let compile ?(opts = Opts.default) ~app (m : Ir.modul) =
  (match Ir.validate ~externs:Runtime.externs m with
   | [] -> ()
   | errs -> fail "IR validation failed for %s:\n  %s" app (String.concat "\n  " errs));
  let rt_names = List.map fst (Runtime.functions Arch.X86_64) in
  List.iter
    (fun (f : Ir.func) ->
      if List.mem f.fname rt_names then
        fail "function %s collides with the runtime library" f.fname)
    m.m_funcs;
  if not (List.exists (fun (f : Ir.func) -> f.fname = "main") m.m_funcs) then
    fail "%s: no main function" app;
  let tls_offsets, tls_size = tls_layout m in
  let data_entries, data_bytes = data_layout m in
  (* Select everything for both architectures. *)
  let cfuncs arch =
    let rt = List.map (fun (n, items) -> (n, C_rt items)) (Runtime.functions arch) in
    let irf =
      List.map
        (fun f ->
          let sf = Select.select opts arch ~tls:tls_offsets f in
          let sf =
            if arch = Arch.Aarch64 && opts.arm_pair_fusion then Pairfuse.run sf else sf
          in
          (f.Ir.fname, C_ir sf))
        m.m_funcs
    in
    rt @ irf
  in
  let x86_funcs = cfuncs Arch.X86_64 in
  let arm_funcs = cfuncs Arch.Aarch64 in
  (* Alignment pass: common padded size, common address. *)
  let layout = ref [] in
  let cursor = ref Layout.code_base in
  List.iter2
    (fun (name, cx) (name', ca) ->
      assert (name = name');
      let size = max (cfunc_size Arch.X86_64 cx) (cfunc_size Arch.Aarch64 ca) in
      if opts.pad_quantum < 16 || opts.pad_quantum mod 16 <> 0 then
        fail "pad_quantum must be a positive multiple of 16";
      let padded = align size opts.pad_quantum in
      layout := (name, !cursor, padded, cx, ca) :: !layout;
      cursor := Int64.add !cursor (Int64.of_int padded))
    x86_funcs arm_funcs;
  let layout = List.rev !layout in
  (* Symbol table (same for both architectures). *)
  let func_syms =
    List.map
      (fun (name, addr, padded, _, _) ->
        { Binary.sym_name = name; sym_addr = addr; sym_size = padded;
          sym_kind = Binary.Sym_func })
      layout
  in
  let data_syms =
    List.map
      (fun (name, off, size, _) ->
        { Binary.sym_name = name; sym_addr = Int64.add Layout.data_base (Int64.of_int off);
          sym_size = size; sym_kind = Binary.Sym_object })
      data_entries
  in
  let tls_syms =
    List.map
      (fun (name, off) ->
        { Binary.sym_name = name; sym_addr = Int64.of_int off; sym_size = 8;
          sym_kind = Binary.Sym_tls })
      tls_offsets
  in
  let symbols = func_syms @ data_syms @ tls_syms in
  let sym_addr s =
    match List.find_opt (fun sym -> sym.Binary.sym_name = s) (func_syms @ data_syms) with
    | Some sym -> sym.Binary.sym_addr
    | None -> fail "unresolved symbol %s" s
  in
  let build arch funcs =
    let text = Buffer.create 65536 in
    let maps = ref [] in
    List.iter2
      (fun (name, addr, padded, cx, ca) (name', cf) ->
        assert (name = name');
        ignore cx;
        ignore ca;
        Buffer.add_string text (encode_cfunc arch ~addr ~padded ~sym_addr cf);
        maps := func_map_of arch ~addr ~padded cf name :: !maps)
      layout funcs;
    let anchors =
      { Binary.a_entry = sym_addr "main";
        a_exit_stub = sym_addr Runtime.process_exit_stub;
        a_thread_exit_stub = sym_addr Runtime.thread_exit_stub;
        a_flag = sym_addr "__dapper_flag" }
    in
    { Binary.bin_app = app; bin_arch = arch;
      bin_sections =
        [ { Binary.sec_name = ".text"; sec_addr = Layout.code_base;
            sec_data = Buffer.contents text; sec_exec = true; sec_write = false };
          { Binary.sec_name = ".data"; sec_addr = Layout.data_base;
            sec_data = data_bytes; sec_exec = false; sec_write = true } ];
      bin_symbols = symbols;
      bin_stackmaps = List.rev !maps;
      bin_tls_size = tls_size;
      bin_tls_init = String.make tls_size '\000';
      bin_anchors = anchors }
  in
  { cp_app = app; cp_x86 = build Arch.X86_64 x86_funcs;
    cp_arm = build Arch.Aarch64 arm_funcs; cp_ir = m }

let binary_for c = function
  | Arch.X86_64 -> c.cp_x86
  | Arch.Aarch64 -> c.cp_arm

let compile_with_inline_runtime ?(opts = Opts.default) ~app ~runtime_ir (m : Ir.modul) =
  let prefix = "__popcorn_" in
  let rt_fun_names = List.map (fun (f : Ir.func) -> f.Ir.fname) runtime_ir.Ir.m_funcs in
  let rename n = if List.mem n rt_fun_names then prefix ^ n else n in
  let rename_value = function
    | Ir.Func_addr f -> Ir.Func_addr (rename f)
    | v -> v
  in
  let rename_instr = function
    | Ir.Call (d, Ir.Direct f, args) ->
      Ir.Call (d, Ir.Direct (rename f), List.map rename_value args)
    | Ir.Call (d, Ir.Indirect v, args) ->
      Ir.Call (d, Ir.Indirect (rename_value v), List.map rename_value args)
    | Ir.Binop (op, d, a, b) -> Ir.Binop (op, d, rename_value a, rename_value b)
    | Ir.Unop (op, d, a) -> Ir.Unop (op, d, rename_value a)
    | Ir.Load (d, a) -> Ir.Load (d, rename_value a)
    | Ir.Store (v, a) -> Ir.Store (rename_value v, rename_value a)
    | Ir.Load8 (d, a) -> Ir.Load8 (d, rename_value a)
    | Ir.Store8 (v, a) -> Ir.Store8 (rename_value v, rename_value a)
    | Ir.Slot_store (v, s) -> Ir.Slot_store (rename_value v, s)
    | (Ir.Slot_addr _ | Ir.Slot_load _ | Ir.Tls_addr _) as i -> i
  in
  let renamed_funcs =
    List.filter_map
      (fun (f : Ir.func) ->
        if f.fname = "main" then None
        else
          Some
            { f with
              Ir.fname = rename f.fname;
              fblocks =
                Array.map
                  (fun (b : Ir.block) -> { b with Ir.instrs = List.map rename_instr b.instrs })
                  f.fblocks })
      runtime_ir.Ir.m_funcs
  in
  let rename_global (g : Ir.global) = { g with Ir.g_name = prefix ^ g.g_name } in
  let renamed_funcs =
    List.map
      (fun (f : Ir.func) ->
        { f with
          Ir.fblocks =
            Array.map
              (fun (b : Ir.block) ->
                { b with
                  Ir.instrs =
                    List.map
                      (function
                        | Ir.Binop (op, d, a, b') ->
                          let rg = function
                            | Ir.Global_addr g -> Ir.Global_addr (prefix ^ g)
                            | v -> v
                          in
                          Ir.Binop (op, d, rg a, rg b')
                        | Ir.Load (d, Ir.Global_addr g) -> Ir.Load (d, Ir.Global_addr (prefix ^ g))
                        | Ir.Store (v, Ir.Global_addr g) ->
                          let v' =
                            match v with
                            | Ir.Global_addr g2 -> Ir.Global_addr (prefix ^ g2)
                            | v -> v
                          in
                          Ir.Store (v', Ir.Global_addr (prefix ^ g))
                        | Ir.Store (Ir.Global_addr g, a) -> Ir.Store (Ir.Global_addr (prefix ^ g), a)
                        | i -> i)
                      b.instrs })
              f.fblocks })
      renamed_funcs
  in
  let merged =
    { m with
      Ir.m_funcs = m.Ir.m_funcs @ renamed_funcs;
      m_globals = m.Ir.m_globals @ List.map rename_global runtime_ir.Ir.m_globals;
      m_tls = m.Ir.m_tls }
  in
  compile ~opts ~app merged
