(** aarch64 load/store-pair fusion.

    Rewrites adjacent same-base loads/stores at offsets [o] and [o+8]
    into a single ldp/stp, as real AArch64 backends do. Slots referenced
    through pair instructions are excluded from stack shuffling (the
    paper's stated reason aarch64 achieves lower entropy in Fig. 10). *)

val run : Select.sel_func -> Select.sel_func
