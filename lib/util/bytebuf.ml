type t = Buffer.t

let create n = Buffer.create n
let length = Buffer.length
let contents = Buffer.contents

let of_string s =
  let b = Buffer.create (String.length s) in
  Buffer.add_string b s;
  b

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let add_u16 b v =
  add_u8 b v;
  add_u8 b (v lsr 8)

let add_u32 b v =
  add_u16 b v;
  add_u16 b (v lsr 16)

let add_i64 b v =
  for i = 0 to 7 do
    add_u8 b (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF)
  done

let add_bytes = Buffer.add_string

let get_u8 s off = Char.code s.[off]
let get_u16 s off = get_u8 s off lor (get_u8 s (off + 1) lsl 8)
let get_u32 s off = get_u16 s off lor (get_u16 s (off + 2) lsl 16)

let get_i64 s off =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_u8 s (off + i)))
  done;
  !v

(* Buffer has no in-place mutation; rebuild via to_bytes once would be slow,
   so we keep a Bytes view trick: Buffer does not expose it, so we implement
   patching by copying out, patching, and re-adding. Patch targets are rare
   (branch fixups during emission), so emitters instead reserve and rewrite
   through these helpers that operate on the final byte image. *)
let patch buf off bytes =
  let s = Buffer.to_bytes buf in
  Bytes.blit_string bytes 0 s off (String.length bytes);
  Buffer.clear buf;
  Buffer.add_bytes buf s

let patch_u8 buf off v = patch buf off (String.make 1 (Char.chr (v land 0xFF)))

let patch_u32 buf off v =
  let b = Bytes.create 4 in
  for i = 0 to 3 do
    Bytes.set b i (Char.chr ((v lsr (8 * i)) land 0xFF))
  done;
  patch buf off (Bytes.to_string b)

let patch_i64 buf off v =
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set b i (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
  done;
  patch buf off (Bytes.to_string b)

(* FNV-1a (64-bit). The canonical content digest of the tree: image
   files, page payloads and transfer manifests all hash with it, so a
   checksum computed on one side of a link is comparable on the other. *)
let fnv64_offset = 0xcbf29ce484222325L
let fnv64_prime = 0x100000001b3L

let fnv64_fold h s =
  let h = ref h in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv64_prime)
    s;
  !h

let fnv64 s = fnv64_fold fnv64_offset s
