(** Immutable interval map over [int64] half-open intervals [\[lo, hi)],
    backed by sorted arrays and binary search.

    Replaces the linear [List.find_opt] interval scans on the rewriter's
    pointer-translation hot path: a lookup is O(log n) instead of O(n).
    Intervals are expected to be pairwise disjoint — with overlapping
    intervals a lookup returns the one with the greatest [lo] covering
    the point, which may differ from a first-match list scan (use
    {!disjoint} to check when the input is untrusted). *)

type 'a t

val empty : 'a t

(** Build from [(lo, hi, payload)] triples; the list is not required to
    be sorted. O(n log n). *)
val of_list : (int64 * int64 * 'a) list -> 'a t

val cardinal : 'a t -> int

(** [true] when no two intervals overlap (the precondition under which
    lookups agree with a first-match linear scan). *)
val disjoint : 'a t -> bool

(** Payload of the interval containing the point, if any. O(log n). *)
val find : 'a t -> int64 -> 'a option

(** Like {!find} but also returns the interval bounds. *)
val find_interval : 'a t -> int64 -> (int64 * int64 * 'a) option

(** Iterate in increasing [lo] order. *)
val iter : (int64 -> int64 -> 'a -> unit) -> 'a t -> unit
