type 'a entry = { e_time : float; e_key : int; e_seq : int; e_v : 'a }

type 'a t = {
  mutable heap : 'a entry array;  (* entries [0 .. len-1] form the heap *)
  mutable len : int;
  mutable seq : int;
  mutable pushes : int;
}

let create ?capacity:(_ = 0) () = { heap = [||]; len = 0; seq = 0; pushes = 0 }

let length h = h.len
let is_empty h = h.len = 0
let pushed h = h.pushes

(* Lexicographic (time, key, seq): seq is unique, so this is a total
   order and equal-priority entries pop in push order. *)
let less a b =
  a.e_time < b.e_time
  || (a.e_time = b.e_time
      && (a.e_key < b.e_key || (a.e_key = b.e_key && a.e_seq < b.e_seq)))

let swap h i j =
  let t = h.heap.(i) in
  h.heap.(i) <- h.heap.(j);
  h.heap.(j) <- t

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h.heap.(i) h.heap.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && less h.heap.(l) h.heap.(!smallest) then smallest := l;
  if r < h.len && less h.heap.(r) h.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h ?(key = 0) ~time v =
  if Float.is_nan time then invalid_arg "Event_heap.push: NaN time";
  let e = { e_time = time; e_key = key; e_seq = h.seq; e_v = v } in
  h.seq <- h.seq + 1;
  h.pushes <- h.pushes + 1;
  if h.len = Array.length h.heap then begin
    let cap = max 8 (2 * h.len) in
    let grown = Array.make cap e in
    Array.blit h.heap 0 grown 0 h.len;
    h.heap <- grown
  end;
  h.heap.(h.len) <- e;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let peek h = if h.len = 0 then None else Some (h.heap.(0).e_time, h.heap.(0).e_v)
let peek_time h = if h.len = 0 then None else Some h.heap.(0).e_time

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.heap.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.heap.(0) <- h.heap.(h.len);
      sift_down h 0
    end;
    Some (top.e_time, top.e_v)
  end

let clear h =
  h.heap <- [||];
  h.len <- 0

let drain h =
  let rec go acc = match pop h with None -> List.rev acc | Some e -> go (e :: acc) in
  go []
