(** Growable byte buffer with little-endian fixed-width accessors.

    Used for machine-code emission, raw page contents, and image
    serialization throughout the tree. *)

type t

val create : int -> t
val length : t -> int
val contents : t -> string
val of_string : string -> t

(** Appending. *)

val add_u8 : t -> int -> unit
val add_u16 : t -> int -> unit
val add_u32 : t -> int -> unit
val add_i64 : t -> int64 -> unit
val add_bytes : t -> string -> unit

(** Random-access reads over a string (decoder side). Raise
    [Invalid_argument] when out of bounds. *)

val get_u8 : string -> int -> int
val get_u16 : string -> int -> int
val get_u32 : string -> int -> int
val get_i64 : string -> int -> int64

(** In-place patching of already-emitted bytes. *)

val patch_u8 : t -> int -> int -> unit
val patch_u32 : t -> int -> int -> unit
val patch_i64 : t -> int -> int64 -> unit

(** {1 Content checksums}

    FNV-1a (64-bit) — the tree's canonical content digest, used for
    per-page and per-image checksums on image transfers. *)

(** [fnv64 s] digests [s] from the standard offset basis. *)
val fnv64 : string -> int64

(** [fnv64_fold h s] continues a digest [h] over [s], for multi-part
    payloads (file name + contents, page runs). *)
val fnv64_fold : int64 -> string -> int64
