(** Unified error surface for the migration pipeline.

    Every stage of a migration session — pause, dump, recode, transfer,
    restore — reports failures through the single variant {!t}, threaded
    as a [result] through the public APIs of [lib/criu] and [lib/core].
    The old per-module string exceptions ([Dump_error], [Restore_error],
    [Rewrite_error], [Unwind_error]) are gone from the public surface;
    internally modules may still raise the carrier exception {!Error}
    and convert it to a [result] at their boundary with {!protect}. *)

(** The pipeline stage an error belongs to, mirroring the session state
    machine (Paused -> Dumped -> Recoded -> Transferred -> Restored). *)
type stage = Pause | Dump | Recode | Transfer | Restore

val stage_name : stage -> string

type t =
  | Pause_budget_exhausted
      (** The drain budget ran out before all threads quiesced. *)
  | Not_at_equivalence_point of int * int64
      (** Thread [tid] stopped at [pc], which is not an equivalence
          point (e.g. a maliciously raised SIGTRAP). *)
  | Process_exited  (** The process ran to completion during the pause. *)
  | Dump_failed of string  (** Checkpoint image could not be produced. *)
  | Unwind_failed of string  (** Stack walk failed during recode. *)
  | Recode_failed of string  (** Cross-ISA state rewrite failed. *)
  | Shuffle_failed of string  (** Address-space re-randomization failed. *)
  | Layout_incompatible of string
      (** DSU: replacement binary changes the layout of a live frame. *)
  | Active_function of string
      (** DSU: a patched function is live on some stack. *)
  | Transfer_failed of string  (** Image transfer between nodes failed. *)
  | Restore_failed of string  (** Image could not be materialized. *)
  | Verify_failed of string
      (** Conformance verification found a violated invariant: a corrupt
          stack map (static verifier) or a state divergence between the
          source and the migrated twin (migration oracle). Structural —
          never retriable — and attributed to the recode stage, whose
          compiler→rewriter contract it polices. *)

val to_string : t -> string

(** The stage that produced the error. *)
val stage_of : t -> stage

(** [retriable e] is true for transient errors where letting the source
    run further and re-attempting the stage can succeed (pause-budget
    exhaustion, a still-active function); false for structural errors
    (arch mismatch, corrupt image) that will fail identically again. *)
val retriable : t -> bool

(** Internal carrier, raised inside [lib/criu]/[lib/core] and converted
    back to a [result] at public boundaries. It must not escape them. *)
exception Error of t

val raise_error : t -> 'a

(** [failf wrap fmt ...] raises {!Error} with [wrap msg]. *)
val failf : (string -> t) -> ('a, unit, string, 'b) format4 -> 'a

(** [protect f] runs [f ()], catching {!Error} as [Error t]. Foreign
    exceptions propagate unchanged. *)
val protect : (unit -> 'a) -> ('a, t) result

(** Unwrap [Ok], re-raising [Error e] as the carrier exception — for
    call sites already inside a {!protect} region (or tests/benches
    where failure is a bug). *)
val ok_exn : ('a, t) result -> 'a
