(** Unified error surface for the migration pipeline.

    Every stage of a migration session — pause, dump, recode, transfer,
    restore — reports failures through the single variant {!t}, threaded
    as a [result] through the public APIs of [lib/criu] and [lib/core].
    The old per-module string exceptions ([Dump_error], [Restore_error],
    [Rewrite_error], [Unwind_error]) are gone from the public surface;
    internally modules may still raise the carrier exception {!Error}
    and convert it to a [result] at their boundary with {!protect}. *)

(** The pipeline stage an error belongs to, mirroring the session state
    machine (Paused -> Dumped -> Recoded -> Transferred -> Restored ->
    Committed). [Commit] is the two-phase-commit acknowledgement: the
    destination drains outstanding lazy pages and verifies its state
    before the paused source is released. *)
type stage = Pause | Dump | Recode | Transfer | Restore | Commit

val stage_name : stage -> string

type t =
  | Pause_budget_exhausted
      (** The drain budget ran out before all threads quiesced. *)
  | Not_at_equivalence_point of int * int64
      (** Thread [tid] stopped at [pc], which is not an equivalence
          point (e.g. a maliciously raised SIGTRAP). *)
  | Process_exited  (** The process ran to completion during the pause. *)
  | Dump_failed of string  (** Checkpoint image could not be produced. *)
  | Unwind_failed of string  (** Stack walk failed during recode. *)
  | Recode_failed of string  (** Cross-ISA state rewrite failed. *)
  | Shuffle_failed of string  (** Address-space re-randomization failed. *)
  | Layout_incompatible of string
      (** DSU: replacement binary changes the layout of a live frame. *)
  | Active_function of string
      (** DSU: a patched function is live on some stack. *)
  | Transfer_failed of string  (** Image transfer between nodes failed. *)
  | Transfer_timeout of string
      (** A transfer (or page fetch) exhausted its bounded retries; the
          link may recover, so the whole stage is worth re-attempting. *)
  | Checksum_mismatch of string
      (** A received payload failed its FNV-1a checksum — corruption in
          flight; transient (a retransmission delivers clean bytes). *)
  | Restore_failed of string  (** Image could not be materialized. *)
  | Source_lost of string
      (** The source's page server became unreachable during post-copy
          paging, before the destination was committed. Structural for
          this session: the restore is aborted and the paused source
          (still held by its supervisor) is resumed. *)
  | Node_lost of string
      (** A destination node died mid-eviction. The migration rolls
          back; retriable because the scheduler can re-run the eviction
          on another node. *)
  | Commit_failed of string
      (** The destination's verified-restore acknowledgement failed (its
          observable state does not match the paused source). The source
          resumes; the half-restored destination is discarded. *)
  | Verify_failed of string
      (** Conformance verification found a violated invariant: a corrupt
          stack map (static verifier) or a state divergence between the
          source and the migrated twin (migration oracle). Structural —
          never retriable — and attributed to the recode stage, whose
          compiler→rewriter contract it polices. *)
  | Deadline_exceeded of stage * float
      (** A watchdog cancelled [stage] before running it because its
          projected cost (the carried ms) would blow the remaining pause
          budget. Retriable: the projection came from transient link or
          load conditions, and a later attempt (other transport, other
          rack, healthier history) can fit. *)

val to_string : t -> string

(** The stage that produced the error. *)
val stage_of : t -> stage

(** [retriable e] is true for transient errors where letting the source
    run further and re-attempting the stage can succeed (pause-budget
    exhaustion, a still-active function, a timed-out or corrupted
    transfer, a lost destination node); false for structural errors
    (arch mismatch, corrupt image, a lost source) that will fail
    identically again. The implementation is an exhaustive match — a
    new constructor does not compile until it is classified. *)
val retriable : t -> bool

(** One value per constructor, for exhaustive classification tests. *)
val examples : t list

(** Internal carrier, raised inside [lib/criu]/[lib/core] and converted
    back to a [result] at public boundaries. It must not escape them. *)
exception Error of t

val raise_error : t -> 'a

(** [failf wrap fmt ...] raises {!Error} with [wrap msg]. *)
val failf : (string -> t) -> ('a, unit, string, 'b) format4 -> 'a

(** [protect f] runs [f ()], catching {!Error} as [Error t]. Foreign
    exceptions propagate unchanged. *)
val protect : (unit -> 'a) -> ('a, t) result

(** Unwrap [Ok], re-raising [Error e] as the carrier exception — for
    call sites already inside a {!protect} region (or tests/benches
    where failure is a bug). *)
val ok_exn : ('a, t) result -> 'a
