type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = seed }
let copy t = { state = t.state }

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next t in
  { state = mix seed }

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0

let bool t = Int64.logand (next t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
