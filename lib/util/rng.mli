(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] so that experiments are reproducible run to run. *)

type t

(** [create seed] returns a generator whose stream is fully determined by
    [seed]. *)
val create : int64 -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] derives a new independent generator from [t], advancing [t]. *)
val split : t -> t

(** Next raw 64-bit value. *)
val next : t -> int64

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
val int : t -> int -> int

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [shuffle t a] permutes array [a] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)
val permutation : t -> int -> int array
