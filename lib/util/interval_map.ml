type 'a t = {
  lo : int64 array;
  hi : int64 array;
  payload : 'a array;
}

let empty = { lo = [||]; hi = [||]; payload = [||] }

let of_list intervals =
  let a = Array.of_list intervals in
  Array.sort (fun (l1, _, _) (l2, _, _) -> Int64.compare l1 l2) a;
  { lo = Array.map (fun (l, _, _) -> l) a;
    hi = Array.map (fun (_, h, _) -> h) a;
    payload = Array.map (fun (_, _, p) -> p) a }

let cardinal t = Array.length t.lo

let disjoint t =
  let n = Array.length t.lo in
  let rec go k = k >= n || (Int64.compare t.hi.(k - 1) t.lo.(k) <= 0 && go (k + 1)) in
  go 1

(* Greatest index whose [lo] is <= [v], or -1. *)
let rank t v =
  let lo = t.lo in
  let l = ref 0 and r = ref (Array.length lo - 1) and best = ref (-1) in
  while !l <= !r do
    let m = (!l + !r) / 2 in
    if Int64.compare lo.(m) v <= 0 then begin
      best := m;
      l := m + 1
    end
    else r := m - 1
  done;
  !best

let find_interval t v =
  let k = rank t v in
  if k >= 0 && Int64.compare v t.hi.(k) < 0 then Some (t.lo.(k), t.hi.(k), t.payload.(k))
  else None

let find t v =
  let k = rank t v in
  if k >= 0 && Int64.compare v t.hi.(k) < 0 then Some t.payload.(k) else None

let iter f t =
  for k = 0 to Array.length t.lo - 1 do
    f t.lo.(k) t.hi.(k) t.payload.(k)
  done
