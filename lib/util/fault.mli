(** The chaos plane: deterministic, seeded fault injection.

    A fault schedule is a seeded stream of injection decisions consulted
    by the pipeline at well-defined {!site}s — each page transfer, each
    eager image chunk, the source's reachability during post-copy
    paging, the destination's restore, a fleet node mid-eviction. Every
    decision is drawn from a splitmix64 stream derived from the seed, so
    a chaos run is replayable bit for bit: the same seed against the
    same pipeline produces the same faults in the same places.

    The plane only decides; the components it is threaded through
    ({!Transport}-level transmission, the {!Session} two-phase commit,
    the fleet scheduler) implement the injected failure and the recovery
    that must survive it. A schedule also keeps a {!log} of everything
    it injected, so harnesses can report fault counts per run. *)

(** Where a fault can strike. *)
type site =
  | Transfer_chunk  (** one named image file of an eager transfer in flight *)
  | Page_fetch      (** one demand-paged (post-copy) page in flight *)
  | Source_node     (** source page-server reachability during paging *)
  | Dest_restore    (** destination materialization / pre-ack failure *)
  | Dest_node       (** a fleet destination node, mid-eviction *)

val site_name : site -> string

(** What strikes. [Corrupt salt] carries seed material the consumer uses
    to pick the byte to flip ({!corrupt_byte}); [Delay ns] charges extra
    simulated-clock latency; [Crash] is a node-level loss. *)
type action =
  | Drop
  | Corrupt of int64
  | Delay of float
  | Crash

val action_name : action -> string

(** Per-site-class fault probabilities. Payload sites (transfer chunks,
    page fetches) draw one of drop/corrupt/delay; node sites draw crash
    or nothing. *)
type spec = {
  fs_drop : float;
  fs_corrupt : float;
  fs_delay : float;
  fs_delay_ns : float;       (** latency added by each injected delay *)
  fs_crash_source : float;
  fs_fail_restore : float;
  fs_kill_node : float;
}

(** No faults ever fire. *)
val calm : spec

(** [uniform p] sets every payload-fault class to probability [p] and
    node crashes to [p/3] ([delay_ns] defaults to 5 ms). Raises
    [Invalid_argument] outside [0, 1]. *)
val uniform : ?delay_ns:float -> float -> spec

(** A seeded schedule. Mutable: every {!draw} advances its stream. *)
type t

val make : seed:int -> spec -> t
val seed : t -> int
val spec : t -> spec

(** Consult the schedule at a site. [None] means no fault this time;
    every consultation advances the stream exactly one step per site. *)
val draw : t -> site -> action option

(** Faults injected so far / in injection order. *)
val injected : t -> int
val log : t -> (site * action) list

(** [corrupt_byte salt data] flips one byte of [data] in place at a
    position derived from [salt] (no-op on empty payloads). *)
val corrupt_byte : int64 -> bytes -> unit
