(** Plain-text table rendering for benchmark and experiment reports. *)

(** [render ~title ~header rows] lays out [rows] under [header] with
    column widths fitted to the data. *)
val render : title:string -> header:string list -> string list list -> string

(** [print ~title ~header rows] renders and writes to stdout. *)
val print : title:string -> header:string list -> string list list -> unit

(** Format milliseconds with sensible precision. *)
val ms : float -> string

(** Format a ratio as a signed percentage, e.g. [+39.2%]. *)
val pct : float -> string
