type stage = Pause | Dump | Recode | Transfer | Restore

let stage_name = function
  | Pause -> "pause"
  | Dump -> "dump"
  | Recode -> "recode"
  | Transfer -> "transfer"
  | Restore -> "restore"

type t =
  | Pause_budget_exhausted
  | Not_at_equivalence_point of int * int64
  | Process_exited
  | Dump_failed of string
  | Unwind_failed of string
  | Recode_failed of string
  | Shuffle_failed of string
  | Layout_incompatible of string
  | Active_function of string
  | Transfer_failed of string
  | Restore_failed of string
  | Verify_failed of string

let to_string = function
  | Pause_budget_exhausted -> "drain budget exhausted before all threads quiesced"
  | Not_at_equivalence_point (tid, pc) ->
    Printf.sprintf "thread %d stopped at 0x%Lx, not an equivalence point" tid pc
  | Process_exited -> "process exited during pause"
  | Dump_failed msg -> "dump failed: " ^ msg
  | Unwind_failed msg -> "unwind failed: " ^ msg
  | Recode_failed msg -> "recode failed: " ^ msg
  | Shuffle_failed msg -> "shuffle failed: " ^ msg
  | Layout_incompatible msg -> "layout incompatible: " ^ msg
  | Active_function f -> "function still active on a stack: " ^ f
  | Transfer_failed msg -> "transfer failed: " ^ msg
  | Restore_failed msg -> "restore failed: " ^ msg
  | Verify_failed msg -> "verification failed: " ^ msg

let stage_of = function
  | Pause_budget_exhausted | Not_at_equivalence_point _ | Process_exited -> Pause
  | Dump_failed _ -> Dump
  | Unwind_failed _ | Recode_failed _ | Shuffle_failed _ | Layout_incompatible _
  | Active_function _ | Verify_failed _ -> Recode
  | Transfer_failed _ -> Transfer
  | Restore_failed _ -> Restore

let retriable = function
  | Pause_budget_exhausted | Active_function _ -> true
  | Not_at_equivalence_point _ | Process_exited | Dump_failed _ | Unwind_failed _
  | Recode_failed _ | Shuffle_failed _ | Layout_incompatible _ | Transfer_failed _
  | Restore_failed _ | Verify_failed _ -> false

exception Error of t

let () =
  Printexc.register_printer (function
    | Error t -> Some (Printf.sprintf "Dapper_error.Error(%s)" (to_string t))
    | _ -> None)

let raise_error t = raise (Error t)
let failf wrap fmt = Printf.ksprintf (fun s -> raise_error (wrap s)) fmt

let protect f = match f () with v -> Ok v | exception Error t -> Error t

let ok_exn = function Ok v -> v | Error e -> raise_error e
