type stage = Pause | Dump | Recode | Transfer | Restore | Commit

let stage_name = function
  | Pause -> "pause"
  | Dump -> "dump"
  | Recode -> "recode"
  | Transfer -> "transfer"
  | Restore -> "restore"
  | Commit -> "commit"

type t =
  | Pause_budget_exhausted
  | Not_at_equivalence_point of int * int64
  | Process_exited
  | Dump_failed of string
  | Unwind_failed of string
  | Recode_failed of string
  | Shuffle_failed of string
  | Layout_incompatible of string
  | Active_function of string
  | Transfer_failed of string
  | Transfer_timeout of string
  | Checksum_mismatch of string
  | Restore_failed of string
  | Source_lost of string
  | Node_lost of string
  | Commit_failed of string
  | Verify_failed of string
  | Deadline_exceeded of stage * float

let to_string = function
  | Pause_budget_exhausted -> "drain budget exhausted before all threads quiesced"
  | Not_at_equivalence_point (tid, pc) ->
    Printf.sprintf "thread %d stopped at 0x%Lx, not an equivalence point" tid pc
  | Process_exited -> "process exited during pause"
  | Dump_failed msg -> "dump failed: " ^ msg
  | Unwind_failed msg -> "unwind failed: " ^ msg
  | Recode_failed msg -> "recode failed: " ^ msg
  | Shuffle_failed msg -> "shuffle failed: " ^ msg
  | Layout_incompatible msg -> "layout incompatible: " ^ msg
  | Active_function f -> "function still active on a stack: " ^ f
  | Transfer_failed msg -> "transfer failed: " ^ msg
  | Transfer_timeout msg -> "transfer timed out: " ^ msg
  | Checksum_mismatch msg -> "checksum mismatch: " ^ msg
  | Restore_failed msg -> "restore failed: " ^ msg
  | Source_lost msg -> "source lost: " ^ msg
  | Node_lost msg -> "node lost: " ^ msg
  | Commit_failed msg -> "commit failed: " ^ msg
  | Verify_failed msg -> "verification failed: " ^ msg
  | Deadline_exceeded (st, ms) ->
    Printf.sprintf "deadline exceeded: %s projected %.2f ms over budget"
      (stage_name st) ms

let stage_of = function
  | Pause_budget_exhausted | Not_at_equivalence_point _ | Process_exited -> Pause
  | Dump_failed _ -> Dump
  | Unwind_failed _ | Recode_failed _ | Shuffle_failed _ | Layout_incompatible _
  | Active_function _ | Verify_failed _ -> Recode
  | Transfer_failed _ | Transfer_timeout _ | Checksum_mismatch _ -> Transfer
  | Restore_failed _ | Node_lost _ -> Restore
  | Source_lost _ | Commit_failed _ -> Commit
  | Deadline_exceeded (st, _) -> st

(* Exhaustive on purpose: adding an error constructor must force a
   decision here (no wildcard), because a misclassification either
   retries a structural failure forever or abandons a recoverable one. *)
let retriable = function
  | Pause_budget_exhausted -> true
  | Deadline_exceeded _ -> true
  | Active_function _ -> true
  | Transfer_timeout _ -> true
  | Checksum_mismatch _ -> true
  | Node_lost _ -> true
  | Not_at_equivalence_point _ -> false
  | Process_exited -> false
  | Dump_failed _ -> false
  | Unwind_failed _ -> false
  | Recode_failed _ -> false
  | Shuffle_failed _ -> false
  | Layout_incompatible _ -> false
  | Transfer_failed _ -> false
  | Restore_failed _ -> false
  | Source_lost _ -> false
  | Commit_failed _ -> false
  | Verify_failed _ -> false

let examples =
  [ Pause_budget_exhausted;
    Not_at_equivalence_point (1, 0x400000L);
    Process_exited;
    Dump_failed "example";
    Unwind_failed "example";
    Recode_failed "example";
    Shuffle_failed "example";
    Layout_incompatible "example";
    Active_function "example";
    Transfer_failed "example";
    Transfer_timeout "example";
    Checksum_mismatch "example";
    Restore_failed "example";
    Source_lost "example";
    Node_lost "example";
    Commit_failed "example";
    Verify_failed "example";
    Deadline_exceeded (Transfer, 12.5) ]

exception Error of t

let () =
  Printexc.register_printer (function
    | Error t -> Some (Printf.sprintf "Dapper_error.Error(%s)" (to_string t))
    | _ -> None)

let raise_error t = raise (Error t)
let failf wrap fmt = Printf.ksprintf (fun s -> raise_error (wrap s)) fmt

let protect f = match f () with v -> Ok v | exception Error t -> Error t

let ok_exn = function Ok v -> v | Error e -> raise_error e
