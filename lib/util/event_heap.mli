(** A binary min-heap of timed events: the discrete-event core shared by
    the cluster simulators ({!Dapper_cluster.Scheduler},
    {!Dapper_cluster.Fleet}, {!Dapper_cluster.Fleet_xl}) and usable as a
    generic priority pool (e.g. lowest-index free-slot selection, with
    [time = 0.0] and [key = slot id]).

    Entries pop in ascending [(time, key, seq)] order, where [seq] is
    the push sequence number: ties on time break on the caller's [key]
    first (e.g. slot index, so "earliest slot wins" scans translate
    exactly), then on push order. The tie-break makes pop order {e
    stable}: two entries pushed at the same time with the same key pop
    in the order they were pushed. Times must be finite; [push] raises
    [Invalid_argument] on NaN. *)

type 'a t

(** [create ()] is an empty heap. [capacity] pre-sizes the backing
    array (it still grows on demand). *)
val create : ?capacity:int -> unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push h ~time v] schedules [v] at [time]. [key] (default 0) is the
    secondary sort key for same-time entries. *)
val push : 'a t -> ?key:int -> time:float -> 'a -> unit

(** Earliest entry without removing it. *)
val peek : 'a t -> (float * 'a) option

val peek_time : 'a t -> float option

(** Remove and return the earliest entry. *)
val pop : 'a t -> (float * 'a) option

(** Total pushes over the heap's lifetime — cheap event accounting for
    schedulers reporting events per simulated second. *)
val pushed : 'a t -> int

val clear : 'a t -> unit

(** Pop everything: the heap-sort of the remaining entries, earliest
    first (the list-sort model the qcheck suite checks against). *)
val drain : 'a t -> (float * 'a) list
