(** Minimal JSON representation used by the CRIT image tool.

    CRIU's CRIT utility decodes protobuf process images into human-readable
    JSON and encodes them back; this module provides the JSON side of that
    bridge without external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Pretty-print with two-space indentation. *)
val to_string : t -> string

(** Parse a JSON document. Raises [Parse_error] on malformed input. *)
val of_string : string -> t

exception Parse_error of string

(** Accessors; raise [Parse_error] when the shape does not match. *)

val member : string -> t -> t
val member_opt : string -> t -> t option
val to_int : t -> int64
val to_float : t -> float
val to_bool : t -> bool
val to_str : t -> string
val to_list : t -> t list
val to_obj : t -> (string * t) list
