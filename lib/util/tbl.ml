let render ~title ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> width.(i) <- max width.(i) (String.length cell)) row)
    all;
  let b = Buffer.create 1024 in
  Buffer.add_string b ("== " ^ title ^ " ==\n");
  let add_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string b "  ";
        Buffer.add_string b cell;
        Buffer.add_string b (String.make (width.(i) - String.length cell) ' '))
      row;
    Buffer.add_char b '\n'
  in
  add_row header;
  Buffer.add_string b (String.make (Array.fold_left ( + ) (2 * (ncols - 1)) width) '-');
  Buffer.add_char b '\n';
  List.iter add_row rows;
  Buffer.contents b

let print ~title ~header rows = print_string (render ~title ~header rows)

let ms v =
  if v >= 100.0 then Printf.sprintf "%.0f ms" v
  else if v >= 1.0 then Printf.sprintf "%.1f ms" v
  else Printf.sprintf "%.2f ms" v

let pct v = Printf.sprintf "%+.1f%%" (v *. 100.0)
