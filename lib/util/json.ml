type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_string t =
  let b = Buffer.create 256 in
  let indent n = Buffer.add_char b '\n'; Buffer.add_string b (String.make n ' ') in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int v -> Buffer.add_string b (Int64.to_string v)
    | Float v ->
      if Float.is_integer v && Float.abs v < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.1f" v)
      else Buffer.add_string b (Printf.sprintf "%.17g" v)
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          indent (depth + 2);
          go (depth + 2) item)
        items;
      indent depth;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          indent (depth + 2);
          escape_string b k;
          Buffer.add_string b ": ";
          go (depth + 2) v)
        fields;
      indent depth;
      Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b

(* Recursive-descent parser over a string with a mutable cursor. *)
type cursor = { src : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') -> advance c; skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c (Printf.sprintf "expected '%c'" ch)

let parse_literal c lit value =
  if c.pos + String.length lit <= String.length c.src
     && String.sub c.src c.pos (String.length lit) = lit
  then begin
    c.pos <- c.pos + String.length lit;
    value
  end
  else error c (Printf.sprintf "expected %s" lit)

let parse_string_raw c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c; Buffer.contents b
    | Some '\\' ->
      advance c;
      (match peek c with
       | Some '"' -> Buffer.add_char b '"'; advance c
       | Some '\\' -> Buffer.add_char b '\\'; advance c
       | Some '/' -> Buffer.add_char b '/'; advance c
       | Some 'n' -> Buffer.add_char b '\n'; advance c
       | Some 'r' -> Buffer.add_char b '\r'; advance c
       | Some 't' -> Buffer.add_char b '\t'; advance c
       | Some 'b' -> Buffer.add_char b '\b'; advance c
       | Some 'f' -> Buffer.add_char b '\012'; advance c
       | Some 'u' ->
         advance c;
         if c.pos + 4 > String.length c.src then error c "bad \\u escape";
         let hex = String.sub c.src c.pos 4 in
         c.pos <- c.pos + 4;
         let code = int_of_string ("0x" ^ hex) in
         if code < 0x80 then Buffer.add_char b (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
           Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
         end
         else begin
           Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
           Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
           Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
         end
       | _ -> error c "bad escape");
      loop ()
    | Some ch -> Buffer.add_char b ch; advance c; loop ()
  in
  loop ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec loop () =
    match peek c with
    | Some ch when is_num_char ch -> advance c; loop ()
    | _ -> ()
  in
  loop ();
  let s = String.sub c.src start (c.pos - start) in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'E' then
    Float (float_of_string s)
  else
    match Int64.of_string_opt s with
    | Some v -> Int v
    | None -> Float (float_of_string s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '"' -> String (parse_string_raw c)
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin advance c; Obj [] end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string_raw c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; fields ((k, v) :: acc)
        | Some '}' -> advance c; List.rev ((k, v) :: acc)
        | _ -> error c "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin advance c; List [] end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; items (v :: acc)
        | Some ']' -> advance c; List.rev (v :: acc)
        | _ -> error c "expected ',' or ']'"
      in
      List (items [])
    end
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then error c "trailing garbage";
  v

let member_opt key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let member key t =
  match member_opt key t with
  | Some v -> v
  | None -> raise (Parse_error (Printf.sprintf "missing member %S" key))

let to_int = function
  | Int v -> v
  | _ -> raise (Parse_error "expected int")

let to_float = function
  | Float v -> v
  | Int v -> Int64.to_float v
  | _ -> raise (Parse_error "expected float")

let to_bool = function
  | Bool v -> v
  | _ -> raise (Parse_error "expected bool")

let to_str = function
  | String v -> v
  | _ -> raise (Parse_error "expected string")

let to_list = function
  | List v -> v
  | _ -> raise (Parse_error "expected list")

let to_obj = function
  | Obj v -> v
  | _ -> raise (Parse_error "expected object")
