type site =
  | Transfer_chunk
  | Page_fetch
  | Source_node
  | Dest_restore
  | Dest_node

let site_name = function
  | Transfer_chunk -> "transfer-chunk"
  | Page_fetch -> "page-fetch"
  | Source_node -> "source-node"
  | Dest_restore -> "dest-restore"
  | Dest_node -> "dest-node"

type action =
  | Drop
  | Corrupt of int64
  | Delay of float
  | Crash

let action_name = function
  | Drop -> "drop"
  | Corrupt _ -> "corrupt"
  | Delay _ -> "delay"
  | Crash -> "crash"

type spec = {
  fs_drop : float;
  fs_corrupt : float;
  fs_delay : float;
  fs_delay_ns : float;
  fs_crash_source : float;
  fs_fail_restore : float;
  fs_kill_node : float;
}

let calm =
  { fs_drop = 0.0; fs_corrupt = 0.0; fs_delay = 0.0; fs_delay_ns = 0.0;
    fs_crash_source = 0.0; fs_fail_restore = 0.0; fs_kill_node = 0.0 }

let uniform ?(delay_ns = 5.0e6) p =
  if p < 0.0 || p > 1.0 then invalid_arg "Fault.uniform: probability out of [0,1]";
  (* Payload faults (drop/corrupt/delay) at [p] each; node-level crashes
     are rarer in a real fleet than flaky packets, so they fire at a
     third of the payload rate. *)
  { fs_drop = p; fs_corrupt = p; fs_delay = p; fs_delay_ns = delay_ns;
    fs_crash_source = p /. 3.0; fs_fail_restore = p /. 3.0;
    fs_kill_node = p /. 3.0 }

type t = {
  f_seed : int;
  f_spec : spec;
  f_rng : Rng.t;
  mutable f_log : (site * action) list;  (* most recent first *)
}

let make ~seed spec =
  { f_seed = seed; f_spec = spec;
    f_rng = Rng.create (Int64.mul (Int64.of_int (seed + 1)) 0x9E3779B97F4A7C15L);
    f_log = [] }

let seed t = t.f_seed
let spec t = t.f_spec
let injected t = List.length t.f_log
let log t = List.rev t.f_log

let fire t site action =
  t.f_log <- (site, action) :: t.f_log;
  Some action

(* One uniform draw per consultation keeps the schedule replayable: a
   given seed produces the same fault sequence for the same sequence of
   [draw] calls, which the pipeline performs in deterministic order. *)
let draw t site =
  let s = t.f_spec in
  let p = Rng.float t.f_rng in
  let payload_fault () =
    if p < s.fs_drop then fire t site Drop
    else if p < s.fs_drop +. s.fs_corrupt then fire t site (Corrupt (Rng.next t.f_rng))
    else if p < s.fs_drop +. s.fs_corrupt +. s.fs_delay then
      fire t site (Delay s.fs_delay_ns)
    else None
  in
  match site with
  | Transfer_chunk | Page_fetch -> payload_fault ()
  | Source_node -> if p < s.fs_crash_source then fire t site Crash else None
  | Dest_restore -> if p < s.fs_fail_restore then fire t site Crash else None
  | Dest_node -> if p < s.fs_kill_node then fire t site Crash else None

let corrupt_byte salt data =
  let len = Bytes.length data in
  if len > 0 then begin
    let i = Int64.to_int (Int64.rem (Int64.logand salt Int64.max_int) (Int64.of_int len)) in
    Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor 0x5A))
  end
