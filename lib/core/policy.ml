open Dapper_util
open Dapper_machine
open Dapper_binary

type t =
  | Identity
  | Cross_isa of Binary.t
  | Reshuffle of Rng.t
  | Software_update of Binary.t

let describe = function
  | Identity -> "identity checkpoint/restore"
  | Cross_isa b -> "cross-ISA migration to " ^ Dapper_isa.Arch.name b.Binary.bin_arch
  | Reshuffle _ -> "stack re-randomization"
  | Software_update b -> "software update onto " ^ b.Binary.bin_app

type applied = {
  ap_process : Process.t;
  ap_binary : Binary.t;
}

type error = Dapper_error.t

let error_to_string = Dapper_error.to_string

let ( let* ) = Result.bind

let ensure_paused p =
  if Process.all_quiescent p then Ok ()
  else
    match Monitor.request_pause p ~budget:50_000_000 with
    | Ok _ -> Ok ()
    | Error _ as e -> e

let apply ?report p ~current policy =
  match policy with
  | Software_update new_bin ->
    (* Dsu handles its own pause so it can refuse before transforming. *)
    (match Dsu.update p ~old_bin:current ~new_bin with
     | Ok q -> Ok { ap_process = q; ap_binary = new_bin }
     | Error e -> Error e)
  | Identity | Cross_isa _ | Reshuffle _ ->
    let* () = ensure_paused p in
    let* image = Dapper_criu.Dump.dump p in
    let* dst =
      match policy with
      | Identity -> Ok current
      | Cross_isa b -> Ok b
      | Reshuffle rng ->
        (match Shuffle.shuffle_binary rng current with
         | b, _ -> Ok b
         | exception Shuffle.Shuffle_error msg ->
           Error (Dapper_error.Shuffle_failed msg))
      | Software_update _ -> assert false
    in
    let* image', rw = Rewrite.rewrite image ~src:current ~dst in
    (match report with Some f -> f rw | None -> ());
    let* q = Dapper_criu.Restore.restore image' dst in
    Ok { ap_process = q; ap_binary = dst }

let rerandomize_periodically ?report p ~current ~rng ~interval ~epochs =
  let rec go state epoch =
    if epoch >= epochs then Ok (state, epoch)
    else begin
      match Process.run state.ap_process ~max_instrs:interval with
      | Process.Exited_run _ | Process.Crashed _ | Process.Idle -> Ok (state, epoch)
      | Process.Progress ->
        let report = Option.map (fun f -> f epoch) report in
        (match apply ?report state.ap_process ~current:state.ap_binary (Reshuffle rng) with
         | Ok state' -> go state' (epoch + 1)
         | Error e -> Error e)
    end
  in
  go { ap_process = p; ap_binary = current } 0
