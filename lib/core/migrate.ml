open Dapper_util
open Dapper_binary
open Dapper_machine
open Dapper_net

type phase_times = Session.phase_times = {
  t_checkpoint_ms : float;
  t_recode_ms : float;
  t_scp_ms : float;
  t_restore_ms : float;
}

let total_ms = Session.total_ms

type page_server_stats = Transport.page_stats = {
  mutable srv_pages : int;
  mutable srv_ns : float;
  mutable srv_retransmits : int;
  mutable srv_backoff_ns : float;
}

type result = Session.outcome = {
  r_process : Process.t;
  r_times : phase_times;
  r_image_bytes : int;
  r_rewrite : Rewrite.stats;
  r_pause : Monitor.pause_stats;
  r_page_server : page_server_stats option;
  r_transfer : Transport.tx_stats;
  r_drained : int;
}

type error = Dapper_error.t

let error_to_string = Dapper_error.to_string

let recode_ns = Session.recode_ns
let checkpoint_ms = Session.checkpoint_ms
let restore_ms = Session.restore_ms

module Metrics = Dapper_obs.Metrics

(* Per-stage cost histograms accumulated by [Session.staged] in the
   metrics registry across every session run since the last
   [Metrics.reset]. Empty stages are omitted; an empty registry yields
   just the header. *)
let stage_histogram_table () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "stage cost histograms (ms):\n";
  List.iter
    (fun stage ->
      let sname = Dapper_error.stage_name stage in
      match Metrics.find ("session.stage_ms." ^ sname) with
      | Some (Metrics.Histogram h) when Metrics.histogram_count h > 0 ->
        Buffer.add_string buf
          (Printf.sprintf "  %-8s n=%-4d sum=%10.2f ms  " sname
             (Metrics.histogram_count h) (Metrics.histogram_sum h));
        Metrics.histogram_buckets h
        |> List.filter (fun (_, c) -> c > 0)
        |> List.map (fun (bound, c) ->
               if bound = infinity then Printf.sprintf "le=inf:%d" c
               else Printf.sprintf "le=%g:%d" bound c)
        |> String.concat " " |> Buffer.add_string buf;
        Buffer.add_char buf '\n'
      | _ -> ())
    Dapper_error.[ Pause; Dump; Recode; Transfer; Restore; Commit ];
  Buffer.contents buf

(* Process-global cache/index counters an experiment may want zeroed
   between runs so successive cost reports don't difference across each
   other's traffic. The per-rewrite [Rewrite.stats] counters are already
   scoped (attached {!Plan_cache.counters} sinks) and unaffected. *)
let reset_run_counters () =
  Plan_cache.reset_counters ();
  Stackmap_index.reset_counters ()

(* Cost report with the index/plan-cache observability counters; new
   surfaces only (the fig5/fig7 tables keep their exact seed format).
   [stage_histograms] appends the registry-backed per-stage table;
   [reset] zeroes the process-global counters after rendering. *)
let cost_report ?(stage_histograms = false) ?(reset = false) (r : result) =
  let t = r.r_times in
  let rw = r.r_rewrite in
  let line =
    Printf.sprintf
      "checkpoint %.2f ms, recode %.2f ms, scp %.2f ms, restore %.2f ms, total %.2f ms \
       | plan cache %d hit%s / %d miss%s, %d index lookups, %d interval probes"
      t.t_checkpoint_ms t.t_recode_ms t.t_scp_ms t.t_restore_ms (total_ms t)
      rw.Rewrite.st_plan_hits
      (if rw.Rewrite.st_plan_hits = 1 then "" else "s")
      rw.Rewrite.st_plan_misses
      (if rw.Rewrite.st_plan_misses = 1 then "" else "es")
      rw.Rewrite.st_index_lookups rw.Rewrite.st_interval_lookups
  in
  (* Memo surfaces only when it did something, keeping the legacy line
     byte-identical for non-memoized runs. *)
  let line =
    if rw.Rewrite.st_memo_thread_hits > 0 || rw.Rewrite.st_memo_page_hits > 0 then
      line
      ^ Printf.sprintf ", memo %d thread / %d page hits (%d bytes skipped)"
          rw.Rewrite.st_memo_thread_hits rw.Rewrite.st_memo_page_hits
          rw.Rewrite.st_skipped_bytes
    else line
  in
  if reset then reset_run_counters ();
  if stage_histograms then line ^ "\n" ^ stage_histogram_table () else line

let migrate ?(lazy_pages = false) ?(link = Link.infiniband) ?recode_on
    ?(bytes_scale = 1.0) ?(budget = 50_000_000) ?(pipeline = false)
    ?(chunk_bytes = 262_144) ?(recode_workers = 1) ?memo ~(src_node : Node.t)
    ~(dst_node : Node.t) ~(dst_bin : Binary.t) ~(src_bin : Binary.t)
    (p : Process.t) =
  let transport =
    if lazy_pages then Transport.page_server link else Transport.scp link
  in
  let cfg =
    { Session.cfg_src_node = src_node;
      cfg_dst_node = dst_node;
      cfg_recode_node = Option.value ~default:src_node recode_on;
      cfg_transport = transport;
      cfg_src_bin = src_bin;
      cfg_dst_bin = dst_bin;
      cfg_bytes_scale = bytes_scale;
      cfg_pause_budget = budget;
      cfg_commit_drain = false;
      cfg_fault = None;
      cfg_pipeline = pipeline;
      cfg_chunk_bytes = chunk_bytes;
      cfg_recode_workers = recode_workers;
      cfg_recode_memo = memo;
      cfg_resident_pages = [] }
  in
  Result.map Session.finish (Session.run cfg p)
