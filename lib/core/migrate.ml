open Dapper_isa
open Dapper_binary
open Dapper_machine
open Dapper_criu
open Dapper_net

type phase_times = {
  t_checkpoint_ms : float;
  t_recode_ms : float;
  t_scp_ms : float;
  t_restore_ms : float;
}

let total_ms t = t.t_checkpoint_ms +. t.t_recode_ms +. t.t_scp_ms +. t.t_restore_ms

type page_server_stats = { mutable srv_pages : int; mutable srv_ns : float }

type result = {
  r_process : Process.t;
  r_times : phase_times;
  r_image_bytes : int;
  r_rewrite : Rewrite.stats;
  r_pause : Monitor.pause_stats;
  r_page_server : page_server_stats option;
}

type error =
  | Pause_failed of Monitor.error
  | Transform_failed of string

let error_to_string = function
  | Pause_failed e -> "pause failed: " ^ Monitor.error_to_string e
  | Transform_failed msg -> "transform failed: " ^ msg

(* Cost-model constants (see EXPERIMENTS.md, "Calibration"). *)
let checkpoint_fixed_ns = 3.0e6    (* freeze + /proc walk + image setup *)
let restore_fixed_ns = 3.0e6
let lazy_restore_ns = 8.0e6        (* paper: "takes about 8 ms" *)
let recode_item_ns = 150_000.0     (* per live value / frame on the Xeon *)
let recode_byte_ns = 2.6           (* per image byte decoded+re-encoded *)
let image_io_gbps = 24.0           (* tmpfs-backed dump/restore bandwidth *)

let checkpoint_ms ~bytes =
  (checkpoint_fixed_ns +. (float_of_int bytes /. image_io_gbps)) /. 1e6

let restore_ms ~bytes =
  (restore_fixed_ns +. (float_of_int bytes /. image_io_gbps)) /. 1e6

let recode_ns (node : Node.t) ?(bytes = 0) (stats : Rewrite.stats) =
  (* measured per-architecture recode slowdown (paper Fig. 5), independent
     of the raw execution-speed ratio *)
  let slowdown = Arch.recode_slowdown node.n_arch in
  (float_of_int (Rewrite.work_items stats) *. recode_item_ns
   +. (float_of_int bytes *. recode_byte_ns))
  *. slowdown

(* Cost report with the index/plan-cache observability counters; new
   surfaces only (the fig5/fig7 tables keep their exact seed format). *)
let cost_report (r : result) =
  let t = r.r_times in
  let rw = r.r_rewrite in
  Printf.sprintf
    "checkpoint %.2f ms, recode %.2f ms, scp %.2f ms, restore %.2f ms, total %.2f ms \
     | plan cache %d hit%s / %d miss%s, %d index lookups, %d interval probes"
    t.t_checkpoint_ms t.t_recode_ms t.t_scp_ms t.t_restore_ms (total_ms t)
    rw.Rewrite.st_plan_hits
    (if rw.Rewrite.st_plan_hits = 1 then "" else "s")
    rw.Rewrite.st_plan_misses
    (if rw.Rewrite.st_plan_misses = 1 then "" else "es")
    rw.Rewrite.st_index_lookups rw.Rewrite.st_interval_lookups

let migrate ?(lazy_pages = false) ?(link = Link.infiniband) ?recode_on
    ?(bytes_scale = 1.0) ?(budget = 50_000_000) ~(src_node : Node.t)
    ~(dst_node : Node.t) ~(dst_bin : Binary.t) ~(src_bin : Binary.t)
    (p : Process.t) =
  let recode_node = Option.value ~default:src_node recode_on in
  match Monitor.request_pause p ~budget with
  | Error e -> Error (Pause_failed e)
  | Ok pause_stats ->
    (try
       let image = Dump.dump ~lazy_pages p in
       let dump_stats = Dump.stats_of image in
       let image', rw_stats = Rewrite.rewrite image ~src:src_bin ~dst:dst_bin in
       let image_bytes = Images.total_bytes image' in
       let scaled b = int_of_float (float_of_int b *. bytes_scale) in
       (* lazy page server: serves from the paused source process. *)
       let server_stats =
         if lazy_pages then Some { srv_pages = 0; srv_ns = 0.0 } else None
       in
       let page_source =
         match server_stats with
         | None -> None
         | Some stats ->
           Some
             (fun pn ->
               match Memory.page_contents p.Process.mem pn with
               | Some data ->
                 stats.srv_pages <- stats.srv_pages + 1;
                 (* round-trip latency is per request; payload scales with
                    the full-size footprint *)
                 stats.srv_ns <-
                   stats.srv_ns
                   +. Link.page_fetch_ns link
                        (int_of_float (float_of_int Layout.page_size *. bytes_scale));
                 Some (Bytes.copy data)
               | None -> None)
       in
       let restored = Restore.restore ?page_source image' dst_bin in
       ignore src_node;
       ignore dst_node;
       let checkpoint =
         checkpoint_ms ~bytes:(scaled (dump_stats.Dump.pages_dumped * Layout.page_size))
       in
       let recode = recode_ns recode_node ~bytes:(scaled image_bytes) rw_stats in
       let scp_ns = Link.transfer_ns link (scaled image_bytes) in
       let restore =
         if lazy_pages then lazy_restore_ns /. 1e6
         else restore_ms ~bytes:(scaled image_bytes)
       in
       Ok
         { r_process = restored;
           r_times =
             { t_checkpoint_ms = checkpoint;
               t_recode_ms = recode /. 1e6;
               t_scp_ms = scp_ns /. 1e6;
               t_restore_ms = restore };
           r_image_bytes = image_bytes;
           r_rewrite = rw_stats;
           r_pause = pause_stats;
           r_page_server = server_stats }
     with
     | Dump.Dump_error msg | Restore.Restore_error msg | Rewrite.Rewrite_error msg
     | Unwind.Unwind_error msg ->
       Error (Transform_failed msg))
