(** The Dapper process rewriter (paper Section III-C/III-D2b).

    Transforms a dumped process image of one binary into an image
    restorable under another binary — the other architecture's, or a
    stack-shuffled variant of the same architecture. For every thread it:

    - unwinds the source stack using the source stack maps;
    - rebuilds each frame following the destination ABI (return-address
      placement, frame sizes, callee-saved save areas — the
      "register-save procedure" of the paper);
    - copies every live value from its source location to its
      destination location, which may move a value between a register
      and a stack slot across ISAs;
    - translates live stack pointers to their relocated targets;
    - replaces the execution-context code pages with the destination
      binary's and updates the executable identity in [files.img];
    - rebases the TLS register by the per-architecture libc offset.

    All other pages (data, heap, TLS) transfer unchanged thanks to the
    unified address space. Works on both vanilla and lazy image sets
    (stacks are always dumped, so lazy pages are never needed). *)

open Dapper_util
open Dapper_binary
open Dapper_criu

type stats = {
  st_threads : int;
  st_frames : int;
  st_values : int;          (** live values copied *)
  st_ptrs_translated : int; (** stack pointers relocated *)
  st_code_pages : int;      (** execution-context pages replaced *)
  st_stack_bytes : int;     (** stack bytes rebuilt *)
  st_plan_hits : int;       (** rewrite-plan cache hits during this rewrite *)
  st_plan_misses : int;     (** rewrite-plan cache misses (plans derived) *)
  st_index_lookups : int;   (** stack-map index lookups during this rewrite *)
  st_interval_lookups : int;(** pointer-translation interval-map probes *)
  st_memo_page_hits : int;  (** pass-through pages skipped via output memo *)
  st_memo_thread_hits : int;(** threads replayed from the output memo *)
  st_skipped_bytes : int;   (** bytes not re-encoded thanks to memo hits *)
}

(** Total abstract work units, the input to the recode cost model. The
    observability counters ([st_plan_*], [st_index_lookups],
    [st_interval_lookups], [st_memo_*], [st_skipped_bytes]) deliberately
    do not contribute: caching changes the cost of a migration, never
    its result or its modeled work. *)
val work_items : stats -> int

(** Fails with [Dapper_error.Recode_failed] on an arch/app mismatch or a
    malformed image, [Dapper_error.Unwind_failed] if the source stack
    walk fails.

    With [?memo] the rewrite consults (and fills) an output-level
    memoization: threads whose content digest matches a memoized entry
    replay their stored destination core and stack pages instead of
    being re-unwound and re-encoded, and pass-through pages whose
    content digest is already memoized are counted as skipped. The
    produced image is byte-identical with and without a memo (verified
    by the conformance oracle); only the cost accounting
    ([st_skipped_bytes], fed to the recode cost model) changes. *)
val rewrite :
  ?memo:Plan_cache.memo ->
  Images.image_set -> src:Binary.t -> dst:Binary.t ->
  (Images.image_set * stats, Dapper_error.t) result
