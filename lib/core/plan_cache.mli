(** Per-(source binary, destination binary, function) rewrite-plan cache.

    The rewriter makes the same frame-placement decisions on every
    migration of the same binary pair: which live values of a
    [(function, eqpoint)] are frame-resident on both sides and therefore
    feed the pointer-translation interval map. This module memoizes
    those decisions keyed by [(app, source arch, destination arch,
    function, eqpoint id)].

    Cached plans are {e offset-free}: they name live values by their
    cross-ISA keys and read concrete frame offsets through the current
    binaries' stack-map indexes at apply time. Stack shuffling only
    permutes offsets, so periodic re-randomization pays plan
    construction once — every epoch after the first hits the cache. A
    cached plan is validated against the offset-free {!shape} of the
    current equivalence-point pair before use, so a software update that
    changes a function's live set can never apply a stale plan. *)

open Dapper_isa
open Dapper_binary

type lv_shape = {
  s_key : Stackmap.lv_key;
  s_ty : Stackmap.lv_ty;
  s_size : int;
  s_frame : bool;   (** frame-resident (at some offset) vs register *)
}

type shape = {
  sh_src : lv_shape list;   (** source [ep_live], in order *)
  sh_dst : lv_shape list;   (** destination [ep_live], in order *)
}

type plan = {
  pl_shape : shape;
  pl_intervals : (Stackmap.lv_key * int) list;
    (** live values frame-resident on both sides: key + source size,
        in source [ep_live] order *)
}

(** Return the cached plan for the key when its shape matches, else
    derive, cache and return a fresh plan. *)
val lookup :
  app:string -> src_arch:Arch.t -> dst_arch:Arch.t -> fn:string -> ep_id:int ->
  src_ep:Stackmap.eqpoint -> dst_ep:Stackmap.eqpoint -> plan

(** {1 Observability} — process-global hit/miss counters, surfaced in
    the migration cost report. *)

val hits : unit -> int
val misses : unit -> int
val reset_counters : unit -> unit

(** Drop all cached plans and reset the counters. *)
val clear : unit -> unit
