(** Per-(source binary, destination binary, function) rewrite-plan cache.

    The rewriter makes the same frame-placement decisions on every
    migration of the same binary pair: which live values of a
    [(function, eqpoint)] are frame-resident on both sides and therefore
    feed the pointer-translation interval map. This module memoizes
    those decisions keyed by [(app, source arch, destination arch,
    function, eqpoint id)].

    Cached plans are {e offset-free}: they name live values by their
    cross-ISA keys and read concrete frame offsets through the current
    binaries' stack-map indexes at apply time. Stack shuffling only
    permutes offsets, so periodic re-randomization pays plan
    construction once — every epoch after the first hits the cache. A
    cached plan is validated against the offset-free {!shape} of the
    current equivalence-point pair before use, so a software update that
    changes a function's live set can never apply a stale plan. *)

open Dapper_isa
open Dapper_binary

type lv_shape = {
  s_key : Stackmap.lv_key;
  s_ty : Stackmap.lv_ty;
  s_size : int;
  s_frame : bool;   (** frame-resident (at some offset) vs register *)
}

type shape = {
  sh_src : lv_shape list;   (** source [ep_live], in order *)
  sh_dst : lv_shape list;   (** destination [ep_live], in order *)
}

type plan = {
  pl_shape : shape;
  pl_intervals : (Stackmap.lv_key * int) list;
    (** live values frame-resident on both sides: key + source size,
        in source [ep_live] order *)
}

(** Return the cached plan for the key when its shape matches, else
    derive, cache and return a fresh plan. *)
val lookup :
  app:string -> src_arch:Arch.t -> dst_arch:Arch.t -> fn:string -> ep_id:int ->
  src_ep:Stackmap.eqpoint -> dst_ep:Stackmap.eqpoint -> plan

(** {1 Observability} — process-global hit/miss counters, surfaced in
    the migration cost report. *)

val hits : unit -> int
val misses : unit -> int
val reset_counters : unit -> unit

(** Drop all cached plans and reset the counters. *)
val clear : unit -> unit

(** {1 Per-run counter scoping}

    The global {!hits}/{!misses} tallies bleed across experiments
    (anything may {!reset_counters} between two readings a caller wants
    to difference). A run that needs trustworthy numbers attaches its
    own {!counters} sink for its duration: every {!lookup} increments
    the globals {e and} every attached sink, so a scoped count is immune
    to concurrent resets. *)

type counters = { mutable c_hits : int; mutable c_misses : int }

val fresh_counters : unit -> counters
val attach : counters -> unit
val detach : counters -> unit

(** [counting f] runs [f] with a fresh attached sink (detached even if
    [f] raises) and returns [f]'s result with the counts it scoped. *)
val counting : (unit -> 'a) -> 'a * counters

(** {1 Output-level memoization}

    Beyond plan-level decisions, a {!memo} caches rewrite {e outputs}
    keyed by content hashes — per pass-through page (content digest:
    hit means the page need not be re-encoded) and per thread (digest
    of its unwound frames, live-value bytes, argument registers, TLS,
    present stack pages and the global pointer-translation interval
    set, mapped to the finished destination core + rewritten stack
    pages). An environment digest over the binary pair guards the
    whole memo: entries from a different binary pair can never be
    replayed. Opt-in: pass a memo to [Rewrite.rewrite] (via
    [Session.config.cfg_recode_memo]); the default pipeline never
    consults one. *)

(** A memoized thread rewrite: the destination thread core and the
    thread's rewritten stack pages (page number, full page bytes). *)
type thread_patch = {
  tp_core : Dapper_criu.Images.thread_core;
  tp_pages : (int * string) list;
}

type memo

val create_memo : unit -> memo

(** Empty the memo (entries and environment binding). *)
val memo_clear : memo -> unit

(** Bind the memo to an environment digest, emptying it first when the
    environment changed; [true] when existing entries remain valid. *)
val memo_bind : memo -> env:Digest.t -> bool

val memo_page_hit : memo -> int -> Digest.t -> bool
val memo_page_store : memo -> int -> Digest.t -> unit
val memo_thread_hit : memo -> int -> Digest.t -> thread_patch option
val memo_thread_store : memo -> int -> Digest.t -> thread_patch -> unit

(** [(pages, threads)] currently memoized. *)
val memo_size : memo -> int * int
