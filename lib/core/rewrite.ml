open Dapper_util
open Dapper_isa
open Dapper_binary
open Dapper_criu

let fail fmt = Dapper_error.failf (fun s -> Dapper_error.Recode_failed s) fmt

(* Aggregate rewrite-work accounting; the per-run [stats] record stays
   the per-session view (see test_stats_fresh_per_session). *)
module Metrics = Dapper_obs.Metrics

let m_runs = Metrics.counter "rewrite.runs"
let m_threads = Metrics.counter "rewrite.threads"
let m_frames = Metrics.counter "rewrite.frames"
let m_values = Metrics.counter "rewrite.values"
let m_ptrs = Metrics.counter "rewrite.ptrs_translated"
let m_code_pages = Metrics.counter "rewrite.code_pages"
let m_stack_bytes = Metrics.counter "rewrite.stack_bytes"
let m_plan_hits = Metrics.counter "rewrite.plan_hits"
let m_plan_misses = Metrics.counter "rewrite.plan_misses"
let m_index_lookups = Metrics.counter "rewrite.index_lookups"
let m_interval_lookups = Metrics.counter "rewrite.interval_lookups"
let m_memo_page_hits = Metrics.counter "rewrite.memo_page_hits"
let m_memo_thread_hits = Metrics.counter "rewrite.memo_thread_hits"
let m_skipped_bytes = Metrics.counter "rewrite.skipped_bytes"

type stats = {
  st_threads : int;
  st_frames : int;
  st_values : int;
  st_ptrs_translated : int;
  st_code_pages : int;
  st_stack_bytes : int;
  st_plan_hits : int;
  st_plan_misses : int;
  st_index_lookups : int;
  st_interval_lookups : int;
  st_memo_page_hits : int;
  st_memo_thread_hits : int;
  st_skipped_bytes : int;
}

let work_items s =
  s.st_frames + s.st_values + s.st_ptrs_translated + (s.st_code_pages * 8)
  + (s.st_stack_bytes / 256)

(* ----- mutable page store used while rebuilding the image ----- *)

type store = {
  pages : (int, Bytes.t) Hashtbl.t;            (* dumped pages *)
  mutable lazies : Images.pagemap_entry list;  (* entries left on the source node *)
}

let store_of_image (is : Images.image_set) =
  let pages = Hashtbl.create 256 in
  let lazies = ref [] in
  let cursor = ref 0 in
  List.iter
    (fun (e : Images.pagemap_entry) ->
      if e.pm_in_dump then
        for k = 0 to e.pm_npages - 1 do
          let pn = Layout.page_of_addr e.pm_vaddr + k in
          let b = Bytes.create Layout.page_size in
          Bytes.blit_string is.is_pages !cursor b 0 Layout.page_size;
          cursor := !cursor + Layout.page_size;
          Hashtbl.replace pages pn b
        done
      else lazies := e :: !lazies)
    is.is_pagemap;
  { pages; lazies = List.rev !lazies }

let store_page st pn =
  match Hashtbl.find_opt st.pages pn with
  | Some b -> b
  | None -> fail "rewriter touched page %d which is not in the dump" pn

let store_write_u64 st addr v =
  let pn = Layout.page_of_addr addr in
  let off = Layout.page_offset addr in
  if off + 8 <= Layout.page_size then Bytes.set_int64_le (store_page st pn) off v
  else
    for k = 0 to 7 do
      let a = Int64.add addr (Int64.of_int k) in
      Bytes.set
        (store_page st (Layout.page_of_addr a))
        (Layout.page_offset a)
        (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xFF))
    done

let store_write_bytes st addr s =
  String.iteri
    (fun k c ->
      let a = Int64.add addr (Int64.of_int k) in
      Bytes.set (store_page st (Layout.page_of_addr a)) (Layout.page_offset a) c)
    s

let is_code_page pn =
  let a = Layout.addr_of_page pn in
  Int64.compare a Layout.code_base >= 0 && Int64.compare a Layout.data_base < 0

(* Emit a sorted pagemap + pages blob from the store. *)
let store_to_image st =
  let dumped =
    Hashtbl.fold (fun pn _ acc -> pn :: acc) st.pages [] |> List.sort Int.compare
  in
  let entries_dumped =
    let rec go acc = function
      | [] -> List.rev acc
      | pn :: rest ->
        (match acc with
         | { Images.pm_vaddr; pm_npages; pm_in_dump = true } :: acc_rest
           when Layout.page_of_addr pm_vaddr + pm_npages = pn ->
           go ({ Images.pm_vaddr; pm_npages = pm_npages + 1; pm_in_dump = true } :: acc_rest)
             rest
         | _ ->
           go
             ({ Images.pm_vaddr = Layout.addr_of_page pn; pm_npages = 1; pm_in_dump = true }
              :: acc)
             rest)
    in
    go [] dumped
  in
  let entries =
    List.sort
      (fun (a : Images.pagemap_entry) b -> Int64.compare a.pm_vaddr b.pm_vaddr)
      (entries_dumped @ st.lazies)
  in
  let blob = Buffer.create (List.length dumped * Layout.page_size) in
  List.iter
    (fun (e : Images.pagemap_entry) ->
      if e.pm_in_dump then
        for k = 0 to e.pm_npages - 1 do
          Buffer.add_bytes blob (Hashtbl.find st.pages (Layout.page_of_addr e.pm_vaddr + k))
        done)
    entries;
  (entries, Buffer.contents blob)

(* ----- destination frame placement ----- *)

type dst_frame = {
  df_src : Unwind.frame;
  df_fm : Stackmap.func_map;
  df_ep : Stackmap.eqpoint;
  df_fp : int64;
}

(* Initial stack pointer a fresh thread starts with (before any implicit
   return-address push), matching Process.setup_stack. *)
let initial_sp tid = Int64.sub (Layout.stack_base_of_thread tid) 64L

let place_frames ix_dst tid (ts : Unwind.thread_stack) =
  let frames = List.rev ts.Unwind.ts_frames in
  (* outermost first *)
  let rec go sp acc = function
    | [] -> List.rev acc
    | (fr : Unwind.frame) :: rest ->
      let fm =
        match Stackmap_index.find_func ix_dst fr.fr_func.fm_name with
        | Some fm -> fm
        | None -> fail "function %s missing from destination stack maps" fr.fr_func.fm_name
      in
      let ep =
        match Stackmap_index.eqpoint_by_id ix_dst fm.fm_name fr.fr_ep.ep_id with
        | Some ep -> ep
        | None ->
          fail "equivalence point %d missing from %s on destination" fr.fr_ep.ep_id
            fm.fm_name
      in
      let fp = Int64.sub sp 16L in
      let sp' = Int64.sub fp (Int64.of_int fm.fm_frame_size) in
      go sp' ({ df_src = fr; df_fm = fm; df_ep = ep; df_fp = fp } :: acc) rest
  in
  go (initial_sp tid) [] frames

(* ----- the rewrite ----- *)

let rewrite_exn ?memo (image : Images.image_set) ~(src : Binary.t) ~(dst : Binary.t) =
  (* per-run plan counters ride an attached sink, immune to concurrent
     resets of the process-global tallies mid-rewrite *)
  let pc = Plan_cache.fresh_counters () in
  Plan_cache.attach pc;
  Fun.protect ~finally:(fun () -> Plan_cache.detach pc) @@ fun () ->
  if not (Arch.equal image.is_files.fi_arch src.bin_arch) then
    fail "image architecture %s does not match source binary %s"
      (Arch.name image.is_files.fi_arch) (Arch.name src.bin_arch);
  if image.is_files.fi_app <> src.bin_app || src.bin_app <> dst.bin_app then
    fail "application mismatch between image and binaries";
  let src_maps = src.bin_stackmaps and dst_maps = dst.bin_stackmaps in
  let dst_arch = dst.bin_arch in
  let index_lookups0 = Stackmap_index.lookup_count () in
  let ix_src = Stackmap_index.get src_maps in
  let ix_dst = Stackmap_index.get dst_maps in
  (* ok_exn re-raises the carrier: an unwind failure surfaces from the
     public [rewrite] as [Unwind_failed], not disguised as a recode. *)
  let stacks = Dapper_error.ok_exn (Unwind.unwind_all image src_maps ~anchors:src.bin_anchors) in
  let placed =
    List.map (fun ts -> (ts, place_frames ix_dst ts.Unwind.ts_tid ts)) stacks
  in
  (* Global source-stack interval map for pointer translation. Which live
     values contribute an interval is a frame-placement decision memoized
     in the plan cache; the concrete offsets come from the current
     binaries' stack-map indexes. *)
  let frame_off ix fn ep_id key =
    match Stackmap_index.live_value ix fn ep_id key with
    | Some { Stackmap.lv_loc = Stackmap.Frame off; _ } -> off
    | Some { Stackmap.lv_loc = Stackmap.Reg _; _ } | None ->
      fail "%s: plan expects frame-resident live value at ep %d" fn ep_id
  in
  let intervals = ref [] in
  List.iter
    (fun ((_ : Unwind.thread_stack), dframes) ->
      List.iter
        (fun df ->
          let fn = df.df_fm.Stackmap.fm_name in
          let ep_id = df.df_ep.Stackmap.ep_id in
          let plan =
            Plan_cache.lookup ~app:src.bin_app ~src_arch:src.bin_arch ~dst_arch
              ~fn ~ep_id ~src_ep:df.df_src.fr_ep ~dst_ep:df.df_ep
          in
          List.iter
            (fun (key, size) ->
              let src_off = frame_off ix_src fn ep_id key in
              let dst_off = frame_off ix_dst fn ep_id key in
              let src_lo = Int64.add df.df_src.fr_fp (Int64.of_int src_off) in
              let dst_lo = Int64.add df.df_fp (Int64.of_int dst_off) in
              intervals :=
                (src_lo, Int64.add src_lo (Int64.of_int size), dst_lo) :: !intervals)
            plan.Plan_cache.pl_intervals)
        dframes)
    placed;
  let intervals = !intervals in
  let imap = Dapper_util.Interval_map.of_list intervals in
  let imap_ok = Dapper_util.Interval_map.disjoint imap in
  let ptrs_translated = ref 0 in
  let interval_lookups = ref 0 in
  let translate v =
    incr interval_lookups;
    if imap_ok then
      match Dapper_util.Interval_map.find_interval imap v with
      | Some (lo, _, dst_lo) ->
        incr ptrs_translated;
        Int64.add dst_lo (Int64.sub v lo)
      | None -> v
    else
      (* Overlapping intervals: fall back to the first-match linear scan
         so translation picks the same interval the unindexed rewriter
         would have. *)
      match
        List.find_opt
          (fun (lo, hi, _) -> Int64.compare v lo >= 0 && Int64.compare v hi < 0)
          intervals
      with
      | Some (lo, _, dst_lo) ->
        incr ptrs_translated;
        Int64.add dst_lo (Int64.sub v lo)
      | None -> v
  in
  let in_stack_region v =
    Int64.compare v (Layout.stack_limit_of_thread (Layout.max_threads - 1)) >= 0
    && Int64.compare v Layout.stack_top < 0
  in
  (* Build the new page store. *)
  let st = store_of_image image in
  (* Drop source execution-context code pages; the destination's are added
     below. *)
  let dropped =
    Hashtbl.fold (fun pn _ acc -> if is_code_page pn then pn :: acc else acc) st.pages []
  in
  List.iter (Hashtbl.remove st.pages) dropped;
  (* Output-level memoization context: the environment digest pins the
     memo to this exact binary pair (stack-map contents, destination
     text, anchors, architectures); the interval-set digest captures the
     only cross-thread coupling a thread's rewritten output depends on. *)
  let memo_ctx =
    match memo with
    | None -> None
    | Some m ->
      let env =
        Digest.string
          (Marshal.to_string
             ( src.bin_app, Arch.name src.bin_arch, Arch.name dst_arch,
               Stackmap_index.content_digest src_maps,
               Stackmap_index.content_digest dst_maps,
               src.bin_anchors, dst.bin_anchors,
               match Binary.find_section dst ".text" with
               | Some s -> Digest.string s.sec_data
               | None -> "" )
             [])
      in
      ignore (Plan_cache.memo_bind m ~env);
      Some (m, Digest.string (Marshal.to_string intervals []))
  in
  (* A thread's rewritten output is a function of its own unwound stack
     (frames, live-value bytes), its argument registers and TLS, which
     of its stack pages the dump contains, and the interval set — the
     memo key digests exactly those. *)
  let thread_digest (ts : Unwind.thread_stack) pages ivd =
    Digest.string
      (Marshal.to_string
         ( ts.Unwind.ts_tid,
           List.map
             (fun (fr : Unwind.frame) ->
               ( fr.Unwind.fr_func.Stackmap.fm_name, fr.Unwind.fr_ep.Stackmap.ep_id,
                 fr.Unwind.fr_at_call, fr.Unwind.fr_fp, fr.Unwind.fr_values ))
             ts.Unwind.ts_frames,
           ts.Unwind.ts_arg_regs, ts.Unwind.ts_tls, pages, ivd )
         [])
  in
  (* Stack page numbers of one thread present in the dump. *)
  let thread_pages (ts : Unwind.thread_stack) =
    let tid = ts.Unwind.ts_tid in
    let first = Layout.page_of_addr (Layout.stack_limit_of_thread tid) in
    let last = Layout.page_of_addr (Int64.sub (Layout.stack_base_of_thread tid) 1L) in
    let acc = ref [] in
    for pn = first to last do
      if Hashtbl.mem st.pages pn then acc := pn :: !acc
    done;
    List.rev !acc
  in
  let stack_bytes = ref 0 in
  let zero_thread pages =
    List.iter
      (fun pn ->
        Bytes.fill (Hashtbl.find st.pages pn) 0 Layout.page_size '\000';
        stack_bytes := !stack_bytes + Layout.page_size)
      pages
  in
  let frames_count = ref 0 in
  let values_count = ref 0 in
  let rewrite_thread (ts : Unwind.thread_stack) (dframes : dst_frame list) =
    let tid = ts.Unwind.ts_tid in
    let ctx = Array.make 33 0L in
    let caller_fp = ref 0L in
    let ret_addr =
      ref
        (if tid = 0 then dst.bin_anchors.a_exit_stub
         else dst.bin_anchors.a_thread_exit_stub)
    in
    let n = List.length dframes in
    List.iteri
      (fun k df ->
        incr frames_count;
        let innermost = k = n - 1 in
        let fp = df.df_fp in
        (* return address per destination ABI *)
        (match dst_arch with
         | Arch.X86_64 -> store_write_u64 st (Int64.add fp 8L) !ret_addr
         | Arch.Aarch64 ->
           if df.df_fm.fm_leaf && innermost && not df.df_src.fr_at_call then
             ctx.(30) <- !ret_addr
           else store_write_u64 st (Int64.add fp 8L) !ret_addr);
        (* caller frame-pointer chain *)
        store_write_u64 st fp !caller_fp;
        caller_fp := fp;
        (* save area holds the caller's callee-saved register values *)
        List.iter
          (fun (r, off) -> store_write_u64 st (Int64.add fp (Int64.of_int off)) ctx.(r))
          df.df_fm.fm_saved;
        (* live values; hash the source frame's values once instead of an
           assoc scan per destination live value *)
        let src_values = Hashtbl.create (List.length df.df_src.fr_values) in
        List.iter
          (fun (key, bytes) ->
            if not (Hashtbl.mem src_values key) then Hashtbl.add src_values key bytes)
          df.df_src.fr_values;
        List.iter
          (fun (lv : Stackmap.live_value) ->
            incr values_count;
            let bytes =
              match Hashtbl.find_opt src_values lv.lv_key with
              | Some b -> b
              | None ->
                fail "%s: live value missing from source at ep %d" df.df_fm.fm_name
                  df.df_ep.ep_id
            in
            if String.length bytes <> lv.lv_size then
              fail "%s: live value size mismatch" df.df_fm.fm_name;
            (* Stack pointers are translated eagerly: the interval map was
               built from the completed frame placement of every thread, and
               [ctx] is reused frame to frame — a caller's promoted pointer
               must be translated before the callee's save-area write copies
               it, and before the callee reassigns the register. *)
            match lv.lv_loc with
            | Stackmap.Reg r ->
              let value = Dapper_util.Bytebuf.get_i64 bytes 0 in
              ctx.(r) <-
                (if lv.lv_ty = Stackmap.Lv_ptr && in_stack_region value then
                   translate value
                 else value)
            | Stackmap.Frame off ->
              let base = Int64.add fp (Int64.of_int off) in
              if lv.lv_ty = Stackmap.Lv_ptr then
                for e = 0 to (lv.lv_size / 8) - 1 do
                  let value = Dapper_util.Bytebuf.get_i64 bytes (e * 8) in
                  let a = Int64.add base (Int64.of_int (e * 8)) in
                  store_write_u64 st a
                    (if in_stack_region value then translate value else value)
                done
              else store_write_bytes st base bytes)
          df.df_ep.ep_live;
        ret_addr := df.df_ep.ep_resume)
      dframes;
    let inner =
      match List.rev dframes with
      | inner :: _ -> inner
      | [] -> fail "thread %d has no frames" tid
    in
    let pc =
      if inner.df_src.fr_at_call then inner.df_ep.ep_addr else inner.df_ep.ep_resume
    in
    ctx.(Arch.fp dst_arch) <- inner.df_fp;
    ctx.(Arch.sp dst_arch) <-
      Int64.sub inner.df_fp (Int64.of_int inner.df_fm.fm_frame_size);
    List.iteri
      (fun idx value -> ctx.(List.nth (Arch.arg_regs dst_arch) idx) <- value)
      ts.ts_arg_regs;
    let tls =
      Int64.add
        (Int64.sub ts.ts_tls (Int64.of_int (Arch.tls_offset src.bin_arch)))
        (Int64.of_int (Arch.tls_offset dst_arch))
    in
    { Images.tc_tid = tid; tc_arch = dst_arch; tc_regs = ctx; tc_pc = pc; tc_tls = tls }
  in
  let memo_page_hits = ref 0 in
  let memo_thread_hits = ref 0 in
  let skipped_bytes = ref 0 in
  (* Per-thread zero + rewrite. A thread's writes are confined to its own
     stack pages and its reads come from the unwound [fr_values] (captured
     before any zeroing), so interleaving zero/rewrite per thread is
     equivalent to the zero-all-then-rewrite-all order — which lets a
     memo hit skip both for an unchanged thread. *)
  let run_thread (ts : Unwind.thread_stack) dframes =
    let pages = thread_pages ts in
    match memo_ctx with
    | None ->
      zero_thread pages;
      rewrite_thread ts dframes
    | Some (m, ivd) ->
      let digest = thread_digest ts pages ivd in
      (match Plan_cache.memo_thread_hit m ts.Unwind.ts_tid digest with
       | Some patch ->
         incr memo_thread_hits;
         List.iter
           (fun (pn, data) ->
             Hashtbl.replace st.pages pn (Bytes.of_string data);
             skipped_bytes := !skipped_bytes + String.length data)
           patch.Plan_cache.tp_pages;
         patch.Plan_cache.tp_core
       | None ->
         zero_thread pages;
         let tc = rewrite_thread ts dframes in
         let patch =
           { Plan_cache.tp_core = tc;
             tp_pages =
               List.map (fun pn -> (pn, Bytes.to_string (Hashtbl.find st.pages pn))) pages }
         in
         Plan_cache.memo_thread_store m ts.Unwind.ts_tid digest patch;
         tc)
  in
  let new_cores = List.map (fun (ts, dframes) -> run_thread ts dframes) placed in
  (* Destination execution-context code pages. *)
  let code_pages = ref 0 in
  List.iter
    (fun (tc : Images.thread_core) ->
      let pn = Layout.page_of_addr tc.tc_pc in
      if not (Hashtbl.mem st.pages pn) then begin
        incr code_pages;
        let page = Bytes.make Layout.page_size '\000' in
        (match Binary.find_section dst ".text" with
         | Some s ->
           let off = Int64.to_int (Int64.sub (Layout.addr_of_page pn) s.sec_addr) in
           let len = String.length s.sec_data in
           if off >= 0 && off < len then
             Bytes.blit_string s.sec_data off page 0 (min Layout.page_size (len - off))
         | None -> fail "destination binary has no text section");
        Hashtbl.replace st.pages pn page
      end)
    new_cores;
  (* Lower the transformation flag inside the image so restored threads do
     not immediately re-trap. In lazy mode the flag's data page may not be
     in the dump; the restorer also clears the flag in memory, which pulls
     the page from the page server first. *)
  if Hashtbl.mem st.pages (Layout.page_of_addr dst.bin_anchors.a_flag) then
    store_write_u64 st dst.bin_anchors.a_flag 0L;
  (* Pass-through page memoization: data/heap/TLS pages the rewriter
     copies verbatim. A content-digest hit means the page's encoded
     output is byte-identical to the previous run and need not be
     re-encoded — the skipped bytes feed the incremental recode cost.
     Stack pages are covered by the thread memo; code pages are rebuilt
     from the destination text; the flag page's output differs from its
     input (the flag is lowered), so all three are excluded. *)
  (match memo_ctx with
   | None -> ()
   | Some (m, _) ->
     let flag_pn = Layout.page_of_addr dst.bin_anchors.a_flag in
     Hashtbl.iter
       (fun pn page ->
         if
           (not (is_code_page pn))
           && (not (in_stack_region (Layout.addr_of_page pn)))
           && pn <> flag_pn
         then begin
           let d = Digest.bytes page in
           if Plan_cache.memo_page_hit m pn d then begin
             incr memo_page_hits;
             skipped_bytes := !skipped_bytes + Layout.page_size
           end
           else Plan_cache.memo_page_store m pn d
         end)
       st.pages);
  let entries, blob = store_to_image st in
  (* VMA list: recompute the code VMAs, keep the rest. *)
  let vmas =
    List.filter
      (fun (vma : Images.vma) -> vma.v_kind <> Images.Vk_code)
      image.is_mm.mm_vmas
    @ List.filter_map
        (fun (e : Images.pagemap_entry) ->
          if is_code_page (Layout.page_of_addr e.pm_vaddr) then
            Some
              { Images.v_start = e.pm_vaddr; v_npages = e.pm_npages;
                v_kind = Images.Vk_code }
          else None)
        entries
  in
  let image' =
    { Images.is_cores = new_cores;
      is_mm = { image.is_mm with mm_vmas = vmas };
      is_pagemap = entries;
      is_pages = blob;
      is_files = { Images.fi_app = dst.bin_app; fi_arch = dst_arch } }
  in
  let stats =
    { st_threads = List.length new_cores;
      st_frames = !frames_count;
      st_values = !values_count;
      st_ptrs_translated = !ptrs_translated;
      st_code_pages = !code_pages;
      st_stack_bytes = !stack_bytes;
      st_plan_hits = pc.Plan_cache.c_hits;
      st_plan_misses = pc.Plan_cache.c_misses;
      st_index_lookups = Stackmap_index.lookup_count () - index_lookups0;
      st_interval_lookups = !interval_lookups;
      st_memo_page_hits = !memo_page_hits;
      st_memo_thread_hits = !memo_thread_hits;
      st_skipped_bytes = !skipped_bytes }
  in
  Metrics.inc m_runs;
  Metrics.inc m_threads ~by:stats.st_threads;
  Metrics.inc m_frames ~by:stats.st_frames;
  Metrics.inc m_values ~by:stats.st_values;
  Metrics.inc m_ptrs ~by:stats.st_ptrs_translated;
  Metrics.inc m_code_pages ~by:stats.st_code_pages;
  Metrics.inc m_stack_bytes ~by:stats.st_stack_bytes;
  Metrics.inc m_plan_hits ~by:stats.st_plan_hits;
  Metrics.inc m_plan_misses ~by:stats.st_plan_misses;
  Metrics.inc m_index_lookups ~by:stats.st_index_lookups;
  Metrics.inc m_interval_lookups ~by:stats.st_interval_lookups;
  Metrics.inc m_memo_page_hits ~by:stats.st_memo_page_hits;
  Metrics.inc m_memo_thread_hits ~by:stats.st_memo_thread_hits;
  Metrics.inc m_skipped_bytes ~by:stats.st_skipped_bytes;
  (image', stats)

let rewrite ?memo image ~src ~dst =
  Dapper_error.protect (fun () -> rewrite_exn ?memo image ~src ~dst)
