(** Stack-slot shuffling (paper Sections III-C "shuffle the stack slot
    layout" and IV-B).

    Produces a binary variant in which each function's named stack
    allocations are permuted within their size classes, patching every
    fp-relative memory access and address materialization in the code
    (static binary instrumentation over the disassembly, as the paper
    does with capstone) and rewriting the stack-map records to match.

    Rewriting a {e live} process to the shuffled layout is then just
    {!Rewrite.rewrite} with the shuffled binary as destination — same
    mechanism as cross-ISA migration, same ISA on both sides.

    On aarch64, slots referenced through load/store-pair instructions
    are pinned (re-encoding a pair into two single accesses is out of
    scope, as in the paper), which lowers the achieved entropy —
    Fig. 10's asymmetry. *)

open Dapper_util
open Dapper_binary

exception Shuffle_error of string

type func_entropy = {
  fe_name : string;
  fe_slots : int;          (** named allocations in the frame *)
  fe_shuffled : int;       (** allocations that actually moved classes *)
  fe_pinned : int;         (** excluded due to pair instructions *)
  fe_bits : float;         (** bits of entropy: pairwise shuffles = shuffled/2 *)
}

type stats = {
  sh_funcs : func_entropy list;
  sh_code_bytes_patched : int;
  sh_instrs_rewritten : int;
}

(** Mean bits of entropy across all functions with at least one slot. *)
val average_bits : stats -> float

(** [shuffle_binary rng binary] returns the shuffled variant and stats.
    The variant has identical code size and symbol addresses. *)
val shuffle_binary : Rng.t -> Binary.t -> Binary.t * stats

(** Possible stack frames for [bits] of entropy: [1 + (2n-1)!!] (paper's
    double-factorial formula). *)
val layouts_for_bits : int -> float

(** Probability an attacker guesses one allocation: [1 / (2 n)]. *)
val guess_probability : int -> float
