open Dapper_util
open Dapper_isa
open Dapper_binary
open Dapper_criu

let fail fmt = Dapper_error.failf (fun s -> Dapper_error.Unwind_failed s) fmt

type frame = {
  fr_func : Stackmap.func_map;
  fr_ep : Stackmap.eqpoint;
  fr_fp : int64;
  fr_at_call : bool;
  fr_values : (Stackmap.lv_key * string) list;
}

type thread_stack = {
  ts_tid : int;
  ts_frames : frame list;
  ts_arg_regs : int64 list;
  ts_tls : int64;
}

let read_bytes image addr len =
  let b = Bytes.create len in
  (* read in 8-byte chunks through the image accessor *)
  let full = len / 8 in
  for k = 0 to full - 1 do
    Bytes.set_int64_le b (k * 8) (Images.read_u64 image (Int64.add addr (Int64.of_int (k * 8))))
  done;
  if len mod 8 <> 0 then fail "live value size %d not a multiple of 8" len;
  Bytes.to_string b

let extract_values image (ctx : int64 array) fp (ep : Stackmap.eqpoint) =
  List.map
    (fun (lv : Stackmap.live_value) ->
      let bytes =
        match lv.lv_loc with
        | Stackmap.Reg r ->
          let b = Bytes.create 8 in
          Bytes.set_int64_le b 0 ctx.(r);
          Bytes.to_string b
        | Stackmap.Frame off -> read_bytes image (Int64.add fp (Int64.of_int off)) lv.lv_size
      in
      (lv.lv_key, bytes))
    ep.ep_live

(* Find the equivalence point a paused thread sits at: either a trap
   resume address (entry/backedge checker) or, for a rolled-back thread,
   the call instruction itself. *)
let innermost_ep ix (fm : Stackmap.func_map) pc =
  match Stackmap_index.eqpoint_by_resume ix fm.fm_name pc with
  | Some ep -> (ep, false)
  | None ->
    (match Stackmap_index.eqpoint_at_addr ix fm.fm_name pc with
     | Some ({ ep_kind = Stackmap.Call_site _; _ } as ep) -> (ep, true)
     | Some _ | None -> fail "thread paused at 0x%Lx: no equivalence point" pc)

let unwind_exn image maps ~(anchors : Binary.anchors) (tc : Images.thread_core) =
  let ix = Stackmap_index.get maps in
  let arch = tc.tc_arch in
  let ctx = Array.copy tc.tc_regs in
  let fm0 =
    match Stackmap_index.func_of_addr ix tc.tc_pc with
    | Some fm -> fm
    | None -> fail "thread %d pc 0x%Lx not in any function" tc.tc_tid tc.tc_pc
  in
  let ep0, at_call = innermost_ep ix fm0 tc.tc_pc in
  let is_bottom ret =
    Int64.equal ret anchors.a_exit_stub || Int64.equal ret anchors.a_thread_exit_stub
  in
  let rec walk fm (ep : Stackmap.eqpoint) fp at_call innermost acc =
    let values = extract_values image ctx fp ep in
    let frame = { fr_func = fm; fr_ep = ep; fr_fp = fp; fr_at_call = at_call;
                  fr_values = values } in
    let acc = frame :: acc in
    (* Return address: aarch64 leaf frames keep it in the link register
       (only possible for the innermost, trapped frame). *)
    let ret_addr =
      if arch = Arch.Aarch64 && fm.fm_leaf && innermost && not at_call then ctx.(30)
      else Images.read_u64 image (Int64.add fp 8L)
    in
    (* Recover the caller's callee-saved register context from this
       frame's save area, and the caller's frame pointer. *)
    List.iter
      (fun (r, off) -> ctx.(r) <- Images.read_u64 image (Int64.add fp (Int64.of_int off)))
      fm.fm_saved;
    let caller_fp = Images.read_u64 image fp in
    if is_bottom ret_addr then List.rev acc
    else
      match Stackmap_index.func_of_addr ix ret_addr with
      | None -> fail "return address 0x%Lx not in any function" ret_addr
      | Some fm' ->
        (match Stackmap_index.eqpoint_by_resume ix fm'.fm_name ret_addr with
         | Some ({ ep_kind = Stackmap.Call_site _; _ } as ep') ->
           walk fm' ep' caller_fp false false acc
         | Some _ | None ->
           fail "return address 0x%Lx is not a call-site equivalence point" ret_addr)
  in
  let fp0 = ctx.(Arch.fp arch) in
  let frames = walk fm0 ep0 fp0 at_call true [] in
  let arg_regs =
    if at_call then
      match ep0.ep_kind with
      | Stackmap.Call_site { cs_nargs } ->
        List.filteri (fun idx _ -> idx < cs_nargs)
          (List.map (fun r -> tc.tc_regs.(r)) (Arch.arg_regs arch))
      | Stackmap.Entry | Stackmap.Backedge -> []
    else []
  in
  (* [walk] reverses its accumulator before returning, so [frames] is
     already innermost first. *)
  { ts_tid = tc.tc_tid; ts_frames = frames; ts_arg_regs = arg_regs;
    ts_tls = tc.tc_tls }

let unwind_all_exn image maps ~anchors =
  List.map (unwind_exn image maps ~anchors) image.Images.is_cores

let unwind image maps ~anchors tc =
  Dapper_error.protect (fun () -> unwind_exn image maps ~anchors tc)

let unwind_all image maps ~anchors =
  Dapper_error.protect (fun () -> unwind_all_exn image maps ~anchors)
