(** Migration sessions: the paper's pipeline as an explicit, typed state
    machine with two-phase-commit semantics.

    A live migration proceeds [Paused -> Dumped -> Recoded ->
    Transferred -> Restored -> Committed]; each transition is a
    [result]-returning step over a state-indexed session value, so a
    driver can only apply stages in order, and per-stage timing, retry,
    and rollback-with-resume fall out of the structure:

    - every completed step appends a {!stage_record} carrying that
      stage's modeled cost contribution (the per-phase breakdown of
      Fig. 5/7 is just {!times} over the log);
    - any step may fail with a {!Dapper_error.t}; {!rollback} (called
      automatically by every step and by {!run}) un-pauses the source so
      a failed migration never strands the process at its equivalence
      points;
    - {!retry} re-runs a step while its error is transient
      ({!Dapper_error.retriable} by default).

    The two-phase-commit discipline: the paused source is the commit
    point's fallback until {!commit} succeeds — the destination must
    survive to the acknowledgement, (optionally) drain every outstanding
    post-copy page, and present observable state identical to the paused
    source. Any failure before that acknowledgement — including a
    destination crash after a successful restore — rolls back to a
    running source; only a successful commit transfers ownership.

    The eager-vs-lazy distinction lives in the session's
    {!Transport.t}: a lazy transport makes [dump] keep non-essential
    pages on the source and [restore] install a demand-page source
    served (with accounting) from the paused source process.

    Fault injection: when {!config.cfg_fault} carries a {!Fault.t}
    schedule, the transfer stage, the lazy page path and the
    restore/commit stages consult it — transfers may be dropped,
    corrupted or delayed (detected by checksums, recovered by a
    {!Transport.retrying} policy), the source's page server may become
    unreachable mid-paging, and the destination may fail during restore
    or before the commit acknowledgement. *)

open Dapper_util
open Dapper_binary
open Dapper_machine
open Dapper_criu
open Dapper_net

(** {1 Configuration} *)

type config = {
  cfg_src_node : Node.t;       (** where the process runs now *)
  cfg_dst_node : Node.t;       (** where it resumes *)
  cfg_recode_node : Node.t;    (** where the state rewrite executes *)
  cfg_transport : Transport.t; (** eager scp or lazy page-server *)
  cfg_src_bin : Binary.t;
  cfg_dst_bin : Binary.t;
  cfg_bytes_scale : float;     (** footprint multiplier for cost modeling *)
  cfg_pause_budget : int;      (** drain budget (instructions) for pause *)
  cfg_commit_drain : bool;
  (** drain all outstanding post-copy pages at commit, removing the
      destination's dependence on the source before ownership transfers
      (default off: commit is verification/ack only, preserving lazy
      page-fault accounting) *)
  cfg_fault : Fault.t option;  (** chaos plane; [None] = clean run *)
  cfg_pipeline : bool;
  (** stream recoded chunks into the transfer stage so recode time
      hides under transmission (the transfer stage then charges only
      the pipeline makespan's excess over the recode cost, plus any
      fault/retry surcharge). Wire semantics — faults, checksums,
      retransmission, commit/rollback — are unchanged. Default off:
      the sequential cost model of the paper's figures. *)
  cfg_chunk_bytes : int;
  (** producer/consumer chunk size for [cfg_pipeline] (default 256
      KiB). Each chunk pays the link's per-transfer latency, so
      smaller chunks overlap more but cost more wire time. *)
  cfg_recode_workers : int;
  (** recode worker count, clamped to [1 ..
      cfg_recode_node.n_cores]. 1 (default) is the exact sequential
      cost model; more workers divide the recode critical path at
      page granularity. *)
  cfg_recode_memo : Plan_cache.memo option;
  (** output-level memoization consulted (and filled) by the recode
      stage: repeat migrations of an unchanged binary re-encode only
      changed threads/pages, shrinking the charged recode bytes and
      work items. [None] (default): every run recodes everything. *)
  cfg_resident_pages : int list;
  (** pages already materialized at the destination by {!precopy}
      rounds (pass [pcs_resident]). Transfer and eager restore charge
      for the image minus these pages' overlap with the dump; a lazy
      restore maps them immediately instead of demand-fetching, so only
      the pre-copy residual pays the post-copy fault tail (hybrid
      pre+post-copy). [[]] (default) is the classic behaviour, bit for
      bit. *)
}

(** Xeon-to-Pi over infiniband scp with the standard drain budget — the
    paper's testbed defaults. No commit drain, no faults. *)
val default_config : src_bin:Binary.t -> dst_bin:Binary.t -> config

(** {1 Per-stage cost model}

    Calibrated against the paper's measurements (EXPERIMENTS.md,
    "Calibration"). Checkpoint cost is anchored on the Xeon and restore
    cost on the Pi — the nodes each phase was measured on — and scale
    with the executing node's speed relative to its anchor. *)

val checkpoint_ms : node:Node.t -> bytes:int -> float
val restore_ms : node:Node.t -> bytes:int -> float
val lazy_restore_ms : node:Node.t -> float

(** [recode_ns node ~bytes stats] models the state rewrite: per-work-item
    and per-byte costs scaled by the node architecture's measured recode
    slowdown (paper Fig. 5). [bytes] is the byte volume actually
    re-encoded (the image size, minus any memo-skipped bytes) — explicit
    so callers cannot silently drop the dominant term. With [?workers]
    > 1 (clamped to the node's cores) the cost is the work-queue
    critical path: ceil shares of the work items and of the
    page-granular byte slices on the most-loaded core. [workers = 1]
    (default) is exactly the sequential formula. *)
val recode_ns : Node.t -> ?workers:int -> bytes:int -> Rewrite.stats -> float

(** {1 Iterative pre-copy}

    The anti-blackout prologue: stream memory while the source still
    serves, so the stop-and-copy window only carries what changed. *)

(** One pre-copy round: the pages it shipped, their scaled wire bytes,
    and the wire time the source kept serving through. *)
type precopy_round = {
  pr_round : int;   (** 1-based *)
  pr_pages : int;
  pr_bytes : int;
  pr_ms : float;
}

type precopy_stats = {
  pcs_rounds : precopy_round list;  (** in execution order *)
  pcs_pages_sent : int;   (** multiset total across rounds (re-sends count) *)
  pcs_bytes_sent : int;   (** scaled wire bytes across rounds *)
  pcs_ms : float;         (** total round time (not downtime — source live) *)
  pcs_resident : int list;
  (** pages clean at the destination, sorted — feed to
      {!config.cfg_resident_pages} *)
  pcs_residual : int list;
  (** pages still dirty after the last round, sorted — they move during
      the blackout (vanilla) or fault in after restore (hybrid) *)
}

(** [precopy cfg p ~advance ~max_rounds ~downtime_budget_ms] runs
    iterative pre-copy rounds over the live source [p]: round 1 ships
    every candidate page (the dump set minus clean code pages); [advance
    ms] runs the source for each round's wire time (dirty-page tracking
    is enabled around it); each later round re-ships the pages dirtied
    during the previous one. Stops when the dirty set would transfer
    within [downtime_budget_ms], stops shrinking, or [max_rounds] is
    reached. Never pauses the source, never fails; tracking is always
    disabled on exit, so abandoning the migration afterwards leaves the
    source exactly as before — the rollback story of the later stages is
    unchanged. *)
val precopy :
  config ->
  Process.t ->
  advance:(float -> unit) ->
  max_rounds:int ->
  downtime_budget_ms:float ->
  precopy_stats

(** {1 Phase times} *)

type phase_times = {
  t_checkpoint_ms : float;
  t_recode_ms : float;
  t_scp_ms : float;
  t_restore_ms : float;
}

val total_ms : phase_times -> float

(** One completed stage, its modeled cost, and the byte volume it
    charged for ([sr_bytes] = 0 for stages that charge none — pause,
    lazy restore, commit). Explicit byte accounting lets the overlap
    math and the sequential totals be reconciled from the log alone. *)
type stage_record = { sr_stage : Dapper_error.stage; sr_ms : float; sr_bytes : int }

(** Fold a stage log into the classic four-phase breakdown (pause and
    dump both contribute to the checkpoint phase; commit contributes to
    the restore phase). *)
val times_of_log : stage_record list -> phase_times

(** {1 The session state machine} *)

type 'st t = private {
  s_cfg : config;
  s_source : Process.t;
  s_log : stage_record list;  (** completed stages, most recent first *)
  s_tx : Transport.tx_stats;  (** this session's transfer accounting *)
  s_state : 'st;
}

(** Per-state payloads: each stage's evidence travels with the typed
    session, so a later stage cannot run without it. *)

type ready = Ready

type paused = { sp_pause : Monitor.pause_stats }

type dumped = {
  sd_pause : Monitor.pause_stats;
  sd_image : Images.image_set;
  sd_dump : Dump.stats;
}

type recoded = {
  sc_pause : Monitor.pause_stats;
  sc_image : Images.image_set;
  sc_rewrite : Rewrite.stats;
  sc_image_bytes : int;
}

type transferred = {
  sx_pause : Monitor.pause_stats;
  sx_image : Images.image_set;
  sx_rewrite : Rewrite.stats;
  sx_image_bytes : int;
}

type restored = {
  sf_pause : Monitor.pause_stats;
  sf_rewrite : Rewrite.stats;
  sf_image_bytes : int;
  sf_process : Process.t;
  sf_page_server : Transport.page_stats option;
  sf_lazy_pages : int list;  (** pages still owed by the source *)
}

type committed = {
  sm_pause : Monitor.pause_stats;
  sm_rewrite : Rewrite.stats;
  sm_image_bytes : int;
  sm_process : Process.t;
  sm_page_server : Transport.page_stats option;
  sm_drained : int;  (** post-copy pages pulled at commit *)
}

val start : config -> Process.t -> ready t

(** Quiesce the source at equivalence points. *)
val pause : ready t -> (paused t, Dapper_error.t) result

(** Checkpoint the quiesced source into an image set (lazy transports
    keep non-essential pages on the source). *)
val dump : paused t -> (dumped t, Dapper_error.t) result

(** Rewrite the image for the destination binary/ISA. *)
val recode : dumped t -> (recoded t, Dapper_error.t) result

(** Move the (eager part of the) image over the transport: serialized to
    its named files, checksummed, exposed to the fault plane, and — under
    a {!Transport.retrying} policy — retransmitted on drop/corruption. *)
val transfer : recoded t -> (transferred t, Dapper_error.t) result

(** Materialize the destination process; lazy transports install a
    demand-page source served from the paused source process. The fault
    plane may fail the destination here ([Restore_failed]). *)
val restore : transferred t -> (restored t, Dapper_error.t) result

(** The second phase of two-phase commit: the destination acknowledges a
    verified restore, after which (and only after which) the source may
    be discarded. With [cfg_commit_drain], first pulls every outstanding
    post-copy page through the fault-aware checksummed fetch path.
    Failure modes — destination lost before the ack ([Commit_failed],
    injected), page server unreachable mid-drain ([Source_lost]), drain
    retries exhausted ([Transfer_timeout]), or destination state not
    matching the paused source ([Commit_failed]) — all roll back to a
    running source. *)
val commit : restored t -> (committed t, Dapper_error.t) result

(** Un-pause the source (no-op if it already exited). Safe in any state;
    the steps and {!run} call it on failure so callers only need it when
    driving stages by hand and abandoning a session mid-way. *)
val rollback : _ t -> unit

(** [abort] is {!rollback} under its pre-2PC name. *)
val abort : _ t -> unit

(** Completed stage records, in execution order. *)
val stage_log : _ t -> stage_record list

val times : _ t -> phase_times

(** This session's eager-transfer accounting (attempts, retransmissions,
    detected corruption, injected latency). *)
val transfer_stats : _ t -> Transport.tx_stats

(** [retry ~attempts f] runs [f] up to [attempts] times, re-running
    while [should_retry] (default {!Dapper_error.retriable}) accepts the
    error; [before_retry] runs between attempts (e.g. let the source
    execute a little further). *)
val retry :
  attempts:int ->
  ?should_retry:(Dapper_error.t -> bool) ->
  ?before_retry:(unit -> unit) ->
  (unit -> ('a, Dapper_error.t) result) ->
  ('a, Dapper_error.t) result

(** {1 Driving a whole migration} *)

(** The classic migration result, assembled from a committed session. *)
type outcome = {
  r_process : Process.t;
  r_times : phase_times;
  r_image_bytes : int;
  r_rewrite : Rewrite.stats;
  r_pause : Monitor.pause_stats;
  r_page_server : Transport.page_stats option;
  r_transfer : Transport.tx_stats;
  r_drained : int;
}

val finish : committed t -> outcome

(** Run all six stages in order. On any stage failure the source is
    resumed ({!rollback}) and the stage's error returned. *)
val run : config -> Process.t -> (committed t, Dapper_error.t) result
