open Dapper_util
open Dapper_binary
open Dapper_machine
open Dapper_criu
open Dapper_net
module Trace = Dapper_obs.Trace
module Metrics = Dapper_obs.Metrics

type config = {
  cfg_src_node : Node.t;
  cfg_dst_node : Node.t;
  cfg_recode_node : Node.t;
  cfg_transport : Transport.t;
  cfg_src_bin : Binary.t;
  cfg_dst_bin : Binary.t;
  cfg_bytes_scale : float;
  cfg_pause_budget : int;
  cfg_commit_drain : bool;
  cfg_fault : Fault.t option;
  cfg_pipeline : bool;
  cfg_chunk_bytes : int;
  cfg_recode_workers : int;
  cfg_recode_memo : Plan_cache.memo option;
  cfg_resident_pages : int list;
}

let default_config ~src_bin ~dst_bin =
  { cfg_src_node = Node.xeon;
    cfg_dst_node = Node.rpi;
    cfg_recode_node = Node.xeon;
    cfg_transport = Transport.scp Link.infiniband;
    cfg_src_bin = src_bin;
    cfg_dst_bin = dst_bin;
    cfg_bytes_scale = 1.0;
    cfg_pause_budget = 50_000_000;
    cfg_commit_drain = false;
    cfg_fault = None;
    cfg_pipeline = false;
    cfg_chunk_bytes = 262_144;
    cfg_recode_workers = 1;
    cfg_recode_memo = None;
    cfg_resident_pages = [] }

(* Cost-model constants (see EXPERIMENTS.md, "Calibration"). *)
let checkpoint_fixed_ns = 3.0e6    (* freeze + /proc walk + image setup *)
let restore_fixed_ns = 3.0e6
let lazy_restore_ns = 8.0e6        (* paper: "takes about 8 ms" *)
let recode_item_ns = 150_000.0     (* per live value / frame on the Xeon *)
let recode_byte_ns = 2.6           (* per image byte decoded+re-encoded *)
let image_io_gbps = 24.0           (* tmpfs-backed dump/restore bandwidth *)

(* The fixed+bandwidth costs were calibrated on a specific node of the
   paper's testbed (checkpoint on the Xeon source, restore on the Pi
   destination); other nodes scale with their relative core speed. *)
let node_factor ~(anchor : Node.t) (node : Node.t) =
  anchor.n_ops_per_ns /. node.n_ops_per_ns

let checkpoint_ms ~node ~bytes =
  (checkpoint_fixed_ns +. (float_of_int bytes /. image_io_gbps)) /. 1e6
  *. node_factor ~anchor:Node.xeon node

let restore_ms ~node ~bytes =
  (restore_fixed_ns +. (float_of_int bytes /. image_io_gbps)) /. 1e6
  *. node_factor ~anchor:Node.rpi node

let lazy_restore_ms ~node =
  lazy_restore_ns /. 1e6 *. node_factor ~anchor:Node.rpi node

let recode_ns (node : Node.t) ?(workers = 1) ~bytes (stats : Rewrite.stats) =
  (* measured per-architecture recode slowdown (paper Fig. 5), independent
     of the raw execution-speed ratio *)
  let slowdown = Dapper_isa.Arch.recode_slowdown node.n_arch in
  let w = max 1 (min workers node.n_cores) in
  if w = 1 then
    (float_of_int (Rewrite.work_items stats) *. recode_item_ns
     +. (float_of_int bytes *. recode_byte_ns))
    *. slowdown
  else
    (* Work-queue critical path across [w] cores: frame/value work items
       and page-granular byte slices are pulled from a shared queue; the
       stage ends when the most-loaded worker (its ceil share) finishes.
       Pages are the byte-work unit, so below one page per worker extra
       cores buy nothing — parallel recode pays a granularity tax that a
       single worker (the exact sequential formula above) does not. *)
    let per_worker_items = (Rewrite.work_items stats + w - 1) / w in
    let pages = (bytes + Layout.page_size - 1) / Layout.page_size in
    let per_worker_pages = (pages + w - 1) / w in
    (float_of_int per_worker_items *. recode_item_ns
     +. (float_of_int (per_worker_pages * Layout.page_size) *. recode_byte_ns))
    *. slowdown

type phase_times = {
  t_checkpoint_ms : float;
  t_recode_ms : float;
  t_scp_ms : float;
  t_restore_ms : float;
}

let total_ms t = t.t_checkpoint_ms +. t.t_recode_ms +. t.t_scp_ms +. t.t_restore_ms

type stage_record = { sr_stage : Dapper_error.stage; sr_ms : float; sr_bytes : int }

let times_of_log log =
  List.fold_left
    (fun acc r ->
      match r.sr_stage with
      | Dapper_error.Pause | Dapper_error.Dump ->
        { acc with t_checkpoint_ms = acc.t_checkpoint_ms +. r.sr_ms }
      | Dapper_error.Recode -> { acc with t_recode_ms = acc.t_recode_ms +. r.sr_ms }
      | Dapper_error.Transfer -> { acc with t_scp_ms = acc.t_scp_ms +. r.sr_ms }
      | Dapper_error.Restore | Dapper_error.Commit ->
        { acc with t_restore_ms = acc.t_restore_ms +. r.sr_ms })
    { t_checkpoint_ms = 0.0; t_recode_ms = 0.0; t_scp_ms = 0.0; t_restore_ms = 0.0 }
    log

type 'st t = {
  s_cfg : config;
  s_source : Process.t;
  s_log : stage_record list;
  s_tx : Transport.tx_stats;
  s_state : 'st;
}

type ready = Ready

type paused = { sp_pause : Monitor.pause_stats }

type dumped = {
  sd_pause : Monitor.pause_stats;
  sd_image : Images.image_set;
  sd_dump : Dump.stats;
}

type recoded = {
  sc_pause : Monitor.pause_stats;
  sc_image : Images.image_set;
  sc_rewrite : Rewrite.stats;
  sc_image_bytes : int;
}

type transferred = {
  sx_pause : Monitor.pause_stats;
  sx_image : Images.image_set;
  sx_rewrite : Rewrite.stats;
  sx_image_bytes : int;
}

type restored = {
  sf_pause : Monitor.pause_stats;
  sf_rewrite : Rewrite.stats;
  sf_image_bytes : int;
  sf_process : Process.t;
  sf_page_server : Transport.page_stats option;
  sf_lazy_pages : int list;
}

type committed = {
  sm_pause : Monitor.pause_stats;
  sm_rewrite : Rewrite.stats;
  sm_image_bytes : int;
  sm_process : Process.t;
  sm_page_server : Transport.page_stats option;
  sm_drained : int;
}

let start cfg source =
  { s_cfg = cfg; s_source = source; s_log = [];
    s_tx = Transport.fresh_tx_stats (); s_state = Ready }

let stage_log s = List.rev s.s_log
let times s = times_of_log s.s_log
let transfer_stats s = s.s_tx

let m_commits = Metrics.counter "session.commits"
let m_rollbacks = Metrics.counter "session.rollbacks"
let m_stage_errors = Metrics.counter "session.stage_errors"

let stage_ms_hist stage =
  Metrics.histogram ("session.stage_ms." ^ Dapper_error.stage_name stage)

let rollback s =
  match s.s_source.Process.exit_code with
  | Some _ -> ()  (* nothing left to resume *)
  | None ->
    Metrics.inc m_rollbacks;
    Trace.leaf ~cat:"session" "rollback" ~dur_ns:0.0;
    Monitor.resume s.s_source

let abort = rollback

let scaled cfg b = int_of_float (float_of_int b *. cfg.cfg_bytes_scale)

(* Advance to state [st], recording the stage's modeled cost and the
   bytes it charged for (explicit, so the overlap math and the legacy
   sequential totals reconcile from the log alone); on error, un-pause
   the source so a failed migration never strands it. *)
let step s stage ?(bytes = 0) ~ms st =
  { s with s_log = { sr_stage = stage; sr_ms = ms; sr_bytes = bytes } :: s.s_log;
    s_state = st }

let guard s f =
  match f () with
  | Ok _ as ok -> ok
  | Error _ as err ->
    rollback s;
    err

(* Wrap one staged transition in a trace span and feed the stage's
   modeled cost into its metrics histogram. Metrics always record (the
   aggregate accounting plane is cheap and replayable); the span only
   exists while tracing. A span's duration is the stage's charged ms —
   since the trace clock never moves backwards, a span containing
   charged sub-work (a lazy restore serving pages, a draining commit)
   ends at that sub-work's end if it exceeds the stage's own cost. *)
let staged stage f (s : _ t) =
  Trace.with_span ~cat:"session" (Dapper_error.stage_name stage) (fun cl ->
      match f s with
      | Ok s' as ok ->
        let ms = match s'.s_log with r :: _ -> r.sr_ms | [] -> 0.0 in
        Metrics.observe (stage_ms_hist stage) ms;
        if stage = Dapper_error.Commit then Metrics.inc m_commits;
        Trace.set_dur cl (ms *. 1e6);
        ok
      | Error e ->
        Metrics.inc m_stage_errors;
        Trace.add_arg cl "error" (Dapper_error.to_string e);
        Error e)

(* ----- iterative pre-copy ----- *)

type precopy_round = {
  pr_round : int;
  pr_pages : int;
  pr_bytes : int;
  pr_ms : float;
}

type precopy_stats = {
  pcs_rounds : precopy_round list;
  pcs_pages_sent : int;
  pcs_bytes_sent : int;
  pcs_ms : float;
  pcs_resident : int list;
  pcs_residual : int list;
}

let m_precopy_rounds = Metrics.counter "session.precopy.rounds"
let m_precopy_pages = Metrics.counter "session.precopy.pages"
let m_precopy_round_ms = Metrics.histogram "session.precopy.round_ms"

(* Pages worth shipping ahead of the blackout: everything the dump would
   carry except clean code pages, which the destination demand-loads from
   its own binary. *)
let precopy_candidate p pn =
  match Process.vma_kind_of_page p pn with
  | Some Process.Vma_code -> false
  | Some _ | None -> true

(* Iterative pre-copy over the live source: round 1 streams every
   candidate page while the process keeps serving ([advance] runs it for
   the round's wire time); each later round re-ships the pages dirtied
   during the previous round. Rounds stop when the remaining dirty set
   would fit in [downtime_budget_ms] on the wire, stops shrinking, or
   [max_rounds] is reached. The returned [pcs_resident] pages are clean
   at the destination (feed them to [cfg_resident_pages]); [pcs_residual]
   are still dirty and must move during the blackout (vanilla) or be
   demand-fetched after restore (hybrid). Dirty tracking is always
   disabled on exit, so an abandoned pre-copy leaves the source exactly
   as it was — running, untracked, unharmed. *)
let precopy cfg p ~advance ~max_rounds ~downtime_budget_ms =
  if max_rounds < 1 then invalid_arg "Session.precopy: max_rounds < 1";
  if downtime_budget_ms < 0.0 then
    invalid_arg "Session.precopy: downtime_budget_ms < 0";
  let mem = p.Process.mem in
  let transport = cfg.cfg_transport in
  let wire pages =
    let bytes = scaled cfg (pages * Layout.page_size) in
    (bytes, Transport.transfer_ns transport bytes /. 1e6)
  in
  let sent = Hashtbl.create 256 in
  let rounds = ref [] in
  let pages_sent = ref 0 and bytes_sent = ref 0 and total_ms = ref 0.0 in
  Memory.track_dirty mem true;
  let residual =
    Fun.protect ~finally:(fun () -> Memory.track_dirty mem false) @@ fun () ->
    let rec go r to_send =
      let n = List.length to_send in
      let bytes, ms = wire n in
      List.iter (fun pn -> Hashtbl.replace sent pn ()) to_send;
      pages_sent := !pages_sent + n;
      bytes_sent := !bytes_sent + bytes;
      total_ms := !total_ms +. ms;
      rounds := { pr_round = r; pr_pages = n; pr_bytes = bytes; pr_ms = ms } :: !rounds;
      Metrics.inc m_precopy_rounds;
      Metrics.inc m_precopy_pages ~by:n;
      Metrics.observe m_precopy_round_ms ms;
      Trace.leaf ~cat:"session" "precopy-round" ~dur_ns:(ms *. 1e6)
        ~args:[ ("round", string_of_int r); ("pages", string_of_int n) ];
      Memory.clear_dirty mem;
      advance ms;
      let dirty = List.filter (precopy_candidate p) (Memory.dirty_pages mem) in
      let _, dirty_ms = wire (List.length dirty) in
      if
        dirty = [] || dirty_ms <= downtime_budget_ms || r >= max_rounds
        || List.length dirty >= n
      then dirty
      else go (r + 1) dirty
    in
    go 1 (List.filter (precopy_candidate p) (Memory.mapped_pages mem))
  in
  let residual_set = Hashtbl.create 64 in
  List.iter (fun pn -> Hashtbl.replace residual_set pn ()) residual;
  let resident =
    Hashtbl.fold
      (fun pn () acc -> if Hashtbl.mem residual_set pn then acc else pn :: acc)
      sent []
    |> List.sort Int.compare
  in
  { pcs_rounds = List.rev !rounds;
    pcs_pages_sent = !pages_sent;
    pcs_bytes_sent = !bytes_sent;
    pcs_ms = !total_ms;
    pcs_resident = resident;
    pcs_residual = residual }

(* Unscaled bytes of resident pages that the dumped image also carries:
   those already crossed the wire during pre-copy rounds, so transfer
   and eager restore charge for the image minus this overlap. *)
let resident_dump_bytes cfg (is : Images.image_set) =
  match cfg.cfg_resident_pages with
  | [] -> 0
  | resident ->
    let tbl = Hashtbl.create 64 in
    List.iter (fun pn -> Hashtbl.replace tbl pn ()) resident;
    let pages =
      List.fold_left
        (fun acc (e : Images.pagemap_entry) ->
          if not e.pm_in_dump then acc
          else begin
            let base = Layout.page_of_addr e.pm_vaddr in
            let c = ref 0 in
            for k = 0 to e.pm_npages - 1 do
              if Hashtbl.mem tbl (base + k) then incr c
            done;
            acc + !c
          end)
        0 is.Images.is_pagemap
    in
    pages * Layout.page_size

let pause_run (s : ready t) =
  guard s (fun () ->
      match Monitor.request_pause s.s_source ~budget:s.s_cfg.cfg_pause_budget with
      | Error _ as e -> e
      | Ok ps ->
        Ok (step s Dapper_error.Pause ~ms:0.0 { sp_pause = ps }))

let pause s = staged Dapper_error.Pause pause_run s

let dump_run (s : paused t) =
  guard s (fun () ->
      let lazy_pages = Transport.is_lazy s.s_cfg.cfg_transport in
      match Dump.dump ~lazy_pages s.s_source with
      | Error _ as e -> e
      | Ok image ->
        let st = Dump.stats_of image in
        let bytes = scaled s.s_cfg (st.Dump.pages_dumped * Layout.page_size) in
        let ms = checkpoint_ms ~node:s.s_cfg.cfg_src_node ~bytes in
        Ok
          (step s Dapper_error.Dump ~bytes ~ms
             { sd_pause = s.s_state.sp_pause; sd_image = image; sd_dump = st }))

let dump s = staged Dapper_error.Dump dump_run s

let recode_run (s : dumped t) =
  guard s (fun () ->
      let { sd_pause; sd_image; sd_dump = _ } = s.s_state in
      let cfg = s.s_cfg in
      match
        Rewrite.rewrite ?memo:cfg.cfg_recode_memo sd_image ~src:cfg.cfg_src_bin
          ~dst:cfg.cfg_dst_bin
      with
      | Error _ as e -> e
      | Ok (image', rw) ->
        let image_bytes = Images.total_bytes image' in
        (* Memo hits shrink the charged byte volume (and, for replayed
           threads, the work items inside [rw]); the produced image is
           byte-identical either way. *)
        let charged_bytes =
          scaled cfg (max 0 (image_bytes - rw.Rewrite.st_skipped_bytes))
        in
        let workers = max 1 (min cfg.cfg_recode_workers cfg.cfg_recode_node.Node.n_cores) in
        let ms =
          recode_ns cfg.cfg_recode_node ~workers ~bytes:charged_bytes rw /. 1e6
        in
        if Trace.enabled () && (workers > 1 || rw.Rewrite.st_skipped_bytes > 0) then
          Trace.leaf ~cat:"session" "recode-plan" ~dur_ns:0.0
            ~args:
              [ ("workers", string_of_int workers);
                ("charged_bytes", string_of_int charged_bytes);
                ("skipped_bytes", string_of_int rw.Rewrite.st_skipped_bytes);
                ("memo_thread_hits", string_of_int rw.Rewrite.st_memo_thread_hits);
                ("memo_page_hits", string_of_int rw.Rewrite.st_memo_page_hits) ];
        Ok
          (step s Dapper_error.Recode ~bytes:charged_bytes ~ms
             { sc_pause = sd_pause; sc_image = image';
               sc_rewrite = rw; sc_image_bytes = image_bytes }))

let recode s = staged Dapper_error.Recode recode_run s

(* The recoded image actually crosses the wire: serialized to its named
   files, exposed chunk by chunk to the fault plane, checksum-verified
   and (under a retrying transport) retransmitted; the destination
   re-parses what arrived. Without faults or retries this is exactly
   the old single-attempt cost. *)
let transfer_run (s : recoded t) =
  guard s (fun () ->
      let { sc_pause; sc_image; sc_rewrite; sc_image_bytes } = s.s_state in
      let cfg = s.s_cfg in
      let wire_bytes =
        scaled cfg (max 0 (sc_image_bytes - resident_dump_bytes cfg sc_image))
      in
      let files = Images.to_files sc_image in
      let result =
        if cfg.cfg_pipeline then
          (* Overlapped transfer: recode streamed its output in chunks,
             so only the makespan's excess over the recode time already
             charged (plus any fault/retry surcharge) lands here. The
             recode cost is the record the previous stage just logged. *)
          let recode_charged_ns =
            match s.s_log with
            | r :: _ when r.sr_stage = Dapper_error.Recode -> r.sr_ms *. 1e6
            | _ -> 0.0
          in
          match
            Transport.transmit_pipelined cfg.cfg_transport ?fault:cfg.cfg_fault
              ~stats:s.s_tx ~bytes:wire_bytes ~chunk_bytes:cfg.cfg_chunk_bytes
              ~recode_ns:recode_charged_ns files
          with
          | Error _ as e -> e
          | Ok (received, ns, _sched) -> Ok (received, ns)
        else
          Transport.transmit cfg.cfg_transport ?fault:cfg.cfg_fault ~stats:s.s_tx
            ~bytes:wire_bytes files
      in
      match result with
      | Error _ as e -> e
      | Ok (received, ns) ->
        (match Images.of_files received with
         | exception Images.Image_error msg ->
           Error (Dapper_error.Transfer_failed ("received image unparsable: " ^ msg))
         | image' ->
           Ok
             (step s Dapper_error.Transfer ~bytes:wire_bytes ~ms:(ns /. 1e6)
                { sx_pause = sc_pause; sx_image = image';
                  sx_rewrite = sc_rewrite; sx_image_bytes = sc_image_bytes })))

let transfer s = staged Dapper_error.Transfer transfer_run s

let lazy_page_numbers (is : Images.image_set) =
  List.concat_map
    (fun (e : Images.pagemap_entry) ->
      if e.pm_in_dump then []
      else List.init e.pm_npages (fun k -> Layout.page_of_addr e.pm_vaddr + k))
    is.Images.is_pagemap

let restore_run (s : transferred t) =
  guard s (fun () ->
      let { sx_pause; sx_image; sx_rewrite; sx_image_bytes } = s.s_state in
      let cfg = s.s_cfg in
      let transport = cfg.cfg_transport in
      let lazy_pages = Transport.is_lazy transport in
      (* Injected destination failure while materializing the image. *)
      match Option.bind cfg.cfg_fault (fun f -> Fault.draw f Fault.Dest_restore) with
      | Some Fault.Crash ->
        Error (Dapper_error.Restore_failed "destination failed during restore (injected)")
      | _ ->
        (* Lazy page server: serves from the paused source process, with
           round-trip accounting per fetched page. *)
        let server_stats =
          if lazy_pages then Some (Transport.fresh_page_stats ()) else None
        in
        let page_source =
          match server_stats with
          | None -> None
          | Some stats ->
            let fetch pn =
              match Memory.page_contents s.s_source.Process.mem pn with
              | Some data -> Some (Bytes.copy data)
              | None -> None
            in
            Some
              (Transport.serve_pages transport stats
                 ~page_bytes:(scaled cfg Layout.page_size) fetch)
        in
        (match Restore.restore ?page_source sx_image cfg.cfg_dst_bin with
         | Error _ as e -> e
         | Ok q ->
           let bytes =
             if lazy_pages then 0
             else scaled cfg (max 0 (sx_image_bytes - resident_dump_bytes cfg sx_image))
           in
           let ms =
             if lazy_pages then lazy_restore_ms ~node:cfg.cfg_dst_node
             else restore_ms ~node:cfg.cfg_dst_node ~bytes
           in
           (* Hybrid pre+post-copy: pages pre-copied while the source was
              still serving are clean, so materialize them now instead of
              demand-fetching them through the page server — only the
              residual dirty set pays the post-copy fault tail. *)
           let resident = cfg.cfg_resident_pages in
           if lazy_pages && resident <> [] then
             List.iter
               (fun pn ->
                 if not (Memory.is_mapped q.Process.mem pn) then
                   match Memory.page_contents s.s_source.Process.mem pn with
                   | Some data -> Memory.map_page q.Process.mem pn (Bytes.copy data)
                   | None -> ())
               resident;
           let lazy_left =
             if resident = [] then lazy_page_numbers sx_image
             else
               let res = Hashtbl.create 64 in
               List.iter (fun pn -> Hashtbl.replace res pn ()) resident;
               List.filter
                 (fun pn -> not (Hashtbl.mem res pn))
                 (lazy_page_numbers sx_image)
           in
           Ok
             (step s Dapper_error.Restore ~bytes ~ms
                { sf_pause = sx_pause; sf_rewrite = sx_rewrite;
                  sf_image_bytes = sx_image_bytes; sf_process = q;
                  sf_page_server = server_stats;
                  sf_lazy_pages = lazy_left })))

let restore s = staged Dapper_error.Restore restore_run s

(* Two-phase commit: the paused source stays resumable until the
   destination acknowledges a verified restore. The acknowledgement has
   three parts — (1) the destination survives to the ack (the fault
   plane may kill it first); (2) with [cfg_commit_drain], every
   outstanding post-copy page is pulled through the fault-aware,
   checksummed fetch path, so after commit the destination no longer
   depends on the source (a source/page-server crash mid-drain aborts
   the restore instead of stranding a half-paged process); (3) the
   destination's observable state must match the paused source. Any
   failure rolls back to a running source. *)
let commit_run (s : restored t) =
  guard s (fun () ->
      let st = s.s_state in
      let cfg = s.s_cfg in
      let q = st.sf_process in
      let lazy_t = Transport.is_lazy cfg.cfg_transport in
      match Option.bind cfg.cfg_fault (fun f -> Fault.draw f Fault.Dest_restore) with
      | Some Fault.Crash ->
        Error
          (Dapper_error.Commit_failed
             "destination lost before acknowledging the restore (injected)")
      | _ ->
        let drain () =
          match st.sf_page_server with
          | Some stats when cfg.cfg_commit_drain ->
            let fetch pn =
              match Memory.page_contents s.s_source.Process.mem pn with
              | Some data -> Some (Bytes.copy data)
              | None -> None
            in
            let before_ns = stats.Transport.srv_ns in
            let rec go drained = function
              | [] -> Ok (drained, (stats.Transport.srv_ns -. before_ns) /. 1e6)
              | pn :: rest ->
                if Memory.is_mapped q.Process.mem pn then go drained rest
                else
                  (match
                     Transport.fetch_page cfg.cfg_transport ?fault:cfg.cfg_fault
                       stats ~page_bytes:(scaled cfg Layout.page_size) fetch pn
                   with
                   | Error _ as e -> e
                   | Ok None -> go drained rest
                   | Ok (Some data) ->
                     Memory.map_page q.Process.mem pn data;
                     go (drained + 1) rest)
            in
            go 0 st.sf_lazy_pages
          | _ -> Ok (0, 0.0)
        in
        (match drain () with
         | Error _ as e -> e
         | Ok (drained, drain_ms) ->
           (* Verified-restore acknowledgement: the destination's
              observable state must equal the paused source's. A
              half-paged lazy destination cannot be digested, so without
              a drain the lazy ack degrades to the restore's own
              arch/app checks. *)
           let verifiable = (not lazy_t) || cfg.cfg_commit_drain in
           if
             verifiable
             && not (Process.state_equal (Process.observe s.s_source) (Process.observe q))
           then
             Error
               (Dapper_error.Commit_failed
                  "destination state does not match the paused source")
           else
             Ok
               (step s Dapper_error.Commit ~ms:drain_ms
                  { sm_pause = st.sf_pause; sm_rewrite = st.sf_rewrite;
                    sm_image_bytes = st.sf_image_bytes; sm_process = q;
                    sm_page_server = st.sf_page_server; sm_drained = drained })))

let commit s = staged Dapper_error.Commit commit_run s

let rec retry ~attempts ?(should_retry = Dapper_error.retriable)
    ?(before_retry = fun () -> ()) f =
  match f () with
  | Ok _ as ok -> ok
  | Error e when attempts > 1 && should_retry e ->
    before_retry ();
    retry ~attempts:(attempts - 1) ~should_retry ~before_retry f
  | Error _ as err -> err

type outcome = {
  r_process : Process.t;
  r_times : phase_times;
  r_image_bytes : int;
  r_rewrite : Rewrite.stats;
  r_pause : Monitor.pause_stats;
  r_page_server : Transport.page_stats option;
  r_transfer : Transport.tx_stats;
  r_drained : int;
}

let finish (s : committed t) =
  let st = s.s_state in
  { r_process = st.sm_process;
    r_times = times s;
    r_image_bytes = st.sm_image_bytes;
    r_rewrite = st.sm_rewrite;
    r_pause = st.sm_pause;
    r_page_server = st.sm_page_server;
    r_transfer = s.s_tx;
    r_drained = st.sm_drained }

let ( let* ) = Result.bind

let run cfg p =
  let* s = pause (start cfg p) in
  let* s = dump s in
  let* s = recode s in
  let* s = transfer s in
  let* s = restore s in
  commit s
