open Dapper_util
open Dapper_isa
open Dapper_machine
open Dapper_binary

type error = Dapper_error.t

let error_to_string = Dapper_error.to_string

let changed_functions ~(old_bin : Binary.t) ~(new_bin : Binary.t) =
  (* Index the new binary once instead of a linear find_func per old
     function (O(n^2) over the program's function count). *)
  let ix = Stackmap_index.get new_bin.bin_stackmaps in
  List.filter_map
    (fun (fm : Stackmap.func_map) ->
      match Stackmap_index.find_func ix fm.fm_name with
      | None -> Some fm.fm_name (* removed function counts as changed *)
      | Some fm' ->
        if
          fm.fm_code_size <> fm'.fm_code_size
          || not (Int64.equal fm.fm_addr fm'.fm_addr)
          || Binary.code_bytes old_bin fm.fm_addr fm.fm_code_size
             <> Binary.code_bytes new_bin fm'.fm_addr fm'.fm_code_size
        then Some fm.fm_name
        else None)
    old_bin.bin_stackmaps

(* Symbols must not move: the process's data/heap may hold code and data
   pointers that only stay valid under the unified layout. *)
let check_layout ~(old_bin : Binary.t) ~(new_bin : Binary.t) =
  let rec go = function
    | [] -> Ok ()
    | (s : Binary.symbol) :: rest ->
      (match Binary.find_symbol new_bin s.sym_name with
       | Some s' when Int64.equal s.sym_addr s'.sym_addr -> go rest
       | Some s' ->
         Error
           (Dapper_error.Layout_incompatible
              (Printf.sprintf "%s moved from 0x%Lx to 0x%Lx" s.sym_name s.sym_addr
                 s'.sym_addr))
       | None -> Error (Dapper_error.Layout_incompatible (s.sym_name ^ " disappeared")))
  in
  go old_bin.bin_symbols

(* A changed function on some stack blocks the update, with one
   exception (the classic function-entry update point): the innermost
   frame parked at its ENTRY equivalence point may transfer into the new
   version's entry, provided both versions record the same live-value
   keys there — the rewriter then carries the arguments across and the
   thread re-executes the new body. *)
let entry_transferable ~(new_bin : Binary.t) (fr : Unwind.frame) =
  fr.fr_ep.Stackmap.ep_kind = Stackmap.Entry
  &&
  let ix = Stackmap_index.get new_bin.bin_stackmaps in
  match Stackmap_index.find_func ix fr.fr_func.Stackmap.fm_name with
  | None -> false
  | Some fm' ->
    (match Stackmap_index.eqpoint_by_id ix fm'.fm_name fr.fr_ep.ep_id with
     | None -> false
     | Some ep' ->
       let keys ep =
         List.map (fun (lv : Stackmap.live_value) -> lv.Stackmap.lv_key) ep.Stackmap.ep_live
         |> List.sort compare
       in
       keys fr.fr_ep = keys ep')

let check_quiescent_outside ~new_bin changed stacks =
  let rec scan = function
    | [] -> Ok ()
    | (ts : Unwind.thread_stack) :: rest ->
      let frames = ts.Unwind.ts_frames in
      let offending =
        List.find_opt
          (fun (fr : Unwind.frame) ->
            List.mem fr.fr_func.Stackmap.fm_name changed
            && not
                 (match frames with
                  | innermost :: _ -> fr == innermost && entry_transferable ~new_bin fr
                  | [] -> false))
          frames
      in
      (match offending with
       | Some fr -> Error (Dapper_error.Active_function fr.fr_func.Stackmap.fm_name)
       | None -> scan rest)
  in
  scan stacks

let ( let* ) = Result.bind

let update ?(retries = 16) (p : Process.t) ~old_bin ~new_bin =
  if not (Arch.equal old_bin.Binary.bin_arch new_bin.Binary.bin_arch) then
    Error (Dapper_error.Layout_incompatible "architectures differ; use Rewrite for migration")
  else
    let* () = check_layout ~old_bin ~new_bin in
    let changed = changed_functions ~old_bin ~new_bin in
    let attempt () =
      let* _ = Monitor.request_pause p ~budget:50_000_000 in
      let* image = Dapper_criu.Dump.dump p in
      let* stacks =
        Unwind.unwind_all image old_bin.bin_stackmaps ~anchors:old_bin.bin_anchors
      in
      let* () = check_quiescent_outside ~new_bin changed stacks in
      let* image', _ = Rewrite.rewrite image ~src:old_bin ~dst:new_bin in
      Dapper_criu.Restore.restore image' new_bin
    in
    (* If a thread happens to be parked inside a changed function, let
       the process run a little further and try again — the standard
       DSU activeness dance. *)
    Session.retry ~attempts:(retries + 1)
      ~should_retry:(function Dapper_error.Active_function _ -> true | _ -> false)
      ~before_retry:(fun () ->
        Monitor.resume p;
        ignore (Process.run p ~max_instrs:1_000))
      attempt

let update_compiled p ~old_version ~new_version ~arch =
  update p
    ~old_bin:(Dapper_codegen.Link.binary_for old_version arch)
    ~new_bin:(Dapper_codegen.Link.binary_for new_version arch)
