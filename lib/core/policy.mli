(** User-defined transformation policies (paper Section III: "DAPPER
    allows end-users to define different transformation policies").

    A policy is what to do with a paused process's image; this module is
    the uniform entry point over the concrete transformations:

    - {!Cross_isa}: rewrite for the other architecture's binary
      (live heterogeneous migration);
    - {!Reshuffle}: permute the stack layout and move the process onto
      the shuffled binary (moving-target defense);
    - {!Software_update}: hot-swap a new program version
      ({!Dsu.update});
    - {!Identity}: plain checkpoint/restore (same binary), CRIU-style.

    Each application returns the resulting process and the binary it now
    runs under, so policies chain (e.g. periodic re-randomization). *)

open Dapper_util
open Dapper_machine
open Dapper_binary

type t =
  | Identity
  | Cross_isa of Binary.t          (** destination binary *)
  | Reshuffle of Rng.t
  | Software_update of Binary.t    (** new version, same architecture *)

val describe : t -> string

type applied = {
  ap_process : Process.t;
  ap_binary : Binary.t;   (** the binary the new process runs under *)
}

(** Policy failures use the unified error surface: pause errors,
    pipeline errors ([Dump_failed], [Recode_failed], ...), plus
    [Shuffle_failed] and the DSU-specific variants. *)
type error = Dapper_error.t

val error_to_string : error -> string

(** [apply p ~current policy] pauses [p] (if not already quiescent),
    transforms it per [policy], and restores the result. [current] is
    the binary [p] currently runs under. [report] is called with the
    rewrite statistics (including plan-cache and index counters) of the
    transformation; it is not called for {!Software_update}, which
    delegates to {!Dsu.update}. *)
val apply :
  ?report:(Rewrite.stats -> unit) ->
  Process.t -> current:Binary.t -> t -> (applied, error) result

(** [rerandomize_periodically p ~current ~rng ~interval ~epochs ~fuel]
    alternates bursts of execution with {!Reshuffle} applications —
    the paper's "periodically re-randomizing the function call stack".
    Returns the final state and the number of completed epochs (the
    process may exit early). *)
val rerandomize_periodically :
  ?report:(int -> Rewrite.stats -> unit) ->
  Process.t -> current:Binary.t -> rng:Rng.t -> interval:int -> epochs:int ->
  (applied * int, error) result
