(** Stack unwinding over a dumped process image.

    Walks each thread's call chain from the innermost paused frame
    outwards (paper Section III-D2b: "DAPPER unwinds the outermost stack
    frame inwards"; we walk innermost-out while recovering the
    callee-saved register context each callee's prologue saved, which is
    equivalent). For every frame it extracts the live values recorded in
    the stack map at the frame's equivalence point, reading registers
    from the recovered context and memory from the image. *)

open Dapper_util
open Dapper_binary
open Dapper_criu

type frame = {
  fr_func : Stackmap.func_map;
  fr_ep : Stackmap.eqpoint;
  fr_fp : int64;
  fr_at_call : bool;
      (** true for an innermost frame rolled back to re-execute its call *)
  fr_values : (Stackmap.lv_key * string) list;
      (** live value bytes, keyed by their cross-ISA identity *)
}

type thread_stack = {
  ts_tid : int;
  ts_frames : frame list;      (** innermost first *)
  ts_arg_regs : int64 list;    (** argument registers live at an at-call pause *)
  ts_tls : int64;
}

(** [unwind image maps tc] unwinds one thread; [maps] are the stack maps
    of the binary the image was produced from. Fails with
    [Dapper_error.Unwind_failed] on a corrupt stack (bad return address,
    pause outside an equivalence point, ...). *)
val unwind : Images.image_set -> Stackmap.func_map list -> anchors:Binary.anchors ->
  Images.thread_core -> (thread_stack, Dapper_error.t) result

(** All threads of an image. *)
val unwind_all : Images.image_set -> Stackmap.func_map list -> anchors:Binary.anchors ->
  (thread_stack list, Dapper_error.t) result
