(** End-to-end live migration: pause -> dump -> rewrite -> copy ->
    restore, with the paper's cost breakdown (Fig. 5/7: checkpoint,
    recode, scp, restore).

    [migrate] is a thin driver over {!Session}: it builds a session
    config (picking an scp or page-server {!Transport.t} from
    [lazy_pages]/[link]) and runs the five typed stages, so per-stage
    costs come from the session's stage records and any stage failure
    resumes the source. The types below are re-exports of the session's;
    drive {!Session} directly for stage-level control.

    Execution inside the simulator is instruction-accurate; the phase
    times come from a calibrated cost model over the {e actual} work
    performed (pages dumped, live values rewritten, bytes transferred),
    so the shapes of the paper's figures — who wins, scaling with
    footprint, vanilla-vs-lazy crossover — are reproduced from first
    principles. [bytes_scale] compensates for the simulator's downscaled
    working sets when paper-magnitude byte counts are wanted (see
    EXPERIMENTS.md). *)

open Dapper_util
open Dapper_binary
open Dapper_machine
open Dapper_net

type phase_times = Session.phase_times = {
  t_checkpoint_ms : float;  (** pause + dump *)
  t_recode_ms : float;
  t_scp_ms : float;
  t_restore_ms : float;
}

val total_ms : phase_times -> float

type page_server_stats = Transport.page_stats = {
  mutable srv_pages : int;
  mutable srv_ns : float;
  mutable srv_retransmits : int;
  mutable srv_backoff_ns : float;  (** retry-backoff share of [srv_ns] *)
}

type result = Session.outcome = {
  r_process : Process.t;          (** restored process on the destination *)
  r_times : phase_times;
  r_image_bytes : int;
  r_rewrite : Rewrite.stats;
  r_pause : Monitor.pause_stats;
  r_page_server : page_server_stats option;  (** present in lazy mode *)
  r_transfer : Transport.tx_stats;           (** eager-transfer accounting *)
  r_drained : int;                (** post-copy pages pulled at commit *)
}

(** Migration failures are the unified {!Dapper_error.t};
    [Dapper_error.stage_of] recovers which stage failed. *)
type error = Dapper_error.t

val error_to_string : error -> string

(** Nanoseconds the recode phase takes on [node] for the given rewrite
    work (exposed for Fig. 5's recode-on-x86 vs recode-on-arm rows).
    [bytes] is the byte volume actually re-encoded; [?workers] > 1
    models multi-core recode (see {!Session.recode_ns}). *)
val recode_ns : Node.t -> ?workers:int -> bytes:int -> Rewrite.stats -> float

(** Checkpoint/restore cost for an image of the given (scaled) size on
    [node]. The costs are anchored on the nodes each phase was measured
    on in the paper (checkpoint on the Xeon, restore on the Pi) and
    scale with the node's relative core speed. *)
val checkpoint_ms : node:Node.t -> bytes:int -> float
val restore_ms : node:Node.t -> bytes:int -> float

(** Zero the process-global plan-cache and stack-map-index counters, so
    successive experiments' cost reports don't difference across each
    other's traffic. The per-rewrite counters in {!Rewrite.stats} are
    scoped to their run (attached {!Plan_cache.counters} sinks) and are
    not affected. *)
val reset_run_counters : unit -> unit

(** One-line migration cost report: phase times plus the index and
    rewrite-plan-cache counters ({!Rewrite.stats} observability
    fields); when the run used a recode memo that hit, an extra memo
    clause (legacy format is untouched otherwise). With
    [stage_histograms], appends {!stage_histogram_table}; with [reset],
    calls {!reset_run_counters} after rendering. *)
val cost_report : ?stage_histograms:bool -> ?reset:bool -> result -> string

(** Plain-text table of the per-stage cost histograms
    ([session.stage_ms.*] in the {!Dapper_obs.Metrics} registry),
    accumulated over every session run since the last registry reset.
    Stages never run are omitted. *)
val stage_histogram_table : unit -> string

(** [src_node]/[dst_node] parameterize the checkpoint and restore costs
    (and [recode_on] defaults to [src_node]). [pipeline]/[chunk_bytes]
    stream recoded chunks into the transfer ({!Session.config});
    [recode_workers] spreads recode over the recode node's cores;
    [memo] enables incremental recode across repeat migrations. All
    default to the sequential single-worker model. *)
val migrate :
  ?lazy_pages:bool ->
  ?link:Link.t ->
  ?recode_on:Node.t ->
  ?bytes_scale:float ->
  ?budget:int ->
  ?pipeline:bool ->
  ?chunk_bytes:int ->
  ?recode_workers:int ->
  ?memo:Plan_cache.memo ->
  src_node:Node.t ->
  dst_node:Node.t ->
  dst_bin:Binary.t ->
  src_bin:Binary.t ->
  Process.t ->
  (result, error) Stdlib.result
