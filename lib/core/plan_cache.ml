open Dapper_isa
open Dapper_binary

(* Offset-free projection of an equivalence point's live values. Stack
   shuffling permutes frame offsets but never keys, types, sizes or
   register/frame residency, so the shape — and therefore the plan
   derived from it — is stable across reshuffle epochs, while a software
   update that changes a function's live set changes its shape and
   invalidates the cached plan. *)
type lv_shape = {
  s_key : Stackmap.lv_key;
  s_ty : Stackmap.lv_ty;
  s_size : int;
  s_frame : bool;
}

type shape = {
  sh_src : lv_shape list;
  sh_dst : lv_shape list;
}

(* The memoized frame-placement decisions for one (function, eqpoint):
   which live values are frame-resident on both sides and therefore
   contribute a pointer-translation interval (key + source size). The
   plan stores no offsets — those are read through the stack-map index
   of whichever binary pair is current when the plan is applied. *)
type plan = {
  pl_shape : shape;
  pl_intervals : (Stackmap.lv_key * int) list;
}

type key = {
  k_app : string;
  k_src_arch : Arch.t;
  k_dst_arch : Arch.t;
  k_fn : string;
  k_ep : int;
}

let cache : (key, plan) Hashtbl.t = Hashtbl.create 256

let hits_counter = ref 0
let misses_counter = ref 0

let hits () = !hits_counter
let misses () = !misses_counter

(* Per-run counter scoping: the process-global tallies above bleed
   across experiments (anything may reset them between two lookups a
   caller wants to difference), so a run that needs trustworthy numbers
   attaches its own sink for its duration. Every lookup feeds the
   globals and every attached sink. *)
type counters = { mutable c_hits : int; mutable c_misses : int }

let fresh_counters () = { c_hits = 0; c_misses = 0 }

let sinks : counters list ref = ref []

let attach c = sinks := c :: !sinks
let detach c = sinks := List.filter (fun s -> s != c) !sinks

let counting f =
  let c = fresh_counters () in
  attach c;
  Fun.protect ~finally:(fun () -> detach c) (fun () -> (f (), c))

let record_hit () =
  incr hits_counter;
  List.iter (fun c -> c.c_hits <- c.c_hits + 1) !sinks

let record_miss () =
  incr misses_counter;
  List.iter (fun c -> c.c_misses <- c.c_misses + 1) !sinks

let reset_counters () =
  hits_counter := 0;
  misses_counter := 0

let clear () =
  Hashtbl.reset cache;
  reset_counters ()

let shape_of_live live =
  List.map
    (fun (lv : Stackmap.live_value) ->
      { s_key = lv.lv_key; s_ty = lv.lv_ty; s_size = lv.lv_size;
        s_frame = (match lv.lv_loc with Stackmap.Frame _ -> true | Stackmap.Reg _ -> false) })
    live

(* The pairing decision the rewriter's interval pass used to re-derive
   with an O(src x dst) scan on every frame of every migration: source
   frame-resident values that are also frame-resident at the destination
   equivalence point. *)
let derive shape =
  (* First occurrence wins, matching the linear [List.find_opt] the
     rewriter used: a key whose first destination occurrence is a
     register never contributes an interval, even if a later duplicate
     is frame-resident. *)
  let dst_first = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem dst_first s.s_key) then Hashtbl.add dst_first s.s_key s.s_frame)
    shape.sh_dst;
  let intervals =
    List.filter_map
      (fun s ->
        if s.s_frame && Hashtbl.find_opt dst_first s.s_key = Some true then
          Some (s.s_key, s.s_size)
        else None)
      shape.sh_src
  in
  { pl_shape = shape; pl_intervals = intervals }

let lookup ~app ~src_arch ~dst_arch ~fn ~ep_id ~(src_ep : Stackmap.eqpoint)
    ~(dst_ep : Stackmap.eqpoint) =
  let key = { k_app = app; k_src_arch = src_arch; k_dst_arch = dst_arch;
              k_fn = fn; k_ep = ep_id } in
  let shape = { sh_src = shape_of_live src_ep.ep_live;
                sh_dst = shape_of_live dst_ep.ep_live } in
  match Hashtbl.find_opt cache key with
  | Some plan when plan.pl_shape = shape ->
    record_hit ();
    plan
  | _ ->
    record_miss ();
    let plan = derive shape in
    Hashtbl.replace cache key plan;
    plan

(* ----- output-level memoization -----

   Plan-level caching above memoizes frame-placement {e decisions};
   this layer memoizes rewrite {e outputs}, keyed by content hashes, so
   a repeat migration (or reshuffle epoch) of an unchanged binary
   rewrites only what changed since the memo was filled:

   - per pass-through page (data/heap/TLS — everything the rewriter
     copies verbatim): the page's content digest. A hit means the page's
     encoded output is byte-identical to last time and need not be
     re-encoded;
   - per thread: a digest over everything the thread's rewritten stack
     depends on (its unwound frames and live-value bytes, argument
     registers, TLS, the set of stack pages present in the dump, and the
     global pointer-translation interval set — the only cross-thread
     coupling), mapped to the finished output: the destination
     [thread_core] plus the thread's rewritten stack pages.

   The environment digest guards the whole memo: any change to the
   binary pair (stack maps of either side, destination text, anchors,
   architectures) empties it, so a stale output can never be replayed
   against a different binary. The memo is opt-in and per-caller — the
   default pipeline never consults one. *)

type thread_patch = {
  tp_core : Dapper_criu.Images.thread_core;
  tp_pages : (int * string) list;
}

type memo = {
  mutable m_env : Digest.t option;
  m_pages : (int, Digest.t) Hashtbl.t;
  m_threads : (int, Digest.t * thread_patch) Hashtbl.t;
}

let create_memo () =
  { m_env = None; m_pages = Hashtbl.create 64; m_threads = Hashtbl.create 8 }

let memo_clear m =
  Hashtbl.reset m.m_pages;
  Hashtbl.reset m.m_threads

(* Rebind the memo to [env], emptying it when the environment moved.
   Returns true when existing entries remain valid. *)
let memo_bind m ~env =
  match m.m_env with
  | Some e when Digest.equal e env -> true
  | _ ->
    memo_clear m;
    m.m_env <- Some env;
    false

let memo_page_hit m pn digest =
  match Hashtbl.find_opt m.m_pages pn with
  | Some d -> Digest.equal d digest
  | None -> false

let memo_page_store m pn digest = Hashtbl.replace m.m_pages pn digest

let memo_thread_hit m tid digest =
  match Hashtbl.find_opt m.m_threads tid with
  | Some (d, patch) when Digest.equal d digest -> Some patch
  | _ -> None

let memo_thread_store m tid digest patch =
  Hashtbl.replace m.m_threads tid (digest, patch)

let memo_size m = (Hashtbl.length m.m_pages, Hashtbl.length m.m_threads)
