open Dapper_isa
open Dapper_binary

(* Offset-free projection of an equivalence point's live values. Stack
   shuffling permutes frame offsets but never keys, types, sizes or
   register/frame residency, so the shape — and therefore the plan
   derived from it — is stable across reshuffle epochs, while a software
   update that changes a function's live set changes its shape and
   invalidates the cached plan. *)
type lv_shape = {
  s_key : Stackmap.lv_key;
  s_ty : Stackmap.lv_ty;
  s_size : int;
  s_frame : bool;
}

type shape = {
  sh_src : lv_shape list;
  sh_dst : lv_shape list;
}

(* The memoized frame-placement decisions for one (function, eqpoint):
   which live values are frame-resident on both sides and therefore
   contribute a pointer-translation interval (key + source size). The
   plan stores no offsets — those are read through the stack-map index
   of whichever binary pair is current when the plan is applied. *)
type plan = {
  pl_shape : shape;
  pl_intervals : (Stackmap.lv_key * int) list;
}

type key = {
  k_app : string;
  k_src_arch : Arch.t;
  k_dst_arch : Arch.t;
  k_fn : string;
  k_ep : int;
}

let cache : (key, plan) Hashtbl.t = Hashtbl.create 256

let hits_counter = ref 0
let misses_counter = ref 0

let hits () = !hits_counter
let misses () = !misses_counter

let reset_counters () =
  hits_counter := 0;
  misses_counter := 0

let clear () =
  Hashtbl.reset cache;
  reset_counters ()

let shape_of_live live =
  List.map
    (fun (lv : Stackmap.live_value) ->
      { s_key = lv.lv_key; s_ty = lv.lv_ty; s_size = lv.lv_size;
        s_frame = (match lv.lv_loc with Stackmap.Frame _ -> true | Stackmap.Reg _ -> false) })
    live

(* The pairing decision the rewriter's interval pass used to re-derive
   with an O(src x dst) scan on every frame of every migration: source
   frame-resident values that are also frame-resident at the destination
   equivalence point. *)
let derive shape =
  (* First occurrence wins, matching the linear [List.find_opt] the
     rewriter used: a key whose first destination occurrence is a
     register never contributes an interval, even if a later duplicate
     is frame-resident. *)
  let dst_first = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem dst_first s.s_key) then Hashtbl.add dst_first s.s_key s.s_frame)
    shape.sh_dst;
  let intervals =
    List.filter_map
      (fun s ->
        if s.s_frame && Hashtbl.find_opt dst_first s.s_key = Some true then
          Some (s.s_key, s.s_size)
        else None)
      shape.sh_src
  in
  { pl_shape = shape; pl_intervals = intervals }

let lookup ~app ~src_arch ~dst_arch ~fn ~ep_id ~(src_ep : Stackmap.eqpoint)
    ~(dst_ep : Stackmap.eqpoint) =
  let key = { k_app = app; k_src_arch = src_arch; k_dst_arch = dst_arch;
              k_fn = fn; k_ep = ep_id } in
  let shape = { sh_src = shape_of_live src_ep.ep_live;
                sh_dst = shape_of_live dst_ep.ep_live } in
  match Hashtbl.find_opt cache key with
  | Some plan when plan.pl_shape = shape ->
    incr hits_counter;
    plan
  | _ ->
    incr misses_counter;
    let plan = derive shape in
    Hashtbl.replace cache key plan;
    plan
