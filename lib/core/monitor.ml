open Dapper_util
open Dapper_isa
open Dapper_binary
open Dapper_machine

type pause_stats = {
  ps_instrs_drained : int64;
  ps_trapped : int;
  ps_rolled_back : int;
}

type error = Dapper_error.t

let error_to_string = Dapper_error.to_string

let index_of (p : Process.t) =
  Stackmap_index.get p.Process.binary.Binary.bin_stackmaps

(* Validate that a trapped thread sits at a checker trap: its pc must be
   the resume address of some equivalence point (the paper's defense
   against maliciously raised SIGTRAPs). *)
let validate_trap p (th : Process.thread) =
  let ix = index_of p in
  match Stackmap_index.func_of_addr ix th.pc with
  | None -> Error (Dapper_error.Not_at_equivalence_point (th.tid, th.pc))
  | Some fm ->
    (match Stackmap_index.eqpoint_by_resume ix fm.fm_name th.pc with
     | Some _ -> Ok ()
     | None -> Error (Dapper_error.Not_at_equivalence_point (th.tid, th.pc)))

(* Roll a thread blocked inside a syscall wrapper back to the call-site
   equivalence point in its caller: pop the wrapper frame (frameless
   leaf) and point the pc at the call instruction, so the restored
   process simply re-executes the blocking call. *)
let rollback_blocked p (th : Process.thread) =
  let arch = p.Process.arch in
  let ret_addr, undo =
    match arch with
    | Arch.X86_64 ->
      let sp = th.regs.(Arch.sp arch) in
      let ret = Process.peek_data p sp in
      (ret, fun () -> th.regs.(Arch.sp arch) <- Int64.add sp 8L)
    | Arch.Aarch64 -> (th.regs.(30), fun () -> ())
  in
  let ix = index_of p in
  match Stackmap_index.func_of_addr ix ret_addr with
  | None -> Error (Dapper_error.Not_at_equivalence_point (th.tid, ret_addr))
  | Some fm ->
    (match Stackmap_index.eqpoint_by_resume ix fm.fm_name ret_addr with
     | Some ep ->
       undo ();
       th.pc <- ep.Stackmap.ep_addr;
       th.status <- Process.Stopped;
       Ok ()
     | None -> Error (Dapper_error.Not_at_equivalence_point (th.tid, ret_addr)))

let request_pause (p : Process.t) ~budget =
  let flag = p.Process.binary.Binary.bin_anchors.a_flag in
  Process.poke_data p flag 1L;
  let drained = ref 0L in
  let trapped = ref 0 in
  let rolled = ref 0 in
  let remaining = ref budget in
  let result = ref None in
  let finish r = result := Some r in
  while !result = None do
    (* Park any thread already at a monitor-visible stop. *)
    List.iter
      (fun (th : Process.thread) ->
        match th.status with
        | Process.Trapped ->
          (match validate_trap p th with
           | Ok () ->
             th.status <- Process.Stopped;
             incr trapped
           | Error e -> finish (Error e))
        | Process.Blocked_join _ | Process.Blocked_lock _ ->
          (match rollback_blocked p th with
           | Ok () -> incr rolled
           | Error e -> finish (Error e))
        | Process.Runnable | Process.Stopped | Process.Exited _ -> ())
      p.Process.threads;
    if !result = None then begin
      let live = Process.live_threads p in
      if live = [] then finish (Error Dapper_error.Process_exited)
      else if
        List.for_all (fun (th : Process.thread) -> th.status = Process.Stopped) live
      then
        finish
          (Ok { ps_instrs_drained = !drained; ps_trapped = !trapped;
                ps_rolled_back = !rolled })
      else if !remaining <= 0 then finish (Error Dapper_error.Pause_budget_exhausted)
      else begin
        let chunk = min 100_000 !remaining in
        let before = p.Process.total_instrs in
        (match Process.run p ~max_instrs:chunk with
         | Process.Exited_run _ -> finish (Error Dapper_error.Process_exited)
         | Process.Crashed _ -> finish (Error Dapper_error.Process_exited)
         | Process.Progress | Process.Idle -> ());
        let used = Int64.sub p.Process.total_instrs before in
        drained := Int64.add !drained used;
        remaining := !remaining - max 1 (Int64.to_int used)
      end
    end
  done;
  match !result with
  | Some r -> r
  | None -> assert false

let cancel (p : Process.t) =
  Process.poke_data p p.Process.binary.Binary.bin_anchors.a_flag 0L;
  List.iter
    (fun (th : Process.thread) ->
      match th.status with
      | Process.Stopped | Process.Trapped -> th.status <- Process.Runnable
      | Process.Runnable | Process.Blocked_join _ | Process.Blocked_lock _
      | Process.Exited _ -> ())
    p.Process.threads

let resume = cancel
