(** The Dapper runtime monitor (paper Sections III-B and III-D2).

    Drives a live process into a transformable state: raises the
    transformation flag (PTRACE_POKEDATA on the checker's global), lets
    every thread run to its next equivalence point where the inline
    checker hits the breakpoint, validates each trapped pc against the
    stack maps, rolls threads blocked in syscalls back to the call-site
    equivalence point just before the synchronization primitive (the
    setjmp rollback of Section III-B), and finally stops the whole
    process so CRIU can dump it. *)

open Dapper_util
open Dapper_machine

type pause_stats = {
  ps_instrs_drained : int64;  (** instructions executed while draining *)
  ps_trapped : int;           (** threads that stopped at a checker trap *)
  ps_rolled_back : int;       (** blocked threads rolled back to a call site *)
}

(** Pause failures are part of the unified error surface:
    [Pause_budget_exhausted] (some thread never reached an equivalence
    point within the drain budget), [Not_at_equivalence_point] and
    [Process_exited]. *)
type error = Dapper_error.t

val error_to_string : error -> string

(** [request_pause p ~budget] quiesces the process, leaving every live
    thread [Stopped] at an equivalence point. On failure the process is
    left untouched except for consumed execution budget; call [cancel]
    to lower the flag and resume. *)
val request_pause : Process.t -> budget:int -> (pause_stats, error) result

(** Lower the flag and resume all stopped threads (abort a pause). *)
val cancel : Process.t -> unit

(** Resume a paused process on the same node (flag lowered first). *)
val resume : Process.t -> unit
