(** Dynamic software update — another transformation policy on top of
    the same pause/dump/rewrite/restore mechanism (paper Sections I and
    III-A name live software updating as an example policy).

    [update] replaces a running process's binary with a freshly compiled
    version of the program. It is safe when:

    - the new binary's symbols land at the same addresses (the linker's
      per-function padding usually absorbs small body changes; checked);
    - no thread is currently suspended inside a function whose
      equivalence-point structure changed (the classic DSU activeness
      restriction; checked against the unwound stacks);
    - every updated function keeps its signature (arity is part of the
      call-site records; checked structurally).

    Under those conditions the generic rewriter carries the process
    state across: untouched functions rewrite 1:1, and the changed
    functions simply get their new code pages. *)

open Dapper_util
open Dapper_isa
open Dapper_machine
open Dapper_binary

(** DSU failures use the unified error surface: [Layout_incompatible] (a
    symbol moved; the new version cannot be hot-applied),
    [Active_function] (some thread is suspended inside a changed
    function), plus the pause/dump/recode/restore errors of the shared
    pipeline. *)
type error = Dapper_error.t

val error_to_string : error -> string

(** Functions whose code bytes differ between the two binaries. *)
val changed_functions : old_bin:Binary.t -> new_bin:Binary.t -> string list

(** [update p ~old_bin ~new_bin] hot-swaps the running process [p] onto
    [new_bin] (same architecture), returning the updated process. On
    error, [p] is left paused; call {!Monitor.resume} to continue it on
    the old version. *)
val update :
  ?retries:int ->
  Process.t -> old_bin:Binary.t -> new_bin:Binary.t -> (Process.t, error) result

(** Convenience: pick the right per-ISA binary pair out of two compiled
    program versions. *)
val update_compiled :
  Process.t ->
  old_version:Dapper_codegen.Link.compiled ->
  new_version:Dapper_codegen.Link.compiled ->
  arch:Arch.t ->
  (Process.t, error) result
