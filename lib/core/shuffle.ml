open Dapper_util
open Dapper_isa
open Dapper_binary

exception Shuffle_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Shuffle_error s)) fmt

type func_entropy = {
  fe_name : string;
  fe_slots : int;
  fe_shuffled : int;
  fe_pinned : int;
  fe_bits : float;
}

type stats = {
  sh_funcs : func_entropy list;
  sh_code_bytes_patched : int;
  sh_instrs_rewritten : int;
}

let average_bits st =
  let with_slots = List.filter (fun fe -> fe.fe_slots > 0) st.sh_funcs in
  match with_slots with
  | [] -> 0.0
  | fes -> List.fold_left (fun acc fe -> acc +. fe.fe_bits) 0.0 fes
           /. float_of_int (List.length fes)

let rec double_factorial n = if n <= 1 then 1.0 else float_of_int n *. double_factorial (n - 2)

let layouts_for_bits n = 1.0 +. double_factorial ((2 * n) - 1)

let guess_probability n = if n <= 0 then 1.0 else 1.0 /. (2.0 *. float_of_int n)

(* Frame-resident allocations of a function: named slots plus the
   spilled temporaries that are live at some equivalence point — exactly
   the stack objects the stack maps can relocate. Collected across all
   equivalence points, keyed by cross-ISA identity. *)
let frame_slots (fm : Stackmap.func_map) =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (ep : Stackmap.eqpoint) ->
      List.iter
        (fun (lv : Stackmap.live_value) ->
          match lv.lv_loc with
          | Stackmap.Frame off ->
            if not (Hashtbl.mem seen lv.lv_key) then
              Hashtbl.replace seen lv.lv_key (off, lv.lv_size)
          | Stackmap.Reg _ -> ())
        ep.ep_live)
    fm.fm_eqpoints;
  Hashtbl.fold (fun key (off, size) acc -> (key, off, size) :: acc) seen []
  |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)

(* O(log n) slot lookup by frame offset. SBI scans every instruction of
   a function against its slot list, which made discovery O(instrs x
   slots); the interval map cuts that to O(instrs x log slots). Falls
   back to the original linear scan in the (never observed) case of
   overlapping slot intervals, where binary search and first-match
   disagree. *)
let slot_finder slots =
  let m =
    Interval_map.of_list
      (List.map
         (fun (sid, o, sz) -> (Int64.of_int o, Int64.of_int (o + sz), (sid, o, sz)))
         slots)
  in
  if Interval_map.disjoint m then fun off -> Interval_map.find m (Int64.of_int off)
  else fun off -> List.find_opt (fun (_, o, sz) -> off >= o && off < o + sz) slots

let shuffle_binary rng (binary : Binary.t) =
  let arch = binary.bin_arch in
  let fp = Arch.fp arch in
  let text =
    match Binary.find_section binary ".text" with
    | Some s -> s
    | None -> fail "no text section"
  in
  let code = Bytes.of_string text.sec_data in
  let patched_bytes = ref 0 in
  let instrs_rewritten = ref 0 in
  let fentropies = ref [] in
  let new_maps =
    List.map
      (fun (fm : Stackmap.func_map) ->
        let slots = frame_slots fm in
        if slots = [] || fm.fm_eqpoints = [] then begin
          if fm.fm_eqpoints <> [] then
            fentropies :=
              { fe_name = fm.fm_name; fe_slots = 0; fe_shuffled = 0; fe_pinned = 0;
                fe_bits = 0.0 }
              :: !fentropies;
          fm
        end
        else begin
          let fstart = Int64.to_int (Int64.sub fm.fm_addr text.sec_addr) in
          let fcode = Bytes.sub_string code fstart fm.fm_code_size in
          let instrs = Encoding.decode_all arch fcode in
          (* SBI discovery: fp-relative accesses below the save area that
             hit none of the stack-map allocations are spill slots; they
             are equally relocatable, so they join the shuffle pool. *)
          let find_named = slot_finder slots in
          let known off = find_named off <> None in
          let save_min =
            List.fold_left (fun acc (_, o) -> min acc o) 0 fm.fm_saved
          in
          let discovered = Hashtbl.create 16 in
          List.iter
            (fun (_, ins) ->
              let probe off =
                if off < save_min && off >= -fm.fm_frame_size && not (known off)
                   && off mod 8 = 0
                then Hashtbl.replace discovered off ()
              in
              match ins with
              | Minstr.Load (_, b, off) | Minstr.Store (_, b, off) when b = fp -> probe off
              | Minstr.Binopi (Minstr.Add, _, b, imm)
                when b = fp && Int64.compare imm 0L < 0 ->
                probe (Int64.to_int imm)
              | _ -> ())
            instrs;
          let slots =
            slots
            @ (Hashtbl.fold
                 (fun off () acc -> (Stackmap.Temp (1_000_000 - off), off, 8) :: acc)
                 discovered []
               |> List.sort (fun (_, a, _) (_, b, _) -> compare a b))
          in
          (* Slots referenced through pair instructions are pinned. *)
          let slot_containing = slot_finder slots in
          let pinned = Hashtbl.create 8 in
          List.iter
            (fun (_, ins) ->
              match ins with
              | Minstr.Load_pair (_, _, b, off) | Minstr.Store_pair (_, _, b, off)
                when b = fp ->
                List.iter
                  (fun delta ->
                    match slot_containing (off + delta) with
                    | Some (sid, _, _) -> Hashtbl.replace pinned sid ()
                    | None -> ())
                  [ 0; 8 ]
              | _ -> ())
            instrs;
          (* Permute unpinned slots within equal-size classes. *)
          let unpinned =
            List.filter (fun (sid, _, _) -> not (Hashtbl.mem pinned sid)) slots
          in
          let by_size = Hashtbl.create 4 in
          List.iter
            (fun (sid, off, sz) ->
              let cur = Option.value ~default:[] (Hashtbl.find_opt by_size sz) in
              Hashtbl.replace by_size sz ((sid, off) :: cur))
            unpinned;
          let remap = Hashtbl.create 8 in (* slot id -> new offset *)
          Hashtbl.iter
            (fun _sz group ->
              let group = Array.of_list group in
              let offsets = Array.map snd group in
              let perm = Array.copy offsets in
              Rng.shuffle rng perm;
              Array.iteri (fun k (sid, _) -> Hashtbl.replace remap sid perm.(k)) group)
            by_size;
          (* Count shuffle candidates for entropy: all unpinned slots in
             classes of size >= 2. *)
          let candidates =
            Hashtbl.fold
              (fun _ group acc ->
                let n = List.length group in
                if n >= 2 then acc + n else acc)
              by_size 0
          in
          let new_off_of sid old_off =
            match Hashtbl.find_opt remap sid with
            | Some o -> o
            | None -> old_off
          in
          (* Patch the code: every fp-relative access or address
             materialization landing in a shuffled slot. *)
          let patch_off off =
            match slot_containing off with
            | Some (sid, old_off, _) -> new_off_of sid old_off + (off - old_off)
            | None -> off
          in
          let out = Bytes.of_string fcode in
          List.iter
            (fun (ioff, ins) ->
              let patched : Minstr.t option =
                match ins with
                | Minstr.Load (d, b, off) when b = fp && patch_off off <> off ->
                  Some (Minstr.Load (d, b, patch_off off))
                | Minstr.Store (s, b, off) when b = fp && patch_off off <> off ->
                  Some (Minstr.Store (s, b, patch_off off))
                | Minstr.Load8 (d, b, off) when b = fp && patch_off off <> off ->
                  Some (Minstr.Load8 (d, b, patch_off off))
                | Minstr.Store8 (s, b, off) when b = fp && patch_off off <> off ->
                  Some (Minstr.Store8 (s, b, patch_off off))
                | Minstr.Binopi (Minstr.Add, d, b, imm)
                  when b = fp
                       && Int64.compare imm 0L < 0
                       && patch_off (Int64.to_int imm) <> Int64.to_int imm ->
                  Some (Minstr.Binopi (Minstr.Add, d, b, Int64.of_int (patch_off (Int64.to_int imm))))
                | _ -> None
              in
              match patched with
              | None -> ()
              | Some ins' ->
                incr instrs_rewritten;
                let buf = Bytebuf.create 16 in
                Encoding.encode arch buf ins';
                let bytes = Bytebuf.contents buf in
                if String.length bytes <> Encoding.size arch ins then
                  fail "%s: patched instruction changed size" fm.fm_name;
                Bytes.blit_string bytes 0 out ioff (String.length bytes);
                patched_bytes := !patched_bytes + String.length bytes)
            instrs;
          Bytes.blit out 0 code fstart fm.fm_code_size;
          (* Update stack maps: any frame location inside a shuffled
             allocation moves with it. *)
          let fix_lv (lv : Stackmap.live_value) =
            match lv.lv_loc with
            | Stackmap.Frame off -> { lv with lv_loc = Stackmap.Frame (patch_off off) }
            | Stackmap.Reg _ -> lv
          in
          let eqpoints =
            List.map
              (fun (ep : Stackmap.eqpoint) -> { ep with ep_live = List.map fix_lv ep.ep_live })
              fm.fm_eqpoints
          in
          fentropies :=
            { fe_name = fm.fm_name; fe_slots = List.length slots;
              fe_shuffled = candidates; fe_pinned = Hashtbl.length pinned;
              fe_bits = float_of_int candidates /. 2.0 }
            :: !fentropies;
          { fm with fm_eqpoints = eqpoints }
        end)
      binary.bin_stackmaps
  in
  let binary' =
    { (Binary.with_text binary (Bytes.to_string code)) with bin_stackmaps = new_maps }
  in
  ( binary',
    { sh_funcs = List.rev !fentropies; sh_code_bytes_patched = !patched_bytes;
      sh_instrs_rewritten = !instrs_rewritten } )
