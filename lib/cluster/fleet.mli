(** A process-level fleet manager: the Fig. 8 experiment executed with
    {e real} simulated processes rather than analytic job costs.

    An infinite round-robin queue of compiled jobs is processed on a
    Xeon, optionally extended with Raspberry Pis. When every Xeon slot
    is busy, the queue backs up and a free Pi slot triggers eviction:
    the most recently started Xeon job is live-migrated onto the Pi by
    driving a {!Dapper.Session} through its five stages, and the freed
    Xeon slot takes the next queued job — the paper's
    "simple scheduler to evict tasks ... when the x86-64 server runs
    out of CPU resources".

    Time advances in fixed quanta; each busy slot interprets
    [quantum_ms x ops/ms] instructions of its job per quantum, so
    heterogenous speeds, migration overheads and energy all come from
    the same clock.

    The engine is event-driven: quantum boundaries, eviction attempts
    and per-slot advances are entries in a shared {!Event_heap} rather
    than per-quantum scans over every slot. Within a timestamp, event
    keys replay the old scan's phase order exactly (boundary
    bookkeeping, then evictions in Pi-slot order, then advances in
    global slot order), so results — including trace and metrics
    output — are identical to the former quantum-scan loop; only idle
    slots no longer cost work. *)

open Dapper_util
open Dapper_net
open Dapper_codegen

type config = {
  f_window_ms : float;
  f_quantum_ms : float;
  f_xeon_slots : int;
  f_rpis : int;
  f_rpi_slots_each : int;
  f_evict : bool;          (** false: Pis stay idle (baseline) *)
  f_bytes_scale : float;
  f_job_fuel : int;        (** per-quantum interpreter safety cap *)
  f_speed_scale : float;
      (** divide node speeds by this factor so that downscaled jobs take
          realistic multiples of the quantum; relative Xeon/Pi speed is
          preserved (default 4200: the Xeon interprets 1000
          instructions per simulated millisecond) *)
  f_pause_budget : int;
      (** drain budget for eviction pauses; a budget too small to
          quiesce a job makes the eviction retry at a later quantum *)
  f_transport : Transport.t;
      (** transport evictions migrate over (default: eager scp over
          infiniband); wrap with {!Transport.retrying} to survive an
          unreliable link *)
  f_fault : Fault.t option;
      (** chaos plane threaded into every eviction session; also drawn
          at {!Fault.Dest_node} before each eviction — a crash kills the
          destination node for the rest of the window *)
  f_placement : Placement.t;
      (** victim-selection policy for evictions (default
          {!Placement.Latest_start}, the seed behaviour) *)
  f_node_gate : (node:int -> now_ms:float -> bool) option;
      (** health admission gate consulted before each eviction attempt:
          [false] defers the attempt (the slot stays free; the next
          quantum boundary re-arms it). Wire [Dapper_health.Quarantine]
          here. [None] (default): every attempt admitted — byte-identical
          to the pre-health engine. *)
  f_node_report : (node:int -> now_ms:float -> ok:bool -> unit) option;
      (** outcome feedback per destination node, fired after every
          admitted attempt (success, session failure, or node killed by
          the fault plane) — the health plane's failure-EWMA input. *)
  f_slo_gate : (now_ms:float -> bool) option;
      (** fleet-wide SLO gate: [false] (e.g. the live traffic p99 sketch
          is already over budget) defers every eviction this quantum. *)
}

val default_config : config

type stats = {
  f_jobs_done : int;
  f_jobs_done_rpi : int;
  f_evictions : int;
  f_eviction_failures : int;
      (** evictions lost to structural failures (or the job exiting
          during the pause); the job is not migrated *)
  f_eviction_retries : int;
      (** eviction attempts abandoned on a transient failure (e.g. drain
          budget exhausted, transfer timed out, destination node lost):
          the job resumes on its Xeon slot and the eviction is retried at
          a later quantum, possibly on a different node *)
  f_nodes_lost : int;
      (** destination nodes killed by the fault plane; a dead node's
          slots leave the eviction pool for the rest of the window *)
  f_recoveries : (string * int) list;
      (** recovery events per job name (sorted): every abandoned or
          failed eviction that rolled the job back to its source slot *)
  f_migration_ms_total : float;
  f_energy_kj : float;
  f_jobs_per_kj : float;
  f_events : int;
      (** heap events processed over the window — the engine's work, in
          place of the former [quanta x slots] scan cost *)
  f_deferred : int;
      (** eviction attempts deferred by the health gates ([f_node_gate] /
          [f_slo_gate]) — backoff, not loss: the slot re-arms at the next
          boundary *)
}

exception Fleet_error of string

(** Stall debt a victim slot still owes after an eviction attempt that
    charged it [charged_ms] failed: only the attempt's own tentative
    charge is given back; stall debt predating the attempt stands
    (never negative). A failed eviction that charged nothing leaves the
    ledger untouched. *)
val settle_failed_eviction : owed_ms:float -> charged_ms:float -> float

(** [run config jobs] processes the queue for the window. Each job run
    is a fresh process of the job's binary for the hosting node's
    architecture; evicted jobs continue from their live state. *)
val run : config -> Link.compiled list -> stats
