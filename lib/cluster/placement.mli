(** Pluggable placement policies for eviction scheduling.

    A policy makes the two decisions the fleet engines delegate:

    - {b victim} selection — which running job to evict from the loaded
      fast tier ({!choose_victim}, used by the process-level
      {!Fleet});
    - {b destination} selection — which slow-tier node class hosts an
      evicted job ({!choose_dest}, used by the datacenter-scale
      {!Fleet_xl}, whose slow tier is heterogeneous).

    Every choice is deterministic: candidates are presented in slot /
    class order and every rule breaks ties on the earliest candidate,
    so two runs of the same configuration place identically. *)

type t =
  | Latest_start
      (** evict the most recently started job (least sunk cost) — the
          seed fleet's hardcoded rule, and first-free destination *)
  | First_fit
      (** evict the first busy slot; pack destinations onto the
          lowest-numbered free slot (bin-packing) *)
  | Energy_aware
      (** evict the longest-running job (most fast-tier energy saved by
          finishing it on the efficient tier); destination with the
          lowest active watts per unit of speed *)
  | Slo_aware
      (** evict the most recently started job (least progress at risk);
          cheapest destination whose estimated completion meets the
          job's deadline, else the fastest *)
  | Latency_aware
      (** evict the most recently started job; destination whose rack's
          page servers are the least backed up ([page_wait_ms] hook), so
          requests faulting against the migrating job stall least — the
          policy the live-traffic plane feeds (ties on [dc_est_ms]) *)

val name : t -> string

(** Inverse of {!name}; [None] for unknown names. *)
val of_string : string -> t option

val all : t list

(** An eviction candidate: a busy fast-tier slot. [vc_index] is the
    caller's slot identifier; candidates must be listed in slot order. *)
type victim = { vc_index : int; vc_started_ms : float }

(** The chosen victim, or [None] when there are no candidates.
    [Latest_start] reproduces the seed fleet's fold exactly: maximum
    start time, earliest slot on ties. *)
val choose_victim : t -> victim list -> victim option

(** A destination candidate: a slow-tier node class with at least one
    free slot. [dc_lowest_slot] is the smallest free slot id in the
    class (global bin-packing order); [dc_est_ms] the estimated
    wait + migration + execution time of the job being placed there. *)
type dest = {
  dc_index : int;
  dc_lowest_slot : int;
  dc_ops_per_ns : float;
  dc_core_w : float;
  dc_est_ms : float;
}

(** Active watts divided by speed: joules charged per unit of work —
    the quantity energy-aware placement minimizes. *)
val watts_per_speed : dest -> float

(** The chosen destination, or [None] when there are no candidates.
    [deadline_ms] only affects [Slo_aware]: prefer the cheapest
    candidate with [dc_est_ms <= deadline_ms], falling back to the
    fastest when none meets it. [page_wait_ms] only affects
    [Latency_aware]: the estimated page-server queue wait at the
    candidate's rack (e.g. {!Rack.wait_ms}) — the stall a request
    faulting mid-migration would be charged; when absent,
    [Latency_aware] falls back to minimizing [dc_est_ms]. *)
val choose_dest :
  t -> ?deadline_ms:float -> ?page_wait_ms:(dest -> float) -> dest list ->
  dest option
