(** Datacenter-scale fleet engine: the Fig. 8 eviction scheduler at
    10,000 nodes and a million jobs.

    Where {!Fleet} drives real simulated processes through full
    migration sessions, [Fleet_xl] uses the analytic job costs of
    {!Scheduler} — but keeps the fleet mechanics that matter at scale:

    - a heterogeneous slow tier of node {e classes} (e.g. Pi 4 / Pi 5 /
      Jetson), each with its own speed and power model;
    - destination selection by a pluggable {!Placement} policy, with
      per-job SLO deadlines ([x_slo_factor] x the job's fast-tier
      runtime, measured from dispatch to completion). Policies also
      gate {e admission}: slo-aware defers a job no free destination
      can serve on deadline, and energy-aware refuses boards far off
      the fleet's best watts-per-speed — deferred jobs stay queued and
      are reconsidered after every event;
    - migration transfers queued behind per-rack page-server pools
      ({!Dapper_net.Rack}), so transfer capacity — not CPU — saturates
      first;
    - a sharded job queue with deterministic work-stealing
      ({!Dapper_net.Shard_queue});
    - chaos node loss as periodic heap events: a crash kills a slow
      node, voids its in-flight jobs' completions (generation
      counters), and re-enqueues those jobs.

    The engine is pure discrete-event simulation on {!Event_heap}: cost
    is proportional to events (dispatches, completions, loss draws),
    not to [nodes x quanta], which is what makes the 10k-node / 1M-job
    sweep run in seconds. Every decision breaks ties deterministically,
    so runs replay identically. *)

open Dapper_util
open Dapper_net

(** One slow-tier node class: [xc_nodes] machines of [xc_node], each
    hosting [xc_slots_per_node] job slots. *)
type class_cfg = {
  xc_node : Node.t;
  xc_nodes : int;
  xc_slots_per_node : int;
}

type config = {
  x_window_ms : float;
  x_xeon_slots : int;        (** fast-tier slots (xeon, never killed) *)
  x_classes : class_cfg list;
  x_jobs : int;              (** finite batch, all queued at time 0 *)
  x_placement : Placement.t;
  x_shards : int;            (** job-queue shards *)
  x_racks : int;
  x_page_servers_each : int;
  x_slo_factor : float;
      (** per-job deadline = factor x the job's fast-tier runtime *)
  x_fault : Fault.t option;
  x_loss_every_ms : float;   (** period of chaos node-loss draws *)
  x_rack_gate : (rack:int -> now_ms:float -> bool) option;
      (** health admission per rack: [false] removes the rack's free
          slots from the candidate set, shedding its load to the other
          racks until the health plane re-admits it. Wire
          [Dapper_health.Quarantine]/[Breaker] here. [None] (default
          semantics): every rack admitted — byte-identical to the
          pre-health engine. *)
  x_rack_report : (rack:int -> now_ms:float -> ok:bool -> unit) option;
      (** outcome feedback per rack: [ok:false] when a node on the rack
          is killed by the chaos plane, [ok:true] when a slow-tier job
          completes there — the failure-EWMA input. *)
}

type stats = {
  x_jobs_done : int;
  x_jobs_fast : int;
  x_jobs_slow : int;
  x_jobs_lost_in_flight : int;
      (** jobs voided by a node death and re-enqueued *)
  x_nodes_lost : int;
  x_migrations : int;
  x_migration_ms_total : float;
  x_rack_queue_ms : float;
      (** total time migrations queued behind busy page servers *)
  x_steals : int;            (** queue pops served by a shard steal *)
  x_slo_met : int;
  x_slo_missed : int;
  x_energy_kj : float;
      (** the fast tier is charged in full (idle + active); a slow
          board that served no job over the run counts as power-gated
          and draws nothing — how destination policies save energy *)
  x_jobs_per_kj : float;
  x_throughput_per_min : float;
  x_makespan_ms : float;     (** completion time of the last counted job *)
  x_nodes_powered : int;     (** slow boards that served at least one job *)
  x_events : int;            (** heap events processed *)
  x_events_per_sim_s : float;
}

(** [run config kinds] drains the batch (kinds cycled over [x_jobs]
    jobs) through the fleet. Raises [Invalid_argument] on an empty kind
    list or non-positive job count. *)
val run : config -> Scheduler.job_kind list -> stats
