open Dapper_util
open Dapper_net

type job_kind = {
  jk_name : string;
  jk_xeon_ms : float;
  jk_rpi_ms : float;
  jk_migration_ms : float;
}

type config = {
  c_window_ms : float;
  c_xeon_slots : int;
  c_rpis : int;
  c_rpi_slots_each : int;
}

type result = {
  r_jobs_done : int;
  r_jobs_xeon : int;
  r_jobs_rpi : int;
  r_energy_kj : float;
  r_jobs_per_kj : float;
  r_throughput_per_min : float;
}

let job_kind_of_session ~name ~xeon_ms ~rpi_ms ~times =
  { jk_name = name; jk_xeon_ms = xeon_ms; jk_rpi_ms = rpi_ms;
    jk_migration_ms = Dapper.Session.total_ms times }

let default_window_ms = 30.0 *. 60.0 *. 1000.0
let xeon_node = Node.xeon
let rpi_node = Node.rpi

type slot = { s_idx : int; s_is_rpi : bool; mutable s_busy_ms : float }

(* Discrete-event loop: each slot pulls the next job from the infinite
   round-robin queue the moment it frees up; a job counts if it finishes
   inside the window. Pi slots pay the eviction (migration) overhead on
   every job, as in the paper's setup where the scheduler moves the job
   to the board after it started on the loaded server.

   Slot free times live in an {!Event_heap} keyed by slot index, so each
   dispatch is O(log slots) instead of the former O(slots) fold — and
   the (time, key) tie-break reproduces that fold's hand-out exactly:
   jobs go to the earliest-freeing slot, earliest slot index on ties, so
   queue-order job hand-out is unchanged at any fleet size. *)
let run config kinds =
  if kinds = [] then invalid_arg "Scheduler.run: no job kinds";
  let kinds = Array.of_list kinds in
  let n_slots = config.c_xeon_slots + (config.c_rpis * config.c_rpi_slots_each) in
  let slots =
    Array.init n_slots (fun i ->
        { s_idx = i; s_is_rpi = i >= config.c_xeon_slots; s_busy_ms = 0.0 })
  in
  let heap = Event_heap.create ~capacity:n_slots () in
  Array.iter (fun s -> Event_heap.push heap ~key:s.s_idx ~time:0.0 s) slots;
  let queue_pos = ref 0 in
  let next_kind () =
    let k = kinds.(!queue_pos mod Array.length kinds) in
    incr queue_pos;
    k
  in
  let done_total = ref 0 and done_xeon = ref 0 and done_rpi = ref 0 in
  (* jobs are handed out in queue order: always serve the slot that frees
     up earliest (stable tie-break on slot order) *)
  let rec loop () =
    match Event_heap.pop heap with
    | None -> ()
    | Some (free_at, slot) ->
      if free_at >= config.c_window_ms then ()
      else begin
        let kind = next_kind () in
        let dur =
          if slot.s_is_rpi then kind.jk_rpi_ms +. kind.jk_migration_ms else kind.jk_xeon_ms
        in
        let finish = free_at +. dur in
        if finish <= config.c_window_ms then begin
          incr done_total;
          if slot.s_is_rpi then incr done_rpi else incr done_xeon;
          slot.s_busy_ms <- slot.s_busy_ms +. dur
        end
        else
          (* partial job at the window edge still burns the remaining time *)
          slot.s_busy_ms <- slot.s_busy_ms +. (config.c_window_ms -. free_at);
        Event_heap.push heap ~key:slot.s_idx ~time:finish slot;
        loop ()
      end
  in
  loop ();
  (* Energy: idle power over the whole window per machine, plus per-core
     active power over busy time. *)
  let window_s = config.c_window_ms /. 1000.0 in
  let xeon_busy_s =
    Array.fold_left (fun acc s -> if s.s_is_rpi then acc else acc +. (s.s_busy_ms /. 1000.0))
      0.0 slots
  in
  let rpi_busy_s =
    Array.fold_left (fun acc s -> if s.s_is_rpi then acc +. (s.s_busy_ms /. 1000.0) else acc)
      0.0 slots
  in
  let energy_j =
    (xeon_node.Node.n_idle_w *. window_s)
    +. (xeon_node.Node.n_core_w *. xeon_busy_s)
    +. (float_of_int config.c_rpis *. rpi_node.Node.n_idle_w *. window_s)
    +. (rpi_node.Node.n_core_w *. rpi_busy_s)
  in
  let energy_kj = energy_j /. 1000.0 in
  { r_jobs_done = !done_total;
    r_jobs_xeon = !done_xeon;
    r_jobs_rpi = !done_rpi;
    r_energy_kj = energy_kj;
    r_jobs_per_kj = float_of_int !done_total /. energy_kj;
    r_throughput_per_min = float_of_int !done_total /. (config.c_window_ms /. 60_000.0) }

let efficiency_gain_pct ~baseline ~subject =
  100.0 *. ((subject.r_jobs_per_kj /. baseline.r_jobs_per_kj) -. 1.0)

let throughput_gain_pct ~baseline ~subject =
  100.0 *. ((float_of_int subject.r_jobs_done /. float_of_int baseline.r_jobs_done) -. 1.0)
