type t = Latest_start | First_fit | Energy_aware | Slo_aware | Latency_aware

let name = function
  | Latest_start -> "latest-start"
  | First_fit -> "first-fit"
  | Energy_aware -> "energy-aware"
  | Slo_aware -> "slo-aware"
  | Latency_aware -> "latency-aware"

let all = [ Latest_start; First_fit; Energy_aware; Slo_aware; Latency_aware ]

let of_string s = List.find_opt (fun p -> name p = s) all

type victim = { vc_index : int; vc_started_ms : float }

(* All selection rules keep the first candidate among ties (strict
   comparisons), so candidate order — slot order by contract — is the
   deterministic tie-break. *)
let best_by better = function
  | [] -> None
  | c :: cs ->
    Some (List.fold_left (fun best c -> if better c best then c else best) c cs)

let choose_victim policy candidates =
  match policy with
  | First_fit -> ( match candidates with [] -> None | c :: _ -> Some c)
  | Latest_start | Slo_aware | Latency_aware ->
    best_by (fun c best -> c.vc_started_ms > best.vc_started_ms) candidates
  | Energy_aware ->
    best_by (fun c best -> c.vc_started_ms < best.vc_started_ms) candidates

type dest = {
  dc_index : int;
  dc_lowest_slot : int;
  dc_ops_per_ns : float;
  dc_core_w : float;
  dc_est_ms : float;
}

(* Active watts divided by speed: joules charged per unit of work — the
   quantity energy-aware placement minimizes. *)
let watts_per_speed d = d.dc_core_w /. d.dc_ops_per_ns

let choose_dest policy ?deadline_ms ?page_wait_ms candidates =
  match policy with
  | Latency_aware ->
    (* Minimize the page-server stall the migrating job's clients will
       see (the rack wait the traffic plane charges to faulting
       requests); break ties on total estimated completion. Without the
       hook the estimate is all we have. *)
    let wait = match page_wait_ms with None -> fun c -> c.dc_est_ms | Some f -> f in
    best_by
      (fun c best ->
        let wc = wait c and wb = wait best in
        wc < wb || (wc = wb && c.dc_est_ms < best.dc_est_ms))
      candidates
  | Latest_start | First_fit ->
    best_by (fun c best -> c.dc_lowest_slot < best.dc_lowest_slot) candidates
  | Energy_aware ->
    best_by (fun c best -> watts_per_speed c < watts_per_speed best) candidates
  | Slo_aware -> (
    let meets =
      match deadline_ms with
      | None -> candidates
      | Some dl -> List.filter (fun c -> c.dc_est_ms <= dl) candidates
    in
    match meets with
    | [] -> best_by (fun c best -> c.dc_est_ms < best.dc_est_ms) candidates
    | _ -> best_by (fun c best -> watts_per_speed c < watts_per_speed best) meets)
