(** Heterogeneous batch-processing simulation (paper Fig. 8).

    An infinite queue of HPC jobs is processed for a fixed window on a
    Xeon server, optionally extended with Raspberry Pi boards: when the
    server has more jobs than cores, Dapper evicts jobs to the Pis (each
    eviction pays the measured migration overhead). A discrete-event
    simulation tracks completions and integrates the power model over
    busy time, yielding jobs/kJ and throughput. *)

open Dapper_net

type job_kind = {
  jk_name : string;
  jk_xeon_ms : float;        (** execution time on a Xeon core *)
  jk_rpi_ms : float;         (** execution time on a Pi core *)
  jk_migration_ms : float;   (** one-time Dapper eviction cost *)
}

type config = {
  c_window_ms : float;       (** paper: 30 minutes *)
  c_xeon_slots : int;        (** paper: 7 job threads on the 8-core Xeon *)
  c_rpis : int;              (** 0, 1 or 3 boards *)
  c_rpi_slots_each : int;    (** paper: 3 job threads per Pi *)
}

type result = {
  r_jobs_done : int;
  r_jobs_xeon : int;
  r_jobs_rpi : int;
  r_energy_kj : float;
  r_jobs_per_kj : float;
  r_throughput_per_min : float;
}

(** Build a job kind whose one-time eviction cost is the total of a
    migration session's per-stage records — the analytic scheduler's
    migration costs come from real sessions, not hand-entered numbers. *)
val job_kind_of_session :
  name:string -> xeon_ms:float -> rpi_ms:float ->
  times:Dapper.Session.phase_times -> job_kind

(** [run config kinds] processes a round-robin queue of [kinds]. *)
val run : config -> job_kind list -> result

(** Relative improvement of [subject] over [baseline] in percent. *)
val efficiency_gain_pct : baseline:result -> subject:result -> float
val throughput_gain_pct : baseline:result -> subject:result -> float

val default_window_ms : float
val xeon_node : Node.t
val rpi_node : Node.t
