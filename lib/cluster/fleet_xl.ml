open Dapper_util
open Dapper_net
module Metrics = Dapper_obs.Metrics

let m_events = Metrics.counter "fleet_xl.events"
let m_jobs_done = Metrics.counter "fleet_xl.jobs_done"
let m_migrations = Metrics.counter "fleet_xl.migrations"
let m_nodes_lost = Metrics.counter "fleet_xl.nodes_lost"

type class_cfg = {
  xc_node : Node.t;
  xc_nodes : int;
  xc_slots_per_node : int;
}

type config = {
  x_window_ms : float;
  x_xeon_slots : int;
  x_classes : class_cfg list;
  x_jobs : int;
  x_placement : Placement.t;
  x_shards : int;
  x_racks : int;
  x_page_servers_each : int;
  x_slo_factor : float;
  x_fault : Fault.t option;
  x_loss_every_ms : float;
  x_rack_gate : (rack:int -> now_ms:float -> bool) option;
  x_rack_report : (rack:int -> now_ms:float -> ok:bool -> unit) option;
}

type stats = {
  x_jobs_done : int;
  x_jobs_fast : int;
  x_jobs_slow : int;
  x_jobs_lost_in_flight : int;
  x_nodes_lost : int;
  x_migrations : int;
  x_migration_ms_total : float;
  x_rack_queue_ms : float;
  x_steals : int;
  x_slo_met : int;
  x_slo_missed : int;
  x_energy_kj : float;
  x_jobs_per_kj : float;
  x_throughput_per_min : float;
  x_makespan_ms : float;
  x_nodes_powered : int;
  x_events : int;
  x_events_per_sim_s : float;
}

(* A job in flight on some slot. *)
type inflight = {
  i_kind : Scheduler.job_kind;
  i_dispatched_ms : float;
  i_exec_ms : float;
  i_slow : bool;
}

type slot = {
  s_id : int;                       (* global: fast slots, then classes *)
  s_class : int;                    (* -1 for the fast tier *)
  s_node_id : int;                  (* global node id (rack striping) *)
  s_node : Node.t;
  mutable s_gen : int;              (* bumped when the node dies *)
  mutable s_dead : bool;
  mutable s_busy_ms : float;
  mutable s_inflight : inflight option;
}

type event =
  | Loss_draw
  | Complete of int * int           (* slot id, generation at dispatch *)

let run config kinds =
  if kinds = [] then invalid_arg "Fleet_xl.run: no job kinds";
  if config.x_jobs <= 0 then invalid_arg "Fleet_xl.run: no jobs";
  let kinds = Array.of_list kinds in
  let classes = Array.of_list config.x_classes in
  let xeon = Node.xeon in
  (* Global slot and node numbering: the fast tier first, then each
     class in order. Nodes stripe across racks by id. *)
  let fast_nodes = (config.x_xeon_slots + xeon.Node.n_cores - 1) / xeon.Node.n_cores in
  let fast_slots =
    Array.init config.x_xeon_slots (fun i ->
        { s_id = i; s_class = -1; s_node_id = i / xeon.Node.n_cores;
          s_node = xeon; s_gen = 0; s_dead = false; s_busy_ms = 0.0;
          s_inflight = None })
  in
  let slow_slots =
    let next_slot = ref config.x_xeon_slots and next_node = ref fast_nodes in
    Array.to_list classes
    |> List.mapi (fun ci c ->
           let base_slot = !next_slot and base_node = !next_node in
           next_slot := !next_slot + (c.xc_nodes * c.xc_slots_per_node);
           next_node := !next_node + c.xc_nodes;
           Array.init (c.xc_nodes * c.xc_slots_per_node) (fun i ->
               { s_id = base_slot + i; s_class = ci;
                 s_node_id = base_node + (i / c.xc_slots_per_node);
                 s_node = c.xc_node; s_gen = 0; s_dead = false;
                 s_busy_ms = 0.0; s_inflight = None }))
    |> Array.concat
  in
  let all_slots = Array.append fast_slots slow_slots in
  let slot i = all_slots.(i) in
  (* Free-slot pools: the heap doubles as a lowest-id-first pool with
     time pinned to 0. Dead slots are skipped lazily on peek/pop. *)
  let pool_of slots =
    let p = Event_heap.create ~capacity:(Array.length slots) () in
    Array.iter (fun s -> Event_heap.push p ~key:s.s_id ~time:0.0 s.s_id) slots;
    p
  in
  let fast_pool = pool_of fast_slots in
  let class_pools =
    Array.map
      (fun _ -> Event_heap.create ())
      classes
  in
  Array.iter
    (fun s -> Event_heap.push class_pools.(s.s_class) ~key:s.s_id ~time:0.0 s.s_id)
    slow_slots;
  let rec pool_peek p =
    match Event_heap.peek p with
    | None -> None
    | Some (_, id) when (slot id).s_dead ->
      ignore (Event_heap.pop p);
      pool_peek p
    | Some (_, id) -> Some id
  in
  let pool_pop p =
    match pool_peek p with
    | None -> None
    | Some id ->
      ignore (Event_heap.pop p);
      Some id
  in
  let queue =
    Shard_queue.create ~shards:config.x_shards
      (List.init config.x_jobs (fun i -> kinds.(i mod Array.length kinds)))
  in
  let racks =
    Rack.create ~racks:config.x_racks ~servers_each:config.x_page_servers_each
  in
  let heap : event Event_heap.t = Event_heap.create () in
  let key_loss = 0 in
  let key_complete id = 1 + id in
  let done_total = ref 0 and done_fast = ref 0 and done_slow = ref 0 in
  let lost_in_flight = ref 0 and nodes_lost = ref 0 in
  let migrations = ref 0 and migration_ms = ref 0.0 in
  let slo_met = ref 0 and slo_missed = ref 0 in
  let events = ref 0 in
  let makespan = ref 0.0 in
  let slow_dispatches = ref 0 in
  let exec_ms_on node kind =
    kind.Scheduler.jk_xeon_ms *. (xeon.Node.n_ops_per_ns /. node.Node.n_ops_per_ns)
  in
  (* Admission: a policy may leave a job queued rather than take any
     free slot. Slo-aware refuses destinations that would blow the
     job's deadline (better to wait for a fast or faster slot);
     energy-aware refuses boards whose watts-per-speed is far off the
     fleet's best class. First-fit and latest-start take anything. *)
  let best_wps =
    Array.fold_left
      (fun acc c ->
        Float.min acc (c.xc_node.Node.n_core_w /. c.xc_node.Node.n_ops_per_ns))
      infinity classes
  in
  let admits ~deadline d =
    match config.x_placement with
    | Placement.Slo_aware -> d.Placement.dc_est_ms <= deadline
    | Placement.Energy_aware -> Placement.watts_per_speed d <= 1.25 *. best_wps
    | Placement.Latest_start | Placement.First_fit | Placement.Latency_aware ->
      true
  in
  (* Dispatch as much queued work as capacity and admission allow at
     time [now]: fast slots first (lowest id), then one slow
     destination per queued job, chosen by the placement policy among
     classes with a live free slot. Migration onto the slow tier queues
     behind the destination rack's page servers. A deferred job stays
     queued; dispatch re-runs after every event, when estimates and
     free pools have moved. *)
  let rec dispatch now =
    if now < config.x_window_ms && not (Shard_queue.is_empty queue) then begin
      match pool_pop fast_pool with
      | Some id ->
        let s = slot id in
        let kind = Option.get (Shard_queue.pop queue ~shard:(id mod config.x_shards)) in
        let exec = kind.Scheduler.jk_xeon_ms in
        s.s_inflight <-
          Some { i_kind = kind; i_dispatched_ms = now; i_exec_ms = exec; i_slow = false };
        Event_heap.push heap ~key:(key_complete id) ~time:(now +. exec) (Complete (id, s.s_gen));
        dispatch now
      | None ->
        let free_classes =
          Array.to_list (Array.mapi (fun ci p -> (ci, pool_peek p)) class_pools)
          |> List.filter_map (fun (ci, id) -> Option.map (fun id -> (ci, id)) id)
        in
        if free_classes <> [] then begin
          (* inspect the job before committing: if no admissible
             destination is free, it stays at the head of its shard *)
          let shard = !slow_dispatches mod config.x_shards in
          let kind = Option.get (Shard_queue.peek queue ~shard) in
          let deadline = config.x_slo_factor *. kind.Scheduler.jk_xeon_ms in
          (* remembered per class so the latency-aware scoring hook can
             recover the pure rack wait (dc_est_ms folds it into the
             total estimate) *)
          let class_waits = Array.make (Array.length classes) 0.0 in
          let candidates =
            List.filter_map
              (fun (ci, id) ->
                let c = classes.(ci) in
                let rack =
                  Rack.rack_of_node ~racks:config.x_racks ~node:(slot id).s_node_id
                in
                (* a quarantined rack sheds its load to the others: its
                   free slots simply stop being candidates until the
                   health plane re-admits it *)
                match config.x_rack_gate with
                | Some g when not (g ~rack ~now_ms:now) -> None
                | _ ->
                  let wait = Rack.wait_ms racks ~rack ~now_ms:now in
                  class_waits.(ci) <- wait;
                  Some
                    { Placement.dc_index = ci;
                      dc_lowest_slot = id;
                      dc_ops_per_ns = c.xc_node.Node.n_ops_per_ns;
                      dc_core_w = c.xc_node.Node.n_core_w;
                      dc_est_ms =
                        wait
                        +. kind.Scheduler.jk_migration_ms
                        +. exec_ms_on c.xc_node kind })
              free_classes
            |> List.filter (admits ~deadline)
          in
          match
            Placement.choose_dest config.x_placement ~deadline_ms:deadline
              ~page_wait_ms:(fun d -> class_waits.(d.Placement.dc_index))
              candidates
          with
          | None -> ()  (* defer: no admissible destination right now *)
          | Some dest ->
            incr slow_dispatches;
            let kind = Option.get (Shard_queue.pop queue ~shard) in
            let id = Option.get (pool_pop class_pools.(dest.Placement.dc_index)) in
            let s = slot id in
            let rack = Rack.rack_of_node ~racks:config.x_racks ~node:s.s_node_id in
            let mig_done =
              Rack.acquire racks ~rack ~now_ms:now
                ~service_ms:kind.Scheduler.jk_migration_ms
            in
            incr migrations;
            Metrics.inc m_migrations;
            migration_ms := !migration_ms +. kind.Scheduler.jk_migration_ms;
            let exec = exec_ms_on s.s_node kind in
            s.s_inflight <-
              Some { i_kind = kind; i_dispatched_ms = now; i_exec_ms = exec; i_slow = true };
            Event_heap.push heap ~key:(key_complete id) ~time:(mig_done +. exec)
              (Complete (id, s.s_gen));
            dispatch now
        end
    end
  in
  let complete now id gen =
    let s = slot id in
    if gen = s.s_gen then begin
      let job = Option.get s.s_inflight in
      s.s_inflight <- None;
      s.s_busy_ms <- s.s_busy_ms +. job.i_exec_ms;
      if now <= config.x_window_ms then begin
        incr done_total;
        Metrics.inc m_jobs_done;
        if job.i_slow then begin
          incr done_slow;
          (match config.x_rack_report with
           | None -> ()
           | Some r ->
             r
               ~rack:(Rack.rack_of_node ~racks:config.x_racks ~node:s.s_node_id)
               ~now_ms:now ~ok:true);
          let deadline = config.x_slo_factor *. job.i_kind.Scheduler.jk_xeon_ms in
          if now -. job.i_dispatched_ms <= deadline then incr slo_met
          else incr slo_missed
        end
        else incr done_fast;
        makespan := Float.max !makespan now
      end;
      let pool = if s.s_class < 0 then fast_pool else class_pools.(s.s_class) in
      Event_heap.push pool ~key:id ~time:0.0 id
    end
  in
  (* The chaos plane at scale: a periodic draw that, on a crash, kills
     the next living slow node round-robin. Its slots leave the pools
     (lazily) and any in-flight jobs are lost and re-enqueued — their
     stale generation voids the pending completion. *)
  let kill_cursor = ref 0 in
  let kill_next_node now =
    let n = Array.length slow_slots in
    if n > 0 then begin
      let rec find tries =
        if tries >= n then None
        else begin
          let victim = slow_slots.(!kill_cursor mod n).s_node_id in
          kill_cursor := !kill_cursor + 1;
          let slots =
            Array.to_list slow_slots
            |> List.filter (fun s -> s.s_node_id = victim && not s.s_dead)
          in
          if slots = [] then find (tries + 1) else Some slots
        end
      in
      match find 0 with
      | None -> ()
      | Some slots ->
        incr nodes_lost;
        Metrics.inc m_nodes_lost;
        (match (config.x_rack_report, slots) with
         | Some r, s :: _ ->
           r
             ~rack:(Rack.rack_of_node ~racks:config.x_racks ~node:s.s_node_id)
             ~now_ms:now ~ok:false
         | _ -> ());
        List.iter
          (fun s ->
            s.s_dead <- true;
            s.s_gen <- s.s_gen + 1;
            match s.s_inflight with
            | None -> ()
            | Some job ->
              s.s_inflight <- None;
              incr lost_in_flight;
              Shard_queue.push queue ~shard:(s.s_id mod config.x_shards) job.i_kind)
          slots
    end
  in
  let loss_draw now =
    (match config.x_fault with
     | Some f when now < config.x_window_ms ->
       (match Fault.draw f Fault.Dest_node with
        | Some Fault.Crash -> kill_next_node now
        | _ -> ());
       Event_heap.push heap ~key:key_loss ~time:(now +. config.x_loss_every_ms) Loss_draw
     | _ -> ())
  in
  if config.x_fault <> None && config.x_loss_every_ms > 0.0 then
    Event_heap.push heap ~key:key_loss ~time:config.x_loss_every_ms Loss_draw;
  dispatch 0.0;
  let rec drain () =
    match Event_heap.pop heap with
    | None -> ()
    | Some (now, ev) ->
      incr events;
      Metrics.inc m_events;
      (match ev with
       | Loss_draw -> loss_draw now
       | Complete (id, gen) -> complete now id gen);
      dispatch now;
      drain ()
  in
  drain ();
  let elapsed_ms = Float.min config.x_window_ms !makespan in
  let elapsed_s = Float.max 1e-9 (elapsed_ms /. 1000.0) in
  let busy_s pred =
    Array.fold_left
      (fun acc s -> if pred s then acc +. (s.s_busy_ms /. 1000.0) else acc)
      0.0 all_slots
  in
  (* A slow board that served no job over the whole run is counted as
     power-gated (off): that is what lets an energy-aware policy
     actually save energy by concentrating work on the efficient
     classes. The always-on fast tier is charged in full. *)
  let powered : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun s ->
      if s.s_busy_ms > 0.0 then Hashtbl.replace powered (s.s_class, s.s_node_id) ())
    slow_slots;
  let powered_nodes ci =
    Hashtbl.fold (fun (c, _) () acc -> if c = ci then acc + 1 else acc) powered 0
  in
  let slow_energy_j =
    Array.to_list classes
    |> List.mapi (fun ci c ->
           (float_of_int (powered_nodes ci) *. c.xc_node.Node.n_idle_w *. elapsed_s)
           +. (c.xc_node.Node.n_core_w *. busy_s (fun s -> s.s_class = ci)))
    |> List.fold_left ( +. ) 0.0
  in
  let energy_j =
    (float_of_int fast_nodes *. xeon.Node.n_idle_w *. elapsed_s)
    +. (xeon.Node.n_core_w *. busy_s (fun s -> s.s_class < 0))
    +. slow_energy_j
  in
  let energy_kj = energy_j /. 1000.0 in
  { x_jobs_done = !done_total;
    x_jobs_fast = !done_fast;
    x_jobs_slow = !done_slow;
    x_jobs_lost_in_flight = !lost_in_flight;
    x_nodes_lost = !nodes_lost;
    x_migrations = !migrations;
    x_migration_ms_total = !migration_ms;
    x_rack_queue_ms = Rack.queue_delay_ms racks;
    x_steals = Shard_queue.steals queue;
    x_slo_met = !slo_met;
    x_slo_missed = !slo_missed;
    x_energy_kj = energy_kj;
    x_jobs_per_kj = float_of_int !done_total /. energy_kj;
    x_throughput_per_min = float_of_int !done_total /. (elapsed_ms /. 60_000.0);
    x_makespan_ms = !makespan;
    x_nodes_powered = Hashtbl.length powered;
    x_events = !events;
    x_events_per_sim_s = float_of_int !events /. elapsed_s }
