open Dapper_util
open Dapper_machine
open Dapper_net
open Dapper_codegen
module Session = Dapper.Session
module Trace = Dapper_obs.Trace
module Metrics = Dapper_obs.Metrics

let m_quanta = Metrics.counter "fleet.quanta"
let m_events = Metrics.counter "fleet.events"
let m_jobs_done = Metrics.counter "fleet.jobs_done"
let m_evictions = Metrics.counter "fleet.evictions"
let m_eviction_retries = Metrics.counter "fleet.eviction_retries"
let m_eviction_failures = Metrics.counter "fleet.eviction_failures"
let m_nodes_lost = Metrics.counter "fleet.nodes_lost"
let m_migration_ms = Metrics.gauge "fleet.migration_ms"
let m_deferred = Metrics.counter "fleet.evictions_deferred"

type config = {
  f_window_ms : float;
  f_quantum_ms : float;
  f_xeon_slots : int;
  f_rpis : int;
  f_rpi_slots_each : int;
  f_evict : bool;
  f_bytes_scale : float;
  f_job_fuel : int;
  f_speed_scale : float;
  f_pause_budget : int;
  f_transport : Transport.t;
  f_fault : Fault.t option;
  f_placement : Placement.t;
  f_node_gate : (node:int -> now_ms:float -> bool) option;
  f_node_report : (node:int -> now_ms:float -> ok:bool -> unit) option;
  f_slo_gate : (now_ms:float -> bool) option;
}

let default_config =
  { f_window_ms = 30_000.0; f_quantum_ms = 50.0; f_xeon_slots = 7; f_rpis = 3;
    f_rpi_slots_each = 3; f_evict = true; f_bytes_scale = 1.0;
    f_job_fuel = 50_000_000; f_speed_scale = 4200.0; f_pause_budget = 50_000_000;
    f_transport = Transport.scp Dapper_net.Link.infiniband; f_fault = None;
    f_placement = Placement.Latest_start; f_node_gate = None;
    f_node_report = None; f_slo_gate = None }

type stats = {
  f_jobs_done : int;
  f_jobs_done_rpi : int;
  f_evictions : int;
  f_eviction_failures : int;
  f_eviction_retries : int;
  f_nodes_lost : int;
  f_recoveries : (string * int) list;
  f_migration_ms_total : float;
  f_energy_kj : float;
  f_jobs_per_kj : float;
  f_events : int;
  f_deferred : int;
}

exception Fleet_error of string

(* A failed eviction must give back exactly what it tentatively charged
   the victim slot — not wipe the slot's whole stall ledger. Stall debt
   can pre-date the attempt (e.g. an earlier inbound migration onto the
   same slot), and zeroing would forgive it. *)
let settle_failed_eviction ~owed_ms ~charged_ms =
  Float.max 0.0 (owed_ms -. charged_ms)

type running = {
  r_proc : Process.t;
  r_compiled : Link.compiled;
  r_started_quantum : int;
}

type slot = {
  s_idx : int;                 (** global slot index: xeons, then pis *)
  s_node : Node.t;
  mutable s_job : running option;
  mutable s_busy_ms : float;
  mutable s_stall_ms : float;  (** time owed (e.g. migration overhead) *)
  mutable s_dead : bool;       (** node killed by the fault plane *)
}

(* The engine's heap events. Each carries the quantum index it fires in;
   within a quantum, key order runs the boundary bookkeeping first, then
   eviction attempts in Pi-slot order, then slot advances in global slot
   order — the exact phase order of the old per-quantum scan. *)
type event =
  | Boundary       (** quantum boundary: refill Xeon slots, arm evictions *)
  | Evict of int   (** eviction attempt onto free Pi slot [i] *)
  | Advance of int (** advance the job on global slot [i] by one quantum *)

let key_boundary = 0
let key_evict i = 1 + i
let key_advance i = 1_000_000 + i

let run config (jobs : Link.compiled list) =
  if jobs = [] then raise (Fleet_error "no jobs");
  let jobs = Array.of_list jobs in
  let queue_pos = ref 0 in
  let next_job () =
    let j = jobs.(!queue_pos mod Array.length jobs) in
    incr queue_pos;
    j
  in
  let xeon_slots =
    Array.init config.f_xeon_slots (fun i ->
        { s_idx = i; s_node = Node.xeon; s_job = None; s_busy_ms = 0.0;
          s_stall_ms = 0.0; s_dead = false })
  in
  let rpi_slots =
    Array.init (config.f_rpis * config.f_rpi_slots_each) (fun i ->
        { s_idx = config.f_xeon_slots + i; s_node = Node.rpi; s_job = None;
          s_busy_ms = 0.0; s_stall_ms = 0.0; s_dead = false })
  in
  let done_total = ref 0 and done_rpi = ref 0 in
  let evictions = ref 0 and eviction_failures = ref 0 in
  let eviction_retries = ref 0 in
  let nodes_lost = ref 0 in
  let recoveries : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let recover app =
    Hashtbl.replace recoveries app
      (1 + Option.value ~default:0 (Hashtbl.find_opt recoveries app))
  in
  let migration_ms = ref 0.0 in
  let start_job slot quantum =
    let compiled = next_job () in
    let bin = Link.binary_for compiled slot.s_node.Node.n_arch in
    (* a fresh job owes nothing its predecessor may have left behind *)
    slot.s_stall_ms <- 0.0;
    slot.s_job <-
      Some { r_proc = Process.load bin; r_compiled = compiled; r_started_quantum = quantum }
  in
  let quanta = int_of_float (config.f_window_ms /. config.f_quantum_ms) in
  let all_slots = Array.append xeon_slots rpi_slots in
  let heap : (int * event) Event_heap.t = Event_heap.create () in
  let time_of q = float_of_int q *. config.f_quantum_ms in
  let push_ev q key ev = Event_heap.push heap ~key ~time:(time_of q) (q, ev) in
  let events = ref 0 in
  (* One eviction attempt onto free Pi slot [pi] during quantum [q] —
     the old per-quantum scan body, now fired as a heap event. The
     armed conditions are re-checked here; between arming (at the
     boundary) and firing, only earlier evictions of the same quantum
     run, and those never free a Xeon slot or touch another Pi. *)
  let deferred = ref 0 in
  let gate_ok f = match f with None -> true | Some g -> g in
  let report ~node ~now_ms ~ok =
    match config.f_node_report with
    | None -> ()
    | Some r -> r ~node ~now_ms ~ok
  in
  let attempt_eviction q pi =
    if
      pi.s_job = None && (not pi.s_dead)
      && Array.for_all (fun s -> s.s_job <> None) xeon_slots
    then
      (* health admission: a quarantined destination or a traffic plane
         already missing its SLO defers the eviction — the slot stays
         free and the next boundary re-arms it, so deferral is backoff,
         not loss *)
      if
        not
          (gate_ok
             (Option.map
                (fun g -> g ~node:pi.s_idx ~now_ms:(time_of q))
                config.f_node_gate)
           && gate_ok
                (Option.map (fun g -> g ~now_ms:(time_of q)) config.f_slo_gate))
      then begin
        incr deferred;
        Metrics.inc m_deferred
      end
      else begin
      (* the policy picks the victim among busy xeon slots (in slot
         order); the default [Latest_start] reproduces the old
         hardcoded most-recently-started fold exactly *)
      let candidates =
        Array.to_list xeon_slots
        |> List.filter_map (fun s ->
               match s.s_job with
               | None -> None
               | Some j ->
                 Some
                   { Placement.vc_index = s.s_idx;
                     vc_started_ms =
                       float_of_int j.r_started_quantum *. config.f_quantum_ms })
      in
      let victim =
        Option.map
          (fun v -> xeon_slots.(v.Placement.vc_index))
          (Placement.choose_victim config.f_placement candidates)
      in
      match victim with
      | None -> ()
      | Some vs ->
              let job = Option.get vs.s_job in
              let src_bin =
                Link.binary_for job.r_compiled Dapper_isa.Arch.X86_64
              in
              let dst_bin =
                Link.binary_for job.r_compiled Dapper_isa.Arch.Aarch64
              in
              let scfg =
                { (Session.default_config ~src_bin ~dst_bin) with
                  Session.cfg_bytes_scale = config.f_bytes_scale;
                  cfg_pause_budget = config.f_pause_budget;
                  cfg_transport = config.f_transport;
                  cfg_fault = config.f_fault }
              in
              (* the fault plane may kill the destination node outright
                 mid-eviction: the node leaves the pool and the job —
                 never having left the source — re-enters the queue of
                 eviction candidates, to be retried on another node *)
              let node_killed =
                match
                  Option.bind config.f_fault (fun f -> Fault.draw f Fault.Dest_node)
                with
                | Some Fault.Crash ->
                  pi.s_dead <- true;
                  incr nodes_lost;
                  Metrics.inc m_nodes_lost;
                  true
                | _ -> false
              in
              if node_killed then begin
                incr eviction_retries;
                Metrics.inc m_eviction_retries;
                recover job.r_compiled.Link.cp_app;
                report ~node:pi.s_idx ~now_ms:(time_of q) ~ok:false
              end
              else
                Trace.span ~cat:"fleet" "eviction"
                  ~args:[ ("app", job.r_compiled.Link.cp_app) ]
                @@ fun () ->
                (match Session.run scfg job.r_proc with
                 | Ok st ->
                   let r = Session.finish st in
                   report ~node:pi.s_idx ~now_ms:(time_of q) ~ok:true;
                   incr evictions;
                   Metrics.inc m_evictions;
                   let cost = Session.total_ms r.Session.r_times in
                   migration_ms := !migration_ms +. cost;
                   Metrics.add m_migration_ms cost;
                   (* the migration's cost stalls the destination slot; the
                      victim slot hands its job over and owes nothing *)
                   pi.s_stall_ms <- pi.s_stall_ms +. cost;
                   pi.s_job <-
                     Some { r_proc = r.Session.r_process; r_compiled = job.r_compiled;
                            r_started_quantum = q };
                   vs.s_job <- None;
                   start_job vs q;
                   (* the destination starts progressing this same quantum,
                      as the old advance pass gave it; the victim's pending
                      advance covers its replacement job *)
                   push_ev q (key_advance pi.s_idx) (Advance pi.s_idx)
                 | Error e ->
                   report ~node:pi.s_idx ~now_ms:(time_of q) ~ok:false;
                   (* The session's rollback already resumed the source. A
                      transient failure (drain budget exhausted, transfer
                      timed out, node lost) leaves the job in place to
                      retry at a later quantum — possibly on a different
                      node; only structural failures count as lost
                      evictions. Either way the recovery is charged to the
                      job so flaky applications are visible per name. *)
                   if Dapper_error.retriable e then begin
                     incr eviction_retries;
                     Metrics.inc m_eviction_retries
                   end
                   else begin
                     incr eviction_failures;
                     Metrics.inc m_eviction_failures
                   end;
                   recover job.r_compiled.Link.cp_app;
                   (match job.r_proc.Process.exit_code with
                    | Some _ ->
                      (* the job finished during the pause *)
                      incr done_total;
                      Metrics.inc m_jobs_done;
                      vs.s_job <- None;
                      start_job vs q
                    | None ->
                      (* no migration happened, so this attempt charged the
                         victim slot nothing — give back exactly that, not
                         the slot's whole stall ledger *)
                      vs.s_stall_ms <-
                        settle_failed_eviction ~owed_ms:vs.s_stall_ms
                          ~charged_ms:0.0))
    end
  in
  (* Advance the job on slot [s] through quantum [q] — the old
     per-quantum progress pass, now one heap event per busy slot per
     quantum. A slot whose job survives the quantum reschedules its own
     advance; a freed slot goes quiet until the next boundary (Xeon) or
     eviction (Pi) gives it work again. *)
  let advance q s =
    match s.s_job with
    | None -> ()
    | Some job ->
      s.s_busy_ms <- s.s_busy_ms +. config.f_quantum_ms;
      (if s.s_stall_ms >= config.f_quantum_ms then
         s.s_stall_ms <- s.s_stall_ms -. config.f_quantum_ms
       else begin
         let effective_ms = config.f_quantum_ms -. s.s_stall_ms in
         s.s_stall_ms <- 0.0;
         let instrs =
           int_of_float
             (effective_ms *. s.s_node.Node.n_ops_per_ns *. 1e6
              /. config.f_speed_scale)
         in
         match Process.run job.r_proc ~max_instrs:(min instrs config.f_job_fuel) with
         | Process.Exited_run _ ->
           incr done_total;
           Metrics.inc m_jobs_done;
           if s.s_node.Node.n_arch = Dapper_isa.Arch.Aarch64 then incr done_rpi;
           s.s_job <- None
         | Process.Crashed cr ->
           raise (Fleet_error ("job crashed: " ^ cr.Process.cr_reason))
         | Process.Progress -> ()
         | Process.Idle -> raise (Fleet_error "job deadlocked")
       end);
      if s.s_job <> None && q + 1 < quanta then
        push_ev (q + 1) (key_advance s.s_idx) (Advance s.s_idx)
  in
  (* Quantum boundary: refill every idle Xeon slot (the queue is
     infinite, so the fast tier never sits idle past a boundary), arm
     one eviction attempt per free live Pi slot, and schedule the next
     boundary. *)
  let boundary q =
    Array.iter
      (fun s ->
        if s.s_job = None then begin
          start_job s q;
          push_ev q (key_advance s.s_idx) (Advance s.s_idx)
        end)
      xeon_slots;
    if config.f_evict then
      Array.iter
        (fun pi ->
          if pi.s_job = None && not pi.s_dead then
            push_ev q (key_evict pi.s_idx) (Evict pi.s_idx))
        rpi_slots;
    if q + 1 < quanta then push_ev (q + 1) key_boundary Boundary
  in
  (* Drain the heap. Trace spans still group per quantum index so the
     trace shape matches the old loop; each quantum accounts for
     [f_quantum_ms] of window wall time (an eviction's session spans may
     already have charged more). *)
  let open_q = ref (-1) in
  let leave_quantum () =
    if !open_q >= 0 then Trace.leave ~dur_ns:(config.f_quantum_ms *. 1e6) ()
  in
  let enter_quantum q =
    leave_quantum ();
    Trace.enter ~cat:"fleet" "quantum" ~args:[ ("q", string_of_int q) ];
    Metrics.inc m_quanta;
    open_q := q
  in
  if quanta > 0 then push_ev 0 key_boundary Boundary;
  let rec drain () =
    match Event_heap.pop heap with
    | None -> ()
    | Some (_, (q, ev)) ->
      incr events;
      Metrics.inc m_events;
      if q <> !open_q then enter_quantum q;
      (match ev with
       | Boundary -> boundary q
       | Evict i -> attempt_eviction q all_slots.(i)
       | Advance i -> advance q all_slots.(i));
      drain ()
  in
  (* a raising eviction (Fleet_error) must not leak the open quantum
     span: close it on every exit path *)
  Fun.protect ~finally:(fun () -> leave_quantum ()) drain;
  let busy arch =
    Array.fold_left
      (fun acc s -> if s.s_node.Node.n_arch = arch then acc +. s.s_busy_ms else acc)
      0.0 all_slots
    /. 1000.0
  in
  let window_s = config.f_window_ms /. 1000.0 in
  let energy_j =
    (Node.xeon.Node.n_idle_w *. window_s)
    +. (Node.xeon.Node.n_core_w *. busy Dapper_isa.Arch.X86_64)
    +. (float_of_int config.f_rpis *. Node.rpi.Node.n_idle_w *. window_s)
    +. (Node.rpi.Node.n_core_w *. busy Dapper_isa.Arch.Aarch64)
  in
  { f_jobs_done = !done_total;
    f_jobs_done_rpi = !done_rpi;
    f_evictions = !evictions;
    f_eviction_failures = !eviction_failures;
    f_eviction_retries = !eviction_retries;
    f_nodes_lost = !nodes_lost;
    f_recoveries =
      List.sort compare
        (Hashtbl.fold (fun app n acc -> (app, n) :: acc) recoveries []);
    f_migration_ms_total = !migration_ms;
    f_energy_kj = energy_j /. 1000.0;
    f_jobs_per_kj = float_of_int !done_total /. (energy_j /. 1000.0);
    f_events = !events;
    f_deferred = !deferred }
