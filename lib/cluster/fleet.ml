open Dapper_util
open Dapper_machine
open Dapper_net
open Dapper_codegen
module Session = Dapper.Session
module Trace = Dapper_obs.Trace
module Metrics = Dapper_obs.Metrics

let m_quanta = Metrics.counter "fleet.quanta"
let m_jobs_done = Metrics.counter "fleet.jobs_done"
let m_evictions = Metrics.counter "fleet.evictions"
let m_eviction_retries = Metrics.counter "fleet.eviction_retries"
let m_eviction_failures = Metrics.counter "fleet.eviction_failures"
let m_nodes_lost = Metrics.counter "fleet.nodes_lost"
let m_migration_ms = Metrics.gauge "fleet.migration_ms"

type config = {
  f_window_ms : float;
  f_quantum_ms : float;
  f_xeon_slots : int;
  f_rpis : int;
  f_rpi_slots_each : int;
  f_evict : bool;
  f_bytes_scale : float;
  f_job_fuel : int;
  f_speed_scale : float;
  f_pause_budget : int;
  f_transport : Transport.t;
  f_fault : Fault.t option;
}

let default_config =
  { f_window_ms = 30_000.0; f_quantum_ms = 50.0; f_xeon_slots = 7; f_rpis = 3;
    f_rpi_slots_each = 3; f_evict = true; f_bytes_scale = 1.0;
    f_job_fuel = 50_000_000; f_speed_scale = 4200.0; f_pause_budget = 50_000_000;
    f_transport = Transport.scp Dapper_net.Link.infiniband; f_fault = None }

type stats = {
  f_jobs_done : int;
  f_jobs_done_rpi : int;
  f_evictions : int;
  f_eviction_failures : int;
  f_eviction_retries : int;
  f_nodes_lost : int;
  f_recoveries : (string * int) list;
  f_migration_ms_total : float;
  f_energy_kj : float;
  f_jobs_per_kj : float;
}

exception Fleet_error of string

(* A failed eviction must give back exactly what it tentatively charged
   the victim slot — not wipe the slot's whole stall ledger. Stall debt
   can pre-date the attempt (e.g. an earlier inbound migration onto the
   same slot), and zeroing would forgive it. *)
let settle_failed_eviction ~owed_ms ~charged_ms =
  Float.max 0.0 (owed_ms -. charged_ms)

type running = {
  r_proc : Process.t;
  r_compiled : Link.compiled;
  r_started_quantum : int;
}

type slot = {
  s_node : Node.t;
  mutable s_job : running option;
  mutable s_busy_ms : float;
  mutable s_stall_ms : float;  (** time owed (e.g. migration overhead) *)
  mutable s_dead : bool;       (** node killed by the fault plane *)
}

let run config (jobs : Link.compiled list) =
  if jobs = [] then raise (Fleet_error "no jobs");
  let jobs = Array.of_list jobs in
  let queue_pos = ref 0 in
  let next_job () =
    let j = jobs.(!queue_pos mod Array.length jobs) in
    incr queue_pos;
    j
  in
  let xeon_slots =
    Array.init config.f_xeon_slots (fun _ ->
        { s_node = Node.xeon; s_job = None; s_busy_ms = 0.0; s_stall_ms = 0.0;
          s_dead = false })
  in
  let rpi_slots =
    Array.init (config.f_rpis * config.f_rpi_slots_each) (fun _ ->
        { s_node = Node.rpi; s_job = None; s_busy_ms = 0.0; s_stall_ms = 0.0;
          s_dead = false })
  in
  let done_total = ref 0 and done_rpi = ref 0 in
  let evictions = ref 0 and eviction_failures = ref 0 in
  let eviction_retries = ref 0 in
  let nodes_lost = ref 0 in
  let recoveries : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let recover app =
    Hashtbl.replace recoveries app
      (1 + Option.value ~default:0 (Hashtbl.find_opt recoveries app))
  in
  let migration_ms = ref 0.0 in
  let start_job slot quantum =
    let compiled = next_job () in
    let bin = Link.binary_for compiled slot.s_node.Node.n_arch in
    (* a fresh job owes nothing its predecessor may have left behind *)
    slot.s_stall_ms <- 0.0;
    slot.s_job <-
      Some { r_proc = Process.load bin; r_compiled = compiled; r_started_quantum = quantum }
  in
  let quanta = int_of_float (config.f_window_ms /. config.f_quantum_ms) in
  for q = 0 to quanta - 1 do
    Metrics.inc m_quanta;
    Trace.enter ~cat:"fleet" "quantum" ~args:[ ("q", string_of_int q) ];
    (* fill free Xeon slots from the queue *)
    Array.iter (fun s -> if s.s_job = None then start_job s q) xeon_slots;
    (* eviction: queue is backed up (all xeon busy) and a Pi is free *)
    if config.f_evict then
      Array.iter
        (fun pi ->
          if
            pi.s_job = None && (not pi.s_dead)
            && Array.for_all (fun s -> s.s_job <> None) xeon_slots
          then begin
            (* evict the most recently started xeon job (least sunk cost) *)
            let victim =
              Array.fold_left
                (fun best s ->
                  match (best, s.s_job) with
                  | None, Some _ -> Some s
                  | Some b, Some j ->
                    (match b.s_job with
                     | Some jb when j.r_started_quantum > jb.r_started_quantum -> Some s
                     | _ -> best)
                  | _, None -> best)
                None xeon_slots
            in
            match victim with
            | None -> ()
            | Some vs ->
              let job = Option.get vs.s_job in
              let src_bin =
                Link.binary_for job.r_compiled Dapper_isa.Arch.X86_64
              in
              let dst_bin =
                Link.binary_for job.r_compiled Dapper_isa.Arch.Aarch64
              in
              let scfg =
                { (Session.default_config ~src_bin ~dst_bin) with
                  Session.cfg_bytes_scale = config.f_bytes_scale;
                  cfg_pause_budget = config.f_pause_budget;
                  cfg_transport = config.f_transport;
                  cfg_fault = config.f_fault }
              in
              (* the fault plane may kill the destination node outright
                 mid-eviction: the node leaves the pool and the job —
                 never having left the source — re-enters the queue of
                 eviction candidates, to be retried on another node *)
              let node_killed =
                match
                  Option.bind config.f_fault (fun f -> Fault.draw f Fault.Dest_node)
                with
                | Some Fault.Crash ->
                  pi.s_dead <- true;
                  incr nodes_lost;
                  Metrics.inc m_nodes_lost;
                  true
                | _ -> false
              in
              if node_killed then begin
                incr eviction_retries;
                Metrics.inc m_eviction_retries;
                recover job.r_compiled.Link.cp_app
              end
              else
                Trace.span ~cat:"fleet" "eviction"
                  ~args:[ ("app", job.r_compiled.Link.cp_app) ]
                @@ fun () ->
                (match Session.run scfg job.r_proc with
                 | Ok st ->
                   let r = Session.finish st in
                   incr evictions;
                   Metrics.inc m_evictions;
                   let cost = Session.total_ms r.Session.r_times in
                   migration_ms := !migration_ms +. cost;
                   Metrics.add m_migration_ms cost;
                   (* the migration's cost stalls the destination slot; the
                      victim slot hands its job over and owes nothing *)
                   pi.s_stall_ms <- pi.s_stall_ms +. cost;
                   pi.s_job <-
                     Some { r_proc = r.Session.r_process; r_compiled = job.r_compiled;
                            r_started_quantum = q };
                   vs.s_job <- None;
                   start_job vs q
                 | Error e ->
                   (* The session's rollback already resumed the source. A
                      transient failure (drain budget exhausted, transfer
                      timed out, node lost) leaves the job in place to
                      retry at a later quantum — possibly on a different
                      node; only structural failures count as lost
                      evictions. Either way the recovery is charged to the
                      job so flaky applications are visible per name. *)
                   if Dapper_error.retriable e then begin
                     incr eviction_retries;
                     Metrics.inc m_eviction_retries
                   end
                   else begin
                     incr eviction_failures;
                     Metrics.inc m_eviction_failures
                   end;
                   recover job.r_compiled.Link.cp_app;
                   (match job.r_proc.Process.exit_code with
                    | Some _ ->
                      (* the job finished during the pause *)
                      incr done_total;
                      Metrics.inc m_jobs_done;
                      vs.s_job <- None;
                      start_job vs q
                    | None ->
                      (* no migration happened, so this attempt charged the
                         victim slot nothing — give back exactly that, not
                         the slot's whole stall ledger *)
                      vs.s_stall_ms <-
                        settle_failed_eviction ~owed_ms:vs.s_stall_ms
                          ~charged_ms:0.0))
          end)
        rpi_slots;
    (* advance every busy slot by one quantum *)
    Array.iter
      (fun s ->
        match s.s_job with
        | None -> ()
        | Some job ->
          s.s_busy_ms <- s.s_busy_ms +. config.f_quantum_ms;
          if s.s_stall_ms >= config.f_quantum_ms then
            s.s_stall_ms <- s.s_stall_ms -. config.f_quantum_ms
          else begin
            let effective_ms = config.f_quantum_ms -. s.s_stall_ms in
            s.s_stall_ms <- 0.0;
            let instrs =
              int_of_float
                (effective_ms *. s.s_node.Node.n_ops_per_ns *. 1e6
                 /. config.f_speed_scale)
            in
            match Process.run job.r_proc ~max_instrs:(min instrs config.f_job_fuel) with
            | Process.Exited_run _ ->
              incr done_total;
              Metrics.inc m_jobs_done;
              if s.s_node.Node.n_arch = Dapper_isa.Arch.Aarch64 then incr done_rpi;
              s.s_job <- None
            | Process.Crashed cr ->
              raise (Fleet_error ("job crashed: " ^ cr.Process.cr_reason))
            | Process.Progress -> ()
            | Process.Idle -> raise (Fleet_error "job deadlocked")
          end)
      (Array.append xeon_slots rpi_slots);
    (* each quantum accounts for [f_quantum_ms] of window wall time; an
       eviction's session spans may already have charged more *)
    Trace.leave ~dur_ns:(config.f_quantum_ms *. 1e6) ()
  done;
  let busy arch =
    Array.fold_left
      (fun acc s -> if s.s_node.Node.n_arch = arch then acc +. s.s_busy_ms else acc)
      0.0
      (Array.append xeon_slots rpi_slots)
    /. 1000.0
  in
  let window_s = config.f_window_ms /. 1000.0 in
  let energy_j =
    (Node.xeon.Node.n_idle_w *. window_s)
    +. (Node.xeon.Node.n_core_w *. busy Dapper_isa.Arch.X86_64)
    +. (float_of_int config.f_rpis *. Node.rpi.Node.n_idle_w *. window_s)
    +. (Node.rpi.Node.n_core_w *. busy Dapper_isa.Arch.Aarch64)
  in
  { f_jobs_done = !done_total;
    f_jobs_done_rpi = !done_rpi;
    f_evictions = !evictions;
    f_eviction_failures = !eviction_failures;
    f_eviction_retries = !eviction_retries;
    f_nodes_lost = !nodes_lost;
    f_recoveries =
      List.sort compare
        (Hashtbl.fold (fun app n acc -> (app, n) :: acc) recoveries []);
    f_migration_ms_total = !migration_ms;
    f_energy_kj = energy_j /. 1000.0;
    f_jobs_per_kj = float_of_int !done_total /. (energy_j /. 1000.0) }
