(** Parser and type checker for the clite surface syntax — the textual
    front-end playing Clang's role in the paper's pipeline.

    {v
    global hits;            // 8-byte global
    global f table[64];     // global array of floats
    tls state;              // thread-local

    fn weight(f x) : f {    // ": f" - returns f64 (default i64)
      return x * 2.5;
    }

    fn main() {
      var i = 0;            // i64 local (promotable)
      var f acc = 0.0;      // f64 local
      arr buf[8];           // stack array (shuffled by Dapper)
      var fptr xs = sbrk(64 * 8);
      for (i = 0; i < 64; i = i + 1) {
        xs[i] = weight(i2f(i));
        acc = acc + xs[i];
      }
      buf.[0] = 65;         // byte store
      print("acc=");        // string-literal print
      print_flt(acc); print_nl();
      return f2i(acc) % 251;
    }
    v}

    Expressions are typed (i64 / f64 / typed pointers); arithmetic
    operators resolve to integer or float operations from their operand
    types, and mixing requires explicit [i2f]/[f2i]. [&&]/[||] normalize
    their operands but do not short-circuit. General [for] loops are
    restricted to the canonical counting form; use [while] otherwise.

    Built-ins beyond the runtime/stdlib calls: [i2f], [f2i], [sqrt],
    [icall(p, ...)] (indirect call), [print("literal")]. *)

exception Parse_error of string

(** [compile ~name src] parses, type-checks and lowers the program,
    returning the IR module (with the {!Cstd} library linked in). *)
val compile : name:string -> string -> Dapper_ir.Ir.modul
