(** A small clite standard library added to workload modules.

    Provides formatted output on top of the raw [write] syscall so that
    benchmark programs produce verifiable stdout (the cross-ISA migration
    tests compare stdout byte-for-byte against native runs):

    - [print_str(ptr, len)] — raw bytes
    - [print_int(n)]        — decimal, no newline
    - [print_flt(x)]        — fixed-point with 3 decimals
    - [print_nl()]          — newline
    - [abs64(n)], [min64], [max64] — arithmetic helpers
    - [memset8(p, byte, len)], [memcpy8(dst, src, len)] — byte ops
    - [strlen8(p)] — length of a NUL-terminated byte string
    - [fexp(x)], [fln(x)] — exp and natural log (series approximations)
    - [fpow_i(x, n)] — x to an integer power
    - [fsin(x)], [fcos(x)] — trigonometry (Taylor series)
    - [rand_seed(s)], [rand_next()], [frand()] — per-program LCG *)

val add : Cl.mb -> unit

(** [print b mb s] emits a statement printing literal [s]. *)
val print : Cl.fnb -> Cl.mb -> string -> unit
