open Lexer

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* ----- surface AST ----- *)

type pexpr =
  | PInt of int64
  | PFloat of float
  | PStr of string
  | PVar of string
  | PAddr of string
  | PUn of string * pexpr
  | PBin of string * pexpr * pexpr
  | PIdx of pexpr * pexpr
  | PIdx8 of pexpr * pexpr
  | PCall of string * pexpr list

type decl_kind = DInt | DFlt | DPtr | DFptr

type pstmt =
  | SVar of decl_kind * string * pexpr
  | SArr of bool * string * int           (* float?, name, elems *)
  | SAssign of string * pexpr
  | SStoreIdx of pexpr * pexpr * pexpr
  | SStoreIdx8 of pexpr * pexpr * pexpr
  | SStoreMem of pexpr * pexpr
  | SIf of pexpr * pstmt list * pstmt list
  | SWhile of pexpr * pstmt list
  | SFor of string * pexpr * pexpr * pstmt list  (* canonical counting loop *)
  | SBreak
  | SContinue
  | SReturn of pexpr option
  | SExpr of pexpr

type pfunc = {
  pf_name : string;
  pf_params : (decl_kind * string) list;
  pf_ret : decl_kind;
  pf_body : pstmt list;
}

type ptop =
  | TGlobal of bool * string * int * int64 option  (* float?, name, elems, init *)
  | TTls of string
  | TFunc of pfunc

(* ----- token stream ----- *)

type stream = { toks : located array; mutable pos : int }

let cur st = st.toks.(st.pos)
let tok st = (cur st).tok

let perr st fmt =
  let { line; col; _ } = cur st in
  Printf.ksprintf
    (fun s -> raise (Parse_error (Printf.sprintf "line %d, col %d: %s" line col s)))
    fmt

let advance st = if st.pos < Array.length st.toks - 1 then st.pos <- st.pos + 1

let eat st t =
  if tok st = t then advance st
  else perr st "expected %s, found %s" (token_to_string t) (token_to_string (tok st))

let eat_punct st s = eat st (PUNCT s)

let ident st =
  match tok st with
  | IDENT s ->
    advance st;
    s
  | t -> perr st "expected identifier, found %s" (token_to_string t)

let accept st t =
  if tok st = t then begin
    advance st;
    true
  end
  else false

(* ----- expression parsing (precedence climbing) ----- *)

let binop_levels =
  [ [ "||" ]; [ "&&" ]; [ "|" ]; [ "^" ]; [ "&" ]; [ "=="; "!=" ];
    [ "<"; "<="; ">"; ">=" ]; [ "<<"; ">>" ]; [ "+"; "-" ]; [ "*"; "/"; "%" ] ]

let rec parse_expr st = parse_level st 0

and parse_level st lvl =
  if lvl >= List.length binop_levels then parse_unary st
  else begin
    let ops = List.nth binop_levels lvl in
    let lhs = ref (parse_level st (lvl + 1)) in
    let continue = ref true in
    while !continue do
      match tok st with
      | PUNCT op when List.mem op ops ->
        advance st;
        let rhs = parse_level st (lvl + 1) in
        lhs := PBin (op, !lhs, rhs)
      | _ -> continue := false
    done;
    !lhs
  end

and parse_unary st =
  match tok st with
  | PUNCT "-" ->
    advance st;
    PUn ("-", parse_unary st)
  | PUNCT "!" ->
    advance st;
    PUn ("!", parse_unary st)
  | PUNCT "*" ->
    advance st;
    PUn ("*", parse_unary st)
  | PUNCT "&" ->
    advance st;
    PAddr (ident st)
  | _ -> parse_postfix st

and parse_postfix st =
  let base = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    match tok st with
    | PUNCT "[" ->
      advance st;
      let idx = parse_expr st in
      eat_punct st "]";
      base := PIdx (!base, idx)
    | PUNCT ".[" ->
      advance st;
      let idx = parse_expr st in
      eat_punct st "]";
      base := PIdx8 (!base, idx)
    | _ -> continue := false
  done;
  !base

and parse_primary st =
  match tok st with
  | INT v ->
    advance st;
    PInt v
  | FLOAT v ->
    advance st;
    PFloat v
  | STRING s ->
    advance st;
    PStr s
  | PUNCT "(" ->
    advance st;
    let e = parse_expr st in
    eat_punct st ")";
    e
  | IDENT name ->
    advance st;
    if tok st = PUNCT "(" then begin
      advance st;
      let args = ref [] in
      if tok st <> PUNCT ")" then begin
        args := [ parse_expr st ];
        while accept st (PUNCT ",") do
          args := parse_expr st :: !args
        done
      end;
      eat_punct st ")";
      PCall (name, List.rev !args)
    end
    else PVar name
  | t -> perr st "expected expression, found %s" (token_to_string t)

(* ----- statement parsing ----- *)

let parse_decl_kind st =
  if accept st (KW "f") then
    if tok st = IDENT "ptr" then perr st "write fptr as a single word: var fptr x"
    else DFlt
  else if accept st (KW "ptr") then DPtr
  else if tok st = IDENT "fptr" then begin
    advance st;
    DFptr
  end
  else DInt

let rec parse_block st =
  eat_punct st "{";
  let stmts = ref [] in
  while tok st <> PUNCT "}" do
    stmts := parse_stmt st :: !stmts
  done;
  eat_punct st "}";
  List.rev !stmts

and parse_stmt st =
  match tok st with
  | KW "var" ->
    advance st;
    let kind = parse_decl_kind st in
    let name = ident st in
    eat_punct st "=";
    let e = parse_expr st in
    eat_punct st ";";
    SVar (kind, name, e)
  | KW "arr" ->
    advance st;
    let is_float = accept st (KW "f") in
    let name = ident st in
    eat_punct st "[";
    let n =
      match tok st with
      | INT v ->
        advance st;
        Int64.to_int v
      | _ -> perr st "array size must be an integer literal"
    in
    eat_punct st "]";
    eat_punct st ";";
    SArr (is_float, name, n)
  | KW "if" ->
    advance st;
    eat_punct st "(";
    let cond = parse_expr st in
    eat_punct st ")";
    let then_ = parse_block st in
    let else_ =
      if accept st (KW "else") then
        if tok st = KW "if" then [ parse_stmt st ] else parse_block st
      else []
    in
    SIf (cond, then_, else_)
  | KW "while" ->
    advance st;
    eat_punct st "(";
    let cond = parse_expr st in
    eat_punct st ")";
    SWhile (cond, parse_block st)
  | KW "for" ->
    advance st;
    eat_punct st "(";
    let name = ident st in
    eat_punct st "=";
    let lo = parse_expr st in
    eat_punct st ";";
    (* canonical form: name < hi ; name = name + 1 *)
    let name2 = ident st in
    if name2 <> name then perr st "for loop must test its counter (%s)" name;
    eat_punct st "<";
    let hi = parse_expr st in
    eat_punct st ";";
    let name3 = ident st in
    eat_punct st "=";
    let name4 = ident st in
    eat_punct st "+";
    (match tok st with
     | INT 1L -> advance st
     | _ -> perr st "for step must be `%s = %s + 1` (use while otherwise)" name name);
    if name3 <> name || name4 <> name then
      perr st "for step must be `%s = %s + 1`" name name;
    eat_punct st ")";
    SFor (name, lo, hi, parse_block st)
  | KW "break" ->
    advance st;
    eat_punct st ";";
    SBreak
  | KW "continue" ->
    advance st;
    eat_punct st ";";
    SContinue
  | KW "return" ->
    advance st;
    if accept st (PUNCT ";") then SReturn None
    else begin
      let e = parse_expr st in
      eat_punct st ";";
      SReturn (Some e)
    end
  | PUNCT "*" ->
    (* *addr = value ; *)
    advance st;
    let addr = parse_unary st in
    eat_punct st "=";
    let value = parse_expr st in
    eat_punct st ";";
    SStoreMem (addr, value)
  | _ ->
    (* expression or assignment: parse an expression, then dispatch *)
    let e = parse_expr st in
    if accept st (PUNCT "=") then begin
      let rhs = parse_expr st in
      eat_punct st ";";
      match e with
      | PVar name -> SAssign (name, rhs)
      | PIdx (base, idx) -> SStoreIdx (base, idx, rhs)
      | PIdx8 (base, idx) -> SStoreIdx8 (base, idx, rhs)
      | PUn ("*", addr) -> SStoreMem (addr, rhs)
      | _ -> perr st "left-hand side is not assignable"
    end
    else begin
      eat_punct st ";";
      SExpr e
    end

let parse_param st =
  let kind = parse_decl_kind st in
  (kind, ident st)

let parse_top st =
  match tok st with
  | KW "global" ->
    advance st;
    let is_float = accept st (KW "f") in
    let name = ident st in
    let elems =
      if accept st (PUNCT "[") then begin
        match tok st with
        | INT v ->
          advance st;
          eat_punct st "]";
          Int64.to_int v
        | _ -> perr st "array size must be an integer literal"
      end
      else 1
    in
    let init =
      if accept st (PUNCT "=") then (
        match tok st with
        | INT v ->
          advance st;
          Some v
        | _ -> perr st "global initializer must be an integer literal")
      else None
    in
    eat_punct st ";";
    TGlobal (is_float, name, elems, init)
  | KW "tls" ->
    advance st;
    let name = ident st in
    eat_punct st ";";
    TTls name
  | KW "fn" ->
    advance st;
    let name = ident st in
    eat_punct st "(";
    let params = ref [] in
    if tok st <> PUNCT ")" then begin
      params := [ parse_param st ];
      while accept st (PUNCT ",") do
        params := parse_param st :: !params
      done
    end;
    eat_punct st ")";
    let ret =
      if accept st (PUNCT ":") then parse_decl_kind st else DInt
    in
    let body = parse_block st in
    TFunc { pf_name = name; pf_params = List.rev !params; pf_ret = ret; pf_body = body }
  | t -> perr st "expected global, tls or fn, found %s" (token_to_string t)

let parse_program src =
  let toks = Array.of_list (tokenize src) in
  let st = { toks; pos = 0 } in
  let tops = ref [] in
  while tok st <> EOF do
    tops := parse_top st :: !tops
  done;
  List.rev !tops

(* ----- typed lowering onto the Cl builder ----- *)

type ty = TI | TF | TP of ty  (* pointer element type: TI or TF *)

let ty_name = function
  | TI -> "i64"
  | TF -> "f64"
  | TP TF -> "fptr"
  | TP _ -> "ptr"

let ty_of_kind = function DInt -> TI | DFlt -> TF | DPtr -> TP TI | DFptr -> TP TF

let cl_ty = function TI -> Dapper_ir.Ir.I64 | TF -> Dapper_ir.Ir.F64 | TP _ -> Dapper_ir.Ir.Ptr

(* signatures of the runtime library and Cstd *)
let builtin_sigs =
  [ ("exit", ([ TI ], TI)); ("write", ([ TI; TP TI; TI ], TI));
    ("sbrk", ([ TI ], TP TI)); ("spawn", ([ TP TI; TI ], TI)); ("join", ([ TI ], TI));
    ("lock", ([ TP TI ], TI)); ("unlock", ([ TP TI ], TI)); ("clock", ([], TI));
    ("yield", ([], TI));
    ("print_str", ([ TP TI; TI ], TI)); ("print_int", ([ TI ], TI));
    ("print_flt", ([ TF ], TI)); ("print_nl", ([], TI));
    ("abs64", ([ TI ], TI)); ("min64", ([ TI; TI ], TI)); ("max64", ([ TI; TI ], TI));
    ("memset8", ([ TP TI; TI; TI ], TI)); ("memcpy8", ([ TP TI; TP TI; TI ], TI));
    ("strlen8", ([ TP TI ], TI));
    ("fexp", ([ TF ], TF)); ("fln", ([ TF ], TF)); ("fpow_i", ([ TF; TI ], TF));
    ("fsin", ([ TF ], TF)); ("fcos", ([ TF ], TF));
    ("rand_seed", ([ TI ], TI)); ("rand_next", ([], TI)); ("frand", ([], TF)) ]

type genv = {
  mb : Cl.mb;
  fsigs : (string * (ty list * ty)) list;
  globals : (string * ty) list;      (* scalar type or pointer-to-elem for arrays *)
  garrays : string list;
  tls : string list;
}

type fenv = {
  g : genv;
  mutable locals : (string * ty) list;
  mutable arrays : (string * ty) list; (* name -> element pointer type *)
}

let lookup_sig env name = List.assoc_opt name env.g.fsigs

(* lower an expression; returns the Cl expression and its type *)
let rec lower_expr env (b : Cl.fnb) e : Cl.expr * ty =
  ignore b;
  match e with
  | PInt v -> (Cl.i64 v, TI)
  | PFloat v -> (Cl.f v, TF)
  | PStr s ->
    let name = Cl.str_lit env.g.mb s in
    (Cl.addr name, TP TI)
  | PVar name ->
    (match List.assoc_opt name env.locals with
     | Some ty -> (Cl.v name, ty)
     | None ->
       (match List.assoc_opt name env.arrays with
        | Some ty -> (Cl.addr name, ty)
        | None ->
          if List.mem name env.g.garrays then
            (Cl.addr name, List.assoc name env.g.globals)
          else
            (match List.assoc_opt name env.g.globals with
             | Some ty -> (Cl.v name, ty)
             | None ->
               if List.mem name env.g.tls then (Cl.v name, TI)
               else if lookup_sig env name <> None then (Cl.fnptr name, TP TI)
               else fail "unknown identifier %s" name)))
  | PAddr name ->
    if List.mem_assoc name env.locals || List.mem_assoc name env.arrays
       || List.mem_assoc name env.g.globals || List.mem name env.g.tls
    then (Cl.addr name, TP TI)
    else fail "cannot take the address of unknown %s" name
  | PUn ("-", e) ->
    let v, ty = lower_expr env b e in
    (match ty with
     | TI -> (Cl.neg v, TI)
     | TF -> (Cl.fneg v, TF)
     | TP _ -> fail "cannot negate a pointer")
  | PUn ("!", e) ->
    let v, ty = lower_expr env b e in
    if ty = TF then fail "! expects an integer";
    (Cl.eq v (Cl.i 0), TI)
  | PUn ("*", e) ->
    let v, ty = lower_expr env b e in
    (match ty with
     | TP TF -> (Cl.deref v, TF)
     | TP _ -> (Cl.deref v, TI)
     | TI | TF -> fail "* expects a pointer")
  | PUn (op, _) -> fail "unknown unary operator %s" op
  | PIdx (base, idx) ->
    let vb, tb = lower_expr env b base in
    let vi, ti = lower_expr env b idx in
    if ti <> TI then fail "index must be an integer";
    (match tb with
     | TP elem -> (Cl.idx vb vi, elem)
     | TI | TF -> fail "indexing a non-pointer")
  | PIdx8 (base, idx) ->
    let vb, tb = lower_expr env b base in
    let vi, ti = lower_expr env b idx in
    if ti <> TI then fail "index must be an integer";
    (match tb with
     | TP _ -> (Cl.idx8 vb vi, TI)
     | TI | TF -> fail "byte-indexing a non-pointer")
  | PBin (op, a, c) -> lower_binop env b op a c
  | PCall ("print", [ PStr s ]) ->
    let name = Cl.str_lit env.g.mb s in
    (Cl.call "print_str" [ Cl.addr name; Cl.i (String.length s) ], TI)
  | PCall ("i2f", [ e ]) ->
    let v, ty = lower_expr env b e in
    if ty <> TI then fail "i2f expects an integer";
    (Cl.i2f v, TF)
  | PCall ("f2i", [ e ]) ->
    let v, ty = lower_expr env b e in
    if ty <> TF then fail "f2i expects a float";
    (Cl.f2i v, TI)
  | PCall ("sqrt", [ e ]) ->
    let v, ty = lower_expr env b e in
    if ty <> TF then fail "sqrt expects a float";
    (Cl.sqrt_ v, TF)
  | PCall ("icall", target :: args) ->
    let vt, tt = lower_expr env b target in
    (match tt with
     | TP _ ->
       let vargs = List.map (fun a -> fst (lower_expr env b a)) args in
       (Cl.call_ptr vt vargs, TI)
     | TI | TF -> fail "icall expects a function pointer")
  | PCall (name, args) ->
    (match lookup_sig env name with
     | None -> fail "call to unknown function %s" name
     | Some (param_tys, ret) ->
       if List.length args <> List.length param_tys then
         fail "%s expects %d arguments, got %d" name (List.length param_tys)
           (List.length args);
       let vargs =
         List.map2
           (fun a want ->
             let v, got = lower_expr env b a in
             (match (want, got) with
              | TI, TI | TF, TF -> ()
              | TP _, TP _ -> () (* pointers interconvert *)
              | TP _, TI when name = "spawn" -> () (* tid-style ints ok *)
              | _ ->
                fail "%s: argument type mismatch (expected %s, got %s)" name
                  (ty_name want) (ty_name got));
             v)
           args param_tys
       in
       let call = if ret = TF then Cl.callf name vargs else Cl.call name vargs in
       (call, ret))

and lower_binop env b op a c =
  let va, ta = lower_expr env b a in
  let vc, tc = lower_expr env b c in
  let ints f = (f va vc, TI) in
  let norm v = Cl.ne v (Cl.i 0) in
  match (op, ta, tc) with
  | "+", TI, TI -> ints Cl.add
  | "+", TF, TF -> (Cl.fadd va vc, TF)
  | "+", TP e, TI -> (Cl.add va (Cl.mul vc (Cl.i 8)), TP e)
  | "+", TI, TP e -> (Cl.add (Cl.mul va (Cl.i 8)) vc, TP e)
  | "-", TI, TI -> ints Cl.sub
  | "-", TF, TF -> (Cl.fsub va vc, TF)
  | "-", TP e, TI -> (Cl.sub va (Cl.mul vc (Cl.i 8)), TP e)
  | "-", TP _, TP _ -> (Cl.div_ (Cl.sub va vc) (Cl.i 8), TI)
  | "*", TI, TI -> ints Cl.mul
  | "*", TF, TF -> (Cl.fmul va vc, TF)
  | "/", TI, TI -> ints Cl.div_
  | "/", TF, TF -> (Cl.fdiv va vc, TF)
  | "%", TI, TI -> ints Cl.rem_
  | "&", TI, TI -> ints Cl.band
  | "|", TI, TI -> ints Cl.bor
  | "^", TI, TI -> ints Cl.bxor
  | "<<", TI, TI -> ints Cl.shl
  | ">>", TI, TI -> ints Cl.shr
  | "&&", TI, TI -> (Cl.band (norm va) (norm vc), TI)
  | "||", TI, TI -> (Cl.bor (norm va) (norm vc), TI)
  | "==", TI, TI | "==", TP _, TP _ -> ints Cl.eq
  | "==", TF, TF -> (Cl.feq va vc, TI)
  | "!=", TI, TI | "!=", TP _, TP _ -> ints Cl.ne
  | "!=", TF, TF -> (Cl.sub (Cl.i 1) (Cl.feq va vc), TI)
  | "<", TI, TI | "<", TP _, TP _ -> ints Cl.lt
  | "<", TF, TF -> (Cl.flt va vc, TI)
  | "<=", TI, TI -> ints Cl.le
  | "<=", TF, TF -> (Cl.fle va vc, TI)
  | ">", TI, TI -> ints Cl.gt
  | ">", TF, TF -> (Cl.flt vc va, TI)
  | ">=", TI, TI -> ints Cl.ge
  | ">=", TF, TF -> (Cl.fle vc va, TI)
  | _ ->
    fail "operator %s not defined on (%s, %s) - cast explicitly with i2f/f2i" op
      (ty_name ta) (ty_name tc)

let rec lower_stmt env (b : Cl.fnb) = function
  | SVar (kind, name, e) ->
    let ty = ty_of_kind kind in
    let v, got = lower_expr env b e in
    (match (ty, got) with
     | TI, TI | TF, TF -> ()
     | TP _, TP _ -> ()
     | _ -> fail "var %s : %s initialized with %s" name (ty_name ty) (ty_name got));
    (match ty with
     | TI -> Cl.decl b name v
     | TF -> Cl.declf b name v
     | TP _ -> Cl.declp b name v);
    env.locals <- (name, ty) :: env.locals
  | SArr (is_float, name, n) ->
    Cl.decl_arr_ty b name n (if is_float then Dapper_ir.Ir.F64 else Dapper_ir.Ir.I64);
    env.arrays <- (name, TP (if is_float then TF else TI)) :: env.arrays
  | SAssign (name, e) ->
    let v, got = lower_expr env b e in
    let want =
      match List.assoc_opt name env.locals with
      | Some ty -> ty
      | None ->
        (match List.assoc_opt name env.g.globals with
         | Some ty when not (List.mem name env.g.garrays) -> ty
         | Some _ -> fail "cannot assign to array %s" name
         | None ->
           if List.mem name env.g.tls then TI else fail "unknown variable %s" name)
    in
    (match (want, got) with
     | TI, TI | TF, TF -> ()
     | TP _, TP _ -> ()
     | _ -> fail "assigning %s to %s : %s" (ty_name got) name (ty_name want));
    Cl.set b name v
  | SStoreIdx (base, idx, value) ->
    let vb, tb = lower_expr env b base in
    let vi, _ = lower_expr env b idx in
    let vv, tv = lower_expr env b value in
    (match (tb, tv) with
     | TP TI, TI | TP TF, TF | TP TI, TP _ -> ()
     | TP elem, _ -> fail "storing %s into array of %s" (ty_name tv) (ty_name elem)
     | _ -> fail "indexed store into a non-pointer");
    Cl.store_idx b vb vi vv
  | SStoreIdx8 (base, idx, value) ->
    let vb, tb = lower_expr env b base in
    let vi, _ = lower_expr env b idx in
    let vv, tv = lower_expr env b value in
    if tv <> TI then fail "byte store expects an integer";
    (match tb with
     | TP _ -> Cl.store_idx8 b vb vi vv
     | _ -> fail "byte store into a non-pointer")
  | SStoreMem (addr, value) ->
    let va, ta = lower_expr env b addr in
    let vv, _ = lower_expr env b value in
    (match ta with
     | TP _ -> Cl.store b va vv
     | _ -> fail "store through a non-pointer")
  | SIf (cond, then_, else_) ->
    let vc, tc = lower_expr env b cond in
    if tc = TF then fail "if condition must be an integer";
    Cl.if_else b vc
      (fun b -> List.iter (lower_stmt env b) then_)
      (fun b -> List.iter (lower_stmt env b) else_)
  | SWhile (cond, body) ->
    (* the condition re-lowers per loop structure, evaluated in the header *)
    let vc, tc = lower_expr env b cond in
    if tc = TF then fail "while condition must be an integer";
    Cl.while_ b vc (fun b -> List.iter (lower_stmt env b) body)
  | SFor (name, lo, hi, body) ->
    let vlo, tlo = lower_expr env b lo in
    let vhi, thi = lower_expr env b hi in
    if tlo <> TI || thi <> TI then fail "for bounds must be integers";
    if not (List.mem_assoc name env.locals) then env.locals <- (name, TI) :: env.locals;
    Cl.for_ b name vlo vhi (fun b -> List.iter (lower_stmt env b) body)
  | SBreak -> Cl.break_ b
  | SContinue -> Cl.continue_ b
  | SReturn None -> Cl.ret0 b
  | SReturn (Some e) ->
    let v, _ = lower_expr env b e in
    Cl.ret b v
  | SExpr (PCall (_, _) as e) ->
    let v, _ = lower_expr env b e in
    Cl.do_ b v
  | SExpr _ -> fail "expression statement has no effect; assign it or call a function"

let compile ~name src =
  let tops = parse_program src in
  let mb = Cl.create name in
  Cstd.add mb;
  (* first pass: signatures and global declarations *)
  let fsigs = ref builtin_sigs in
  let globals = ref [] in
  let garrays = ref [] in
  let tls = ref [] in
  List.iter
    (function
      | TGlobal (is_float, gname, elems, init) ->
        if elems = 1 then begin
          (match init with
           | Some v -> Cl.global_i64 mb gname v
           | None -> Cl.global mb gname 8);
          globals := (gname, if is_float then TF else TI) :: !globals
        end
        else begin
          Cl.global mb gname (8 * elems);
          globals := (gname, TP (if is_float then TF else TI)) :: !globals;
          garrays := gname :: !garrays
        end
      | TTls tname ->
        Cl.tls_var mb tname 8;
        tls := tname :: !tls
      | TFunc f ->
        fsigs :=
          (f.pf_name, (List.map (fun (k, _) -> ty_of_kind k) f.pf_params, ty_of_kind f.pf_ret))
          :: !fsigs)
    tops;
  let g = { mb; fsigs = !fsigs; globals = !globals; garrays = !garrays; tls = !tls } in
  (* second pass: function bodies *)
  List.iter
    (function
      | TGlobal _ | TTls _ -> ()
      | TFunc f ->
        let params =
          List.map (fun (k, pname) -> (pname, cl_ty (ty_of_kind k))) f.pf_params
        in
        Cl.func mb f.pf_name params (fun b ->
            let env =
              { g;
                locals = List.map (fun (k, pname) -> (pname, ty_of_kind k)) f.pf_params;
                arrays = [] }
            in
            List.iter (lower_stmt env b) f.pf_body))
    tops;
  Cl.finish mb
