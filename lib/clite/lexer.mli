(** Lexer for the clite surface syntax (see {!Parse}). *)

type token =
  | INT of int64
  | FLOAT of float
  | STRING of string
  | IDENT of string
  | KW of string          (** fn var arr global tls if else while for
                              break continue return f ptr *)
  | PUNCT of string       (** operators and delimiters *)
  | EOF

type located = { tok : token; line : int; col : int }

exception Lex_error of string * int * int

(** Tokenize a whole source string. [//] and [/* */] comments are
    skipped. *)
val tokenize : string -> located list

val token_to_string : token -> string
