(** A C-like embedded frontend that lowers to the IR.

    Plays the role of Clang in the paper's pipeline: all benchmark
    programs (NPB kernels, Linpack, Redis-like server, ...) are written
    against this API and lowered once to IR, from which both ISA
    backends generate code.

    Expressions are pure trees; statements are pushed into a function
    builder with structured control flow ([if_], [while_], [for_],
    [break_]). Local scalars whose address is never taken remain
    promotable to callee-saved registers by the backend. *)

open Dapper_ir

(** {1 Expressions} *)

type expr

val i : int -> expr                  (* integer literal *)
val i64 : int64 -> expr
val f : float -> expr                (* float literal *)
val v : string -> expr               (* read a local / global / TLS scalar *)
val addr : string -> expr            (* address of a local array, global or TLS variable *)
val fnptr : string -> expr           (* address of a function *)

val add : expr -> expr -> expr
val sub : expr -> expr -> expr
val mul : expr -> expr -> expr
val div_ : expr -> expr -> expr
val rem_ : expr -> expr -> expr
val band : expr -> expr -> expr
val bor : expr -> expr -> expr
val bxor : expr -> expr -> expr
val shl : expr -> expr -> expr
val shr : expr -> expr -> expr
val neg : expr -> expr
val bnot : expr -> expr

val eq : expr -> expr -> expr
val ne : expr -> expr -> expr
val lt : expr -> expr -> expr
val le : expr -> expr -> expr
val gt : expr -> expr -> expr
val ge : expr -> expr -> expr
val ult : expr -> expr -> expr

val fadd : expr -> expr -> expr
val fsub : expr -> expr -> expr
val fmul : expr -> expr -> expr
val fdiv : expr -> expr -> expr
val fneg : expr -> expr
val flt : expr -> expr -> expr
val fle : expr -> expr -> expr
val feq : expr -> expr -> expr
val sqrt_ : expr -> expr
val i2f : expr -> expr
val f2i : expr -> expr

val deref : expr -> expr             (* *p (64-bit) *)
val deref_p : expr -> expr           (* *p where the loaded value is a pointer *)
val idx : expr -> expr -> expr       (* p[e] with 8-byte scaling *)
val deref8 : expr -> expr            (* byte load, zero-extended *)
val idx8 : expr -> expr -> expr      (* byte load p[e], byte scaling *)
val call : string -> expr list -> expr
val callf : string -> expr list -> expr  (* call returning f64 *)
val call_ptr : expr -> expr list -> expr

(** {1 Function bodies} *)

type fnb

val decl : fnb -> string -> expr -> unit            (* i64 local *)
val declf : fnb -> string -> expr -> unit           (* f64 local *)
val declp : fnb -> string -> expr -> unit           (* pointer local *)
val decl_arr : fnb -> string -> int -> unit         (* local array of n 64-bit slots *)
val decl_arr_ty : fnb -> string -> int -> Ir.ty -> unit

val set : fnb -> string -> expr -> unit             (* assign scalar by name *)
val store : fnb -> expr -> expr -> unit             (* [store b addr value] *)
val store_idx : fnb -> expr -> expr -> expr -> unit (* base[i] = value *)
val store8 : fnb -> expr -> expr -> unit            (* byte store *)
val store_idx8 : fnb -> expr -> expr -> expr -> unit(* byte store base[i] *)
val do_ : fnb -> expr -> unit                       (* evaluate for side effects *)

val if_ : fnb -> expr -> (fnb -> unit) -> unit
val if_else : fnb -> expr -> (fnb -> unit) -> (fnb -> unit) -> unit
val while_ : fnb -> expr -> (fnb -> unit) -> unit

(** [for_ b "i" lo hi body] iterates i = lo; i < hi; i++ *)
val for_ : fnb -> string -> expr -> expr -> (fnb -> unit) -> unit
val break_ : fnb -> unit
val continue_ : fnb -> unit
val ret : fnb -> expr -> unit
val ret0 : fnb -> unit

(** {1 Modules} *)

type mb

val create : string -> mb
val global : mb -> ?init:string -> string -> int -> unit
val global_i64 : mb -> string -> int64 -> unit      (* 8-byte initialized global *)
val tls_var : mb -> string -> int -> unit
val func : mb -> string -> (string * Ir.ty) list -> (fnb -> unit) -> unit

(** Interned string literal: returns the name of a fresh global holding
    the bytes. *)
val str_lit : mb -> string -> string

(** [finish mb] produces the IR module; raises [Failure] listing
    validation errors if the built module is ill-formed. *)
val finish : mb -> Ir.modul

exception Clite_error of string
