type token =
  | INT of int64
  | FLOAT of float
  | STRING of string
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

type located = { tok : token; line : int; col : int }

exception Lex_error of string * int * int

let keywords =
  [ "fn"; "var"; "arr"; "global"; "tls"; "if"; "else"; "while"; "for"; "break";
    "continue"; "return"; "f"; "ptr" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Two-character operators first, then single characters. *)
let punct2 = [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; ".[" ]
let punct1 = [ "+"; "-"; "*"; "/"; "%"; "<"; ">"; "="; "("; ")"; "{"; "}"; "[";
               "]"; ";"; ","; "&"; "|"; "^"; "!"; ":" ]

type cursor = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let peek c k = if c.pos + k < String.length c.src then Some c.src.[c.pos + k] else None

let advance c =
  (match peek c 0 with
   | Some '\n' ->
     c.line <- c.line + 1;
     c.col <- 1
   | Some _ -> c.col <- c.col + 1
   | None -> ());
  c.pos <- c.pos + 1

let error c msg = raise (Lex_error (msg, c.line, c.col))

let rec skip_trivia c =
  match (peek c 0, peek c 1) with
  | Some (' ' | '\t' | '\r' | '\n'), _ ->
    advance c;
    skip_trivia c
  | Some '/', Some '/' ->
    while peek c 0 <> None && peek c 0 <> Some '\n' do advance c done;
    skip_trivia c
  | Some '/', Some '*' ->
    advance c;
    advance c;
    let rec close () =
      match (peek c 0, peek c 1) with
      | Some '*', Some '/' ->
        advance c;
        advance c
      | Some _, _ ->
        advance c;
        close ()
      | None, _ -> error c "unterminated comment"
    in
    close ();
    skip_trivia c
  | _ -> ()

let lex_number c =
  let start = c.pos in
  let is_hex = peek c 0 = Some '0' && (peek c 1 = Some 'x' || peek c 1 = Some 'X') in
  if is_hex then begin
    advance c;
    advance c;
    while (match peek c 0 with
           | Some ch -> is_digit ch || (ch >= 'a' && ch <= 'f') || (ch >= 'A' && ch <= 'F')
           | None -> false)
    do advance c done;
    INT (Int64.of_string (String.sub c.src start (c.pos - start)))
  end
  else begin
    while (match peek c 0 with Some ch -> is_digit ch | None -> false) do advance c done;
    let is_float =
      peek c 0 = Some '.'
      && (match peek c 1 with Some ch -> is_digit ch | None -> false)
    in
    if is_float then begin
      advance c;
      while (match peek c 0 with Some ch -> is_digit ch | None -> false) do advance c done;
      (match peek c 0 with
       | Some ('e' | 'E') ->
         advance c;
         (match peek c 0 with Some ('+' | '-') -> advance c | _ -> ());
         while (match peek c 0 with Some ch -> is_digit ch | None -> false) do advance c done
       | _ -> ());
      FLOAT (float_of_string (String.sub c.src start (c.pos - start)))
    end
    else INT (Int64.of_string (String.sub c.src start (c.pos - start)))
  end

let lex_string c =
  advance c; (* opening quote *)
  let b = Buffer.create 16 in
  let rec go () =
    match peek c 0 with
    | None -> error c "unterminated string literal"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c 0 with
       | Some 'n' -> Buffer.add_char b '\n'
       | Some 't' -> Buffer.add_char b '\t'
       | Some 'r' -> Buffer.add_char b '\r'
       | Some '0' -> Buffer.add_char b '\000'
       | Some '\\' -> Buffer.add_char b '\\'
       | Some '"' -> Buffer.add_char b '"'
       | _ -> error c "bad escape");
      advance c;
      go ()
    | Some ch ->
      Buffer.add_char b ch;
      advance c;
      go ()
  in
  go ();
  STRING (Buffer.contents b)

let tokenize src =
  let c = { src; pos = 0; line = 1; col = 1 } in
  let out = ref [] in
  let emit tok line col = out := { tok; line; col } :: !out in
  let rec go () =
    skip_trivia c;
    let line = c.line and col = c.col in
    match peek c 0 with
    | None -> emit EOF line col
    | Some ch when is_digit ch ->
      emit (lex_number c) line col;
      go ()
    | Some ch when is_ident_start ch ->
      let start = c.pos in
      while (match peek c 0 with Some ch -> is_ident_char ch | None -> false) do
        advance c
      done;
      let s = String.sub c.src start (c.pos - start) in
      emit (if List.mem s keywords then KW s else IDENT s) line col;
      go ()
    | Some '"' ->
      emit (lex_string c) line col;
      go ()
    | Some _ ->
      let two =
        if c.pos + 2 <= String.length c.src then Some (String.sub c.src c.pos 2) else None
      in
      (match two with
       | Some t2 when List.mem t2 punct2 ->
         advance c;
         advance c;
         emit (PUNCT t2) line col;
         go ()
       | _ ->
         let one = String.make 1 c.src.[c.pos] in
         if List.mem one punct1 then begin
           advance c;
           emit (PUNCT one) line col;
           go ()
         end
         else error c (Printf.sprintf "unexpected character %C" c.src.[c.pos]))
  in
  go ();
  List.rev !out

let token_to_string = function
  | INT v -> Int64.to_string v
  | FLOAT v -> string_of_float v
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"
