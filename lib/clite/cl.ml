open Dapper_isa
open Dapper_ir

exception Clite_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Clite_error s)) fmt

(* ----- expressions ----- *)

type expr =
  | E_int of int64
  | E_flt of float
  | E_var of string
  | E_addr of string
  | E_fnptr of string
  | E_bin of Minstr.binop * expr * expr
  | E_un of Minstr.unop * expr
  | E_deref of expr * Ir.ty
  | E_deref8 of expr
  | E_idx of expr * expr
  | E_idx8 of expr * expr
  | E_call of string * expr list * Ir.ty
  | E_call_ptr of expr * expr list

let i n = E_int (Int64.of_int n)
let i64 n = E_int n
let f x = E_flt x
let v name = E_var name
let addr name = E_addr name
let fnptr name = E_fnptr name

let add a b = E_bin (Add, a, b)
let sub a b = E_bin (Sub, a, b)
let mul a b = E_bin (Mul, a, b)
let div_ a b = E_bin (Div, a, b)
let rem_ a b = E_bin (Rem, a, b)
let band a b = E_bin (And, a, b)
let bor a b = E_bin (Or, a, b)
let bxor a b = E_bin (Xor, a, b)
let shl a b = E_bin (Shl, a, b)
let shr a b = E_bin (Shr, a, b)
let neg a = E_un (Neg, a)
let bnot a = E_un (Not, a)
let eq a b = E_bin (Cmpeq, a, b)
let ne a b = E_bin (Cmpne, a, b)
let lt a b = E_bin (Cmplt, a, b)
let le a b = E_bin (Cmple, a, b)
let gt a b = E_bin (Cmpgt, a, b)
let ge a b = E_bin (Cmpge, a, b)
let ult a b = E_bin (Cmpult, a, b)
let fadd a b = E_bin (Fadd, a, b)
let fsub a b = E_bin (Fsub, a, b)
let fmul a b = E_bin (Fmul, a, b)
let fdiv a b = E_bin (Fdiv, a, b)
let fneg a = E_un (Fneg, a)
let flt a b = E_bin (Fcmplt, a, b)
let fle a b = E_bin (Fcmple, a, b)
let feq a b = E_bin (Fcmpeq, a, b)
let sqrt_ a = E_un (Fsqrt, a)
let i2f a = E_un (Sitofp, a)
let f2i a = E_un (Fptosi, a)
let deref p = E_deref (p, Ir.I64)
let deref_p p = E_deref (p, Ir.Ptr)
let deref8 p = E_deref8 p
let idx p e = E_idx (p, e)
let idx8 p e = E_idx8 (p, e)
let call name args = E_call (name, args, Ir.I64)
let callf name args = E_call (name, args, Ir.F64)
let call_ptr p args = E_call_ptr (p, args)

(* ----- module builder ----- *)

type local = { l_slot : int; l_ty : Ir.ty; mutable l_addr_taken : bool; l_size : int }

type mb = {
  mb_name : string;
  mutable mb_funcs : Ir.func list;
  mutable mb_globals : Ir.global list;
  mutable mb_tls : Ir.tls_var list;
  mutable mb_strs : int;
}

type blk = { blk_label : int; mutable blk_instrs : Ir.instr list; mutable blk_term : Ir.terminator option }

type fnb = {
  fb_mb : mb;
  fb_name : string;
  fb_params : (string * Ir.ty) list;
  mutable fb_locals : (string * local) list;
  mutable fb_blocks : blk list;       (* in creation order, reversed *)
  mutable fb_cur : blk;
  mutable fb_nvregs : int;
  mutable fb_vtys : Ir.ty list;       (* reversed *)
  mutable fb_loops : (int * int) list; (* (continue target, break target) *)
}

let create name = { mb_name = name; mb_funcs = []; mb_globals = []; mb_tls = []; mb_strs = 0 }

let global mb ?init name size =
  mb.mb_globals <- { Ir.g_name = name; g_size = size; g_init = init } :: mb.mb_globals

let global_i64 mb name value =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 value;
  global mb ~init:(Bytes.to_string b) name 8

let tls_var mb name size = mb.mb_tls <- { Ir.t_name = name; t_size = size } :: mb.mb_tls

let str_lit mb s =
  let name = Printf.sprintf "__str_%d" mb.mb_strs in
  mb.mb_strs <- mb.mb_strs + 1;
  let size = (String.length s + 8 + 7) / 8 * 8 in
  global mb ~init:s name size;
  name

(* ----- builder internals ----- *)

let new_vreg b ty =
  let r = b.fb_nvregs in
  b.fb_nvregs <- r + 1;
  b.fb_vtys <- ty :: b.fb_vtys;
  r

let push b instr = b.fb_cur.blk_instrs <- instr :: b.fb_cur.blk_instrs

let new_block b =
  let label = List.length b.fb_blocks in
  let blk = { blk_label = label; blk_instrs = []; blk_term = None } in
  b.fb_blocks <- blk :: b.fb_blocks;
  blk

let terminate b term =
  match b.fb_cur.blk_term with
  | Some _ -> () (* unreachable code after break/ret: drop silently *)
  | None -> b.fb_cur.blk_term <- Some term

let switch_to b blk = b.fb_cur <- blk

let local_of b name = List.assoc_opt name b.fb_locals

let is_global b name = List.exists (fun g -> g.Ir.g_name = name) b.fb_mb.mb_globals
let is_tls b name = List.exists (fun t -> t.Ir.t_name = name) b.fb_mb.mb_tls

(* Lower an expression to an IR value, pushing instructions. *)
let rec lower b (e : expr) : Ir.value * Ir.ty =
  match e with
  | E_int n -> (Ir.Imm n, Ir.I64)
  | E_flt x -> (Ir.Fimm x, Ir.F64)
  | E_fnptr f -> (Ir.Func_addr f, Ir.Ptr)
  | E_var name ->
    (match local_of b name with
     | Some l ->
       if l.l_size > 8 then fail "%s: reading array %s as a scalar" b.fb_name name;
       let d = new_vreg b l.l_ty in
       push b (Ir.Slot_load (d, l.l_slot));
       (Ir.Vreg d, l.l_ty)
     | None ->
       if is_global b name then begin
         let d = new_vreg b Ir.I64 in
         push b (Ir.Load (d, Ir.Global_addr name));
         (Ir.Vreg d, Ir.I64)
       end
       else if is_tls b name then begin
         let a = new_vreg b Ir.Ptr in
         push b (Ir.Tls_addr (a, name));
         let d = new_vreg b Ir.I64 in
         push b (Ir.Load (d, Ir.Vreg a));
         (Ir.Vreg d, Ir.I64)
       end
       else fail "%s: unknown variable %s" b.fb_name name)
  | E_addr name ->
    (match local_of b name with
     | Some l ->
       l.l_addr_taken <- true;
       let d = new_vreg b Ir.Ptr in
       push b (Ir.Slot_addr (d, l.l_slot));
       (Ir.Vreg d, Ir.Ptr)
     | None ->
       if is_global b name then (Ir.Global_addr name, Ir.Ptr)
       else if is_tls b name then begin
         let d = new_vreg b Ir.Ptr in
         push b (Ir.Tls_addr (d, name));
         (Ir.Vreg d, Ir.Ptr)
       end
       else fail "%s: unknown variable %s" b.fb_name name)
  | E_bin (op, x, y) ->
    let vx, tx = lower b x in
    let vy, ty_ = lower b y in
    let rty : Ir.ty =
      match op with
      | Fadd | Fsub | Fmul | Fdiv -> Ir.F64
      | Cmpeq | Cmpne | Cmplt | Cmple | Cmpgt | Cmpge | Cmpult
      | Fcmpeq | Fcmplt | Fcmple -> Ir.I64
      | Add | Sub ->
        (* pointer arithmetic keeps pointerness *)
        if tx = Ir.Ptr || ty_ = Ir.Ptr then Ir.Ptr else tx
      | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Sar -> tx
    in
    let d = new_vreg b rty in
    push b (Ir.Binop (op, d, vx, vy));
    (Ir.Vreg d, rty)
  | E_un (op, x) ->
    let vx, tx = lower b x in
    let rty : Ir.ty =
      match op with
      | Sitofp -> Ir.F64
      | Fptosi -> Ir.I64
      | Fneg | Fsqrt -> Ir.F64
      | Neg | Not -> tx
    in
    let d = new_vreg b rty in
    push b (Ir.Unop (op, d, vx));
    (Ir.Vreg d, rty)
  | E_deref (p, ty_) ->
    let vp, _ = lower b p in
    let d = new_vreg b ty_ in
    push b (Ir.Load (d, vp));
    (Ir.Vreg d, ty_)
  | E_deref8 p ->
    let vp, _ = lower b p in
    let d = new_vreg b Ir.I64 in
    push b (Ir.Load8 (d, vp));
    (Ir.Vreg d, Ir.I64)
  | E_idx (p, e) ->
    let a, _ = lower_index_addr b p e in
    let d = new_vreg b Ir.I64 in
    push b (Ir.Load (d, a));
    (Ir.Vreg d, Ir.I64)
  | E_idx8 (p, e) ->
    let vp, _ = lower b p in
    let ve, _ = lower b e in
    let a = new_vreg b Ir.Ptr in
    push b (Ir.Binop (Add, a, vp, ve));
    let d = new_vreg b Ir.I64 in
    push b (Ir.Load8 (d, Ir.Vreg a));
    (Ir.Vreg d, Ir.I64)
  | E_call (name, args, rty) ->
    let vargs = List.map (fun a -> fst (lower b a)) args in
    let d = new_vreg b rty in
    push b (Ir.Call (Some d, Ir.Direct name, vargs));
    (Ir.Vreg d, rty)
  | E_call_ptr (p, args) ->
    let vp, _ = lower b p in
    let vargs = List.map (fun a -> fst (lower b a)) args in
    let d = new_vreg b Ir.I64 in
    push b (Ir.Call (Some d, Ir.Indirect vp, vargs));
    (Ir.Vreg d, Ir.I64)

and lower_index_addr b p e =
  let vp, _ = lower b p in
  let ve, _ = lower b e in
  let off = new_vreg b Ir.I64 in
  push b (Ir.Binop (Mul, off, ve, Ir.Imm 8L));
  let a = new_vreg b Ir.Ptr in
  push b (Ir.Binop (Add, a, vp, Ir.Vreg off));
  (Ir.Vreg a, Ir.Ptr)

(* ----- statements ----- *)

let declare b name ty size init =
  (* Redeclaring a scalar of the same shape (e.g. the same temporary name
     in two sibling loop bodies) reuses the slot, C-style block scoping
     being out of scope for this embedded frontend. *)
  let l =
    match List.assoc_opt name b.fb_locals with
    | Some l ->
      if l.l_size <> size || not (Ir.ty_equal l.l_ty ty) || size > 8 then
        fail "%s: conflicting redeclaration of %s" b.fb_name name;
      l
    | None ->
      let slot = List.length b.fb_locals in
      let l = { l_slot = slot; l_ty = ty; l_addr_taken = size > 8; l_size = size } in
      b.fb_locals <- b.fb_locals @ [ (name, l) ];
      l
  in
  match init with
  | Some e ->
    let v, _ = lower b e in
    push b (Ir.Slot_store (v, l.l_slot))
  | None -> ()

let decl b name e = declare b name Ir.I64 8 (Some e)
let declf b name e = declare b name Ir.F64 8 (Some e)
let declp b name e = declare b name Ir.Ptr 8 (Some e)
let decl_arr b name n = declare b name Ir.I64 (8 * n) None
let decl_arr_ty b name n ty = declare b name ty (8 * n) None

let set b name e =
  let v, _ = lower b e in
  match local_of b name with
  | Some l ->
    if l.l_size > 8 then fail "%s: assigning array %s" b.fb_name name;
    push b (Ir.Slot_store (v, l.l_slot))
  | None ->
    if is_global b name then push b (Ir.Store (v, Ir.Global_addr name))
    else if is_tls b name then begin
      let a = new_vreg b Ir.Ptr in
      push b (Ir.Tls_addr (a, name));
      push b (Ir.Store (v, Ir.Vreg a))
    end
    else fail "%s: unknown variable %s" b.fb_name name

let store b addr_e val_e =
  let v, _ = lower b val_e in
  let a, _ = lower b addr_e in
  push b (Ir.Store (v, a))

let store_idx b base_e idx_e val_e =
  let v, _ = lower b val_e in
  let a, _ = lower_index_addr b base_e idx_e in
  push b (Ir.Store (v, a))

let store8 b addr_e val_e =
  let v, _ = lower b val_e in
  let a, _ = lower b addr_e in
  push b (Ir.Store8 (v, a))

let store_idx8 b base_e idx_e val_e =
  let v, _ = lower b val_e in
  let vp, _ = lower b base_e in
  let ve, _ = lower b idx_e in
  let a = new_vreg b Ir.Ptr in
  push b (Ir.Binop (Add, a, vp, ve));
  push b (Ir.Store8 (v, Ir.Vreg a))

let do_ b e =
  match e with
  | E_call (name, args, _) ->
    let vargs = List.map (fun a -> fst (lower b a)) args in
    push b (Ir.Call (None, Ir.Direct name, vargs))
  | E_call_ptr (p, args) ->
    let vp, _ = lower b p in
    let vargs = List.map (fun a -> fst (lower b a)) args in
    push b (Ir.Call (None, Ir.Indirect vp, vargs))
  | _ -> ignore (lower b e)

let if_else b cond then_fn else_fn =
  let vc, _ = lower b cond in
  let then_blk = new_block b in
  let else_blk = new_block b in
  let join_blk = new_block b in
  terminate b (Ir.Cbr (vc, then_blk.blk_label, else_blk.blk_label));
  switch_to b then_blk;
  then_fn b;
  terminate b (Ir.Br join_blk.blk_label);
  switch_to b else_blk;
  else_fn b;
  terminate b (Ir.Br join_blk.blk_label);
  switch_to b join_blk

let if_ b cond then_fn = if_else b cond then_fn (fun _ -> ())

let while_ b cond body_fn =
  let cond_blk = new_block b in
  terminate b (Ir.Br cond_blk.blk_label);
  switch_to b cond_blk;
  let vc, _ = lower b cond in
  let body_blk = new_block b in
  let exit_blk = new_block b in
  terminate b (Ir.Cbr (vc, body_blk.blk_label, exit_blk.blk_label));
  switch_to b body_blk;
  b.fb_loops <- (cond_blk.blk_label, exit_blk.blk_label) :: b.fb_loops;
  body_fn b;
  b.fb_loops <- List.tl b.fb_loops;
  terminate b (Ir.Br cond_blk.blk_label);
  switch_to b exit_blk

let for_ b name lo hi body_fn =
  if local_of b name = None then decl b name lo else set b name lo;
  (* `continue` must re-run the increment, so the increment lives in its
     own block that both the body end and `continue` branch to. *)
  let cond_blk = new_block b in
  terminate b (Ir.Br cond_blk.blk_label);
  switch_to b cond_blk;
  let vc, _ = lower b (lt (v name) hi) in
  let body_blk = new_block b in
  let step_blk = new_block b in
  let exit_blk = new_block b in
  terminate b (Ir.Cbr (vc, body_blk.blk_label, exit_blk.blk_label));
  switch_to b body_blk;
  b.fb_loops <- (step_blk.blk_label, exit_blk.blk_label) :: b.fb_loops;
  body_fn b;
  b.fb_loops <- List.tl b.fb_loops;
  terminate b (Ir.Br step_blk.blk_label);
  switch_to b step_blk;
  set b name (add (v name) (i 1));
  terminate b (Ir.Br cond_blk.blk_label);
  switch_to b exit_blk

let break_ b =
  match b.fb_loops with
  | (_, exit_label) :: _ -> terminate b (Ir.Br exit_label)
  | [] -> fail "%s: break outside loop" b.fb_name

let continue_ b =
  match b.fb_loops with
  | (cont_label, _) :: _ -> terminate b (Ir.Br cont_label)
  | [] -> fail "%s: continue outside loop" b.fb_name

let ret b e =
  let v, _ = lower b e in
  terminate b (Ir.Ret (Some v))

let ret0 b = terminate b (Ir.Ret (Some (Ir.Imm 0L)))

let func mb name params body =
  let entry = { blk_label = 0; blk_instrs = []; blk_term = None } in
  let b =
    { fb_mb = mb; fb_name = name; fb_params = params; fb_locals = [];
      fb_blocks = [ entry ]; fb_cur = entry; fb_nvregs = 0; fb_vtys = [];
      fb_loops = [] }
  in
  (* Parameters become the first locals, in order. *)
  List.iter (fun (n, ty) -> declare b n ty 8 None) params;
  body b;
  terminate b (Ir.Ret (Some (Ir.Imm 0L)));
  (* Close any unterminated blocks (e.g. join blocks after a final ret). *)
  List.iter
    (fun blk -> if blk.blk_term = None then blk.blk_term <- Some (Ir.Ret (Some (Ir.Imm 0L))))
    b.fb_blocks;
  let blocks =
    List.rev b.fb_blocks
    |> List.map (fun blk ->
           { Ir.blabel = blk.blk_label; instrs = List.rev blk.blk_instrs;
             term = Option.get blk.blk_term })
    |> Array.of_list
  in
  let slots =
    List.map
      (fun (n, l) ->
        { Ir.sl_id = l.l_slot; sl_name = n; sl_size = l.l_size; sl_ty = l.l_ty;
          sl_addr_taken = l.l_addr_taken })
      b.fb_locals
  in
  let f =
    { Ir.fname = name; fparams = params; fslots = slots; fblocks = blocks;
      fvreg_tys = Array.of_list (List.rev b.fb_vtys) }
  in
  mb.mb_funcs <- f :: mb.mb_funcs

let finish mb =
  let m =
    { Ir.m_name = mb.mb_name; m_funcs = List.rev mb.mb_funcs;
      m_globals = List.rev mb.mb_globals; m_tls = List.rev mb.mb_tls }
  in
  match Ir.validate ~externs:Dapper_codegen.Runtime.externs m with
  | [] -> m
  | errs -> fail "module %s invalid:\n  %s" mb.mb_name (String.concat "\n  " errs)
