open Cl
open Dapper_ir

let add_math m =
  (* x^n for integer n >= 0 *)
  func m "fpow_i" [ ("x", Ir.F64); ("n", Ir.I64) ] (fun b ->
      declf b "acc" (f 1.0);
      declf b "base" (v "x");
      decl b "e" (v "n");
      while_ b (gt (v "e") (i 0)) (fun b ->
          if_ b (ne (band (v "e") (i 1)) (i 0)) (fun b ->
              set b "acc" (fmul (v "acc") (v "base")));
          set b "base" (fmul (v "base") (v "base"));
          set b "e" (shr (v "e") (i 1)));
      ret b (v "acc"));
  (* exp via integer/fraction split and a 14-term Taylor series *)
  func m "fexp" [ ("x", Ir.F64) ] (fun b ->
      if_ b (flt (v "x") (f 0.0)) (fun b ->
          ret b (fdiv (f 1.0) (callf "fexp" [ fneg (v "x") ])));
      decl b "n" (f2i (v "x"));
      declf b "r" (fsub (v "x") (i2f (v "n")));
      declf b "s" (f 1.0);
      declf b "term" (f 1.0);
      for_ b "k" (i 1) (i 15) (fun b ->
          set b "term" (fdiv (fmul (v "term") (v "r")) (i2f (v "k")));
          set b "s" (fadd (v "s") (v "term")));
      ret b (fmul (v "s") (callf "fpow_i" [ f 2.718281828459045; v "n" ])));
  (* ln via range reduction to [0.5, 2] + atanh series *)
  func m "fln" [ ("x", Ir.F64) ] (fun b ->
      declf b "y" (v "x");
      declf b "acc" (f 0.0);
      while_ b (flt (f 2.0) (v "y")) (fun b ->
          set b "y" (fdiv (v "y") (f 2.0));
          set b "acc" (fadd (v "acc") (f 0.6931471805599453)));
      while_ b (flt (v "y") (f 0.5)) (fun b ->
          set b "y" (fmul (v "y") (f 2.0));
          set b "acc" (fsub (v "acc") (f 0.6931471805599453)));
      declf b "t" (fdiv (fsub (v "y") (f 1.0)) (fadd (v "y") (f 1.0)));
      declf b "t2" (fmul (v "t") (v "t"));
      declf b "s" (f 0.0);
      declf b "pw" (v "t");
      for_ b "k" (i 0) (i 14) (fun b ->
          set b "s" (fadd (v "s") (fdiv (v "pw") (i2f (add (mul (v "k") (i 2)) (i 1))))); 
          set b "pw" (fmul (v "pw") (v "t2")));
      ret b (fadd (v "acc") (fmul (f 2.0) (v "s"))))

let add_trig m =
  (* sin via range reduction to [-pi, pi] + Taylor series *)
  func m "fsin" [ ("x", Ir.F64) ] (fun b ->
      declf b "y" (v "x");
      while_ b (flt (f 3.14159265358979) (v "y")) (fun b ->
          set b "y" (fsub (v "y") (f 6.283185307179586)));
      while_ b (flt (v "y") (f (-3.14159265358979))) (fun b ->
          set b "y" (fadd (v "y") (f 6.283185307179586)));
      declf b "y2" (fmul (v "y") (v "y"));
      declf b "term" (v "y");
      declf b "s" (v "y");
      for_ b "k" (i 1) (i 10) (fun b ->
          decl b "d" (mul (mul (v "k") (i 2)) (add (mul (v "k") (i 2)) (i 1)));
          set b "term" (fneg (fdiv (fmul (v "term") (v "y2")) (i2f (v "d"))));
          set b "s" (fadd (v "s") (v "term")));
      ret b (v "s"));
  func m "fcos" [ ("x", Ir.F64) ] (fun b ->
      ret b (callf "fsin" [ fadd (v "x") (f 1.5707963267948966) ]))

let add_rand m =
  global m "__rand_state" 8;
  func m "rand_seed" [ ("s", Ir.I64) ] (fun b ->
      set b "__rand_state" (add (mul (v "s") (i 2654435761)) (i 1));
      ret b (i 0));
  func m "rand_next" [] (fun b ->
      set b "__rand_state"
        (add (mul (v "__rand_state") (i64 6364136223846793005L)) (i64 1442695040888963407L));
      ret b (band (shr (v "__rand_state") (i 11)) (i64 0x3FFFFFFFFFFFFL)));
  func m "frand" [] (fun b ->
      ret b (fdiv (i2f (call "rand_next" [])) (f 1125899906842624.0)))

let add m =
  func m "print_str" [ ("p", Ir.Ptr); ("len", Ir.I64) ] (fun b ->
      do_ b (call "write" [ i 1; v "p"; v "len" ]));
  (* print_int: format into a stack buffer from the right. The buffer's
     address is taken, so it stays in the frame — one of the shuffled
     allocations in every program that prints. *)
  func m "print_int" [ ("n", Ir.I64) ] (fun b ->
      decl_arr b "buf" 4;
      decl b "x" (v "n");
      decl b "pos" (i 31);
      if_ b (eq (v "x") (i 0)) (fun b ->
          store8 b (addr "buf") (i 48);
          do_ b (call "write" [ i 1; addr "buf"; i 1 ]);
          ret b (i 0));
      decl b "neg" (i 0);
      if_ b (lt (v "x") (i 0)) (fun b ->
          set b "neg" (i 1);
          set b "x" (neg (v "x")));
      while_ b (gt (v "x") (i 0)) (fun b ->
          store_idx8 b (addr "buf") (v "pos") (add (i 48) (rem_ (v "x") (i 10)));
          set b "x" (div_ (v "x") (i 10));
          set b "pos" (sub (v "pos") (i 1)));
      if_ b (ne (v "neg") (i 0)) (fun b ->
          store_idx8 b (addr "buf") (v "pos") (i 45);
          set b "pos" (sub (v "pos") (i 1)));
      do_ b
        (call "write"
           [ i 1; add (addr "buf") (add (v "pos") (i 1)); sub (i 31) (v "pos") ]));
  (* print_flt: sign, integer part, '.', three decimals. *)
  func m "print_flt" [ ("x", Ir.F64) ] (fun b ->
      declf b "y" (v "x");
      if_ b (flt (v "y") (f 0.0)) (fun b ->
          decl_arr b "minus" 1;
          store8 b (addr "minus") (i 45);
          do_ b (call "write" [ i 1; addr "minus"; i 1 ]);
          set b "y" (fneg (v "y")));
      decl b "ip" (f2i (v "y"));
      do_ b (call "print_int" [ v "ip" ]);
      decl_arr b "dot" 1;
      store8 b (addr "dot") (i 46);
      do_ b (call "write" [ i 1; addr "dot"; i 1 ]);
      decl b "frac" (f2i (fmul (fsub (v "y") (i2f (v "ip"))) (f 1000.0)));
      (* left-pad the fractional part to three digits *)
      decl_arr b "fb" 1;
      if_ b (lt (v "frac") (i 100)) (fun b ->
          store8 b (addr "fb") (i 48);
          do_ b (call "write" [ i 1; addr "fb"; i 1 ]));
      if_ b (lt (v "frac") (i 10)) (fun b ->
          store8 b (addr "fb") (i 48);
          do_ b (call "write" [ i 1; addr "fb"; i 1 ]));
      do_ b (call "print_int" [ v "frac" ]));
  func m "print_nl" [] (fun b ->
      decl_arr b "nl" 1;
      store8 b (addr "nl") (i 10);
      do_ b (call "write" [ i 1; addr "nl"; i 1 ]));
  func m "abs64" [ ("n", Ir.I64) ] (fun b ->
      if_ b (lt (v "n") (i 0)) (fun b -> ret b (neg (v "n")));
      ret b (v "n"));
  func m "min64" [ ("a", Ir.I64); ("b", Ir.I64) ] (fun b ->
      if_ b (lt (v "a") (v "b")) (fun b -> ret b (v "a"));
      ret b (v "b"));
  func m "max64" [ ("a", Ir.I64); ("b", Ir.I64) ] (fun b ->
      if_ b (gt (v "a") (v "b")) (fun b -> ret b (v "a"));
      ret b (v "b"));
  func m "memset8" [ ("p", Ir.Ptr); ("c", Ir.I64); ("len", Ir.I64) ] (fun b ->
      for_ b "k" (i 0) (v "len") (fun b ->
          store_idx8 b (v "p") (v "k") (v "c")));
  func m "memcpy8" [ ("dst", Ir.Ptr); ("src", Ir.Ptr); ("len", Ir.I64) ] (fun b ->
      for_ b "k" (i 0) (v "len") (fun b ->
          store_idx8 b (v "dst") (v "k") (idx8 (v "src") (v "k"))));
  func m "strlen8" [ ("p", Ir.Ptr) ] (fun b ->
      decl b "k" (i 0);
      while_ b (ne (idx8 (v "p") (v "k")) (i 0)) (fun b ->
          set b "k" (add (v "k") (i 1)));
      ret b (v "k"));
  add_math m;
  add_trig m;
  add_rand m

let print b m s =
  let name = str_lit m s in
  do_ b (call "print_str" [ addr name; i (String.length s) ])
