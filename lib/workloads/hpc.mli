(** HPC and legacy benchmarks from the paper's suite: Linpack (dense LU
    solve), Dhrystone (integer/string mix), and the K-means clustering
    application. [scale] multiplies problem sizes (1 = default). *)

val linpack : ?scale:int -> unit -> Dapper_ir.Ir.modul
val dhrystone : ?scale:int -> unit -> Dapper_ir.Ir.modul
val kmeans : ?scale:int -> unit -> Dapper_ir.Ir.modul
