open Dapper_clite
open Cl

(* ----- Linpack: LU factorization with partial pivoting + solve ----- *)

let linpack ?(scale = 1) () =
  let m = create "linpack" in
  Cstd.add m;
  let n = 40 * scale in
  (* matrix stored row-major at a[r*n+c]; b is the rhs *)
  func m "at" [ ("a", Dapper_ir.Ir.Ptr); ("r", Dapper_ir.Ir.I64); ("c", Dapper_ir.Ir.I64) ]
    (fun b -> ret b (add (v "a") (mul (add (mul (v "r") (i n)) (v "c")) (i 8))));
  func m "lu"
    [ ("a", Dapper_ir.Ir.Ptr); ("piv", Dapper_ir.Ir.Ptr); ("n", Dapper_ir.Ir.I64) ] (fun b ->
      for_ b "k" (i 0) (v "n") (fun b ->
          (* pivot search *)
          decl b "best" (v "k");
          declf b "bv" (deref (call "at" [ v "a"; v "k"; v "k" ]));
          if_ b (flt (v "bv") (f 0.0)) (fun b -> set b "bv" (fneg (v "bv")));
          for_ b "r" (add (v "k") (i 1)) (v "n") (fun b ->
              declf b "cand" (deref (call "at" [ v "a"; v "r"; v "k" ]));
              if_ b (flt (v "cand") (f 0.0)) (fun b -> set b "cand" (fneg (v "cand")));
              if_ b (flt (v "bv") (v "cand")) (fun b ->
                  set b "bv" (v "cand");
                  set b "best" (v "r")));
          store_idx b (v "piv") (v "k") (v "best");
          (* swap rows k and best *)
          if_ b (ne (v "best") (v "k")) (fun b ->
              for_ b "c" (i 0) (v "n") (fun b ->
                  declf b "tmp" (deref (call "at" [ v "a"; v "k"; v "c" ]));
                  store b (call "at" [ v "a"; v "k"; v "c" ])
                    (deref (call "at" [ v "a"; v "best"; v "c" ]));
                  store b (call "at" [ v "a"; v "best"; v "c" ]) (v "tmp")));
          (* eliminate below *)
          for_ b "r" (add (v "k") (i 1)) (v "n") (fun b ->
              declf b "factor"
                (fdiv
                   (deref (call "at" [ v "a"; v "r"; v "k" ]))
                   (deref (call "at" [ v "a"; v "k"; v "k" ])));
              store b (call "at" [ v "a"; v "r"; v "k" ]) (v "factor");
              for_ b "c" (add (v "k") (i 1)) (v "n") (fun b ->
                  store b (call "at" [ v "a"; v "r"; v "c" ])
                    (fsub
                       (deref (call "at" [ v "a"; v "r"; v "c" ]))
                       (fmul (v "factor") (deref (call "at" [ v "a"; v "k"; v "c" ]))))))));
  func m "solve"
    [ ("a", Dapper_ir.Ir.Ptr); ("piv", Dapper_ir.Ir.Ptr); ("bp", Dapper_ir.Ir.Ptr);
      ("n", Dapper_ir.Ir.I64) ] (fun b ->
      (* apply pivots + forward substitution *)
      for_ b "k" (i 0) (v "n") (fun b ->
          decl b "p" (idx (v "piv") (v "k"));
          if_ b (ne (v "p") (v "k")) (fun b ->
              declf b "tmp" (idx (v "bp") (v "k"));
              store_idx b (v "bp") (v "k") (idx (v "bp") (v "p"));
              store_idx b (v "bp") (v "p") (v "tmp"));
          for_ b "r" (add (v "k") (i 1)) (v "n") (fun b ->
              store_idx b (v "bp") (v "r")
                (fsub (idx (v "bp") (v "r"))
                   (fmul (deref (call "at" [ v "a"; v "r"; v "k" ])) (idx (v "bp") (v "k"))))));
      (* back substitution *)
      decl b "r" (sub (v "n") (i 1));
      while_ b (ge (v "r") (i 0)) (fun b ->
          declf b "s" (idx (v "bp") (v "r"));
          for_ b "c" (add (v "r") (i 1)) (v "n") (fun b ->
              set b "s"
                (fsub (v "s")
                   (fmul (deref (call "at" [ v "a"; v "r"; v "c" ])) (idx (v "bp") (v "c")))));
          store_idx b (v "bp") (v "r")
            (fdiv (v "s") (deref (call "at" [ v "a"; v "r"; v "r" ])));
          set b "r" (sub (v "r") (i 1))));
  func m "main" [] (fun b ->
      decl b "n" (i n);
      declp b "a" (call "sbrk" [ mul (mul (v "n") (v "n")) (i 8) ]);
      declp b "bv" (call "sbrk" [ mul (v "n") (i 8) ]);
      declp b "piv" (call "sbrk" [ mul (v "n") (i 8) ]);
      do_ b (call "rand_seed" [ i 1001 ]);
      (* random matrix; rhs = row sums so the solution is all-ones *)
      for_ b "r" (i 0) (v "n") (fun b ->
          declf b "rowsum" (f 0.0);
          for_ b "c" (i 0) (v "n") (fun b ->
              declf b "x" (fsub (callf "frand" []) (f 0.5));
              if_ b (eq (v "r") (v "c")) (fun b -> set b "x" (fadd (v "x") (f 8.0)));
              store b (call "at" [ v "a"; v "r"; v "c" ]) (v "x");
              set b "rowsum" (fadd (v "rowsum") (v "x")));
          store_idx b (v "bv") (v "r") (v "rowsum"));
      do_ b (call "lu" [ v "a"; v "piv"; v "n" ]);
      do_ b (call "solve" [ v "a"; v "piv"; v "bv"; v "n" ]);
      (* max |x_i - 1| *)
      declf b "err" (f 0.0);
      for_ b "k" (i 0) (v "n") (fun b ->
          declf b "d" (fsub (idx (v "bv") (v "k")) (f 1.0));
          if_ b (flt (v "d") (f 0.0)) (fun b -> set b "d" (fneg (v "d")));
          if_ b (flt (v "err") (v "d")) (fun b -> set b "err" (v "d")));
      Cstd.print b m "LINPACK maxerr*1e6=";
      do_ b (call "print_flt" [ fmul (v "err") (f 1000000.0) ]);
      do_ b (call "print_nl" []);
      ret b (i 0));
  finish m

(* ----- Dhrystone-like integer/string mix ----- *)

let dhrystone ?(scale = 1) () =
  let m = create "dhrystone" in
  Cstd.add m;
  let loops = 2500 * scale in
  let s1 = str_lit m "DHRYSTONE PROGRAM, SOME STRING\000" in
  let s2 = str_lit m "DHRYSTONE PROGRAM, S0ME STRING\000" in
  func m "strcmp8" [ ("a", Dapper_ir.Ir.Ptr); ("b2", Dapper_ir.Ir.Ptr) ] (fun b ->
      decl b "k" (i 0);
      while_ b (i 1) (fun b ->
          decl b "ca" (idx8 (v "a") (v "k"));
          decl b "cb" (idx8 (v "b2") (v "k"));
          if_ b (ne (v "ca") (v "cb")) (fun b -> ret b (sub (v "ca") (v "cb")));
          if_ b (eq (v "ca") (i 0)) (fun b -> ret b (i 0));
          set b "k" (add (v "k") (i 1)));
      ret b (i 0));
  func m "proc7" [ ("x", Dapper_ir.Ir.I64); ("y", Dapper_ir.Ir.I64) ] (fun b ->
      ret b (add (add (v "x") (i 2)) (v "y")));
  func m "proc8"
    [ ("arr", Dapper_ir.Ir.Ptr); ("idx1", Dapper_ir.Ir.I64); ("val1", Dapper_ir.Ir.I64) ]
    (fun b ->
      store_idx b (v "arr") (v "idx1") (add (v "val1") (i 5));
      store_idx b (v "arr") (add (v "idx1") (i 1)) (idx (v "arr") (v "idx1"));
      store_idx b (v "arr") (add (v "idx1") (i 30)) (v "idx1");
      ret b (i 0));
  func m "func2" [ ("p1", Dapper_ir.Ir.Ptr); ("p2", Dapper_ir.Ir.Ptr) ] (fun b ->
      if_ b (eq (call "strcmp8" [ v "p1"; v "p2" ]) (i 0)) (fun b -> ret b (i 1));
      ret b (i 0));
  func m "main" [] (fun b ->
      declp b "arr" (call "sbrk" [ i (8 * 64) ]);
      decl b "int1" (i 0);
      decl b "int2" (i 0);
      for_ b "run" (i 0) (i loops) (fun b ->
          set b "int1" (call "proc7" [ v "run"; v "int2" ]);
          set b "int2" (band (v "int1") (i 0xFFFF));
          do_ b (call "proc8" [ v "arr"; band (v "run") (i 30); v "int1" ]);
          if_ b (eq (call "func2" [ addr s1; addr s2 ]) (i 1)) (fun b ->
              set b "int2" (add (v "int2") (i 1000000))));
      Cstd.print b m "Dhrystone int1=";
      do_ b (call "print_int" [ v "int1" ]);
      Cstd.print b m " arr31=";
      do_ b (call "print_int" [ idx (v "arr") (i 31) ]);
      do_ b (call "print_nl" []);
      ret b (rem_ (v "int1") (i 97)));
  finish m

(* ----- K-means clustering (2-D points, flat arrays) ----- *)

let kmeans ?(scale = 1) () =
  let m = create "kmeans" in
  Cstd.add m;
  let npoints = 600 * scale in
  let k = 8 in
  let iters = 12 in
  func m "dist2"
    [ ("ax", Dapper_ir.Ir.F64); ("ay", Dapper_ir.Ir.F64); ("bx", Dapper_ir.Ir.F64);
      ("by", Dapper_ir.Ir.F64) ] (fun b ->
      declf b "dx" (fsub (v "ax") (v "bx"));
      declf b "dy" (fsub (v "ay") (v "by"));
      ret b (fadd (fmul (v "dx") (v "dx")) (fmul (v "dy") (v "dy"))));
  func m "main" [] (fun b ->
      decl b "n" (i npoints);
      declp b "px" (call "sbrk" [ mul (v "n") (i 8) ]);
      declp b "py" (call "sbrk" [ mul (v "n") (i 8) ]);
      declp b "cx" (call "sbrk" [ i (8 * k) ]);
      declp b "cy" (call "sbrk" [ i (8 * k) ]);
      declp b "csum_x" (call "sbrk" [ i (8 * k) ]);
      declp b "csum_y" (call "sbrk" [ i (8 * k) ]);
      declp b "ccnt" (call "sbrk" [ i (8 * k) ]);
      do_ b (call "rand_seed" [ i 2718 ]);
      for_ b "p" (i 0) (v "n") (fun b ->
          store_idx b (v "px") (v "p") (fmul (callf "frand" []) (f 100.0));
          store_idx b (v "py") (v "p") (fmul (callf "frand" []) (f 100.0)));
      for_ b "c" (i 0) (i k) (fun b ->
          store_idx b (v "cx") (v "c") (idx (v "px") (mul (v "c") (i 7)));
          store_idx b (v "cy") (v "c") (idx (v "py") (mul (v "c") (i 7))));
      for_ b "it" (i 0) (i iters) (fun b ->
          for_ b "c" (i 0) (i k) (fun b ->
              store_idx b (v "csum_x") (v "c") (f 0.0);
              store_idx b (v "csum_y") (v "c") (f 0.0);
              store_idx b (v "ccnt") (v "c") (i 0));
          for_ b "p" (i 0) (v "n") (fun b ->
              decl b "bestc" (i 0);
              declf b "bestd" (f 1e18);
              for_ b "c" (i 0) (i k) (fun b ->
                  declf b "d"
                    (callf "dist2"
                       [ idx (v "px") (v "p"); idx (v "py") (v "p");
                         idx (v "cx") (v "c"); idx (v "cy") (v "c") ]);
                  if_ b (flt (v "d") (v "bestd")) (fun b ->
                      set b "bestd" (v "d");
                      set b "bestc" (v "c")));
              store_idx b (v "csum_x") (v "bestc")
                (fadd (idx (v "csum_x") (v "bestc")) (idx (v "px") (v "p")));
              store_idx b (v "csum_y") (v "bestc")
                (fadd (idx (v "csum_y") (v "bestc")) (idx (v "py") (v "p")));
              store_idx b (v "ccnt") (v "bestc")
                (add (idx (v "ccnt") (v "bestc")) (i 1)));
          for_ b "c" (i 0) (i k) (fun b ->
              if_ b (gt (idx (v "ccnt") (v "c")) (i 0)) (fun b ->
                  store_idx b (v "cx") (v "c")
                    (fdiv (idx (v "csum_x") (v "c")) (i2f (idx (v "ccnt") (v "c"))));
                  store_idx b (v "cy") (v "c")
                    (fdiv (idx (v "csum_y") (v "c")) (i2f (idx (v "ccnt") (v "c")))))));
      Cstd.print b m "KMEANS centroids:";
      do_ b (call "print_nl" []);
      for_ b "c" (i 0) (i k) (fun b ->
          do_ b (call "print_flt" [ idx (v "cx") (v "c") ]);
          Cstd.print b m " ";
          do_ b (call "print_flt" [ idx (v "cy") (v "c") ]);
          do_ b (call "print_nl" []));
      ret b (i 0));
  finish m
