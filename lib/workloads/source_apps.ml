let nbody_src steps = Printf.sprintf {|
  // planar n-body with leapfrog integration (softened gravity)
  global n = 24;

  fn accel_axis(fptr pos, fptr acc, i) {
    var k = 0;
    for (k = 0; k < n; k = k + 1) {
      if (k != i) {
        var f dx = pos[2 * k] - pos[2 * i];
        var f dy = pos[2 * k + 1] - pos[2 * i + 1];
        var f d2 = dx * dx + dy * dy + 0.05;
        var f inv = 1.0 / (d2 * sqrt(d2));
        acc[2 * i] = acc[2 * i] + dx * inv;
        acc[2 * i + 1] = acc[2 * i + 1] + dy * inv;
      }
    }
    return 0;
  }

  fn energy(fptr pos, fptr vel) : f {
    var f e = 0.0;
    var k = 0;
    for (k = 0; k < n; k = k + 1) {
      e = e + 0.5 * (vel[2 * k] * vel[2 * k] + vel[2 * k + 1] * vel[2 * k + 1]);
    }
    return e;
  }

  fn main() {
    var fptr pos = sbrk(8 * 2 * n);
    var fptr vel = sbrk(8 * 2 * n);
    var fptr acc = sbrk(8 * 2 * n);
    rand_seed(299792);
    var k = 0;
    for (k = 0; k < 2 * n; k = k + 1) {
      pos[k] = frand() * 10.0 - 5.0;
      vel[k] = frand() * 0.2 - 0.1;
    }
    var s = 0;
    for (s = 0; s < %d; s = s + 1) {
      for (k = 0; k < 2 * n; k = k + 1) { acc[k] = 0.0; }
      for (k = 0; k < n; k = k + 1) { accel_axis(pos, acc, k); }
      for (k = 0; k < 2 * n; k = k + 1) {
        vel[k] = vel[k] + 0.001 * acc[k];
        pos[k] = pos[k] + 0.001 * vel[k];
      }
    }
    print("NBODY ke=");
    print_flt(energy(pos, vel));
    print_nl();
    return 0;
  }
|} steps

let nbody ?(scale = 1) () =
  Dapper_clite.Parse.compile ~name:"nbody" (nbody_src (60 * scale))
