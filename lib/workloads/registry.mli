(** The benchmark registry: one entry per application the paper
    evaluates, with compiled binaries cached per architecture. *)

open Dapper_codegen

type spec = {
  sp_name : string;
  sp_modul : Dapper_ir.Ir.modul Lazy.t;
  sp_threads : int;    (** worker threads the app spawns (0 = serial) *)
  sp_kind : [ `Npb | `Parsec | `Server | `Hpc ];
}

(** All benchmarks at their default (class-A-like) sizes. *)
val all : unit -> spec list

(** Subsets used by individual experiments. *)
val npb_a : unit -> spec list
val npb_b : unit -> spec list
val parsec : unit -> spec list

val find : string -> spec

(** Compile (and memoize) a spec with the default backend options. *)
val compiled : spec -> Link.compiled
