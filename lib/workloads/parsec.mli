(** PARSEC-style multi-threaded C applications (paper Fig. 6): option
    pricing (blackscholes), Monte-Carlo swaption pricing (swaptions) and
    online clustering (streamcluster). Each spawns [threads] workers that
    partition the input and reduce under a mutex. *)

val blackscholes : ?scale:int -> ?threads:int -> unit -> Dapper_ir.Ir.modul
val swaptions : ?scale:int -> ?threads:int -> unit -> Dapper_ir.Ir.modul
val streamcluster : ?scale:int -> ?threads:int -> unit -> Dapper_ir.Ir.modul
