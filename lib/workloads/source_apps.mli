(** Workloads written in clite {e source text} and compiled through the
    textual front-end ({!Dapper_clite.Parse}), exercising the full
    source-to-migration pipeline. *)

val nbody : ?scale:int -> unit -> Dapper_ir.Ir.modul
