open Dapper_clite
open Cl
open Dapper_ir

(* ----- redis-like key/value store -----
   Open-addressing hash table on the heap: parallel key/value arrays,
   key 0 = empty. Commands (SET/GET/DEL/INCR) come from a deterministic
   generator standing in for networked clients. *)

let redis ?(keys = 4096) ?(ops = 30_000) () =
  let m = create "redis" in
  Cstd.add m;
  let table = 4 * keys in
  global_i64 m "tsize" (Int64.of_int table);
  global m "tkeys" 8;  (* pointer to key array *)
  global m "tvals" 8;
  global m "hits" 8;
  global m "misses" 8;
  global m "dirty" 8;
  func m "hash" [ ("k", Ir.I64) ] (fun b ->
      decl b "h" (mul (v "k") (i64 0x9E3779B97F4A7C15L));
      ret b (band (shr (v "h") (i 17)) (sub (v "tsize") (i 1))));
  (* find the slot for key k (or its insertion point); linear probing *)
  func m "slot_of" [ ("k", Ir.I64) ] (fun b ->
      decl b "s" (call "hash" [ v "k" ]);
      while_ b (i 1) (fun b ->
          decl b "cur" (idx (v "tkeys") (v "s"));
          if_ b (bor (eq (v "cur") (v "k")) (eq (v "cur") (i 0))) (fun b ->
              ret b (v "s"));
          set b "s" (band (add (v "s") (i 1)) (sub (v "tsize") (i 1))));
      ret b (i 0));
  func m "cmd_set" [ ("k", Ir.I64); ("value", Ir.I64) ] (fun b ->
      decl b "s" (call "slot_of" [ v "k" ]);
      store_idx b (v "tkeys") (v "s") (v "k");
      store_idx b (v "tvals") (v "s") (v "value");
      set b "dirty" (add (v "dirty") (i 1));
      ret b (i 0));
  func m "cmd_get" [ ("k", Ir.I64) ] (fun b ->
      decl b "s" (call "slot_of" [ v "k" ]);
      if_ b (eq (idx (v "tkeys") (v "s")) (v "k")) (fun b ->
          set b "hits" (add (v "hits") (i 1));
          ret b (idx (v "tvals") (v "s")));
      set b "misses" (add (v "misses") (i 1));
      ret b (i (-1)));
  func m "cmd_incr" [ ("k", Ir.I64) ] (fun b ->
      decl b "s" (call "slot_of" [ v "k" ]);
      if_ b (eq (idx (v "tkeys") (v "s")) (v "k")) (fun b ->
          store_idx b (v "tvals") (v "s") (add (idx (v "tvals") (v "s")) (i 1));
          ret b (idx (v "tvals") (v "s")));
      do_ b (call "cmd_set" [ v "k"; i 1 ]);
      ret b (i 1));
  func m "serve_one" [ ("op", Ir.I64); ("k", Ir.I64); ("value", Ir.I64) ] (fun b ->
      if_ b (lt (v "op") (i 6)) (fun b -> ret b (call "cmd_get" [ v "k" ]));
      if_ b (lt (v "op") (i 9)) (fun b -> ret b (call "cmd_set" [ v "k"; v "value" ]));
      ret b (call "cmd_incr" [ v "k" ]));
  func m "main" [] (fun b ->
      set b "tkeys" (call "sbrk" [ mul (v "tsize") (i 8) ]);
      set b "tvals" (call "sbrk" [ mul (v "tsize") (i 8) ]);
      do_ b (call "rand_seed" [ i 6379 ]);
      (* prefill: the in-memory database (drives checkpoint size) *)
      for_ b "k" (i 1) (i (keys + 1)) (fun b ->
          do_ b (call "cmd_set" [ v "k"; mul (v "k") (i 3) ]));
      for_ b "o" (i 0) (i ops) (fun b ->
          decl b "op" (rem_ (call "rand_next" []) (i 10));
          decl b "key" (add (i 1) (rem_ (call "rand_next" []) (i (2 * keys))));
          do_ b (call "serve_one" [ v "op"; v "key"; v "o" ]));
      Cstd.print b m "REDIS hits=";
      do_ b (call "print_int" [ v "hits" ]);
      Cstd.print b m " misses=";
      do_ b (call "print_int" [ v "misses" ]);
      Cstd.print b m " dirty=";
      do_ b (call "print_int" [ v "dirty" ]);
      do_ b (call "print_nl" []);
      ret b (rem_ (v "hits") (i 251)));
  finish m

(* ----- nginx-like HTTP request parser -----
   Requests are synthesized into a heap buffer; the parser extracts the
   method and path into fixed stack buffers and routes by a path hash.
   The vulnerable variant trusts the declared chunk length when copying
   the body into a 64-byte stack buffer (CVE-2013-2028 style). *)

let nginx ?(requests = 600) ?(vulnerable = false) () =
  let m = create (if vulnerable then "nginx-vuln" else "nginx") in
  Cstd.add m;
  global m "routes" (8 * 8);
  global m "reqbuf" 8;
  global m "nbad" 8;
  let get = str_lit m "GET " in
  (* build one request into reqbuf: "GET /pNN HTTP/1.1\r\nLen: X\r\n\r\n<body>" *)
  func m "build_request" [ ("n", Ir.I64); ("body_len", Ir.I64) ] (fun b ->
      declp b "p" (v "reqbuf");
      do_ b (call "memcpy8" [ v "p"; addr get; i 4 ]);
      decl b "pos" (i 4);
      store_idx8 b (v "p") (v "pos") (i 47); (* '/' *)
      set b "pos" (add (v "pos") (i 1));
      store_idx8 b (v "p") (v "pos") (add (i 112) (rem_ (v "n") (i 8))); (* 'p'+r *)
      set b "pos" (add (v "pos") (i 1));
      store_idx8 b (v "p") (v "pos") (add (i 48) (rem_ (v "n") (i 10)));
      set b "pos" (add (v "pos") (i 1));
      store_idx8 b (v "p") (v "pos") (i 32); (* ' ' *)
      set b "pos" (add (v "pos") (i 1));
      (* chunk length byte (declared body length) *)
      store_idx8 b (v "p") (v "pos") (v "body_len");
      set b "pos" (add (v "pos") (i 1));
      (* body bytes *)
      for_ b "k" (i 0) (v "body_len") (fun b ->
          store_idx8 b (v "p") (add (v "pos") (v "k")) (band (v "k") (i 0xFF)));
      ret b (add (v "pos") (v "body_len")));
  func m "parse_request" [ ("len", Ir.I64) ] (fun b ->
      declp b "p" (v "reqbuf");
      (* method check *)
      if_ b (ne (idx8 (v "p") (i 0)) (i 71)) (fun b -> ret b (i (-1))); (* 'G' *)
      (* extract path into a stack buffer *)
      decl_arr b "path" 8; (* 64 bytes *)
      decl b "k" (i 4);
      decl b "n" (i 0);
      while_ b (ne (idx8 (v "p") (v "k")) (i 32)) (fun b ->
          store_idx8 b (addr "path") (v "n") (idx8 (v "p") (v "k"));
          set b "k" (add (v "k") (i 1));
          set b "n" (add (v "n") (i 1)));
      set b "k" (add (v "k") (i 1));
      (* read declared body length and copy the body to a stack buffer *)
      decl b "blen" (idx8 (v "p") (v "k"));
      set b "k" (add (v "k") (i 1));
      decl_arr b "body" 8; (* 64 bytes *)
      decl b "limit" (v "blen");
      (if not vulnerable then
         (* patched: clamp to the buffer size *)
         if_ b (gt (v "limit") (i 64)) (fun b -> set b "limit" (i 64)));
      do_ b (call "memcpy8" [ addr "body"; add (v "p") (v "k"); v "limit" ]);
      (* route on path hash *)
      decl b "h" (i 0);
      for_ b "q" (i 0) (v "n") (fun b ->
          set b "h" (add (mul (v "h") (i 31)) (idx8 (addr "path") (v "q"))));
      decl b "r" (band (v "h") (i 7));
      store_idx b (addr "routes") (v "r") (add (idx (addr "routes") (v "r")) (i 1));
      ret b (v "r"));
  func m "main" [] (fun b ->
      set b "reqbuf" (call "sbrk" [ i 4096 ]);
      do_ b (call "rand_seed" [ i 8080 ]);
      for_ b "r" (i 0) (i requests) (fun b ->
          decl b "blen" (rem_ (call "rand_next" []) (i 48));
          decl b "len" (call "build_request" [ v "r"; v "blen" ]);
          if_ b (lt (call "parse_request" [ v "len" ]) (i 0)) (fun b ->
              set b "nbad" (add (v "nbad") (i 1))));
      Cstd.print b m "NGINX routes:";
      for_ b "r" (i 0) (i 8) (fun b ->
          Cstd.print b m " ";
          do_ b (call "print_int" [ idx (addr "routes") (v "r") ]));
      Cstd.print b m " bad=";
      do_ b (call "print_int" [ v "nbad" ]);
      do_ b (call "print_nl" []);
      ret b (v "nbad"));
  finish m
