open Dapper_clite
open Cl
open Dapper_ir

(* Worker argument passing: each worker receives its slice index and
   reads shared parameters from globals. Partial results accumulate into
   a per-thread cell of a results array, then main reduces. *)

let spawn_join b nthreads =
  decl_arr b "tids" nthreads;
  for_ b "t" (i 0) (i nthreads) (fun b ->
      store_idx b (addr "tids") (v "t") (call "spawn" [ fnptr "worker"; v "t" ]));
  for_ b "t" (i 0) (i nthreads) (fun b ->
      do_ b (call "join" [ idx (addr "tids") (v "t") ]))

(* ----- blackscholes: Black-Scholes call pricing over an option array ----- *)

let blackscholes ?(scale = 1) ?(threads = 4) () =
  let m = create "parsec-blackscholes" in
  Cstd.add m;
  let nopts = 300 * scale in
  global m "spot" (8 * nopts);
  global m "strike" (8 * nopts);
  global m "tte" (8 * nopts);
  global m "results" (8 * threads);
  global_i64 m "nopts" (Int64.of_int nopts);
  global_i64 m "nthreads" (Int64.of_int threads);
  (* cumulative normal distribution via the Abramowitz-Stegun polynomial *)
  func m "cndf" [ ("x", Ir.F64) ] (fun b ->
      declf b "ax" (v "x");
      decl b "negative" (i 0);
      if_ b (flt (v "ax") (f 0.0)) (fun b ->
          set b "ax" (fneg (v "ax"));
          set b "negative" (i 1));
      declf b "k" (fdiv (f 1.0) (fadd (f 1.0) (fmul (f 0.2316419) (v "ax"))));
      declf b "poly"
        (fmul (v "k")
           (fadd (f 0.319381530)
              (fmul (v "k")
                 (fadd (f (-0.356563782))
                    (fmul (v "k")
                       (fadd (f 1.781477937)
                          (fmul (v "k")
                             (fadd (f (-1.821255978)) (fmul (v "k") (f 1.330274429))))))))));
      declf b "pdf"
        (fmul (f 0.3989422804014327)
           (callf "fexp" [ fneg (fdiv (fmul (v "ax") (v "ax")) (f 2.0)) ]));
      declf b "cnd" (fsub (f 1.0) (fmul (v "pdf") (v "poly")));
      if_ b (ne (v "negative") (i 0)) (fun b -> ret b (fsub (f 1.0) (v "cnd")));
      ret b (v "cnd"));
  func m "price_one" [ ("s", Ir.F64); ("k", Ir.F64); ("t", Ir.F64) ] (fun b ->
      declf b "rate" (f 0.02);
      declf b "vol" (f 0.3);
      declf b "sq" (fmul (v "vol") (sqrt_ (v "t")));
      declf b "d1"
        (fdiv
           (fadd (callf "fln" [ fdiv (v "s") (v "k") ])
              (fmul (fadd (v "rate") (fmul (f 0.5) (fmul (v "vol") (v "vol")))) (v "t")))
           (v "sq"));
      declf b "d2" (fsub (v "d1") (v "sq"));
      ret b
        (fsub (fmul (v "s") (callf "cndf" [ v "d1" ]))
           (fmul (fmul (v "k") (callf "fexp" [ fneg (fmul (v "rate") (v "t")) ]))
              (callf "cndf" [ v "d2" ]))));
  func m "worker" [ ("slice", Ir.I64) ] (fun b ->
      declf b "acc" (f 0.0);
      decl b "p" (v "slice");
      while_ b (lt (v "p") (v "nopts")) (fun b ->
          set b "acc"
            (fadd (v "acc")
               (callf "price_one"
                  [ idx (addr "spot") (v "p"); idx (addr "strike") (v "p");
                    idx (addr "tte") (v "p") ]));
          set b "p" (add (v "p") (v "nthreads")));
      store_idx b (addr "results") (v "slice") (v "acc");
      ret b (i 0));
  func m "main" [] (fun b ->
      do_ b (call "rand_seed" [ i 90210 ]);
      for_ b "p" (i 0) (v "nopts") (fun b ->
          store_idx b (addr "spot") (v "p") (fadd (f 50.0) (fmul (callf "frand" []) (f 50.0)));
          store_idx b (addr "strike") (v "p")
            (fadd (f 50.0) (fmul (callf "frand" []) (f 50.0)));
          store_idx b (addr "tte") (v "p") (fadd (f 0.2) (callf "frand" [])));
      spawn_join b threads;
      declf b "total" (f 0.0);
      for_ b "t" (i 0) (i threads) (fun b ->
          set b "total" (fadd (v "total") (idx (addr "results") (v "t"))));
      Cstd.print b m "BS total=";
      do_ b (call "print_flt" [ v "total" ]);
      do_ b (call "print_nl" []);
      ret b (i 0));
  finish m

(* ----- swaptions: Monte-Carlo GBM payoff pricing ----- *)

let swaptions ?(scale = 1) ?(threads = 4) () =
  let m = create "parsec-swaptions" in
  Cstd.add m;
  let paths_per_thread = 150 * scale in
  let steps = 16 in
  tls_var m "rng" 8;
  global m "results" (8 * threads);
  global_i64 m "nthreads" (Int64.of_int threads);
  func m "tls_rand" [] (fun b ->
      (* per-thread LCG so results are schedule-independent *)
      set b "rng"
        (add (mul (v "rng") (i64 6364136223846793005L)) (i64 1442695040888963407L));
      ret b (band (shr (v "rng") (i 11)) (i64 0x3FFFFFFFFFFFFL)));
  func m "tls_frand" [] (fun b ->
      ret b (fdiv (i2f (call "tls_rand" [])) (f 1125899906842624.0)));
  func m "simulate_path" [] (fun b ->
      declf b "price" (f 100.0);
      for_ b "s" (i 0) (i steps) (fun b ->
          declf b "shock" (fsub (callf "tls_frand" []) (f 0.5));
          set b "price"
            (fmul (v "price")
               (callf "fexp" [ fadd (f 0.001) (fmul (f 0.08) (v "shock")) ])));
      declf b "payoff" (fsub (v "price") (f 100.0));
      if_ b (flt (v "payoff") (f 0.0)) (fun b -> ret b (f 0.0));
      ret b (v "payoff"));
  func m "worker" [ ("slice", Ir.I64) ] (fun b ->
      set b "rng" (add (mul (v "slice") (i 77777)) (i 13));
      declf b "acc" (f 0.0);
      for_ b "p" (i 0) (i paths_per_thread) (fun b ->
          set b "acc" (fadd (v "acc") (callf "simulate_path" [])));
      store_idx b (addr "results") (v "slice")
        (fdiv (v "acc") (i2f (i paths_per_thread)));
      ret b (i 0));
  func m "main" [] (fun b ->
      spawn_join b threads;
      declf b "total" (f 0.0);
      for_ b "t" (i 0) (i threads) (fun b ->
          set b "total" (fadd (v "total") (idx (addr "results") (v "t"))));
      Cstd.print b m "SWAPTIONS avg=";
      do_ b (call "print_flt" [ fdiv (v "total") (i2f (i threads)) ]);
      do_ b (call "print_nl" []);
      ret b (i 0));
  finish m

(* ----- streamcluster: online assignment to k centers ----- *)

let streamcluster ?(scale = 1) ?(threads = 4) () =
  let m = create "parsec-streamcluster" in
  Cstd.add m;
  let npoints = 500 * scale in
  let k = 8 in
  global m "px" (8 * npoints);
  global m "py" (8 * npoints);
  global m "cx" (8 * k);
  global m "cy" (8 * k);
  global m "cn" (8 * k);
  global m "mtx" 8;
  global m "cost_acc" 8;
  global_i64 m "npoints" (Int64.of_int npoints);
  global_i64 m "nthreads" (Int64.of_int threads);
  func m "nearest" [ ("x", Ir.F64); ("y", Ir.F64) ] (fun b ->
      decl b "best" (i 0);
      declf b "bestd" (f 1e18);
      for_ b "c" (i 0) (i k) (fun b ->
          declf b "dx" (fsub (v "x") (idx (addr "cx") (v "c")));
          declf b "dy" (fsub (v "y") (idx (addr "cy") (v "c")));
          declf b "d" (fadd (fmul (v "dx") (v "dx")) (fmul (v "dy") (v "dy")));
          if_ b (flt (v "d") (v "bestd")) (fun b ->
              set b "bestd" (v "d");
              set b "best" (v "c")));
      ret b (v "best"));
  func m "worker" [ ("slice", Ir.I64) ] (fun b ->
      decl b "p" (v "slice");
      decl b "localcost" (i 0);
      while_ b (lt (v "p") (v "npoints")) (fun b ->
          decl b "c" (call "nearest" [ idx (addr "px") (v "p"); idx (addr "py") (v "p") ]);
          do_ b (call "lock" [ addr "mtx" ]);
          (* incremental center update *)
          decl b "n" (add (idx (addr "cn") (v "c")) (i 1));
          store_idx b (addr "cn") (v "c") (v "n");
          store_idx b (addr "cx") (v "c")
            (fadd (idx (addr "cx") (v "c"))
               (fdiv (fsub (idx (addr "px") (v "p")) (idx (addr "cx") (v "c")))
                  (i2f (v "n"))));
          store_idx b (addr "cy") (v "c")
            (fadd (idx (addr "cy") (v "c"))
               (fdiv (fsub (idx (addr "py") (v "p")) (idx (addr "cy") (v "c")))
                  (i2f (v "n"))));
          do_ b (call "unlock" [ addr "mtx" ]);
          set b "localcost" (add (v "localcost") (i 1));
          set b "p" (add (v "p") (v "nthreads")));
      do_ b (call "lock" [ addr "mtx" ]);
      set b "cost_acc" (add (v "cost_acc") (v "localcost"));
      do_ b (call "unlock" [ addr "mtx" ]);
      ret b (i 0));
  func m "main" [] (fun b ->
      do_ b (call "rand_seed" [ i 5551212 ]);
      for_ b "p" (i 0) (v "npoints") (fun b ->
          store_idx b (addr "px") (v "p") (fmul (callf "frand" []) (f 10.0));
          store_idx b (addr "py") (v "p") (fmul (callf "frand" []) (f 10.0)));
      for_ b "c" (i 0) (i k) (fun b ->
          store_idx b (addr "cx") (v "c") (i2f (v "c"));
          store_idx b (addr "cy") (v "c") (i2f (v "c"));
          store_idx b (addr "cn") (v "c") (i 1));
      spawn_join b threads;
      Cstd.print b m "SC processed=";
      do_ b (call "print_int" [ v "cost_acc" ]);
      do_ b (call "print_nl" []);
      ret b (rem_ (v "cost_acc") (i 251)));
  finish m
