(** NAS Parallel Benchmark kernels (serial version), written in clite and
    downscaled for the simulator; [cls] selects the problem class
    (A = 1x, B = 4x), mirroring the paper's evaluation setup. Each kernel
    prints a deterministic checksum so migrated and native runs can be
    compared byte-for-byte. *)

type cls = A | B

val cls_name : cls -> string
val scale : cls -> int

val ep : cls -> Dapper_ir.Ir.modul  (* embarrassingly parallel (gaussian pairs) *)
val cg : cls -> Dapper_ir.Ir.modul  (* conjugate gradient *)
val mg : cls -> Dapper_ir.Ir.modul  (* multigrid V-cycles *)
val ft : cls -> Dapper_ir.Ir.modul  (* radix-2 FFT *)
val is_ : cls -> Dapper_ir.Ir.modul (* integer (counting) sort *)
