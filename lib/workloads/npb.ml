open Dapper_clite
open Cl

type cls = A | B

let cls_name = function A -> "A" | B -> "B"
let scale = function A -> 1 | B -> 4

(* ----- EP: gaussian deviates via the acceptance-rejection method ----- *)

let ep cls =
  let m = create (Printf.sprintf "npb-ep.%s" (cls_name cls)) in
  Cstd.add m;
  let n = 6000 * scale cls in
  global m "counts" (8 * 10);
  func m "pair" [] (fun b ->
      (* one acceptance-rejection trial; returns 1 on acceptance *)
      declf b "x" (fsub (fmul (f 2.0) (callf "frand" [])) (f 1.0));
      declf b "y" (fsub (fmul (f 2.0) (callf "frand" [])) (f 1.0));
      declf b "t" (fadd (fmul (v "x") (v "x")) (fmul (v "y") (v "y")));
      if_ b (fle (v "t") (f 1.0)) (fun b ->
          if_ b (flt (f 0.000001) (v "t")) (fun b ->
              declf b "g" (sqrt_ (fdiv (fmul (f (-2.0)) (callf "fln" [ v "t" ])) (v "t")));
              declf b "gx" (fmul (v "x") (v "g"));
              declf b "gy" (fmul (v "y") (v "g"));
              declf b "ax"
                (callf "fmax_abs" [ v "gx"; v "gy" ]);
              decl b "ring" (f2i (v "ax"));
              if_ b (lt (v "ring") (i 10)) (fun b ->
                  store_idx b (addr "counts") (v "ring")
                    (add (idx (addr "counts") (v "ring")) (i 1)));
              ret b (i 1)));
      ret b (i 0));
  func m "fmax_abs" [ ("a", Dapper_ir.Ir.F64); ("b2", Dapper_ir.Ir.F64) ] (fun b ->
      declf b "aa" (v "a");
      if_ b (flt (v "aa") (f 0.0)) (fun b -> set b "aa" (fneg (v "aa")));
      declf b "bb" (v "b2");
      if_ b (flt (v "bb") (f 0.0)) (fun b -> set b "bb" (fneg (v "bb")));
      if_ b (flt (v "aa") (v "bb")) (fun b -> ret b (v "bb"));
      ret b (v "aa"));
  func m "main" [] (fun b ->
      do_ b (call "rand_seed" [ i 271828 ]);
      decl b "accepted" (i 0);
      for_ b "k" (i 0) (i n) (fun b ->
          set b "accepted" (add (v "accepted") (call "pair" [])));
      Cstd.print b m "EP accepted=";
      do_ b (call "print_int" [ v "accepted" ]);
      do_ b (call "print_nl" []);
      for_ b "r" (i 0) (i 10) (fun b ->
          do_ b (call "print_int" [ idx (addr "counts") (v "r") ]);
          Cstd.print b m " ");
      do_ b (call "print_nl" []);
      ret b (rem_ (v "accepted") (i 199)));
  finish m

(* ----- CG: conjugate gradient on a symmetric stencil matrix ----- *)

let cg cls =
  let m = create (Printf.sprintf "npb-cg.%s" (cls_name cls)) in
  Cstd.add m;
  let n = 700 * scale cls in
  let iters = 20 in
  func m "matvec" [ ("xp", Dapper_ir.Ir.Ptr); ("yp", Dapper_ir.Ir.Ptr); ("n", Dapper_ir.Ir.I64) ]
    (fun b ->
      (* y = A x with A = 4I - shift(1) - shift(-1) + 0.25*(shift(s)+shift(-s)) *)
      decl b "s" (i 17);
      for_ b "k" (i 0) (v "n") (fun b ->
          declf b "acc" (fmul (f 4.0) (deref (add (v "xp") (mul (v "k") (i 8)))));
          decl b "km" (rem_ (add (sub (v "k") (i 1)) (v "n")) (v "n"));
          decl b "kp" (rem_ (add (v "k") (i 1)) (v "n"));
          set b "acc" (fsub (v "acc") (idx (v "xp") (v "km")));
          set b "acc" (fsub (v "acc") (idx (v "xp") (v "kp")));
          decl b "ks" (rem_ (add (v "k") (v "s")) (v "n"));
          decl b "ks2" (rem_ (add (sub (v "k") (v "s")) (v "n")) (v "n"));
          set b "acc" (fadd (v "acc") (fmul (f 0.25) (idx (v "xp") (v "ks"))));
          set b "acc" (fadd (v "acc") (fmul (f 0.25) (idx (v "xp") (v "ks2"))));
          store_idx b (v "yp") (v "k") (v "acc")));
  func m "dot" [ ("ap", Dapper_ir.Ir.Ptr); ("bp", Dapper_ir.Ir.Ptr); ("n", Dapper_ir.Ir.I64) ]
    (fun b ->
      declf b "s" (f 0.0);
      for_ b "k" (i 0) (v "n") (fun b ->
          set b "s" (fadd (v "s") (fmul (idx (v "ap") (v "k")) (idx (v "bp") (v "k")))));
      ret b (v "s"));
  func m "axpy"
    [ ("yp", Dapper_ir.Ir.Ptr); ("a", Dapper_ir.Ir.F64); ("xp", Dapper_ir.Ir.Ptr);
      ("n", Dapper_ir.Ir.I64) ] (fun b ->
      for_ b "k" (i 0) (v "n") (fun b ->
          store_idx b (v "yp") (v "k")
            (fadd (idx (v "yp") (v "k")) (fmul (v "a") (idx (v "xp") (v "k"))))));
  func m "main" [] (fun b ->
      decl b "n" (i n);
      declp b "x" (call "sbrk" [ mul (v "n") (i 8) ]);
      declp b "r" (call "sbrk" [ mul (v "n") (i 8) ]);
      declp b "p" (call "sbrk" [ mul (v "n") (i 8) ]);
      declp b "q" (call "sbrk" [ mul (v "n") (i 8) ]);
      (* random rhs (a constant vector is an eigenvector of the stencil
         and would converge in one step); x = 0; r = b; p = r *)
      do_ b (call "rand_seed" [ i 577215 ]);
      for_ b "k" (i 0) (v "n") (fun b ->
          declf b "bk" (callf "frand" []);
          store_idx b (v "x") (v "k") (f 0.0);
          store_idx b (v "r") (v "k") (v "bk");
          store_idx b (v "p") (v "k") (v "bk"));
      declf b "rho" (callf "dot" [ v "r"; v "r"; v "n" ]);
      for_ b "it" (i 0) (i iters) (fun b ->
          (* stop before rho underflows and alpha becomes 0/0 *)
          if_ b (fle (v "rho") (f 1e-18)) (fun b -> break_ b);
          do_ b (call "matvec" [ v "p"; v "q"; v "n" ]);
          declf b "alpha" (fdiv (v "rho") (callf "dot" [ v "p"; v "q"; v "n" ]));
          do_ b (call "axpy" [ v "x"; v "alpha"; v "p"; v "n" ]);
          do_ b (call "axpy" [ v "r"; fneg (v "alpha"); v "q"; v "n" ]);
          declf b "rho2" (callf "dot" [ v "r"; v "r"; v "n" ]);
          declf b "beta" (fdiv (v "rho2") (v "rho"));
          set b "rho" (v "rho2");
          for_ b "k" (i 0) (v "n") (fun b ->
              store_idx b (v "p") (v "k")
                (fadd (idx (v "r") (v "k")) (fmul (v "beta") (idx (v "p") (v "k"))))));
      Cstd.print b m "CG residual=";
      do_ b (call "print_flt" [ sqrt_ (v "rho") ]);
      do_ b (call "print_nl" []);
      Cstd.print b m "CG x0=";
      do_ b (call "print_flt" [ deref (v "x") ]);
      do_ b (call "print_nl" []);
      ret b (i 0));
  finish m

(* ----- MG: 1-D multigrid V-cycles ----- *)

let mg cls =
  let m = create (Printf.sprintf "npb-mg.%s" (cls_name cls)) in
  Cstd.add m;
  let n = 2048 * scale cls in
  let cycles = 4 in
  func m "smooth"
    [ ("up", Dapper_ir.Ir.Ptr); ("fp", Dapper_ir.Ir.Ptr); ("n", Dapper_ir.Ir.I64);
      ("steps", Dapper_ir.Ir.I64) ] (fun b ->
      for_ b "s" (i 0) (v "steps") (fun b ->
          for_ b "k" (i 1) (sub (v "n") (i 1)) (fun b ->
              store_idx b (v "up") (v "k")
                (fmul (f 0.5)
                   (fadd (idx (v "fp") (v "k"))
                      (fmul (f 0.5)
                         (fadd
                            (idx (v "up") (sub (v "k") (i 1)))
                            (idx (v "up") (add (v "k") (i 1))))))))));
  func m "residual"
    [ ("up", Dapper_ir.Ir.Ptr); ("fp", Dapper_ir.Ir.Ptr); ("rp", Dapper_ir.Ir.Ptr);
      ("n", Dapper_ir.Ir.I64) ] (fun b ->
      store_idx b (v "rp") (i 0) (f 0.0);
      store_idx b (v "rp") (sub (v "n") (i 1)) (f 0.0);
      for_ b "k" (i 1) (sub (v "n") (i 1)) (fun b ->
          store_idx b (v "rp") (v "k")
            (fsub (idx (v "fp") (v "k"))
               (fsub (fmul (f 2.0) (idx (v "up") (v "k")))
                  (fadd
                     (idx (v "up") (sub (v "k") (i 1)))
                     (idx (v "up") (add (v "k") (i 1))))))));
  func m "restrict_"
    [ ("rp", Dapper_ir.Ir.Ptr); ("cp", Dapper_ir.Ir.Ptr); ("nc", Dapper_ir.Ir.I64) ] (fun b ->
      for_ b "k" (i 0) (v "nc") (fun b ->
          store_idx b (v "cp") (v "k") (idx (v "rp") (mul (v "k") (i 2)))));
  func m "prolong"
    [ ("cp", Dapper_ir.Ir.Ptr); ("up", Dapper_ir.Ir.Ptr); ("nc", Dapper_ir.Ir.I64) ] (fun b ->
      for_ b "k" (i 0) (sub (v "nc") (i 1)) (fun b ->
          decl b "k2" (mul (v "k") (i 2));
          store_idx b (v "up") (v "k2")
            (fadd (idx (v "up") (v "k2")) (idx (v "cp") (v "k")));
          store_idx b (v "up") (add (v "k2") (i 1))
            (fadd (idx (v "up") (add (v "k2") (i 1)))
               (fmul (f 0.5)
                  (fadd (idx (v "cp") (v "k")) (idx (v "cp") (add (v "k") (i 1))))))));
  func m "main" [] (fun b ->
      decl b "n" (i n);
      declp b "u" (call "sbrk" [ mul (v "n") (i 8) ]);
      declp b "fv" (call "sbrk" [ mul (v "n") (i 8) ]);
      declp b "r" (call "sbrk" [ mul (v "n") (i 8) ]);
      declp b "c" (call "sbrk" [ mul (div_ (v "n") (i 2)) (i 8) ]);
      declp b "cu" (call "sbrk" [ mul (div_ (v "n") (i 2)) (i 8) ]);
      do_ b (call "rand_seed" [ i 31415 ]);
      for_ b "k" (i 0) (v "n") (fun b ->
          store_idx b (v "u") (v "k") (f 0.0);
          store_idx b (v "fv") (v "k") (fsub (callf "frand" []) (f 0.5)));
      for_ b "cyc" (i 0) (i cycles) (fun b ->
          do_ b (call "smooth" [ v "u"; v "fv"; v "n"; i 3 ]);
          do_ b (call "residual" [ v "u"; v "fv"; v "r"; v "n" ]);
          decl b "nc" (div_ (v "n") (i 2));
          do_ b (call "restrict_" [ v "r"; v "c"; v "nc" ]);
          for_ b "k" (i 0) (v "nc") (fun b -> store_idx b (v "cu") (v "k") (f 0.0));
          do_ b (call "smooth" [ v "cu"; v "c"; v "nc"; i 6 ]);
          do_ b (call "prolong" [ v "cu"; v "u"; v "nc" ]);
          do_ b (call "smooth" [ v "u"; v "fv"; v "n"; i 3 ]));
      do_ b (call "residual" [ v "u"; v "fv"; v "r"; v "n" ]);
      declf b "norm" (f 0.0);
      for_ b "k" (i 0) (v "n") (fun b ->
          set b "norm" (fadd (v "norm") (fmul (idx (v "r") (v "k")) (idx (v "r") (v "k")))));
      Cstd.print b m "MG rnorm=";
      do_ b (call "print_flt" [ sqrt_ (v "norm") ]);
      do_ b (call "print_nl" []);
      ret b (i 0));
  finish m

(* ----- FT: iterative radix-2 FFT + checksum ----- *)

let ft cls =
  let m = create (Printf.sprintf "npb-ft.%s" (cls_name cls)) in
  Cstd.add m;
  let n = 512 * scale cls in
  let log2n =
    let rec go k acc = if 1 lsl acc >= k then acc else go k (acc + 1) in
    go n 0
  in
  func m "bitrev" [ ("x", Dapper_ir.Ir.I64); ("bits", Dapper_ir.Ir.I64) ] (fun b ->
      decl b "r" (i 0);
      decl b "xx" (v "x");
      for_ b "k" (i 0) (v "bits") (fun b ->
          set b "r" (bor (shl (v "r") (i 1)) (band (v "xx") (i 1)));
          set b "xx" (shr (v "xx") (i 1)));
      ret b (v "r"));
  func m "fft" [ ("re", Dapper_ir.Ir.Ptr); ("im", Dapper_ir.Ir.Ptr); ("n", Dapper_ir.Ir.I64) ]
    (fun b ->
      decl b "len" (i 2);
      while_ b (le (v "len") (v "n")) (fun b ->
          declf b "ang" (fdiv (f (-6.283185307179586)) (i2f (v "len")));
          declf b "wr" (callf "fcos" [ v "ang" ]);
          declf b "wi" (callf "fsin" [ v "ang" ]);
          decl b "base" (i 0);
          while_ b (lt (v "base") (v "n")) (fun b ->
              declf b "cr" (f 1.0);
              declf b "ci" (f 0.0);
              for_ b "j" (i 0) (div_ (v "len") (i 2)) (fun b ->
                  decl b "a" (add (v "base") (v "j"));
                  decl b "c2" (add (v "a") (div_ (v "len") (i 2)));
                  declf b "tr"
                    (fsub (fmul (v "cr") (idx (v "re") (v "c2")))
                       (fmul (v "ci") (idx (v "im") (v "c2"))));
                  declf b "ti"
                    (fadd (fmul (v "cr") (idx (v "im") (v "c2")))
                       (fmul (v "ci") (idx (v "re") (v "c2"))));
                  store_idx b (v "re") (v "c2") (fsub (idx (v "re") (v "a")) (v "tr"));
                  store_idx b (v "im") (v "c2") (fsub (idx (v "im") (v "a")) (v "ti"));
                  store_idx b (v "re") (v "a") (fadd (idx (v "re") (v "a")) (v "tr"));
                  store_idx b (v "im") (v "a") (fadd (idx (v "im") (v "a")) (v "ti"));
                  declf b "ncr" (fsub (fmul (v "cr") (v "wr")) (fmul (v "ci") (v "wi")));
                  set b "ci" (fadd (fmul (v "cr") (v "wi")) (fmul (v "ci") (v "wr")));
                  set b "cr" (v "ncr"));
              set b "base" (add (v "base") (v "len")));
          set b "len" (mul (v "len") (i 2))));
  func m "main" [] (fun b ->
      decl b "n" (i n);
      declp b "re" (call "sbrk" [ mul (v "n") (i 8) ]);
      declp b "im" (call "sbrk" [ mul (v "n") (i 8) ]);
      declp b "re2" (call "sbrk" [ mul (v "n") (i 8) ]);
      declp b "im2" (call "sbrk" [ mul (v "n") (i 8) ]);
      do_ b (call "rand_seed" [ i 161803 ]);
      for_ b "k" (i 0) (v "n") (fun b ->
          store_idx b (v "re") (v "k") (fsub (callf "frand" []) (f 0.5));
          store_idx b (v "im") (v "k") (f 0.0));
      (* bit-reversal permutation into re2/im2, then in-place butterflies *)
      for_ b "rep" (i 0) (i 3) (fun b ->
          for_ b "k" (i 0) (v "n") (fun b ->
              decl b "j" (call "bitrev" [ v "k"; i log2n ]);
              store_idx b (v "re2") (v "j") (idx (v "re") (v "k"));
              store_idx b (v "im2") (v "j") (idx (v "im") (v "k")));
          do_ b (call "fft" [ v "re2"; v "im2"; v "n" ]);
          (* feed a damped copy back for the next repetition *)
          for_ b "k" (i 0) (v "n") (fun b ->
              store_idx b (v "re") (v "k") (fmul (f 0.001) (idx (v "re2") (v "k")));
              store_idx b (v "im") (v "k") (fmul (f 0.001) (idx (v "im2") (v "k")))));
      declf b "cs" (f 0.0);
      for_ b "k" (i 0) (v "n") (fun b ->
          set b "cs"
            (fadd (v "cs")
               (fadd
                  (fmul (idx (v "re2") (v "k")) (idx (v "re2") (v "k")))
                  (fmul (idx (v "im2") (v "k")) (idx (v "im2") (v "k"))))));
      Cstd.print b m "FT checksum=";
      do_ b (call "print_flt" [ sqrt_ (v "cs") ]);
      do_ b (call "print_nl" []);
      ret b (i 0));
  finish m

(* ----- IS: counting sort ----- *)

let is_ cls =
  let m = create (Printf.sprintf "npb-is.%s" (cls_name cls)) in
  Cstd.add m;
  let n = 24_000 * scale cls in
  let buckets = 1024 in
  func m "fill" [ ("keys", Dapper_ir.Ir.Ptr); ("n", Dapper_ir.Ir.I64) ] (fun b ->
      for_ b "k" (i 0) (v "n") (fun b ->
          store_idx b (v "keys") (v "k") (band (call "rand_next" []) (i (buckets - 1)))));
  func m "rank"
    [ ("keys", Dapper_ir.Ir.Ptr); ("cnt", Dapper_ir.Ir.Ptr); ("out", Dapper_ir.Ir.Ptr);
      ("n", Dapper_ir.Ir.I64) ] (fun b ->
      for_ b "k" (i 0) (i buckets) (fun b -> store_idx b (v "cnt") (v "k") (i 0));
      for_ b "k" (i 0) (v "n") (fun b ->
          decl b "key" (idx (v "keys") (v "k"));
          store_idx b (v "cnt") (v "key") (add (idx (v "cnt") (v "key")) (i 1)));
      decl b "pos" (i 0);
      for_ b "k" (i 0) (i buckets) (fun b ->
          decl b "c" (idx (v "cnt") (v "k"));
          store_idx b (v "cnt") (v "k") (v "pos");
          set b "pos" (add (v "pos") (v "c")));
      for_ b "k" (i 0) (v "n") (fun b ->
          decl b "key" (idx (v "keys") (v "k"));
          decl b "p" (idx (v "cnt") (v "key"));
          store_idx b (v "out") (v "p") (v "key");
          store_idx b (v "cnt") (v "key") (add (v "p") (i 1))));
  func m "main" [] (fun b ->
      decl b "n" (i n);
      declp b "keys" (call "sbrk" [ mul (v "n") (i 8) ]);
      declp b "out" (call "sbrk" [ mul (v "n") (i 8) ]);
      declp b "cnt" (call "sbrk" [ i (8 * buckets) ]);
      do_ b (call "rand_seed" [ i 141421 ]);
      decl b "bad" (i 0);
      for_ b "rep" (i 0) (i 3) (fun b ->
          do_ b (call "fill" [ v "keys"; v "n" ]);
          do_ b (call "rank" [ v "keys"; v "cnt"; v "out"; v "n" ]);
          for_ b "k" (i 1) (v "n") (fun b ->
              if_ b (gt (idx (v "out") (sub (v "k") (i 1))) (idx (v "out") (v "k")))
                (fun b -> set b "bad" (add (v "bad") (i 1)))));
      decl b "sum" (i 0);
      for_ b "k" (i 0) (v "n") (fun b ->
          set b "sum" (add (v "sum") (mul (idx (v "out") (v "k")) (v "k"))));
      Cstd.print b m "IS bad=";
      do_ b (call "print_int" [ v "bad" ]);
      Cstd.print b m " checksum=";
      do_ b (call "print_int" [ rem_ (v "sum") (i 1000003) ]);
      do_ b (call "print_nl" []);
      ret b (v "bad"));
  finish m
