open Dapper_codegen

type spec = {
  sp_name : string;
  sp_modul : Dapper_ir.Ir.modul Lazy.t;
  sp_threads : int;
  sp_kind : [ `Npb | `Parsec | `Server | `Hpc ];
}

let mk name kind ?(threads = 0) f =
  { sp_name = name; sp_modul = lazy (f ()); sp_threads = threads; sp_kind = kind }

let npb_a () =
  [ mk "npb-ep.A" `Npb (fun () -> Npb.ep Npb.A);
    mk "npb-cg.A" `Npb (fun () -> Npb.cg Npb.A);
    mk "npb-mg.A" `Npb (fun () -> Npb.mg Npb.A);
    mk "npb-ft.A" `Npb (fun () -> Npb.ft Npb.A);
    mk "npb-is.A" `Npb (fun () -> Npb.is_ Npb.A) ]

let npb_b () =
  [ mk "npb-ep.B" `Npb (fun () -> Npb.ep Npb.B);
    mk "npb-cg.B" `Npb (fun () -> Npb.cg Npb.B);
    mk "npb-mg.B" `Npb (fun () -> Npb.mg Npb.B);
    mk "npb-ft.B" `Npb (fun () -> Npb.ft Npb.B) ]

let parsec () =
  [ mk "blackscholes" `Parsec ~threads:4 (fun () -> Parsec.blackscholes ());
    mk "swaptions" `Parsec ~threads:4 (fun () -> Parsec.swaptions ());
    mk "streamcluster" `Parsec ~threads:4 (fun () -> Parsec.streamcluster ()) ]

let all () =
  npb_a ()
  @ [ mk "linpack" `Hpc (fun () -> Hpc.linpack ());
      mk "dhrystone" `Hpc (fun () -> Hpc.dhrystone ());
      mk "kmeans" `Hpc (fun () -> Hpc.kmeans ());
      mk "redis" `Server (fun () -> Servers.redis ());
      mk "nginx" `Server (fun () -> Servers.nginx ());
      mk "nbody" `Hpc (fun () -> Source_apps.nbody ()) ]
  @ parsec ()

let find name =
  match List.find_opt (fun sp -> sp.sp_name = name) (all () @ npb_b ()) with
  | Some sp -> sp
  | None -> invalid_arg (Printf.sprintf "Registry.find: unknown benchmark %S" name)

let cache : (string, Link.compiled) Hashtbl.t = Hashtbl.create 16

let compiled sp =
  match Hashtbl.find_opt cache sp.sp_name with
  | Some c -> c
  | None ->
    let c = Link.compile ~app:sp.sp_name (Lazy.force sp.sp_modul) in
    Hashtbl.add cache sp.sp_name c;
    c
