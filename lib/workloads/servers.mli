(** Server applications: a Redis-like in-memory key/value store and an
    Nginx-like HTTP request parser, both driven by deterministic
    synthetic client traffic (no sockets in the simulator; the request
    stream plays the role of the network, which preserves the code paths
    that matter for checkpoint size and stack shapes).

    [vulnerable] variants are consumed by the security experiments:
    the nginx parser then copies an attacker-controlled chunk length
    into a fixed stack buffer (CVE-2013-2028 style), and the redis
    command handler exposes an unchecked write offset (CVE-2015-4335
    style). *)

val redis : ?keys:int -> ?ops:int -> unit -> Dapper_ir.Ir.modul
val nginx : ?requests:int -> ?vulnerable:bool -> unit -> Dapper_ir.Ir.modul
