(** Page-granular simulated memory with demand paging.

    Reads and writes may cross page boundaries. Accessing an unmapped
    page consults the fault handler (used both for demand-loading code
    pages from the binary — CRIU does not dump clean code pages — and for
    lazy post-copy migration, where missing pages are fetched from the
    source node's page server). *)

type t

exception Segfault of int64

(** [create ()] has no pages mapped and no fault handler. *)
val create : unit -> t

(** The handler receives the page number and returns the page contents,
    or [None] to signal a true segfault. *)
val set_fault_handler : t -> (int -> bytes option) option -> unit

(** Number of pages the fault handler was invoked for (successfully). *)
val fault_count : t -> int

val map_page : t -> int -> bytes -> unit
val unmap_page : t -> int -> unit
val is_mapped : t -> int -> bool

(** Mapped page numbers in increasing order, as a freshly sorted array
    (monomorphic [Int.compare], no per-element closure or intermediate
    list). Snapshot callers that immediately iterate should prefer this
    over {!mapped_pages}. *)
val page_numbers : t -> int array

(** Mapped page numbers in increasing order. *)
val mapped_pages : t -> int list

(** Raw page contents (without triggering the fault handler). *)
val page_contents : t -> int -> bytes option

(** {2 Dirty-page tracking}

    Iterative pre-copy needs to know which pages were written between
    transfer rounds. Tracking is off by default (and costs one branch per
    write when off); [track_dirty t true] starts tracking into a fresh
    empty set, [track_dirty t false] stops and drops the set. Writes and
    [map_page] mark pages; reads — including fault-handler demand loads,
    whose contents are reproducible on the destination — do not. *)

val track_dirty : t -> bool -> unit
val tracking_dirty : t -> bool

(** Pages written since tracking started or the last [clear_dirty], in
    increasing order. Empty when tracking is off. *)
val dirty_pages : t -> int list

(** Empty the dirty set, keeping tracking on. *)
val clear_dirty : t -> unit

val read_u8 : t -> int64 -> int
val read_u64 : t -> int64 -> int64
val write_u8 : t -> int64 -> int -> unit
val write_u64 : t -> int64 -> int64 -> unit
val read_bytes : t -> int64 -> int -> string
val write_bytes : t -> int64 -> string -> unit

(** Deep copy (pages are duplicated). The fault handler is not copied. *)
val copy : t -> t
