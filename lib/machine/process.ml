open Dapper_isa
open Dapper_binary

type thread_status =
  | Runnable
  | Blocked_join of int
  | Blocked_lock of int64
  | Trapped
  | Stopped
  | Exited of int64

type thread = {
  tid : int;
  regs : int64 array;
  mutable pc : int64;
  mutable tls : int64;
  mutable status : thread_status;
  mutable instrs : int64;
}

type crash = { cr_tid : int; cr_pc : int64; cr_reason : string }

type nondet = {
  nd_syscall : tid:int -> sys:string -> int64 -> int64;
  nd_sched : tid:int -> steps:int -> unit;
}

type t = {
  arch : Arch.t;
  mem : Memory.t;
  binary : Binary.t;
  mutable threads : thread list;
  mutable next_tid : int;
  mutable brk : int64;
  stdout_buf : Buffer.t;
  mutable exit_code : int64 option;
  mutable crash : crash option;
  mutable total_instrs : int64;
  mutable nondet : nondet option;
  decode_cache : (int64, Minstr.t * int) Hashtbl.t;
}

exception Exec_error of string

let ( +% ) = Int64.add
let ( -% ) = Int64.sub

(* ----- demand paging: code pages from the binary, stack growth ----- *)

let in_stack_region addr =
  Int64.compare addr (Layout.stack_limit_of_thread (Layout.max_threads - 1)) >= 0
  && Int64.compare addr Layout.stack_top < 0

let install_code_paging mem (binary : Binary.t) =
  let text = Binary.find_section binary ".text" in
  let handler pn =
    let addr = Layout.addr_of_page pn in
    if Int64.compare addr Layout.code_base >= 0 && Int64.compare addr Layout.data_base < 0
    then begin
      let page = Bytes.make Layout.page_size '\000' in
      (match text with
       | Some s ->
         let off = Int64.to_int (addr -% s.sec_addr) in
         let len = String.length s.sec_data in
         if off < len then begin
           let n = min Layout.page_size (len - off) in
           if off >= 0 then Bytes.blit_string s.sec_data off page 0 n
         end
       | None -> ());
      Some page
    end
    else if in_stack_region addr then
      (* stacks grow on demand; untouched pages never enter a dump *)
      Some (Bytes.make Layout.page_size '\000')
    else None
  in
  Memory.set_fault_handler mem (Some handler)

(* ----- loading ----- *)

let map_section mem (s : Binary.section) =
  let len = String.length s.sec_data in
  let first = Layout.page_of_addr s.sec_addr in
  let last = Layout.page_of_addr (s.sec_addr +% Int64.of_int (max 0 (len - 1))) in
  for pn = first to last do
    if not (Memory.is_mapped mem pn) then
      Memory.map_page mem pn (Bytes.make Layout.page_size '\000')
  done;
  Memory.write_bytes mem s.sec_addr s.sec_data

let map_zero_range mem addr len =
  let first = Layout.page_of_addr addr in
  let last = Layout.page_of_addr (addr +% Int64.of_int (max 0 (len - 1))) in
  for pn = first to last do
    if not (Memory.is_mapped mem pn) then
      Memory.map_page mem pn (Bytes.make Layout.page_size '\000')
  done

let setup_tls t tid =
  let block = Layout.tls_block_of_thread tid in
  map_zero_range t.mem block t.binary.bin_tls_size;
  Memory.write_bytes t.mem block t.binary.bin_tls_init;
  block +% Int64.of_int (Arch.tls_offset t.arch)

(* A fresh thread's stack: sp starts a redzone below the region top, and
   the bottom-of-stack return target is the given exit stub. On x86 the
   stub address is pushed; on aarch64 it is placed in the link register. *)
let setup_stack t tid ~stub =
  let base = Layout.stack_base_of_thread tid in
  (* map only the hot top; deeper pages fault in on demand *)
  map_zero_range t.mem (base -% Int64.of_int (8 * Layout.page_size)) (8 * Layout.page_size);
  let sp = base -% 64L in
  match t.arch with
  | Arch.X86_64 ->
    let sp = sp -% 8L in
    Memory.write_u64 t.mem sp stub;
    sp
  | Arch.Aarch64 -> sp

let make_thread t ~tid ~pc ~stub =
  let th =
    { tid; regs = Array.make 33 0L; pc; tls = 0L; status = Runnable; instrs = 0L }
  in
  let sp = setup_stack t tid ~stub in
  th.regs.(Arch.sp t.arch) <- sp;
  (match Arch.link_reg t.arch with
   | Some lr -> th.regs.(lr) <- stub
   | None -> ());
  th.tls <- setup_tls t tid;
  th

let load binary =
  let mem = Memory.create () in
  let t =
    { arch = binary.Binary.bin_arch; mem; binary; threads = []; next_tid = 0;
      brk = Layout.heap_base; stdout_buf = Buffer.create 256; exit_code = None;
      crash = None; total_instrs = 0L; nondet = None;
      decode_cache = Hashtbl.create 4096 }
  in
  List.iter
    (fun (s : Binary.section) -> if not s.sec_exec then map_section mem s)
    binary.bin_sections;
  install_code_paging mem binary;
  let main = make_thread t ~tid:0 ~pc:binary.bin_anchors.a_entry
      ~stub:binary.bin_anchors.a_exit_stub in
  t.threads <- [ main ];
  t.next_tid <- 1;
  t

let reconstruct binary mem ~threads ~brk =
  install_code_paging mem binary;
  let next_tid = 1 + List.fold_left (fun m th -> max m th.tid) 0 threads in
  { arch = binary.Binary.bin_arch; mem; binary; threads; next_tid; brk;
    stdout_buf = Buffer.create 256; exit_code = None; crash = None;
    total_instrs = 0L; nondet = None; decode_cache = Hashtbl.create 4096 }

(* ----- helpers ----- *)

let stdout_contents t = Buffer.contents t.stdout_buf

let thread t tid =
  match List.find_opt (fun th -> th.tid = tid) t.threads with
  | Some th -> th
  | None -> raise (Exec_error (Printf.sprintf "no thread %d" tid))

let live_threads t =
  List.filter (fun th -> match th.status with Exited _ -> false | _ -> true) t.threads

let all_quiescent t =
  List.for_all
    (fun th ->
      match th.status with
      | Trapped | Blocked_join _ | Blocked_lock _ | Stopped | Exited _ -> true
      | Runnable -> false)
    t.threads

type vma_kind = Vma_code | Vma_data | Vma_tls | Vma_heap | Vma_stack of int

let vma_kind_of_page t pn =
  if not (Memory.is_mapped t.mem pn) then None
  else
    let addr = Layout.addr_of_page pn in
    let within lo hi = Int64.compare addr lo >= 0 && Int64.compare addr hi < 0 in
    if within Layout.code_base Layout.data_base then Some Vma_code
    else if within Layout.data_base Layout.tls_base then Some Vma_data
    else if within Layout.tls_base Layout.heap_base then Some Vma_tls
    else if within Layout.heap_base (Layout.stack_limit_of_thread (Layout.max_threads - 1))
    then Some Vma_heap
    else if Int64.compare addr Layout.stack_top < 0 then begin
      let off = Int64.to_int (Layout.stack_top -% addr) in
      Some (Vma_stack ((off - 1) / Layout.stack_region))
    end
    else None

(* ----- read-only observable-state snapshot ----- *)

type snapshot = {
  sn_data : int64;
  sn_heap : int64;
  sn_tls : int64;
  sn_brk : int64;
  sn_threads : int;
  sn_stdout : string;
  sn_exit : int64 option;
}

(* FNV-1a (64-bit), folded over (page number, page bytes) pairs so the
   digest is sensitive to which pages are mapped, not just their
   concatenated contents. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L
let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int b)) fnv_prime

let fnv_int h n =
  let rec go h i = if i = 8 then h else go (fnv_byte h ((n lsr (i * 8)) land 0xff)) (i + 1) in
  go h 0

let observe t =
  let flag = t.binary.Binary.bin_anchors.Binary.a_flag in
  let flag_page = Layout.page_of_addr flag in
  let flag_off = Layout.page_offset flag in
  (* The transformation flag is runtime-monitor state, not program state:
     it is raised on the source during a pause and dropped again by
     restore, so its 8 bytes are masked out of the data digest. *)
  let digest_page ~mask_flag h pn page =
    let h = fnv_int h pn in
    let n = Bytes.length page in
    let h = ref h in
    for idx = 0 to n - 1 do
      let b =
        if mask_flag && idx >= flag_off && idx < flag_off + 8 then 0
        else Char.code (Bytes.unsafe_get page idx)
      in
      h := fnv_byte !h b
    done;
    !h
  in
  let data = ref fnv_offset and heap = ref fnv_offset and tls = ref fnv_offset in
  Array.iter
    (fun pn ->
      let into acc ~mask_flag =
        (* page_contents never consults the fault handler: observing a
           process must not fault pages in or perturb fault accounting *)
        match Memory.page_contents t.mem pn with
        | Some page -> acc := digest_page ~mask_flag !acc pn page
        | None -> ()
      in
      match vma_kind_of_page t pn with
      | Some Vma_data -> into data ~mask_flag:(pn = flag_page)
      | Some Vma_heap -> into heap ~mask_flag:false
      | Some Vma_tls -> into tls ~mask_flag:false
      | Some Vma_code | Some (Vma_stack _) | None -> ())
    (Memory.page_numbers t.mem);
  { sn_data = !data;
    sn_heap = !heap;
    sn_tls = !tls;
    sn_brk = t.brk;
    sn_threads = List.length (live_threads t);
    sn_stdout = Buffer.contents t.stdout_buf;
    sn_exit = t.exit_code }

(* Per-page digests of the same pages [observe] folds (data/heap/TLS,
   flag word masked), each from a fresh offset basis — the localization
   companion to [observe]: when two snapshots differ, diffing the two
   page lists names the diverging pages. *)
let observe_pages t =
  let flag = t.binary.Binary.bin_anchors.Binary.a_flag in
  let flag_page = Layout.page_of_addr flag in
  let flag_off = Layout.page_offset flag in
  let digest ~mask_flag pn page =
    let h = ref (fnv_int fnv_offset pn) in
    for idx = 0 to Bytes.length page - 1 do
      let b =
        if mask_flag && idx >= flag_off && idx < flag_off + 8 then 0
        else Char.code (Bytes.unsafe_get page idx)
      in
      h := fnv_byte !h b
    done;
    !h
  in
  Array.fold_left
    (fun acc pn ->
      match vma_kind_of_page t pn with
      | Some ((Vma_data | Vma_heap | Vma_tls) as kind) ->
        (match Memory.page_contents t.mem pn with
         | Some page ->
           (kind, pn, digest ~mask_flag:(pn = flag_page) pn page) :: acc
         | None -> acc)
      | Some Vma_code | Some (Vma_stack _) | None -> acc)
    []
    (Memory.page_numbers t.mem)
  |> List.rev

let state_equal a b =
  Int64.equal a.sn_data b.sn_data
  && Int64.equal a.sn_heap b.sn_heap
  && Int64.equal a.sn_tls b.sn_tls
  && Int64.equal a.sn_brk b.sn_brk
  && a.sn_threads = b.sn_threads

let snapshot_to_string s =
  Printf.sprintf
    "data=%016Lx heap=%016Lx tls=%016Lx brk=0x%Lx threads=%d stdout=%dB exit=%s"
    s.sn_data s.sn_heap s.sn_tls s.sn_brk s.sn_threads
    (String.length s.sn_stdout)
    (match s.sn_exit with None -> "-" | Some c -> Int64.to_string c)

(* ----- ptrace-like interface ----- *)

let peek_data t addr = Memory.read_u64 t.mem addr
let poke_data t addr v = Memory.write_u64 t.mem addr v

let stop_thread t tid =
  let th = thread t tid in
  match th.status with
  | Exited _ -> ()
  | Runnable | Blocked_join _ | Blocked_lock _ | Trapped | Stopped ->
    th.status <- Stopped

let resume_thread t tid =
  let th = thread t tid in
  match th.status with
  | Trapped | Stopped -> th.status <- Runnable
  | Runnable | Blocked_join _ | Blocked_lock _ | Exited _ -> ()

(* ----- interpreter ----- *)

let fetch t (th : thread) =
  match Hashtbl.find_opt t.decode_cache th.pc with
  | Some r -> r
  | None ->
    let window = Memory.read_bytes t.mem th.pc 16 in
    (match Encoding.decode t.arch window 0 with
     | Some (i, sz) ->
       let r = (i, sz) in
       Hashtbl.replace t.decode_cache th.pc r;
       r
     | None ->
       raise (Exec_error (Printf.sprintf "undecodable instruction at 0x%Lx" th.pc)))

let f64 v = Int64.float_of_bits v
let of_f64 v = Int64.bits_of_float v
let bool64 b = if b then 1L else 0L

let eval_binop (op : Minstr.binop) a b =
  match op with
  | Add -> a +% b
  | Sub -> a -% b
  | Mul -> Int64.mul a b
  | Div -> if Int64.equal b 0L then raise (Exec_error "division by zero") else Int64.div a b
  | Rem -> if Int64.equal b 0L then raise (Exec_error "division by zero") else Int64.rem a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Shr -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Sar -> Int64.shift_right a (Int64.to_int b land 63)
  | Fadd -> of_f64 (f64 a +. f64 b)
  | Fsub -> of_f64 (f64 a -. f64 b)
  | Fmul -> of_f64 (f64 a *. f64 b)
  | Fdiv -> of_f64 (f64 a /. f64 b)
  | Cmpeq -> bool64 (Int64.equal a b)
  | Cmpne -> bool64 (not (Int64.equal a b))
  | Cmplt -> bool64 (Int64.compare a b < 0)
  | Cmple -> bool64 (Int64.compare a b <= 0)
  | Cmpgt -> bool64 (Int64.compare a b > 0)
  | Cmpge -> bool64 (Int64.compare a b >= 0)
  | Cmpult -> bool64 (Int64.unsigned_compare a b < 0)
  | Fcmpeq -> bool64 (Float.equal (f64 a) (f64 b))
  | Fcmplt -> bool64 (f64 a < f64 b)
  | Fcmple -> bool64 (f64 a <= f64 b)

let eval_unop (op : Minstr.unop) a =
  match op with
  | Neg -> Int64.neg a
  | Not -> Int64.lognot a
  | Fneg -> of_f64 (-.f64 a)
  | Sitofp -> of_f64 (Int64.to_float a)
  | Fptosi -> Int64.of_float (f64 a)
  | Fsqrt -> of_f64 (Float.sqrt (f64 a))

(* Executes a syscall for [th]. Returns [true] if the pc should advance
   (non-blocking path) or [false] if the thread blocked (pc stays on the
   syscall so it retries when rescheduled). *)
let exec_syscall t (th : thread) num =
  let arg i = th.regs.(List.nth (Arch.arg_regs t.arch) i) in
  (* Completed syscall results flow through the nondet tap: a recorder
     logs the value unchanged, a replayer validates it (or substitutes
     it, for the genuinely nondeterministic clock). Blocked paths never
     reach the tap — the retry that eventually completes does. *)
  let tap sys v =
    match t.nondet with None -> v | Some h -> h.nd_syscall ~tid:th.tid ~sys v
  in
  let ret sys v = th.regs.(Arch.ret_reg t.arch) <- tap sys v in
  match Arch.syscall_of_number t.arch num with
  | None -> raise (Exec_error (Printf.sprintf "unknown syscall %d" num))
  | Some `Exit ->
    let code = arg 0 in
    (* record-only: the exit code is program state, never substituted *)
    ignore (tap "exit" code);
    if th.tid = 0 then begin
      t.exit_code <- Some code;
      List.iter (fun o -> o.status <- Exited code) t.threads
    end
    else th.status <- Exited code;
    true
  | Some `Write ->
    let addr = arg 1 and len = Int64.to_int (arg 2) in
    Buffer.add_string t.stdout_buf (Memory.read_bytes t.mem addr len);
    ret "write" (Int64.of_int len);
    true
  | Some `Sbrk ->
    let delta = Int64.to_int (arg 0) in
    let old = t.brk in
    if delta > 0 then begin
      map_zero_range t.mem old delta;
      t.brk <- old +% Int64.of_int delta
    end;
    ret "sbrk" old;
    true
  | Some `Spawn ->
    let fn = arg 0 and a0 = arg 1 in
    if t.next_tid >= Layout.max_threads then begin
      ret "spawn" (-1L);
      true
    end
    else begin
      let tid = t.next_tid in
      t.next_tid <- tid + 1;
      let child = make_thread t ~tid ~pc:fn ~stub:t.binary.bin_anchors.a_thread_exit_stub in
      child.regs.(List.hd (Arch.arg_regs t.arch)) <- a0;
      t.threads <- t.threads @ [ child ];
      ret "spawn" (Int64.of_int tid);
      true
    end
  | Some `Join ->
    let target = Int64.to_int (arg 0) in
    (match List.find_opt (fun o -> o.tid = target) t.threads with
     | Some { status = Exited v; _ } ->
       ret "join" v;
       true
     | Some _ ->
       th.status <- Blocked_join target;
       false
     | None ->
       ret "join" (-1L);
       true)
  | Some `Mutex_lock ->
    let addr = arg 0 in
    if Int64.equal (Memory.read_u64 t.mem addr) 0L then begin
      Memory.write_u64 t.mem addr (Int64.of_int (th.tid + 1));
      ret "lock" 0L;
      true
    end
    else begin
      th.status <- Blocked_lock addr;
      false
    end
  | Some `Mutex_unlock ->
    Memory.write_u64 t.mem (arg 0) 0L;
    ret "unlock" 0L;
    true
  | Some `Clock ->
    ret "clock" t.total_instrs;
    true
  | Some `Yield ->
    ret "yield" 0L;
    true

let step_thread t (th : thread) =
  let (i, sz) = fetch t th in
  let next = th.pc +% Int64.of_int sz in
  let set r v = th.regs.(r) <- v in
  let get r = th.regs.(r) in
  th.instrs <- th.instrs +% 1L;
  t.total_instrs <- t.total_instrs +% 1L;
  match i with
  | Nop -> th.pc <- next
  | Mov (d, s) -> set d (get s); th.pc <- next
  | Movi (d, v) -> set d v; th.pc <- next
  | Movk (d, v) ->
    set d (Int64.logor (Int64.logand (get d) 0xFFFFFFFFL) (Int64.shift_left v 32));
    th.pc <- next
  | Binop (op, d, a, b) -> set d (eval_binop op (get a) (get b)); th.pc <- next
  | Binopi (op, d, a, v) -> set d (eval_binop op (get a) v); th.pc <- next
  | Unop (op, d, a) -> set d (eval_unop op (get a)); th.pc <- next
  | Load (d, base, off) ->
    set d (Memory.read_u64 t.mem (get base +% Int64.of_int off));
    th.pc <- next
  | Store (s, base, off) ->
    Memory.write_u64 t.mem (get base +% Int64.of_int off) (get s);
    th.pc <- next
  | Load8 (d, base, off) ->
    set d (Int64.of_int (Memory.read_u8 t.mem (get base +% Int64.of_int off)));
    th.pc <- next
  | Store8 (s, base, off) ->
    Memory.write_u8 t.mem (get base +% Int64.of_int off) (Int64.to_int (get s) land 0xFF);
    th.pc <- next
  | Load_pair (d1, d2, base, off) ->
    let b = get base in
    set d1 (Memory.read_u64 t.mem (b +% Int64.of_int off));
    set d2 (Memory.read_u64 t.mem (b +% Int64.of_int (off + 8)));
    th.pc <- next
  | Store_pair (s1, s2, base, off) ->
    let b = get base in
    Memory.write_u64 t.mem (b +% Int64.of_int off) (get s1);
    Memory.write_u64 t.mem (b +% Int64.of_int (off + 8)) (get s2);
    th.pc <- next
  | Tls_get d -> set d th.tls; th.pc <- next
  | Call target ->
    (match t.arch with
     | Arch.X86_64 ->
       let sp = get (Arch.sp t.arch) -% 8L in
       set (Arch.sp t.arch) sp;
       Memory.write_u64 t.mem sp next
     | Arch.Aarch64 -> set 30 next);
    th.pc <- target
  | Call_reg s ->
    let target = get s in
    (match t.arch with
     | Arch.X86_64 ->
       let sp = get (Arch.sp t.arch) -% 8L in
       set (Arch.sp t.arch) sp;
       Memory.write_u64 t.mem sp next
     | Arch.Aarch64 -> set 30 next);
    th.pc <- target
  | Ret ->
    (match t.arch with
     | Arch.X86_64 ->
       let sp = get (Arch.sp t.arch) in
       th.pc <- Memory.read_u64 t.mem sp;
       set (Arch.sp t.arch) (sp +% 8L)
     | Arch.Aarch64 -> th.pc <- get 30)
  | Jmp target -> th.pc <- target
  | Jz (c, target) -> th.pc <- (if Int64.equal (get c) 0L then target else next)
  | Jnz (c, target) -> th.pc <- (if Int64.equal (get c) 0L then next else target)
  | Adjust_sp d ->
    set (Arch.sp t.arch) (get (Arch.sp t.arch) +% Int64.of_int d);
    th.pc <- next
  | Trap ->
    th.status <- Trapped;
    th.pc <- next
  | Syscall num -> if exec_syscall t th num then th.pc <- next

type run_result =
  | Progress
  | Idle
  | Exited_run of int64
  | Crashed of crash

let quantum = 64

(* Retry a blocked thread's condition; promotes back to Runnable when the
   blocking syscall would now succeed (the syscall re-executes). *)
let poll_blocked t (th : thread) =
  match th.status with
  | Blocked_join target ->
    (match List.find_opt (fun o -> o.tid = target) t.threads with
     | Some { status = Exited _; _ } | None -> th.status <- Runnable
     | Some _ -> ())
  | Blocked_lock addr ->
    if Int64.equal (Memory.read_u64 t.mem addr) 0L then th.status <- Runnable
  | Runnable | Trapped | Stopped | Exited _ -> ()

let run t ~max_instrs =
  let budget = ref max_instrs in
  let result = ref None in
  while !result = None && !budget > 0 do
    let progressed = ref false in
    let threads = t.threads in
    List.iter
      (fun th ->
        if !result = None then begin
          poll_blocked t th;
          if th.status = Runnable then begin
            let slice = min quantum !budget in
            (try
               let n = ref 0 in
               while !n < slice && th.status = Runnable && t.exit_code = None do
                 step_thread t th;
                 incr n
               done;
               (* scheduler decision: this thread retired !n instructions
                  before the round-robin moved on — the interleaving a
                  same-ISA replay must reproduce *)
               (match t.nondet with
                | Some h when !n > 0 -> h.nd_sched ~tid:th.tid ~steps:!n
                | _ -> ());
               if !n > 0 then progressed := true;
               budget := !budget - !n
             with
             | Memory.Segfault addr ->
               let c =
                 { cr_tid = th.tid; cr_pc = th.pc;
                   cr_reason = Printf.sprintf "segfault at 0x%Lx" addr }
               in
               t.crash <- Some c;
               result := Some (Crashed c)
             | Exec_error msg ->
               let c = { cr_tid = th.tid; cr_pc = th.pc; cr_reason = msg } in
               t.crash <- Some c;
               result := Some (Crashed c));
            match t.exit_code with
            | Some code -> result := Some (Exited_run code)
            | None -> ()
          end
        end)
      threads;
    match !result with
    | Some _ -> ()
    | None -> if not !progressed then result := Some Idle
  done;
  match !result with
  | Some r -> r
  | None -> Progress

let run_to_completion t ~fuel =
  let remaining = ref fuel in
  let result = ref Progress in
  let continue = ref true in
  while !continue && !remaining > 0 do
    let chunk = min 1_000_000 !remaining in
    remaining := !remaining - chunk;
    match run t ~max_instrs:chunk with
    | Progress -> result := Progress
    | (Idle | Exited_run _ | Crashed _) as r ->
      result := r;
      continue := false
  done;
  !result
