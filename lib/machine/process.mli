(** A simulated process: threads, memory, and the interpreter loop.

    A process executes the machine code of exactly one architecture. The
    Dapper runtime controls it through the ptrace-like API at the bottom
    of this interface (peek/poke memory and registers, thread statuses),
    mirroring how the real system drives a tracee (paper Section III-B/D2). *)

open Dapper_isa
open Dapper_binary

type thread_status =
  | Runnable
  | Blocked_join of int     (** waiting for a thread to exit *)
  | Blocked_lock of int64   (** waiting on the mutex at this address *)
  | Trapped                 (** executed the breakpoint; held by the monitor *)
  | Stopped                 (** SIGSTOP *)
  | Exited of int64

type thread = {
  tid : int;
  regs : int64 array;          (** indexed by DWARF register number *)
  mutable pc : int64;
  mutable tls : int64;         (** TLS base register (FS base / TPIDR) *)
  mutable status : thread_status;
  mutable instrs : int64;      (** instructions retired by this thread *)
}

type crash = { cr_tid : int; cr_pc : int64; cr_reason : string }

(** Tap on the process's nondeterministic inputs (the record/replay
    plane's hook). [nd_syscall] sees every {e completed} syscall's result
    value and returns the value actually written to the return register:
    a recorder returns it unchanged, a replayer validates it against a
    log or substitutes the logged value (the instruction-count clock is
    the one input that legally differs between a live and a replayed
    run). Blocked syscall attempts never reach the tap — the retry that
    completes does. The ["exit"] event is record-only: its value is
    program state and the returned value is ignored. [nd_sched] fires
    after every interpreter slice with the instructions the thread
    retired before the round-robin moved on — the interleaving decision
    a same-ISA replay reproduces (slice lengths are ISA-specific, so
    cross-ISA replay ignores them). *)
type nondet = {
  nd_syscall : tid:int -> sys:string -> int64 -> int64;
  nd_sched : tid:int -> steps:int -> unit;
}

type t = {
  arch : Arch.t;
  mem : Memory.t;
  binary : Binary.t;
  mutable threads : thread list;
  mutable next_tid : int;
  mutable brk : int64;
  stdout_buf : Buffer.t;
  mutable exit_code : int64 option;
  mutable crash : crash option;
  mutable total_instrs : int64;
  mutable nondet : nondet option;  (** record/replay tap; [None] = untapped *)
  decode_cache : (int64, Minstr.t * int) Hashtbl.t;
}

exception Exec_error of string

(** [load binary] maps the data sections, arranges demand paging for code
    pages, and creates the main thread poised at the entry symbol with the
    process-exit stub as its bottom-of-stack return target. *)
val load : Binary.t -> t

(** [reconstruct binary mem ~threads ~brk] assembles a process from
    restored state — the CRIU restore path. The caller is responsible for
    memory contents and thread register state; code-page demand paging is
    installed exactly as in [load]. *)
val reconstruct : Binary.t -> Memory.t -> threads:thread list -> brk:int64 -> t

type run_result =
  | Progress   (** instruction budget exhausted, work remains *)
  | Idle       (** no runnable thread (all trapped/blocked/stopped) *)
  | Exited_run of int64
  | Crashed of crash

(** [run t ~max_instrs] interprets up to [max_instrs] instructions,
    round-robin across runnable threads. Deterministic. *)
val run : t -> max_instrs:int -> run_result

(** [run_to_completion t ~fuel] keeps running until exit, crash, idleness
    or the fuel limit. *)
val run_to_completion : t -> fuel:int -> run_result

val stdout_contents : t -> string
val thread : t -> int -> thread
val live_threads : t -> thread list

(** All threads quiescent at monitor-visible stop states (trapped,
    blocked, stopped or exited) — the condition for dumping. *)
val all_quiescent : t -> bool

(** Classification of mapped memory, used by the checkpointer. *)
type vma_kind = Vma_code | Vma_data | Vma_tls | Vma_heap | Vma_stack of int

val vma_kind_of_page : t -> int -> vma_kind option

(** {1 Observable state}

    A read-only digest of everything a migration must preserve, taken
    without pausing, faulting pages in, or perturbing any accounting —
    the conformance oracle snapshots both execution twins with this. *)

type snapshot = {
  sn_data : int64;   (** FNV-1a digest of mapped data pages; the runtime
                         transformation-flag word is masked out *)
  sn_heap : int64;   (** digest of mapped heap pages *)
  sn_tls : int64;    (** digest of mapped TLS pages *)
  sn_brk : int64;
  sn_threads : int;  (** live (non-exited) threads *)
  sn_stdout : string;
  sn_exit : int64 option;
}

(** [observe t] digests the current observable state. Only mapped pages
    are read (via raw page contents, never the fault handler); code and
    stack pages are excluded because their bytes are ISA-specific. *)
val observe : t -> snapshot

(** ISA-independent state equivalence: data/heap/TLS digests, brk and
    live-thread count. Output and exit status are compared separately by
    the oracle because a migrated twin restarts with empty stdout. *)
val state_equal : snapshot -> snapshot -> bool

val snapshot_to_string : snapshot -> string

(** Per-page digests of exactly the pages {!observe} folds (data, heap
    and TLS; transformation-flag word masked), in page-number order —
    diffing two processes' lists names the pages behind a snapshot
    mismatch. *)
val observe_pages : t -> (vma_kind * int * int64) list

(** ptrace-like control interface. *)

val peek_data : t -> int64 -> int64
val poke_data : t -> int64 -> int64 -> unit
val stop_thread : t -> int -> unit
val resume_thread : t -> int -> unit

(** Raw single-step of one thread (used by tests and the monitor). *)
val step_thread : t -> thread -> unit
