open Dapper_binary

exception Segfault of int64

type t = {
  pages : (int, bytes) Hashtbl.t;
  mutable fault_handler : (int -> bytes option) option;
  mutable faults : int;
  mutable dirty : (int, unit) Hashtbl.t option;
}

let create () =
  { pages = Hashtbl.create 256; fault_handler = None; faults = 0; dirty = None }

let set_fault_handler t h = t.fault_handler <- h
let fault_count t = t.faults

(* Dirty-page tracking (pre-copy rounds). One branch per write when
   disabled, so the interpreter hot path is untouched for legacy runs. *)
let track_dirty t on =
  t.dirty <- (if on then Some (Hashtbl.create 64) else None)

let tracking_dirty t = t.dirty <> None

let clear_dirty t =
  match t.dirty with None -> () | Some d -> Hashtbl.reset d

let dirty_pages t =
  match t.dirty with
  | None -> []
  | Some d ->
    let arr = Array.make (Hashtbl.length d) 0 in
    let i = ref 0 in
    Hashtbl.iter
      (fun pn () ->
        arr.(!i) <- pn;
        incr i)
      d;
    Array.sort Int.compare arr;
    Array.to_list arr

let mark_dirty t addr =
  match t.dirty with
  | None -> ()
  | Some d -> Hashtbl.replace d (Layout.page_of_addr addr) ()

let map_page t pn data =
  if Bytes.length data <> Layout.page_size then
    invalid_arg "Memory.map_page: wrong page size";
  (match t.dirty with
   | None -> ()
   | Some d -> Hashtbl.replace d pn ());
  Hashtbl.replace t.pages pn data

let unmap_page t pn = Hashtbl.remove t.pages pn
let is_mapped t pn = Hashtbl.mem t.pages pn

let page_numbers t =
  let arr = Array.make (Hashtbl.length t.pages) 0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun pn _ ->
      arr.(!i) <- pn;
      incr i)
    t.pages;
  Array.sort Int.compare arr;
  arr

let mapped_pages t = Array.to_list (page_numbers t)

let page_contents t pn = Hashtbl.find_opt t.pages pn

(* Resolve a page, consulting the fault handler for unmapped pages. *)
let page t addr =
  let pn = Layout.page_of_addr addr in
  match Hashtbl.find_opt t.pages pn with
  | Some p -> p
  | None ->
    (match t.fault_handler with
     | Some h ->
       (match h pn with
        | Some data ->
          if Bytes.length data <> Layout.page_size then
            invalid_arg "Memory: fault handler returned wrong page size";
          t.faults <- t.faults + 1;
          Hashtbl.replace t.pages pn data;
          data
        | None -> raise (Segfault addr))
     | None -> raise (Segfault addr))

let read_u8 t addr =
  let p = page t addr in
  Char.code (Bytes.get p (Layout.page_offset addr))

let write_u8 t addr v =
  let p = page t addr in
  mark_dirty t addr;
  Bytes.set p (Layout.page_offset addr) (Char.chr (v land 0xFF))

let read_u64 t addr =
  let off = Layout.page_offset addr in
  if off + 8 <= Layout.page_size then begin
    let p = page t addr in
    Bytes.get_int64_le p off
  end
  else begin
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8)
             (Int64.of_int (read_u8 t (Int64.add addr (Int64.of_int i))))
    done;
    !v
  end

let write_u64 t addr v =
  let off = Layout.page_offset addr in
  if off + 8 <= Layout.page_size then begin
    let p = page t addr in
    mark_dirty t addr;
    Bytes.set_int64_le p off v
  end
  else
    for i = 0 to 7 do
      write_u8 t
        (Int64.add addr (Int64.of_int i))
        (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF)
    done

let read_bytes t addr len =
  let b = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = Int64.add addr (Int64.of_int !pos) in
    let off = Layout.page_offset a in
    let chunk = min (len - !pos) (Layout.page_size - off) in
    let p = page t a in
    Bytes.blit p off b !pos chunk;
    pos := !pos + chunk
  done;
  Bytes.to_string b

let write_bytes t addr s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    let a = Int64.add addr (Int64.of_int !pos) in
    let off = Layout.page_offset a in
    let chunk = min (len - !pos) (Layout.page_size - off) in
    let p = page t a in
    mark_dirty t a;
    Bytes.blit_string s !pos p off chunk;
    pos := !pos + chunk
  done

let copy t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter (fun pn data -> Hashtbl.replace pages pn (Bytes.copy data)) t.pages;
  { pages; fault_handler = None; faults = 0; dirty = None }
