(** The architecture-independent intermediate representation.

    Programs (see {!Dapper_clite}) are lowered to this IR once; both
    backends then select machine code from the same IR, which is what
    guarantees that equivalence points, stack slots and live values
    correspond one-to-one across the two ISAs (the property Dapper's
    cross-architecture rewriting relies on, paper Section III-A).

    The representation is deliberately close to -O0 LLVM output: mutable
    named locals live in stack slots ([Slot_addr] + [Load]/[Store]);
    virtual registers are single-assignment temporaries. *)

open Dapper_isa

type ty = I64 | F64 | Ptr

val pp_ty : Format.formatter -> ty -> unit
val ty_equal : ty -> ty -> bool

type vreg = int
type label = int
type slot_id = int

type value =
  | Vreg of vreg
  | Imm of int64
  | Fimm of float
  | Global_addr of string  (** address of a global symbol *)
  | Func_addr of string    (** address of a function *)

type callee = Direct of string | Indirect of value

type instr =
  | Binop of Minstr.binop * vreg * value * value
  | Unop of Minstr.unop * vreg * value
  | Load of vreg * value            (** 64-bit load from address *)
  | Store of value * value          (** [Store (v, addr)] *)
  | Load8 of vreg * value           (** byte load, zero-extended *)
  | Store8 of value * value         (** byte store of the low 8 bits *)
  | Slot_addr of vreg * slot_id     (** address of a stack slot *)
  | Slot_load of vreg * slot_id     (** direct scalar read of a slot *)
  | Slot_store of value * slot_id   (** direct scalar write of a slot *)
  | Tls_addr of vreg * string       (** address of a thread-local variable *)
  | Call of vreg option * callee * value list

and terminator =
  | Ret of value option
  | Br of label
  | Cbr of value * label * label    (** branch on nonzero *)

type block = { blabel : label; instrs : instr list; term : terminator }

type slot = {
  sl_id : slot_id;
  sl_name : string;
  sl_size : int;          (** bytes, multiple of 8 *)
  sl_ty : ty;             (** element type: [Ptr] slots get stack-pointer fixup *)
  sl_addr_taken : bool;   (** if false and scalar, eligible for register promotion *)
}

type func = {
  fname : string;
  fparams : (string * ty) list;  (** each param is stored into its slot on entry *)
  fslots : slot list;            (** params first, in order *)
  fblocks : block array;         (** entry block is index 0 *)
  fvreg_tys : ty array;          (** type of each virtual register *)
}

type global = { g_name : string; g_size : int; g_init : string option }
type tls_var = { t_name : string; t_size : int }

type modul = {
  m_name : string;
  m_funcs : func list;
  m_globals : global list;
  m_tls : tls_var list;
}

val find_func : modul -> string -> func
val vreg_count : func -> int

(** Structural validation: labels in range, vregs defined before use on
    every path, slot ids well-formed, call targets resolvable, parameter
    counts within the 6-register calling convention. [externs] lists
    runtime-library functions (name, arity) that direct calls may target
    in addition to module functions. Returns the list of violations
    (empty means valid). *)
val validate : ?externs:(string * int) list -> modul -> string list

(** Per-equivalence-point virtual-register liveness.

    [liveness f] returns, for each block, the set of vregs live at the
    entry of each instruction, so the backend can record exactly the
    temporaries that survive across an equivalence point (the "live value
    records" of paper Fig. 4). Result: [live.(block).(instr_index)] is the
    list of vregs live immediately {e after} instruction [instr_index]
    executes. *)
val liveness : func -> vreg list array array

(** [block_live_in f] returns the vregs live at the entry of each block. *)
val block_live_in : func -> vreg list array

val pp_func : Format.formatter -> func -> unit
val pp_modul : Format.formatter -> modul -> unit
