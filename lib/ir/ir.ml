open Dapper_isa

type ty = I64 | F64 | Ptr

let pp_ty ppf t =
  Format.pp_print_string ppf (match t with I64 -> "i64" | F64 -> "f64" | Ptr -> "ptr")

let ty_equal (a : ty) b = a = b

type vreg = int
type label = int
type slot_id = int

type value =
  | Vreg of vreg
  | Imm of int64
  | Fimm of float
  | Global_addr of string
  | Func_addr of string

type callee = Direct of string | Indirect of value

type instr =
  | Binop of Minstr.binop * vreg * value * value
  | Unop of Minstr.unop * vreg * value
  | Load of vreg * value
  | Store of value * value
  | Load8 of vreg * value
  | Store8 of value * value
  | Slot_addr of vreg * slot_id
  | Slot_load of vreg * slot_id
  | Slot_store of value * slot_id
  | Tls_addr of vreg * string
  | Call of vreg option * callee * value list

and terminator =
  | Ret of value option
  | Br of label
  | Cbr of value * label * label

type block = { blabel : label; instrs : instr list; term : terminator }

type slot = {
  sl_id : slot_id;
  sl_name : string;
  sl_size : int;
  sl_ty : ty;
  sl_addr_taken : bool;
}

type func = {
  fname : string;
  fparams : (string * ty) list;
  fslots : slot list;
  fblocks : block array;
  fvreg_tys : ty array;
}

type global = { g_name : string; g_size : int; g_init : string option }
type tls_var = { t_name : string; t_size : int }

type modul = {
  m_name : string;
  m_funcs : func list;
  m_globals : global list;
  m_tls : tls_var list;
}

let find_func m name =
  match List.find_opt (fun f -> f.fname = name) m.m_funcs with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Ir.find_func: no function %S" name)

let vreg_count f = Array.length f.fvreg_tys

(* ----- validation ----- *)

let value_vregs = function
  | Vreg v -> [ v ]
  | Imm _ | Fimm _ | Global_addr _ | Func_addr _ -> []

let instr_uses = function
  | Binop (_, _, a, b) -> value_vregs a @ value_vregs b
  | Unop (_, _, a) -> value_vregs a
  | Load (_, a) | Load8 (_, a) -> value_vregs a
  | Store (v, a) | Store8 (v, a) -> value_vregs v @ value_vregs a
  | Slot_load _ -> []
  | Slot_store (v, _) -> value_vregs v
  | Slot_addr _ | Tls_addr _ -> []
  | Call (_, callee, args) ->
    let c = match callee with Direct _ -> [] | Indirect v -> value_vregs v in
    c @ List.concat_map value_vregs args

let instr_def = function
  | Binop (_, d, _, _) | Unop (_, d, _) | Load (d, _) | Load8 (d, _)
  | Slot_addr (d, _) | Slot_load (d, _) | Tls_addr (d, _) -> Some d
  | Store _ | Store8 _ | Slot_store _ -> None
  | Call (d, _, _) -> d

let term_uses = function
  | Ret (Some v) -> value_vregs v
  | Ret None -> []
  | Br _ -> []
  | Cbr (v, _, _) -> value_vregs v

let term_succs = function
  | Ret _ -> []
  | Br l -> [ l ]
  | Cbr (_, a, b) -> [ a; b ]

let max_params = 6

let validate ?(externs = []) m =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let func_names = List.map (fun f -> f.fname) m.m_funcs in
  let global_names = List.map (fun g -> g.g_name) m.m_globals in
  let tls_names = List.map (fun t -> t.t_name) m.m_tls in
  let check_func f =
    let nblocks = Array.length f.fblocks in
    let nvregs = Array.length f.fvreg_tys in
    let nslots = List.length f.fslots in
    if List.length f.fparams > max_params then
      err "%s: more than %d parameters" f.fname max_params;
    if nblocks = 0 then err "%s: no blocks" f.fname;
    List.iteri
      (fun i s ->
        if s.sl_id <> i then err "%s: slot %d has id %d" f.fname i s.sl_id;
        if s.sl_size <= 0 || s.sl_size mod 8 <> 0 then
          err "%s: slot %s size %d not a positive multiple of 8" f.fname s.sl_name s.sl_size)
      f.fslots;
    if List.length f.fparams > nslots then
      err "%s: fewer slots than parameters" f.fname;
    let check_value where = function
      | Vreg v when v < 0 || v >= nvregs -> err "%s/%s: vreg %d out of range" f.fname where v
      | Global_addr g when not (List.mem g global_names) ->
        err "%s/%s: unknown global %s" f.fname where g
      | Func_addr g when not (List.mem g func_names) ->
        err "%s/%s: unknown function %s" f.fname where g
      | Vreg _ | Imm _ | Fimm _ | Global_addr _ | Func_addr _ -> ()
    in
    Array.iteri
      (fun bi b ->
        if b.blabel <> bi then err "%s: block %d has label %d" f.fname bi b.blabel;
        List.iter
          (fun i ->
            List.iter (fun v -> check_value (string_of_int bi) (Vreg v)) (instr_uses i);
            (match instr_def i with
             | Some d when d < 0 || d >= nvregs ->
               err "%s/%d: def vreg %d out of range" f.fname bi d
             | Some _ | None -> ());
            match i with
            | Slot_addr (_, s) | Slot_load (_, s) | Slot_store (_, s)
              when s < 0 || s >= nslots ->
              err "%s/%d: slot id %d out of range" f.fname bi s
            | Tls_addr (_, t) when not (List.mem t tls_names) ->
              err "%s/%d: unknown tls var %s" f.fname bi t
            | Call (_, Direct callee, args) ->
              (match List.assoc_opt callee externs with
               | Some arity ->
                 if List.length args <> arity then
                   err "%s/%d: call to extern %s with %d args, expected %d" f.fname bi
                     callee (List.length args) arity
               | None ->
                 if not (List.mem callee func_names) then
                   err "%s/%d: call to unknown function %s" f.fname bi callee
                 else begin
                   let target = List.find (fun g -> g.fname = callee) m.m_funcs in
                   if List.length args <> List.length target.fparams then
                     err "%s/%d: call to %s with %d args, expected %d" f.fname bi callee
                       (List.length args) (List.length target.fparams)
                 end)
            | Call (_, Indirect v, args) ->
              check_value (string_of_int bi) v;
              if List.length args > max_params then
                err "%s/%d: indirect call with too many args" f.fname bi
            | Binop _ | Unop _ | Load _ | Store _ | Load8 _ | Store8 _
            | Slot_addr _ | Slot_load _ | Slot_store _ | Tls_addr _ -> ())
          b.instrs;
        List.iter (fun v -> check_value "term" (Vreg v)) (term_uses b.term);
        List.iter
          (fun l -> if l < 0 || l >= nblocks then err "%s/%d: branch to bad label %d" f.fname bi l)
          (term_succs b.term))
      f.fblocks
  in
  List.iter check_func m.m_funcs;
  let dup names kind =
    let sorted = List.sort compare names in
    let rec go = function
      | a :: b :: _ when a = b -> err "duplicate %s %S" kind a
      | _ :: rest -> go rest
      | [] -> ()
    in
    go sorted
  in
  dup func_names "function";
  dup global_names "global";
  dup tls_names "tls var";
  List.rev !errors

(* ----- liveness: classic backward dataflow over vregs ----- *)

module Iset = Set.Make (Int)

let liveness_sets f =
  let nblocks = Array.length f.fblocks in
  let live_in = Array.make nblocks Iset.empty in
  let live_out = Array.make nblocks Iset.empty in
  let block_transfer bi out =
    let b = f.fblocks.(bi) in
    let acc = List.fold_left (fun s v -> Iset.add v s) out (term_uses b.term) in
    List.fold_left
      (fun acc i ->
        let acc = match instr_def i with Some d -> Iset.remove d acc | None -> acc in
        List.fold_left (fun s v -> Iset.add v s) acc (instr_uses i))
      acc (List.rev b.instrs)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for bi = nblocks - 1 downto 0 do
      let out =
        List.fold_left
          (fun s succ -> Iset.union s live_in.(succ))
          Iset.empty
          (term_succs f.fblocks.(bi).term)
      in
      let inn = block_transfer bi out in
      if not (Iset.equal out live_out.(bi) && Iset.equal inn live_in.(bi)) then begin
        live_out.(bi) <- out;
        live_in.(bi) <- inn;
        changed := true
      end
    done
  done;
  (live_in, live_out)

let block_live_in f =
  let live_in, _ = liveness_sets f in
  Array.map Iset.elements live_in

let liveness f =
  let nblocks = Array.length f.fblocks in
  let _, live_out = liveness_sets f in
  (* Per-instruction live-after sets, walking each block backward. *)
  Array.init nblocks (fun bi ->
      let b = f.fblocks.(bi) in
      let n = List.length b.instrs in
      let result = Array.make n [] in
      let after_term = live_out.(bi) in
      let live = List.fold_left (fun s v -> Iset.add v s) after_term (term_uses b.term) in
      (* live is now the set live after the last instr *)
      let rec go idx live = function
        | [] -> ()
        | i :: rest ->
          result.(idx) <- Iset.elements live;
          let live = match instr_def i with Some d -> Iset.remove d live | None -> live in
          let live = List.fold_left (fun s v -> Iset.add v s) live (instr_uses i) in
          go (idx - 1) live rest
      in
      go (n - 1) live (List.rev b.instrs);
      result)

(* ----- pretty-printing ----- *)

let pp_value ppf = function
  | Vreg v -> Format.fprintf ppf "%%%d" v
  | Imm i -> Format.fprintf ppf "%Ld" i
  | Fimm f -> Format.fprintf ppf "%g" f
  | Global_addr g -> Format.fprintf ppf "@%s" g
  | Func_addr g -> Format.fprintf ppf "&%s" g

let pp_instr ppf = function
  | Binop (op, d, a, b) ->
    Format.fprintf ppf "%%%d = %s %a, %a" d (Minstr.binop_name op) pp_value a pp_value b
  | Unop (op, d, a) ->
    Format.fprintf ppf "%%%d = %s %a" d (Minstr.unop_name op) pp_value a
  | Load (d, a) -> Format.fprintf ppf "%%%d = load %a" d pp_value a
  | Store (v, a) -> Format.fprintf ppf "store %a -> %a" pp_value v pp_value a
  | Load8 (d, a) -> Format.fprintf ppf "%%%d = load8 %a" d pp_value a
  | Store8 (v, a) -> Format.fprintf ppf "store8 %a -> %a" pp_value v pp_value a
  | Slot_addr (d, s) -> Format.fprintf ppf "%%%d = slot_addr #%d" d s
  | Slot_load (d, s) -> Format.fprintf ppf "%%%d = slot_load #%d" d s
  | Slot_store (v, s) -> Format.fprintf ppf "slot_store %a -> #%d" pp_value v s
  | Tls_addr (d, t) -> Format.fprintf ppf "%%%d = tls_addr %s" d t
  | Call (d, callee, args) ->
    (match d with
     | Some d -> Format.fprintf ppf "%%%d = call " d
     | None -> Format.fprintf ppf "call ");
    (match callee with
     | Direct n -> Format.fprintf ppf "%s" n
     | Indirect v -> Format.fprintf ppf "*%a" pp_value v);
    Format.fprintf ppf "(";
    List.iteri
      (fun i a ->
        if i > 0 then Format.fprintf ppf ", ";
        pp_value ppf a)
      args;
    Format.fprintf ppf ")"

let pp_term ppf = function
  | Ret None -> Format.fprintf ppf "ret"
  | Ret (Some v) -> Format.fprintf ppf "ret %a" pp_value v
  | Br l -> Format.fprintf ppf "br L%d" l
  | Cbr (v, a, b) -> Format.fprintf ppf "cbr %a, L%d, L%d" pp_value v a b

let pp_func ppf f =
  Format.fprintf ppf "func %s(%s) {@." f.fname
    (String.concat ", " (List.map (fun (n, _) -> n) f.fparams));
  List.iter
    (fun s -> Format.fprintf ppf "  slot #%d %s : %a[%d]@." s.sl_id s.sl_name pp_ty s.sl_ty s.sl_size)
    f.fslots;
  Array.iter
    (fun b ->
      Format.fprintf ppf "L%d:@." b.blabel;
      List.iter (fun i -> Format.fprintf ppf "  %a@." pp_instr i) b.instrs;
      Format.fprintf ppf "  %a@." pp_term b.term)
    f.fblocks;
  Format.fprintf ppf "}@."

let pp_modul ppf m =
  List.iter (fun g -> Format.fprintf ppf "global %s[%d]@." g.g_name g.g_size) m.m_globals;
  List.iter (fun t -> Format.fprintf ppf "tls %s[%d]@." t.t_name t.t_size) m.m_tls;
  List.iter (pp_func ppf) m.m_funcs
