open Dapper_util

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  h_bounds : float array;        (* upper bucket bounds, strictly increasing *)
  h_counts : int array;          (* length = Array.length h_bounds + 1 *)
  mutable h_sum : float;
  mutable h_count : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

(* Registration order is preserved so dumps are stable across runs. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let order : string list ref = ref []

let register name m =
  match Hashtbl.find_opt registry name with
  | Some existing ->
    (match (existing, m) with
     | Counter _, Counter _ | Gauge _, Gauge _ | Histogram _, Histogram _ -> existing
     | _ -> invalid_arg (Printf.sprintf "Metrics: %s re-registered with another type" name))
  | None ->
    Hashtbl.add registry name m;
    order := name :: !order;
    m

let counter name =
  match register name (Counter { c_name = name; c_value = 0 }) with
  | Counter c -> c
  | _ -> assert false

let gauge name =
  match register name (Gauge { g_name = name; g_value = 0.0 }) with
  | Gauge g -> g
  | _ -> assert false

(* Millisecond-oriented default bounds: migrations span ~0.01 ms page
   fetches to multi-second fleet windows. *)
let default_bounds =
  [| 0.01; 0.05; 0.1; 0.5; 1.0; 5.0; 10.0; 50.0; 100.0; 500.0; 1000.0; 5000.0 |]

let histogram ?(bounds = default_bounds) name =
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Metrics.histogram: bounds not strictly increasing")
    bounds;
  match
    register name
      (Histogram
         { h_name = name; h_bounds = bounds;
           h_counts = Array.make (Array.length bounds + 1) 0;
           h_sum = 0.0; h_count = 0 })
  with
  | Histogram h -> h
  | _ -> assert false

let inc ?(by = 1) c = c.c_value <- c.c_value + by
let counter_value c = c.c_value
let counter_name c = c.c_name

let set g v = g.g_value <- v
let add g v = g.g_value <- g.g_value +. v
let gauge_value g = g.g_value
let gauge_name g = g.g_name

let bucket_of h v =
  let n = Array.length h.h_bounds in
  let rec go i = if i >= n || v <= h.h_bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  let i = bucket_of h v in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_count <- h.h_count + 1

let histogram_sum h = h.h_sum
let histogram_count h = h.h_count
let histogram_name h = h.h_name

(* Bucket-resolution quantile: the upper bound of the bucket holding the
   q-th observation (nearest-rank over cumulative counts). Coarse by
   construction — dashboards, not the sketch the traffic plane uses for
   CDFs — but deterministic and O(buckets). The overflow bucket reports
   the largest finite bound. *)
let histogram_quantile h q =
  if q < 0.0 || q > 1.0 then invalid_arg "Metrics.histogram_quantile: q outside [0,1]";
  if h.h_count = 0 then nan
  else begin
    let rank = int_of_float (ceil (q *. float_of_int h.h_count)) in
    let rank = max 1 rank in
    let n = Array.length h.h_bounds in
    let rec go i acc =
      if i >= n then (if n = 0 then infinity else h.h_bounds.(n - 1))
      else
        let acc = acc + h.h_counts.(i) in
        if acc >= rank then h.h_bounds.(i) else go (i + 1) acc
    in
    go 0 0
  end
let histogram_buckets h =
  List.init (Array.length h.h_counts) (fun i ->
      let bound = if i < Array.length h.h_bounds then h.h_bounds.(i) else infinity in
      (bound, h.h_counts.(i)))

let find name = Hashtbl.find_opt registry name

let names () = List.rev !order

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.0
      | Histogram h ->
        Array.fill h.h_counts 0 (Array.length h.h_counts) 0;
        h.h_sum <- 0.0;
        h.h_count <- 0)
    registry

let dump () =
  let b = Buffer.create 256 in
  List.iter
    (fun name ->
      match Hashtbl.find registry name with
      | Counter c -> Buffer.add_string b (Printf.sprintf "%-40s %d\n" name c.c_value)
      | Gauge g -> Buffer.add_string b (Printf.sprintf "%-40s %g\n" name g.g_value)
      | Histogram h ->
        Buffer.add_string b
          (Printf.sprintf "%-40s count=%d sum=%.3f\n" name h.h_count h.h_sum))
    (names ());
  Buffer.contents b

let to_json () =
  let entry name =
    match Hashtbl.find registry name with
    | Counter c ->
      Json.Obj
        [ ("name", Json.String name); ("type", Json.String "counter");
          ("value", Json.Int (Int64.of_int c.c_value)) ]
    | Gauge g ->
      Json.Obj
        [ ("name", Json.String name); ("type", Json.String "gauge");
          ("value", Json.Float g.g_value) ]
    | Histogram h ->
      Json.Obj
        [ ("name", Json.String name); ("type", Json.String "histogram");
          ("count", Json.Int (Int64.of_int h.h_count));
          ("sum", Json.Float h.h_sum);
          ("bounds", Json.List (Array.to_list (Array.map (fun b -> Json.Float b) h.h_bounds)));
          ("counts",
           Json.List
             (Array.to_list (Array.map (fun c -> Json.Int (Int64.of_int c)) h.h_counts))) ]
  in
  Json.List (List.map entry (names ()))
