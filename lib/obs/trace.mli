(** Structured tracing on the simulated clock.

    A trace is a stream of nested spans recorded by instrumentation
    threaded through the migration pipeline (session stages, transport
    transmits and retries, rewrite/recode, fleet quanta, chaos seeds).
    Timestamps come from a {e simulated} clock that advances only when
    instrumentation charges modeled nanoseconds ({!advance}) or a span
    closes with an explicit modeled duration ({!leave}[ ~dur_ns]) —
    never from the wall clock — so a trace is a deterministic, pure
    function of the work performed: two replays of the same seeded run
    export byte-identical traces.

    Tracing is off by default and every operation is a cheap no-op
    while disabled (one flag test); enable with {!start}, then export
    with {!export} (Chrome [trace_event] JSON, loadable in
    [chrome://tracing] / Perfetto) or {!flame_summary} (plain text).

    The sink is global and single-threaded, matching the simulator. *)

type phase = Begin | End

type event = {
  ev_phase : phase;
  ev_name : string;
  ev_cat : string;
  ev_ts_ns : float;  (** simulated-clock timestamp *)
  ev_args : (string * string) list;
}

(** Reset the sink and enable recording. *)
val start : unit -> unit

(** Disable recording, keeping the buffer for export. *)
val stop : unit -> unit

val enabled : unit -> bool

(** Clear the buffer and rewind the simulated clock to 0. *)
val reset : unit -> unit

(** Current simulated-clock position (ns). *)
val now_ns : unit -> float

(** Open a nested span at the current simulated time. *)
val enter : ?cat:string -> ?args:(string * string) list -> string -> unit

(** Charge [ns] of modeled time to the simulated clock (attributed to
    the innermost open span). Negative charges are ignored. *)
val advance : float -> unit

(** Close the innermost open span. With [~dur_ns], the span's modeled
    cost: the clock moves to at least [begin + dur_ns] (children that
    already charged more keep the clock — it never goes backwards).
    Raises [Invalid_argument] if no span is open (and tracing is on). *)
val leave : ?dur_ns:float -> ?args:(string * string) list -> unit -> unit

(** [leaf name ~dur_ns] = enter, advance, leave: a childless span of a
    known modeled cost. *)
val leaf :
  ?cat:string -> ?args:(string * string) list -> string -> dur_ns:float -> unit

(** [span name f] runs [f] inside a span, closing it even if [f]
    raises. *)
val span : ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** {2 Exception-safe spans with late duration/args}

    Manual {!enter}/{!leave} pairing leaks the open span when the
    instrumented code raises — the next [leave] then fails far from the
    real fault. [with_span] is the safe replacement for sites that only
    know the span's modeled duration or closing args at the end: the
    [closer] handle accumulates them ({!set_dur}, {!add_arg}) and the
    span closes exactly once on every exit path. If [f] raises, the span
    closes with an [("exception", ...)] arg appended and the exception
    is re-raised with its backtrace intact. *)

type closer

(** Set the span's modeled duration (ns), applied at close like
    {!leave}[ ~dur_ns]. Last call wins. *)
val set_dur : closer -> float -> unit

(** Append one closing arg (recorded on the span's End event, in call
    order). *)
val add_arg : closer -> string -> string -> unit

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (closer -> 'a) -> 'a

(** Recorded events, oldest first. *)
val events : unit -> event list

(** Number of spans currently open (0 in a well-formed finished trace). *)
val open_spans : unit -> int

(** The buffer as Chrome [trace_event] JSON (duration events, ts in
    microseconds). *)
val to_chrome_json : unit -> Dapper_util.Json.t

(** Write {!to_chrome_json} to [file]. *)
val export : file:string -> unit

(** Summed duration (ms) of every closed span called [name] (optionally
    restricted to category [cat]). *)
val total_ms : ?cat:string -> string -> float

(** Plain-text flame summary: per span name, count, total and self time
    in ms, sorted by total descending. *)
val flame_summary : unit -> string
