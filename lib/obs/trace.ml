open Dapper_util

type phase = Begin | End

type event = {
  ev_phase : phase;
  ev_name : string;
  ev_cat : string;
  ev_ts_ns : float;
  ev_args : (string * string) list;
}

(* One global sink. The clock is the *simulated* clock: it only moves
   when instrumentation charges modeled nanoseconds ([advance]) or a
   span closes with an explicit modeled duration ([leave ~dur_ns]), so
   a trace is a pure function of the work performed — two replays of
   the same seeded run serialize byte-identically. *)
type state = {
  mutable enabled : bool;
  mutable now_ns : float;
  mutable events : event list; (* newest first *)
  mutable stack : (string * string * float) list; (* name, cat, t0 *)
}

let st = { enabled = false; now_ns = 0.0; events = []; stack = [] }

let enabled () = st.enabled

let reset () =
  st.now_ns <- 0.0;
  st.events <- [];
  st.stack <- []

let start () =
  reset ();
  st.enabled <- true

let stop () = st.enabled <- false

let now_ns () = st.now_ns

let push phase name cat args =
  st.events <-
    { ev_phase = phase; ev_name = name; ev_cat = cat; ev_ts_ns = st.now_ns;
      ev_args = args }
    :: st.events

let enter ?(cat = "dapper") ?(args = []) name =
  if st.enabled then begin
    st.stack <- (name, cat, st.now_ns) :: st.stack;
    push Begin name cat args
  end

let advance ns =
  if st.enabled && ns > 0.0 then st.now_ns <- st.now_ns +. ns

let leave ?dur_ns ?(args = []) () =
  if st.enabled then
    match st.stack with
    | [] -> invalid_arg "Trace.leave: no open span"
    | (name, cat, t0) :: rest ->
      st.stack <- rest;
      (* An explicit duration is the span's modeled cost; children may
         already have advanced the clock past it (e.g. demand paging
         inside a fixed-cost lazy restore), so the clock never goes
         backwards. *)
      (match dur_ns with
       | Some d when t0 +. d > st.now_ns -> st.now_ns <- t0 +. d
       | _ -> ());
      push End name cat args

let leaf ?cat ?args name ~dur_ns =
  if st.enabled then begin
    enter ?cat ?args name;
    advance dur_ns;
    leave ()
  end

let span ?cat ?args name f =
  if not st.enabled then f ()
  else begin
    enter ?cat ?args name;
    Fun.protect ~finally:(fun () -> leave ()) f
  end

(* Exception-safe replacement for manual enter/leave pairing at sites
   that only know the span's modeled duration or closing args at the
   end: the closer accumulates them, and the span closes exactly once on
   every exit path. On an exception the span closes with an "exception"
   arg before re-raising, so the stack stays well-formed and the fault
   surfaces at the raise site, not as a later "no open span". *)
type closer = {
  mutable cl_dur_ns : float option;
  mutable cl_args : (string * string) list; (* newest first *)
}

let set_dur cl ns = cl.cl_dur_ns <- Some ns
let add_arg cl k v = cl.cl_args <- (k, v) :: cl.cl_args

let with_span ?cat ?args name f =
  let cl = { cl_dur_ns = None; cl_args = [] } in
  if not st.enabled then f cl
  else begin
    enter ?cat ?args name;
    match f cl with
    | v ->
      leave ?dur_ns:cl.cl_dur_ns ~args:(List.rev cl.cl_args) ();
      v
    | exception exn ->
      let bt = Printexc.get_raw_backtrace () in
      leave ?dur_ns:cl.cl_dur_ns
        ~args:(List.rev (("exception", Printexc.to_string exn) :: cl.cl_args))
        ();
      Printexc.raise_with_backtrace exn bt
  end

let events () = List.rev st.events
let open_spans () = List.length st.stack

let phase_char = function Begin -> "B" | End -> "E"

(* ----- Chrome trace_event export -----
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
   Duration (B/E) events on one pid/tid; timestamps in microseconds. *)

let to_chrome_json () =
  let ev e =
    let base =
      [ ("name", Json.String e.ev_name);
        ("cat", Json.String e.ev_cat);
        ("ph", Json.String (phase_char e.ev_phase));
        ("ts", Json.Float (e.ev_ts_ns /. 1e3));
        ("pid", Json.Int 1L);
        ("tid", Json.Int 1L) ]
    in
    let args =
      match e.ev_args with
      | [] -> []
      | kvs -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) kvs)) ]
    in
    Json.Obj (base @ args)
  in
  Json.Obj
    [ ("traceEvents", Json.List (List.map ev (events ())));
      ("displayTimeUnit", Json.String "ms") ]

let export ~file =
  let oc = open_out file in
  output_string oc (Json.to_string (to_chrome_json ()));
  output_char oc '\n';
  close_out oc

(* ----- aggregation ----- *)

(* Fold the event stream with a span stack, calling [f name cat total
   self] per closed span (total and self in ns). *)
let fold_spans f acc0 =
  let acc = ref acc0 in
  let stack = ref [] in
  List.iter
    (fun e ->
      match e.ev_phase with
      | Begin -> stack := (e.ev_name, e.ev_cat, e.ev_ts_ns, ref 0.0) :: !stack
      | End ->
        (match !stack with
         | (name, cat, t0, child_ns) :: rest ->
           let total = e.ev_ts_ns -. t0 in
           (match rest with
            | (_, _, _, parent_child) :: _ -> parent_child := !parent_child +. total
            | [] -> ());
           stack := rest;
           acc := f !acc name cat total (total -. !child_ns)
         | [] -> ()))
    (events ());
  !acc

let total_ms ?cat name =
  fold_spans
    (fun acc n c total _self ->
      if n = name && (match cat with None -> true | Some k -> k = c) then
        acc +. (total /. 1e6)
      else acc)
    0.0

(* Plain-text flame summary: per span name, invocation count, total and
   self time, sorted by total descending. *)
let flame_summary () =
  let tbl : (string * string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 32
  in
  fold_spans
    (fun () name cat total self ->
      let n, t, s =
        match Hashtbl.find_opt tbl (name, cat) with
        | Some r -> r
        | None ->
          let r = (ref 0, ref 0.0, ref 0.0) in
          Hashtbl.add tbl (name, cat) r;
          r
      in
      incr n;
      t := !t +. total;
      s := !s +. self)
    ();
  let rows =
    Hashtbl.fold
      (fun (name, cat) (n, t, s) acc -> (name, cat, !n, !t /. 1e6, !s /. 1e6) :: acc)
      tbl []
    |> List.sort (fun (an, _, _, at, _) (bn, _, _, bt, _) ->
           match compare bt at with 0 -> compare an bn | c -> c)
  in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%-28s %-10s %8s %12s %12s\n" "span" "cat" "count" "total-ms"
       "self-ms");
  List.iter
    (fun (name, cat, n, total, self) ->
      Buffer.add_string b
        (Printf.sprintf "%-28s %-10s %8d %12.3f %12.3f\n" name cat n total self))
    rows;
  Buffer.contents b
