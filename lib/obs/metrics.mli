(** A process-wide metrics registry: named counters, gauges and
    fixed-bucket histograms.

    This is the accounting plane behind the pipeline's cost reporting:
    {!Transport}-level transfer/retry counters, per-stage session cost
    histograms, rewrite work counters and fleet eviction counters all
    land here, replacing scattered ad-hoc tallies as the aggregate
    source of truth. The legacy per-session records ([Rewrite.stats],
    [Transport.tx_stats], fleet [stats]) remain as thin per-run views —
    their reports are byte-identical — while the registry accumulates
    across runs (reset with {!reset}).

    Like {!Trace}, every recorded value derives from the simulated
    cost model, never the wall clock, so metrics are replayable: the
    same seeded run always produces the same registry contents.

    Metrics are registered on first use; re-requesting a name returns
    the same metric (re-registering a name as a different type raises
    [Invalid_argument]). Registration order is preserved in {!names},
    {!dump} and {!to_json} so outputs are stable. *)

type counter
type gauge
type histogram

(** Get or create. *)
val counter : string -> counter

val gauge : string -> gauge

(** [histogram name] with millisecond-oriented default [bounds]
    (upper bucket bounds, strictly increasing; one overflow bucket is
    added past the last bound). *)
val histogram : ?bounds:float array -> string -> histogram

val default_bounds : float array

val inc : ?by:int -> counter -> unit
val counter_value : counter -> int
val counter_name : counter -> string

val set : gauge -> float -> unit
val add : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_name : gauge -> string

val observe : histogram -> float -> unit
val histogram_sum : histogram -> float
val histogram_count : histogram -> int
val histogram_name : histogram -> string

(** [(upper_bound, count)] per bucket, ending with the [infinity]
    overflow bucket. *)
val histogram_buckets : histogram -> (float * int) list

(** [histogram_quantile h q] is the upper bound of the bucket holding
    the [q]-th observation (nearest-rank over cumulative counts) —
    bucket-resolution, for dashboards; the traffic plane's CDFs use the
    dedicated quantile sketch instead. [nan] on an empty histogram;
    observations past the last bound report the largest finite bound.
    Raises [Invalid_argument] if [q] is outside [0, 1]. *)
val histogram_quantile : histogram -> float -> float

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

val find : string -> metric option

(** Registered names, in registration order. *)
val names : unit -> string list

(** Zero every metric's value (registrations persist). *)
val reset : unit -> unit

(** Plain-text table of every metric. *)
val dump : unit -> string

val to_json : unit -> Dapper_util.Json.t
