(** Per-rack page-server pools: the source-side capacity limit on
    concurrent migrations.

    A live migration streams pages from a page server in the
    destination's rack. Each rack runs a small fixed pool of servers;
    a migration acquires the earliest-free one and occupies it for the
    transfer's duration, so racks under migration pressure queue — the
    returned completion time includes any wait. This models the
    paper's observation that migration cost is dominated by state
    transfer: at fleet scale the transfer capacity, not the CPU, is
    the contended resource.

    Acquisition is deterministic (earliest-free server, lowest index
    on ties), so simulated fleets replay identically. *)

type t

(** [create ~racks ~servers_each] is a fleet of [racks] pools, each
    with [servers_each] page servers, all free at time 0. Raises
    [Invalid_argument] unless both are positive. *)
val create : racks:int -> servers_each:int -> t

val racks : t -> int
val servers_each : t -> int

(** Static node-to-rack striping: [node mod racks]. *)
val rack_of_node : racks:int -> node:int -> int

(** [acquire t ~rack ~now_ms ~service_ms] books the earliest-free page
    server in [rack] for a transfer of [service_ms], starting no
    earlier than [now_ms], and returns the completion time
    [max now_ms free_at +. service_ms]. *)
val acquire : t -> rack:int -> now_ms:float -> service_ms:float -> float

(** Like {!acquire}, also returning the time the transfer spent queued
    behind busy servers ([start -. now_ms]) — the live-traffic plane
    charges this wait to the faulting request. *)
val acquire_wait :
  t -> rack:int -> now_ms:float -> service_ms:float -> float * float

(** How long a transfer starting at [now_ms] would wait for a page
    server in [rack] — a placement estimate; books nothing. *)
val wait_ms : t -> rack:int -> now_ms:float -> float

(** Transfers served since [create]. *)
val served : t -> int

(** Total time transfers spent queued behind busy page servers. *)
val queue_delay_ms : t -> float
