(** Simulated machine nodes and their cost/power models.

    Calibrated against the paper's testbed: an Intel Xeon E5-2620 v4
    server (8 cores @ 2.1 GHz, 108 W observed at 7 busy threads) and
    Raspberry Pi 4 boards (4x Cortex-A72 @ 1.5 GHz, 5.1 W at 3 busy
    threads). Execution time converts simulator instruction counts to
    nanoseconds through [ops_per_ns]. *)

open Dapper_isa

type t = {
  n_name : string;
  n_arch : Arch.t;
  n_cores : int;
  n_ops_per_ns : float;      (** effective instructions per nanosecond per core *)
  n_mem_gbps : float;        (** effective checkpoint/restore memory bandwidth *)
  n_idle_w : float;
  n_core_w : float;          (** additional watts per busy core *)
}

val xeon : t
val rpi : t

(** Faster slow-tier classes for heterogeneous, datacenter-scale
    sweeps: a Raspberry Pi 5 (~1.5x the Pi 4's speed at a slightly
    worse watts-per-speed) and a Jetson-class board (fastest of the
    three, least efficient per unit of work). *)
val rpi5 : t

val jetson : t

(** Nanoseconds to execute [instrs] simulator instructions on one core. *)
val exec_ns : t -> int64 -> float

(** Average power drawn with [busy] cores active. *)
val power_w : t -> busy:int -> float

(** Time to stream [bytes] through the node's memory system. *)
val mem_ns : t -> int -> float
