type 'a t = {
  q_shards : 'a Queue.t array;
  mutable q_len : int;
  mutable q_steals : int;
}

let create ~shards items =
  if shards <= 0 then invalid_arg "Shard_queue.create: shards must be positive";
  let t =
    { q_shards = Array.init shards (fun _ -> Queue.create ());
      q_len = 0;
      q_steals = 0 }
  in
  List.iteri (fun i x -> Queue.push x t.q_shards.(i mod shards)) items;
  t.q_len <- List.length items;
  t

let shards t = Array.length t.q_shards
let length t = t.q_len
let steals t = t.q_steals
let is_empty t = t.q_len = 0

let check_shard t shard =
  if shard < 0 || shard >= Array.length t.q_shards then
    invalid_arg "Shard_queue: shard out of range"

let push t ~shard x =
  check_shard t shard;
  Queue.push x t.q_shards.(shard);
  t.q_len <- t.q_len + 1

(* Pop from the home shard; when it is dry, steal from the next
   non-empty shard scanning [shard+1, shard+2, ...] cyclically — a
   fixed scan order, so identical runs steal identically. *)
let pop t ~shard =
  check_shard t shard;
  let n = Array.length t.q_shards in
  let rec scan i =
    if i = n then None
    else
      let s = (shard + i) mod n in
      match Queue.take_opt t.q_shards.(s) with
      | Some x ->
        t.q_len <- t.q_len - 1;
        if i > 0 then t.q_steals <- t.q_steals + 1;
        Some x
      | None -> scan (i + 1)
  in
  scan 0

(* Same scan as [pop], removing nothing: what [pop ~shard] would return. *)
let peek t ~shard =
  check_shard t shard;
  let n = Array.length t.q_shards in
  let rec scan i =
    if i = n then None
    else
      match Queue.peek_opt t.q_shards.((shard + i) mod n) with
      | Some x -> Some x
      | None -> scan (i + 1)
  in
  scan 0
