(** A sharded FIFO job queue with deterministic work-stealing.

    One global queue becomes a serialization point in a fleet engine
    dispatching from thousands of slots; sharding lets each dispatcher
    work against its home shard and only look sideways when that shard
    runs dry. [create] deals the initial items round-robin across
    shards, so global FIFO order is preserved per shard and the
    interleaving across shards is the classic round-robin hand-out.

    Everything is deterministic: a dry home shard steals from the
    first non-empty shard scanning [shard+1, shard+2, ...] cyclically,
    so two runs of the same configuration pop identical sequences. *)

type 'a t

(** [create ~shards items] deals [items] round-robin over [shards]
    queues (item [i] lands in shard [i mod shards]). Raises
    [Invalid_argument] if [shards <= 0]. *)
val create : shards:int -> 'a list -> 'a t

val shards : 'a t -> int

(** Total items currently queued, across all shards. *)
val length : 'a t -> int

val is_empty : 'a t -> bool

(** Enqueue to the back of one shard. *)
val push : 'a t -> shard:int -> 'a -> unit

(** [pop t ~shard] takes the front of [shard], stealing from the next
    non-empty shard in cyclic scan order when it is empty; [None] only
    when every shard is dry. *)
val pop : 'a t -> shard:int -> 'a option

(** What [pop t ~shard] would return, removing nothing — lets a
    dispatcher inspect the next job before committing to a placement. *)
val peek : 'a t -> shard:int -> 'a option

(** Number of pops served by a steal rather than the home shard. *)
val steals : 'a t -> int
