type t = {
  l_name : string;
  l_bandwidth_mbps : float;
  l_latency_us : float;
}

let infiniband = { l_name = "infiniband"; l_bandwidth_mbps = 1200.0; l_latency_us = 30.0 }
let gigabit = { l_name = "gigabit"; l_bandwidth_mbps = 110.0; l_latency_us = 200.0 }

let transfer_ns l bytes =
  (l.l_latency_us *. 1e3) +. (float_of_int bytes /. (l.l_bandwidth_mbps *. 1e6) *. 1e9)

let page_fetch_ns l bytes =
  (* request + response round trip, latency-dominated for single pages *)
  (2.0 *. l.l_latency_us *. 1e3)
  +. (float_of_int bytes /. (l.l_bandwidth_mbps *. 1e6) *. 1e9)
