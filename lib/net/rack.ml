type t = {
  r_servers_each : int;
  r_busy_until : float array array;  (* per rack, per page server *)
  mutable r_served : int;
  mutable r_queue_delay_ms : float;
}

let create ~racks ~servers_each =
  if racks <= 0 || servers_each <= 0 then
    invalid_arg "Rack.create: racks and servers_each must be positive";
  { r_servers_each = servers_each;
    r_busy_until = Array.init racks (fun _ -> Array.make servers_each 0.0);
    r_served = 0;
    r_queue_delay_ms = 0.0 }

let racks t = Array.length t.r_busy_until
let servers_each t = t.r_servers_each
let served t = t.r_served
let queue_delay_ms t = t.r_queue_delay_ms

let rack_of_node ~racks ~node =
  if racks <= 0 then invalid_arg "Rack.rack_of_node: racks must be positive";
  node mod racks

(* Earliest-free page server in the rack, lowest index on ties: the
   same first-minimum scan every engine in this codebase uses, so
   acquisition order is deterministic. *)
let earliest_free t rack =
  let servers = t.r_busy_until.(rack) in
  let best = ref 0 in
  for i = 1 to t.r_servers_each - 1 do
    if servers.(i) < servers.(!best) then best := i
  done;
  !best

let wait_ms t ~rack ~now_ms =
  if rack < 0 || rack >= Array.length t.r_busy_until then
    invalid_arg "Rack.wait_ms: rack out of range";
  Float.max 0.0 (t.r_busy_until.(rack).(earliest_free t rack) -. now_ms)

let acquire_wait t ~rack ~now_ms ~service_ms =
  if rack < 0 || rack >= Array.length t.r_busy_until then
    invalid_arg "Rack.acquire: rack out of range";
  if service_ms < 0.0 then invalid_arg "Rack.acquire: negative service time";
  let servers = t.r_busy_until.(rack) in
  let best = earliest_free t rack in
  let start_ms = Float.max now_ms servers.(best) in
  let finish_ms = start_ms +. service_ms in
  servers.(best) <- finish_ms;
  t.r_served <- t.r_served + 1;
  t.r_queue_delay_ms <- t.r_queue_delay_ms +. (start_ms -. now_ms);
  (finish_ms, start_ms -. now_ms)

let acquire t ~rack ~now_ms ~service_ms =
  fst (acquire_wait t ~rack ~now_ms ~service_ms)
