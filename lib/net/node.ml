open Dapper_isa

type t = {
  n_name : string;
  n_arch : Arch.t;
  n_cores : int;
  n_ops_per_ns : float;
  n_mem_gbps : float;
  n_idle_w : float;
  n_core_w : float;
}

(* 108 W at 7 busy threads -> ~20 W idle + 12.5 W/core;
   5.1 W at 3 busy threads -> ~2.1 W idle + 1.0 W/core. *)
let xeon =
  { n_name = "xeon"; n_arch = Arch.X86_64; n_cores = 8; n_ops_per_ns = 4.2;
    n_mem_gbps = 0.5; n_idle_w = 20.5; n_core_w = 12.5 }

let rpi =
  { n_name = "rpi"; n_arch = Arch.Aarch64; n_cores = 4; n_ops_per_ns = 1.5;
    n_mem_gbps = 0.12; n_idle_w = 2.1; n_core_w = 1.0 }

(* Heterogeneous slow-tier classes for datacenter-scale sweeps. The
   Pi 5 (4x Cortex-A76 @ 2.4 GHz) trades a little efficiency for ~1.5x
   the Pi 4's speed; the Jetson-class board is faster still but its DVFS
   floor makes it the least efficient of the three per unit of work. *)
let rpi5 =
  { n_name = "rpi5"; n_arch = Arch.Aarch64; n_cores = 4; n_ops_per_ns = 2.2;
    n_mem_gbps = 0.2; n_idle_w = 3.0; n_core_w = 1.6 }

let jetson =
  { n_name = "jetson"; n_arch = Arch.Aarch64; n_cores = 6; n_ops_per_ns = 3.0;
    n_mem_gbps = 0.3; n_idle_w = 5.0; n_core_w = 2.8 }

let exec_ns n instrs = Int64.to_float instrs /. n.n_ops_per_ns

let power_w n ~busy = n.n_idle_w +. (float_of_int (min busy n.n_cores) *. n.n_core_w)

let mem_ns n bytes = float_of_int bytes /. n.n_mem_gbps
