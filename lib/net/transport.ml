open Dapper_util
module Trace = Dapper_obs.Trace
module Metrics = Dapper_obs.Metrics

type page_stats = {
  mutable srv_pages : int;
  mutable srv_ns : float;
  mutable srv_retransmits : int;
  mutable srv_backoff_ns : float;
}

type tx_stats = {
  mutable tx_attempts : int;
  mutable tx_retransmits : int;
  mutable tx_corrupt : int;
  mutable tx_dropped : int;
  mutable tx_fault_ns : float;
  mutable tx_backoff_ns : float;
}

(* Fleet-wide accounting plane; the per-session records above are thin
   per-run views over the same events. *)
let m_tx_attempts = Metrics.counter "transport.tx.attempts"
let m_tx_retransmits = Metrics.counter "transport.tx.retransmits"
let m_tx_corrupt = Metrics.counter "transport.tx.corrupt"
let m_tx_dropped = Metrics.counter "transport.tx.dropped"
let m_tx_fault_ms = Metrics.gauge "transport.tx.fault_ms"
let m_tx_backoff_ms = Metrics.gauge "transport.tx.backoff_ms"
let m_pages_served = Metrics.counter "transport.page.served"
let m_page_retransmits = Metrics.counter "transport.page.retransmits"
let m_page_fetch_ms = Metrics.histogram "transport.page.fetch_ms"

type retry = {
  r_attempts : int;
  r_backoff_ns : float;
  r_multiplier : float;
  r_jitter : Rng.t option;
}

type kind = Scp | Page_server

type t = {
  t_kind : kind;
  t_link : Link.t;
  t_name : string;
  t_cost_factor : float;  (* >= 1.0; congestion/retransmission multiplier *)
  t_retry : retry option;
}

let scp link =
  { t_kind = Scp; t_link = link; t_name = "scp/" ^ link.Link.l_name;
    t_cost_factor = 1.0; t_retry = None }

let page_server link =
  { t_kind = Page_server; t_link = link;
    t_name = "page-server/" ^ link.Link.l_name; t_cost_factor = 1.0;
    t_retry = None }

let degraded ~factor t =
  if factor < 1.0 then invalid_arg "Transport.degraded: factor < 1.0";
  { t with
    t_name = Printf.sprintf "%s (degraded x%g)" t.t_name factor;
    t_cost_factor = t.t_cost_factor *. factor }

let retrying ?(attempts = 4) ?(backoff_ns = 2.0e6) ?(multiplier = 2.0) ?jitter t =
  if attempts < 1 then invalid_arg "Transport.retrying: attempts < 1";
  if multiplier < 1.0 then invalid_arg "Transport.retrying: multiplier < 1.0";
  { t with
    t_name = Printf.sprintf "retrying[%d](%s)" attempts t.t_name;
    t_retry = Some { r_attempts = attempts; r_backoff_ns = backoff_ns;
                     r_multiplier = multiplier;
                     r_jitter = Option.map Rng.create jitter } }

let name t = t.t_name
let link t = t.t_link
let is_lazy t = t.t_kind = Page_server

let attempts t = match t.t_retry with Some r -> r.r_attempts | None -> 1

(* Backoff before retry number [k] (0-based over failed attempts), on
   the deterministic simulated clock: the delay is charged as latency,
   never slept. With a jitter stream armed, the exponential envelope is
   decorrelated by a seeded factor in [0.5, 1.5) — each call draws once,
   so the schedule is replayable from the seed but two transports with
   different seeds never resynchronize their retries. *)
let backoff_ns t k =
  match t.t_retry with
  | None -> 0.0
  | Some r ->
    let base = r.r_backoff_ns *. (r.r_multiplier ** float_of_int k) in
    (match r.r_jitter with
     | None -> base
     | Some rng -> base *. (0.5 +. Rng.float rng))

(* Total backoff charged by a jitter-free policy that failed [failures]
   times and retried after each failure but the last: the closed-form
   geometric sum [sum_{k=0}^{failures-2} backoff * mult^k] (no backoff
   follows the final attempt). Computed directly — not via {!backoff_ns},
   which would advance a jitter stream — so with jitter armed this is
   the deterministic *envelope center*: actual charged backoff lies in
   [0.5, 1.5) times this value. *)
let total_backoff_ns t ~failures =
  match t.t_retry with
  | None -> 0.0
  | Some r ->
    let rec go k acc =
      if k >= failures - 1 then acc
      else go (k + 1) (acc +. (r.r_backoff_ns *. (r.r_multiplier ** float_of_int k)))
    in
    if failures <= 1 then 0.0 else go 0 0.0

let transfer_ns t bytes = Link.transfer_ns t.t_link bytes *. t.t_cost_factor
let page_fetch_ns t bytes = Link.page_fetch_ns t.t_link bytes *. t.t_cost_factor

let fresh_page_stats () =
  { srv_pages = 0; srv_ns = 0.0; srv_retransmits = 0; srv_backoff_ns = 0.0 }

let fresh_tx_stats () =
  { tx_attempts = 0; tx_retransmits = 0; tx_corrupt = 0; tx_dropped = 0;
    tx_fault_ns = 0.0; tx_backoff_ns = 0.0 }

let serve_pages t stats ~page_bytes fetch =
  if not (is_lazy t) then invalid_arg "Transport.serve_pages: not a lazy transport";
  fun pn ->
    match fetch pn with
    | None -> None
    | Some data ->
      let ns = page_fetch_ns t page_bytes in
      stats.srv_pages <- stats.srv_pages + 1;
      stats.srv_ns <- stats.srv_ns +. ns;
      Metrics.inc m_pages_served;
      Metrics.observe m_page_fetch_ms (ns /. 1e6);
      Trace.leaf ~cat:"transport" "page-serve"
        ~args:[ ("page", string_of_int pn) ] ~dur_ns:ns;
      Some data

(* Cost-only sample of one demand page fetch under the fault plane: the
   round trips, injected delays and retry backoff {!fetch_page} would
   charge, without touching page contents. The live-traffic plane uses
   this to charge millions of per-request stalls without building
   images. Corrupt draws are counted as retransmissions (the cost model
   ignores the empty-payload lucky case), drops and corruptions past the
   attempt bound still cost their final round trip. Deterministic for a
   given fault schedule position. *)
let fetch_stall_ns t ?fault ~page_bytes () =
  if not (is_lazy t) then invalid_arg "Transport.fetch_stall_ns: not a lazy transport";
  let max_attempts = attempts t in
  let base = page_fetch_ns t page_bytes in
  let rec go k acc =
    let acc = acc +. base in
    match Option.bind fault (fun f -> Fault.draw f Fault.Page_fetch) with
    | Some (Fault.Drop | Fault.Corrupt _) when k + 1 < max_attempts ->
      go (k + 1) (acc +. backoff_ns t k)
    | Some (Fault.Drop | Fault.Corrupt _) -> acc
    | Some (Fault.Delay ns) -> acc +. ns
    | Some Fault.Crash | None -> acc
  in
  go 0 0.0

(* ----- checksummed transmission under the fault plane ----- *)

(* One attempt at moving the named image files: every file is
   individually exposed to the fault plane (drop a chunk mid-image,
   corrupt bytes in flight, add latency), then verified against the
   sender-side FNV-1a manifest. *)
type attempt_outcome =
  | Delivered of (string * string) list
  | Lost of string         (* dropped mid-image *)
  | Damaged of string      (* checksum mismatch on arrival *)

let transmit_once ?fault ~stats ~manifest files cost =
  let dropped = ref None in
  let received =
    List.map
      (fun (name, data) ->
        match Option.bind fault (fun f -> Fault.draw f Fault.Transfer_chunk) with
        | Some Fault.Drop ->
          if !dropped = None then dropped := Some name;
          (name, data)
        | Some (Fault.Corrupt salt) ->
          let b = Bytes.of_string data in
          Fault.corrupt_byte salt b;
          (name, Bytes.to_string b)
        | Some (Fault.Delay ns) ->
          stats.tx_fault_ns <- stats.tx_fault_ns +. ns;
          Metrics.add m_tx_fault_ms (ns /. 1e6);
          Trace.advance ns;
          cost := !cost +. ns;
          (name, data)
        | Some Fault.Crash | None -> (name, data))
      files
  in
  match !dropped with
  | Some name ->
    stats.tx_dropped <- stats.tx_dropped + 1;
    Metrics.inc m_tx_dropped;
    Lost name
  | None ->
    let damaged =
      List.find_opt
        (fun (name, data) -> List.assoc name manifest <> Bytebuf.fnv64 data)
        received
    in
    (match damaged with
     | Some (name, _) ->
       stats.tx_corrupt <- stats.tx_corrupt + 1;
       Metrics.inc m_tx_corrupt;
       Damaged name
     | None -> Delivered received)

let outcome_tag = function
  | Delivered _ -> "delivered"
  | Lost _ -> "lost"
  | Damaged _ -> "damaged"

let transmit t ?fault ~stats ~bytes files =
  let manifest = List.map (fun (name, data) -> (name, Bytebuf.fnv64 data)) files in
  let cost = ref 0.0 in
  let max_attempts = attempts t in
  let rec go k =
    stats.tx_attempts <- stats.tx_attempts + 1;
    Metrics.inc m_tx_attempts;
    let outcome =
      Trace.with_span ~cat:"transport" "tx-attempt"
        ~args:[ ("attempt", string_of_int (k + 1)) ]
        (fun cl ->
          cost := !cost +. transfer_ns t bytes;
          Trace.advance (transfer_ns t bytes);
          let outcome = transmit_once ?fault ~stats ~manifest files cost in
          Trace.add_arg cl "outcome" (outcome_tag outcome);
          outcome)
    in
    match outcome with
    | Delivered received -> Ok (received, !cost)
    | (Lost _ | Damaged _) as failed ->
      (* Backoff precedes a retry; when no retry will follow (attempts
         exhausted), no backoff is charged — the failed transfer
         surfaces immediately. *)
      if k + 1 < max_attempts then begin
        stats.tx_retransmits <- stats.tx_retransmits + 1;
        Metrics.inc m_tx_retransmits;
        let b = backoff_ns t k in
        stats.tx_backoff_ns <- stats.tx_backoff_ns +. b;
        Metrics.add m_tx_backoff_ms (b /. 1e6);
        cost := !cost +. b;
        Trace.leaf ~cat:"transport" "tx-backoff"
          ~args:[ ("retry", string_of_int (k + 1)) ] ~dur_ns:b;
        go (k + 1)
      end
      else
        Error
          (match failed with
           | Lost name when max_attempts > 1 ->
             Dapper_error.Transfer_timeout
               (Printf.sprintf "image transfer dropped at %s; %d attempts exhausted on %s"
                  name max_attempts t.t_name)
           | Lost name ->
             Dapper_error.Transfer_timeout
               (Printf.sprintf "image transfer dropped at %s on %s" name t.t_name)
           | Damaged name when max_attempts > 1 ->
             Dapper_error.Transfer_timeout
               (Printf.sprintf "%s failed its checksum; %d attempts exhausted on %s"
                  name max_attempts t.t_name)
           | Damaged name ->
             Dapper_error.Checksum_mismatch
               (Printf.sprintf "%s corrupted in flight on %s" name t.t_name)
           | Delivered _ -> assert false)
  in
  go 0

(* ----- chunked producer/consumer pipelining ----- *)

type chunk = {
  ck_index : int;
  ck_bytes : int;
  ck_ready_ns : float;
  ck_start_ns : float;
  ck_tx_ns : float;
}

type pipe_stats = {
  pp_chunks : int;
  pp_recode_ns : float;
  pp_wire_ns : float;
  pp_stall_ns : float;
  pp_makespan_ns : float;
  pp_exposed_ns : float;
  pp_hidden_ns : float;
  pp_schedule : chunk list;
}

let m_pipe_chunks = Metrics.counter "transport.pipe.chunks"
let m_pipe_hidden_ms = Metrics.gauge "transport.pipe.hidden_ms"
let m_pipe_stall_ms = Metrics.gauge "transport.pipe.stall_ms"

(* The overlap cost model: recode produces the image in [chunk_bytes]
   slices (each slice's share of the total [recode_ns] is proportional
   to its bytes) and the wire consumes them as they become ready —
   classic two-stage pipeline makespan:

     ready_i = sum of slice recode times 1..i
     start_i = max(ready_i, wire free time)
     wire    = start_i + per-chunk transfer cost

   Per-chunk transfer cost includes the link's per-transfer latency, so
   chunking is not free — the latency overhead is the price of overlap
   and the model exposes it honestly. With a single chunk the recurrence
   degenerates to [recode_ns + transfer_ns t bytes]: exactly the
   sequential pipeline. *)
let pipeline_schedule t ~bytes ~chunk_bytes ~recode_ns =
  if bytes < 0 then invalid_arg "Transport.pipeline_schedule: bytes < 0";
  if chunk_bytes < 1 then invalid_arg "Transport.pipeline_schedule: chunk_bytes < 1";
  if recode_ns < 0.0 then invalid_arg "Transport.pipeline_schedule: recode_ns < 0";
  let n = max 1 ((bytes + chunk_bytes - 1) / chunk_bytes) in
  let chunk_size k =
    if k < n - 1 then chunk_bytes else max 0 (bytes - (chunk_bytes * (n - 1)))
  in
  let total = float_of_int (max bytes 1) in
  let ready = ref 0.0 and wire_free = ref 0.0 and wire_busy = ref 0.0 in
  let sched = ref [] in
  for k = 0 to n - 1 do
    let b = chunk_size k in
    ready := !ready +. (recode_ns *. (float_of_int b /. total));
    let tx = transfer_ns t b in
    let start = Float.max !ready !wire_free in
    wire_free := start +. tx;
    wire_busy := !wire_busy +. tx;
    sched :=
      { ck_index = k; ck_bytes = b; ck_ready_ns = !ready; ck_start_ns = start;
        ck_tx_ns = tx }
      :: !sched
  done;
  let makespan = !wire_free in
  let exposed = makespan -. recode_ns in
  { pp_chunks = n;
    pp_recode_ns = recode_ns;
    pp_wire_ns = !wire_busy;
    pp_stall_ns = makespan -. !wire_busy;
    pp_makespan_ns = makespan;
    pp_exposed_ns = exposed;
    pp_hidden_ns = recode_ns +. !wire_busy -. makespan;
    pp_schedule = List.rev !sched }

(* Pipelined transmit: the same wire semantics as {!transmit} (faults,
   checksums, bounded retransmission — 2PC rollback on failure is
   untouched), but the returned cost is the transfer time left exposed
   once recode is overlapped under it. Fault delays and retransmissions
   are charged on top of the exposed time: they occur on a wire whose
   producer has already finished, so nothing hides them. Chunk spans are
   zero-duration markers (the modeled times ride in the args) so the
   trace clock is still charged exactly once, by the wire attempts. *)
let transmit_pipelined t ?fault ~stats ~bytes ~chunk_bytes ~recode_ns files =
  let sched = pipeline_schedule t ~bytes ~chunk_bytes ~recode_ns in
  if Trace.enabled () then
    List.iter
      (fun c ->
        Trace.leaf ~cat:"transport" "tx-chunk"
          ~args:
            [ ("chunk", string_of_int c.ck_index);
              ("bytes", string_of_int c.ck_bytes);
              ("ready_ms", Printf.sprintf "%.3f" (c.ck_ready_ns /. 1e6));
              ("start_ms", Printf.sprintf "%.3f" (c.ck_start_ns /. 1e6));
              ("tx_ms", Printf.sprintf "%.3f" (c.ck_tx_ns /. 1e6)) ]
          ~dur_ns:0.0)
      sched.pp_schedule;
  match transmit t ?fault ~stats ~bytes files with
  | Error _ as e -> e
  | Ok (received, actual_ns) ->
    (* surcharge over a clean single-attempt wire: injected delays,
       backoff, extra attempts *)
    let extra = Float.max 0.0 (actual_ns -. transfer_ns t bytes) in
    Metrics.inc m_pipe_chunks ~by:sched.pp_chunks;
    Metrics.add m_pipe_hidden_ms (sched.pp_hidden_ns /. 1e6);
    Metrics.add m_pipe_stall_ms (sched.pp_stall_ns /. 1e6);
    Ok (received, sched.pp_exposed_ns +. extra, sched)

let fetch_page t ?fault stats ~page_bytes fetch pn =
  if not (is_lazy t) then invalid_arg "Transport.fetch_page: not a lazy transport";
  let max_attempts = attempts t in
  let rec go k =
    match Option.bind fault (fun f -> Fault.draw f Fault.Source_node) with
    | Some Fault.Crash ->
      Error
        (Dapper_error.Source_lost
           (Printf.sprintf "page server unreachable fetching page %d" pn))
    | _ ->
      (match fetch pn with
       | None -> Ok None
       | Some data ->
         let checksum = Bytebuf.fnv64 (Bytes.to_string data) in
         let charge () = stats.srv_ns <- stats.srv_ns +. page_fetch_ns t page_bytes in
         let retry what =
           charge ();  (* the failed round trip still cost a round trip *)
           if k + 1 < max_attempts then begin
             stats.srv_retransmits <- stats.srv_retransmits + 1;
             Metrics.inc m_page_retransmits;
             (* as in [transmit]: backoff only when a retry follows *)
             let b = backoff_ns t k in
             stats.srv_ns <- stats.srv_ns +. b;
             stats.srv_backoff_ns <- stats.srv_backoff_ns +. b;
             go (k + 1)
           end
           else
             Error
               (Dapper_error.Transfer_timeout
                  (Printf.sprintf "page %d %s; %d attempts exhausted on %s" pn what
                     max_attempts t.t_name))
         in
         (match Option.bind fault (fun f -> Fault.draw f Fault.Page_fetch) with
          | Some Fault.Drop -> retry "dropped"
          | Some (Fault.Corrupt salt) ->
            let damaged = Bytes.copy data in
            Fault.corrupt_byte salt damaged;
            if Bytebuf.fnv64 (Bytes.to_string damaged) <> checksum then
              retry "failed its checksum"
            else begin
              (* the flip landed on an empty payload: delivered intact *)
              charge ();
              stats.srv_pages <- stats.srv_pages + 1;
              Ok (Some damaged)
            end
          | Some (Fault.Delay ns) ->
            stats.srv_ns <- stats.srv_ns +. ns;
            charge ();
            stats.srv_pages <- stats.srv_pages + 1;
            Ok (Some data)
          | Some Fault.Crash | None ->
            charge ();
            stats.srv_pages <- stats.srv_pages + 1;
            Ok (Some data)))
  in
  (* One leaf span per fetch whose duration is exactly what this fetch
     added to [srv_ns] (round trips, injected delays, retry backoff). *)
  let ns0 = stats.srv_ns in
  let pages0 = stats.srv_pages in
  let r = go 0 in
  let ns = stats.srv_ns -. ns0 in
  if stats.srv_pages > pages0 then begin
    Metrics.inc m_pages_served ~by:(stats.srv_pages - pages0);
    Metrics.observe m_page_fetch_ms (ns /. 1e6)
  end;
  Trace.leaf ~cat:"transport" "page-fetch"
    ~args:[ ("page", string_of_int pn) ] ~dur_ns:ns;
  r
