type page_stats = { mutable srv_pages : int; mutable srv_ns : float }

type kind = Scp | Page_server

type t = {
  t_kind : kind;
  t_link : Link.t;
  t_name : string;
  t_cost_factor : float;  (* >= 1.0; congestion/retransmission multiplier *)
}

let scp link =
  { t_kind = Scp; t_link = link; t_name = "scp/" ^ link.Link.l_name;
    t_cost_factor = 1.0 }

let page_server link =
  { t_kind = Page_server; t_link = link;
    t_name = "page-server/" ^ link.Link.l_name; t_cost_factor = 1.0 }

let degraded ~factor t =
  if factor < 1.0 then invalid_arg "Transport.degraded: factor < 1.0";
  { t with
    t_name = Printf.sprintf "%s (degraded x%g)" t.t_name factor;
    t_cost_factor = t.t_cost_factor *. factor }

let name t = t.t_name
let link t = t.t_link
let is_lazy t = t.t_kind = Page_server

let transfer_ns t bytes = Link.transfer_ns t.t_link bytes *. t.t_cost_factor
let page_fetch_ns t bytes = Link.page_fetch_ns t.t_link bytes *. t.t_cost_factor

let fresh_page_stats () = { srv_pages = 0; srv_ns = 0.0 }

let serve_pages t stats ~page_bytes fetch =
  if not (is_lazy t) then invalid_arg "Transport.serve_pages: not a lazy transport";
  fun pn ->
    match fetch pn with
    | None -> None
    | Some data ->
      stats.srv_pages <- stats.srv_pages + 1;
      stats.srv_ns <- stats.srv_ns +. page_fetch_ns t page_bytes;
      Some data
