(** Network links between nodes (scp and page-server traffic). *)

type t = {
  l_name : string;
  l_bandwidth_mbps : float;  (** payload megabytes per second *)
  l_latency_us : float;      (** per-transfer setup latency *)
}

val infiniband : t
val gigabit : t

(** Nanoseconds to transfer [bytes] in one stream. *)
val transfer_ns : t -> int -> float

(** Nanoseconds to fetch a single page via RPC (latency-dominated). *)
val page_fetch_ns : t -> int -> float
