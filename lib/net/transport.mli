(** Transports: how a checkpoint image (and, for post-copy migration,
    individual pages) moves between nodes over a {!Link.t}.

    The two paper variants are {!scp} — the whole image is copied
    eagerly before restore — and {!page_server} — a minimal image is
    copied eagerly and memory pages are served on demand from the
    paused source (CRIU's lazy-pages protocol). Both share the same
    eager-transfer cost model; they differ in whether the destination
    may fault pages back through {!serve_pages}.

    Two composable wrappers model imperfect links:

    - {!degraded} multiplies every cost by a factor (congestion, lossy
      link);
    - {!retrying} arms bounded retransmission with exponential backoff:
      {!transmit} and {!fetch_page} verify every payload against an
      FNV-1a checksum manifest and retransmit dropped or corrupted
      payloads, charging each backoff to the deterministic simulated
      clock. Retries exhausted surface as the retriable
      [Dapper_error.Transfer_timeout].

    Both transmission entry points accept an optional {!Fault.t}
    schedule — the chaos plane decides which payloads are dropped,
    corrupted or delayed; the transport implements detection and
    recovery. *)

open Dapper_util

type t

(** Per-session page-server accounting: pages served on demand from the
    paused source, the cumulative network time they cost (including
    injected delays and retry backoff), and how many fetches had to be
    retransmitted. [srv_backoff_ns] breaks out the retry-backoff share
    of [srv_ns] (backoff is only ever charged when a retry follows; see
    {!total_backoff_ns}). Allocate fresh per session
    ({!fresh_page_stats}); never share across sessions. *)
type page_stats = {
  mutable srv_pages : int;
  mutable srv_ns : float;
  mutable srv_retransmits : int;
  mutable srv_backoff_ns : float;
}

(** Per-session eager-transfer accounting. [tx_fault_ns] is the latency
    added by injected delays; [tx_backoff_ns] the latency added by
    retry backoff (charged only when a retry actually follows — never
    after the final failed attempt). Their sum is the "cost of chaos"
    over a clean transfer. *)
type tx_stats = {
  mutable tx_attempts : int;
  mutable tx_retransmits : int;
  mutable tx_corrupt : int;    (** checksum mismatches detected on arrival *)
  mutable tx_dropped : int;    (** transfers dropped mid-image *)
  mutable tx_fault_ns : float;
  mutable tx_backoff_ns : float;
}

(** Eager whole-image copy over [link]; no demand paging. *)
val scp : Link.t -> t

(** Lazy post-copy transport: eager copy of the minimal image over
    [link], remaining pages served on demand. *)
val page_server : Link.t -> t

(** [degraded ~factor t] costs [factor] times as much per transfer and
    per page fetch ([factor >= 1.0]; raises [Invalid_argument]
    otherwise). Composes: nested factors multiply and [name] reflects
    the nesting. *)
val degraded : factor:float -> t -> t

(** [retrying t] arms bounded retransmission: up to [attempts] tries per
    transfer / per page (default 4), with [backoff_ns] (default 2 ms)
    growing by [multiplier] (default 2.0) between tries, charged to the
    simulated clock. [jitter] seeds a decorrelation stream: each charged
    backoff is the exponential envelope scaled by a seeded uniform
    factor in [0.5, 1.5), so retries from transports armed with
    different seeds never resynchronize while the whole schedule stays
    replayable from the seed. Without [jitter] the backoff is the exact
    deterministic doubling as before. Raises [Invalid_argument] for
    [attempts < 1] or [multiplier < 1.0]. *)
val retrying :
  ?attempts:int -> ?backoff_ns:float -> ?multiplier:float -> ?jitter:int64 ->
  t -> t

val name : t -> string
val link : t -> Link.t

(** True when the transport serves pages on demand (restore should
    install a page source and defer full memory materialization). *)
val is_lazy : t -> bool

(** Tries per transfer: the retry policy's attempt bound, or 1. *)
val attempts : t -> int

(** [total_backoff_ns t ~failures] is the closed-form total backoff a
    jitter-free transfer that failed [failures] times must have been
    charged: [sum_{k=0}^{failures-2} backoff * multiplier^k] — one
    backoff per retry, none after the final attempt. With jitter armed
    it is the envelope center: the actual charge lies within
    [0.5, 1.5) of this value. The accounting invariant the
    [tx_backoff_ns]/[srv_backoff_ns] tallies are tested against. *)
val total_backoff_ns : t -> failures:int -> float

(** Nanoseconds to move [bytes] of eager image over this transport. *)
val transfer_ns : t -> int -> float

(** Nanoseconds for one demand-paged fetch of a [bytes]-sized payload
    (round-trip latency plus payload). *)
val page_fetch_ns : t -> int -> float

val fresh_page_stats : unit -> page_stats
val fresh_tx_stats : unit -> tx_stats

(** [serve_pages t stats ~page_bytes fetch] wraps a raw page-content
    lookup with this transport's accounting: every successful fetch
    bumps [stats.srv_pages] and charges [page_fetch_ns t page_bytes]
    to [stats.srv_ns]. Raises [Invalid_argument] if [t] is not lazy.
    This is the post-commit demand-paging path; the fault-aware,
    checksummed variant is {!fetch_page}. *)
val serve_pages :
  t -> page_stats -> page_bytes:int -> (int -> bytes option) -> int -> bytes option

(** [transmit t ~stats ~bytes files] moves the named image files over
    the transport, simulating the wire: each file may be dropped,
    corrupted or delayed by the [fault] schedule; arrival is verified
    against a sender-side FNV-1a manifest; failed attempts are
    retransmitted within the retry policy's bound with exponential
    backoff. Returns the delivered files and the total nanoseconds
    spent (transfer cost + injected delays + backoff). Errors:
    [Transfer_timeout] (retries exhausted — retriable) or
    [Checksum_mismatch] (corruption detected, no retry policy armed —
    retriable at the session level). *)
val transmit :
  t ->
  ?fault:Fault.t ->
  stats:tx_stats ->
  bytes:int ->
  (string * string) list ->
  ((string * string) list * float, Dapper_error.t) result

(** {1 Chunked producer/consumer pipelining}

    The overlap cost model behind the session's pipelined transfer
    stage: recode produces the image in fixed-size chunks and the wire
    consumes each chunk as soon as it is ready, so recode time hides
    under transmission on the simulated clock. *)

(** One chunk of the pipelined schedule: when its recode slice finished
    ([ck_ready_ns]), when the wire started sending it ([ck_start_ns] =
    max of ready and wire-free time) and its wire time ([ck_tx_ns],
    which includes the link's per-transfer latency — chunking overhead
    is modeled, not hidden). All times relative to recode start. *)
type chunk = {
  ck_index : int;
  ck_bytes : int;
  ck_ready_ns : float;
  ck_start_ns : float;
  ck_tx_ns : float;
}

type pipe_stats = {
  pp_chunks : int;
  pp_recode_ns : float;    (** producer (recode) total, as given *)
  pp_wire_ns : float;      (** wire busy time: sum of per-chunk costs *)
  pp_stall_ns : float;     (** wire idle time waiting on the producer *)
  pp_makespan_ns : float;  (** recode start to last chunk delivered *)
  pp_exposed_ns : float;   (** [makespan - recode]: transfer cost left
                               visible once recode hides under the wire *)
  pp_hidden_ns : float;    (** recode time hidden under transmission *)
  pp_schedule : chunk list;
}

(** Pure two-stage pipeline makespan over the simulated clock. With one
    chunk ([chunk_bytes >= bytes]) the schedule degenerates to the
    sequential pipeline exactly: [pp_exposed_ns = transfer_ns t bytes]
    and [pp_hidden_ns = 0]. Invariants: [pp_exposed_ns] is at least the
    last chunk's wire time (the wire cannot finish before the producer),
    and [pp_hidden_ns <= min recode_ns pp_wire_ns]. Raises
    [Invalid_argument] for negative [bytes]/[recode_ns] or
    [chunk_bytes < 1]. *)
val pipeline_schedule :
  t -> bytes:int -> chunk_bytes:int -> recode_ns:float -> pipe_stats

(** {!transmit} with the pipelined cost model: identical wire semantics
    (faults, checksum manifest, bounded retransmission — commit/rollback
    behavior is unchanged), but the returned nanoseconds are
    [pp_exposed_ns] plus any fault/retry surcharge (delays and
    retransmissions hit a wire whose producer already finished, so they
    are never hidden). Also returns the schedule for span/metric
    emission. *)
val transmit_pipelined :
  t ->
  ?fault:Fault.t ->
  stats:tx_stats ->
  bytes:int ->
  chunk_bytes:int ->
  recode_ns:float ->
  (string * string) list ->
  ((string * string) list * float * pipe_stats, Dapper_error.t) result

(** [fetch_page t stats ~page_bytes fetch pn] is one fault-aware,
    checksummed post-copy page fetch with bounded retransmission —
    the page-drain path of the session's commit stage. [Ok None] means
    the source genuinely has no such page (not a fault). Errors:
    [Source_lost] when the fault plane crashes the source's page server
    (the migration must roll back), [Transfer_timeout] when retries are
    exhausted. Raises [Invalid_argument] if [t] is not lazy. *)
val fetch_page :
  t ->
  ?fault:Fault.t ->
  page_stats ->
  page_bytes:int ->
  (int -> bytes option) ->
  int ->
  (bytes option, Dapper_error.t) result

(** [fetch_stall_ns t ?fault ~page_bytes ()] samples the latency one
    demand page fetch would charge — round trips, injected delays, and
    retry backoff, mirroring {!fetch_page}'s accounting — without
    touching page contents or stats. The live-traffic plane charges
    millions of request stalls through this. Deterministic for a given
    fault-schedule position; corrupt draws count as retransmissions
    (the cost model ignores {!fetch_page}'s empty-payload lucky case);
    a final failed attempt still costs its round trip. Raises
    [Invalid_argument] if [t] is not lazy. *)
val fetch_stall_ns : t -> ?fault:Fault.t -> page_bytes:int -> unit -> float
