(** Transports: how a checkpoint image (and, for post-copy migration,
    individual pages) moves between nodes over a {!Link.t}.

    The two paper variants are {!scp} — the whole image is copied
    eagerly before restore — and {!page_server} — a minimal image is
    copied eagerly and memory pages are served on demand from the
    paused source (CRIU's lazy-pages protocol). Both share the same
    eager-transfer cost model; they differ in whether the destination
    may fault pages back through {!serve_pages}.

    {!degraded} wraps any transport with a cost multiplier, modelling a
    congested or lossy link (retransmissions inflate effective transfer
    time); it composes, leaving room for retrying transports later. *)

type t

(** Per-session page-server accounting: pages served on demand from the
    paused source, and the cumulative network time they cost. *)
type page_stats = { mutable srv_pages : int; mutable srv_ns : float }

(** Eager whole-image copy over [link]; no demand paging. *)
val scp : Link.t -> t

(** Lazy post-copy transport: eager copy of the minimal image over
    [link], remaining pages served on demand. *)
val page_server : Link.t -> t

(** [degraded ~factor t] costs [factor] times as much per transfer and
    per page fetch ([factor >= 1.0]; raises [Invalid_argument]
    otherwise). *)
val degraded : factor:float -> t -> t

val name : t -> string
val link : t -> Link.t

(** True when the transport serves pages on demand (restore should
    install a page source and defer full memory materialization). *)
val is_lazy : t -> bool

(** Nanoseconds to move [bytes] of eager image over this transport. *)
val transfer_ns : t -> int -> float

(** Nanoseconds for one demand-paged fetch of a [bytes]-sized payload
    (round-trip latency plus payload). *)
val page_fetch_ns : t -> int -> float

val fresh_page_stats : unit -> page_stats

(** [serve_pages t stats ~page_bytes fetch] wraps a raw page-content
    lookup with this transport's accounting: every successful fetch
    bumps [stats.srv_pages] and charges [page_fetch_ns t page_bytes]
    to [stats.srv_ns]. Raises [Invalid_argument] if [t] is not lazy. *)
val serve_pages :
  t -> page_stats -> page_bytes:int -> (int -> bytes option) -> int -> bytes option
