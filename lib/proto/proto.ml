open Dapper_util

type payload =
  | Varint of int64
  | Fixed64 of int64
  | Delim of string

type field = { tag : int; payload : payload }

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

let encode_varint buf v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = Int64.to_int (Int64.logand !v 0x7FL) in
    v := Int64.shift_right_logical !v 7;
    if Int64.equal !v 0L then begin
      Bytebuf.add_u8 buf byte;
      continue := false
    end
    else Bytebuf.add_u8 buf (byte lor 0x80)
  done

let decode_varint s off =
  let v = ref 0L in
  let shift = ref 0 in
  let pos = ref off in
  let continue = ref true in
  while !continue do
    if !pos >= String.length s then fail "truncated varint";
    if !shift > 63 then fail "varint too long";
    let byte = Char.code s.[!pos] in
    incr pos;
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (byte land 0x7F)) !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then continue := false
  done;
  (!v, !pos - off)

(* Zigzag mapping for signed varints (protobuf sint64): small negative
   numbers encode to small varints instead of ten 0xFF bytes. *)
let zigzag v = Int64.logxor (Int64.shift_left v 1) (Int64.shift_right v 63)

let unzigzag v =
  Int64.logxor (Int64.shift_right_logical v 1) (Int64.neg (Int64.logand v 1L))

let encode_zigzag buf v = encode_varint buf (zigzag v)

let decode_zigzag s off =
  let v, n = decode_varint s off in
  (unzigzag v, n)

let wire_type = function Varint _ -> 0 | Fixed64 _ -> 1 | Delim _ -> 2

let encode fields =
  let buf = Bytebuf.create 256 in
  List.iter
    (fun { tag; payload } ->
      encode_varint buf (Int64.of_int ((tag lsl 3) lor wire_type payload));
      match payload with
      | Varint v -> encode_varint buf v
      | Fixed64 v -> Bytebuf.add_i64 buf v
      | Delim s ->
        encode_varint buf (Int64.of_int (String.length s));
        Bytebuf.add_bytes buf s)
    fields;
  Bytebuf.contents buf

let decode s =
  let pos = ref 0 in
  let fields = ref [] in
  while !pos < String.length s do
    let key, n = decode_varint s !pos in
    pos := !pos + n;
    let key = Int64.to_int key in
    let tag = key lsr 3 in
    let payload =
      match key land 7 with
      | 0 ->
        let v, n = decode_varint s !pos in
        pos := !pos + n;
        Varint v
      | 1 ->
        if !pos + 8 > String.length s then fail "truncated fixed64";
        let v = Bytebuf.get_i64 s !pos in
        pos := !pos + 8;
        Fixed64 v
      | 2 ->
        let len, n = decode_varint s !pos in
        pos := !pos + n;
        let len = Int64.to_int len in
        if !pos + len > String.length s then fail "truncated delimited field";
        let v = String.sub s !pos len in
        pos := !pos + len;
        Delim v
      | wt -> fail "unsupported wire type %d" wt
    in
    fields := { tag; payload } :: !fields
  done;
  List.rev !fields

let v_int tag v = { tag; payload = Varint v }
let v_fix tag v = { tag; payload = Fixed64 v }
let v_str tag s = { tag; payload = Delim s }
let v_msg tag fields = { tag; payload = Delim (encode fields) }

let find fields tag = List.find_opt (fun f -> f.tag = tag) fields

let get_int fields tag =
  match find fields tag with
  | Some { payload = Varint v; _ } -> v
  | Some _ -> fail "tag %d: wrong wire type (expected varint)" tag
  | None -> fail "missing tag %d" tag

let get_int_opt fields tag =
  match find fields tag with
  | Some { payload = Varint v; _ } -> Some v
  | Some _ -> fail "tag %d: wrong wire type (expected varint)" tag
  | None -> None

let get_fix fields tag =
  match find fields tag with
  | Some { payload = Fixed64 v; _ } -> v
  | Some _ -> fail "tag %d: wrong wire type (expected fixed64)" tag
  | None -> fail "missing tag %d" tag

let get_str fields tag =
  match find fields tag with
  | Some { payload = Delim s; _ } -> s
  | Some _ -> fail "tag %d: wrong wire type (expected delimited)" tag
  | None -> fail "missing tag %d" tag

let get_msg fields tag = decode (get_str fields tag)

let get_all_msgs fields tag =
  List.filter_map
    (fun f ->
      if f.tag = tag then
        match f.payload with
        | Delim s -> Some (decode s)
        | Varint _ | Fixed64 _ -> fail "tag %d: wrong wire type" tag
      else None)
    fields

let get_all_ints fields tag =
  List.filter_map
    (fun f ->
      if f.tag = tag then
        match f.payload with
        | Varint v -> Some v
        | Fixed64 _ | Delim _ -> fail "tag %d: wrong wire type" tag
      else None)
    fields
