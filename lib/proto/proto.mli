(** Protocol-buffer wire format (the subset CRIU images use).

    CRIU serializes most process images as protobuf messages; CRIT
    decodes them to JSON and back (paper Section II). This module
    implements the wire format — varints, length-delimited fields,
    nested messages — plus a JSON bridge, so that image rewriting
    operates on real serialized bytes rather than in-memory records. *)

type payload =
  | Varint of int64
  | Fixed64 of int64
  | Delim of string       (** strings, bytes, nested messages *)

type field = { tag : int; payload : payload }

exception Decode_error of string

(** {1 Wire encoding} *)

val encode : field list -> string
val decode : string -> field list

(** Raw varint helpers (exposed for tests). *)
val encode_varint : Dapper_util.Bytebuf.t -> int64 -> unit
val decode_varint : string -> int -> int64 * int

(** Zigzag mapping for signed varints (protobuf [sint64]): [zigzag]
    interleaves negative and non-negative values so small magnitudes
    encode to short varints; [unzigzag] inverts it. *)
val zigzag : int64 -> int64
val unzigzag : int64 -> int64

(** Varint encode/decode composed with the zigzag mapping. *)
val encode_zigzag : Dapper_util.Bytebuf.t -> int64 -> unit
val decode_zigzag : string -> int -> int64 * int

(** {1 Message construction and access} *)

val v_int : int -> int64 -> field
val v_fix : int -> int64 -> field
val v_str : int -> string -> field
val v_msg : int -> field list -> field

(** First field with the tag, decoded; raise [Decode_error] on missing
    tag or wrong wire type. *)
val get_int : field list -> int -> int64
val get_fix : field list -> int -> int64
val get_str : field list -> int -> string
val get_msg : field list -> int -> field list

val get_int_opt : field list -> int -> int64 option

(** All fields with the tag (repeated fields). *)
val get_all_msgs : field list -> int -> field list list
val get_all_ints : field list -> int -> int64 list
