(** Circuit breakers over the simulated clock.

    One breaker guards one failure domain — a transport, a rack — and
    runs the classic three-state machine:

    - {e closed}: serving; [b_failure_threshold] {e consecutive}
      failures trip it open (any success resets the streak);
    - {e open}: refusing ({!allow} is false) until the cooldown
      [b_open_ms] elapses, after which the first {!allow} is the probe
      that moves it to half-open;
    - {e half-open}: serving probes; [b_probe_successes] consecutive
      wins re-close it, any failure re-opens it for another cooldown.

    Every transition happens on the caller-supplied simulated time, and
    the only randomness is the optional seeded cooldown jitter (one
    draw per trip, spreading probe schedules across breakers so a
    correlated fault does not re-trip a whole fleet in lockstep) — so a
    breaker's full trip/probe history is replayable from its seed and
    the event sequence fed to it. *)

type state = Closed | Open | Half_open

val state_name : state -> string

type cfg = {
  b_failure_threshold : int;  (** consecutive failures that trip *)
  b_open_ms : float;          (** cooldown before the half-open probe *)
  b_probe_successes : int;    (** half-open wins needed to re-close *)
  b_cooldown_jitter : float;
      (** fraction in [0, 1): each trip's cooldown is scaled by a
          seeded uniform draw in [1 - j, 1 + j). 0 = deterministic. *)
}

(** threshold 3, 250 ms cooldown, 2 probe wins, no jitter. *)
val default_cfg : cfg

type t

(** Raises [Invalid_argument] on a non-positive threshold or probe
    count, negative cooldown, or jitter outside [0, 1). *)
val create : ?seed:int64 -> ?cfg:cfg -> unit -> t

val state : t -> state

(** Times tripped open (including half-open probes that failed). *)
val trips : t -> int

(** May this unit serve at [now_ms]? False only while open and still
    cooling down; the first [allow] past the cooldown is the probe
    (the breaker moves to half-open and serves it). *)
val allow : t -> now_ms:float -> bool

val record_success : t -> now_ms:float -> unit
val record_failure : t -> now_ms:float -> unit
