module Sketch = Dapper_traffic.Sketch

let node_gate q ~node ~now_ms = Quarantine.admits q ~key:node ~now_ms
let node_report q ~node ~now_ms ~ok = Quarantine.report q ~key:node ~now_ms ~ok
let rack_gate q ~rack ~now_ms = Quarantine.admits q ~key:rack ~now_ms
let rack_report q ~rack ~now_ms ~ok = Quarantine.report q ~key:rack ~now_ms ~ok

(* SLO-aware eviction gating: consult the live traffic plane's p99
   sketch before starting a migration — when the tail is already over
   the limit, adding a blackout would make a bad minute worse, so the
   eviction defers until the next boundary. An empty sketch admits
   (no traffic, no tail to protect). *)
let slo_gate ~limit_ms sketch ~now_ms =
  ignore now_ms;
  Sketch.count sketch = 0 || Sketch.quantile sketch 0.99 <= limit_ms
