module Metrics = Dapper_obs.Metrics
module Derr = Dapper_util.Dapper_error

type t = {
  d_alpha : float;
  tbl : (Derr.stage, float) Hashtbl.t;
}

let all_stages =
  [ Derr.Pause; Derr.Dump; Derr.Recode; Derr.Transfer; Derr.Restore; Derr.Commit ]

let create ?(alpha = 0.3) () =
  if alpha <= 0.0 || alpha > 1.0 then
    invalid_arg "Deadline.create: alpha outside (0, 1]";
  { d_alpha = alpha; tbl = Hashtbl.create 8 }

let observe t stage ms =
  match Hashtbl.find_opt t.tbl stage with
  | None -> Hashtbl.replace t.tbl stage ms
  | Some prev ->
    Hashtbl.replace t.tbl stage ((t.d_alpha *. ms) +. ((1.0 -. t.d_alpha) *. prev))

let projected t stage = Hashtbl.find_opt t.tbl stage

(* Warm the store from the session metrics plane: every committed stage
   already observed its modeled cost into the
   [session.stage_ms.<stage>] histogram, so a fresh watchdog can start
   from the fleet's measured history (mean cost per stage) instead of
   flying blind on its first attempt. *)
let seed_from_metrics t =
  List.iter
    (fun stage ->
      match Metrics.find ("session.stage_ms." ^ Derr.stage_name stage) with
      | Some (Metrics.Histogram h) when Metrics.histogram_count h > 0 ->
        if not (Hashtbl.mem t.tbl stage) then
          Hashtbl.replace t.tbl stage
            (Metrics.histogram_sum h /. float_of_int (Metrics.histogram_count h))
      | _ -> ())
    all_stages

(* The pause budget is an instruction count (how far the source may
   drain); at the source's speed it is also a time: the blackout the
   operator already agreed to stall the process for. [margin] widens it
   (migration stages beyond the pause legitimately cost more than the
   drain itself). *)
let budget_ms ?(margin = 1.0) ~ops_per_ns ~pause_budget () =
  if ops_per_ns <= 0.0 then invalid_arg "Deadline.budget_ms: ops_per_ns <= 0";
  if margin <= 0.0 then invalid_arg "Deadline.budget_ms: margin <= 0";
  margin *. float_of_int pause_budget /. (ops_per_ns *. 1e6)
