module Metrics = Dapper_obs.Metrics

type rung = Full | Hybrid_only | Precopy_only | Postponed

let rung_name = function
  | Full -> "full"
  | Hybrid_only -> "hybrid"
  | Precopy_only -> "precopy"
  | Postponed -> "postponed"

let all_rungs = [ Full; Hybrid_only; Precopy_only; Postponed ]

let next = function
  | Full -> Some Hybrid_only
  | Hybrid_only -> Some Precopy_only
  | Precopy_only -> Some Postponed
  | Postponed -> None

let m_hybrid = Metrics.counter "health.degrade.hybrid"
let m_precopy = Metrics.counter "health.degrade.precopy"
let m_postponed = Metrics.counter "health.degrade.postponed"

let record = function
  | Full -> ()
  | Hybrid_only -> Metrics.inc m_hybrid
  | Precopy_only -> Metrics.inc m_precopy
  | Postponed -> Metrics.inc m_postponed

(* The mechanism each rung is allowed: Full lets the budget picker
   choose freely; the hybrid rung pins the minimum-blackout mechanism;
   the pre-copy rung drops every post-restore dependence on the source
   link (no lazy tail to serve over a breaker-open transport); the last
   rung does not migrate now at all. *)
let mechanism = function
  | Full -> None
  | Hybrid_only -> Some Dapper_traffic.Budget.Hybrid
  | Precopy_only -> Some Dapper_traffic.Budget.Precopy
  | Postponed -> None

(* Exponential backoff for postponed evictions, capped so a repeatedly
   postponed job re-attempts at a bounded cadence rather than never. *)
let postpone_backoff_ms ?(base_ms = 500.0) ?(cap_ms = 8_000.0) ~attempt () =
  if base_ms <= 0.0 then invalid_arg "Degrade.postpone_backoff_ms: base <= 0";
  if cap_ms < base_ms then invalid_arg "Degrade.postpone_backoff_ms: cap < base";
  if attempt < 0 then invalid_arg "Degrade.postpone_backoff_ms: attempt < 0";
  Float.min cap_ms (base_ms *. (2.0 ** float_of_int attempt))
