module Metrics = Dapper_obs.Metrics

let m_quarantines = Metrics.counter "health.quarantine.entered"
let m_releases = Metrics.counter "health.quarantine.released"

type cfg = {
  q_alpha : float;
  q_threshold : float;
  q_min_reports : int;
  q_heal_ms : float;
}

let default_cfg =
  { q_alpha = 0.3; q_threshold = 0.5; q_min_reports = 3; q_heal_ms = 5_000.0 }

type entry = {
  mutable e_ewma : float;
  mutable e_reports : int;
  mutable e_quarantined_at : float option;
}

type t = {
  c : cfg;
  tbl : (int, entry) Hashtbl.t;
  mutable q_entered : int;
}

let create ?(cfg = default_cfg) () =
  if cfg.q_alpha <= 0.0 || cfg.q_alpha > 1.0 then
    invalid_arg "Quarantine.create: alpha outside (0, 1]";
  if cfg.q_threshold <= 0.0 || cfg.q_threshold > 1.0 then
    invalid_arg "Quarantine.create: threshold outside (0, 1]";
  if cfg.q_min_reports < 1 then invalid_arg "Quarantine.create: min_reports < 1";
  if cfg.q_heal_ms < 0.0 then invalid_arg "Quarantine.create: heal_ms < 0";
  { c = cfg; tbl = Hashtbl.create 16; q_entered = 0 }

let entry t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e -> e
  | None ->
    let e = { e_ewma = 0.0; e_reports = 0; e_quarantined_at = None } in
    Hashtbl.add t.tbl key e;
    e

let failure_ewma t ~key =
  match Hashtbl.find_opt t.tbl key with None -> 0.0 | Some e -> e.e_ewma

(* Time-based auto-release: a quarantined offender takes no work, so no
   new reports arrive — after a healthy probe window it is re-admitted
   on half trust (EWMA reset to the threshold's half), ready to re-trip
   quickly if it is still bad. *)
let release_if_healed t e ~now_ms =
  match e.e_quarantined_at with
  | Some since when now_ms -. since >= t.c.q_heal_ms ->
    e.e_quarantined_at <- None;
    e.e_ewma <- t.c.q_threshold /. 2.0;
    e.e_reports <- 0;
    Metrics.inc m_releases
  | _ -> ()

let report t ~key ~now_ms ~ok =
  let e = entry t key in
  release_if_healed t e ~now_ms;
  let x = if ok then 0.0 else 1.0 in
  e.e_ewma <- (t.c.q_alpha *. x) +. ((1.0 -. t.c.q_alpha) *. e.e_ewma);
  e.e_reports <- e.e_reports + 1;
  if
    e.e_quarantined_at = None
    && e.e_reports >= t.c.q_min_reports
    && e.e_ewma >= t.c.q_threshold
  then begin
    e.e_quarantined_at <- Some now_ms;
    t.q_entered <- t.q_entered + 1;
    Metrics.inc m_quarantines
  end

let admits t ~key ~now_ms =
  match Hashtbl.find_opt t.tbl key with
  | None -> true
  | Some e ->
    release_if_healed t e ~now_ms;
    e.e_quarantined_at = None

let quarantined t ~now_ms =
  Hashtbl.fold
    (fun key e acc ->
      release_if_healed t e ~now_ms;
      if e.e_quarantined_at <> None then key :: acc else acc)
    t.tbl []
  |> List.sort compare

let entered t = t.q_entered
