(** Glue between the health plane and the fleet engines' hooks.

    {!Dapper_cluster.Fleet.config} ([f_node_gate] / [f_node_report] /
    [f_slo_gate]) and {!Dapper_cluster.Fleet_xl.config} ([x_rack_gate]
    / [x_rack_report]) take plain functions, so the engines never
    depend on this library; these adapters are the one-line wirings:

    {[
      let q = Quarantine.create () in
      { Fleet.default_config with
        f_node_gate = Some (Admission.node_gate q);
        f_node_report = Some (Admission.node_report q) }
    ]} *)

(** [Quarantine.admits] keyed by node id. *)
val node_gate : Quarantine.t -> node:int -> now_ms:float -> bool

(** [Quarantine.report] keyed by node id. *)
val node_report : Quarantine.t -> node:int -> now_ms:float -> ok:bool -> unit

(** [Quarantine.admits] keyed by rack id (for [Fleet_xl]). *)
val rack_gate : Quarantine.t -> rack:int -> now_ms:float -> bool

(** [Quarantine.report] keyed by rack id. *)
val rack_report : Quarantine.t -> rack:int -> now_ms:float -> ok:bool -> unit

(** SLO-aware eviction gate: admit while the live traffic p99 (from
    the given quantile sketch) is at or under [limit_ms]; an empty
    sketch always admits. Partially applied, it matches
    [Fleet.config.f_slo_gate]. *)
val slo_gate :
  limit_ms:float -> Dapper_traffic.Sketch.t -> now_ms:float -> bool
