open Dapper_net
open Dapper_criu
module Session = Dapper.Session
module Metrics = Dapper_obs.Metrics
module Derr = Dapper_util.Dapper_error

let m_cancels = Metrics.counter "health.deadline.cancels"
let m_commits = Metrics.counter "health.guard.commits"
let m_rollbacks = Metrics.counter "health.guard.rollbacks"

type attempt = {
  ga_outcome : (Session.outcome, Derr.t) result;
  ga_blackout_ms : float;
  ga_cancelled : Derr.stage option;
  ga_budget_ms : float;
  ga_hot_pages : int;
  ga_lazy_left : int;
}

let ( let* ) = Result.bind

let spent s =
  List.fold_left (fun acc r -> acc +. r.Session.sr_ms) 0.0 (Session.stage_log s)

let last_stage_ms s =
  match s.Session.s_log with r :: _ -> r.Session.sr_ms | [] -> 0.0

let run ?deadlines ?(margin = 1.0) ?budget_ms (cfg : Session.config) p =
  let dl = match deadlines with Some d -> d | None -> Deadline.create () in
  let budget =
    match budget_ms with
    | Some b -> b
    | None ->
      Deadline.budget_ms ~margin
        ~ops_per_ns:cfg.Session.cfg_src_node.Node.n_ops_per_ns
        ~pause_budget:cfg.Session.cfg_pause_budget ()
  in
  let cancelled = ref None in
  let blackout = ref 0.0 in
  (* Cancel [stage] before running it when its projection no longer fits
     the remaining budget. The session has real paused state by then, so
     cancellation is a rollback through the ordinary 2PC path — the
     source resumes, nothing is stranded — charged as the retriable
     [Deadline_exceeded] instead of a blown blackout. *)
  let check stage projected s =
    match projected with
    | Some ms when spent s +. ms > budget ->
      Metrics.inc m_cancels;
      cancelled := Some stage;
      Session.rollback s;
      Error (Derr.Deadline_exceeded (stage, ms))
    | _ -> Ok ()
  in
  let observe stage s =
    Deadline.observe dl stage (last_stage_ms s);
    blackout := spent s
  in
  let step stage next s =
    let* () = check stage (Deadline.projected dl stage) s in
    let* s = next s in
    observe stage s;
    Ok s
  in
  let hot_pages = ref 0 in
  let lazy_left = ref 0 in
  let outcome =
    let s = Session.start cfg p in
    let* s = step Derr.Pause Session.pause s in
    let* s = step Derr.Dump Session.dump s in
    (let d = s.Session.s_state.Session.sd_dump in
     hot_pages := d.Dump.pages_dumped + d.Dump.pages_lazy);
    let* s = step Derr.Recode Session.recode s in
    (* The transfer is projected analytically from the image at hand and
       the transport's current cost model — not from history — so a
       degraded or congested link is caught on the very first attempt,
       before any bytes move. Lazy transports still charge the full
       non-resident image here, i.e. the projection is conservative: a
       cancel can only be pessimistic by the post-copy share. *)
    (* [sc_image_bytes] is the unscaled footprint; the wire discounts
       pre-copied resident pages and charges the byte-scale factor, so
       the projection approximates both *)
    let resident_bytes =
      List.length cfg.Session.cfg_resident_pages
      * Dapper_binary.Layout.page_size
    in
    let bytes =
      int_of_float
        (float_of_int
           (max 0 (s.Session.s_state.Session.sc_image_bytes - resident_bytes))
         *. cfg.Session.cfg_bytes_scale)
    in
    let tx_projected_ms =
      Transport.transfer_ns cfg.Session.cfg_transport bytes /. 1e6
    in
    let* () = check Derr.Transfer (Some tx_projected_ms) s in
    let tx = s.Session.s_tx in
    let attempts0 = tx.Transport.tx_attempts in
    let surcharge0 = tx.Transport.tx_backoff_ns +. tx.Transport.tx_fault_ns in
    (match Session.transfer s with
     | Ok s ->
       observe Derr.Transfer s;
       let* s = step Derr.Restore Session.restore s in
       lazy_left := List.length s.Session.s_state.Session.sf_lazy_pages;
       let* s = step Derr.Commit Session.commit s in
       lazy_left := !lazy_left - s.Session.s_state.Session.sm_drained;
       Ok (Session.finish s)
     | Error e ->
       (* the failed wire work still stalled the paused source: charge
          the attempts and their surcharge from the shared tx ledger *)
       let wire_ms =
         (float_of_int (tx.Transport.tx_attempts - attempts0)
          *. Transport.transfer_ns cfg.Session.cfg_transport bytes
          +. (tx.Transport.tx_backoff_ns +. tx.Transport.tx_fault_ns -. surcharge0))
         /. 1e6
       in
       blackout := !blackout +. wire_ms;
       Error e)
  in
  (match outcome with
   | Ok _ -> Metrics.inc m_commits
   | Error _ -> Metrics.inc m_rollbacks);
  { ga_outcome = outcome; ga_blackout_ms = !blackout;
    ga_cancelled = !cancelled; ga_budget_ms = budget;
    ga_hot_pages = !hot_pages; ga_lazy_left = !lazy_left }
