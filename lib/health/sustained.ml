open Dapper_util
open Dapper_machine
open Dapper_net
module Session = Dapper.Session
module Budget = Dapper_traffic.Budget
module Sketch = Dapper_traffic.Sketch
module Arrival = Dapper_traffic.Arrival
module Placement = Dapper_cluster.Placement
module Metrics = Dapper_obs.Metrics
module Derr = Dapper_error

type cfg = {
  su_requests : int;
  su_lanes : int;
  su_rate_per_ms : float;
  su_service_src_ms : float;
  su_service_dst_ms : float;
  su_slo_ms : float;
  su_migrate_at_ms : float;
  su_budget_ms : float;
  su_racks : int;
  su_servers_each : int;
  su_max_attempts : int;
  su_round_instrs : int;
  su_max_rounds : int;
  su_control : bool;
}

let default_cfg =
  { su_requests = 20_000;
    su_lanes = 8;
    su_rate_per_ms = 4.0;
    su_service_src_ms = 1.2;
    su_service_dst_ms = 1.0;
    su_slo_ms = 25.0;
    su_migrate_at_ms = 1_000.0;
    su_budget_ms = 0.0;
    su_racks = 4;
    su_servers_each = 2;
    su_max_attempts = 16;
    su_round_instrs = 20_000;
    su_max_rounds = 6;
    su_control = true }

let validate c =
  if c.su_requests <= 0 then invalid_arg "Sustained: su_requests <= 0";
  if c.su_lanes <= 0 then invalid_arg "Sustained: su_lanes <= 0";
  if c.su_rate_per_ms <= 0.0 then invalid_arg "Sustained: su_rate_per_ms <= 0";
  if c.su_service_src_ms <= 0.0 || c.su_service_dst_ms <= 0.0 then
    invalid_arg "Sustained: service means must be positive";
  if c.su_slo_ms <= 0.0 then invalid_arg "Sustained: su_slo_ms <= 0";
  if c.su_budget_ms < 0.0 then invalid_arg "Sustained: su_budget_ms < 0";
  if c.su_racks <= 0 then invalid_arg "Sustained: su_racks <= 0";
  if c.su_max_attempts <= 0 then invalid_arg "Sustained: su_max_attempts <= 0"

(* ------------------------------------------------------------------ *)
(* Scenario: one correlated fault drawn per seed                       *)
(* ------------------------------------------------------------------ *)

type scenario = {
  sc_bad_rack : int;
  sc_all_racks_bad : bool;   (** a quarter of scenarios hit every rack *)
  sc_degrade : float;        (** wire slowdown while bad, 4-8x *)
  sc_fault_prob : float;     (** payload fault probability while bad *)
  sc_bad_from_ms : float;
  sc_bad_until_ms : float;
}

let scenario_of c rng =
  let bad_rack = Rng.int rng c.su_racks in
  let all_bad = Rng.float rng < 0.25 in
  let degrade = 4.0 +. 4.0 *. Rng.float rng in
  let fprob = 0.15 +. 0.2 *. Rng.float rng in
  let from_ms =
    Float.max 0.0 (c.su_migrate_at_ms -. 200.0 -. 300.0 *. Rng.float rng)
  in
  let until_ms = c.su_migrate_at_ms +. 1_500.0 +. 2_000.0 *. Rng.float rng in
  { sc_bad_rack = bad_rack; sc_all_racks_bad = all_bad; sc_degrade = degrade;
    sc_fault_prob = fprob; sc_bad_from_ms = from_ms; sc_bad_until_ms = until_ms }

let rack_bad sc ~rack ~now_ms =
  now_ms >= sc.sc_bad_from_ms && now_ms < sc.sc_bad_until_ms
  && (sc.sc_all_racks_bad || rack = sc.sc_bad_rack)

(* Payload drops, checksum corruption, injected latency, and restore
   failures at the destination — the whole retriable surface, scaled by
   the scenario's fault probability. No source crashes: the chaos here
   is sustained degradation, not permanent loss. *)
let fault_spec sc =
  { Fault.calm with
    Fault.fs_drop = sc.sc_fault_prob *. 0.4;
    fs_corrupt = sc.sc_fault_prob *. 0.3;
    fs_delay = sc.sc_fault_prob;
    fs_delay_ns = 5.0e6;
    fs_fail_restore = sc.sc_fault_prob }

(* ------------------------------------------------------------------ *)
(* Outcomes                                                            *)
(* ------------------------------------------------------------------ *)

type verdict = Committed | Degraded of Degrade.rung | Rolled_back

let verdict_name = function
  | Committed -> "committed"
  | Degraded r -> "degraded:" ^ Degrade.rung_name r
  | Rolled_back -> "rolled-back"

type event = { ev_ms : float; ev_kind : string; ev_detail : string }

type run = {
  r_seed : int64;
  r_scenario : scenario;
  r_verdict : verdict;
  r_attempts : int;
  r_postpones : int;
  r_sheds : int;
  r_trips : int;
  r_cancels : int;
  r_final_rack : int option;
  r_blackout_ms : float;       (** summed over every attempt's window *)
  r_requests : int;
  r_ok : int;
  r_availability : float;
  r_all : Sketch.t;
  r_during : Sketch.t;
  r_events : event list;       (** chronological *)
  r_fingerprint : int64;
}

let m_runs = Metrics.counter "health.sustained.runs"
let m_committed = Metrics.counter "health.sustained.committed"
let m_degraded = Metrics.counter "health.sustained.degraded"
let m_rolled_back = Metrics.counter "health.sustained.rolled_back"

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L
let fnv_mix h v = Int64.mul (Int64.logxor h v) fnv_prime

let needs_lazy = function
  | Budget.Vanilla | Budget.Precopy -> false
  | Budget.Hybrid | Budget.Postcopy -> true

let precopies = function
  | Budget.Precopy | Budget.Hybrid -> true
  | Budget.Vanilla | Budget.Postcopy -> false

(* Marginal wire cost of the transport at hand, as the budget picker
   wants it: slope of [transfer_ns] over a 1 MiB span (the fixed
   per-transfer latency cancels out). *)
let wire_ns_per_byte t =
  (Transport.transfer_ns t 1_048_576 -. Transport.transfer_ns t 0)
  /. 1_048_576.0

(* One clean stop-and-copy on a throwaway process calibrates the cost
   projection the budget picker works from: image size, fixed stage
   costs, a lazy-restore discount. The wire slope is re-measured per
   attempt from the transport actually chosen. *)
let calibrate (scfg : Session.config) p =
  let scfg =
    { scfg with
      Session.cfg_transport = Transport.scp (Transport.link scfg.Session.cfg_transport);
      cfg_fault = None;
      cfg_resident_pages = [] }
  in
  match Session.run scfg p with
  | Error e ->
    invalid_arg ("Sustained: calibration migration failed: " ^ Derr.to_string e)
  | Ok s ->
    let o = Session.finish s in
    let t = o.Session.r_times in
    let wire_bytes =
      int_of_float
        (float_of_int o.Session.r_image_bytes *. scfg.Session.cfg_bytes_scale)
    in
    { Budget.e_image_bytes = wire_bytes;
      e_residual_bytes = wire_bytes / 4;
      e_fixed_ms =
        t.Session.t_checkpoint_ms +. t.Session.t_recode_ms
        +. t.Session.t_restore_ms;
      e_lazy_fixed_ms =
        t.Session.t_checkpoint_ms +. t.Session.t_recode_ms
        +. 0.4 *. t.Session.t_restore_ms;
      e_wire_ns_per_byte = 1.0 (* placeholder; re-measured per attempt *) }

(* ------------------------------------------------------------------ *)
(* One run: migration control loop + open-loop request plane           *)
(* ------------------------------------------------------------------ *)

(* Pause between a failed attempt's rollback and the next try: the
   control plane's own reaction time, not a modeled cost. *)
let redo_pause_ms = 50.0

let breaker_cfg =
  { Breaker.b_failure_threshold = 2;
    b_open_ms = 400.0;
    b_probe_successes = 1;
    b_cooldown_jitter = 0.2 }

let run c (scfg : Session.config) ~fresh ~seed =
  validate c;
  let root = Rng.create seed in
  let sc = scenario_of c (Rng.split root) in
  let arrival_seed = Rng.next root in
  let service_rng = Rng.split root in
  let fault_rng = Rng.split root in
  let est0 = calibrate scfg (fresh ()) in
  let planned = sc.sc_bad_rack in
  let link = Transport.link scfg.Session.cfg_transport in
  let pool = Rack.create ~racks:c.su_racks ~servers_each:c.su_servers_each in
  let breakers =
    Array.init c.su_racks (fun r ->
        Breaker.create
          ~seed:(Int64.add seed (Int64.of_int ((r * 7) + 1)))
          ~cfg:breaker_cfg ())
  in
  let quarantine = Quarantine.create () in
  let deadlines = Deadline.create () in
  let events = ref [] in
  let event ~ms kind detail =
    events := { ev_ms = ms; ev_kind = kind; ev_detail = detail } :: !events
  in
  let rung = ref Degrade.Full in
  let deepest = ref Degrade.Full in
  let rung_rank = function
    | Degrade.Full -> 0 | Hybrid_only -> 1 | Precopy_only -> 2 | Postponed -> 3
  in
  let sink r = if rung_rank r > rung_rank !deepest then deepest := r in
  let degrade_to ~ms r =
    rung := r;
    sink r;
    Degrade.record r;
    event ~ms "degrade" (Degrade.rung_name r)
  in
  let p = fresh () in
  let windows = ref [] in           (* (start, stop), chronological, disjoint *)
  let now = ref c.su_migrate_at_ms in
  let attempts = ref 0 in
  let postpones = ref 0 in
  let sheds = ref 0 in
  let cancels = ref 0 in
  let committed = ref None in       (* (rack, mech, transport, fault, attempt) *)
  let transport_for ~rack ~lazy_ ~attempt =
    let base = if lazy_ then Transport.page_server link else Transport.scp link in
    let base =
      if rack_bad sc ~rack ~now_ms:!now then
        Transport.degraded ~factor:sc.sc_degrade base
      else base
    in
    let jitter =
      if c.su_control then
        Some (Int64.add seed (Int64.of_int ((attempt * 31) + rack)))
      else None
    in
    Transport.retrying ~attempts:4 ?jitter base
  in
  let fault_for ~rack ~attempt =
    if rack_bad sc ~rack ~now_ms:!now then
      Some
        (Fault.make
           ~seed:(Int64.to_int (Int64.add seed (Int64.of_int (attempt * 131))))
           (fault_spec sc))
    else None
  in
  let healthy_est =
    { est0 with
      Budget.e_wire_ns_per_byte = wire_ns_per_byte (Transport.scp link) }
  in
  (* Auto budget: comfortably above the calibrated healthy stop-and-copy
     blackout, so a clean migration always fits — and a 4-8x degraded
     wire does not. *)
  let budget =
    if c.su_budget_ms > 0.0 then c.su_budget_ms
    else 1.2 *. Budget.downtime_ms healthy_est Budget.Vanilla
  in
  (* fixed-mechanism baseline for the control-off arm: whatever the
     budget picker would choose on the healthy calibration numbers *)
  let off_mech = Budget.choose ~budget_ms:budget healthy_est in
  let breaker_fail rack ~ms =
    let was_open = Breaker.state breakers.(rack) = Breaker.Open in
    Breaker.record_failure breakers.(rack) ~now_ms:ms;
    if (not was_open) && Breaker.state breakers.(rack) = Breaker.Open then
      event ~ms "breaker-trip" (Printf.sprintf "rack=%d" rack)
  in
  let admissible_rack r ~now_ms =
    Breaker.allow breakers.(r) ~now_ms
    && Quarantine.admits quarantine ~key:r ~now_ms
  in
  let postpone () =
    incr postpones;
    sink Degrade.Postponed;
    Degrade.record Degrade.Postponed;
    let back = Degrade.postpone_backoff_ms ~attempt:(!postpones - 1) () in
    event ~ms:!now "postpone" (Printf.sprintf "backoff=%.0fms" back);
    now := !now +. back;
    (* conditions are re-evaluated from scratch after the wait *)
    rung := Degrade.Full
  in
  while !committed = None && !attempts < c.su_max_attempts do
    incr attempts;
    let attempt = !attempts in
    if c.su_control && !rung = Degrade.Postponed then postpone ()
    else begin
      (* --- placement: shed away from open breakers / quarantine --- *)
      let dest =
        if not c.su_control then Some planned
        else begin
          let admissible =
            List.filter
              (fun r -> admissible_rack r ~now_ms:!now)
              (List.init c.su_racks (fun i -> i))
          in
          (* planned rack first so placement prefers it on ties *)
          let ordered =
            List.filter (fun r -> r = planned) admissible
            @ List.filter (fun r -> r <> planned) admissible
          in
          let healthy_est_ms =
            Transport.transfer_ns (Transport.scp link)
              est0.Budget.e_image_bytes
            /. 1e6
          in
          let cands =
            List.map
              (fun r ->
                { Placement.dc_index = r;
                  dc_lowest_slot = r;
                  dc_ops_per_ns =
                    scfg.Session.cfg_dst_node.Node.n_ops_per_ns;
                  dc_core_w = scfg.Session.cfg_dst_node.Node.n_core_w;
                  dc_est_ms = healthy_est_ms })
              ordered
          in
          Option.map
            (fun d -> d.Placement.dc_index)
            (Placement.choose_dest Placement.Latency_aware
               ~page_wait_ms:(fun d ->
                 Rack.wait_ms pool ~rack:d.Placement.dc_index ~now_ms:!now)
               cands)
        end
      in
      match dest with
      | None -> postpone ()
      | Some rack ->
        if c.su_control && rack <> planned then begin
          incr sheds;
          event ~ms:!now "shed" (Printf.sprintf "rack=%d" rack)
        end;
        (* --- mechanism: ladder pin, or the budget picker at Full --- *)
        let probe_wire =
          wire_ns_per_byte (transport_for ~rack ~lazy_:false ~attempt)
        in
        let mech =
          if not c.su_control then Some off_mech
          else
            match Degrade.mechanism !rung with
            | Some m -> Some m
            | None ->
              let m, fits =
                Budget.choose_detail ~budget_ms:budget
                  { est0 with Budget.e_wire_ns_per_byte = probe_wire }
              in
              if fits then Some m
              else begin
                (* The observed wire on this rack fits nothing — that is
                   evidence against the rack. Shed if anywhere else will
                   take the job; degrade the mechanism only when every
                   rack looks this bad. *)
                breaker_fail rack ~ms:!now;
                let alternative =
                  List.exists
                    (fun r -> r <> rack && admissible_rack r ~now_ms:!now)
                    (List.init c.su_racks (fun i -> i))
                in
                if alternative then begin
                  now := !now +. redo_pause_ms;
                  None (* skip the session; the next attempt sheds *)
                end
                else begin
                  degrade_to ~ms:!now Degrade.Hybrid_only;
                  Degrade.mechanism Degrade.Hybrid_only
                end
              end
        in
        match mech with
        | None -> ()
        | Some mech ->
        let transport = transport_for ~rack ~lazy_:(needs_lazy mech) ~attempt in
        let fault = fault_for ~rack ~attempt in
        let scfg' =
          { scfg with
            Session.cfg_transport = transport;
            cfg_fault = fault;
            cfg_resident_pages = [] }
        in
        let pre =
          if precopies mech then
            Some
              (Session.precopy scfg' p
                 ~advance:(fun _ms ->
                   ignore (Process.run p ~max_instrs:c.su_round_instrs))
                 ~max_rounds:c.su_max_rounds
                 ~downtime_budget_ms:budget)
          else None
        in
        let precopy_ms =
          match pre with Some s -> s.Session.pcs_ms | None -> 0.0
        in
        let scfg' =
          { scfg' with
            Session.cfg_resident_pages =
              (match pre with
               | Some s -> s.Session.pcs_resident
               | None -> []) }
        in
        let att =
          Guard.run ~deadlines
            ~budget_ms:(if c.su_control then budget else infinity)
            scfg' p
        in
        let black_start = !now +. precopy_ms in
        let black_stop = black_start +. att.Guard.ga_blackout_ms in
        if att.Guard.ga_blackout_ms > 0.0 then
          windows := (black_start, black_stop) :: !windows;
        (* the eager window occupies a page server on the dest rack, so
           repeated attempts congest the pool other tenants share *)
        ignore
          (Rack.acquire pool ~rack ~now_ms:black_start
             ~service_ms:att.Guard.ga_blackout_ms);
        (match att.Guard.ga_outcome with
         | Ok _ ->
           if c.su_control then begin
             Breaker.record_success breakers.(rack) ~now_ms:!now;
             Quarantine.report quarantine ~key:rack ~now_ms:!now ~ok:true
           end;
           event ~ms:black_stop "commit"
             (Printf.sprintf "rack=%d mech=%s rung=%s attempt=%d" rack
                (Budget.mechanism_name mech)
                (Degrade.rung_name !rung)
                attempt);
           committed :=
             Some (rack, mech, transport, fault, att, black_stop)
         | Error e ->
           if c.su_control then begin
             breaker_fail rack ~ms:black_stop;
             Quarantine.report quarantine ~key:rack ~now_ms:!now ~ok:false
           end;
           (match att.Guard.ga_cancelled with
            | Some stage ->
              incr cancels;
              event ~ms:black_stop "deadline-cancel"
                (Printf.sprintf "rack=%d stage=%s" rack (Derr.stage_name stage))
            | None ->
              event ~ms:black_stop "rollback"
                (Printf.sprintf "rack=%d error=%s" rack (Derr.to_string e)));
           (* walk the ladder on the won't-fit signals only: a deadline
              cancel means the projection no longer fits; plain wire
              failures are the breaker's problem, not the mechanism's *)
           if c.su_control && att.Guard.ga_cancelled <> None then
             (match Degrade.next !rung with
              | Some r -> degrade_to ~ms:black_stop r
              | None -> ());
           now := black_stop +. redo_pause_ms)
    end
  done;
  let verdict =
    match !committed with
    | None -> Rolled_back
    | Some _ -> if !deepest = Degrade.Full then Committed else Degraded !deepest
  in
  (match verdict with
   | Committed -> Metrics.inc m_committed
   | Degraded _ -> Metrics.inc m_degraded
   | Rolled_back ->
     event ~ms:!now "rollback" "attempts exhausted; source kept running");
  if verdict = Rolled_back then Metrics.inc m_rolled_back;
  Metrics.inc m_runs;
  (* ---------------- the open-loop request plane ---------------- *)
  let windows = List.rev !windows in
  let blackout_total =
    List.fold_left (fun acc (s, e) -> acc +. (e -. s)) 0.0 windows
  in
  let resume =
    match !committed with
    | Some (_, _, _, _, _, stop) -> Some stop
    | None -> None
  in
  let mig_start = c.su_migrate_at_ms in
  let mig_end =
    match resume with
    | Some r -> r
    | None -> (match List.rev windows with (_, e) :: _ -> e | [] -> mig_start)
  in
  let arrivals =
    Arrival.poisson ~seed:arrival_seed ~rate_per_ms:c.su_rate_per_ms
  in
  let lanes = Array.make c.su_lanes 0.0 in
  let page_bytes =
    int_of_float
      (float_of_int Dapper_binary.Layout.page_size
       *. scfg.Session.cfg_bytes_scale)
  in
  let all = Sketch.create () in
  let during = Sketch.create () in
  let fp = ref fnv_offset in
  let ok_n = ref 0 in
  let track_overhead = 1.03 in
  let class_mult u = if u < 0.6 then 0.8 else if u < 0.9 then 1.2 else 1.6 in
  let expo rng = -.Float.log (1.0 -. Rng.float rng) in
  let remaining =
    ref
      (match !committed with
       | Some (_, m, _, _, att, _) when needs_lazy m -> att.Guard.ga_lazy_left
       | _ -> 0)
  in
  let hot_pages =
    match !committed with
    | Some (_, _, _, _, att, _) -> max 1 att.Guard.ga_hot_pages
    | None -> 1
  in
  for _ = 1 to c.su_requests do
    let arrive = Arrival.next arrivals in
    let lane = ref 0 in
    for i = 1 to c.su_lanes - 1 do
      if lanes.(i) < lanes.(!lane) then lane := i
    done;
    let t0 = Float.max arrive lanes.(!lane) in
    (* push through every blackout window the start lands in; windows
       are chronological and disjoint, so one pass suffices *)
    let t0 =
      List.fold_left
        (fun t (s, e) -> if t >= s && t < e then e else t)
        t0 windows
    in
    let on_dst = match resume with Some r -> t0 >= r | None -> false in
    let mean =
      if on_dst then c.su_service_dst_ms
      else if t0 >= mig_start && t0 < mig_end then
        c.su_service_src_ms *. track_overhead
      else c.su_service_src_ms
    in
    let svc = mean *. class_mult (Rng.float service_rng) *. expo service_rng in
    let fault_ms =
      if on_dst && !remaining > 0 then begin
        if
          Rng.float fault_rng
          < float_of_int !remaining /. float_of_int hot_pages
        then begin
          match !committed with
          | Some (rack, _, transport, fault, _, _) ->
            let fault =
              if rack_bad sc ~rack ~now_ms:t0 then fault else None
            in
            let stall =
              Transport.fetch_stall_ns transport ?fault ~page_bytes () /. 1e6
            in
            let wait =
              snd (Rack.acquire_wait pool ~rack ~now_ms:t0 ~service_ms:stall)
            in
            decr remaining;
            stall +. wait
          | None -> 0.0
        end
        else 0.0
      end
      else 0.0
    in
    let finish = t0 +. svc +. fault_ms in
    lanes.(!lane) <- finish;
    let lat = finish -. arrive in
    Sketch.add all lat;
    if lat <= c.su_slo_ms then incr ok_n;
    if (arrive >= mig_start && arrive < mig_end) || fault_ms > 0.0 then
      Sketch.add during lat;
    fp := fnv_mix !fp (Int64.bits_of_float lat)
  done;
  fp := fnv_mix !fp (Int64.of_int !attempts);
  fp := fnv_mix !fp (Int64.of_int (rung_rank !deepest));
  { r_seed = seed;
    r_scenario = sc;
    r_verdict = verdict;
    r_attempts = !attempts;
    r_postpones = !postpones;
    r_sheds = !sheds;
    r_trips = Array.fold_left (fun acc b -> acc + Breaker.trips b) 0 breakers;
    r_cancels = !cancels;
    r_final_rack =
      (match !committed with Some (rk, _, _, _, _, _) -> Some rk | None -> None);
    r_blackout_ms = blackout_total;
    r_requests = c.su_requests;
    r_ok = !ok_n;
    r_availability = float_of_int !ok_n /. float_of_int c.su_requests;
    r_all = all;
    r_during = during;
    r_events = List.rev !events;
    r_fingerprint = !fp }

(* ------------------------------------------------------------------ *)
(* Sweep                                                               *)
(* ------------------------------------------------------------------ *)

type summary = {
  y_control : bool;
  y_seeds : int;
  y_committed : int;
  y_degraded : int;
  y_rolled_back : int;
  y_postponed : int;          (** runs with at least one postponement *)
  y_attempts : int;
  y_sheds : int;
  y_trips : int;
  y_cancels : int;
  y_blackout_ms : float;
  y_requests : int;
  y_ok : int;
  y_availability : float;
  y_all : Sketch.t;
  y_during : Sketch.t;
}

let summarize ~control runs =
  let all = ref (Sketch.create ()) in
  let during = ref (Sketch.create ()) in
  let c = ref 0 and d = ref 0 and rb = ref 0 and pp = ref 0 in
  let at = ref 0 and sh = ref 0 and tr = ref 0 and ca = ref 0 in
  let bl = ref 0.0 and rq = ref 0 and ok = ref 0 in
  List.iter
    (fun r ->
      (match r.r_verdict with
       | Committed -> incr c
       | Degraded _ -> incr d
       | Rolled_back -> incr rb);
      if r.r_postpones > 0 then incr pp;
      at := !at + r.r_attempts;
      sh := !sh + r.r_sheds;
      tr := !tr + r.r_trips;
      ca := !ca + r.r_cancels;
      bl := !bl +. r.r_blackout_ms;
      rq := !rq + r.r_requests;
      ok := !ok + r.r_ok;
      all := Sketch.merge !all r.r_all;
      during := Sketch.merge !during r.r_during)
    runs;
  { y_control = control;
    y_seeds = List.length runs;
    y_committed = !c;
    y_degraded = !d;
    y_rolled_back = !rb;
    y_postponed = !pp;
    y_attempts = !at;
    y_sheds = !sh;
    y_trips = !tr;
    y_cancels = !ca;
    y_blackout_ms = !bl;
    y_requests = !rq;
    y_ok = !ok;
    y_availability =
      (if !rq = 0 then 1.0 else float_of_int !ok /. float_of_int !rq);
    y_all = !all;
    y_during = !during }

let sweep c scfg ~fresh ~seeds ~seed0 =
  let runs =
    List.init seeds (fun i ->
        run c scfg ~fresh ~seed:(Int64.add seed0 (Int64.of_int i)))
  in
  (runs, summarize ~control:c.su_control runs)

let mig_p99 y =
  if Sketch.count y.y_during = 0 then 0.0 else Sketch.quantile y.y_during 0.99

let summary_line y =
  Printf.sprintf
    "control=%s seeds=%d committed=%d degraded=%d rolled-back=%d postponed=%d \
     attempts=%d sheds=%d trips=%d cancels=%d avail=%.4f mig-p99=%.3f p99=%.3f"
    (if y.y_control then "on" else "off")
    y.y_seeds y.y_committed y.y_degraded y.y_rolled_back y.y_postponed
    y.y_attempts y.y_sheds y.y_trips y.y_cancels y.y_availability (mig_p99 y)
    (if Sketch.count y.y_all = 0 then 0.0 else Sketch.quantile y.y_all 0.99)

let event_lines r =
  List.map
    (fun e ->
      Printf.sprintf "%016Lx %10.2f %-15s %s" r.r_seed e.ev_ms e.ev_kind
        e.ev_detail)
    r.r_events
