(** Fleet health scoring: per-key failure EWMAs and quarantine.

    Keys are whatever failure domain the caller scores — node ids for
    {!Dapper_cluster.Fleet}, rack ids for {!Dapper_cluster.Fleet_xl}.
    Every outcome report folds into the key's failure EWMA
    ([alpha * fail + (1 - alpha) * ewma], fail = 0/1); once a key has
    at least [q_min_reports] reports and its EWMA reaches
    [q_threshold], it is quarantined: {!admits} turns false, so the
    admission gates stop sending work its way. Because a quarantined
    key takes no work, release is time-based: after [q_heal_ms] of
    quiet it is re-admitted on half trust (EWMA reset to half the
    threshold), ready to re-trip quickly if still bad.

    Deterministic: no randomness at all — the quarantine history is a
    pure function of the report sequence. A key that never reports a
    failure keeps EWMA 0 and is never quarantined. *)

type cfg = {
  q_alpha : float;       (** EWMA weight of the newest report, (0, 1] *)
  q_threshold : float;   (** failure EWMA that quarantines, (0, 1] *)
  q_min_reports : int;   (** reports before the EWMA is trusted *)
  q_heal_ms : float;     (** quiet time before auto-release *)
}

(** alpha 0.3, threshold 0.5, 3 reports, 5 s heal window. *)
val default_cfg : cfg

type t

(** Raises [Invalid_argument] on out-of-range parameters. *)
val create : ?cfg:cfg -> unit -> t

(** Fold one outcome for [key] at [now_ms] into its score. *)
val report : t -> key:int -> now_ms:float -> ok:bool -> unit

(** May work be sent to [key] at [now_ms]? Performs the time-based
    release check first, so a healed key admits again. *)
val admits : t -> key:int -> now_ms:float -> bool

(** Keys currently quarantined at [now_ms], sorted. *)
val quarantined : t -> now_ms:float -> int list

(** Current failure EWMA for [key] (0 for an unknown key). *)
val failure_ewma : t -> key:int -> float

(** Quarantine entries since creation (releases not subtracted). *)
val entered : t -> int
