(** Stage-cost history and deadline derivation for the session watchdog.

    A [Deadline.t] keeps one EWMA of modeled cost (ms) per migration
    stage. {!Guard} consults it before running a stage: a stage whose
    projected cost no longer fits the remaining blackout budget is
    cancelled {e early} — rolled back through the ordinary 2PC path and
    charged as [Dapper_error.Deadline_exceeded] — instead of being
    discovered over budget after the blackout already happened.

    History arrives two ways: {!observe} after every completed stage
    (the guard feeds it), and {!seed_from_metrics}, which warms a fresh
    store from the fleet-wide [session.stage_ms.*] histograms the
    session pipeline already maintains. The transfer stage is the
    exception: its cost is projected analytically from the image size
    and the transport at hand (see {!Guard}), because a degraded or
    flaky transport shows up there immediately — before any history
    exists. *)

type t

(** [alpha] is the EWMA weight of the newest observation, in (0, 1]
    (default 0.3). Raises [Invalid_argument] otherwise. *)
val create : ?alpha:float -> unit -> t

(** Fold one measured stage cost into the history. *)
val observe : t -> Dapper_util.Dapper_error.stage -> float -> unit

(** Projected cost of [stage], or [None] with no history (the guard
    runs un-projected stages rather than guessing). *)
val projected : t -> Dapper_util.Dapper_error.stage -> float option

(** Warm every stage that has no history yet from the mean of its
    [session.stage_ms.<stage>] metrics histogram, when present. *)
val seed_from_metrics : t -> unit

(** [budget_ms ~ops_per_ns ~pause_budget ()] converts a session's
    instruction-denominated pause budget into the blackout time it
    represents at the source node's speed
    ([pause_budget / (ops_per_ns * 1e6)] ms), scaled by [margin]
    (default 1.0). Raises [Invalid_argument] on non-positive
    [ops_per_ns] or [margin]. *)
val budget_ms : ?margin:float -> ops_per_ns:float -> pause_budget:int -> unit -> float
