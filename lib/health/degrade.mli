(** The degradation ladder: what a migration does instead of failing.

    When breakers are open or the downtime-budget picker reports
    nothing fits ({!Dapper_traffic.Budget.choose_detail}), the control
    plane walks down a deterministic ladder rather than blowing the
    blackout or abandoning the job:

    + [Full] — no degradation: the budget picker chooses freely;
    + [Hybrid_only] — pin hybrid pre+post-copy, the minimum-blackout
      mechanism;
    + [Precopy_only] — pin pre-copy + eager residual: nothing depends
      on the source link after restore, so an unreliable transport is
      only trusted during the (retried, checksummed) eager window;
    + [Postponed] — do not migrate now; back off and retry after
      {!postpone_backoff_ms}.

    Each rung taken is recorded in [Metrics]
    ([health.degrade.hybrid|precopy|postponed]) and by the callers in
    their outcome records, so a degraded fleet is visible, never
    silent. *)

type rung = Full | Hybrid_only | Precopy_only | Postponed

val rung_name : rung -> string
val all_rungs : rung list

(** One rung down; [None] past [Postponed] (the caller rolls back —
    explicitly, with the source intact). *)
val next : rung -> rung option

(** Bump the rung's metrics counter ([Full] records nothing). *)
val record : rung -> unit

(** The copy mechanism a rung pins, [None] when the budget picker (or
    the caller's schedule) decides. *)
val mechanism : rung -> Dapper_traffic.Budget.mechanism option

(** Capped exponential backoff before re-attempting a postponed
    eviction: [min cap (base * 2^attempt)]. Raises [Invalid_argument]
    on non-positive base, cap below base, or negative attempt. *)
val postpone_backoff_ms : ?base_ms:float -> ?cap_ms:float -> attempt:int -> unit -> float
