(** Sustained-chaos runs: the whole health plane under one roof.

    Each seeded run draws a {e correlated} fault scenario — one
    destination rack (or, a quarter of the time, every rack) turns bad
    for a window around the scheduled migration: its wire slows 4-8x
    and payloads start dropping, corrupting, delaying, and failing
    restores. A migration control loop then drives the job to its
    destination through bounded attempts, while a Loadgen-style
    open-loop request plane measures what the tenant's clients saw:
    per-request latency (with every attempt's blackout window and the
    post-copy fault tail in the path), availability against an SLO,
    and the during-migration tail.

    With [su_control = true], the loop runs the full self-healing
    plane: per-rack {!Breaker}s (tripped racks are shed via
    {!Dapper_cluster.Placement.Latency_aware}), rack {!Quarantine},
    the {!Guard} watchdog with a shared {!Deadline} store (cancel +
    rollback instead of a blown blackout), the {!Degrade} ladder
    (budget-infeasible and deadline-cancel signals walk it down;
    bottoming out postpones with capped exponential backoff and
    re-evaluates from scratch). With [su_control = false], the same
    scenario is replayed against a naive loop: always the planned
    rack, one fixed mechanism, no cancellation — only the transport's
    own retries between attempts.

    Either way every attempt is bounded ([su_max_attempts]) and ends
    in an explicit commit or an explicit 2PC rollback with the source
    still running — there are no lost states and no unbounded retry
    loops, by construction. *)

type cfg = {
  su_requests : int;          (** request-plane draws per run *)
  su_lanes : int;             (** concurrent service lanes *)
  su_rate_per_ms : float;     (** Poisson arrival rate *)
  su_service_src_ms : float;  (** mean service on the source *)
  su_service_dst_ms : float;  (** mean service on the destination *)
  su_slo_ms : float;          (** per-request latency SLO *)
  su_migrate_at_ms : float;   (** when the eviction is scheduled *)
  su_budget_ms : float;
      (** blackout budget for the picker and the watchdog; 0 = auto,
          1.2x the calibrated healthy stop-and-copy blackout *)
  su_racks : int;             (** destination racks to place across *)
  su_servers_each : int;      (** page servers per rack *)
  su_max_attempts : int;      (** hard bound on migration attempts *)
  su_round_instrs : int;      (** source progress per pre-copy round *)
  su_max_rounds : int;        (** pre-copy round cap *)
  su_control : bool;          (** health plane on or off *)
}

(** 20k requests, 8 lanes, 4/ms, SLO 25 ms, migrate at 1 s, auto
    budget, 4 racks x 2 servers, 16 attempts, control on. *)
val default_cfg : cfg

type scenario = {
  sc_bad_rack : int;
  sc_all_racks_bad : bool;
  sc_degrade : float;
  sc_fault_prob : float;
  sc_bad_from_ms : float;
  sc_bad_until_ms : float;
}

(** Is [rack] inside its bad window at [now_ms]? *)
val rack_bad : scenario -> rack:int -> now_ms:float -> bool

type verdict = Committed | Degraded of Degrade.rung | Rolled_back

val verdict_name : verdict -> string

(** One timestamped control-plane decision, for the degradation trace:
    kinds are [degrade], [postpone], [shed], [breaker-trip],
    [deadline-cancel], [commit], [rollback]. *)
type event = { ev_ms : float; ev_kind : string; ev_detail : string }

type run = {
  r_seed : int64;
  r_scenario : scenario;
  r_verdict : verdict;
  r_attempts : int;
  r_postpones : int;
  r_sheds : int;
  r_trips : int;              (** breaker trips, summed over racks *)
  r_cancels : int;            (** watchdog deadline cancels *)
  r_final_rack : int option;  (** where the job landed, if it did *)
  r_blackout_ms : float;      (** summed over every attempt's window *)
  r_requests : int;
  r_ok : int;                 (** requests within the SLO *)
  r_availability : float;
  r_all : Dapper_traffic.Sketch.t;
  r_during : Dapper_traffic.Sketch.t;
  r_events : event list;      (** chronological *)
  r_fingerprint : int64;
}

(** [run cfg scfg ~fresh ~seed] — one seeded run. [fresh] builds a
    process image (one is consumed for calibration, one is migrated);
    [scfg] supplies nodes, binaries, and the link (its transport is
    replaced per attempt). Raises [Invalid_argument] on a bad [cfg] or
    a calibration failure. *)
val run :
  cfg ->
  Dapper.Session.config ->
  fresh:(unit -> Dapper_machine.Process.t) ->
  seed:int64 ->
  run

type summary = {
  y_control : bool;
  y_seeds : int;
  y_committed : int;
  y_degraded : int;
  y_rolled_back : int;
  y_postponed : int;
  y_attempts : int;
  y_sheds : int;
  y_trips : int;
  y_cancels : int;
  y_blackout_ms : float;
  y_requests : int;
  y_ok : int;
  y_availability : float;
  y_all : Dapper_traffic.Sketch.t;
  y_during : Dapper_traffic.Sketch.t;
}

val summarize : control:bool -> run list -> summary

(** [sweep cfg scfg ~fresh ~seeds ~seed0] — seeds [seed0, seed0+1, ...]
    in order, plus their summary. *)
val sweep :
  cfg ->
  Dapper.Session.config ->
  fresh:(unit -> Dapper_machine.Process.t) ->
  seeds:int ->
  seed0:int64 ->
  run list * summary

(** p99 of the merged during-migration sketch (0 when empty). *)
val mig_p99 : summary -> float

val summary_line : summary -> string

(** The run's degradation trace, one formatted line per event. *)
val event_lines : run -> string list
