(** The session watchdog: stage deadlines enforced {e before} each
    stage runs.

    [run] drives the six-stage session pipeline exactly as
    [Session.run] does, but holds a blackout budget (ms) and a
    {!Deadline.t} of measured stage costs. Before each stage it
    projects the stage's cost — the EWMA history for
    pause/dump/recode/restore/commit, an analytic
    [Transport.transfer_ns] projection of the image at hand for the
    transfer (so a degraded link is caught with zero history, before
    any bytes move) — and if the projection no longer fits the
    remaining budget, the stage is cancelled {e early}: the session
    rolls back through the ordinary 2PC path (source resumed, nothing
    stranded) and the attempt returns the retriable
    [Dapper_error.Deadline_exceeded (stage, projected_ms)].

    Every completed stage's measured cost is folded back into the
    deadline store, so a shared store across attempts (or a store
    warmed by {!Deadline.seed_from_metrics}) projects better with
    every migration.

    A stage with no history runs unguarded — the watchdog never guesses
    a cost it has not measured (the transfer's analytic projection is
    the deliberate exception). *)

type attempt = {
  ga_outcome : (Dapper.Session.outcome, Dapper_util.Dapper_error.t) result;
  ga_blackout_ms : float;
      (** how long the source was paused this attempt: completed stage
          costs, plus — on a failed transfer — the wire attempts and
          backoff the failure already charged *)
  ga_cancelled : Dapper_util.Dapper_error.stage option;
      (** the stage the watchdog cancelled, when it did *)
  ga_budget_ms : float;  (** the budget enforced (resolved) *)
  ga_hot_pages : int;
      (** dump-time page population (eager + lazy) — the fault tail's
          denominator; 0 when the attempt failed before the dump *)
  ga_lazy_left : int;
      (** lazy pages still unfetched after commit (restore debt minus
          the commit drain); 0 for eager mechanisms and failures *)
}

(** [run ?deadlines ?margin ?budget_ms cfg p] — one guarded migration
    attempt. [budget_ms] defaults to {!Deadline.budget_ms} over the
    config's pause budget at the source node's speed, scaled by
    [margin] (default 1.0); [deadlines] defaults to a fresh (empty)
    store, i.e. only the transfer is projected. *)
val run :
  ?deadlines:Deadline.t ->
  ?margin:float ->
  ?budget_ms:float ->
  Dapper.Session.config ->
  Dapper_machine.Process.t ->
  attempt
