open Dapper_util
module Metrics = Dapper_obs.Metrics

let m_trips = Metrics.counter "health.breaker.trips"
let m_probes = Metrics.counter "health.breaker.probes"
let m_recloses = Metrics.counter "health.breaker.recloses"

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type cfg = {
  b_failure_threshold : int;
  b_open_ms : float;
  b_probe_successes : int;
  b_cooldown_jitter : float;
}

let default_cfg =
  { b_failure_threshold = 3; b_open_ms = 250.0; b_probe_successes = 2;
    b_cooldown_jitter = 0.0 }

type t = {
  c : cfg;
  rng : Rng.t;
  mutable b_state : state;
  mutable b_consec_failures : int;
  mutable b_probe_wins : int;
  mutable b_probe_at : float;  (* when Open, the earliest probe time *)
  mutable b_trips : int;
}

let create ?(seed = 0L) ?(cfg = default_cfg) () =
  if cfg.b_failure_threshold < 1 then
    invalid_arg "Breaker.create: failure threshold < 1";
  if cfg.b_open_ms < 0.0 then invalid_arg "Breaker.create: open_ms < 0";
  if cfg.b_probe_successes < 1 then
    invalid_arg "Breaker.create: probe_successes < 1";
  if cfg.b_cooldown_jitter < 0.0 || cfg.b_cooldown_jitter >= 1.0 then
    invalid_arg "Breaker.create: cooldown jitter outside [0, 1)";
  { c = cfg; rng = Rng.create seed; b_state = Closed; b_consec_failures = 0;
    b_probe_wins = 0; b_probe_at = 0.0; b_trips = 0 }

let state t = t.b_state
let trips t = t.b_trips

(* Schedule the next probe: one cooldown out, spread by the seeded
   jitter draw so breakers armed with different seeds never probe (and
   so re-trip) in lockstep. Exactly one draw per trip — the schedule is
   replayable from the seed and the trip/probe history alone. *)
let trip t ~now_ms =
  let spread =
    if t.c.b_cooldown_jitter = 0.0 then 1.0
    else 1.0 +. (t.c.b_cooldown_jitter *. ((2.0 *. Rng.float t.rng) -. 1.0))
  in
  t.b_state <- Open;
  t.b_consec_failures <- 0;
  t.b_probe_wins <- 0;
  t.b_probe_at <- now_ms +. (t.c.b_open_ms *. spread);
  t.b_trips <- t.b_trips + 1;
  Metrics.inc m_trips

(* A closed or half-open breaker serves; an open one refuses until its
   cooldown elapses, at which point the first [allow] is the probe that
   moves it to half-open. Pure state transition on the simulated clock —
   no wall time, no hidden draws. *)
let allow t ~now_ms =
  match t.b_state with
  | Closed | Half_open -> true
  | Open ->
    if now_ms >= t.b_probe_at then begin
      t.b_state <- Half_open;
      t.b_probe_wins <- 0;
      Metrics.inc m_probes;
      true
    end
    else false

let record_success t ~now_ms =
  ignore now_ms;
  match t.b_state with
  | Closed -> t.b_consec_failures <- 0
  | Half_open ->
    t.b_probe_wins <- t.b_probe_wins + 1;
    if t.b_probe_wins >= t.c.b_probe_successes then begin
      t.b_state <- Closed;
      t.b_consec_failures <- 0;
      t.b_probe_wins <- 0;
      Metrics.inc m_recloses
    end
  | Open -> ()  (* success reported for work admitted before the trip *)

let record_failure t ~now_ms =
  match t.b_state with
  | Closed ->
    t.b_consec_failures <- t.b_consec_failures + 1;
    if t.b_consec_failures >= t.c.b_failure_threshold then trip t ~now_ms
  | Half_open ->
    (* a failed probe re-opens immediately: half-open trusts one window *)
    trip t ~now_ms
  | Open -> ()
