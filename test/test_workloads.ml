open Dapper_isa
open Dapper_machine
open Dapper_workloads
open Dapper_net
open Dapper
module Link = Dapper_codegen.Link

let check = Alcotest.check
let fuel = 300_000_000

let run_native c arch =
  let p = Process.load (Link.binary_for c arch) in
  match Process.run_to_completion p ~fuel with
  | Process.Exited_run code -> (code, Process.stdout_contents p)
  | Process.Crashed cr ->
    Alcotest.fail
      (Printf.sprintf "%s crashed on %s: pc=0x%Lx %s" c.Link.cp_app (Arch.name arch)
         cr.cr_pc cr.cr_reason)
  | Process.Idle -> Alcotest.fail (c.Link.cp_app ^ ": deadlock")
  | Process.Progress -> Alcotest.fail (c.Link.cp_app ^ ": out of fuel")

(* Every benchmark must produce identical output on both ISAs and print
   a nonempty checksum line. *)
let test_cross_isa_equivalence (sp : Registry.spec) () =
  let c = Registry.compiled sp in
  let cx, ox = run_native c Arch.X86_64 in
  let ca, oa = run_native c Arch.Aarch64 in
  check Alcotest.bool "exit codes equal" true (Int64.equal cx ca);
  check Alcotest.string "stdout equal" ox oa;
  check Alcotest.bool "output nonempty" true (String.length ox > 0)

(* Live-migrate each benchmark mid-run and compare observables. *)
let test_migration (sp : Registry.spec) () =
  let c = Registry.compiled sp in
  let _, expected = run_native c Arch.Aarch64 in
  let expected_code, _ = run_native c Arch.Aarch64 in
  let p = Process.load c.Link.cp_x86 in
  (match Process.run p ~max_instrs:400_000 with
   | Process.Progress -> ()
   | _ -> Alcotest.fail "finished before migration point");
  match
    Migrate.migrate ~src_node:Node.xeon ~dst_node:Node.rpi ~src_bin:c.Link.cp_x86
      ~dst_bin:c.Link.cp_arm p
  with
  | Error e -> Alcotest.fail (Migrate.error_to_string e)
  | Ok r ->
    let before = Process.stdout_contents p in
    (match Process.run_to_completion r.Migrate.r_process ~fuel with
     | Process.Exited_run code ->
       check Alcotest.bool "exit equal" true (Int64.equal code expected_code);
       check Alcotest.string "stdout equal" expected
         (before ^ Process.stdout_contents r.Migrate.r_process)
     | Process.Crashed cr ->
       Alcotest.fail
         (Printf.sprintf "crashed after migration: pc=0x%Lx %s" cr.cr_pc cr.cr_reason)
     | Process.Idle | Process.Progress -> Alcotest.fail "did not finish after migration")

let migration_targets =
  [ "npb-cg.A"; "npb-ft.A"; "linpack"; "redis"; "blackscholes"; "swaptions"; "nbody" ]

let suites =
  [ ( "workloads-cross-isa",
      List.map
        (fun sp ->
          Alcotest.test_case sp.Registry.sp_name `Slow (test_cross_isa_equivalence sp))
        (Registry.all ()) );
    ( "workloads-migration",
      List.map
        (fun name ->
          Alcotest.test_case name `Slow (test_migration (Registry.find name)))
        migration_targets ) ]
