open Dapper_machine
open Dapper_criu
open Dapper
module Link = Dapper_codegen.Link

let check = Alcotest.check
let ok = Dapper_util.Dapper_error.ok_exn

let paused_process () =
  let c = Registry_helpers.compute () in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:300_000);
  (match Monitor.request_pause p ~budget:20_000_000 with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Monitor.error_to_string e));
  (c, p)

let test_dump_requires_quiescence () =
  let c = Registry_helpers.compute () in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:10_000);
  check Alcotest.bool "dump rejects running process" true
    (match Dump.dump p with
     | Error (Dapper_util.Dapper_error.Dump_failed _) -> true
     | _ -> false)

let test_dump_stats () =
  let _, p = paused_process () in
  let image = ok (Dump.dump p) in
  let stats = Dump.stats_of image in
  check Alcotest.bool "pages dumped" true (stats.Dump.pages_dumped > 0);
  check Alcotest.int "nothing lazy in vanilla mode" 0 stats.Dump.pages_lazy;
  let lazy_image = ok (Dump.dump ~lazy_pages:true p) in
  let lstats = Dump.stats_of lazy_image in
  check Alcotest.bool "lazy leaves pages behind" true (lstats.Dump.pages_lazy > 0);
  check Alcotest.bool "lazy dumps fewer" true (lstats.Dump.pages_dumped < stats.Dump.pages_dumped);
  check Alcotest.bool "lazy image smaller" true (lstats.Dump.bytes < stats.Dump.bytes)

let test_image_read_write_u64 () =
  let _, p = paused_process () in
  let image = ok (Dump.dump p) in
  (* find a dumped data page and poke it *)
  let e =
    List.find (fun (e : Images.pagemap_entry) -> e.pm_in_dump) image.Images.is_pagemap
  in
  let addr = Int64.add e.pm_vaddr 16L in
  let image' = Images.write_u64 image addr 0xC0FFEEL in
  check Alcotest.bool "readback" true (Int64.equal (Images.read_u64 image' addr) 0xC0FFEEL);
  check Alcotest.bool "others untouched" true
    (Int64.equal (Images.read_u64 image' (Int64.add addr 8L))
       (Images.read_u64 image (Int64.add addr 8L)))

let test_image_file_errors () =
  let _, p = paused_process () in
  let image = ok (Dump.dump p) in
  let files = Images.to_files image in
  (* missing file *)
  check Alcotest.bool "missing pagemap" true
    (match Images.of_files (List.remove_assoc "pagemap.img" files) with
     | exception Images.Image_error _ -> true
     | _ -> false);
  (* corrupted protobuf *)
  let corrupt =
    List.map
      (fun (name, bytes) ->
        if name = "mm.img" then (name, String.sub bytes 0 (String.length bytes / 2))
        else (name, bytes))
      files
  in
  check Alcotest.bool "corrupt mm.img" true
    (match Images.of_files corrupt with
     | exception (Images.Image_error _ | Dapper_proto.Proto.Decode_error _) -> true
     | _ -> false)

let test_restore_rejects_wrong_app () =
  let _, p = paused_process () in
  let image = ok (Dump.dump p) in
  let other = Registry_helpers.other_app () in
  check Alcotest.bool "wrong app rejected" true
    (match Restore.restore image other.Link.cp_x86 with
     | Error (Dapper_util.Dapper_error.Restore_failed _) -> true
     | _ -> false)

let test_lazy_restore_without_server_faults () =
  let _, p = paused_process () in
  let image = ok (Dump.dump ~lazy_pages:true p) in
  (* no page source: the first touch of a lazy page (possibly the flag
     clear during restore itself) must fault *)
  match Restore.restore image p.Process.binary with
  | exception Memory.Segfault _ -> ()
  | Error e -> Alcotest.fail (Dapper_util.Dapper_error.to_string e)
  | Ok q ->
    (match Process.run_to_completion q ~fuel:10_000_000 with
     | Process.Crashed _ -> ()
     | _ -> Alcotest.fail "expected a fault without a page server")

let test_crit_rejects_pages_encode () =
  check Alcotest.bool "pages are raw" true
    (match Crit.encode_file "pages-1.img" Dapper_util.Json.Null with
     | exception Crit.Crit_error _ -> true
     | _ -> false)

let test_checkpoint_restore_preserves_everything () =
  (* identity: dump + restore on the same binary continues exactly *)
  let c, p = paused_process () in
  let out_before = Process.stdout_contents p in
  let image = ok (Dump.dump p) in
  let q = ok (Restore.restore image c.Link.cp_x86) in
  Monitor.resume p;
  (match (Process.run_to_completion p ~fuel:50_000_000,
          Process.run_to_completion q ~fuel:50_000_000) with
   | Process.Exited_run a, Process.Exited_run b ->
     check Alcotest.bool "same exit" true (Int64.equal a b);
     check Alcotest.string "same output overall"
       (Process.stdout_contents p)
       (out_before ^ Process.stdout_contents q)
   | _ -> Alcotest.fail "runs did not finish")

let suites =
  [ ( "criu",
      [ Alcotest.test_case "dump requires quiescence" `Quick test_dump_requires_quiescence;
        Alcotest.test_case "dump stats / lazy mode" `Quick test_dump_stats;
        Alcotest.test_case "image read/write u64" `Quick test_image_read_write_u64;
        Alcotest.test_case "image file errors" `Quick test_image_file_errors;
        Alcotest.test_case "restore rejects wrong app" `Quick test_restore_rejects_wrong_app;
        Alcotest.test_case "lazy restore needs server" `Quick test_lazy_restore_without_server_faults;
        Alcotest.test_case "crit pages are raw" `Quick test_crit_rejects_pages_encode;
        Alcotest.test_case "identity checkpoint/restore" `Quick
          test_checkpoint_restore_preserves_everything ] ) ]
