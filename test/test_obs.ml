(* Observability plane: trace well-formedness on the simulated clock,
   the metrics registry, agreement between the new accounting plane and
   the legacy per-run stats records, and replay determinism. *)

open Dapper_machine
open Dapper
module Trace = Dapper_obs.Trace
module Metrics = Dapper_obs.Metrics
module Link = Dapper_codegen.Link
module Node = Dapper_net.Node
module Transport = Dapper_net.Transport
module Oracle = Dapper_verify.Oracle
module Corpus = Dapper_verify.Corpus

let check = Alcotest.check

(* Replay the event stream with a stack: every End must close the
   innermost open Begin, timestamps never decrease, and a finished
   trace leaves no span open. *)
let check_well_formed events =
  let stack = ref [] in
  let last_ts = ref neg_infinity in
  List.iter
    (fun (e : Trace.event) ->
      check Alcotest.bool "monotone timestamps" true (e.Trace.ev_ts_ns >= !last_ts);
      last_ts := e.Trace.ev_ts_ns;
      match e.Trace.ev_phase with
      | Trace.Begin -> stack := e.Trace.ev_name :: !stack
      | Trace.End ->
        (match !stack with
         | top :: rest ->
           check Alcotest.string "exit matches innermost open span" top
             e.Trace.ev_name;
           stack := rest
         | [] -> Alcotest.fail "End event with no open span"))
    events;
  check Alcotest.int "all spans closed" 0 (List.length !stack)

let migrate_once () =
  let c = Registry_helpers.compute () in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:120_000);
  match
    Migrate.migrate ~src_node:Node.xeon ~dst_node:Node.rpi
      ~src_bin:c.Link.cp_x86 ~dst_bin:c.Link.cp_arm p
  with
  | Error e -> Alcotest.fail (Migrate.error_to_string e)
  | Ok r -> r

(* ----- the trace sink ----- *)

let test_trace_disabled_is_noop () =
  Trace.stop ();
  Trace.reset ();
  Trace.enter "ghost";
  Trace.advance 5.0e6;
  Trace.leave ();
  Trace.leaf "ghost-leaf" ~dur_ns:1.0e6;
  check Alcotest.int "nothing recorded while disabled" 0
    (List.length (Trace.events ()));
  check (Alcotest.float 0.0) "clock pinned at zero" 0.0 (Trace.now_ns ())

let test_trace_clock_semantics () =
  Trace.start ();
  Trace.enter "outer";
  Trace.advance 2.0e6;
  Trace.enter "inner";
  Trace.advance 3.0e6;
  (* explicit duration shorter than what children charged: the clock
     never moves backwards *)
  Trace.leave ~dur_ns:1.0e6 ();
  check (Alcotest.float 0.0) "clock kept by bigger child charge" 5.0e6
    (Trace.now_ns ());
  (* explicit duration longer than charges: clock jumps forward *)
  Trace.leave ~dur_ns:9.0e6 ();
  check (Alcotest.float 0.0) "clock jumps to begin + dur" 9.0e6 (Trace.now_ns ());
  check Alcotest.bool "leave with no open span raises" true
    (match Trace.leave () with
     | exception Invalid_argument _ -> true
     | () -> false);
  check_well_formed (Trace.events ());
  check (Alcotest.float 0.0) "outer span total" 9.0
    (Trace.total_ms "outer");
  check (Alcotest.float 0.0) "inner span total" 3.0
    (Trace.total_ms "inner");
  Trace.stop ();
  Trace.reset ()

(* Regression: enter/leave pairing used to leak the open span when the
   instrumented code raised — the next leave then closed the wrong span
   (or failed) far from the real fault. with_span must close exactly
   once on every exit path, recording the exception as a closing arg. *)
let test_with_span_closes_on_raise () =
  Trace.start ();
  let exception Boom in
  check Alcotest.bool "exception re-raised" true
    (match
       Trace.with_span "outer" (fun _ ->
           Trace.with_span "doomed" (fun c ->
               Trace.set_dur c 4.0e6;
               Trace.add_arg c "stage" "mid";
               raise Boom))
     with
    | exception Boom -> true
    | () -> false);
  check Alcotest.int "no span leaked by the raise" 0 (Trace.open_spans ());
  Trace.stop ();
  let events = Trace.events () in
  check_well_formed events;
  (* the doomed span's End event carries the accumulated args plus the
     appended exception marker, and its set_dur still moved the clock *)
  (match
     List.find_opt
       (fun (e : Trace.event) ->
         e.Trace.ev_phase = Trace.End && e.Trace.ev_name = "doomed")
       events
   with
  | None -> Alcotest.fail "doomed span has no End event"
  | Some e ->
    check Alcotest.bool "closing arg recorded" true
      (List.mem_assoc "stage" e.Trace.ev_args);
    check Alcotest.bool "exception arg appended" true
      (List.mem_assoc "exception" e.Trace.ev_args));
  check (Alcotest.float 0.0) "set_dur applied despite the raise" 4.0
    (Trace.total_ms "doomed");
  Trace.reset ()

let test_traced_migration_well_formed () =
  Trace.start ();
  let r = migrate_once () in
  Trace.stop ();
  let events = Trace.events () in
  check Alcotest.bool "events recorded" true (events <> []);
  check Alcotest.int "no span left open" 0 (Trace.open_spans ());
  check_well_formed events;
  (* per-stage span totals agree with the session's phase times (eager
     scp: nothing charges the clock outside the stage spans) *)
  let t = r.Migrate.r_times in
  let close what want got =
    check Alcotest.bool
      (Printf.sprintf "%s: %.6f ~ %.6f" what want got)
      true
      (abs_float (want -. got) < 1e-6)
  in
  let stage s = Trace.total_ms ~cat:"session" s in
  close "checkpoint = pause + dump spans" t.Migrate.t_checkpoint_ms
    (stage "pause" +. stage "dump");
  close "recode span" t.Migrate.t_recode_ms (stage "recode");
  close "transfer span" t.Migrate.t_scp_ms (stage "transfer");
  close "restore = restore + commit spans" t.Migrate.t_restore_ms
    (stage "restore" +. stage "commit");
  (* the Chrome export carries one object per event *)
  (match Trace.to_chrome_json () with
   | Dapper_util.Json.Obj kvs ->
     (match List.assoc "traceEvents" kvs with
      | Dapper_util.Json.List evs ->
        check Alcotest.int "one JSON object per event" (List.length events)
          (List.length evs)
      | _ -> Alcotest.fail "traceEvents is not a list")
   | _ -> Alcotest.fail "chrome export is not an object");
  Trace.reset ()

(* ----- the metrics registry ----- *)

let test_metrics_registry () =
  let c = Metrics.counter "obs.test.counter" in
  Metrics.inc c;
  Metrics.inc c ~by:4;
  check Alcotest.int "counter accumulates" 5 (Metrics.counter_value c);
  check Alcotest.bool "re-request returns the same metric" true
    (Metrics.counter "obs.test.counter" == c);
  check Alcotest.bool "re-registering as another type rejected" true
    (match Metrics.gauge "obs.test.counter" with
     | exception Invalid_argument _ -> true
     | _ -> false);
  let g = Metrics.gauge "obs.test.gauge" in
  Metrics.set g 2.0;
  Metrics.add g 1.5;
  check (Alcotest.float 0.0) "gauge set + add" 3.5 (Metrics.gauge_value g);
  let h = Metrics.histogram ~bounds:[| 1.0; 10.0 |] "obs.test.hist" in
  List.iter (Metrics.observe h) [ 0.5; 5.0; 50.0; 0.2 ];
  check Alcotest.int "histogram count" 4 (Metrics.histogram_count h);
  check (Alcotest.float 1e-9) "histogram sum" 55.7 (Metrics.histogram_sum h);
  (match Metrics.histogram_buckets h with
   | [ (b1, c1); (b2, c2); (b3, c3) ] ->
     check (Alcotest.float 0.0) "first bound" 1.0 b1;
     check Alcotest.int "le 1" 2 c1;
     check (Alcotest.float 0.0) "second bound" 10.0 b2;
     check Alcotest.int "le 10" 1 c2;
     check Alcotest.bool "overflow bucket unbounded" true (b3 = infinity);
     check Alcotest.int "overflow" 1 c3
   | _ -> Alcotest.fail "expected 3 buckets");
  check Alcotest.bool "descending bounds rejected" true
    (match Metrics.histogram ~bounds:[| 2.0; 1.0 |] "obs.test.bad" with
     | exception Invalid_argument _ -> true
     | _ -> false);
  Metrics.reset ();
  check Alcotest.int "reset zeroes counters" 0 (Metrics.counter_value c);
  check Alcotest.int "reset zeroes histograms" 0 (Metrics.histogram_count h);
  check Alcotest.bool "reset keeps registrations" true
    (List.mem "obs.test.counter" (Metrics.names ()))

let find_counter name =
  match Metrics.find name with
  | Some (Metrics.Counter c) -> Metrics.counter_value c
  | _ -> Alcotest.failf "missing counter %s" name

let find_histogram name =
  match Metrics.find name with
  | Some (Metrics.Histogram h) -> h
  | _ -> Alcotest.failf "missing histogram %s" name

(* The registry is the aggregate view over the same events the legacy
   per-run records tally: after a registry reset, one migration per
   corpus program must leave registry totals equal to the sum of the
   per-run stats. *)
let test_metrics_match_legacy_stats () =
  Metrics.reset ();
  let frames = ref 0 and values = ref 0 and ptrs = ref 0 in
  let hits = ref 0 and misses = ref 0 in
  let index = ref 0 and interval = ref 0 in
  let attempts = ref 0 in
  let checkpoint = ref 0.0 and recode = ref 0.0 in
  let scp = ref 0.0 and restore = ref 0.0 in
  let migrated = ref 0 in
  List.iter
    (fun (name, c) ->
      let p = Process.load c.Link.cp_x86 in
      if not (Oracle.advance_to_point p ~budget:30_000_000 0) then
        Alcotest.failf "%s exited before its first equivalence point" name;
      match
        Migrate.migrate ~src_node:Node.xeon ~dst_node:Node.rpi
          ~src_bin:c.Link.cp_x86 ~dst_bin:c.Link.cp_arm p
      with
      | Error e -> Alcotest.fail (Migrate.error_to_string e)
      | Ok r ->
        incr migrated;
        let rw = r.Migrate.r_rewrite in
        frames := !frames + rw.Rewrite.st_frames;
        values := !values + rw.Rewrite.st_values;
        ptrs := !ptrs + rw.Rewrite.st_ptrs_translated;
        hits := !hits + rw.Rewrite.st_plan_hits;
        misses := !misses + rw.Rewrite.st_plan_misses;
        index := !index + rw.Rewrite.st_index_lookups;
        interval := !interval + rw.Rewrite.st_interval_lookups;
        attempts := !attempts + r.Migrate.r_transfer.Transport.tx_attempts;
        let t = r.Migrate.r_times in
        checkpoint := !checkpoint +. t.Migrate.t_checkpoint_ms;
        recode := !recode +. t.Migrate.t_recode_ms;
        scp := !scp +. t.Migrate.t_scp_ms;
        restore := !restore +. t.Migrate.t_restore_ms)
    (Corpus.all ());
  check Alcotest.bool "corpus migrated" true (!migrated > 0);
  check Alcotest.int "rewrite.runs" !migrated (find_counter "rewrite.runs");
  check Alcotest.int "rewrite.frames" !frames (find_counter "rewrite.frames");
  check Alcotest.int "rewrite.values" !values (find_counter "rewrite.values");
  check Alcotest.int "rewrite.ptrs_translated" !ptrs
    (find_counter "rewrite.ptrs_translated");
  check Alcotest.int "rewrite.plan_hits" !hits (find_counter "rewrite.plan_hits");
  check Alcotest.int "rewrite.plan_misses" !misses
    (find_counter "rewrite.plan_misses");
  check Alcotest.int "rewrite.index_lookups" !index
    (find_counter "rewrite.index_lookups");
  check Alcotest.int "rewrite.interval_lookups" !interval
    (find_counter "rewrite.interval_lookups");
  check Alcotest.int "transport.tx.attempts" !attempts
    (find_counter "transport.tx.attempts");
  check Alcotest.int "session.commits" !migrated (find_counter "session.commits");
  check Alcotest.int "session.rollbacks" 0 (find_counter "session.rollbacks");
  let stage s = Metrics.histogram_sum (find_histogram ("session.stage_ms." ^ s)) in
  let close what want got =
    check Alcotest.bool
      (Printf.sprintf "%s: %.6f ~ %.6f" what want got)
      true
      (abs_float (want -. got) < 1e-9)
  in
  close "stage histograms: checkpoint" !checkpoint (stage "pause" +. stage "dump");
  close "stage histograms: recode" !recode (stage "recode");
  close "stage histograms: scp" !scp (stage "transfer");
  close "stage histograms: restore" !restore (stage "restore" +. stage "commit");
  check Alcotest.int "one observation per stage per migration" !migrated
    (Metrics.histogram_count (find_histogram "session.stage_ms.commit"));
  (* the cost_report histogram table reflects the same registry *)
  let table = Migrate.stage_histogram_table () in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "histogram table lists the commit stage" true
    (contains table "commit")

(* ----- replay determinism ----- *)

let chaos_trace () =
  let c = Option.get (Corpus.find "mini-sieve") in
  Trace.start ();
  (match
     Dapper_verify.Chaos.run_one ~spec:(Dapper_util.Fault.uniform 0.2) ~seed:3
       ~src:Dapper_isa.Arch.X86_64 ~dst:Dapper_isa.Arch.Aarch64 c
   with
  | Ok _ -> ()
  | Error f -> Alcotest.fail (Dapper_verify.Chaos.failure_to_string f));
  Trace.stop ();
  let json = Dapper_util.Json.to_string (Trace.to_chrome_json ()) in
  Trace.reset ();
  json

let test_chaos_replay_trace_identical () =
  let t1 = chaos_trace () in
  let t2 = chaos_trace () in
  check Alcotest.bool "trace non-trivial" true (String.length t1 > 2);
  check Alcotest.int "same size" (String.length t1) (String.length t2);
  check Alcotest.bool "two replays of one seed: byte-identical traces" true
    (String.equal t1 t2)

let suites =
  [ ( "obs",
      [ Alcotest.test_case "trace disabled is a no-op" `Quick
          test_trace_disabled_is_noop;
        Alcotest.test_case "trace clock semantics" `Quick test_trace_clock_semantics;
        Alcotest.test_case "with_span closes on raise" `Quick
          test_with_span_closes_on_raise;
        Alcotest.test_case "traced migration well-formed" `Quick
          test_traced_migration_well_formed;
        Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
        Alcotest.test_case "metrics match legacy stats (corpus)" `Quick
          test_metrics_match_legacy_stats;
        Alcotest.test_case "chaos replay: byte-identical traces" `Quick
          test_chaos_replay_trace_identical ] ) ]
