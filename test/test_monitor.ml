open Dapper_machine
open Dapper_clite
open Dapper
open Cl
module Link = Dapper_codegen.Link

let check = Alcotest.check
let ok = Dapper_util.Dapper_error.ok_exn

(* A program whose main sits in a long call-free loop: the paper's
   function-boundary equivalence points cannot interrupt it. *)
let callfree_module () =
  let m = create "callfree" in
  Cstd.add m;
  func m "main" [] (fun b ->
      decl b "acc" (i 0);
      for_ b "k" (i 0) (i 3_000_000) (fun b ->
          set b "acc" (add (v "acc") (band (v "k") (i 7))));
      ret b (rem_ (v "acc") (i 97)));
  finish m

let test_drain_budget_exhausted () =
  let c = Link.compile ~app:"callfree" (callfree_module ()) in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:10_000);
  match Monitor.request_pause p ~budget:200_000 with
  | Error Dapper_util.Dapper_error.Pause_budget_exhausted -> ()
  | Error e -> Alcotest.fail (Monitor.error_to_string e)
  | Ok _ -> Alcotest.fail "call-free loop should not be pausable at function entries"

let test_backedge_checkers_rescue () =
  (* the same program becomes pausable with loop-header checkers *)
  let opts = { Dapper_codegen.Opts.default with backedge_checkers = true } in
  let c = Link.compile ~opts ~app:"callfree" (callfree_module ()) in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:10_000);
  match Monitor.request_pause p ~budget:200_000 with
  | Ok stats -> check Alcotest.bool "trapped quickly" true (stats.ps_trapped = 1)
  | Error e -> Alcotest.fail (Monitor.error_to_string e)

let test_backedge_migration_correct () =
  (* a thread paused at a loop-header equivalence point must migrate *)
  let opts = { Dapper_codegen.Opts.default with backedge_checkers = true } in
  let c = Link.compile ~opts ~app:"callfree" (callfree_module ()) in
  let native = Process.load c.Link.cp_arm in
  let expected =
    match Process.run_to_completion native ~fuel:100_000_000 with
    | Process.Exited_run v -> v
    | _ -> Alcotest.fail "native run failed"
  in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:2_000_000);
  (match Monitor.request_pause p ~budget:1_000_000 with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Monitor.error_to_string e));
  let image = ok (Dapper_criu.Dump.dump p) in
  let image', _ = ok (Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm) in
  let q = ok (Dapper_criu.Restore.restore image' c.Link.cp_arm) in
  match Process.run_to_completion q ~fuel:100_000_000 with
  | Process.Exited_run v ->
    check Alcotest.bool "exit equal after backedge migration" true (Int64.equal v expected)
  | _ -> Alcotest.fail "migrated run failed"

let test_tampered_trap_rejected () =
  (* a SIGTRAP whose pc is not a checker resume address must be refused
     (the paper's defense against attacker-raised traps) *)
  let c = Registry_helpers.compute () in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:10_000);
  let th = Process.thread p 0 in
  th.Process.status <- Process.Trapped;
  th.Process.pc <- Int64.add c.Link.cp_x86.bin_anchors.a_entry 1L;
  match Monitor.request_pause p ~budget:1_000_000 with
  | Error (Dapper_util.Dapper_error.Not_at_equivalence_point _) -> ()
  | Error e -> Alcotest.fail (Monitor.error_to_string e)
  | Ok _ -> Alcotest.fail "tampered trap accepted"

let test_critical_section_masks_checker () =
  (* a lock holder must not pause inside the critical region; at dump
     time no mutex can be held by a paused-at-checker thread *)
  let m = create "crit" in
  Cstd.add m;
  global m "mtx" 8;
  global m "shared" 8;
  func m "touch" [] (fun b -> ret b (add (v "shared") (i 1)));
  func m "main" [] (fun b ->
      do_ b (call "lock" [ addr "mtx" ]);
      for_ b "k" (i 0) (i 200) (fun b ->
          set b "shared" (call "touch" []));
      do_ b (call "unlock" [ addr "mtx" ]);
      for_ b "k2" (i 0) (i 200) (fun b ->
          set b "shared" (call "touch" []));
      ret b (v "shared"));
  let c = Link.compile ~app:"crit" (finish m) in
  let p = Process.load c.Link.cp_x86 in
  (* request the pause while the lock is held *)
  ignore (Process.run p ~max_instrs:600);
  (match Monitor.request_pause p ~budget:10_000_000 with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Monitor.error_to_string e));
  let mtx_addr =
    (Option.get (Dapper_binary.Binary.find_symbol c.Link.cp_x86 "mtx")).sym_addr
  in
  check Alcotest.bool "mutex released before pause" true
    (Int64.equal (Process.peek_data p mtx_addr) 0L);
  Monitor.resume p;
  match Process.run_to_completion p ~fuel:10_000_000 with
  | Process.Exited_run v -> check Alcotest.int "completes correctly" 400 (Int64.to_int v)
  | _ -> Alcotest.fail "did not complete after resume"

let test_cancel_is_clean () =
  let c = Registry_helpers.compute () in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:50_000);
  (match Monitor.request_pause p ~budget:20_000_000 with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Monitor.error_to_string e));
  Monitor.cancel p;
  let flag = c.Link.cp_x86.bin_anchors.a_flag in
  check Alcotest.bool "flag lowered" true (Int64.equal (Process.peek_data p flag) 0L);
  check Alcotest.bool "threads runnable again" true (not (Process.all_quiescent p))

let test_pause_is_idempotent_under_repeat () =
  let c = Registry_helpers.compute () in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:50_000);
  (match Monitor.request_pause p ~budget:20_000_000 with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Monitor.error_to_string e));
  (* pausing an already-paused process succeeds with zero drain *)
  match Monitor.request_pause p ~budget:1_000 with
  | Ok stats ->
    check Alcotest.bool "no extra drain" true (stats.ps_instrs_drained = 0L)
  | Error e -> Alcotest.fail (Monitor.error_to_string e)

let test_blocked_threads_rolled_back () =
  (* main blocks in join while a worker spins; at pause time the main
     thread must be rolled back to the call-site equivalence point *)
  let m = create "joiner" in
  Cstd.add m;
  func m "worker" [ ("n", Dapper_ir.Ir.I64) ] (fun b ->
      decl b "acc" (i 0);
      for_ b "k" (i 0) (i 50_000) (fun b ->
          set b "acc" (add (v "acc") (call "abs64" [ v "k" ])));
      ret b (v "acc"));
  func m "main" [] (fun b ->
      decl b "t" (call "spawn" [ fnptr "worker"; i 1 ]);
      decl b "r" (call "join" [ v "t" ]);
      do_ b (call "print_int" [ v "r" ]);
      do_ b (call "print_nl" []);
      ret b (rem_ (v "r") (i 251)));
  let c = Link.compile ~app:"joiner" (finish m) in
  let expected_code, expected_out =
    let p = Process.load c.Link.cp_x86 in
    match Process.run_to_completion p ~fuel:50_000_000 with
    | Process.Exited_run v -> (v, Process.stdout_contents p)
    | _ -> Alcotest.fail "native joiner failed"
  in
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:60_000);
  (match Monitor.request_pause p ~budget:30_000_000 with
   | Ok stats ->
     check Alcotest.bool "main rolled back out of join" true (stats.ps_rolled_back >= 1)
   | Error e -> Alcotest.fail (Monitor.error_to_string e));
  (* and the paused process must still migrate + finish correctly *)
  let image = ok (Dapper_criu.Dump.dump p) in
  let image', _ = ok (Rewrite.rewrite image ~src:c.Link.cp_x86 ~dst:c.Link.cp_arm) in
  let q = ok (Dapper_criu.Restore.restore image' c.Link.cp_arm) in
  match Process.run_to_completion q ~fuel:50_000_000 with
  | Process.Exited_run v ->
    check Alcotest.bool "exit equal" true (Int64.equal v expected_code);
    check Alcotest.string "out equal" expected_out
      (Process.stdout_contents p ^ Process.stdout_contents q)
  | _ -> Alcotest.fail "migrated joiner failed"

let suites =
  [ ( "monitor",
      [ Alcotest.test_case "drain budget exhausted" `Quick test_drain_budget_exhausted;
        Alcotest.test_case "backedge checkers rescue" `Quick test_backedge_checkers_rescue;
        Alcotest.test_case "backedge migration correct" `Quick test_backedge_migration_correct;
        Alcotest.test_case "tampered trap rejected" `Quick test_tampered_trap_rejected;
        Alcotest.test_case "critical section masking" `Quick test_critical_section_masks_checker;
        Alcotest.test_case "cancel is clean" `Quick test_cancel_is_clean;
        Alcotest.test_case "pause idempotent" `Quick test_pause_is_idempotent_under_repeat;
        Alcotest.test_case "blocked threads rolled back" `Quick
          test_blocked_threads_rolled_back ] ) ]
