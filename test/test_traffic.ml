(* Live-traffic plane tests: quantile-sketch accuracy against an exact
   sort oracle (property-based, adversarial inputs), pre-copy dirty-page
   convergence over random write sets, downtime-budget policy, arrival
   process determinism, and golden fingerprints pinning the fig7-live
   latency traces byte-identical per seed. *)

open Dapper_machine
open Dapper_net
open Dapper_traffic
module Link = Dapper_codegen.Link
module Netlink = Dapper_net.Link
module Session = Dapper.Session
module Layout = Dapper_binary.Layout
module Rng = Dapper_util.Rng

let check = Alcotest.check

(* ----- quantile sketch vs the exact nearest-rank oracle ----- *)

(* The oracle the sketch's accuracy contract is stated against: sort,
   then nearest rank [max 1 (ceil (q * n))]. *)
let exact_quantile values q =
  let sorted = List.sort Float.compare values in
  let n = List.length sorted in
  let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
  List.nth sorted (rank - 1)

let test_quantiles = [ 0.0; 0.5; 0.9; 0.99; 0.999; 1.0 ]

let check_sketch_against_oracle ~what ?(rel_err = 0.01) values =
  let s = Sketch.create ~rel_err () in
  List.iter (Sketch.add s) values;
  if Sketch.count s <> List.length values then
    Alcotest.failf "%s: count %d <> %d" what (Sketch.count s)
      (List.length values);
  List.iter
    (fun q ->
      let exact = exact_quantile values q in
      let est = Sketch.quantile s q in
      let bound = (rel_err *. Float.abs exact) +. 1e-9 in
      if Float.abs (est -. exact) > bound then
        Alcotest.failf "%s: q=%g est=%.9g exact=%.9g (bound %.3g)" what q est
          exact bound)
    test_quantiles

(* Adversarial input shapes: uniform random, pre-sorted (ascending and
   descending), constant, heavy-tailed (Pareto-like u^-2, spans many
   orders of magnitude), and a zero-spiked mix. *)
let gen_values =
  QCheck.Gen.(
    let n = int_range 1 400 in
    let shaped shape =
      n >>= fun len ->
      list_repeat len (float_range 0.0 1.0) >|= fun us ->
      let us = List.map (fun u -> Float.min u 0.999999) us in
      match shape with
      | `Uniform -> List.map (fun u -> u *. 1000.0) us
      | `Sorted -> List.sort Float.compare (List.map (fun u -> u *. 1000.0) us)
      | `Rev_sorted ->
        List.sort (fun a b -> Float.compare b a)
          (List.map (fun u -> u *. 1000.0) us)
      | `Constant -> List.map (fun _ -> 42.125) us
      | `Heavy -> List.map (fun u -> (1.0 -. u) ** -2.0) us
      | `Zero_spiked ->
        List.map (fun u -> if u < 0.3 then 0.0 else u *. 10.0) us
    in
    oneofl [ `Uniform; `Sorted; `Rev_sorted; `Constant; `Heavy; `Zero_spiked ]
    >>= shaped)

let arb_values =
  QCheck.make
    ~print:(fun vs ->
      Printf.sprintf "[%s]"
        (String.concat "; " (List.map (Printf.sprintf "%.9g") vs)))
    gen_values

let qcheck_sketch_rank_error =
  QCheck.Test.make ~count:300 ~name:"sketch quantiles within rel_err of sort oracle"
    arb_values
    (fun values ->
      check_sketch_against_oracle ~what:"sketch" values;
      check_sketch_against_oracle ~what:"sketch(5%)" ~rel_err:0.05 values;
      true)

(* Merge: exact bucket-wise addition — associative, commutative, and
   identical to adding the values one by one. *)
let sketch_of values =
  let s = Sketch.create () in
  List.iter (Sketch.add s) values;
  s

let sketch_repr s =
  (Sketch.buckets s, Sketch.zero_count s, Sketch.count s)

let qcheck_sketch_merge_associative =
  QCheck.Test.make ~count:200 ~name:"sketch merge is associative and lossless"
    (QCheck.triple arb_values arb_values arb_values)
    (fun (a, b, c) ->
      let sa = sketch_of a and sb = sketch_of b and sc = sketch_of c in
      let left = Sketch.merge (Sketch.merge sa sb) sc in
      let right = Sketch.merge sa (Sketch.merge sb sc) in
      let flat = sketch_of (a @ b @ c) in
      sketch_repr left = sketch_repr right
      && sketch_repr left = sketch_repr flat
      && sketch_repr (Sketch.merge sa sb) = sketch_repr (Sketch.merge sb sa))

let test_sketch_edges () =
  let s = Sketch.create () in
  (try
     ignore (Sketch.quantile s 0.5);
     Alcotest.fail "empty quantile accepted"
   with Invalid_argument _ -> ());
  check Alcotest.bool "empty quantile_opt is None" true
    (Sketch.quantile_opt s 0.5 = None);
  (* a single sample answers every quantile with itself *)
  let one = Sketch.create () in
  Sketch.add one 7.25;
  check (Alcotest.float 1e-6) "single-sample p0" 7.25 (Sketch.quantile one 0.0);
  check (Alcotest.float 1e-6) "single-sample p50" 7.25 (Sketch.quantile one 0.5);
  check (Alcotest.float 1e-6) "single-sample p100" 7.25
    (Sketch.quantile one 1.0);
  check Alcotest.bool "single-sample quantile_opt is Some" true
    (Sketch.quantile_opt one 0.5 = Some (Sketch.quantile one 0.5));
  Sketch.add s 0.0;
  check (Alcotest.float 0.0) "zero-only p50" 0.0 (Sketch.quantile s 0.5);
  (try
     Sketch.add s (-1.0);
     Alcotest.fail "negative value accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Sketch.quantile s 1.5);
     Alcotest.fail "q > 1 accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Sketch.merge s (Sketch.create ~rel_err:0.02 ()));
     Alcotest.fail "mismatched rel_err merged"
   with Invalid_argument _ -> ())

(* ----- pre-copy dirty-page convergence ----- *)

let precopy_config c =
  Session.default_config ~src_bin:c.Link.cp_x86 ~dst_bin:c.Link.cp_arm

let loaded_source c =
  let p = Process.load c.Link.cp_x86 in
  ignore (Process.run p ~max_instrs:120_000);
  p

(* The candidate page set pre-copy round 1 ships: learned by running a
   no-write pre-copy (one round, everything lands resident). *)
let candidate_pages c =
  let p = loaded_source c in
  let st =
    Session.precopy (precopy_config c) p
      ~advance:(fun _ -> ())
      ~max_rounds:5 ~downtime_budget_ms:0.0
  in
  check Alcotest.int "no-write pre-copy is one round" 1
    (List.length st.Session.pcs_rounds);
  check
    Alcotest.(list int)
    "no-write pre-copy leaves nothing residual" [] st.Session.pcs_residual;
  st.Session.pcs_resident

let poke_pages p pages =
  List.iter
    (fun pn ->
      let addr = Int64.of_int (pn * Layout.page_size) in
      Process.poke_data p addr 0xD1A7_F00DL)
    pages

(* Random sub-multiset of the candidate pages (indices may repeat) plus
   a writer mode: [`Every_round] keeps re-dirtying the same set —
   pre-copy must stop on the non-shrinking rule and hand the set over as
   residual; [`First_round_only] dirties once — pre-copy must converge
   with an empty residual. *)
let gen_write_set candidates =
  QCheck.Gen.(
    let n = List.length candidates in
    pair
      (list_size (int_range 0 (max 1 (n - 1)))
         (int_range 0 (n - 1) >|= List.nth candidates))
      (oneofl [ `Every_round; `First_round_only ]))

let arb_write_set candidates =
  QCheck.make
    ~print:(fun (pages, mode) ->
      Printf.sprintf "%s %s"
        (match mode with
         | `Every_round -> "every-round"
         | `First_round_only -> "first-round-only")
        (String.concat "," (List.map string_of_int pages)))
    (gen_write_set candidates)

let qcheck_precopy_convergence c candidates =
  QCheck.Test.make ~count:60
    ~name:"pre-copy converges; no dirtied page is lost" (arb_write_set candidates)
    (fun (pages, mode) ->
      let w = List.sort_uniq Int.compare pages in
      let p = loaded_source c in
      let calls = ref 0 in
      let st =
        Session.precopy (precopy_config c) p
          ~advance:(fun _ ->
            incr calls;
            match mode with
            | `Every_round -> poke_pages p w
            | `First_round_only -> if !calls = 1 then poke_pages p w)
          ~max_rounds:5 ~downtime_budget_ms:0.0
      in
      check Alcotest.bool "tracking disabled on exit" false
        (Memory.tracking_dirty p.Process.mem);
      let resident = st.Session.pcs_resident
      and residual = st.Session.pcs_residual in
      (* resident/residual partition the candidate set exactly *)
      check
        Alcotest.(list int)
        "resident + residual = candidates" candidates
        (List.sort Int.compare (resident @ residual));
      check Alcotest.bool "resident and residual disjoint" true
        (List.for_all (fun pn -> not (List.mem pn residual)) resident);
      let rounds = List.length st.Session.pcs_rounds in
      check Alcotest.bool "round count within cap" true
        (rounds >= 1 && rounds <= 5);
      (* every round's page count is accounted in the multiset total *)
      check Alcotest.int "pages_sent is the sum over rounds"
        (List.fold_left
           (fun a r -> a + r.Session.pr_pages)
           0 st.Session.pcs_rounds)
        st.Session.pcs_pages_sent;
      (match mode with
       | `Every_round ->
         (* the permanently-hot set must come out residual: transferred
            rounds ∪ residual ⊇ dirtied pages, with nothing lost *)
         check Alcotest.(list int) "hot set handed over as residual" w residual
       | `First_round_only ->
         check Alcotest.(list int) "one-shot dirty set converges" [] residual;
         if w <> [] then
           check Alcotest.int "dirtied pages were re-shipped, not lost"
             (List.length candidates + List.length w)
             st.Session.pcs_pages_sent);
      true)

(* ----- downtime-budget policy ----- *)

let test_budget_policy () =
  let e =
    { Budget.e_image_bytes = 1_000_000;
      e_residual_bytes = 50_000;
      e_fixed_ms = 40.0;
      e_lazy_fixed_ms = 12.0;
      e_wire_ns_per_byte = 100.0 }
  in
  (* wire: 0.1 ms per 1000 bytes -> image 100 ms, residual 5 ms *)
  check (Alcotest.float 1e-9) "vanilla downtime" 140.0
    (Budget.downtime_ms e Budget.Vanilla);
  check (Alcotest.float 1e-9) "precopy downtime" 45.0
    (Budget.downtime_ms e Budget.Precopy);
  check (Alcotest.float 1e-9) "hybrid downtime" 12.0
    (Budget.downtime_ms e Budget.Hybrid);
  let name b = Budget.mechanism_name (Budget.choose ~budget_ms:b e) in
  check Alcotest.string "generous budget -> vanilla" "vanilla" (name 200.0);
  check Alcotest.string "medium budget -> precopy" "precopy" (name 60.0);
  check Alcotest.string "tight budget -> hybrid" "hybrid" (name 20.0);
  check Alcotest.string "impossible budget -> least-bad" "hybrid" (name 1.0);
  (* monotone: a larger budget never picks a mechanism later in the
     preference order *)
  let order m =
    match Budget.mechanism_name m with
    | "vanilla" -> 0 | "precopy" -> 1 | "hybrid" -> 2 | _ -> 3
  in
  let budgets = [ 1.0; 5.0; 11.0; 12.0; 44.0; 45.0; 100.0; 139.0; 140.0; 500.0 ] in
  List.iter2
    (fun lo hi ->
      check Alcotest.bool
        (Printf.sprintf "choice at %.0f no later than at %.0f" hi lo)
        true
        (order (Budget.choose ~budget_ms:hi e)
         <= order (Budget.choose ~budget_ms:lo e)))
    (List.filteri (fun i _ -> i < List.length budgets - 1) budgets)
    (List.tl budgets);
  check Alcotest.bool "round-trip names" true
    (List.for_all
       (fun m -> Budget.mechanism_of_string (Budget.mechanism_name m) = Some m)
       Budget.all_mechanisms)

(* ----- arrival process ----- *)

let test_arrival_deterministic () =
  let take n a = List.init n (fun _ -> Arrival.next a) in
  let states = [| (2.0, 30.0); (8.0, 10.0) |] in
  let a1 = take 5_000 (Arrival.mmpp ~seed:7L states) in
  let a2 = take 5_000 (Arrival.mmpp ~seed:7L states) in
  check Alcotest.bool "same seed, same arrival stream" true (a1 = a2);
  let a3 = take 5_000 (Arrival.mmpp ~seed:8L states) in
  check Alcotest.bool "different seed, different stream" true (a1 <> a3);
  check Alcotest.bool "arrivals nondecreasing" true
    (fst
       (List.fold_left
          (fun (ok, prev) t -> (ok && t >= prev, t))
          (true, 0.0) a1));
  (* empirical rate within 10% of the hold-weighted mean *)
  let a = Arrival.mmpp ~seed:42L states in
  let n = 200_000 in
  let last = ref 0.0 in
  for _ = 1 to n do
    last := Arrival.next a
  done;
  let measured = float_of_int n /. !last in
  let expected = Arrival.mean_rate_per_ms a in
  check Alcotest.bool
    (Printf.sprintf "mean rate %.3f within 10%% of %.3f" measured expected)
    true
    (Float.abs (measured -. expected) /. expected < 0.10);
  check (Alcotest.float 1e-9) "hold-weighted mean rate" 3.5 expected;
  (try
     ignore (Arrival.mmpp ~seed:1L [||]);
     Alcotest.fail "empty state set accepted"
   with Invalid_argument _ -> ())

(* ----- golden fingerprints: the fig7-live latency traces ----- *)

(* A trimmed fig7-live: the compute workload under open-loop load with a
   real migration, small enough for the test suite, deterministic enough
   to pin byte-identical per seed. *)
let live_cfg ~seed ~requests =
  { Loadgen.lg_seed = seed;
    lg_requests = requests;
    lg_clients = 200_000;
    lg_client_rps = 0.25;  (* 50 requests per ms *)
    lg_mmpp = Some [| (0.8, 90.0); (1.6, 30.0) |];
    lg_lanes = 4;
    lg_service_src_ms = 0.02;
    lg_service_dst_ms = 0.056;
    lg_migrate_at_ms = 150.0;
    lg_max_rounds = 4;
    lg_downtime_budget_ms = 5.0;
    lg_round_instrs = 50_000;
    lg_racks = Some (Rack.create ~racks:2 ~servers_each:2);
    lg_rack = 0 }

let live_session_cfg c ~reverse =
  let src_bin, dst_bin =
    if reverse then (c.Link.cp_arm, c.Link.cp_x86)
    else (c.Link.cp_x86, c.Link.cp_arm)
  in
  (* scale bytes like the bench (bytes_scale) so the wire actually
     matters: on the raw toy image the blackout is all fixed cost and
     the mechanisms are indistinguishable *)
  let cfg =
    { (Session.default_config ~src_bin ~dst_bin) with
      Session.cfg_bytes_scale = 1500.0 }
  in
  if reverse then
    { cfg with
      Session.cfg_src_node = Node.rpi;
      cfg_dst_node = Node.xeon;
      cfg_recode_node = Node.rpi }
  else cfg

let live_run ~seed ~reverse mech =
  let c = Registry_helpers.compute () in
  let p =
    Process.load (if reverse then c.Link.cp_arm else c.Link.cp_x86)
  in
  ignore (Process.run p ~max_instrs:120_000);
  match
    Loadgen.run (live_cfg ~seed ~requests:30_000) (live_session_cfg c ~reverse)
      p mech
  with
  | Ok st -> st
  | Error e -> Alcotest.fail (Dapper_util.Dapper_error.to_string e)

(* Pinned outputs: regenerate with
     dune exec test/test_main.exe -- test traffic
   after an intentional model change, and update here. *)
let golden_lines =
  [ ( (0x5EEDL, false),
      "hybrid n=30000 stalled=14201 faulted=2 blackout=193.675250 \
       p50=102.524761 p99=198.368486 p999=198.368486 mig-p50=152.951010 \
       mig-p99=198.368486 mig-p999=198.368486 fp=067e3c449490b6cb" );
    ( (0x5EEDL, true),
      "hybrid n=30000 stalled=21410 faulted=2 blackout=689.557205 \
       p50=595.953718 p99=694.758518 p999=694.758518 mig-p50=632.806704 \
       mig-p99=694.758518 mig-p999=694.758518 fp=614d565f7b0d46f0" );
    ( (0xFACE_0FFL, false),
      "hybrid n=30000 stalled=13164 faulted=2 blackout=193.675250 \
       p50=117.932097 p99=190.590092 p999=194.440397 mig-p50=162.409297 \
       mig-p99=194.440397 mig-p999=194.440397 fp=58a4fed6d525878b" );
    ( (0xFACE_0FFL, true),
      "hybrid n=30000 stalled=23946 faulted=2 blackout=689.557205 \
       p50=607.993187 p99=685.513147 p999=685.513147 mig-p50=620.275878 \
       mig-p99=685.513147 mig-p999=685.513147 fp=6862e187e042712f" ) ]

let test_golden_fingerprints () =
  List.iter
    (fun ((seed, reverse), want) ->
      let st = live_run ~seed ~reverse Budget.Hybrid in
      let got = Loadgen.fingerprint_line st in
      check Alcotest.string
        (Printf.sprintf "hybrid %s seed=%Lx"
           (if reverse then "arm->x86" else "x86->arm")
           seed)
        want got)
    golden_lines

let test_same_seed_byte_identical () =
  let a = live_run ~seed:77L ~reverse:false Budget.Postcopy in
  let b = live_run ~seed:77L ~reverse:false Budget.Postcopy in
  check Alcotest.string "same seed, same trace"
    (Loadgen.fingerprint_line a) (Loadgen.fingerprint_line b);
  let c = live_run ~seed:78L ~reverse:false Budget.Postcopy in
  check Alcotest.bool "different seed, different fingerprint" true
    (a.Loadgen.ls_fingerprint <> c.Loadgen.ls_fingerprint)

(* The acceptance claim of the live plane: hybrid copy degrades the
   during-migration tail less than stop-and-copy. *)
let test_hybrid_beats_vanilla_tail () =
  let v = live_run ~seed:0xBEEFL ~reverse:false Budget.Vanilla in
  let h = live_run ~seed:0xBEEFL ~reverse:false Budget.Hybrid in
  let p99 st =
    if Sketch.count st.Loadgen.ls_during = 0 then 0.0
    else Sketch.quantile st.Loadgen.ls_during 0.99
  in
  check Alcotest.bool "both saw stalled requests" true
    (Sketch.count v.Loadgen.ls_during > 0
     && Sketch.count h.Loadgen.ls_during > 0);
  check Alcotest.bool
    (Printf.sprintf "hybrid mig-p99 %.3f < vanilla mig-p99 %.3f" (p99 h) (p99 v))
    true
    (p99 h < p99 v);
  check Alcotest.bool "hybrid blackout shorter" true
    (h.Loadgen.ls_blackout_ms < v.Loadgen.ls_blackout_ms)

let suites =
  let c = Registry_helpers.compute () in
  let candidates = candidate_pages c in
  [ ( "traffic",
      [ QCheck_alcotest.to_alcotest qcheck_sketch_rank_error;
        QCheck_alcotest.to_alcotest qcheck_sketch_merge_associative;
        Alcotest.test_case "sketch edge cases" `Quick test_sketch_edges;
        QCheck_alcotest.to_alcotest (qcheck_precopy_convergence c candidates);
        Alcotest.test_case "downtime-budget policy" `Quick test_budget_policy;
        Alcotest.test_case "arrival process" `Quick test_arrival_deterministic;
        Alcotest.test_case "golden fingerprints (2 seeds x 2 directions)" `Quick
          test_golden_fingerprints;
        Alcotest.test_case "same seed is byte-identical" `Quick
          test_same_seed_byte_identical;
        Alcotest.test_case "hybrid beats vanilla during-migration p99" `Quick
          test_hybrid_beats_vanilla_tail ] ) ]
