(* Differential compiler fuzzing: generate random clite programs and
   require bit-identical behaviour on both ISAs, plus migration
   transparency on a sample of them. This is the deepest invariant the
   whole system rests on (one IR, two equivalent encodings). *)

open Dapper_isa
open Dapper_machine
open Dapper_clite
open Cl
module Link = Dapper_codegen.Link

let check = Alcotest.check

(* -- random program generator over the Cl builder -- *)

type genctx = {
  rng : Dapper_util.Rng.t;
  mutable vars : string list;    (* i64 locals *)
  mutable fresh : int;
}

let pick ctx l = List.nth l (Dapper_util.Rng.int ctx.rng (List.length l))

let rec gen_expr ctx depth : Cl.expr =
  if depth = 0 || ctx.vars = [] && depth < 2 then
    if ctx.vars <> [] && Dapper_util.Rng.bool ctx.rng then v (pick ctx ctx.vars)
    else i (Dapper_util.Rng.int ctx.rng 1000 - 500)
  else
    match Dapper_util.Rng.int ctx.rng 10 with
    | 0 -> add (gen_expr ctx (depth - 1)) (gen_expr ctx (depth - 1))
    | 1 -> sub (gen_expr ctx (depth - 1)) (gen_expr ctx (depth - 1))
    | 2 -> mul (gen_expr ctx (depth - 1)) (band (gen_expr ctx (depth - 1)) (i 63))
    | 3 ->
      (* guarded division *)
      div_ (gen_expr ctx (depth - 1)) (bor (band (gen_expr ctx (depth - 1)) (i 255)) (i 1))
    | 4 ->
      rem_ (gen_expr ctx (depth - 1)) (bor (band (gen_expr ctx (depth - 1)) (i 255)) (i 1))
    | 5 -> bxor (gen_expr ctx (depth - 1)) (gen_expr ctx (depth - 1))
    | 6 -> shl (gen_expr ctx (depth - 1)) (band (gen_expr ctx (depth - 1)) (i 7))
    | 7 -> lt (gen_expr ctx (depth - 1)) (gen_expr ctx (depth - 1))
    | 8 when ctx.vars <> [] -> v (pick ctx ctx.vars)
    | _ -> i (Dapper_util.Rng.int ctx.rng 100)

let rec gen_stmt ctx b depth =
  match Dapper_util.Rng.int ctx.rng 8 with
  | 0 | 1 ->
    let name = Printf.sprintf "v%d" ctx.fresh in
    ctx.fresh <- ctx.fresh + 1;
    decl b name (gen_expr ctx 3);
    ctx.vars <- name :: ctx.vars
  | 2 | 3 when ctx.vars <> [] ->
    set b (pick ctx ctx.vars) (gen_expr ctx 3)
  | 4 when depth > 0 ->
    if_else b (gen_expr ctx 2)
      (fun b -> gen_block ctx b (depth - 1))
      (fun b -> gen_block ctx b (depth - 1))
  | 5 when depth > 0 && ctx.vars <> [] ->
    (* bounded loop via a fresh counter *)
    let name = Printf.sprintf "v%d" ctx.fresh in
    ctx.fresh <- ctx.fresh + 1;
    let body_target = pick ctx ctx.vars in
    for_ b name (i 0) (i (1 + Dapper_util.Rng.int ctx.rng 8)) (fun b ->
        set b body_target (add (v body_target) (gen_expr ctx 2)))
  | 6 ->
    (* call through the helper function *)
    let name = Printf.sprintf "v%d" ctx.fresh in
    ctx.fresh <- ctx.fresh + 1;
    decl b name (call "mixer" [ gen_expr ctx 2; gen_expr ctx 2 ]);
    ctx.vars <- name :: ctx.vars
  | _ when ctx.vars <> [] ->
    set b (pick ctx ctx.vars) (call "mixer" [ v (pick ctx ctx.vars); gen_expr ctx 2 ])
  | _ ->
    let name = Printf.sprintf "v%d" ctx.fresh in
    ctx.fresh <- ctx.fresh + 1;
    decl b name (i 1);
    ctx.vars <- name :: ctx.vars

and gen_block ctx b depth =
  let n = 1 + Dapper_util.Rng.int ctx.rng 4 in
  for _ = 1 to n do
    gen_stmt ctx b depth
  done

let gen_program seed =
  let rng = Dapper_util.Rng.create (Int64.of_int seed) in
  let m = create (Printf.sprintf "fuzz%d" seed) in
  Cstd.add m;
  func m "mixer" [ ("a", Dapper_ir.Ir.I64); ("b2", Dapper_ir.Ir.I64) ] (fun b ->
      ret b (bxor (add (v "a") (mul (v "b2") (i 31))) (shr (v "a") (i 5))));
  func m "main" [] (fun b ->
      let ctx = { rng; vars = []; fresh = 0 } in
      decl b "out" (i 0);
      ctx.vars <- [ "out" ];
      gen_block ctx b 3;
      List.iter
        (fun name -> set b "out" (bxor (v "out") (v name)))
        ctx.vars;
      do_ b (call "print_int" [ v "out" ]);
      do_ b (call "print_nl" []);
      ret b (band (v "out") (i 127)));
  finish m

let run_one compiled arch =
  let p = Process.load (Link.binary_for compiled arch) in
  match Process.run_to_completion p ~fuel:5_000_000 with
  | Process.Exited_run code -> Ok (code, Process.stdout_contents p)
  | Process.Crashed cr -> Error ("crash: " ^ cr.cr_reason)
  | Process.Idle -> Error "deadlock"
  | Process.Progress -> Error "fuel"

let test_differential_fuzz () =
  for seed = 1 to 60 do
    let m = gen_program seed in
    let compiled = Link.compile ~app:m.Dapper_ir.Ir.m_name m in
    match (run_one compiled Arch.X86_64, run_one compiled Arch.Aarch64) with
    | Ok a, Ok b ->
      check Alcotest.bool (Printf.sprintf "seed %d equivalent" seed) true (a = b)
    | Error e, _ | _, Error e ->
      Alcotest.fail (Printf.sprintf "seed %d failed: %s" seed e)
  done

let test_fuzz_migration () =
  (* a sample of generated programs must also migrate transparently *)
  for seed = 61 to 72 do
    let m = gen_program seed in
    let compiled = Link.compile ~app:m.Dapper_ir.Ir.m_name m in
    match run_one compiled Arch.Aarch64 with
    | Error e -> Alcotest.fail (Printf.sprintf "seed %d native: %s" seed e)
    | Ok (code, out) ->
      let p = Process.load compiled.Link.cp_x86 in
      (match Process.run p ~max_instrs:300 with
       | Process.Progress ->
         (match Dapper.Monitor.request_pause p ~budget:10_000_000 with
          | Error _ -> () (* program too short to pause; fine *)
          | Ok _ ->
            let ok = Dapper_util.Dapper_error.ok_exn in
            let image = ok (Dapper_criu.Dump.dump p) in
            let image', _ =
              ok (Dapper.Rewrite.rewrite image ~src:compiled.Link.cp_x86
                    ~dst:compiled.Link.cp_arm)
            in
            let q = ok (Dapper_criu.Restore.restore image' compiled.Link.cp_arm) in
            (match Process.run_to_completion q ~fuel:5_000_000 with
             | Process.Exited_run v ->
               check Alcotest.bool (Printf.sprintf "seed %d migrated" seed) true
                 (Int64.equal v code
                  && String.equal (Process.stdout_contents p ^ Process.stdout_contents q)
                       out)
             | _ -> Alcotest.fail (Printf.sprintf "seed %d migrated run failed" seed)))
       | Process.Exited_run v ->
         check Alcotest.bool (Printf.sprintf "seed %d short" seed) true (Int64.equal v code)
       | _ -> Alcotest.fail (Printf.sprintf "seed %d warmup failed" seed))
  done

let suites =
  [ ( "fuzz",
      [ Alcotest.test_case "differential x86 vs arm (60 programs)" `Quick
          test_differential_fuzz;
        Alcotest.test_case "migration on random programs" `Quick test_fuzz_migration ] ) ]
